package netx

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"os"
	"testing"
	"time"
)

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), RetryPolicy{
		Attempts: 5, Base: time.Millisecond, Max: 5 * time.Millisecond, Seed: 7,
	}, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("retry: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	calls := 0
	boom := errors.New("boom")
	err := Retry(context.Background(), RetryPolicy{
		Attempts: 3, Base: time.Millisecond, Seed: 7,
	}, func() error { calls++; return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestRetryPermanentStopsImmediately(t *testing.T) {
	calls := 0
	fatal := errors.New("claim rejected")
	err := Retry(context.Background(), RetryPolicy{Attempts: 5, Base: time.Millisecond}, func() error {
		calls++
		return Permanent(fatal)
	})
	if err != fatal {
		t.Fatalf("err = %v, want the unwrapped permanent error", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Retry(ctx, RetryPolicy{Attempts: 10, Base: 50 * time.Millisecond}, func() error {
		calls++
		cancel()
		return errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (cancelled during backoff)", calls)
	}
}

func TestRetryBackoffIsCappedAndJittered(t *testing.T) {
	p := RetryPolicy{Base: 100 * time.Millisecond, Max: 400 * time.Millisecond,
		Multiplier: 2, Jitter: 0.5}.norm()
	delay := p.Base
	for i := 0; i < 10; i++ {
		next := time.Duration(float64(delay) * p.Multiplier)
		if next > p.Max {
			next = p.Max
		}
		delay = next
	}
	if delay != p.Max {
		t.Fatalf("delay = %v, want capped at %v", delay, p.Max)
	}
	// Deterministic jitter: two RNGs with the same seed agree, and
	// every jittered delay stays within [d*(1-j/2), d*(1+j/2)].
	a := Retryjitters(42, p, 100)
	b := Retryjitters(42, p, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
		lo := time.Duration(float64(p.Base) * (1 - p.Jitter/2))
		hi := time.Duration(float64(p.Base) * (1 + p.Jitter/2))
		if a[i] < lo || a[i] > hi {
			t.Fatalf("jitter %v outside [%v, %v]", a[i], lo, hi)
		}
	}
}

// Retryjitters exposes the jitter computation for the determinism
// test.
func Retryjitters(seed int64, p RetryPolicy, n int) []time.Duration {
	rng := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = jitteredDelay(p.Base, p.Jitter, rng)
	}
	return out
}

func TestDialerConnectTimeout(t *testing.T) {
	d := &Dialer{ConnectTimeout: 50 * time.Millisecond}
	start := time.Now()
	// RFC 5737 TEST-NET-1: packets go nowhere, so the dial must be
	// ended by our timeout, not a fast refusal.
	conn, err := d.Dial("192.0.2.1:9")
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("dial took %v, want bounded by connect timeout", elapsed)
	}
	if err == nil {
		// Some sandboxed network fabrics answer blackhole addresses;
		// the bounded-time property above is what matters.
		conn.Close()
	}
}

func TestTimeoutConnBoundsStalledRead(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Never write: the client read must time out.
		time.Sleep(2 * time.Second)
	}()
	d := &Dialer{IOTimeout: 50 * time.Millisecond}
	conn, err := d.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	_, err = conn.Read(make([]byte, 1))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("read err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("stalled read returned after %v", elapsed)
	}
}

func TestDialTotalBoundsWholeConversation(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		time.Sleep(2 * time.Second)
	}()
	d := &Dialer{}
	conn, err := d.DialTotal(ln.Addr().String(), 60*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	for i := 0; i < 3; i++ {
		if _, err = conn.Read(make([]byte, 1)); err != nil {
			break
		}
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("read err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("conversation outlived its absolute deadline: %v", elapsed)
	}
}
