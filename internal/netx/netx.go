// Package netx is the failure substrate under the matchmaking wire
// protocols: bounded dials, per-envelope I/O deadlines, and capped
// exponential retry with jitter. The paper's robustness story (§3.2,
// §4.3) assumes agents that outlive transient peer failure — ads
// expire when not refreshed, claims are re-verified against current
// state — but that only works if no single round-trip can block an
// agent forever. Every daemon dial and serve loop goes through this
// package so a hung collector or dead provider degrades into a
// bounded, retried error instead of a wedged goroutine.
//
// The package also provides deterministic fault injection
// (FaultPlan/Faults, fault.go) so tests can subject the real daemons
// to drops, delays, resets and corruption without touching daemon
// code.
package netx

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"
)

// Default timeouts. Generous for a LAN pool; daemons expose fields to
// tighten them (tests and simulations run with millisecond values).
const (
	// DefaultConnectTimeout bounds TCP connection establishment.
	DefaultConnectTimeout = 5 * time.Second
	// DefaultIOTimeout bounds each envelope read or write on a dialed
	// connection.
	DefaultIOTimeout = 10 * time.Second
	// DefaultIdleTimeout bounds how long a server-side handler waits
	// for the next envelope before concluding the peer is wedged.
	DefaultIdleTimeout = 2 * time.Minute
)

// Dialer dials TCP peers with a connect timeout and returns
// connections whose every Read and Write carries a fresh deadline, so
// a peer that stops mid-conversation produces a timeout error rather
// than a stuck goroutine.
type Dialer struct {
	// ConnectTimeout bounds connection establishment; 0 selects
	// DefaultConnectTimeout.
	ConnectTimeout time.Duration
	// IOTimeout is the per-operation read/write deadline; 0 selects
	// DefaultIOTimeout, negative disables deadlines.
	IOTimeout time.Duration
	// Wrap, when set, wraps every dialed connection — the seam tests
	// use to inject client-side faults (see Faults.Conn).
	Wrap func(net.Conn) net.Conn
}

// DefaultDialer is the dialer used when a component's Dialer field is
// nil.
var DefaultDialer = &Dialer{}

func (d *Dialer) connectTimeout() time.Duration {
	if d.ConnectTimeout > 0 {
		return d.ConnectTimeout
	}
	return DefaultConnectTimeout
}

func (d *Dialer) ioTimeout() time.Duration {
	if d.IOTimeout != 0 {
		return d.IOTimeout
	}
	return DefaultIOTimeout
}

func (d *Dialer) dialRaw(addr string) (net.Conn, error) {
	m := metrics()
	m.dials.Inc()
	conn, err := net.DialTimeout("tcp", addr, d.connectTimeout())
	if err != nil {
		m.dialErrors.Inc()
		return nil, err
	}
	if d.Wrap != nil {
		conn = d.Wrap(conn)
	}
	return conn, nil
}

// Dial connects to addr and arms per-operation deadlines on the
// returned connection.
func (d *Dialer) Dial(addr string) (net.Conn, error) {
	conn, err := d.dialRaw(addr)
	if err != nil {
		return nil, err
	}
	if io := d.ioTimeout(); io > 0 {
		conn = TimeoutConn(conn, io, io)
	}
	return conn, nil
}

// DialTotal connects to addr and sets one absolute deadline covering
// the entire conversation — the shape the claiming protocol needs,
// where the whole multi-envelope exchange must finish within a bound
// regardless of how many rounds (challenge handshakes) it takes.
// total <= 0 falls back to per-operation deadlines.
func (d *Dialer) DialTotal(addr string, total time.Duration) (net.Conn, error) {
	if total <= 0 {
		return d.Dial(addr)
	}
	conn, err := d.dialRaw(addr)
	if err != nil {
		return nil, err
	}
	if err := conn.SetDeadline(time.Now().Add(total)); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// timeoutConn arms a fresh deadline before every Read and Write.
type timeoutConn struct {
	net.Conn
	read, write time.Duration
}

// TimeoutConn wraps c so each Read is bounded by read and each Write
// by write (0 disables that side). Servers wrap accepted connections
// with it so an idle or wedged peer cannot pin a handler goroutine.
func TimeoutConn(c net.Conn, read, write time.Duration) net.Conn {
	if read <= 0 && write <= 0 {
		return c
	}
	return &timeoutConn{Conn: c, read: read, write: write}
}

func (c *timeoutConn) Read(p []byte) (int, error) {
	if c.read > 0 {
		if err := c.Conn.SetReadDeadline(time.Now().Add(c.read)); err != nil {
			return 0, err
		}
	}
	n, err := c.Conn.Read(p)
	if err != nil && errors.Is(err, os.ErrDeadlineExceeded) {
		metrics().deadlineExpiries.Inc()
	}
	return n, err
}

func (c *timeoutConn) Write(p []byte) (int, error) {
	if c.write > 0 {
		if err := c.Conn.SetWriteDeadline(time.Now().Add(c.write)); err != nil { //determguard:ok kernel socket deadlines are wall-clock by definition
			return 0, err
		}
	}
	n, err := c.Conn.Write(p)
	if err != nil && errors.Is(err, os.ErrDeadlineExceeded) {
		metrics().deadlineExpiries.Inc()
	}
	return n, err
}

// RetryPolicy describes capped exponential backoff with jitter.
// The zero value selects the defaults below; set Attempts to 1 for a
// single try.
type RetryPolicy struct {
	// Attempts is the total number of tries (not re-tries); <= 0
	// selects 4.
	Attempts int
	// Base is the first backoff delay; 0 selects 50ms.
	Base time.Duration
	// Max caps the backoff delay; 0 selects 2s.
	Max time.Duration
	// Multiplier grows the delay between attempts; <= 1 selects 2.
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized
	// (0 to 1); 0 selects 0.5. The delay becomes
	// d*(1-Jitter/2) + rand*d*Jitter, keeping the mean at d while
	// decorrelating retry storms.
	Jitter float64
	// Seed, when nonzero, makes the jitter sequence deterministic —
	// chaos tests use it so failures reproduce.
	Seed int64
}

func (p RetryPolicy) norm() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 4
	}
	if p.Base <= 0 {
		p.Base = 50 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 2 * time.Second
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.Jitter <= 0 {
		p.Jitter = 0.5
	} else if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// permanentError marks an error Retry must not retry.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Retry stops immediately and returns the
// underlying error: the caller saw an application-level failure (an
// ERROR envelope, a rejected claim) that retrying cannot fix.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// jitterRand guards the process-wide jitter source used when a policy
// has no Seed.
var (
	jitterMu   sync.Mutex
	jitterRand = rand.New(rand.NewSource(1)) // reseeded in init
)

func init() {
	jitterMu.Lock()
	jitterRand = rand.New(rand.NewSource(time.Now().UnixNano()))
	jitterMu.Unlock()
}

// Retry runs fn until it succeeds, the policy's attempts are
// exhausted, ctx is done, or fn returns a Permanent error. It returns
// nil on success and the last error otherwise. Only idempotent
// operations should be retried; in the matchmaking protocols that is
// ADVERTISE, INVALIDATE, QUERY, MATCH and RELEASE (see DESIGN.md,
// "Failure semantics").
func Retry(ctx context.Context, p RetryPolicy, fn func() error) error {
	p = p.norm()
	m := metrics()
	var rng *rand.Rand
	if p.Seed != 0 {
		rng = rand.New(rand.NewSource(p.Seed))
	}
	delay := p.Base
	var err error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			if err != nil {
				return errors.Join(cerr, err)
			}
			return cerr
		}
		if attempt > 0 {
			m.retries.Inc()
		}
		err = fn()
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if attempt == p.Attempts-1 {
			m.retriesExhausted.Inc()
			break
		}
		sleep := jitteredDelay(delay, p.Jitter, rng)
		m.backoffMillis.Add(sleep.Milliseconds())
		select {
		case <-time.After(sleep):
		case <-ctx.Done():
			return errors.Join(ctx.Err(), err)
		}
		next := time.Duration(float64(delay) * p.Multiplier)
		if next > p.Max || next < delay { // cap, and guard overflow
			next = p.Max
		}
		delay = next
	}
	return err
}

func jitteredDelay(d time.Duration, jitter float64, rng *rand.Rand) time.Duration {
	var u float64
	if rng != nil {
		u = rng.Float64()
	} else {
		jitterMu.Lock()
		u = jitterRand.Float64()
		jitterMu.Unlock()
	}
	f := 1 - jitter/2 + u*jitter
	return time.Duration(float64(d) * f)
}
