package netx

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrInjectedReset is returned by a FaultConn operation that the fault
// plan chose to reset.
var ErrInjectedReset = errors.New("netx: injected connection reset")

// FaultPlan describes a deterministic fault distribution. All
// probabilities are in [0, 1]; the Seed makes the resulting fault
// sequence reproducible, so a chaos run that fails can be replayed.
type FaultPlan struct {
	// Seed drives the fault RNG; 0 behaves like 1.
	Seed int64
	// Drop is the probability that a connection is severed as soon as
	// it is accepted (or dialed, when wrapping the client side): the
	// peer sees a reset on its first I/O.
	Drop float64
	// Reset is the per-operation probability that a read or write
	// kills the connection mid-flight.
	Reset float64
	// Delay is the per-operation probability of stalling for
	// DelayTime before the operation proceeds.
	Delay float64
	// DelayTime is the injected stall length (default 1ms when Delay
	// is set but DelayTime is not).
	DelayTime time.Duration
	// Garble is the per-read probability of corrupting one byte of
	// the data delivered to the reader.
	Garble float64
}

// FaultStats counts the faults actually injected.
type FaultStats struct {
	Drops, Resets, Delays, Garbles int
}

// Faults is a live fault injector shared by any number of listeners
// and connections. It is safe for concurrent use; the seeded RNG is
// serialized so the fault distribution is reproducible.
type Faults struct {
	plan FaultPlan

	mu      sync.Mutex
	rng     *pcg
	enabled bool
	stats   FaultStats
}

// NewFaults builds an injector for plan, initially enabled.
func NewFaults(plan FaultPlan) *Faults {
	seed := plan.Seed
	if seed == 0 {
		seed = 1
	}
	if plan.Delay > 0 && plan.DelayTime <= 0 {
		plan.DelayTime = time.Millisecond
	}
	return &Faults{plan: plan, rng: newPCG(uint64(seed)), enabled: true}
}

// SetEnabled turns injection on or off; a disabled injector passes
// everything through untouched, which lets a chaos test end with a
// clean convergence phase.
func (f *Faults) SetEnabled(on bool) {
	f.mu.Lock()
	f.enabled = on
	f.mu.Unlock()
}

// Stats reports how many faults have been injected so far.
func (f *Faults) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// roll decides one fault with probability p and records it in the
// given counter when it fires.
func (f *Faults) roll(p float64, counter *int) bool {
	if p <= 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.enabled {
		return false
	}
	if f.rng.float64() >= p {
		return false
	}
	*counter++
	return true
}

// pick returns a deterministic index in [0, n).
func (f *Faults) pick(n int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int(f.rng.uint64() % uint64(n))
}

// Listener wraps ln so accepted connections pass through the
// injector: some are dropped outright, the rest become FaultConns.
func (f *Faults) Listener(ln net.Listener) net.Listener {
	return &faultListener{Listener: ln, f: f}
}

type faultListener struct {
	net.Listener
	f *Faults
}

func (l *faultListener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.f.roll(l.f.plan.Drop, &l.f.statsRef().Drops) {
			abort(conn)
			continue
		}
		return l.f.Conn(conn), nil
	}
}

// statsRef gives roll a stable counter address. Callers must not hold
// f.mu (roll takes it).
func (f *Faults) statsRef() *FaultStats { return &f.stats }

// Conn wraps c in the injector. It is also usable on the dial side
// (e.g. as a Dialer.Wrap), where Drop fires at wrap time.
func (f *Faults) Conn(c net.Conn) net.Conn {
	return &FaultConn{Conn: c, f: f}
}

// FaultConn injects the plan's per-operation faults into one
// connection.
type FaultConn struct {
	net.Conn
	f *Faults
}

func (c *FaultConn) Read(p []byte) (int, error) {
	f := c.f
	if f.roll(f.plan.Delay, &f.statsRef().Delays) {
		time.Sleep(f.plan.DelayTime)
	}
	if f.roll(f.plan.Reset, &f.statsRef().Resets) {
		abort(c.Conn)
		return 0, ErrInjectedReset
	}
	n, err := c.Conn.Read(p)
	if n > 0 && f.roll(f.plan.Garble, &f.statsRef().Garbles) {
		p[f.pick(n)] ^= 0xFF
	}
	return n, err
}

func (c *FaultConn) Write(p []byte) (int, error) {
	f := c.f
	if f.roll(f.plan.Delay, &f.statsRef().Delays) {
		time.Sleep(f.plan.DelayTime) //determguard:ok injected latency on a real socket is wall-clock by design; the checker schedules actions itself, not through FaultConn
	}
	if f.roll(f.plan.Reset, &f.statsRef().Resets) {
		abort(c.Conn)
		return 0, ErrInjectedReset
	}
	return c.Conn.Write(p)
}

// abort closes a connection so the peer observes a hard reset (RST)
// rather than an orderly close, the shape real crashes have.
func abort(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

// pcg is a tiny deterministic PRNG (PCG-XSH-RR) so fault sequences do
// not depend on math/rand's generator evolving across Go releases.
type pcg struct{ state uint64 }

func newPCG(seed uint64) *pcg {
	p := &pcg{state: seed + 0x9E3779B97F4A7C15}
	p.uint64()
	return p
}

func (p *pcg) uint64() uint64 {
	p.state = p.state*6364136223846793005 + 1442695040888963407
	x := p.state
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return x
}

func (p *pcg) float64() float64 {
	return float64(p.uint64()>>11) / (1 << 53)
}
