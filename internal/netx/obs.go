package netx

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Instrumentation for the failure substrate. The hooks are package
// level because netx has no per-component handle: every daemon's
// dials, retries and deadlines flow through the same functions. A
// process instruments once (the -debug-addr path in the daemon mains,
// or a test) and every subsequent operation is counted; before
// Instrument runs, the nil-safe metric types make every update a
// no-op.
//
// Metric names:
//
//	netx_dials_total              connections attempted
//	netx_dial_errors_total        connection attempts that failed
//	netx_retries_total            fn re-invocations inside Retry
//	netx_retry_exhausted_total    Retry calls that ran out of attempts
//	netx_backoff_ms_total         cumulative injected backoff sleep
//	netx_deadline_expiries_total  reads/writes that hit an I/O deadline
var instr atomic.Pointer[netxMetrics]

type netxMetrics struct {
	dials, dialErrors         *obs.Counter
	retries, retriesExhausted *obs.Counter
	backoffMillis             *obs.Counter
	deadlineExpiries          *obs.Counter
	reg                       *obs.Registry
}

// Instrument points the package's counters at reg. Passing nil
// disables instrumentation again.
func Instrument(reg *obs.Registry) {
	if reg == nil {
		instr.Store(nil)
		return
	}
	instr.Store(&netxMetrics{
		dials:            reg.Counter("netx_dials_total"),
		dialErrors:       reg.Counter("netx_dial_errors_total"),
		retries:          reg.Counter("netx_retries_total"),
		retriesExhausted: reg.Counter("netx_retry_exhausted_total"),
		backoffMillis:    reg.Counter("netx_backoff_ms_total"),
		deadlineExpiries: reg.Counter("netx_deadline_expiries_total"),
		reg:              reg,
	})
}

// metrics returns the live metric set, or an empty one whose nil
// counters no-op.
func metrics() *netxMetrics {
	if m := instr.Load(); m != nil {
		return m
	}
	return &netxMetrics{}
}

// Publish registers the injector's live fault counts as gauges on reg,
// so a chaos run's /metrics snapshot shows how hard the network is
// being hit:
//
//	netx_fault_drops, netx_fault_resets, netx_fault_delays,
//	netx_fault_garbles
func (f *Faults) Publish(reg *obs.Registry) {
	reg.GaugeFunc("netx_fault_drops", func() float64 { return float64(f.Stats().Drops) })
	reg.GaugeFunc("netx_fault_resets", func() float64 { return float64(f.Stats().Resets) })
	reg.GaugeFunc("netx_fault_delays", func() float64 { return float64(f.Stats().Delays) })
	reg.GaugeFunc("netx_fault_garbles", func() float64 { return float64(f.Stats().Garbles) })
}
