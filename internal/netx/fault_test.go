package netx

import (
	"bufio"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoServer accepts connections on ln and echoes lines back.
func echoServer(t *testing.T, ln net.Listener) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				r := bufio.NewReader(conn)
				for {
					line, err := r.ReadString('\n')
					if err != nil {
						return
					}
					if _, err := io.WriteString(conn, line); err != nil {
						return
					}
				}
			}()
		}
	}()
	return &wg
}

func TestFaultSequenceIsDeterministic(t *testing.T) {
	plan := FaultPlan{Seed: 99, Drop: 0.3, Reset: 0.2, Garble: 0.1}
	a, b := NewFaults(plan), NewFaults(plan)
	for i := 0; i < 1000; i++ {
		var sa, sb FaultStats
		ra := a.roll(plan.Drop, &sa.Drops)
		rb := b.roll(plan.Drop, &sb.Drops)
		if ra != rb {
			t.Fatalf("decision %d diverged: %v vs %v", i, ra, rb)
		}
	}
}

func TestFaultListenerDropsConnections(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	faults := NewFaults(FaultPlan{Seed: 5, Drop: 0.5})
	fln := faults.Listener(ln)
	wg := echoServer(t, fln)
	defer func() { ln.Close(); wg.Wait() }()

	const tries = 60
	survived := 0
	for i := 0; i < tries; i++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conn.SetDeadline(time.Now().Add(2 * time.Second))
		_, err = io.WriteString(conn, "ping\n")
		if err == nil {
			_, err = bufio.NewReader(conn).ReadString('\n')
		}
		if err == nil {
			survived++
		}
		conn.Close()
	}
	drops := faults.Stats().Drops
	if drops == 0 {
		t.Fatal("no connections dropped at 50% drop probability")
	}
	if survived == 0 {
		t.Fatal("every connection dropped at 50% drop probability")
	}
	if survived+drops != tries {
		t.Fatalf("survived %d + dropped %d != %d tries", survived, drops, tries)
	}
}

func TestFaultConnResetAndDelay(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wg := echoServer(t, ln)
	defer func() { ln.Close(); wg.Wait() }()

	faults := NewFaults(FaultPlan{Seed: 11, Reset: 0.2, Delay: 0.3, DelayTime: time.Millisecond})
	resets := 0
	for i := 0; i < 40; i++ {
		raw, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conn := faults.Conn(raw)
		conn.SetDeadline(time.Now().Add(2 * time.Second))
		if _, err := io.WriteString(conn, "ping\n"); err != nil {
			resets++
			conn.Close()
			continue
		}
		if _, err := bufio.NewReader(conn).ReadString('\n'); err != nil {
			resets++
		}
		conn.Close()
	}
	st := faults.Stats()
	if st.Resets == 0 || resets == 0 {
		t.Fatalf("no resets observed: stats %+v, caller saw %d", st, resets)
	}
	if st.Delays == 0 {
		t.Fatalf("no delays injected: stats %+v", st)
	}
}

func TestFaultConnGarbleCorruptsData(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wg := echoServer(t, ln)
	defer func() { ln.Close(); wg.Wait() }()

	faults := NewFaults(FaultPlan{Seed: 3, Garble: 1}) // corrupt every read
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn := faults.Conn(raw)
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	msg := "hello fault layer\n"
	if _, err := io.WriteString(conn, msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) == msg {
		t.Fatal("read returned pristine data despite Garble=1")
	}
	if faults.Stats().Garbles == 0 {
		t.Fatal("garble counter not incremented")
	}
}

func TestFaultsDisabledPassThrough(t *testing.T) {
	faults := NewFaults(FaultPlan{Seed: 1, Drop: 1, Reset: 1, Garble: 1})
	faults.SetEnabled(false)
	var s FaultStats
	for i := 0; i < 100; i++ {
		if faults.roll(1, &s.Drops) {
			t.Fatal("disabled injector fired")
		}
	}
	if !strings.Contains(ErrInjectedReset.Error(), "reset") {
		t.Fatal("sanity: reset error text")
	}
}
