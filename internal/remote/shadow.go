package remote

import (
	"bufio"
	"encoding/base64"
	"errors"
	"io"
	"net"
	"sync"

	"repro/internal/protocol"
)

// Shadow serves a job's system calls and checkpoints at the customer's
// site. One Shadow can serve any number of concurrent starter
// sessions; file descriptors are per-connection.
type Shadow struct {
	fs *FileStore

	mu     sync.Mutex
	ckpts  map[string][]byte
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup
	logf   func(string, ...any)

	// syscall counters, by message type — the observability the
	// benchmarks and tests use.
	counts map[protocol.MsgType]int
}

// NewShadow builds a shadow over the given file store. logf may be
// nil.
func NewShadow(fs *FileStore, logf func(string, ...any)) *Shadow {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Shadow{
		fs:     fs,
		ckpts:  make(map[string][]byte),
		logf:   logf,
		counts: make(map[protocol.MsgType]int),
	}
}

// Listen binds the shadow's syscall endpoint and begins serving.
func (s *Shadow) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Close stops the shadow.
func (s *Shadow) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

// Files exposes the underlying store.
func (s *Shadow) Files() *FileStore { return s.fs }

// SyscallCount reports how many messages of the given type have been
// served.
func (s *Shadow) SyscallCount(t protocol.MsgType) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[t]
}

// Checkpoint returns the stored checkpoint under key, if any.
func (s *Shadow) Checkpoint(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.ckpts[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), data...), true
}

func (s *Shadow) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
		}()
	}
}

// session is the per-connection descriptor table.
type session struct {
	nextFd int64
	open   map[int64]string // fd -> file name
}

func (s *Shadow) serve(conn net.Conn) {
	defer conn.Close()
	sess := &session{open: make(map[int64]string)}
	r := bufio.NewReader(conn)
	for {
		env, err := protocol.Read(r)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("shadow: read: %v", err)
			}
			return
		}
		s.mu.Lock()
		s.counts[env.Type]++
		s.mu.Unlock()
		reply := s.dispatch(sess, env)
		if err := protocol.Write(conn, reply); err != nil {
			s.logf("shadow: write: %v", err)
			return
		}
	}
}

func (s *Shadow) dispatch(sess *session, env *protocol.Envelope) *protocol.Envelope {
	switch env.Type {
	case protocol.TypeSysOpen:
		if env.Path == "" {
			return protocol.Errorf("open without a path")
		}
		switch env.Mode {
		case "r":
			if s.fs.Size(env.Path) < 0 {
				return protocol.Errorf("no such file %q", env.Path)
			}
		case "w":
			if s.fs.Size(env.Path) < 0 {
				s.fs.Put(env.Path, nil)
			}
		default:
			return protocol.Errorf("bad open mode %q", env.Mode)
		}
		sess.nextFd++
		sess.open[sess.nextFd] = env.Path
		return &protocol.Envelope{Type: protocol.TypeSysFd, Fd: sess.nextFd}
	case protocol.TypeSysRead:
		name, ok := sess.open[env.Fd]
		if !ok {
			return protocol.Errorf("read on closed fd %d", env.Fd)
		}
		if env.Count <= 0 || env.Count > 1<<20 {
			return protocol.Errorf("bad read count %d", env.Count)
		}
		buf := make([]byte, env.Count)
		n, eof, err := s.fs.ReadAt(name, env.Offset, buf)
		if err != nil {
			return protocol.Errorf("%v", err)
		}
		return &protocol.Envelope{
			Type: protocol.TypeSysData,
			Data: base64.StdEncoding.EncodeToString(buf[:n]),
			EOF:  eof,
		}
	case protocol.TypeSysWrite:
		name, ok := sess.open[env.Fd]
		if !ok {
			return protocol.Errorf("write on closed fd %d", env.Fd)
		}
		data, err := base64.StdEncoding.DecodeString(env.Data)
		if err != nil {
			return protocol.Errorf("bad write payload: %v", err)
		}
		if err := s.fs.WriteAt(name, env.Offset, data); err != nil {
			return protocol.Errorf("%v", err)
		}
		return &protocol.Envelope{Type: protocol.TypeAck}
	case protocol.TypeSysTrunc:
		name, ok := sess.open[env.Fd]
		if !ok {
			return protocol.Errorf("truncate on closed fd %d", env.Fd)
		}
		if err := s.fs.Truncate(name, env.Offset); err != nil {
			return protocol.Errorf("%v", err)
		}
		return &protocol.Envelope{Type: protocol.TypeAck}
	case protocol.TypeSysClose:
		if _, ok := sess.open[env.Fd]; !ok {
			return protocol.Errorf("close on closed fd %d", env.Fd)
		}
		delete(sess.open, env.Fd)
		return &protocol.Envelope{Type: protocol.TypeAck}
	case protocol.TypeCkptSave:
		if env.Path == "" {
			return protocol.Errorf("checkpoint without a key")
		}
		data, err := base64.StdEncoding.DecodeString(env.Data)
		if err != nil {
			return protocol.Errorf("bad checkpoint payload: %v", err)
		}
		s.mu.Lock()
		s.ckpts[env.Path] = data
		s.mu.Unlock()
		return &protocol.Envelope{Type: protocol.TypeAck}
	case protocol.TypeCkptLoad:
		s.mu.Lock()
		data, ok := s.ckpts[env.Path]
		s.mu.Unlock()
		if !ok {
			return &protocol.Envelope{Type: protocol.TypeCkptData, EOF: true}
		}
		return &protocol.Envelope{
			Type: protocol.TypeCkptData,
			Data: base64.StdEncoding.EncodeToString(data),
		}
	default:
		return protocol.Errorf("shadow does not handle %s", env.Type)
	}
}
