// Package remote implements the execution substrate behind the
// paper's job attributes WantRemoteSyscalls and WantCheckpoint
// (Figure 2): the shadow/starter pair of the Condor system the paper's
// framework manages.
//
// When a claim is established, the resource side runs a *starter* that
// executes the job, and the customer side runs a *shadow* that serves
// the job's system calls — its files live with the customer, not on
// the borrowed workstation — and stores its checkpoints. An evicted
// job restarts on another machine from its last checkpoint, with its
// partially written output rolled back consistently. These two
// mechanisms are what make opportunistic scheduling survivable: the
// borrowed machine keeps no job state whatsoever.
//
// Real Condor interposes on the C library; here jobs are synthetic
// step loops doing genuine remote reads, writes and checkpoints over
// the same wire protocol the agents use, which preserves every
// distributed-systems property the paper relies on (statelessness of
// the execution site, consistency across eviction) without emulating
// SPARC binaries.
package remote

import (
	"fmt"
	"sort"
	"sync"
)

// FileStore is the shadow-side file system: the customer's files, kept
// where the customer is. It is deliberately simple — flat names, byte
// contents — because the protocol, not POSIX fidelity, is the point.
type FileStore struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewFileStore returns an empty store.
func NewFileStore() *FileStore {
	return &FileStore{files: make(map[string][]byte)}
}

// Put creates or replaces a file.
func (fs *FileStore) Put(name string, data []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files[name] = append([]byte(nil), data...)
}

// Get returns a copy of a file's contents.
func (fs *FileStore) Get(name string) ([]byte, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	data, ok := fs.files[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), data...), true
}

// Size returns a file's length, or -1 if absent.
func (fs *FileStore) Size(name string) int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	data, ok := fs.files[name]
	if !ok {
		return -1
	}
	return int64(len(data))
}

// ReadAt copies up to len(p) bytes from offset off of the named file.
// It reports the bytes copied and whether the end of file was reached.
func (fs *FileStore) ReadAt(name string, off int64, p []byte) (int, bool, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	data, ok := fs.files[name]
	if !ok {
		return 0, false, fmt.Errorf("remote: no such file %q", name)
	}
	if off < 0 {
		return 0, false, fmt.Errorf("remote: negative offset")
	}
	if off >= int64(len(data)) {
		return 0, true, nil
	}
	n := copy(p, data[off:])
	return n, off+int64(n) >= int64(len(data)), nil
}

// WriteAt writes p at offset off, extending the file as needed.
// Offsets beyond the current end zero-fill the gap.
func (fs *FileStore) WriteAt(name string, off int64, p []byte) error {
	if off < 0 {
		return fmt.Errorf("remote: negative offset")
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	data := fs.files[name]
	need := off + int64(len(p))
	if int64(len(data)) < need {
		grown := make([]byte, need)
		copy(grown, data)
		data = grown
	}
	copy(data[off:], p)
	fs.files[name] = data
	return nil
}

// Truncate cuts the named file to length n (creating it empty if
// absent). The starter uses it to roll partially written output back
// to the last checkpoint after an eviction.
func (fs *FileStore) Truncate(name string, n int64) error {
	if n < 0 {
		return fmt.Errorf("remote: negative length")
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	data := fs.files[name]
	if int64(len(data)) <= n {
		grown := make([]byte, n)
		copy(grown, data)
		fs.files[name] = grown
		return nil
	}
	fs.files[name] = data[:n]
	return nil
}

// Names lists the stored files, sorted.
func (fs *FileStore) Names() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.files))
	for n := range fs.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
