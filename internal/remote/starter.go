package remote

import (
	"bufio"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net"

	"repro/internal/netx"
	"repro/internal/protocol"
)

// SyscallClient is the starter's connection to its shadow: every file
// operation and checkpoint crosses the wire, so the execution machine
// holds nothing the job needs to survive.
type SyscallClient struct {
	conn net.Conn
	r    *bufio.Reader
}

// DialShadow connects a starter to its shadow. The dial goes through
// netx so it inherits the pool-wide connect deadline instead of
// hanging forever on a dead shadow address.
func DialShadow(addr string) (*SyscallClient, error) {
	conn, err := netx.DefaultDialer.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &SyscallClient{conn: conn, r: bufio.NewReader(conn)}, nil
}

// Close drops the connection.
func (c *SyscallClient) Close() error { return c.conn.Close() }

func (c *SyscallClient) call(env *protocol.Envelope) (*protocol.Envelope, error) {
	if err := protocol.Write(c.conn, env); err != nil {
		return nil, err
	}
	reply, err := protocol.Read(c.r)
	if err != nil {
		return nil, err
	}
	if reply.Type == protocol.TypeError {
		return nil, errors.New(reply.Reason)
	}
	return reply, nil
}

// Open opens a remote file; mode is "r" or "w" (which creates).
func (c *SyscallClient) Open(path, mode string) (int64, error) {
	reply, err := c.call(&protocol.Envelope{Type: protocol.TypeSysOpen, Path: path, Mode: mode})
	if err != nil {
		return 0, err
	}
	if reply.Type != protocol.TypeSysFd {
		return 0, fmt.Errorf("remote: unexpected open reply %s", reply.Type)
	}
	return reply.Fd, nil
}

// ReadAt reads up to count bytes at offset; eof reports end of file.
func (c *SyscallClient) ReadAt(fd, offset, count int64) (data []byte, eof bool, err error) {
	reply, err := c.call(&protocol.Envelope{
		Type: protocol.TypeSysRead, Fd: fd, Offset: offset, Count: count,
	})
	if err != nil {
		return nil, false, err
	}
	if reply.Type != protocol.TypeSysData {
		return nil, false, fmt.Errorf("remote: unexpected read reply %s", reply.Type)
	}
	payload, err := base64.StdEncoding.DecodeString(reply.Data)
	if err != nil {
		return nil, false, err
	}
	return payload, reply.EOF, nil
}

// WriteAt writes data at offset.
func (c *SyscallClient) WriteAt(fd, offset int64, data []byte) error {
	_, err := c.call(&protocol.Envelope{
		Type: protocol.TypeSysWrite, Fd: fd, Offset: offset,
		Data: base64.StdEncoding.EncodeToString(data),
	})
	return err
}

// Truncate cuts the file behind fd to n bytes.
func (c *SyscallClient) Truncate(fd, n int64) error {
	_, err := c.call(&protocol.Envelope{Type: protocol.TypeSysTrunc, Fd: fd, Offset: n})
	return err
}

// CloseFd releases a descriptor.
func (c *SyscallClient) CloseFd(fd int64) error {
	_, err := c.call(&protocol.Envelope{Type: protocol.TypeSysClose, Fd: fd})
	return err
}

// SaveCheckpoint stores state under key at the shadow.
func (c *SyscallClient) SaveCheckpoint(key string, state []byte) error {
	_, err := c.call(&protocol.Envelope{
		Type: protocol.TypeCkptSave, Path: key,
		Data: base64.StdEncoding.EncodeToString(state),
	})
	return err
}

// LoadCheckpoint fetches the state stored under key; ok is false when
// no checkpoint exists.
func (c *SyscallClient) LoadCheckpoint(key string) (state []byte, ok bool, err error) {
	reply, err := c.call(&protocol.Envelope{Type: protocol.TypeCkptLoad, Path: key})
	if err != nil {
		return nil, false, err
	}
	if reply.Type != protocol.TypeCkptData {
		return nil, false, fmt.Errorf("remote: unexpected checkpoint reply %s", reply.Type)
	}
	if reply.EOF {
		return nil, false, nil
	}
	state, err = base64.StdEncoding.DecodeString(reply.Data)
	if err != nil {
		return nil, false, err
	}
	return state, true, nil
}

// JobSpec describes a synthetic remote-syscall job: it consumes Input
// in ChunkSize records, transforms each, appends the result to Output,
// and checkpoints every CheckpointEvery steps. The transform is
// deterministic, so the final Output is byte-identical however many
// evictions interrupt the run.
type JobSpec struct {
	// Key names the job's checkpoint at the shadow.
	Key string
	// Input and Output are remote file names.
	Input, Output string
	// ChunkSize is the record size in bytes (default 64).
	ChunkSize int64
	// CheckpointEvery is the checkpoint period in steps (default 8).
	CheckpointEvery int
}

func (s *JobSpec) fill() {
	if s.ChunkSize <= 0 {
		s.ChunkSize = 64
	}
	if s.CheckpointEvery <= 0 {
		s.CheckpointEvery = 8
	}
}

// checkpoint is the serialized resume state.
type checkpoint struct {
	Step      int   `json:"step"`
	OutputLen int64 `json:"output_len"`
	Done      bool  `json:"done"`
}

// RunResult reports a starter session.
type RunResult struct {
	// Done is true when the job processed its whole input.
	Done bool
	// Steps is the number of records processed in this session.
	Steps int
	// ResumedFrom is the checkpoint step this session started at.
	ResumedFrom int
}

// Run executes the job against the shadow at shadowAddr until it
// completes or cancel is closed (eviction). A later Run with the same
// spec resumes from the last checkpoint, rolling the output back to
// the checkpointed length first — unbanked partial output never
// survives, which is exactly the consistency eviction requires.
func Run(shadowAddr string, spec JobSpec, cancel <-chan struct{}) (RunResult, error) {
	spec.fill()
	var res RunResult
	c, err := DialShadow(shadowAddr)
	if err != nil {
		return res, err
	}
	defer c.Close()

	// Resume state.
	var ck checkpoint
	if state, ok, err := c.LoadCheckpoint(spec.Key); err != nil {
		return res, err
	} else if ok {
		if err := json.Unmarshal(state, &ck); err != nil {
			return res, fmt.Errorf("remote: corrupt checkpoint: %w", err)
		}
	}
	res.ResumedFrom = ck.Step
	if ck.Done {
		res.Done = true
		return res, nil
	}

	in, err := c.Open(spec.Input, "r")
	if err != nil {
		return res, err
	}
	out, err := c.Open(spec.Output, "w")
	if err != nil {
		return res, err
	}
	// Roll partial output back to the last consistent point.
	if err := c.Truncate(out, ck.OutputLen); err != nil {
		return res, err
	}

	step := ck.Step
	outOff := ck.OutputLen
	save := func(done bool) error {
		state, err := json.Marshal(checkpoint{Step: step, OutputLen: outOff, Done: done})
		if err != nil {
			return err
		}
		return c.SaveCheckpoint(spec.Key, state)
	}
	for {
		select {
		case <-cancel:
			// Evicted: whatever was not checkpointed is rolled back
			// by the next session's Truncate. Nothing to clean here
			// — the execution site is stateless by construction.
			return res, nil
		default:
		}
		chunk, eof, err := c.ReadAt(in, int64(step)*spec.ChunkSize, spec.ChunkSize)
		if err != nil {
			return res, err
		}
		if len(chunk) > 0 {
			record := transform(step, chunk)
			if err := c.WriteAt(out, outOff, record); err != nil {
				return res, err
			}
			outOff += int64(len(record))
			step++
			res.Steps++
			if step%spec.CheckpointEvery == 0 {
				if err := save(false); err != nil {
					return res, err
				}
			}
		}
		if eof {
			break
		}
	}
	if err := save(true); err != nil {
		return res, err
	}
	_ = c.CloseFd(in)
	_ = c.CloseFd(out)
	res.Done = true
	return res, nil
}

// transform is the job's deterministic per-record computation: a
// checksum line, so output correctness is trivially verifiable.
func transform(step int, chunk []byte) []byte {
	var sum uint32
	for _, b := range chunk {
		sum = sum*31 + uint32(b)
	}
	return []byte(fmt.Sprintf("step %06d len %4d sum %08x\n", step, len(chunk), sum))
}

// ExpectedOutput computes the full output the job should produce for
// the given input — what tests compare the shadow's file against.
func ExpectedOutput(input []byte, chunkSize int64) []byte {
	if chunkSize <= 0 {
		chunkSize = 64
	}
	var out []byte
	for step := 0; int64(step)*chunkSize < int64(len(input)); step++ {
		lo := int64(step) * chunkSize
		hi := lo + chunkSize
		if hi > int64(len(input)) {
			hi = int64(len(input))
		}
		out = append(out, transform(step, input[lo:hi])...)
	}
	return out
}
