package remote

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/protocol"
)

func TestFileStoreBasics(t *testing.T) {
	fs := NewFileStore()
	if fs.Size("x") != -1 {
		t.Error("missing file has a size")
	}
	fs.Put("x", []byte("hello world"))
	if fs.Size("x") != 11 {
		t.Errorf("size = %d", fs.Size("x"))
	}
	buf := make([]byte, 5)
	n, eof, err := fs.ReadAt("x", 6, buf)
	if err != nil || n != 5 || !eof {
		t.Errorf("ReadAt = %d, %v, %v", n, eof, err)
	}
	if string(buf[:n]) != "world" {
		t.Errorf("read %q", buf[:n])
	}
	// Read past the end.
	n, eof, _ = fs.ReadAt("x", 100, buf)
	if n != 0 || !eof {
		t.Errorf("past-end read = %d, eof %v", n, eof)
	}
	// Mid-file read is not EOF.
	_, eof, _ = fs.ReadAt("x", 0, buf)
	if eof {
		t.Error("mid-file read reported eof")
	}
	if _, _, err := fs.ReadAt("nope", 0, buf); err == nil {
		t.Error("read of missing file should error")
	}
	// Write extends, overwrites, zero-fills gaps.
	if err := fs.WriteAt("y", 3, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	data, _ := fs.Get("y")
	if !bytes.Equal(data, []byte{0, 0, 0, 'a', 'b', 'c'}) {
		t.Errorf("gap write = %v", data)
	}
	// Truncate shrinks and grows.
	if err := fs.Truncate("y", 4); err != nil {
		t.Fatal(err)
	}
	if fs.Size("y") != 4 {
		t.Errorf("after truncate size = %d", fs.Size("y"))
	}
	if err := fs.Truncate("y", 8); err != nil {
		t.Fatal(err)
	}
	if fs.Size("y") != 8 {
		t.Errorf("after grow size = %d", fs.Size("y"))
	}
	if names := fs.Names(); len(names) != 2 || names[0] != "x" {
		t.Errorf("names = %v", names)
	}
	// Negative offsets rejected.
	if err := fs.WriteAt("y", -1, []byte("z")); err == nil {
		t.Error("negative write offset accepted")
	}
	if err := fs.Truncate("y", -1); err == nil {
		t.Error("negative truncate accepted")
	}
}

func startShadow(t *testing.T) (*Shadow, string) {
	t.Helper()
	sh := NewShadow(NewFileStore(), t.Logf)
	addr, err := sh.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sh.Close)
	return sh, addr
}

func TestSyscallsOverWire(t *testing.T) {
	sh, addr := startShadow(t)
	sh.Files().Put("input.dat", []byte("0123456789"))

	c, err := DialShadow(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fd, err := c.Open("input.dat", "r")
	if err != nil {
		t.Fatal(err)
	}
	data, eof, err := c.ReadAt(fd, 2, 4)
	if err != nil || string(data) != "2345" || eof {
		t.Errorf("read = %q eof=%v err=%v", data, eof, err)
	}
	data, eof, err = c.ReadAt(fd, 8, 4)
	if err != nil || string(data) != "89" || !eof {
		t.Errorf("tail read = %q eof=%v err=%v", data, eof, err)
	}
	// Write path.
	wfd, err := c.Open("out.dat", "w")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteAt(wfd, 0, []byte("result")); err != nil {
		t.Fatal(err)
	}
	if err := c.Truncate(wfd, 3); err != nil {
		t.Fatal(err)
	}
	if err := c.CloseFd(wfd); err != nil {
		t.Fatal(err)
	}
	got, _ := sh.Files().Get("out.dat")
	if string(got) != "res" {
		t.Errorf("out.dat = %q", got)
	}
	// Errors: missing file, bad fd, closed fd.
	if _, err := c.Open("missing", "r"); err == nil {
		t.Error("open of missing file for read should fail")
	}
	if _, err := c.Open("x", "a"); err == nil {
		t.Error("bad mode accepted")
	}
	if _, _, err := c.ReadAt(999, 0, 4); err == nil {
		t.Error("read on bad fd accepted")
	}
	if err := c.CloseFd(fd); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.ReadAt(fd, 0, 4); err == nil {
		t.Error("read on closed fd accepted")
	}
	// Syscall accounting.
	if sh.SyscallCount(protocol.TypeSysRead) < 3 {
		t.Errorf("read count = %d", sh.SyscallCount(protocol.TypeSysRead))
	}
}

func TestCheckpointStore(t *testing.T) {
	sh, addr := startShadow(t)
	c, err := DialShadow(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, ok, err := c.LoadCheckpoint("job1"); err != nil || ok {
		t.Errorf("fresh load = ok:%v err:%v", ok, err)
	}
	if err := c.SaveCheckpoint("job1", []byte("state-v1")); err != nil {
		t.Fatal(err)
	}
	state, ok, err := c.LoadCheckpoint("job1")
	if err != nil || !ok || string(state) != "state-v1" {
		t.Errorf("load = %q ok:%v err:%v", state, ok, err)
	}
	// Overwrite.
	if err := c.SaveCheckpoint("job1", []byte("state-v2")); err != nil {
		t.Fatal(err)
	}
	state, _, _ = c.LoadCheckpoint("job1")
	if string(state) != "state-v2" {
		t.Errorf("after overwrite = %q", state)
	}
	if _, ok := sh.Checkpoint("job1"); !ok {
		t.Error("server-side checkpoint accessor missed")
	}
}

func makeInput(n int) []byte {
	var b bytes.Buffer
	for i := 0; b.Len() < n; i++ {
		fmt.Fprintf(&b, "record-%d|", i)
	}
	return b.Bytes()[:n]
}

func TestRunToCompletion(t *testing.T) {
	sh, addr := startShadow(t)
	input := makeInput(1000)
	sh.Files().Put("in", input)
	spec := JobSpec{Key: "job", Input: "in", Output: "out", ChunkSize: 64, CheckpointEvery: 4}
	res, err := Run(addr, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.ResumedFrom != 0 {
		t.Errorf("result = %+v", res)
	}
	want := ExpectedOutput(input, 64)
	got, _ := sh.Files().Get("out")
	if !bytes.Equal(got, want) {
		t.Errorf("output mismatch:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
	// Steps: ceil(1000/64) = 16.
	if res.Steps != 16 {
		t.Errorf("steps = %d", res.Steps)
	}
	// Re-running a completed job is a no-op.
	res2, err := Run(addr, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Done || res2.Steps != 0 {
		t.Errorf("rerun = %+v", res2)
	}
}

// TestRunSurvivesEvictions is the substrate's core property: evict the
// starter repeatedly mid-run; each resume rolls back to the last
// checkpoint, and the final output is byte-identical to an
// uninterrupted run.
func TestRunSurvivesEvictions(t *testing.T) {
	sh, addr := startShadow(t)
	input := makeInput(4096)
	sh.Files().Put("in", input)
	spec := JobSpec{Key: "job", Input: "in", Output: "out", ChunkSize: 64, CheckpointEvery: 5}

	sessions := 0
	for {
		sessions++
		if sessions > 100 {
			t.Fatal("no progress across 100 sessions")
		}
		// Evict after a few steps: cancel fires once the session
		// has had a chance to process ~3 records. We approximate by
		// closing after the run reports; instead, run with a cancel
		// channel closed pre-emptively every other session to also
		// exercise instant eviction.
		cancel := make(chan struct{})
		done := make(chan RunResult, 1)
		go func() {
			res, err := Run(addr, spec, cancel)
			if err != nil {
				t.Error(err)
			}
			done <- res
		}()
		var res RunResult
		if sessions%2 == 1 {
			// Let it work briefly, then evict.
			for i := 0; i < 3; i++ {
				if sh.SyscallCount(protocol.TypeSysWrite) > sessions*3 {
					break
				}
			}
			close(cancel)
			res = <-done
		} else {
			res = <-done
		}
		if res.Done {
			break
		}
	}
	want := ExpectedOutput(input, 64)
	got, _ := sh.Files().Get("out")
	if !bytes.Equal(got, want) {
		t.Fatalf("output corrupted across %d sessions: got %d bytes, want %d",
			sessions, len(got), len(want))
	}
	t.Logf("completed across %d sessions", sessions)
}

// TestRunRollsBackUncheckpointedOutput: dirty output past the last
// checkpoint is discarded on resume, never duplicated.
func TestRunRollsBackUncheckpointedOutput(t *testing.T) {
	sh, addr := startShadow(t)
	input := makeInput(640) // 10 records
	sh.Files().Put("in", input)
	spec := JobSpec{Key: "job", Input: "in", Output: "out", ChunkSize: 64, CheckpointEvery: 100}

	// Session 1: evicted immediately after start — with
	// CheckpointEvery=100 nothing is ever checkpointed mid-run, so
	// any partial output must be rolled back by session 2.
	cancel := make(chan struct{})
	close(cancel)
	res, err := Run(addr, spec, cancel)
	if err != nil {
		t.Fatal(err)
	}
	if res.Done {
		t.Fatal("cancelled session claims completion")
	}
	// Pollute the output as if a write landed before eviction.
	sh.Files().Put("out", []byte("partial garbage"))

	res, err = Run(addr, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.ResumedFrom != 0 {
		t.Errorf("resume = %+v", res)
	}
	want := ExpectedOutput(input, 64)
	got, _ := sh.Files().Get("out")
	if !bytes.Equal(got, want) {
		t.Errorf("garbage survived the rollback")
	}
}

func TestConcurrentStarters(t *testing.T) {
	sh, addr := startShadow(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		input := makeInput(512 + i*64)
		sh.Files().Put(fmt.Sprintf("in%d", i), input)
		wg.Add(1)
		go func(i int, input []byte) {
			defer wg.Done()
			spec := JobSpec{
				Key:    fmt.Sprintf("job%d", i),
				Input:  fmt.Sprintf("in%d", i),
				Output: fmt.Sprintf("out%d", i),
			}
			res, err := Run(addr, spec, nil)
			if err != nil || !res.Done {
				t.Errorf("job %d: %+v %v", i, res, err)
				return
			}
			want := ExpectedOutput(input, 64)
			got, _ := sh.Files().Get(fmt.Sprintf("out%d", i))
			if !bytes.Equal(got, want) {
				t.Errorf("job %d output mismatch", i)
			}
		}(i, input)
	}
	wg.Wait()
}
