package protocol

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"
)

// FuzzReadEnvelope drives Read with arbitrary byte streams and checks
// the envelope invariants: Read never panics, never returns an
// envelope without a type, and every successfully decoded envelope
// survives a Write/Read round-trip unchanged. Run continuously with
// `make fuzz` (wired into `make ci`).
func FuzzReadEnvelope(f *testing.F) {
	// Seed with real frames from every protocol family.
	seeds := []*Envelope{
		{Type: TypeAdvertise, Ad: "[ Name = \"m1\"; Type = \"Machine\" ]", Lifetime: 900},
		{Type: TypeInvalidate, Name: "m1"},
		{Type: TypeUpdateDelta, Name: "m1", BaseSeq: 3, Seq: 4,
			Ad: "[ State = \"Claimed\" ]", Removed: []string{"LoadAvg"}, Lifetime: 900},
		{Type: TypeUpdateDelta, Name: "m1", BaseSeq: 7, Seq: 8, Lifetime: 900},
		{Type: TypeQuery, Ad: "[ Requirements = other.Type == \"Machine\" ]", Projection: []string{"Name", "Arch"}},
		{Type: TypeQueryReply, Ads: []string{"[ Name = \"a\" ]", "[ Name = \"b\" ]"}},
		{Type: TypeMatch, PeerAd: "[ Name = \"m1\" ]", Ticket: "deadbeef", Session: "cafe"},
		{Type: TypeClaim, Ad: "[ JobId = 1 ]", Ticket: "deadbeef"},
		{Type: TypeClaimReply, Accepted: true},
		{Type: TypeChallenge, Nonce: "0123"},
		{Type: TypeChalReply, MAC: "abcd"},
		{Type: TypeError, Reason: "bad frame"},
		{Type: TypeSysRead, Fd: 3, Offset: 128, Count: 4096},
		{Type: TypeSysData, Data: "aGVsbG8=", EOF: true},
	}
	for _, e := range seeds {
		var buf bytes.Buffer
		if err := Write(&buf, e); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Malformed and adversarial seeds.
	f.Add([]byte("\n"))
	f.Add([]byte("{}\n"))
	f.Add([]byte(`{"type":"ACK"`))
	f.Add([]byte(`{"type":123}` + "\n"))
	f.Add([]byte(`{"type":"ACK","lifetime":"not a number"}` + "\n"))
	f.Add(bytes.Repeat([]byte{'x'}, 1<<16))
	f.Add(append(bytes.Repeat([]byte{' '}, 1<<12), []byte("{\"type\":\"ACK\"}\n")...))

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Read(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return // rejected input is fine; not panicking is the point
		}
		if env.Type == "" {
			t.Fatal("Read returned an envelope without a type")
		}
		var buf bytes.Buffer
		if err := Write(&buf, env); err != nil {
			t.Fatalf("re-encoding decoded envelope: %v", err)
		}
		again, err := Read(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("re-decoding written envelope: %v", err)
		}
		if !reflect.DeepEqual(env, again) {
			t.Fatalf("round-trip changed envelope:\n 1st %+v\n 2nd %+v", env, again)
		}
	})
}
