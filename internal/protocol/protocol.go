// Package protocol defines the wire protocols of the matchmaking
// framework (paper §3, components 2, 4 and 5):
//
//   - the advertising protocol, by which providers and customers send
//     classads to the pool manager (ADVERTISE, INVALIDATE) and tools
//     pose one-way queries (QUERY);
//   - the matchmaking protocol, by which the matchmaker notifies both
//     parties of a match, forwarding each the other's ad together with
//     the provider's authorization ticket (MATCH);
//   - the claiming protocol, by which the customer contacts the
//     provider directly — the matchmaker is no longer involved — and
//     the provider re-verifies the ticket and its constraints against
//     current state (CLAIM/CLAIM_REPLY/RELEASE/PREEMPT), optionally
//     inside an HMAC challenge–response handshake (paper §3.2,
//     "Authentication").
//
// Messages are newline-delimited JSON envelopes; classads travel in
// their native source syntax inside the envelopes. The format favours
// debuggability (every daemon conversation is readable with a pipe
// through cat) over compactness, like the deployed system's.
package protocol

import (
	"bufio"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/classad"
)

// MsgType identifies a protocol message.
type MsgType string

// The protocol's message vocabulary.
const (
	TypeAdvertise  MsgType = "ADVERTISE"
	TypeInvalidate MsgType = "INVALIDATE"
	// TypeUpdateDelta refreshes a previously advertised ad by sending
	// only the attributes that changed (Ad) and the attributes that
	// disappeared (Removed) against a base sequence number. The
	// collector merges the delta into its stored copy when BaseSeq
	// matches the stored sequence and otherwise rejects the delta so
	// the advertiser falls back to a full ADVERTISE — a lost or
	// reordered delta can delay freshness but never corrupt an ad.
	// An empty delta (no Ad, no Removed) is a pure heartbeat: it
	// renews the lifetime without resending any attribute.
	TypeUpdateDelta MsgType = "UPDATE_DELTA"
	TypeQuery      MsgType = "QUERY"
	TypeQueryReply MsgType = "QUERY_REPLY"
	TypeMatch      MsgType = "MATCH"
	TypeClaim      MsgType = "CLAIM"
	TypeClaimReply MsgType = "CLAIM_REPLY"
	TypeRelease    MsgType = "RELEASE"
	TypePreempt    MsgType = "PREEMPT"
	TypeChallenge  MsgType = "CHALLENGE"
	TypeChalReply  MsgType = "CHALLENGE_REPLY"
	TypeAck        MsgType = "ACK"
	TypeError      MsgType = "ERROR"
	// TypeSubmit delivers a job ad to a customer agent's queue (the
	// submission tool's message; not part of the paper's matchmaker
	// protocols, which begin once the job is queued).
	TypeSubmit MsgType = "SUBMIT"

	// Remote-syscall sub-protocol (Figure 2's WantRemoteSyscalls):
	// spoken between a starter on the claimed machine and the shadow
	// at the customer's site. The execution site holds no job state.
	TypeSysOpen  MsgType = "SYS_OPEN"
	TypeSysFd    MsgType = "SYS_FD"
	TypeSysRead  MsgType = "SYS_READ"
	TypeSysData  MsgType = "SYS_DATA"
	TypeSysWrite MsgType = "SYS_WRITE"
	TypeSysTrunc MsgType = "SYS_TRUNC"
	TypeSysClose MsgType = "SYS_CLOSE"
	// Checkpoint store (Figure 2's WantCheckpoint).
	TypeCkptSave MsgType = "CKPT_SAVE"
	TypeCkptLoad MsgType = "CKPT_LOAD"
	TypeCkptData MsgType = "CKPT_DATA"
	// TypeJobDone notifies the customer agent that the starter on a
	// claimed machine ran the job to completion.
	TypeJobDone MsgType = "JOB_DONE"

	// Negotiator high availability (not in the paper, which assumes a
	// single matchmaker per pool; the deployed system later grew the
	// same mechanism): a negotiator asks the collector — the pool's
	// single arbiter — for the leadership lease, renewing it each
	// heartbeat. The reply carries the granted (or observed) holder,
	// fencing epoch and absolute deadline.
	TypeLease      MsgType = "LEASE"
	TypeLeaseReply MsgType = "LEASE_REPLY"
)

// Envelope is the on-wire frame: one JSON object per line.
type Envelope struct {
	Type MsgType `json:"type"`
	// Ad carries a classad in source syntax where the message has a
	// primary ad (ADVERTISE, QUERY, CLAIM's request ad).
	Ad string `json:"ad,omitempty"`
	// PeerAd carries the counterpart's ad in a MATCH notification.
	PeerAd string `json:"peer_ad,omitempty"`
	// Ads carries multiple ads (QUERY_REPLY).
	Ads []string `json:"ads,omitempty"`
	// Name identifies an ad to invalidate, or the matched entity.
	Name string `json:"name,omitempty"`
	// Ticket is the provider's authorization capability.
	Ticket string `json:"ticket,omitempty"`
	// Session is the matchmaker-minted session identifier handed to
	// both parties of a match.
	Session string `json:"session,omitempty"`
	// Cycle is the negotiation-cycle identifier stamped into MATCH
	// notifications by the pool manager and echoed by the CA into the
	// CLAIM it sends the provider, so observability events from every
	// party of one match share an ID (obs package). Older peers ignore
	// the field; its absence simply leaves events uncorrelated.
	Cycle string `json:"cycle,omitempty"`
	// Trace is the causal trace identifier minted when a request is
	// submitted and propagated through every envelope sent on its
	// behalf (MATCH, CLAIM, RELEASE, PREEMPT, JOB_DONE), so the spans
	// each daemon records reassemble into one cross-process trace
	// (obs package). Like Cycle, older peers ignore it; its absence
	// leaves the request untraced, never unserved.
	Trace string `json:"trace,omitempty"`
	// Span is the sender's span ID — the parent under which the
	// receiver records its own span, giving the trace its tree shape.
	Span string `json:"span,omitempty"`
	// Lifetime is the advertisement's validity in seconds; the
	// collector expires ads that are not refreshed (advertising
	// protocol bookkeeping). In a LEASE request it is the requested
	// lease duration.
	Lifetime int64 `json:"lifetime,omitempty"`
	// Epoch is the leadership fencing token: the collector bumps it
	// each time the lease changes hands, the leader stamps it into
	// MATCH notifications, and customer agents reject matches bearing
	// an epoch below the highest they have seen — a deposed leader's
	// stale matches cannot double-grant a resource. Zero (absent) means
	// the sender is not HA-aware; such matches are accepted for
	// compatibility.
	Epoch uint64 `json:"epoch,omitempty"`
	// Holder names the current lease holder in LEASE traffic.
	Holder string `json:"holder,omitempty"`
	// Deadline is the lease expiry as absolute pool time (Unix
	// seconds). Absolute rather than relative so a standby that
	// observes the reply can wait out the precise remainder.
	Deadline int64 `json:"deadline,omitempty"`
	// Seq is the advertiser-assigned sequence number of the ad state
	// an ADVERTISE or UPDATE_DELTA establishes; BaseSeq is the
	// sequence number the delta patches. The collector applies an
	// UPDATE_DELTA only when BaseSeq equals the stored ad's sequence,
	// so deltas compose into exactly the ad the advertiser holds.
	Seq     uint64 `json:"seq,omitempty"`
	BaseSeq uint64 `json:"base_seq,omitempty"`
	// Removed lists attributes deleted since BaseSeq (UPDATE_DELTA).
	Removed []string `json:"removed,omitempty"`
	// Accepted reports a claim verdict.
	Accepted bool `json:"accepted,omitempty"`
	// Reason explains errors and claim rejections.
	Reason string `json:"reason,omitempty"`
	// Nonce and MAC implement the challenge-response handshake.
	Nonce string `json:"nonce,omitempty"`
	MAC   string `json:"mac,omitempty"`
	// Projection restricts QUERY replies to the named attributes
	// (Name is always included).
	Projection []string `json:"projection,omitempty"`
	// Remote-syscall fields.
	Path   string `json:"path,omitempty"`
	Mode   string `json:"mode,omitempty"`
	Fd     int64  `json:"fd,omitempty"`
	Offset int64  `json:"offset,omitempty"`
	Count  int64  `json:"count,omitempty"`
	// Data carries file or checkpoint bytes, base64-encoded.
	Data string `json:"data,omitempty"`
	// EOF marks a read that reached end of file.
	EOF bool `json:"eof,omitempty"`
}

// maxLine bounds a single message to keep a misbehaving peer from
// exhausting memory; generous for any realistic classad.
const maxLine = 16 << 20

// Write frames and sends one envelope.
func Write(w io.Writer, e *Envelope) error {
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("protocol: marshal %s: %w", e.Type, err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Read receives one envelope from a buffered reader. Buffering is
// bounded: the line is accumulated one bufio chunk at a time and the
// read fails as soon as it exceeds maxLine, so a misbehaving peer can
// only force ~maxLine of allocation, never an unbounded frame. A
// truncated frame (the connection died mid-line) returns the
// transport error rather than attempting to decode partial bytes; the
// only tolerated irregularity is a missing trailing newline on the
// final message of a connection.
func Read(r *bufio.Reader) (*Envelope, error) {
	var line []byte
	for {
		chunk, err := r.ReadSlice('\n')
		line = append(line, chunk...)
		if len(line) > maxLine {
			return nil, fmt.Errorf("protocol: message exceeds %d bytes", maxLine)
		}
		if err == nil {
			break
		}
		if err == bufio.ErrBufferFull {
			continue // mid-line; keep accumulating, bounded above
		}
		if err == io.EOF && len(line) > 0 {
			break // missing trailing newline on a final message
		}
		return nil, err
	}
	var e Envelope
	if err := json.Unmarshal(line, &e); err != nil {
		return nil, fmt.Errorf("protocol: bad frame: %w", err)
	}
	if e.Type == "" {
		return nil, fmt.Errorf("protocol: frame missing type")
	}
	// Canonicalize: a frame carrying an explicit empty list ("Ads":[])
	// decodes to an empty non-nil slice, which omitempty would then
	// drop on re-encode — the decoded form must round-trip unchanged
	// (fuzz-found, see testdata/fuzz/FuzzReadEnvelope).
	if len(e.Ads) == 0 {
		e.Ads = nil
	}
	if len(e.Projection) == 0 {
		e.Projection = nil
	}
	if len(e.Removed) == 0 {
		e.Removed = nil
	}
	return &e, nil
}

// EncodeAd renders an ad for an envelope field.
func EncodeAd(ad *classad.Ad) string { return ad.String() }

// DecodeAd parses an envelope's ad field.
func DecodeAd(s string) (*classad.Ad, error) {
	if s == "" {
		return nil, fmt.Errorf("protocol: empty ad field")
	}
	return classad.Parse(s)
}

// NewTicket mints a fresh 128-bit authorization ticket. The RA
// includes it in its advertisement; the matchmaker forwards it to the
// matched customer; the RA honours a claim only if the presented
// ticket matches (paper §4).
func NewTicket() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("protocol: ticket entropy: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// NewSession mints a session identifier for a match notification.
func NewSession() (string, error) { return NewTicket() }

// NewNonce mints a challenge nonce.
func NewNonce() (string, error) { return NewTicket() }

// Respond computes the challenge response: HMAC-SHA256 keyed by the
// shared ticket over the nonce. Both parties know the ticket (the RA
// minted it; the CA received it via the matchmaker), so each can
// prove knowledge without sending it again (paper §3.2: "A challenge-
// response handshake can be added to the claiming protocol at very
// little cost").
func Respond(ticket, nonce string) string {
	mac := hmac.New(sha256.New, []byte(ticket))
	mac.Write([]byte(nonce))
	return hex.EncodeToString(mac.Sum(nil))
}

// VerifyResponse checks a challenge response in constant time.
func VerifyResponse(ticket, nonce, response string) bool {
	want := Respond(ticket, nonce)
	got, err := hex.DecodeString(response)
	if err != nil {
		return false
	}
	wantRaw, _ := hex.DecodeString(want)
	return hmac.Equal(wantRaw, got)
}

// Errorf builds an ERROR envelope.
func Errorf(format string, args ...any) *Envelope {
	return &Envelope{Type: TypeError, Reason: fmt.Sprintf(format, args...)}
}
