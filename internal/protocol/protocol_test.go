package protocol

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"strings"
	"testing"

	"repro/internal/classad"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sent := []*Envelope{
		{Type: TypeAdvertise, Ad: classad.Figure1().String(), Lifetime: 300},
		{Type: TypeQuery, Ad: `[ Constraint = other.Memory >= 32 ]`},
		{Type: TypeMatch, PeerAd: classad.Figure2().String(), Ticket: "t", Session: "s"},
		{Type: TypeClaimReply, Accepted: true},
		{Type: TypeError, Reason: "nope"},
	}
	for _, e := range sent {
		if err := Write(&buf, e); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	for i, want := range sent {
		got, err := Read(r)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got.Type != want.Type || got.Ad != want.Ad || got.PeerAd != want.PeerAd ||
			got.Ticket != want.Ticket || got.Accepted != want.Accepted ||
			got.Reason != want.Reason || got.Lifetime != want.Lifetime {
			t.Errorf("message %d mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if _, err := Read(r); err != io.EOF {
		t.Errorf("after all messages: %v, want EOF", err)
	}
}

func TestReadToleratesMissingFinalNewline(t *testing.T) {
	r := bufio.NewReader(strings.NewReader(`{"type":"ACK"}`))
	e, err := Read(r)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if e.Type != TypeAck {
		t.Errorf("type = %s", e.Type)
	}
}

func TestReadErrors(t *testing.T) {
	for _, input := range []string{
		"not json\n",
		"{}\n",               // missing type
		`{"type":""}` + "\n", // empty type
	} {
		r := bufio.NewReader(strings.NewReader(input))
		if _, err := Read(r); err == nil {
			t.Errorf("input %q: expected error", input)
		}
	}
}

func TestAdEncodingRoundTrip(t *testing.T) {
	ad := classad.Figure1()
	back, err := DecodeAd(EncodeAd(ad))
	if err != nil {
		t.Fatal(err)
	}
	if !ad.Equal(back) {
		t.Error("ad changed across encode/decode")
	}
	if _, err := DecodeAd(""); err == nil {
		t.Error("empty ad must error")
	}
	if _, err := DecodeAd("[broken"); err == nil {
		t.Error("bad ad must error")
	}
}

func TestTicketsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		ticket, err := NewTicket()
		if err != nil {
			t.Fatal(err)
		}
		if len(ticket) != 32 {
			t.Fatalf("ticket %q has length %d, want 32 hex chars", ticket, len(ticket))
		}
		if seen[ticket] {
			t.Fatal("duplicate ticket")
		}
		seen[ticket] = true
	}
}

func TestChallengeResponse(t *testing.T) {
	ticket, _ := NewTicket()
	nonce, _ := NewNonce()
	resp := Respond(ticket, nonce)
	if !VerifyResponse(ticket, nonce, resp) {
		t.Error("valid response rejected")
	}
	if VerifyResponse(ticket, nonce, Respond("wrong-ticket", nonce)) {
		t.Error("response with wrong ticket accepted")
	}
	if VerifyResponse(ticket, "other-nonce", resp) {
		t.Error("replayed response accepted for a different nonce")
	}
	if VerifyResponse(ticket, nonce, "zz-not-hex") {
		t.Error("malformed response accepted")
	}
	if VerifyResponse(ticket, nonce, "") {
		t.Error("empty response accepted")
	}
}

func TestProtocolOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		r := bufio.NewReader(conn)
		e, err := Read(r)
		if err != nil {
			done <- err
			return
		}
		if e.Type != TypeAdvertise {
			done <- io.ErrUnexpectedEOF
			return
		}
		done <- Write(conn, &Envelope{Type: TypeAck})
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := Write(conn, &Envelope{Type: TypeAdvertise, Ad: "[x = 1]"}); err != nil {
		t.Fatal(err)
	}
	reply, err := Read(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != TypeAck {
		t.Errorf("reply = %s, want ACK", reply.Type)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestErrorf(t *testing.T) {
	e := Errorf("bad thing %d", 7)
	if e.Type != TypeError || e.Reason != "bad thing 7" {
		t.Errorf("Errorf = %+v", e)
	}
}
