package protocol

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// neverNewline yields an endless stream with no frame delimiter — the
// shape of a peer trying to exhaust the reader's memory.
type neverNewline struct{}

func (neverNewline) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 'a'
	}
	return len(p), nil
}

// TestReadBoundsOversizedFrame: an endless line fails at the frame
// bound instead of buffering without limit (the old ReadBytes path
// buffered the whole line before checking maxLine, so an unbounded
// line meant unbounded allocation).
func TestReadBoundsOversizedFrame(t *testing.T) {
	r := bufio.NewReader(neverNewline{})
	_, err := Read(r)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("err = %v, want oversize failure", err)
	}
}

// TestReadOversizedFrameWithNewline: a finite but over-limit frame is
// rejected even though it is well-delimited.
func TestReadOversizedFrameWithNewline(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(`{"type":"ACK","reason":"`)
	buf.Write(bytes.Repeat([]byte{'x'}, maxLine))
	buf.WriteString("\"}\n")
	_, err := Read(bufio.NewReader(&buf))
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("err = %v, want oversize failure", err)
	}
}

// brokenReader yields its payload, then a non-EOF transport error —
// a connection dying mid-frame.
type brokenReader struct {
	data []byte
	err  error
}

func (r *brokenReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

// TestReadTruncatedFrameReturnsTransportError: a partial line ended
// by a real error must surface that error, not attempt to unmarshal
// the truncated bytes (which could even parse, silently corrupting
// the conversation).
func TestReadTruncatedFrameReturnsTransportError(t *testing.T) {
	boom := errors.New("connection reset mid-frame")
	r := bufio.NewReader(&brokenReader{data: []byte(`{"type":"ACK"`), err: boom})
	_, err := Read(r)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the transport error", err)
	}
}

// TestReadTruncatedValidJSONStillFails: the truncated prefix here is
// itself valid JSON for a smaller envelope — exactly the case where
// the old code fabricated a wrong message.
func TestReadTruncatedValidJSONStillFails(t *testing.T) {
	boom := errors.New("reset")
	// The full frame carried a reason; the truncation point leaves a
	// complete JSON object.
	r := bufio.NewReader(&brokenReader{data: []byte(`{"type":"ACK"}`), err: boom})
	env, err := Read(r)
	if err == nil {
		t.Fatalf("truncated frame decoded as %+v", env)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the transport error", err)
	}
}

// TestReadSpansBufioChunks: frames larger than bufio's internal
// buffer still decode (the bounded loop reassembles chunks).
func TestReadSpansBufioChunks(t *testing.T) {
	big := strings.Repeat("x", 64<<10)
	var buf bytes.Buffer
	if err := Write(&buf, &Envelope{Type: TypeAck, Reason: big}); err != nil {
		t.Fatal(err)
	}
	env, err := Read(bufio.NewReaderSize(&buf, 16))
	if err != nil {
		t.Fatal(err)
	}
	if env.Reason != big {
		t.Fatalf("large frame corrupted: got %d bytes", len(env.Reason))
	}
}

// TestReadEOFOnEmptyStream stays a clean EOF.
func TestReadEOFOnEmptyStream(t *testing.T) {
	_, err := Read(bufio.NewReader(bytes.NewReader(nil)))
	if !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}
