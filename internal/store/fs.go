// Package store is the framework's crash-safe persistence layer: a
// length-prefixed, checksummed append-only write-ahead log with
// periodic snapshots, generation-numbered so recovery never replays a
// record that a snapshot already folded in. The paper's matchmaker is
// deliberately soft-state — ads refresh, matches are introductions —
// but three pieces of pool state are worth keeping across restarts:
// the collector's advertisement store (so a restart does not blind the
// pool until the next heartbeat storm), the negotiator's usage ledger
// (so fairness has memory), and the customer agent's claim journal (so
// in-flight claims are re-verified instead of silently lost).
//
// The durability contract is narrow and testable: Append returns nil
// only after the record is written and fsynced, and recovery restores
// exactly a prefix of the attempted record sequence that includes
// every acknowledged record. A torn tail — the crash landed mid-write —
// is detected by checksum and truncated away. The whole layer runs
// over an FS interface so tests inject deterministic faults on every
// write, fsync and rename, in the spirit of internal/netx's fault
// plans.
package store

import (
	"io"
	"os"
)

// File is the writable-file surface the store needs: sequential
// writes, a durability barrier, close.
type File interface {
	io.Writer
	// Sync flushes the file to stable storage. The store never
	// acknowledges a record before Sync returns nil.
	Sync() error
	Close() error
}

// FS abstracts the filesystem operations behind the store, so tests
// substitute a fault-injecting implementation. All paths are absolute
// or relative to the process working directory, as with package os.
type FS interface {
	// OpenAppend opens path for appending, creating it if absent.
	OpenAppend(path string) (File, error)
	// Create truncates or creates path for writing.
	Create(path string) (File, error)
	// ReadFile reads the whole file.
	ReadFile(path string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path (best-effort cleanup; a failure is not a
	// correctness problem, just garbage).
	Remove(path string) error
	// Truncate cuts path to size bytes.
	Truncate(path string, size int64) error
	// SyncDir flushes directory metadata, making a completed Rename or
	// Create durable.
	SyncDir(dir string) error
	// ReadDir lists the names of dir's entries.
	ReadDir(dir string) ([]string, error)
	// MkdirAll ensures dir exists.
	MkdirAll(dir string) error
}

// OSFS is the real filesystem.
type OSFS struct{}

// DefaultFS is the FS used when Options.FS is nil.
var DefaultFS FS = OSFS{}

func (OSFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
}

func (OSFS) Create(path string) (File, error) { return os.Create(path) }

func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OSFS) Remove(path string) error { return os.Remove(path) }

func (OSFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

// SyncDir opens the directory and fsyncs it, the POSIX idiom that
// makes a rename or file creation durable. Platforms where directory
// fsync is unsupported report that via the returned error; callers
// treat it as fatal because the durability contract depends on it.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	return names, nil
}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }
