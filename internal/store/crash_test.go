package store

import (
	"encoding/json"
	"fmt"
	"testing"
)

// The crash-point matrix: a deterministic workload (appends with
// periodic snapshots) is run against a FaultFS that crashes at the
// Nth mutating filesystem operation, for every N the clean run
// performs. After each crash the directory is reopened with a healthy
// filesystem and the recovered state must satisfy the store's whole
// contract:
//
//  1. durability — every acknowledged record is recovered;
//  2. prefix integrity — the recovered sequence is a prefix of the
//     attempted sequence (no invention, reordering or corruption; at
//     most one unacknowledged tail record may appear, if the crash
//     landed between a completed write and its acknowledgment).

// crashWorkloadLen is the number of records the workload appends.
const crashWorkloadLen = 17

// snapshotEvery folds the list into a snapshot after this many
// appends, so the matrix crosses every snapshot crash window too.
const snapshotEvery = 5

// runCrashWorkload drives the workload until the log fails, returning
// the records that were acknowledged.
func runCrashWorkload(l *Log) (acked []string) {
	for i := 0; i < crashWorkloadLen; i++ {
		rec := fmt.Sprintf("item-%02d", i)
		if err := l.Append([]byte(rec)); err != nil {
			return acked
		}
		acked = append(acked, rec)
		if (i+1)%snapshotEvery == 0 {
			state, err := json.Marshal(acked)
			if err != nil {
				panic(err)
			}
			if err := l.Snapshot(state); err != nil {
				return acked
			}
		}
	}
	return acked
}

// rebuild reconstructs the workload's list from a recovery.
func rebuild(t *testing.T, rec *Recovered) []string {
	t.Helper()
	var list []string
	if len(rec.Snapshot) > 0 {
		if err := json.Unmarshal(rec.Snapshot, &list); err != nil {
			t.Fatalf("recovered snapshot corrupt: %v", err)
		}
	}
	for _, r := range rec.Records {
		list = append(list, string(r))
	}
	return list
}

// checkRecovered asserts the two contract clauses against the
// attempted sequence and the acknowledged count.
func checkRecovered(t *testing.T, label string, recovered, acked []string) {
	t.Helper()
	if len(recovered) < len(acked) {
		t.Fatalf("%s: recovered %d records, %d were acknowledged", label, len(recovered), len(acked))
	}
	if len(recovered) > crashWorkloadLen {
		t.Fatalf("%s: recovered %d records, only %d were ever attempted", label, len(recovered), crashWorkloadLen)
	}
	for i, r := range recovered {
		if want := fmt.Sprintf("item-%02d", i); r != want {
			t.Fatalf("%s: recovered[%d] = %q, want %q (not a prefix of the attempted sequence)", label, i, r, want)
		}
	}
	if len(recovered) > len(acked)+1 {
		t.Fatalf("%s: recovered %d records with only %d acknowledged — more than one unacked tail record", label, len(recovered), len(acked))
	}
}

// countWorkloadOps runs the workload fault-free and reports how many
// mutating filesystem operations it performs.
func countWorkloadOps(t *testing.T) int {
	t.Helper()
	ffs := NewFaultFS(nil, FaultPlan{})
	l, _, err := Open(t.TempDir(), ffs)
	if err != nil {
		t.Fatal(err)
	}
	acked := runCrashWorkload(l)
	l.Close()
	if len(acked) != crashWorkloadLen {
		t.Fatalf("fault-free run acknowledged %d of %d records", len(acked), crashWorkloadLen)
	}
	return ffs.Stats().Ops
}

func TestCrashPointMatrix(t *testing.T) {
	total := countWorkloadOps(t)
	if total < 2*crashWorkloadLen {
		t.Fatalf("implausibly few ops (%d) — is the workload writing?", total)
	}
	for k := 1; k <= total; k++ {
		k := k
		t.Run(fmt.Sprintf("crash-at-op-%03d", k), func(t *testing.T) {
			dir := t.TempDir()
			ffs := NewFaultFS(nil, FaultPlan{Seed: int64(k), CrashAtOp: k})
			l, _, err := Open(dir, ffs)
			if err != nil {
				// The crash point landed inside Open itself; nothing
				// was acknowledged, so any recovery is acceptable.
				return
			}
			acked := runCrashWorkload(l)
			l.Close()
			if !ffs.Stats().Crashed {
				t.Fatalf("crash point %d never fired (%d ops)", k, ffs.Stats().Ops)
			}
			l2, rec, err := Open(dir, nil)
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer l2.Close()
			checkRecovered(t, fmt.Sprintf("crash@%d", k), rebuild(t, rec), acked)
		})
	}
}

// TestCrashSoak is the long-haul variant `make crash` runs: many
// seeded probabilistic-fault runs, each reopening after every failure
// and checking the contract at every recovery, then finishing the
// workload on the healthy filesystem.
func TestCrashSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("crash soak; run via `make crash` or a full `make verify`")
	}
	for seed := int64(1); seed <= 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			plan := FaultPlan{Seed: seed, WriteErr: 0.05, SyncErr: 0.05, RenameErr: 0.05}
			var acked []string
			next := 0
			for attempt := 0; attempt < 100 && next < crashWorkloadLen; attempt++ {
				ffs := NewFaultFS(nil, plan)
				plan.Seed += 1000 // fresh fault stream per reopen
				l, rec, err := Open(dir, ffs)
				if err != nil {
					continue
				}
				recovered := rebuild(t, rec)
				checkRecovered(t, fmt.Sprintf("seed %d attempt %d", seed, attempt), recovered, acked)
				// Resume from what the disk actually holds (it may hold
				// one record more than was acknowledged).
				acked = append([]string(nil), recovered...)
				next = len(recovered)
				for ; next < crashWorkloadLen; next++ {
					rec := fmt.Sprintf("item-%02d", next)
					if err := l.Append([]byte(rec)); err != nil {
						break
					}
					acked = append(acked, rec)
					if (next+1)%snapshotEvery == 0 {
						state, _ := json.Marshal(acked)
						if err := l.Snapshot(state); err != nil {
							next++
							break
						}
					}
				}
				l.Close()
			}
			l, rec, err := Open(dir, nil)
			if err != nil {
				t.Fatalf("final recovery: %v", err)
			}
			defer l.Close()
			final := rebuild(t, rec)
			checkRecovered(t, fmt.Sprintf("seed %d final", seed), final, acked)
			if len(final) != crashWorkloadLen {
				t.Fatalf("workload never completed: %d of %d records", len(final), crashWorkloadLen)
			}
		})
	}
}
