package store

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInjectedCrash is returned by every FaultFS operation at and after
// the crash point: the process is "dead" as far as the store is
// concerned, and only a reopen (with a fresh FS) recovers.
var ErrInjectedCrash = errors.New("store: injected crash")

// FaultPlan describes deterministic fault injection on the mutating
// filesystem operations (write, fsync, rename, truncate, create,
// directory sync). Two modes compose:
//
//   - CrashAtOp > 0 crashes at exactly the Nth mutating operation:
//     that operation fails (a failing write additionally tears — a
//     seeded-length prefix of the data reaches the file, the rest does
//     not) and every later operation fails too. Sweeping CrashAtOp
//     over 1..N(workload) is the crash-point matrix: every injected
//     fault site gets a kill-and-recover test.
//   - The probabilities inject sporadic failures without killing the
//     FS, for soak tests: a failed operation may be retried.
//
// The Seed drives both the fault RNG and torn-write lengths, so a
// failing run replays exactly.
type FaultPlan struct {
	Seed int64
	// CrashAtOp crashes at the Nth mutating op (1-based); 0 disables.
	CrashAtOp int
	// WriteErr, SyncErr, RenameErr are per-operation failure
	// probabilities in [0,1]. A probabilistic write failure also tears.
	WriteErr, SyncErr, RenameErr float64
}

// FaultStats counts operations seen and faults injected.
type FaultStats struct {
	Ops     int // mutating operations observed
	Faults  int // operations failed (crash point included)
	Crashed bool
}

// FaultFS wraps an FS with the plan's faults. Reads are never faulted:
// recovery correctness is about what reached the disk, and the replay
// path's tolerance of bad bytes is exercised by checksum tests.
type FaultFS struct {
	inner FS
	plan  FaultPlan

	mu      sync.Mutex
	rng     *pcg
	stats   FaultStats
	crashed bool
}

// NewFaultFS builds a fault-injecting FS over inner (nil for the real
// filesystem).
func NewFaultFS(inner FS, plan FaultPlan) *FaultFS {
	if inner == nil {
		inner = DefaultFS
	}
	seed := plan.Seed
	if seed == 0 {
		seed = 1
	}
	return &FaultFS{inner: inner, plan: plan, rng: newPCG(uint64(seed))}
}

// Stats reports operations observed and faults injected so far.
func (f *FaultFS) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// op accounts one mutating operation and decides its fate: nil (let it
// through), ErrInjectedCrash (crash point reached or already crashed),
// or a transient injected error. The tear result instructs a failing
// write to deliver a prefix of its data first.
func (f *FaultFS) op(prob float64) (fail error, tear bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrInjectedCrash, false
	}
	f.stats.Ops++
	if f.plan.CrashAtOp > 0 && f.stats.Ops >= f.plan.CrashAtOp {
		f.crashed = true
		f.stats.Crashed = true
		f.stats.Faults++
		return ErrInjectedCrash, true
	}
	if prob > 0 && f.rng.float64() < prob {
		f.stats.Faults++
		return fmt.Errorf("store: injected fault (op %d)", f.stats.Ops), true
	}
	return nil, false
}

// tearLen picks how many bytes of a torn write reach the file.
func (f *FaultFS) tearLen(n int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n == 0 {
		return 0
	}
	return int(f.rng.uint64() % uint64(n))
}

func (f *FaultFS) OpenAppend(path string) (File, error) {
	file, err := f.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FaultFS) Create(path string) (File, error) {
	if err, _ := f.op(0); err != nil {
		return nil, err
	}
	file, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) { return f.inner.ReadFile(path) }

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err, _ := f.op(f.plan.RenameErr); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(path string) error {
	if err, _ := f.op(0); err != nil {
		return err
	}
	return f.inner.Remove(path)
}

func (f *FaultFS) Truncate(path string, size int64) error {
	if err, _ := f.op(0); err != nil {
		return err
	}
	return f.inner.Truncate(path, size)
}

func (f *FaultFS) SyncDir(dir string) error {
	if err, _ := f.op(f.plan.SyncErr); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.inner.ReadDir(dir) }

func (f *FaultFS) MkdirAll(dir string) error { return f.inner.MkdirAll(dir) }

// faultFile forwards to the wrapped file, injecting the plan's write
// and sync faults. A failing write tears: a seeded-length prefix of
// the data is written through before the error returns, the on-disk
// shape a kernel crash mid-write leaves.
type faultFile struct {
	File
	fs *FaultFS
}

//fsyncguard:ok delegating wrapper; durability is the wrapped file's Sync
func (w *faultFile) Write(p []byte) (int, error) {
	err, tear := w.fs.op(w.fs.plan.WriteErr)
	if err != nil {
		if tear {
			n := w.fs.tearLen(len(p))
			w.File.Write(p[:n]) //fsyncguard:ok torn-write injection, deliberately unsynced
		}
		return 0, err
	}
	return w.File.Write(p)
}

func (w *faultFile) Sync() error {
	if err, _ := w.fs.op(w.fs.plan.SyncErr); err != nil {
		return err
	}
	return w.File.Sync()
}

// pcg is a tiny deterministic PRNG (PCG-XSH-RR style mix), the same
// generator internal/netx uses, duplicated here so the store stays
// free of network-layer imports.
type pcg struct{ state uint64 }

func newPCG(seed uint64) *pcg {
	p := &pcg{state: seed + 0x9E3779B97F4A7C15}
	p.uint64()
	return p
}

func (p *pcg) uint64() uint64 {
	p.state = p.state*6364136223846793005 + 1442695040888963407
	x := p.state
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return x
}

func (p *pcg) float64() float64 {
	return float64(p.uint64()>>11) / (1 << 53)
}
