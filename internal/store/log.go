package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Log is a write-ahead log with generation-numbered snapshots. One
// directory holds one log; the files are
//
//	wal.<G>   the append-only record file of generation G
//	snap.<G>  a snapshot of the owner's whole state, covering every
//	          record ever appended before wal.<G> existed
//
// Taking a snapshot advances the generation: snap.<G+1> is written
// (atomically, via tmp + rename + directory sync), a fresh empty
// wal.<G+1> is created, and the generation-G files are deleted.
// Because the snapshot lands durably before the new WAL exists,
// recovery never pairs a snapshot with records it already contains: it
// picks the highest valid snapshot and replays only that generation's
// WAL. A crash between the two steps simply leaves the old generation
// on disk to be ignored (and garbage-collected on the next snapshot).
//
// Append acknowledges a record only after write and fsync both
// succeed. Any append or snapshot failure leaves bytes of unknown
// integrity behind, so the log turns itself off (ErrLogBroken) rather
// than risk appending after a tear that would render later,
// acknowledged records unreachable to replay; the owner reopens, and
// recovery truncates the torn tail. This fail-stop behavior is what
// the crash-point matrix in crash_test.go sweeps.
type Log struct {
	dir string
	fs  FS

	mu      sync.Mutex
	wal     File
	gen     uint64
	broken  bool
	stats   Stats
	scratch []byte // reusable frame buffer

	// Observability hooks; nil (no-op) until Instrument is called.
	mAppends, mBytes, mSnapshots *obs.Counter
	hFsync                       *obs.Histogram
}

// Stats describes a log's activity since Open.
type Stats struct {
	// Gen is the current snapshot generation.
	Gen uint64
	// Appends and AppendedBytes count acknowledged records.
	Appends, AppendedBytes int64
	// SinceSnapshot counts appends since the last snapshot (including
	// those recovered from the WAL at open).
	SinceSnapshot int64
	// Snapshots counts snapshots taken (shipped installs included).
	Snapshots int64
	// RecoveredRecords and TruncatedBytes describe the last recovery:
	// records replayed from the WAL, and torn-tail bytes discarded.
	RecoveredRecords, TruncatedBytes int64
}

// Recovered is what Open (or Install) found on disk: the most recent
// valid snapshot (nil or empty means "empty base state") and every
// valid WAL record appended after it, in order.
type Recovered struct {
	Snapshot []byte
	Records  [][]byte
	// TruncatedBytes is the size of the torn tail discarded from the
	// WAL, zero after a clean shutdown.
	TruncatedBytes int64
}

// ErrLogBroken reports an append on a log that already failed an
// append or snapshot; the owner must reopen (recovery truncates the
// tear) before appending again.
var ErrLogBroken = errors.New("store: log broken by earlier write failure; reopen to recover")

func walPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal.%d", gen))
}

func snapPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap.%d", gen))
}

// Open opens (creating if necessary) the log in dir over fs (nil for
// the real filesystem) and returns the recovered state. The caller
// applies Recovered to rebuild its in-memory state, then appends as it
// mutates.
func Open(dir string, fs FS) (*Log, *Recovered, error) {
	if fs == nil {
		fs = DefaultFS
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	l := &Log{dir: dir, fs: fs}
	rec, err := l.recover()
	if err != nil {
		return nil, nil, err
	}
	return l, rec, nil
}

// scan lists the generations present in the directory.
func (l *Log) scan() (snapGens, walGens []uint64, err error) {
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("store: scan %s: %w", l.dir, err)
	}
	for _, name := range names {
		if strings.HasSuffix(name, ".tmp") {
			continue
		}
		if g, ok := strings.CutPrefix(name, "snap."); ok {
			if n, err := strconv.ParseUint(g, 10, 64); err == nil {
				snapGens = append(snapGens, n)
			}
		}
		if g, ok := strings.CutPrefix(name, "wal."); ok {
			if n, err := strconv.ParseUint(g, 10, 64); err == nil {
				walGens = append(walGens, n)
			}
		}
	}
	sort.Slice(snapGens, func(i, j int) bool { return snapGens[i] > snapGens[j] })
	sort.Slice(walGens, func(i, j int) bool { return walGens[i] > walGens[j] })
	return snapGens, walGens, nil
}

// recover selects the newest valid snapshot generation, replays its
// WAL up to the last valid record, truncates the torn tail, and opens
// the WAL for appending.
func (l *Log) recover() (*Recovered, error) {
	snapGens, walGens, err := l.scan()
	if err != nil {
		return nil, err
	}
	rec := &Recovered{}
	gen := uint64(0)
	found := false
	for _, g := range snapGens {
		data, err := l.fs.ReadFile(snapPath(l.dir, g))
		if err != nil {
			continue
		}
		payload, n, err := DecodeRecord(data)
		if err != nil || n != len(data) {
			// A snapshot is written whole via tmp+rename, so a torn one
			// is disk corruption, not a crash artifact: fall back to
			// the previous generation.
			continue
		}
		rec.Snapshot = payload
		gen = g
		found = true
		break
	}
	if !found && len(walGens) > 0 {
		gen = walGens[0]
	}
	walFile := walPath(l.dir, gen)
	if data, err := l.fs.ReadFile(walFile); err == nil {
		payloads, valid := DecodeAll(data)
		rec.Records = payloads
		if int64(len(data)) > valid {
			rec.TruncatedBytes = int64(len(data)) - valid
			if err := l.fs.Truncate(walFile, valid); err != nil {
				return nil, fmt.Errorf("store: truncating torn tail of %s: %w", walFile, err)
			}
		}
	}
	wal, err := l.fs.OpenAppend(walFile)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", walFile, err)
	}
	l.wal = wal
	l.gen = gen
	l.stats.Gen = gen
	l.stats.SinceSnapshot = int64(len(rec.Records))
	l.stats.RecoveredRecords = int64(len(rec.Records))
	l.stats.TruncatedBytes = rec.TruncatedBytes
	return rec, nil
}

// Instrument routes log activity into reg's store-wide metrics:
// store_wal_appends_total, store_wal_bytes_total, the
// store_fsync_seconds histogram, and store_snapshot_installs_total.
// Several logs in one process (ad store, usage ledger, claim journal)
// share the same counters; the totals are pool-wide.
func (l *Log) Instrument(reg *obs.Registry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.mAppends = reg.Counter("store_wal_appends_total")
	l.mBytes = reg.Counter("store_wal_bytes_total")
	l.mSnapshots = reg.Counter("store_snapshot_installs_total")
	l.hFsync = reg.Histogram("store_fsync_seconds", obs.DurationBuckets)
}

// Append writes one record and returns only after it is durable: a
// nil error is the acknowledgment that the record will survive a
// crash. Any failure breaks the log (see ErrLogBroken).
func (l *Log) Append(record []byte) error {
	if len(record) > MaxRecord {
		return fmt.Errorf("store: record of %d bytes exceeds MaxRecord", len(record))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken {
		return ErrLogBroken
	}
	l.scratch = EncodeRecord(l.scratch[:0], record)
	if _, err := l.wal.Write(l.scratch); err != nil {
		l.broken = true
		return fmt.Errorf("store: append: %w", err)
	}
	start := time.Now() //determguard:ok fsync-latency telemetry only; observed duration never enters replayed state
	if err := l.wal.Sync(); err != nil {
		l.broken = true
		return fmt.Errorf("store: append fsync: %w", err)
	}
	l.hFsync.Observe(time.Since(start).Seconds()) //determguard:ok fsync-latency telemetry only
	l.stats.Appends++
	l.stats.SinceSnapshot++
	l.stats.AppendedBytes += int64(len(l.scratch))
	l.mAppends.Inc()
	l.mBytes.Add(int64(len(l.scratch)))
	return nil
}

// Snapshot durably records the owner's whole state and starts a fresh
// generation; the WAL records folded into state no longer replay. On
// return the log is at generation Gen+1 with an empty WAL.
func (l *Log) Snapshot(state []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken {
		return ErrLogBroken
	}
	if err := l.installLocked(state, nil); err != nil {
		return err
	}
	return nil
}

// installLocked writes a new generation: snap.<G+1> holding state,
// wal.<G+1> holding walBytes (usually empty), then retires generation
// G. The snapshot rename is the commit point; any failure after it
// breaks the log so the owner reopens into the new generation.
func (l *Log) installLocked(state, walBytes []byte) error {
	g1 := l.gen + 1
	tmp := snapPath(l.dir, g1) + ".tmp"
	f, err := l.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	frame := EncodeRecord(nil, state)
	if _, err := f.Write(frame); err != nil {
		f.Close()
		l.fs.Remove(tmp)
		return fmt.Errorf("store: snapshot write: %w", err)
	}
	start := time.Now() //determguard:ok fsync-latency telemetry only; observed duration never enters replayed state
	if err := f.Sync(); err != nil {
		f.Close()
		l.fs.Remove(tmp)
		return fmt.Errorf("store: snapshot fsync: %w", err)
	}
	l.hFsync.Observe(time.Since(start).Seconds()) //determguard:ok fsync-latency telemetry only
	if err := f.Close(); err != nil {
		l.fs.Remove(tmp)
		return fmt.Errorf("store: snapshot close: %w", err)
	}
	if err := l.fs.Rename(tmp, snapPath(l.dir, g1)); err != nil {
		l.fs.Remove(tmp)
		return fmt.Errorf("store: snapshot rename: %w", err)
	}
	// The rename is the commit point: from here on, failures leave the
	// log broken (recovery picks up the new generation).
	if err := l.fs.SyncDir(l.dir); err != nil {
		l.broken = true
		return fmt.Errorf("store: snapshot dir sync: %w", err)
	}
	wf, err := l.fs.Create(walPath(l.dir, g1))
	if err != nil {
		l.broken = true
		return fmt.Errorf("store: new wal: %w", err)
	}
	if len(walBytes) > 0 {
		if _, err := wf.Write(walBytes); err != nil {
			wf.Close()
			l.broken = true
			return fmt.Errorf("store: new wal write: %w", err)
		}
	}
	if err := wf.Sync(); err != nil {
		wf.Close()
		l.broken = true
		return fmt.Errorf("store: new wal fsync: %w", err)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		wf.Close()
		l.broken = true
		return fmt.Errorf("store: new wal dir sync: %w", err)
	}
	old := l.gen
	if l.wal != nil {
		l.wal.Close()
	}
	l.wal = wf
	l.gen = g1
	l.stats.Gen = g1
	records, _ := DecodeAll(walBytes)
	l.stats.SinceSnapshot = int64(len(records))
	l.stats.Snapshots++
	l.mSnapshots.Inc()
	// Retire the old generation; failures here are garbage, not risk.
	l.fs.Remove(snapPath(l.dir, old))
	l.fs.Remove(walPath(l.dir, old))
	return nil
}

// SinceSnapshot reports how many records the current WAL holds; owners
// use it to decide when to fold state into a snapshot.
func (l *Log) SinceSnapshot() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats.SinceSnapshot
}

// Stats reports the log's activity.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Close releases the WAL handle. The log is already durable record by
// record; Close loses nothing.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wal == nil {
		return nil
	}
	err := l.wal.Close()
	l.wal = nil
	l.broken = true
	return err
}

// shipMeta is the header record of a shipped state bundle.
type shipMeta struct {
	Gen uint64 `json:"gen"`
}

// Ship serializes the log's durable state — current snapshot plus the
// valid prefix of the current WAL — for warm handoff to a standby. The
// bundle is three framed records: meta, snapshot, WAL bytes.
func (l *Log) Ship() ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var snapshot []byte
	if data, err := l.fs.ReadFile(snapPath(l.dir, l.gen)); err == nil {
		if payload, n, err := DecodeRecord(data); err == nil && n == len(data) {
			snapshot = payload
		}
	}
	var walValid []byte
	if data, err := l.fs.ReadFile(walPath(l.dir, l.gen)); err == nil {
		_, valid := DecodeAll(data)
		walValid = data[:valid]
	}
	meta, err := json.Marshal(shipMeta{Gen: l.gen})
	if err != nil {
		return nil, err
	}
	out := EncodeRecord(nil, meta)
	out = EncodeRecord(out, snapshot)
	out = EncodeRecord(out, walValid)
	return out, nil
}

// Install replaces the log's state with a shipped bundle (see Ship),
// returning the recovered view of the installed state. The install is
// itself crash-safe: the shipped snapshot and WAL land as a brand-new
// generation above both the local and the shipped one, so a crash
// mid-install recovers either the old state or the new, never a mix.
// Install also clears a broken log, since it reopens a fresh WAL.
func (l *Log) Install(bundle []byte) (*Recovered, error) {
	metaRaw, n1, err := DecodeRecord(bundle)
	if err != nil {
		return nil, fmt.Errorf("store: install meta: %w", err)
	}
	snapshot, n2, err := DecodeRecord(bundle[n1:])
	if err != nil {
		return nil, fmt.Errorf("store: install snapshot: %w", err)
	}
	walBytes, _, err := DecodeRecord(bundle[n1+n2:])
	if err != nil {
		return nil, fmt.Errorf("store: install wal: %w", err)
	}
	var meta shipMeta
	if err := json.Unmarshal(metaRaw, &meta); err != nil {
		return nil, fmt.Errorf("store: install meta: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if meta.Gen > l.gen {
		l.gen = meta.Gen
	}
	wasBroken := l.broken
	l.broken = false
	if err := l.installLocked(snapshot, walBytes); err != nil {
		l.broken = l.broken || wasBroken
		return nil, err
	}
	records, _ := DecodeAll(walBytes)
	return &Recovered{Snapshot: snapshot, Records: records}, nil
}

// AtomicWriteFile writes data to path with the full durability ritual:
// tmp file, write, fsync, close, rename, directory sync. It is the
// store-blessed way to persist small whole-file state (the
// fsyncguard analyzer flags raw os.WriteFile/os.Rename persistence
// elsewhere in internal/).
func AtomicWriteFile(fs FS, path string, data []byte) error {
	if fs == nil {
		fs = DefaultFS
	}
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return err
	}
	return fs.SyncDir(filepath.Dir(path))
}
