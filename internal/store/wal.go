package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Record framing: every WAL record and snapshot payload is stored as
//
//	[4-byte big-endian payload length][4-byte CRC-32C of payload][payload]
//
// The checksum is over the payload alone; the length field is
// implicitly validated by the checksum (a corrupt length either
// overruns the buffer — detected as a torn tail — or frames the wrong
// bytes, which fail the CRC). A record is valid iff the full frame is
// present and the checksum matches; replay stops at the first invalid
// frame and reports its offset so the opener can truncate the torn
// tail away.

// recordHeaderSize is the framing overhead per record.
const recordHeaderSize = 8

// MaxRecord bounds a single record so a corrupt length field cannot
// force an enormous allocation during replay. Generous for any state
// this pool persists (whole-store snapshots included).
const MaxRecord = 64 << 20

// castagnoli is the CRC-32C table (the polynomial storage systems
// standardized on; hardware-accelerated on common platforms).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrTornRecord reports a frame that is present but incomplete or
// checksum-corrupt — the shape a crash mid-write leaves behind.
var ErrTornRecord = errors.New("store: torn or corrupt record")

// EncodeRecord appends one framed record to buf and returns the
// extended slice.
func EncodeRecord(buf, payload []byte) []byte {
	var hdr [recordHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// DecodeRecord reads one framed record from the front of data,
// returning the payload and the number of bytes consumed. An
// incomplete frame, an oversized length, or a checksum mismatch
// returns ErrTornRecord (wrapped with detail); io-level truncation and
// corruption are indistinguishable by design — both invalidate the
// record and everything after it.
func DecodeRecord(data []byte) (payload []byte, n int, err error) {
	if len(data) < recordHeaderSize {
		return nil, 0, fmt.Errorf("%w: %d-byte partial header", ErrTornRecord, len(data))
	}
	size := binary.BigEndian.Uint32(data[0:4])
	if size > MaxRecord {
		return nil, 0, fmt.Errorf("%w: implausible length %d", ErrTornRecord, size)
	}
	end := recordHeaderSize + int(size)
	if len(data) < end {
		return nil, 0, fmt.Errorf("%w: %d of %d payload bytes", ErrTornRecord, len(data)-recordHeaderSize, size)
	}
	payload = data[recordHeaderSize:end]
	if crc32.Checksum(payload, castagnoli) != binary.BigEndian.Uint32(data[4:8]) {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrTornRecord)
	}
	return payload, end, nil
}

// DecodeAll splits data into its valid record prefix. It returns the
// decoded payloads and the byte offset where the valid prefix ends;
// the remainder (if any) is the torn tail. Payloads alias data.
func DecodeAll(data []byte) (payloads [][]byte, validBytes int64) {
	off := 0
	for off < len(data) {
		payload, n, err := DecodeRecord(data[off:])
		if err != nil {
			break
		}
		payloads = append(payloads, payload)
		off += n
	}
	return payloads, int64(off)
}
