package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// reopen closes l and opens the directory fresh, failing the test on
// error.
func reopen(t *testing.T, l *Log, dir string) (*Log, *Recovered) {
	t.Helper()
	l.Close()
	l2, rec, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return l2, rec
}

func TestLogAppendRecover(t *testing.T) {
	dir := t.TempDir()
	l, rec, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh log recovered state: %+v", rec)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l, rec = reopen(t, l, dir)
	defer l.Close()
	if len(rec.Records) != 10 {
		t.Fatalf("recovered %d records, want 10", len(rec.Records))
	}
	for i, r := range rec.Records {
		if want := fmt.Sprintf("rec-%d", i); string(r) != want {
			t.Errorf("record %d = %q, want %q", i, r, want)
		}
	}
	if rec.TruncatedBytes != 0 {
		t.Errorf("clean shutdown reported %d truncated bytes", rec.TruncatedBytes)
	}
}

func TestLogSnapshotAdvancesGeneration(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("a"))
	l.Append([]byte("b"))
	if err := l.Snapshot([]byte("state-ab")); err != nil {
		t.Fatal(err)
	}
	if g := l.Stats().Gen; g != 1 {
		t.Fatalf("generation %d after first snapshot, want 1", g)
	}
	l.Append([]byte("c"))
	l, rec := reopen(t, l, dir)
	defer l.Close()
	if string(rec.Snapshot) != "state-ab" {
		t.Fatalf("snapshot %q, want state-ab", rec.Snapshot)
	}
	if len(rec.Records) != 1 || string(rec.Records[0]) != "c" {
		t.Fatalf("post-snapshot records %q, want [c]", rec.Records)
	}
	// Generation 0 files must be gone.
	if _, err := os.Stat(filepath.Join(dir, "wal.0")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("wal.0 still present after snapshot")
	}
}

func TestLogTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("kept-1"))
	l.Append([]byte("kept-2"))
	l.Close()
	// Simulate a crash mid-append: half a frame lands at the tail.
	walFile := filepath.Join(dir, "wal.0")
	torn := EncodeRecord(nil, []byte("never acknowledged"))
	f, err := os.OpenFile(walFile, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(torn[:len(torn)-3])
	f.Close()

	l2, rec, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 2 {
		t.Fatalf("recovered %d records, want 2", len(rec.Records))
	}
	if rec.TruncatedBytes == 0 {
		t.Fatal("torn tail not reported")
	}
	// The tear is physically gone: append and reopen once more.
	if err := l2.Append([]byte("kept-3")); err != nil {
		t.Fatal(err)
	}
	l3, rec := reopen(t, l2, dir)
	defer l3.Close()
	want := []string{"kept-1", "kept-2", "kept-3"}
	if len(rec.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), len(want))
	}
	for i, w := range want {
		if string(rec.Records[i]) != w {
			t.Errorf("record %d = %q, want %q", i, rec.Records[i], w)
		}
	}
}

func TestLogBreaksOnWriteFailure(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, FaultPlan{Seed: 7, CrashAtOp: 4})
	l, _, err := Open(dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("ok")); err != nil { // ops 1 (write) + 2 (sync)
		t.Fatal(err)
	}
	if err := l.Append([]byte("dies")); err == nil { // op 3 write, op 4 sync crashes
		t.Fatal("append survived the crash point")
	}
	if err := l.Append([]byte("after")); !errors.Is(err, ErrLogBroken) {
		t.Fatalf("append after failure: %v, want ErrLogBroken", err)
	}
	if err := l.Snapshot([]byte("s")); !errors.Is(err, ErrLogBroken) {
		t.Fatalf("snapshot after failure: %v, want ErrLogBroken", err)
	}
	// Reopening with a healthy FS recovers the acknowledged prefix.
	l2, rec, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(rec.Records) < 1 || string(rec.Records[0]) != "ok" {
		t.Fatalf("acknowledged record lost: %q", rec.Records)
	}
}

func TestLogShipInstall(t *testing.T) {
	leaderDir, standbyDir := t.TempDir(), t.TempDir()
	leader, _, err := Open(leaderDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	leader.Append([]byte("u1"))
	leader.Snapshot([]byte("base"))
	leader.Append([]byte("u2"))
	leader.Append([]byte("u3"))
	bundle, err := leader.Ship()
	if err != nil {
		t.Fatal(err)
	}

	standby, _, err := Open(standbyDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	standby.Append([]byte("stale-local"))
	rec, err := standby.Install(bundle)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Snapshot) != "base" {
		t.Fatalf("installed snapshot %q", rec.Snapshot)
	}
	if len(rec.Records) != 2 || string(rec.Records[0]) != "u2" || string(rec.Records[1]) != "u3" {
		t.Fatalf("installed records %q", rec.Records)
	}
	// The standby can append beyond the installed state, and a restart
	// sees install + appends, with no trace of the stale local record.
	if err := standby.Append([]byte("u4")); err != nil {
		t.Fatal(err)
	}
	standby2, rec2 := reopen(t, standby, standbyDir)
	defer standby2.Close()
	if string(rec2.Snapshot) != "base" || len(rec2.Records) != 3 {
		t.Fatalf("after restart: snapshot %q, %d records", rec2.Snapshot, len(rec2.Records))
	}
	if string(rec2.Records[2]) != "u4" {
		t.Fatalf("post-install append lost: %q", rec2.Records)
	}
}

func TestLogInstrument(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	reg := obs.NewRegistry()
	l.Instrument(reg)
	l.Append(bytes.Repeat([]byte("x"), 100))
	l.Snapshot([]byte("s"))
	snap := reg.Snapshot()
	if snap.Counters["store_wal_appends_total"] != 1 {
		t.Errorf("store_wal_appends_total = %d", snap.Counters["store_wal_appends_total"])
	}
	if got := snap.Counters["store_wal_bytes_total"]; got != 100+recordHeaderSize {
		t.Errorf("store_wal_bytes_total = %d, want %d", got, 100+recordHeaderSize)
	}
	if snap.Counters["store_snapshot_installs_total"] != 1 {
		t.Errorf("store_snapshot_installs_total = %d", snap.Counters["store_snapshot_installs_total"])
	}
	if snap.Histograms["store_fsync_seconds"].Count < 2 {
		t.Errorf("store_fsync_seconds count = %d, want >= 2 (append + snapshot)",
			snap.Histograms["store_fsync_seconds"].Count)
	}
}

func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := AtomicWriteFile(nil, path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWriteFile(nil, path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "v2" {
		t.Fatalf("read back %q, %v", data, err)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Error("tmp file left behind")
	}
}
