package store

import (
	"bytes"
	"errors"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		[]byte("x"),
		[]byte(`{"op":"u","name":"vulture13"}`),
		bytes.Repeat([]byte{0xAB}, 100_000),
	}
	var buf []byte
	for _, p := range payloads {
		buf = EncodeRecord(buf, p)
	}
	got, valid := DecodeAll(buf)
	if valid != int64(len(buf)) {
		t.Fatalf("valid prefix %d, want whole buffer %d", valid, len(buf))
	}
	if len(got) != len(payloads) {
		t.Fatalf("decoded %d records, want %d", len(got), len(payloads))
	}
	for i, p := range payloads {
		if !bytes.Equal(got[i], p) {
			t.Errorf("record %d: got %d bytes, want %d", i, len(got[i]), len(p))
		}
	}
}

func TestDecodeRecordTornTail(t *testing.T) {
	full := EncodeRecord(nil, []byte("first"))
	full = EncodeRecord(full, []byte("second, torn below"))
	for cut := len(full) - 1; cut > len(full)-20; cut-- {
		got, valid := DecodeAll(full[:cut])
		if len(got) != 1 || string(got[0]) != "first" {
			t.Fatalf("cut=%d: recovered %d records, want just the first", cut, len(got))
		}
		if valid != int64(recordHeaderSize+len("first")) {
			t.Fatalf("cut=%d: valid prefix %d", cut, valid)
		}
	}
}

func TestDecodeRecordCorruption(t *testing.T) {
	frame := EncodeRecord(nil, []byte("payload under test"))
	for i := range frame {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0xFF
		if _, _, err := DecodeRecord(mut); err == nil {
			// A flipped length byte can still frame a valid record only
			// if the checksum happens to match, which CRC-32C makes
			// vanishingly unlikely; any success here is a real bug.
			t.Fatalf("corrupting byte %d went undetected", i)
		} else if !errors.Is(err, ErrTornRecord) {
			t.Fatalf("corrupting byte %d: error %v, want ErrTornRecord", i, err)
		}
	}
}

func TestDecodeRecordImplausibleLength(t *testing.T) {
	frame := EncodeRecord(nil, []byte("x"))
	frame[0] = 0xFF // length now ~4G, far past MaxRecord
	if _, _, err := DecodeRecord(frame); !errors.Is(err, ErrTornRecord) {
		t.Fatalf("got %v, want ErrTornRecord", err)
	}
}

// FuzzWALRecord round-trips arbitrary payloads through the record
// codec and asserts arbitrary bytes never decode into a record that
// re-encodes differently — the two properties replay correctness
// rests on.
func FuzzWALRecord(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("{}"))
	f.Add(bytes.Repeat([]byte{0}, 9))
	f.Add(EncodeRecord(nil, []byte("seed: a valid frame as raw input")))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Encode->decode is the identity.
		frame := EncodeRecord(nil, data)
		payload, n, err := DecodeRecord(frame)
		if err != nil {
			t.Fatalf("own frame failed to decode: %v", err)
		}
		if n != len(frame) || !bytes.Equal(payload, data) {
			t.Fatalf("round trip mangled payload: n=%d len=%d", n, len(frame))
		}
		// Decoding arbitrary bytes either fails or yields a frame that
		// re-encodes to exactly the bytes consumed.
		if payload, n, err := DecodeRecord(data); err == nil {
			re := EncodeRecord(nil, payload)
			if !bytes.Equal(re, data[:n]) {
				t.Fatalf("decode/encode disagree on %d consumed bytes", n)
			}
		}
	})
}
