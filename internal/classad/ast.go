package classad

import (
	"fmt"
	"strings"
)

// Expr is a parsed classad expression. Expressions are immutable after
// construction and safe for concurrent evaluation.
type Expr interface {
	// String renders the expression in classad source syntax such
	// that parsing the result yields an equivalent expression.
	String() string
	// eval computes the expression's value in ctx.
	eval(ctx *evalCtx) Value
}

// Op identifies an operator in the expression grammar.
type Op int

// Operators, in no particular order. Precedence lives in the parser.
const (
	OpOr   Op = iota // ||
	OpAnd            // &&
	OpIs             // is   (non-strict identity)
	OpIsnt           // isnt (non-strict negated identity)
	OpLt             // <
	OpLe             // <=
	OpGt             // >
	OpGe             // >=
	OpEq             // ==
	OpNe             // !=
	OpAdd            // +
	OpSub            // -
	OpMul            // *
	OpDiv            // /
	OpMod            // %
	OpNot            // unary !
	OpNeg            // unary -
	OpPlus           // unary +
)

var opNames = map[Op]string{
	OpOr: "||", OpAnd: "&&", OpIs: "is", OpIsnt: "isnt",
	OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=", OpEq: "==", OpNe: "!=",
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpNot: "!", OpNeg: "-", OpPlus: "+",
}

// String returns the source spelling of the operator.
func (o Op) String() string { return opNames[o] }

// litExpr is a literal value.
type litExpr struct{ v Value }

// Lit returns an expression that evaluates to v.
func Lit(v Value) Expr { return litExpr{v} }

func (e litExpr) String() string { return e.v.String() }

// Scope qualifies an attribute reference.
type Scope int

// Reference scopes. An unqualified reference resolves in the
// containing ad first and, during two-way matching, falls back to the
// other ad — the behaviour required to make the paper's Figure 2
// evaluate (its Constraint mentions Arch, defined only in the machine
// ad).
const (
	ScopeNone  Scope = iota // unqualified
	ScopeSelf               // self.name (the paper also spells it my.)
	ScopeOther              // other.name (Condor spells it target.)
)

// attrRef is an attribute reference, possibly scope-qualified.
type attrRef struct {
	scope Scope
	name  string
}

// Attr returns an unqualified attribute reference expression.
func Attr(name string) Expr { return attrRef{ScopeNone, name} }

// SelfAttr returns a self-scoped attribute reference expression.
func SelfAttr(name string) Expr { return attrRef{ScopeSelf, name} }

// OtherAttr returns an other-scoped attribute reference expression.
func OtherAttr(name string) Expr { return attrRef{ScopeOther, name} }

func (e attrRef) String() string {
	switch e.scope {
	case ScopeSelf:
		return "self." + e.name
	case ScopeOther:
		return "other." + e.name
	default:
		return e.name
	}
}

// selectExpr is record attribute selection: base.name.
type selectExpr struct {
	base Expr
	name string
}

func (e selectExpr) String() string {
	return fmt.Sprintf("%s.%s", parenthesize(e.base), e.name)
}

// indexExpr is list/record subscripting: base[index].
type indexExpr struct {
	base  Expr
	index Expr
}

func (e indexExpr) String() string {
	return fmt.Sprintf("%s[%s]", parenthesize(e.base), e.index)
}

// unaryExpr applies a unary operator.
type unaryExpr struct {
	op  Op
	arg Expr
}

func (e unaryExpr) String() string {
	return e.op.String() + parenthesize(e.arg)
}

// binaryExpr applies a binary operator.
type binaryExpr struct {
	op   Op
	l, r Expr
}

func (e binaryExpr) String() string {
	return fmt.Sprintf("%s %s %s", parenthesize(e.l), e.op, parenthesize(e.r))
}

// condExpr is the ternary conditional c ? t : f.
type condExpr struct {
	cond, then, els Expr
}

func (e condExpr) String() string {
	return fmt.Sprintf("%s ? %s : %s",
		parenthesize(e.cond), parenthesize(e.then), parenthesize(e.els))
}

// callExpr is a builtin function call.
type callExpr struct {
	name string // defining case, for printing
	args []Expr
}

func (e callExpr) String() string {
	var b strings.Builder
	b.WriteString(e.name)
	b.WriteByte('(')
	for i, a := range e.args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteByte(')')
	return b.String()
}

// listExpr is a list constructor { e1, e2, ... }.
type listExpr struct{ elems []Expr }

func (e listExpr) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, el := range e.elems {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(el.String())
	}
	b.WriteByte('}')
	return b.String()
}

// adExpr is a nested classad constructor [ a = e; ... ].
type adExpr struct{ ad *Ad }

func (e adExpr) String() string { return e.ad.String() }

// parenthesize wraps composite sub-expressions in parentheses so that
// the unparsed form re-parses with the same structure regardless of
// the original precedence context.
func parenthesize(e Expr) string {
	switch e.(type) {
	case litExpr, attrRef, callExpr, listExpr, adExpr, selectExpr, indexExpr:
		return e.String()
	default:
		return "(" + e.String() + ")"
	}
}

// NewList constructs a list expression from element expressions.
func NewList(elems ...Expr) Expr { return listExpr{elems} }

// NewAdExpr wraps an ad as a nested-classad expression.
func NewAdExpr(ad *Ad) Expr { return adExpr{ad} }

// NewCall constructs a call to a builtin function. The name is
// resolved case-insensitively at evaluation time; an unknown function
// evaluates to error.
func NewCall(name string, args ...Expr) Expr { return callExpr{name, args} }

// NewBinary constructs a binary operator application.
func NewBinary(op Op, l, r Expr) Expr { return binaryExpr{op, l, r} }

// NewUnary constructs a unary operator application. Negation of a
// numeric literal folds to a literal, mirroring the parser, so that
// construction and parsing yield identical trees (and identical
// unparsed text).
func NewUnary(op Op, arg Expr) Expr {
	if op == OpNeg {
		if lit, ok := arg.(litExpr); ok {
			if i, ok := lit.v.IntVal(); ok {
				return litExpr{Int(-i)}
			}
			if r, ok := lit.v.RealVal(); ok {
				return litExpr{Real(-r)}
			}
		}
	}
	return unaryExpr{op, arg}
}

// NewCond constructs a conditional expression cond ? then : els.
func NewCond(cond, then, els Expr) Expr { return condExpr{cond, then, els} }

// NewSelect constructs an attribute selection base.name.
func NewSelect(base Expr, name string) Expr { return selectExpr{base, name} }

// NewIndex constructs a subscript expression base[index].
func NewIndex(base, index Expr) Expr { return indexExpr{base, index} }
