package classad

// The paper's two example classads (Figures 1 and 2), reconstructed
// verbatim where the text is legible. The published scan garbles a few
// numeric constants (Disk, LoadAvg, DayTime, QDate and the job's Disk
// bound); the values below are chosen to be consistent with the
// surrounding prose — e.g. LoadAvg below 0.3 and KeyboardIdle above 15
// minutes so the machine is harvestable, DayTime mid-morning so the
// "others only at night" clause is exercised. EXPERIMENTS.md E1/E2
// record the reconstruction.

// Figure1Source is the workstation ad of the paper's Figure 1.
const Figure1Source = `
[
    Type         = "Machine";
    Activity     = "Idle";
    DayTime      = 36107;        // current time in seconds since midnight
    KeyboardIdle = 1432;         // seconds
    Disk         = 323496;       // kbytes
    Memory       = 64;           // megabytes
    State        = "Unclaimed";
    LoadAvg      = 0.042969;
    Mips         = 104;
    Arch         = "INTEL";
    OpSys        = "SOLARIS251";
    KFlops       = 21893;
    Name         = "leonardo.cs.wisc.edu";
    ResearchGroup = { "raman", "miron", "solomon", "jbasney" };
    Friends       = { "tannenba", "wright" };
    Untrusted     = { "rival", "riffraff" };
    Rank = member(other.Owner, ResearchGroup) * 10
         + member(other.Owner, Friends);
    // The published layout is ambiguous about how far the
    // !member(..., Untrusted) guard extends; the paper's prose is
    // explicit — "the workstation is never willing to run
    // applications submitted by users rival and riffraff" — so the
    // guard must cover every arm of the conditional:
    Constraint = !member(other.Owner, Untrusted) &&
                 ( Rank >= 10 ? true :
                   Rank > 0 ? LoadAvg < 0.3 && KeyboardIdle > 15*60 :
                   DayTime < 8*60*60 || DayTime > 18*60*60 );
]`

// Figure2Source is the submitted-job ad of the paper's Figure 2.
const Figure2Source = `
[
    Type               = "Job";
    QDate              = 886799469;  // submit time, seconds past 1/1/1970
    CompletionDate     = 0;
    Owner              = "raman";
    Cmd                = "run_sim";
    WantRemoteSyscalls = 1;
    WantCheckpoint     = 1;
    Iwd                = "/usr/raman/sim2";
    Args               = "-Q 17 3200 10";
    Memory             = 31;
    Rank       = KFlops/1E3 + other.Memory/32;
    Constraint = other.Type == "Machine" && Arch == "INTEL"
              && OpSys == "SOLARIS251" && Disk >= 6000
              && other.Memory >= self.Memory;
]`

// Figure1 returns a fresh copy of the paper's workstation ad.
func Figure1() *Ad { return MustParse(Figure1Source) }

// Figure2 returns a fresh copy of the paper's job ad.
func Figure2() *Ad { return MustParse(Figure2Source) }
