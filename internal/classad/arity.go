package classad

// Arity metadata for the builtin function table, used by static
// analysis to flag calls that can only evaluate to error. A test keeps
// builtinArity in sync with the builtins map.

type arity struct {
	min, max int // max = -1 for variadic
}

var builtinArity = map[string]arity{
	"member":          {2, 2},
	"identicalmember": {2, 2},
	"strcmp":          {2, 2},
	"stricmp":         {2, 2},
	"toupper":         {1, 1},
	"tolower":         {1, 1},
	"substr":          {2, 3},
	"strcat":          {0, -1},
	"size":            {1, 1},
	"int":             {1, 1},
	"real":            {1, 1},
	"string":          {1, 1},
	"bool":            {1, 1},
	"floor":           {1, 1},
	"ceiling":         {1, 1},
	"ceil":            {1, 1},
	"round":           {1, 1},
	"abs":             {1, 1},
	"pow":             {2, 2},
	"sqrt":            {1, 1},
	"quantize":        {2, 2},
	"min":             {1, -1},
	"max":             {1, -1},
	"sum":             {1, -1},
	"avg":             {1, -1},
	"isundefined":     {1, 1},
	"iserror":         {1, 1},
	"isstring":        {1, 1},
	"isinteger":       {1, 1},
	"isreal":          {1, 1},
	"isboolean":       {1, 1},
	"islist":          {1, 1},
	"isclassad":       {1, 1},
	"ifthenelse":      {3, 3},
	"anycompare":      {3, 3},
	"allcompare":      {3, 3},
	"regexp":          {2, 3},
	"regexps":         {3, 3},
	"splitlist":       {1, 2},
	"join":            {2, 2},
	"random":          {0, 1},
	"time":            {0, 0},
	"currenttime":     {0, 0},
	"daytime":         {0, 0},
	"interval":        {1, 1},
	"unparse":         {1, 1},
}

// IsBuiltin reports whether name (case-insensitive) is a builtin
// function.
func IsBuiltin(name string) bool {
	_, ok := builtins[Fold(name)]
	return ok
}

// BuiltinArity returns the accepted argument count range of a builtin
// (max = -1 means variadic). ok is false for unknown functions.
func BuiltinArity(name string) (min, max int, ok bool) {
	a, ok := builtinArity[Fold(name)]
	return a.min, a.max, ok
}
