package classad

import (
	"strings"
	"testing"
)

func TestParseLiterals(t *testing.T) {
	cases := map[string]Value{
		"42":        Int(42),
		"-7":        Int(-7),
		"3.5":       Real(3.5),
		"-2.5":      Real(-2.5),
		`"hi"`:      Str("hi"),
		"true":      Bool(true),
		"false":     Bool(false),
		"TRUE":      Bool(true),
		"False":     Bool(false),
		"undefined": Undef(),
		"UNDEFINED": Undef(),
	}
	for src, want := range cases {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		got := EvalExpr(e, nil)
		if !got.Identical(want) {
			t.Errorf("%q evaluated to %v, want %v", src, got, want)
		}
	}
}

func TestParseErrorLiteral(t *testing.T) {
	v := EvalExpr(MustParseExpr("error"), nil)
	if !v.IsError() {
		t.Errorf("error literal evaluated to %v", v)
	}
}

func TestParsePrecedence(t *testing.T) {
	cases := map[string]Value{
		"1 + 2 * 3":             Int(7),
		"(1 + 2) * 3":           Int(9),
		"10 - 4 - 3":            Int(3), // left associative
		"2 * 3 + 4 * 5":         Int(26),
		"1 < 2 && 3 < 4":        Bool(true),
		"1 < 2 || 1 / 0 == 1":   Bool(true), // || short-circuits
		"false && true || true": Bool(true),
		"1 + 2 == 3":            Bool(true),
		"1 == 1 is true":        Bool(true), // == binds before is? same level, left assoc
		"10 % 3":                Int(1),
		"7 / 2":                 Int(3),
		"7.0 / 2":               Real(3.5),
		"-2 * 3":                Int(-6),
		"!(1 == 2)":             Bool(true),
		"!true || true":         Bool(true),
		"2 < 3 == true":         Bool(true),
	}
	for src, want := range cases {
		got := EvalExpr(MustParseExpr(src), nil)
		if !got.Identical(want) {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestParseConditionalRightAssociative(t *testing.T) {
	// a ? b : c ? d : e parses as a ? b : (c ? d : e).
	got := EvalExpr(MustParseExpr("false ? 1 : true ? 2 : 3"), nil)
	if !got.Identical(Int(2)) {
		t.Errorf("nested conditional = %v, want 2", got)
	}
	got = EvalExpr(MustParseExpr("false ? 1 : false ? 2 : 3"), nil)
	if !got.Identical(Int(3)) {
		t.Errorf("nested conditional = %v, want 3", got)
	}
}

func TestParseConditionalMatchesPaperConstraint(t *testing.T) {
	// The Figure 1 constraint relies on ?: binding loosest:
	// A && B ? X : C ? Y : Z  ==  (A && B) ? X : ((C) ? Y : Z).
	ad := MustParse(`[
		cond = 1 > 2 && 3 > 2 ? "first" : 5 > 4 ? "second" : "third";
	]`)
	got := ad.Eval("cond")
	if s, _ := got.StringVal(); s != "second" {
		t.Errorf("cond = %v, want \"second\"", got)
	}
}

func TestParseLists(t *testing.T) {
	v := EvalExpr(MustParseExpr(`{1, 2.5, "three", {4}}`), nil)
	list, ok := v.ListVal()
	if !ok || len(list) != 4 {
		t.Fatalf("list = %v", v)
	}
	if !list[0].Identical(Int(1)) || !list[1].Identical(Real(2.5)) {
		t.Errorf("list elements wrong: %v", v)
	}
	inner, ok := list[3].ListVal()
	if !ok || len(inner) != 1 {
		t.Errorf("nested list wrong: %v", list[3])
	}
	// Empty list and trailing comma.
	for _, src := range []string{"{}", "{1,}"} {
		if _, err := ParseExpr(src); err != nil {
			t.Errorf("parse %q: %v", src, err)
		}
	}
}

func TestParseNestedAd(t *testing.T) {
	e := MustParseExpr(`[a = 1; b = [c = 2]]`)
	v := EvalExpr(e, nil)
	ad, ok := v.AdVal()
	if !ok {
		t.Fatalf("not an ad: %v", v)
	}
	if got := ad.Eval("a"); !got.Identical(Int(1)) {
		t.Errorf("a = %v", got)
	}
	inner := EvalExpr(MustParseExpr("[a=1; b=[c=2]].b.c"), nil)
	if !inner.Identical(Int(2)) {
		t.Errorf("b.c = %v, want 2", inner)
	}
}

func TestParseAdForms(t *testing.T) {
	bracketed := MustParse(`[ a = 1; b = "x" ]`)
	trailingSemi := MustParse(`[ a = 1; b = "x"; ]`)
	bare := MustParse("a = 1\nb = \"x\"")
	bareSemis := MustParse(`a = 1; b = "x";`)
	for i, ad := range []*Ad{bracketed, trailingSemi, bare, bareSemis} {
		if ad.Len() != 2 {
			t.Errorf("form %d: %d attributes, want 2", i, ad.Len())
		}
		if v := ad.Eval("a"); !v.Identical(Int(1)) {
			t.Errorf("form %d: a = %v", i, v)
		}
	}
	empty := MustParse("[]")
	if empty.Len() != 0 {
		t.Errorf("empty ad has %d attributes", empty.Len())
	}
}

func TestParseMulti(t *testing.T) {
	ads, err := ParseMulti(`[a=1] [b=2]
		[c=3]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ads) != 3 {
		t.Fatalf("got %d ads, want 3", len(ads))
	}
	if v := ads[2].Eval("c"); !v.Identical(Int(3)) {
		t.Errorf("third ad c = %v", v)
	}
	if _, err := ParseMulti("[a=1] garbage"); err == nil {
		t.Error("expected error for trailing garbage")
	}
}

func TestParseScopedReferences(t *testing.T) {
	for src, want := range map[string]string{
		"self.Memory":   "self.Memory",
		"my.Memory":     "self.Memory",
		"other.Memory":  "other.Memory",
		"target.Memory": "other.Memory",
		"SELF.Memory":   "self.Memory",
		"Other.Disk":    "other.Disk",
	} {
		e := MustParseExpr(src)
		if e.String() != want {
			t.Errorf("%q unparses as %q, want %q", src, e.String(), want)
		}
	}
}

func TestParseSelectionOnExpression(t *testing.T) {
	// A dot after a non-qualifier base is record selection.
	e := MustParseExpr("([x = 5]).x")
	if v := EvalExpr(e, nil); !v.Identical(Int(5)) {
		t.Errorf("selection = %v, want 5", v)
	}
}

func TestParseSubscripts(t *testing.T) {
	cases := map[string]Value{
		"{10, 20, 30}[1]": Int(20),
		"{10, 20, 30}[0]": Int(10),
		`[a = 7]["a"]`:    Int(7),
		`"hello"[1]`:      Str("e"),
	}
	for src, want := range cases {
		got := EvalExpr(MustParseExpr(src), nil)
		if !got.Identical(want) {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
	for _, src := range []string{"{1,2}[5]", "{1,2}[-1]", `{1}["x"]`, "5[0]"} {
		if got := EvalExpr(MustParseExpr(src), nil); !got.IsError() {
			t.Errorf("%q = %v, want error", src, got)
		}
	}
}

func TestParseFunctionCalls(t *testing.T) {
	v := EvalExpr(MustParseExpr(`member("b", {"a", "b"})`), nil)
	if !v.IsTrue() {
		t.Errorf("member call = %v", v)
	}
	// Case-insensitive function names.
	v = EvalExpr(MustParseExpr(`MEMBER("b", {"a", "b"})`), nil)
	if !v.IsTrue() {
		t.Errorf("MEMBER call = %v", v)
	}
	// Unknown functions evaluate to error, not parse error.
	v = EvalExpr(MustParseExpr("noSuchFn(1)"), nil)
	if !v.IsError() {
		t.Errorf("unknown function = %v, want error", v)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",           // empty expression
		"1 +",        // dangling operator
		"(1",         // unclosed paren
		"[a = ]",     // missing expression
		"[a 1]",      // missing =
		"[1 = 2]",    // non-identifier attribute
		"{1, 2",      // unclosed list
		"a ? b",      // incomplete conditional
		"f(1, ",      // unclosed call
		"a.",         // dangling dot
		"a[1",        // unclosed subscript
		"1 2",        // trailing token
		"[a=1] asdf", // trailing token after ad
	}
	for _, src := range bad {
		if _, err := ParseExpr(src); err == nil {
			if _, err2 := Parse(src); err2 == nil {
				t.Errorf("%q: expected a parse error", src)
			}
		}
	}
}

func TestParseCaseInsensitiveAttributes(t *testing.T) {
	ad := MustParse("[ Memory = 64 ]")
	for _, name := range []string{"Memory", "memory", "MEMORY", "mEmOrY"} {
		if v := ad.Eval(name); !v.Identical(Int(64)) {
			t.Errorf("Eval(%q) = %v, want 64", name, v)
		}
	}
	// Redefining with different case replaces, not duplicates.
	ad.SetInt("MEMORY", 128)
	if ad.Len() != 1 {
		t.Errorf("ad has %d attributes after case-variant Set, want 1", ad.Len())
	}
	if v := ad.Eval("memory"); !v.Identical(Int(128)) {
		t.Errorf("after redefinition memory = %v", v)
	}
}

func TestUnparseRoundTrip(t *testing.T) {
	sources := []string{
		"1 + 2 * 3",
		"(1 + 2) * 3",
		"a && b || !c",
		`member(other.Owner, ResearchGroup) * 10 + member(other.Owner, Friends)`,
		"x < 0.3 && y > 15 * 60",
		`a ? b : c ? d : e`,
		`{1, 2.5, "three"}`,
		`[a = 1; b = {2}]`,
		`other.Memory >= self.Memory`,
		`undefined is undefined`,
		`x isnt error`,
		`-y + 3`,
		`f(g(1), 2)`,
		`list[2].field`,
		`"string with \"escapes\" and \n"`,
	}
	for _, src := range sources {
		e1 := MustParseExpr(src)
		text := e1.String()
		e2, err := ParseExpr(text)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", text, src, err)
		}
		if e2.String() != text {
			t.Errorf("unparse not a fixed point: %q -> %q -> %q", src, text, e2.String())
		}
	}
}

func TestAdRoundTrip(t *testing.T) {
	for _, src := range []string{Figure1Source, Figure2Source} {
		ad1 := MustParse(src)
		ad2, err := Parse(ad1.String())
		if err != nil {
			t.Fatalf("re-parse: %v\ntext: %s", err, ad1.String())
		}
		if !ad1.Equal(ad2) {
			t.Errorf("round trip changed ad:\n%s\nvs\n%s", ad1, ad2)
		}
		// Pretty form re-parses too.
		ad3, err := Parse(ad1.Pretty())
		if err != nil {
			t.Fatalf("re-parse pretty: %v", err)
		}
		if !ad1.Equal(ad3) {
			t.Errorf("pretty round trip changed ad")
		}
	}
}

func TestParsePreservesAttributeOrder(t *testing.T) {
	ad := MustParse("[ zebra = 1; alpha = 2; mid = 3 ]")
	got := strings.Join(ad.Names(), ",")
	if got != "zebra,alpha,mid" {
		t.Errorf("attribute order %q, want insertion order", got)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse of garbage did not panic")
		}
	}()
	MustParse("[this is not valid")
}
