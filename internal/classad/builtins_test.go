package classad

import (
	"math"
	"strings"
	"testing"
)

func TestMember(t *testing.T) {
	ad := MustParse(`[ Group = {"raman", "miron", "solomon"}; Empty = {} ]`)
	cases := map[string]string{
		`member("raman", Group)`:   "T",
		`member("RAMAN", Group)`:   "T", // == is case-insensitive
		`member("nobody", Group)`:  "F",
		`member("x", Empty)`:       "F",
		`member(Missing, Group)`:   "U",
		`member("x", Missing)`:     "U",
		`member(1/0, Group)`:       "E",
		`member("x", {1, "x", 2})`: "T",
		// Mixed-type comparisons inside member are skipped (they
		// produce errors element-wise, treated as no-match), so a
		// string never "equals" an integer.
		`member("1", {1})`: "F",
		// Reversed argument order tolerated.
		`member(Group, "miron")`: "T",
	}
	for src, w := range cases {
		if got := evalStr(t, src, ad); !valueMatchesLetter(got, w) {
			t.Errorf("%s = %v, want %s", src, got, w)
		}
	}
	if got := evalStr(t, `member("x", "not a list")`, ad); !got.IsError() {
		t.Errorf("member with non-list = %v, want error", got)
	}
}

func TestMemberUndefinedElement(t *testing.T) {
	// If no element matches but some comparison was undefined, the
	// result is undefined (can't prove absence).
	ad := MustParse(`[ L = {Missing, "b"} ]`)
	if got := evalStr(t, `member("zzz", L)`, ad); !got.IsUndefined() {
		t.Errorf("member over list with undefined element = %v, want undefined", got)
	}
	// But a definite hit still wins.
	if got := evalStr(t, `member("b", L)`, ad); !got.IsTrue() {
		t.Errorf("member hit despite undefined element = %v, want true", got)
	}
}

func TestIdenticalMember(t *testing.T) {
	cases := map[string]string{
		`identicalMember("a", {"A", "a"})`:        "T",
		`identicalMember("A", {"a"})`:             "F", // case-sensitive
		`identicalMember(1, {1.0})`:               "F", // type-sensitive
		`identicalMember(undefined, {undefined})`: "T",
		`identicalMember("x", Missing)`:           "U",
	}
	for src, w := range cases {
		if got := evalStr(t, src, nil); !valueMatchesLetter(got, w) {
			t.Errorf("%s = %v, want %s", src, got, w)
		}
	}
}

func TestStringFunctions(t *testing.T) {
	cases := map[string]Value{
		`strcmp("a", "b")`:         Int(-1),
		`strcmp("b", "a")`:         Int(1),
		`strcmp("a", "a")`:         Int(0),
		`strcmp("a", "A")`:         Int(1), // case-sensitive
		`stricmp("a", "A")`:        Int(0),
		`toUpper("MixedCase")`:     Str("MIXEDCASE"),
		`toLower("MixedCase")`:     Str("mixedcase"),
		`substr("workstation", 4)`: Str("station"),
		`substr("hello", 1, 3)`:    Str("ell"),
		`substr("hello", -3)`:      Str("llo"),
		`substr("hello", 0, -1)`:   Str("hell"),
		`substr("hello", 99)`:      Str(""),
		`substr("hello", 2, 99)`:   Str("llo"),
		`strcat("a", "b", "c")`:    Str("abc"),
		`strcat("n=", 5)`:          Str("n=5"),
		`size("hello")`:            Int(5),
		`size({1,2,3})`:            Int(3),
		`size([a=1; b=2])`:         Int(2),
		`join(",", {"a", "b"})`:    Str("a,b"),
		`join("-", {1, 2})`:        Str("1-2"),
	}
	for src, want := range cases {
		if got := evalStr(t, src, nil); !got.Identical(want) {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
	if got := evalStr(t, `strcmp(1, "a")`, nil); !got.IsError() {
		t.Errorf("strcmp with non-string = %v, want error", got)
	}
	if got := evalStr(t, `substr(5, 1)`, nil); !got.IsError() {
		t.Errorf("substr of integer = %v, want error", got)
	}
	if got := evalStr(t, `size(5)`, nil); !got.IsError() {
		t.Errorf("size of integer = %v, want error", got)
	}
}

func TestSplitList(t *testing.T) {
	v := evalStr(t, `splitList("intel, sparc alpha")`, nil)
	list, ok := v.ListVal()
	if !ok || len(list) != 3 {
		t.Fatalf("splitList = %v", v)
	}
	want := []string{"intel", "sparc", "alpha"}
	for i, w := range want {
		if s, _ := list[i].StringVal(); s != w {
			t.Errorf("element %d = %v, want %q", i, list[i], w)
		}
	}
	v = evalStr(t, `splitList("a:b:c", ":")`, nil)
	if list, _ := v.ListVal(); len(list) != 3 {
		t.Errorf("splitList with custom sep = %v", v)
	}
}

func TestConversions(t *testing.T) {
	cases := map[string]Value{
		`int(3.9)`:     Int(3),
		`int(-3.9)`:    Int(-3),
		`int(true)`:    Int(1),
		`int("42")`:    Int(42),
		`int(" 42 ")`:  Int(42),
		`int("3.9")`:   Int(3),
		`real(3)`:      Real(3),
		`real("2.5")`:  Real(2.5),
		`real(false)`:  Real(0),
		`string(42)`:   Str("42"),
		`string(true)`: Str("true"),
		`string("s")`:  Str("s"),
		`string(2.5)`:  Str("2.5"),
		`bool(1)`:      Bool(true),
		`bool(0)`:      Bool(false),
		`bool("true")`: Bool(true),
		`bool("no")`:   Bool(false),
		`bool(0.0)`:    Bool(false),
	}
	for src, want := range cases {
		if got := evalStr(t, src, nil); !got.Identical(want) {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
	for _, src := range []string{`int("x")`, `real("x")`, `bool("maybe")`, `int({1})`} {
		if got := evalStr(t, src, nil); !got.IsError() {
			t.Errorf("%s = %v, want error", src, got)
		}
	}
	// real("INF") round-trips the unparser's encoding of infinities.
	v := evalStr(t, `real("INF")`, nil)
	if r, _ := v.RealVal(); !math.IsInf(r, 1) {
		t.Errorf(`real("INF") = %v`, v)
	}
}

func TestNumericFunctions(t *testing.T) {
	cases := map[string]Value{
		`floor(3.7)`:      Int(3),
		`floor(-3.2)`:     Int(-4),
		`ceiling(3.2)`:    Int(4),
		`ceil(3.2)`:       Int(4),
		`round(3.5)`:      Int(4),
		`round(2.4)`:      Int(2),
		`abs(-5)`:         Int(5),
		`abs(5)`:          Int(5),
		`abs(-2.5)`:       Real(2.5),
		`pow(2, 10)`:      Int(1024),
		`pow(2.0, 2)`:     Real(4),
		`pow(2, -1)`:      Real(0.5),
		`sqrt(16)`:        Real(4),
		`quantize(3, 8)`:  Int(8),
		`quantize(17, 8)`: Int(24),
		`quantize(0, 8)`:  Int(0),
		`min({3, 1, 2})`:  Int(1),
		`max({3, 1, 2})`:  Int(3),
		`min(3, 1, 2)`:    Int(1),
		`max(2.5, 1)`:     Real(2.5),
		`sum({1, 2, 3})`:  Int(6),
		`sum({1.5, 2})`:   Real(3.5),
		`avg({1, 2, 3})`:  Real(2),
		`avg({2, 4})`:     Real(3),
	}
	for src, want := range cases {
		if got := evalStr(t, src, nil); !got.Identical(want) {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
	if got := evalStr(t, `sqrt(-1)`, nil); !got.IsError() {
		t.Errorf("sqrt(-1) = %v, want error", got)
	}
	if got := evalStr(t, `quantize(5, 0)`, nil); !got.IsError() {
		t.Errorf("quantize by zero = %v, want error", got)
	}
	if got := evalStr(t, `min({})`, nil); !got.IsUndefined() {
		t.Errorf("min of empty = %v, want undefined", got)
	}
	if got := evalStr(t, `sum({1, "x"})`, nil); !got.IsError() {
		t.Errorf("sum with string = %v, want error", got)
	}
	if got := evalStr(t, `max({1, Missing})`, nil); !got.IsUndefined() {
		t.Errorf("max with undefined = %v, want undefined", got)
	}
}

func TestTypeTests(t *testing.T) {
	cases := map[string]bool{
		`isUndefined(Missing)`: true,
		`isUndefined(1)`:       false,
		`isError(1/0)`:         true,
		`isError(1)`:           false,
		`isString("s")`:        true,
		`isInteger(1)`:         true,
		`isInteger(1.0)`:       false,
		`isReal(1.0)`:          true,
		`isBoolean(true)`:      true,
		`isList({1})`:          true,
		`isClassAd([a=1])`:     true,
		`isClassAd({1})`:       false,
	}
	for src, want := range cases {
		got := evalStr(t, src, nil)
		if b, _ := got.BoolVal(); b != want {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestIfThenElse(t *testing.T) {
	if got := evalStr(t, `ifThenElse(2 > 1, "yes", 1/0)`, nil); !got.Identical(Str("yes")) {
		t.Errorf("ifThenElse did not short-circuit: %v", got)
	}
	if got := evalStr(t, `ifThenElse(Missing, 1, 2)`, nil); !got.IsUndefined() {
		t.Errorf("ifThenElse(undefined) = %v, want undefined", got)
	}
	if got := evalStr(t, `ifThenElse(1, "a", "b")`, nil); !got.Identical(Str("a")) {
		t.Errorf("numeric condition = %v", got)
	}
}

func TestAnyAllCompare(t *testing.T) {
	cases := map[string]string{
		`anyCompare("<", {1, 5, 9}, 3)`: "T",
		`anyCompare("<", {5, 9}, 3)`:    "F",
		`allCompare("<", {1, 2}, 3)`:    "T",
		`allCompare("<", {1, 5}, 3)`:    "F",
		`anyCompare("==", {"A"}, "a")`:  "T",
		`anyCompare("is", {"A"}, "a")`:  "F",
		`allCompare("is", {}, 1)`:       "T", // vacuous truth
		`anyCompare("==", {}, 1)`:       "F",
		`anyCompare(">=", {10}, 10)`:    "T",
		`anyCompare("isnt", {1, 2}, 1)`: "T",
	}
	for src, w := range cases {
		if got := evalStr(t, src, nil); !valueMatchesLetter(got, w) {
			t.Errorf("%s = %v, want %s", src, got, w)
		}
	}
	if got := evalStr(t, `anyCompare("@@", {1}, 1)`, nil); !got.IsError() {
		t.Errorf("bad operator = %v, want error", got)
	}
}

func TestRegexpFunctions(t *testing.T) {
	cases := map[string]string{
		`regexp("^INTEL", "INTEL-x86")`:         "T",
		`regexp("^intel", "INTEL-x86")`:         "F",
		`regexp("^intel", "INTEL-x86", "i")`:    "T",
		`regexp("sol.*251", "SOLARIS251", "I")`: "T", // option letter folds too
		`regexp("SOL.*251", "SOLARIS251")`:      "T",
	}
	for src, w := range cases {
		if got := evalStr(t, src, nil); !valueMatchesLetter(got, w) {
			t.Errorf("%s = %v, want %s", src, got, w)
		}
	}
	v := evalStr(t, `regexps("(\\w+)@(\\w+)", "user@host", "$2/$1")`, nil)
	if s, _ := v.StringVal(); s != "host/user" {
		t.Errorf("regexps = %v, want host/user", v)
	}
	if got := evalStr(t, `regexp("(unclosed", "x")`, nil); !got.IsError() {
		t.Errorf("bad pattern = %v, want error", got)
	}
}

func TestRegexpCaseInsensitiveOption(t *testing.T) {
	if got := evalStr(t, `regexp("sol.*251", "SOLARIS251", "i")`, nil); !got.IsTrue() {
		t.Errorf("case-folded regexp = %v, want true", got)
	}
}

func TestRandomAndTime(t *testing.T) {
	env := FixedEnv(1000, 1)
	for i := 0; i < 20; i++ {
		v := EvalExprEnv(MustParseExpr("random()"), nil, env)
		r, ok := v.RealVal()
		if !ok || r < 0 || r >= 1 {
			t.Fatalf("random() = %v, want real in [0,1)", v)
		}
	}
	for i := 0; i < 20; i++ {
		v := EvalExprEnv(MustParseExpr("random(10)"), nil, env)
		n, ok := v.IntVal()
		if !ok || n < 0 || n >= 10 {
			t.Fatalf("random(10) = %v, want integer in [0,10)", v)
		}
	}
	if got := EvalExprEnv(MustParseExpr("random(-1)"), nil, env); !got.IsError() {
		t.Errorf("random(-1) = %v, want error", got)
	}
	if got := EvalExprEnv(MustParseExpr("time()"), nil, env); !got.Identical(Int(1000)) {
		t.Errorf("time() = %v, want 1000", got)
	}
	if got := EvalExprEnv(MustParseExpr("currentTime()"), nil, env); !got.Identical(Int(1000)) {
		t.Errorf("currentTime() = %v, want 1000", got)
	}
}

func TestArityErrors(t *testing.T) {
	for _, src := range []string{
		"member(1)", "strcmp(1)", "substr()", "size()", "int(1, 2)",
		"ifThenElse(1, 2)", "pow(1)", "time(1)", "random(1, 2)",
		"anyCompare(1, 2)",
	} {
		if got := evalStr(t, src, nil); !got.IsError() {
			t.Errorf("%s = %v, want arity error", src, got)
		}
	}
}

func TestBuiltinNamesSorted(t *testing.T) {
	names := BuiltinNames()
	if len(names) < 30 {
		t.Errorf("only %d builtins registered", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Errorf("names not sorted at %d: %q < %q", i, names[i], names[i-1])
		}
	}
	found := false
	for _, n := range names {
		if n == "member" {
			found = true
		}
	}
	if !found {
		t.Error("member missing from BuiltinNames")
	}
}

func TestStrcatRendersNonStrings(t *testing.T) {
	v := evalStr(t, `strcat("list=", {1,2})`, nil)
	s, _ := v.StringVal()
	if !strings.Contains(s, "{1, 2}") {
		t.Errorf("strcat list rendering = %q", s)
	}
}
