package classad

import (
	"strings"
	"testing"
)

func lexAll(t *testing.T, src string) []token {
	t.Helper()
	lx := newLexer(src)
	var out []token
	for {
		tok, err := lx.next()
		if err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		if tok.kind == tokEOF {
			return out
		}
		out = append(out, tok)
	}
}

func TestLexPunctuation(t *testing.T) {
	toks := lexAll(t, "[ ] { } ( ) ; , = . ? : || && ! < <= > >= == != + - * / %")
	want := []tokenKind{
		tokLBracket, tokRBracket, tokLBrace, tokRBrace, tokLParen, tokRParen,
		tokSemi, tokComma, tokAssign, tokDot, tokQuestion, tokColon,
		tokOr, tokAnd, tokNot, tokLt, tokLe, tokGt, tokGe, tokEq, tokNe,
		tokPlus, tokMinus, tokStar, tokSlash, tokPercent,
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, k := range want {
		if toks[i].kind != k {
			t.Errorf("token %d: got kind %d, want %d", i, toks[i].kind, k)
		}
	}
}

func TestLexIntegers(t *testing.T) {
	cases := map[string]int64{
		"0":        0,
		"42":       42,
		"1000000":  1000000,
		"0x1f":     31,
		"0X10":     16,
		"21893":    21893,
		"88679946": 88679946,
	}
	for src, want := range cases {
		toks := lexAll(t, src)
		if len(toks) != 1 || toks[0].kind != tokInt {
			t.Fatalf("%q: expected one integer token, got %v", src, toks)
		}
		if toks[0].ival != want {
			t.Errorf("%q: got %d, want %d", src, toks[0].ival, want)
		}
	}
}

func TestLexReals(t *testing.T) {
	cases := map[string]float64{
		"3.5":      3.5,
		"0.042969": 0.042969,
		".5":       0.5,
		"1E3":      1000,
		"1e-3":     0.001,
		"2.5e2":    250,
		"6.0":      6,
	}
	for src, want := range cases {
		toks := lexAll(t, src)
		if len(toks) != 1 || toks[0].kind != tokReal {
			t.Fatalf("%q: expected one real token, got %+v", src, toks)
		}
		if toks[0].rval != want {
			t.Errorf("%q: got %g, want %g", src, toks[0].rval, want)
		}
	}
}

func TestLexHugeIntegerDegradesToReal(t *testing.T) {
	toks := lexAll(t, "99999999999999999999999999")
	if len(toks) != 1 || toks[0].kind != tokReal {
		t.Fatalf("expected real token for out-of-range integer, got %+v", toks)
	}
}

func TestLexStrings(t *testing.T) {
	cases := map[string]string{
		`"hello"`:            "hello",
		`""`:                 "",
		`"with \"quotes\""`:  `with "quotes"`,
		`"tab\there"`:        "tab\there",
		`"line\nbreak"`:      "line\nbreak",
		`"back\\slash"`:      `back\slash`,
		`"-Q 17 3200 10"`:    "-Q 17 3200 10",
		`"/usr/raman/sim2"`:  "/usr/raman/sim2",
		`"unicode: héllo"`:   "unicode: héllo",
		`"carriage\rreturn"`: "carriage\rreturn",
	}
	for src, want := range cases {
		toks := lexAll(t, src)
		if len(toks) != 1 || toks[0].kind != tokString {
			t.Fatalf("%q: expected one string token, got %+v", src, toks)
		}
		if toks[0].text != want {
			t.Errorf("%q: got %q, want %q", src, toks[0].text, want)
		}
	}
}

func TestLexStringErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, `"bad \q escape"`, "\"newline\nin string\""} {
		lx := newLexer(src)
		if _, err := lx.next(); err == nil {
			t.Errorf("%q: expected lex error", src)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks := lexAll(t, `
		// a line comment
		42 /* a block
		      comment */ 43
		# shell comment
		44`)
	if len(toks) != 3 {
		t.Fatalf("expected 3 tokens, got %d: %+v", len(toks), toks)
	}
	for i, want := range []int64{42, 43, 44} {
		if toks[i].ival != want {
			t.Errorf("token %d: got %d, want %d", i, toks[i].ival, want)
		}
	}
}

func TestLexUnterminatedBlockComment(t *testing.T) {
	lx := newLexer("42 /* never closed")
	if _, err := lx.next(); err != nil {
		t.Fatalf("first token: %v", err)
	}
	if _, err := lx.next(); err == nil {
		t.Error("expected error for unterminated block comment")
	}
}

func TestLexLineNumbers(t *testing.T) {
	lx := newLexer("a\nb\n\nc")
	wantLines := []int{1, 2, 4}
	for i, want := range wantLines {
		tok, err := lx.next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.line != want {
			t.Errorf("token %d: line %d, want %d", i, tok.line, want)
		}
	}
}

func TestLexIdentifiers(t *testing.T) {
	toks := lexAll(t, "Memory _private KeyboardIdle x86_64 Op2Sys")
	want := []string{"Memory", "_private", "KeyboardIdle", "x86_64", "Op2Sys"}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, w := range want {
		if toks[i].kind != tokIdent || toks[i].text != w {
			t.Errorf("token %d: got %q, want %q", i, toks[i].text, w)
		}
	}
}

func TestLexCondorMetaOperators(t *testing.T) {
	// =?= and =!= are the Condor spellings of is / isnt.
	toks := lexAll(t, "a =?= b =!= c")
	var words []string
	for _, tok := range toks {
		if tok.kind == tokIdent {
			words = append(words, strings.ToLower(tok.text))
		}
	}
	got := strings.Join(words, " ")
	if got != "a is b isnt c" {
		t.Errorf("meta operators lexed as %q", got)
	}
}

func TestLexSingleAmpersandAndPipeAreErrors(t *testing.T) {
	for _, src := range []string{"a & b", "a | b", "a @ b"} {
		lx := newLexer(src)
		var err error
		for err == nil {
			var tok token
			tok, err = lx.next()
			if err == nil && tok.kind == tokEOF {
				t.Errorf("%q: expected lex error, reached EOF", src)
				break
			}
		}
	}
}

func TestSyntaxErrorMessageIncludesLine(t *testing.T) {
	_, err := Parse("[\n  a = 1;\n  b = @;\n]")
	if err == nil {
		t.Fatal("expected parse error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("expected *SyntaxError, got %T: %v", err, err)
	}
	if se.Line != 3 {
		t.Errorf("error line = %d, want 3 (%v)", se.Line, se)
	}
	if !strings.Contains(se.Error(), "line 3") {
		t.Errorf("error text %q should mention line 3", se.Error())
	}
}
