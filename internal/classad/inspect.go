package classad

// This file exposes a read-only structural view of parsed expressions.
// The AST node types themselves stay unexported (they carry evaluation
// behaviour that callers must not bypass), but static tooling — the
// analysis package, cadlint, canalyze — needs to walk the tree. Inspect
// flattens any node into an ExprInfo; Walk performs a pre-order
// traversal.

// ExprKind classifies an expression node for inspection.
type ExprKind int

// The expression node kinds.
const (
	KindLiteral ExprKind = iota // a constant Value
	KindAttrRef                 // attribute reference, possibly scoped
	KindUnary                   // unary operator; Args = [operand]
	KindBinary                  // binary operator; Args = [left, right]
	KindCond                    // ?: conditional; Args = [cond, then, else]
	KindCall                    // builtin call; Name is the function
	KindList                    // list literal; Args = elements
	KindAd                      // nested classad literal
	KindSelect                  // record selection; Args = [base], Name = field
	KindIndex                   // subscript; Args = [base, index]
)

// ExprInfo is the flattened view of one expression node. Only the
// fields relevant to the Kind are set.
type ExprInfo struct {
	Kind  ExprKind
	Op    Op     // KindUnary, KindBinary
	Value Value  // KindLiteral
	Scope Scope  // KindAttrRef
	Name  string // KindAttrRef, KindCall, KindSelect
	Args  []Expr // child expressions, in evaluation order
	Ad    *Ad    // KindAd
}

// Inspect returns the structural view of e. A nil or foreign Expr
// implementation is reported as an undefined literal.
func Inspect(e Expr) ExprInfo {
	switch n := e.(type) {
	case litExpr:
		return ExprInfo{Kind: KindLiteral, Value: n.v}
	case attrRef:
		return ExprInfo{Kind: KindAttrRef, Scope: n.scope, Name: n.name}
	case unaryExpr:
		return ExprInfo{Kind: KindUnary, Op: n.op, Args: []Expr{n.arg}}
	case binaryExpr:
		return ExprInfo{Kind: KindBinary, Op: n.op, Args: []Expr{n.l, n.r}}
	case condExpr:
		return ExprInfo{Kind: KindCond, Args: []Expr{n.cond, n.then, n.els}}
	case callExpr:
		return ExprInfo{Kind: KindCall, Name: n.name, Args: n.args}
	case listExpr:
		return ExprInfo{Kind: KindList, Args: n.elems}
	case adExpr:
		return ExprInfo{Kind: KindAd, Ad: n.ad}
	case selectExpr:
		return ExprInfo{Kind: KindSelect, Name: n.name, Args: []Expr{n.base}}
	case indexExpr:
		return ExprInfo{Kind: KindIndex, Args: []Expr{n.base, n.index}}
	default:
		return ExprInfo{Kind: KindLiteral, Value: Undef()}
	}
}

// Walk traverses e in pre-order, calling visit on every node. If visit
// returns false the node's children are skipped. Nested ad literals
// are not descended into (their attributes define a fresh scope; use
// Inspect(...).Ad to recurse explicitly).
func Walk(e Expr, visit func(Expr) bool) {
	if e == nil || !visit(e) {
		return
	}
	for _, c := range Inspect(e).Args {
		Walk(c, visit)
	}
}
