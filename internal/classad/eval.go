package classad

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// maxEvalDepth bounds expression recursion so that deeply nested or
// adversarial ads evaluate to error instead of exhausting the stack.
const maxEvalDepth = 512

// Env supplies the external environment visible to builtin functions.
// Injecting it keeps evaluation deterministic under test and lets the
// discrete-event simulator supply virtual time.
type Env struct {
	// Now returns the current time in seconds since the Unix epoch;
	// used by the time() builtin and by ad-lifetime bookkeeping.
	Now func() int64
	// Rand returns a uniform variate in [0,1); used by random().
	Rand func() float64
}

var defaultEnvOnce sync.Once
var defaultEnvVal *Env

// DefaultEnv returns the process-wide environment: real wall-clock
// time and a private seeded random source.
func DefaultEnv() *Env {
	defaultEnvOnce.Do(func() {
		var mu sync.Mutex
		rng := rand.New(rand.NewSource(time.Now().UnixNano())) //determguard:ok DefaultEnv IS the wall-clock seam; replayed code gets an injected Env
		defaultEnvVal = &Env{
			Now: func() int64 { return time.Now().Unix() }, //determguard:ok DefaultEnv IS the wall-clock seam; replayed code gets an injected Env
			Rand: func() float64 {
				mu.Lock()
				defer mu.Unlock()
				return rng.Float64()
			},
		}
	})
	return defaultEnvVal
}

// FixedEnv returns a deterministic environment: time frozen at now and
// a random stream seeded with seed. Tests and simulations use this.
func FixedEnv(now int64, seed int64) *Env {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return &Env{
		Now: func() int64 { return now },
		Rand: func() float64 {
			mu.Lock()
			defer mu.Unlock()
			return rng.Float64()
		},
	}
}

// progKey identifies an (ad, attribute) pair under evaluation, for
// circular-reference detection.
type progKey struct {
	ad   *Ad
	name string
}

// evalCtx carries evaluation state: the lexical scope chain
// (innermost ad first), the candidate ad of a two-way match, the
// circularity ledger, and the environment.
type evalCtx struct {
	chain  []*Ad
	other  *Ad
	inprog map[progKey]bool
	env    *Env
	depth  int
}

func newCtx(self *Ad, other *Ad, env *Env) *evalCtx {
	if env == nil {
		env = DefaultEnv()
	}
	return &evalCtx{
		chain:  []*Ad{self},
		other:  other,
		inprog: make(map[progKey]bool),
		env:    env,
	}
}

// root returns the outermost ad of the scope chain: the advertised ad
// itself, which is what `self` denotes for top-level expressions.
func (ctx *evalCtx) root() *Ad { return ctx.chain[len(ctx.chain)-1] }

// flip returns the context for evaluating an attribute that lives in
// the other ad: scopes swap, the circularity ledger is shared so that
// mutual recursion across the two ads is still detected.
func (ctx *evalCtx) flip() *evalCtx {
	return &evalCtx{
		chain:  []*Ad{ctx.other},
		other:  ctx.root(),
		inprog: ctx.inprog,
		env:    ctx.env,
		depth:  ctx.depth,
	}
}

// sub returns a context scoped to a nested ad reached by selection or
// subscripting. The nested ad becomes the only lexical scope; the
// match candidate is preserved.
func (ctx *evalCtx) sub(ad *Ad) *evalCtx {
	return &evalCtx{
		chain:  []*Ad{ad},
		other:  ctx.other,
		inprog: ctx.inprog,
		env:    ctx.env,
		depth:  ctx.depth,
	}
}

// at returns a context whose scope chain starts at position i of the
// current chain — used when an unqualified name resolves in an
// enclosing scope, so the found expression sees its own lexical
// environment.
func (ctx *evalCtx) at(i int) *evalCtx {
	if i == 0 {
		return ctx
	}
	return &evalCtx{
		chain:  ctx.chain[i:],
		other:  ctx.other,
		inprog: ctx.inprog,
		env:    ctx.env,
		depth:  ctx.depth,
	}
}

// evalAttr evaluates attribute name of ad (which must be a scope in
// ctx) with circular-reference detection.
func (ctx *evalCtx) evalAttr(ad *Ad, name string, e Expr) Value {
	key := progKey{ad, Fold(name)}
	if ctx.inprog[key] {
		return Erroneous("circular reference to attribute %q", name)
	}
	ctx.inprog[key] = true
	v := e.eval(ctx)
	delete(ctx.inprog, key)
	return v
}

// EvalExpr evaluates e with ad as the self scope and no match
// candidate, using the default environment. References to attributes
// missing from ad evaluate to undefined.
func EvalExpr(e Expr, ad *Ad) Value { return EvalExprEnv(e, ad, nil) }

// EvalExprEnv is EvalExpr with an explicit environment (nil means the
// default environment).
func EvalExprEnv(e Expr, ad *Ad, env *Env) Value {
	if ad == nil {
		ad = NewAd()
	}
	return e.eval(newCtx(ad, nil, env))
}

// EvalString parses src as an expression and evaluates it against ad.
func EvalString(src string, ad *Ad) (Value, error) {
	e, err := ParseExpr(src)
	if err != nil {
		return Undef(), err
	}
	return EvalExpr(e, ad), nil
}

// Eval evaluates the named attribute of the ad with no match
// candidate. A missing attribute yields undefined.
func (a *Ad) Eval(name string) Value { return a.EvalEnv(name, nil) }

// EvalEnv is Eval with an explicit environment.
func (a *Ad) EvalEnv(name string, env *Env) Value {
	e, ok := a.Lookup(name)
	if !ok {
		return Undef()
	}
	ctx := newCtx(a, nil, env)
	return ctx.evalAttr(a, name, e)
}

// EvalAgainst evaluates the named attribute of ad a in a two-way match
// context where other is the candidate ad, as the matchmaker does for
// Constraint and Rank (paper §3.2).
func (a *Ad) EvalAgainst(name string, other *Ad, env *Env) Value {
	e, ok := a.Lookup(name)
	if !ok {
		return Undef()
	}
	ctx := newCtx(a, other, env)
	return ctx.evalAttr(a, name, e)
}

// ---- Expr implementations ----

func (e litExpr) eval(ctx *evalCtx) Value { return e.v }

func (e attrRef) eval(ctx *evalCtx) Value {
	if ctx.depth++; ctx.depth > maxEvalDepth {
		return Erroneous("expression too deeply nested")
	}
	defer func() { ctx.depth-- }()
	switch e.scope {
	case ScopeSelf:
		ad := ctx.chain[0]
		if ex, ok := ad.Lookup(e.name); ok {
			return ctx.evalAttr(ad, e.name, ex)
		}
		return Undef()
	case ScopeOther:
		if ctx.other == nil {
			return Undef()
		}
		if ex, ok := ctx.other.Lookup(e.name); ok {
			f := ctx.flip()
			return f.evalAttr(ctx.other, e.name, ex)
		}
		return Undef()
	default:
		// Unqualified: innermost scope outward, then the other ad.
		// The fallback to the other ad is what lets the paper's
		// Figure 2 job constraint mention Arch, OpSys and Disk,
		// which only the machine ad defines.
		for i, ad := range ctx.chain {
			if ex, ok := ad.Lookup(e.name); ok {
				return ctx.at(i).evalAttr(ad, e.name, ex)
			}
		}
		if ctx.other != nil {
			if ex, ok := ctx.other.Lookup(e.name); ok {
				f := ctx.flip()
				return f.evalAttr(ctx.other, e.name, ex)
			}
		}
		return Undef()
	}
}

func (e selectExpr) eval(ctx *evalCtx) Value {
	base := e.base.eval(ctx)
	switch base.Type() {
	case UndefinedType:
		return Undef()
	case ErrorType:
		return base
	case AdType:
		ad, _ := base.AdVal()
		if ex, ok := ad.Lookup(e.name); ok {
			s := ctx.sub(ad)
			return s.evalAttr(ad, e.name, ex)
		}
		return Undef()
	default:
		return Erroneous("selection .%s applied to %s", e.name, base.Type())
	}
}

func (e indexExpr) eval(ctx *evalCtx) Value {
	base := e.base.eval(ctx)
	idx := e.index.eval(ctx)
	if base.IsError() {
		return base
	}
	if idx.IsError() {
		return idx
	}
	if base.IsUndefined() || idx.IsUndefined() {
		return Undef()
	}
	switch base.Type() {
	case ListType:
		list, _ := base.ListVal()
		i, ok := idx.IntVal()
		if !ok {
			return Erroneous("list subscript must be an integer, got %s", idx.Type())
		}
		if i < 0 || i >= int64(len(list)) {
			return Erroneous("list subscript %d out of range [0,%d)", i, len(list))
		}
		return list[i]
	case AdType:
		ad, _ := base.AdVal()
		name, ok := idx.StringVal()
		if !ok {
			return Erroneous("classad subscript must be a string, got %s", idx.Type())
		}
		if ex, ok := ad.Lookup(name); ok {
			s := ctx.sub(ad)
			return s.evalAttr(ad, name, ex)
		}
		return Undef()
	case StringType:
		s, _ := base.StringVal()
		i, ok := idx.IntVal()
		if !ok {
			return Erroneous("string subscript must be an integer, got %s", idx.Type())
		}
		if i < 0 || i >= int64(len(s)) {
			return Erroneous("string subscript %d out of range [0,%d)", i, len(s))
		}
		return Str(string(s[i]))
	default:
		return Erroneous("subscript applied to %s", base.Type())
	}
}

func (e unaryExpr) eval(ctx *evalCtx) Value {
	v := e.arg.eval(ctx)
	switch e.op {
	case OpNot:
		switch b := toBool(v); b.Type() {
		case BooleanType:
			return Bool(!b.IsTrue())
		default:
			return b // undefined or error
		}
	case OpNeg:
		switch v.Type() {
		case UndefinedType, ErrorType:
			return v
		case IntegerType:
			i, _ := v.IntVal()
			return Int(-i)
		case RealType:
			r, _ := v.RealVal()
			return Real(-r)
		case BooleanType:
			// Booleans coerce to integers in arithmetic, as the
			// paper's Figure 1 Rank (member(...)*10 + member(...))
			// requires.
			if v.IsTrue() {
				return Int(-1)
			}
			return Int(0)
		default:
			return Erroneous("unary - applied to %s", v.Type())
		}
	case OpPlus:
		switch v.Type() {
		case UndefinedType, ErrorType, IntegerType, RealType:
			return v
		case BooleanType:
			if v.IsTrue() {
				return Int(1)
			}
			return Int(0)
		default:
			return Erroneous("unary + applied to %s", v.Type())
		}
	}
	return Erroneous("bad unary operator")
}

func (e binaryExpr) eval(ctx *evalCtx) Value {
	switch e.op {
	case OpAnd:
		return evalAnd(ctx, e.l, e.r)
	case OpOr:
		return evalOr(ctx, e.l, e.r)
	case OpIs:
		return Bool(e.l.eval(ctx).Identical(e.r.eval(ctx)))
	case OpIsnt:
		return Bool(!e.l.eval(ctx).Identical(e.r.eval(ctx)))
	}
	l := e.l.eval(ctx)
	r := e.r.eval(ctx)
	switch e.op {
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		return evalArith(e.op, l, r)
	case OpLt, OpLe, OpGt, OpGe, OpEq, OpNe:
		return evalCompare(e.op, l, r)
	}
	return Erroneous("bad binary operator")
}

func (e condExpr) eval(ctx *evalCtx) Value {
	c := toBool(e.cond.eval(ctx))
	switch c.Type() {
	case BooleanType:
		if c.IsTrue() {
			return e.then.eval(ctx)
		}
		return e.els.eval(ctx)
	default:
		return c // undefined or error propagates; neither arm runs
	}
}

func (e callExpr) eval(ctx *evalCtx) Value {
	fn, ok := builtins[Fold(e.name)]
	if !ok {
		return Erroneous("call to unknown function %q", e.name)
	}
	return fn(ctx, e.args)
}

func (e listExpr) eval(ctx *evalCtx) Value {
	out := make([]Value, len(e.elems))
	for i, el := range e.elems {
		out[i] = el.eval(ctx)
	}
	return ListOf(out...)
}

func (e adExpr) eval(ctx *evalCtx) Value { return AdValue(e.ad) }

// ---- operator semantics ----

// toBool coerces a value to the three-valued Boolean domain. Booleans
// pass through; numbers coerce (non-zero is true), matching the
// deployed Condor system in which WantCheckpoint = 1 (Figure 2) acts
// as a Boolean; undefined and error pass through; anything else is an
// error.
func toBool(v Value) Value {
	switch v.Type() {
	case BooleanType, UndefinedType, ErrorType:
		return v
	case IntegerType, RealType:
		n, _ := v.NumberVal()
		return Bool(n != 0)
	default:
		return Erroneous("%s used in Boolean context", v.Type())
	}
}

// evalAnd implements the non-strict conjunction of paper §3.1:
// false dominates (false && undefined == false, false && error ==
// false), then error, then undefined.
func evalAnd(ctx *evalCtx, le, re Expr) Value {
	l := toBool(le.eval(ctx))
	if l.Type() == BooleanType && !l.IsTrue() {
		return Bool(false) // short-circuit: right side never runs
	}
	r := toBool(re.eval(ctx))
	switch {
	case r.Type() == BooleanType && !r.IsTrue():
		return Bool(false)
	case l.IsError():
		return l
	case r.IsError():
		return r
	case l.IsUndefined() || r.IsUndefined():
		return Undef()
	default:
		return Bool(true)
	}
}

// evalOr implements the non-strict disjunction: true dominates
// ("Mips >= 10 || Kflops >= 1000 evaluates to true whenever either
// attribute exists and satisfies the bound", paper §3.1).
func evalOr(ctx *evalCtx, le, re Expr) Value {
	l := toBool(le.eval(ctx))
	if l.IsTrue() {
		return Bool(true) // short-circuit
	}
	r := toBool(re.eval(ctx))
	switch {
	case r.IsTrue():
		return Bool(true)
	case l.IsError():
		return l
	case r.IsError():
		return r
	case l.IsUndefined() || r.IsUndefined():
		return Undef()
	case l.Type() != BooleanType:
		return l // error from coercion
	case r.Type() != BooleanType:
		return r
	default:
		return Bool(false)
	}
}

// numOperand classifies an arithmetic operand: booleans coerce to
// integers, integers stay integers, reals stay reals.
func numOperand(v Value) (f float64, isInt bool, out Value, ok bool) {
	switch v.Type() {
	case UndefinedType, ErrorType:
		return 0, false, v, false
	case BooleanType:
		if v.IsTrue() {
			return 1, true, Value{}, true
		}
		return 0, true, Value{}, true
	case IntegerType:
		return v.num, true, Value{}, true
	case RealType:
		return v.num, false, Value{}, true
	default:
		return 0, false, Erroneous("%s used in arithmetic", v.Type()), false
	}
}

// evalArith implements + - * / % with strict undefined/error
// propagation (error dominates undefined) and integer/real promotion.
// Integer division truncates; division and modulus by zero are errors.
func evalArith(op Op, l, r Value) Value {
	lf, li, lv, lok := numOperand(l)
	rf, ri, rv, rok := numOperand(r)
	if !lok || !rok {
		// Error dominates undefined regardless of operand order.
		if lv.IsError() {
			return lv
		}
		if rv.IsError() {
			return rv
		}
		if lv.IsUndefined() || rv.IsUndefined() {
			return Undef()
		}
		if !lok {
			return lv
		}
		return rv
	}
	bothInt := li && ri
	switch op {
	case OpAdd:
		if bothInt {
			return Int(int64(lf) + int64(rf))
		}
		return Real(lf + rf)
	case OpSub:
		if bothInt {
			return Int(int64(lf) - int64(rf))
		}
		return Real(lf - rf)
	case OpMul:
		if bothInt {
			return Int(int64(lf) * int64(rf))
		}
		return Real(lf * rf)
	case OpDiv:
		if bothInt {
			if int64(rf) == 0 {
				return Erroneous("integer division by zero")
			}
			return Int(int64(lf) / int64(rf))
		}
		if rf == 0 {
			return Erroneous("division by zero")
		}
		return Real(lf / rf)
	case OpMod:
		if bothInt {
			if int64(rf) == 0 {
				return Erroneous("modulus by zero")
			}
			return Int(int64(lf) % int64(rf))
		}
		if rf == 0 {
			return Erroneous("modulus by zero")
		}
		return Real(math.Mod(lf, rf))
	}
	return Erroneous("bad arithmetic operator")
}

// evalCompare implements the strict comparison operators of §3.1:
// "comparison operators are strict, so other.Memory == 32 evaluates to
// undefined if the target classad has no Memory attribute". String
// comparison is case-insensitive (the is operator provides the
// case-sensitive form). Comparing incompatible types is an error.
func evalCompare(op Op, l, r Value) Value {
	if l.IsError() {
		return l
	}
	if r.IsError() {
		return r
	}
	if l.IsUndefined() || r.IsUndefined() {
		return Undef()
	}
	// String-string comparison.
	if ls, ok := l.StringVal(); ok {
		rs, ok := r.StringVal()
		if !ok {
			return Erroneous("comparison of string with %s", r.Type())
		}
		c := strings.Compare(strings.ToLower(ls), strings.ToLower(rs))
		return cmpResult(op, c)
	}
	if _, ok := r.StringVal(); ok {
		return Erroneous("comparison of %s with string", l.Type())
	}
	// Boolean equality (relational order on booleans is an error).
	if l.Type() == BooleanType && r.Type() == BooleanType {
		switch op {
		case OpEq:
			return Bool(l.IsTrue() == r.IsTrue())
		case OpNe:
			return Bool(l.IsTrue() != r.IsTrue())
		default:
			return Erroneous("relational comparison of booleans")
		}
	}
	// Numeric comparison, with boolean-to-integer coercion on the
	// mixed side for symmetry with arithmetic.
	lf, _, lv, lok := numOperand(l)
	rf, _, rv, rok := numOperand(r)
	if !lok {
		return lv
	}
	if !rok {
		return rv
	}
	switch {
	case lf < rf:
		return cmpResult(op, -1)
	case lf > rf:
		return cmpResult(op, 1)
	default:
		return cmpResult(op, 0)
	}
}

func cmpResult(op Op, c int) Value {
	switch op {
	case OpLt:
		return Bool(c < 0)
	case OpLe:
		return Bool(c <= 0)
	case OpGt:
		return Bool(c > 0)
	case OpGe:
		return Bool(c >= 0)
	case OpEq:
		return Bool(c == 0)
	case OpNe:
		return Bool(c != 0)
	}
	return Erroneous("bad comparison operator")
}
