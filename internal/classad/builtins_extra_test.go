package classad

import "testing"

func TestDayTime(t *testing.T) {
	// 2026-07-06 10:01:47 UTC = epoch 1782122507; midnight offset
	// computed modulo 86400.
	env := FixedEnv(36107+20000*86400, 1) // arbitrary day, 10:01:47 into it
	v := EvalExprEnv(MustParseExpr("dayTime()"), nil, env)
	if n, _ := v.IntVal(); n != 36107 {
		t.Errorf("dayTime() = %v, want 36107", v)
	}
	// Midnight exactly.
	env = FixedEnv(86400*3, 1)
	if v := EvalExprEnv(MustParseExpr("dayTime()"), nil, env); !v.Identical(Int(0)) {
		t.Errorf("midnight dayTime() = %v", v)
	}
	if v := evalStr(t, "dayTime(1)", nil); !v.IsError() {
		t.Errorf("arity: %v", v)
	}
}

func TestDayTimeDrivesFigure1Policy(t *testing.T) {
	// A live DayTime makes the Figure 1 night clause time-dependent:
	// the same stranger job matches at 22:00 and not at 10:00.
	machine := Figure1()
	machine.Set("DayTime", MustParseExpr("dayTime()"))
	job := NewAd()
	job.SetString("Owner", "stranger")
	night := FixedEnv(22*3600, 1)
	day := FixedEnv(10*3600, 1)
	if !EvalConstraint(machine, job, night) {
		t.Error("stranger should match at night")
	}
	if EvalConstraint(machine, job, day) {
		t.Error("stranger should not match during the day")
	}
}

func TestInterval(t *testing.T) {
	cases := map[string]string{
		"interval(0)":      "00:00:00",
		"interval(59)":     "00:00:59",
		"interval(3661)":   "01:01:01",
		"interval(86400)":  "1+00:00:00",
		"interval(93784)":  "1+02:03:04",
		"interval(-3600)":  "-01:00:00",
		"interval(172800)": "2+00:00:00",
	}
	for src, want := range cases {
		v := evalStr(t, src, nil)
		if s, _ := v.StringVal(); s != want {
			t.Errorf("%s = %v, want %q", src, v, want)
		}
	}
	if v := evalStr(t, `interval("x")`, nil); !v.IsError() {
		t.Errorf("interval of string = %v", v)
	}
	if v := evalStr(t, "interval(Missing)", nil); !v.IsUndefined() {
		t.Errorf("interval of undefined = %v", v)
	}
}

func TestUnparse(t *testing.T) {
	ad := MustParse(`[
		Rank = other.Memory * 2;
		Show = unparse(Rank);
		ShowMissing = unparse(NotThere);
		ShowLit = unparse(1 + 2);
	]`)
	if s, _ := ad.Eval("Show").StringVal(); s != "other.Memory * 2" {
		t.Errorf("unparse(Rank) = %q", s)
	}
	if v := ad.Eval("ShowMissing"); !v.IsUndefined() {
		t.Errorf("unparse of missing attribute = %v", v)
	}
	if s, _ := ad.Eval("ShowLit").StringVal(); s != "1 + 2" {
		t.Errorf("unparse(1 + 2) = %q", s)
	}
	// The referenced expression is NOT evaluated: unparsing an
	// attribute whose evaluation would error is still fine.
	ad2 := MustParse(`[ Boom = 1/0; S = unparse(Boom) ]`)
	if s, _ := ad2.Eval("S").StringVal(); s != "1 / 0" {
		t.Errorf("unparse(Boom) = %q", s)
	}
}
