package classad

// This file implements the pairwise matching primitive of paper §3.2:
// "a matchmaking algorithm that considers a pair of ads to be
// incompatible unless their Constraint expressions both evaluate to
// true. The Rank attributes are then used to choose among compatible
// matches." The advertising protocol fixes the attribute names; they
// are exported here so every component agrees on them.

// Attribute names given meaning by the advertising protocol (paper §3.2
// and §4).
const (
	AttrConstraint = "Constraint"
	// AttrRequirements is the alternative spelling used by later
	// Condor releases; both are honoured, Constraint winning if both
	// are present.
	AttrRequirements = "Requirements"
	AttrRank         = "Rank"
	AttrType         = "Type"
	AttrName         = "Name"
	AttrOwner        = "Owner"
	AttrContact      = "Contact"
	AttrTicket       = "AuthorizationTicket"
	// AttrTraceID carries a request's causal trace identifier through
	// the collector: minted at submission, it rides in the job ad so
	// the negotiation that matches the ad — possibly many cycles later,
	// possibly under a failed-over negotiator — can stamp it into the
	// MATCH envelopes it sends (obs spans).
	AttrTraceID = "TraceId"
	// AttrTraceSpan is the span ID of the submission that minted the
	// trace, carried alongside AttrTraceID so spans recorded against
	// the stored ad parent correctly.
	AttrTraceSpan = "TraceSpan"
)

// constraintExpr returns the ad's compatibility expression under
// either accepted spelling. An ad with no constraint accepts
// everything (the expression defaults to true), which is what deployed
// pools do for ads advertising unconditional service.
func constraintExpr(a *Ad) (Expr, bool) {
	if e, ok := a.Lookup(AttrConstraint); ok {
		return e, true
	}
	if e, ok := a.Lookup(AttrRequirements); ok {
		return e, true
	}
	return nil, false
}

// EvalConstraint evaluates a's constraint against other. A missing
// constraint is satisfied; anything but true — including undefined,
// which the matchmaking algorithm "effectively treats as false"
// (paper §3.1) — is not.
func EvalConstraint(a, other *Ad, env *Env) bool {
	e, ok := constraintExpr(a)
	if !ok {
		return true
	}
	ctx := newCtx(a, other, env)
	v := ctx.evalAttr(a, AttrConstraint, e)
	return v.IsTrue()
}

// EvalRank evaluates a's Rank against other, applying the paper's
// rule that non-numeric values count as zero.
func EvalRank(a, other *Ad, env *Env) float64 {
	e, ok := a.Lookup(AttrRank)
	if !ok {
		return 0
	}
	ctx := newCtx(a, other, env)
	return ctx.evalAttr(a, AttrRank, e).RankVal()
}

// MatchResult reports the outcome of testing a pair of ads.
type MatchResult struct {
	// Matched is true iff both constraints evaluated to true.
	Matched bool
	// LeftOK and RightOK report each side's constraint individually,
	// which the analyzer uses to explain failures.
	LeftOK, RightOK bool
	// LeftRank is the left ad's Rank of the right ad, and vice
	// versa. Ranks are evaluated even for failed matches so tools
	// can display them.
	LeftRank, RightRank float64
}

// Match tests whether left and right are compatible: the symmetric
// two-way match of paper §3.2. Each side's Constraint is evaluated
// with self bound to that side and other bound to the peer.
func Match(left, right *Ad) MatchResult { return MatchEnv(left, right, nil) }

// MatchEnv is Match with an explicit environment.
func MatchEnv(left, right *Ad, env *Env) MatchResult {
	r := MatchResult{
		LeftOK:    EvalConstraint(left, right, env),
		RightOK:   EvalConstraint(right, left, env),
		LeftRank:  EvalRank(left, right, env),
		RightRank: EvalRank(right, left, env),
	}
	r.Matched = r.LeftOK && r.RightOK
	return r
}

// ConstraintOf exposes the ad's constraint expression (either
// spelling) for tools such as the match analyzer.
func ConstraintOf(a *Ad) (Expr, bool) { return constraintExpr(a) }

// EvalExprAgainst evaluates an arbitrary expression with self bound to
// self and other bound to other — the environment a Constraint
// sub-expression sees during matching. The analyzer uses it to test
// individual conjuncts of a constraint against candidate ads.
func EvalExprAgainst(e Expr, self, other *Ad, env *Env) Value {
	if self == nil {
		self = NewAd()
	}
	ctx := newCtx(self, other, env)
	return e.eval(ctx)
}

// SplitConjuncts flattens a tree of && operators into its top-level
// conjuncts, in source order. Non-conjunction expressions return a
// single-element slice. The match analyzer tests each conjunct
// separately to localize the clause that empties the pool.
func SplitConjuncts(e Expr) []Expr {
	if b, ok := e.(binaryExpr); ok && b.op == OpAnd {
		return append(SplitConjuncts(b.l), SplitConjuncts(b.r)...)
	}
	return []Expr{e}
}

// TraceOf reads the ad's causal trace ID (AttrTraceID, stamped at
// submission); "" for untraced ads.
func TraceOf(a *Ad) string {
	if s, ok := a.Eval(AttrTraceID).StringVal(); ok {
		return s
	}
	return ""
}

// TraceSpanOf reads the span ID spans about this ad should parent to
// (AttrTraceSpan, the submission span).
func TraceSpanOf(a *Ad) string {
	if s, ok := a.Eval(AttrTraceSpan).StringVal(); ok {
		return s
	}
	return ""
}

// MatchesQuery implements the one-way matching used by status and
// browse tools (paper §4: "One-way matching protocols are used to find
// all objects matching a given pattern"): only the query's constraint
// is consulted, with self bound to the query ad and other bound to the
// candidate.
func MatchesQuery(query, candidate *Ad, env *Env) bool {
	return EvalConstraint(query, candidate, env)
}
