package classad

import (
	"math"
	"testing"
)

// jobAd builds a minimal job ad for a given owner, for exercising the
// Figure 1 policy.
func jobAd(owner string) *Ad {
	ad := NewAd()
	ad.SetString("Type", "Job")
	ad.SetString("Owner", owner)
	ad.SetInt("Memory", 31)
	return ad
}

// withAttrs copies ad and overrides the given attributes with integer
// or real literal values.
func withAttrs(ad *Ad, attrs map[string]float64) *Ad {
	c := ad.Copy()
	for k, v := range attrs {
		if v == math.Trunc(v) {
			c.SetInt(k, int64(v))
		} else {
			c.SetReal(k, v)
		}
	}
	return c
}

// TestFigure1Parses confirms that the workstation ad of the paper's
// Figure 1 parses with all seventeen attributes intact (experiment E1).
func TestFigure1Parses(t *testing.T) {
	m := Figure1()
	if m.Len() != 18 {
		t.Errorf("Figure 1 ad has %d attributes, want 18: %v", m.Len(), m.Names())
	}
	checks := map[string]Value{
		"Type":         Str("Machine"),
		"Activity":     Str("Idle"),
		"KeyboardIdle": Int(1432),
		"Memory":       Int(64),
		"Mips":         Int(104),
		"Arch":         Str("INTEL"),
		"OpSys":        Str("SOLARIS251"),
		"KFlops":       Int(21893),
		"Name":         Str("leonardo.cs.wisc.edu"),
	}
	for name, want := range checks {
		if got := m.Eval(name); !got.Identical(want) {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	group := m.Eval("ResearchGroup")
	if l, ok := group.ListVal(); !ok || len(l) != 4 {
		t.Errorf("ResearchGroup = %v, want 4-element list", group)
	}
}

// TestFigure1PolicyMatrix is experiment E1: the owner policy of
// Figure 1, exactly as the paper's §4 prose describes it:
//
//	"the workstation is never willing to run applications submitted
//	by users rival and riffraff, it is always willing to run the jobs
//	of members of the research group, friends may use the resource
//	only if the workstation is idle (as determined by keyboard
//	activity and load average), and others may only use the
//	workstation at night."
func TestFigure1PolicyMatrix(t *testing.T) {
	base := Figure1()
	const (
		morning = 10 * 60 * 60 // 10:00, working hours
		night   = 22 * 60 * 60 // 22:00
		idleKbd = 30 * 60      // half an hour untouched
		busyKbd = 5            // touched seconds ago
	)
	cases := []struct {
		name    string
		owner   string
		daytime float64
		kbdIdle float64
		loadAvg float64
		want    bool
	}{
		// Untrusted users: never, even at night on an idle machine.
		{"untrusted-day", "rival", morning, idleKbd, 0.01, false},
		{"untrusted-night-idle", "riffraff", night, idleKbd, 0.01, false},
		// Research group: always, even on a busy machine mid-day.
		{"research-busy-day", "raman", morning, busyKbd, 2.5, true},
		{"research-night", "miron", night, idleKbd, 0.01, true},
		{"research-other-member", "jbasney", morning, busyKbd, 1.0, true},
		// Friends: only if keyboard idle > 15 min and load < 0.3.
		{"friend-idle", "tannenba", morning, idleKbd, 0.1, true},
		{"friend-keyboard-busy", "tannenba", morning, busyKbd, 0.1, false},
		{"friend-loaded", "wright", morning, idleKbd, 0.5, false},
		{"friend-night-busy", "wright", night, busyKbd, 0.1, false},
		// Others: only at night (before 08:00 or after 18:00),
		// regardless of idleness.
		{"other-day-idle", "alice", morning, idleKbd, 0.01, false},
		{"other-night-busy", "alice", night, busyKbd, 3.0, true},
		{"other-early-morning", "bob", 6 * 60 * 60, busyKbd, 1.0, true},
		{"other-exactly-8am", "bob", 8 * 60 * 60, idleKbd, 0.01, false},
		{"other-exactly-6pm", "bob", 18 * 60 * 60, idleKbd, 0.01, false},
		{"other-just-past-6pm", "bob", 18*60*60 + 1, busyKbd, 9.9, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			machine := withAttrs(base, map[string]float64{
				"DayTime":      c.daytime,
				"KeyboardIdle": c.kbdIdle,
				"LoadAvg":      c.loadAvg,
			})
			got := EvalConstraint(machine, jobAd(c.owner), nil)
			if got != c.want {
				t.Errorf("owner=%s daytime=%v kbd=%v load=%v: constraint=%v, want %v",
					c.owner, c.daytime, c.kbdIdle, c.loadAvg, got, c.want)
			}
		})
	}
}

// TestFigure1RankOrdering verifies the paper's §4 claim that "research
// jobs have higher priority than friends' jobs, which in turn have
// higher priority than other jobs".
func TestFigure1RankOrdering(t *testing.T) {
	m := Figure1()
	research := EvalRank(m, jobAd("raman"), nil)
	friend := EvalRank(m, jobAd("tannenba"), nil)
	other := EvalRank(m, jobAd("alice"), nil)
	if research != 10 {
		t.Errorf("research rank = %v, want 10", research)
	}
	if friend != 1 {
		t.Errorf("friend rank = %v, want 1", friend)
	}
	if other != 0 {
		t.Errorf("other rank = %v, want 0", other)
	}
	if !(research > friend && friend > other) {
		t.Errorf("rank ordering violated: %v, %v, %v", research, friend, other)
	}
}

// TestFigure2Match is experiment E2: the job ad of Figure 2 matches
// the workstation of Figure 1, in both directions, with the ranks the
// expressions imply.
func TestFigure2Match(t *testing.T) {
	machine := Figure1()
	job := Figure2()
	res := Match(job, machine)
	if !res.Matched {
		t.Fatalf("Figures 1 and 2 must match: left=%v right=%v", res.LeftOK, res.RightOK)
	}
	// Job's rank of the machine: KFlops/1E3 + other.Memory/32 =
	// 21893/1000.0 + 64/32 = 21.893 + 2 = 23.893.
	if math.Abs(res.LeftRank-23.893) > 1e-9 {
		t.Errorf("job's rank of machine = %v, want 23.893", res.LeftRank)
	}
	// Machine's rank of the job: raman is in the research group,
	// not in Friends: 1*10 + 0 = 10.
	if res.RightRank != 10 {
		t.Errorf("machine's rank of job = %v, want 10", res.RightRank)
	}
}

// TestFigure2ConstraintClauses knocks out each clause of the job's
// constraint in turn and confirms the match fails.
func TestFigure2ConstraintClauses(t *testing.T) {
	job := Figure2()
	breakers := []struct {
		name string
		set  func(m *Ad)
	}{
		{"wrong-type", func(m *Ad) { m.SetString("Type", "Printer") }},
		{"wrong-arch", func(m *Ad) { m.SetString("Arch", "SPARC") }},
		{"wrong-opsys", func(m *Ad) { m.SetString("OpSys", "LINUX") }},
		{"small-disk", func(m *Ad) { m.SetInt("Disk", 100) }},
		{"small-memory", func(m *Ad) { m.SetInt("Memory", 16) }},
		{"missing-memory", func(m *Ad) { m.Delete("Memory") }},
	}
	for _, b := range breakers {
		t.Run(b.name, func(t *testing.T) {
			m := Figure1()
			b.set(m)
			if EvalConstraint(job, m, nil) {
				t.Errorf("job constraint satisfied despite %s", b.name)
			}
		})
	}
}

// TestFigure2MissingMemoryIsUndefinedNotError confirms that deleting
// the machine's Memory makes the job constraint undefined — which the
// matchmaker treats as no-match — rather than an error (paper §3.1).
func TestFigure2MissingMemoryIsUndefinedNotError(t *testing.T) {
	m := Figure1()
	m.Delete("Memory")
	job := Figure2()
	v := job.EvalAgainst(AttrConstraint, m, nil)
	if !v.IsUndefined() {
		t.Errorf("constraint with missing Memory = %v, want undefined", v)
	}
}

// TestMatchSymmetry: Match(a, b) and Match(b, a) agree.
func TestMatchSymmetry(t *testing.T) {
	m, j := Figure1(), Figure2()
	ab := Match(j, m)
	ba := Match(m, j)
	if ab.Matched != ba.Matched {
		t.Errorf("match not symmetric: %v vs %v", ab.Matched, ba.Matched)
	}
	if ab.LeftRank != ba.RightRank || ab.RightRank != ba.LeftRank {
		t.Errorf("ranks not mirrored: %+v vs %+v", ab, ba)
	}
}

// TestUntrustedNeverMatchesFigure2Style: an untrusted owner submitting
// the Figure 2 job never matches, whatever the machine state.
func TestUntrustedNeverMatches(t *testing.T) {
	job := Figure2()
	job.SetString("Owner", "rival")
	for _, daytime := range []int64{3 * 3600, 12 * 3600, 23 * 3600} {
		m := Figure1()
		m.SetInt("DayTime", daytime)
		if Match(job, m).Matched {
			t.Errorf("untrusted owner matched at daytime %d", daytime)
		}
	}
}

// TestMissingConstraintAcceptsAll: an ad without Constraint matches
// anything its counterpart accepts.
func TestMissingConstraintAcceptsAll(t *testing.T) {
	a := MustParse(`[ Name = "anything" ]`)
	b := MustParse(`[ Constraint = true ]`)
	if !Match(a, b).Matched {
		t.Error("constraint-free ads should match")
	}
}

// TestRequirementsSpelling: the later Condor spelling Requirements is
// honoured as the constraint.
func TestRequirementsSpelling(t *testing.T) {
	a := MustParse(`[ Requirements = other.X == 1 ]`)
	yes := MustParse(`[ X = 1 ]`)
	no := MustParse(`[ X = 2 ]`)
	if !Match(a, yes).Matched {
		t.Error("Requirements not honoured")
	}
	if Match(a, no).Matched {
		t.Error("Requirements ignored")
	}
	// Constraint wins when both are present.
	both := MustParse(`[ Requirements = false; Constraint = true ]`)
	if !Match(both, yes).Matched {
		t.Error("Constraint should take precedence over Requirements")
	}
}

// TestMatchesQuery exercises the one-way protocol used by status
// tools (paper §4).
func TestMatchesQuery(t *testing.T) {
	query := MustParse(`[ Constraint = other.Arch == "INTEL" && other.Memory >= 32 ]`)
	if !MatchesQuery(query, Figure1(), nil) {
		t.Error("query should match Figure 1 machine")
	}
	small := Figure1()
	small.SetInt("Memory", 16)
	if MatchesQuery(query, small, nil) {
		t.Error("query should reject small machine")
	}
	// One-way: the candidate's own constraint is NOT consulted.
	fussy := Figure1()
	fussy.Set(AttrConstraint, Lit(Bool(false)))
	if !MatchesQuery(query, fussy, nil) {
		t.Error("one-way query must ignore the candidate's constraint")
	}
}

// TestEvalRankAgainstNoCandidate: rank evaluation is total even
// without a candidate.
func TestEvalRankAgainstNoCandidate(t *testing.T) {
	m := Figure1()
	if r := EvalRank(m, nil, nil); r != 0 {
		t.Errorf("rank with nil candidate = %v, want 0 (undefined member -> undefined -> 0)", r)
	}
}
