package classad

import (
	"strings"
	"testing"
)

// TestAttrPos checks that parsed ads remember where each attribute was
// defined, 1-based, and that programmatic ads report none.
func TestAttrPos(t *testing.T) {
	ad := MustParse("[\n    Memory = 64;\n    OpSys  = \"SOLARIS251\";\n  Rank = 1\n]")
	cases := []struct {
		attr      string
		line, col int
	}{
		{"Memory", 2, 5},
		{"opsys", 3, 5}, // lookup folds case
		{"Rank", 4, 3},
	}
	for _, tc := range cases {
		p, ok := ad.AttrPos(tc.attr)
		if !ok {
			t.Errorf("AttrPos(%s): no position", tc.attr)
			continue
		}
		if p.Line != tc.line || p.Col != tc.col {
			t.Errorf("AttrPos(%s) = %d:%d, want %d:%d", tc.attr, p.Line, p.Col, tc.line, tc.col)
		}
	}
	if _, ok := ad.AttrPos("Missing"); ok {
		t.Error("AttrPos(Missing) ok = true")
	}

	prog := NewAd()
	prog.SetInt("Memory", 64)
	if _, ok := prog.AttrPos("Memory"); ok {
		t.Error("programmatic ad reports a position")
	}
}

// TestAttrPosSurvivesCopyAndDelete checks position bookkeeping across
// Copy and Delete.
func TestAttrPosSurvivesCopyAndDelete(t *testing.T) {
	ad := MustParse("[ A = 1; B = 2 ]")
	c := ad.Copy()
	if p, ok := c.AttrPos("B"); !ok || p.Line != 1 {
		t.Errorf("copy lost position: %v %v", p, ok)
	}
	c.Delete("B")
	if _, ok := c.AttrPos("B"); ok {
		t.Error("deleted attribute still has a position")
	}
	// The original is unaffected.
	if _, ok := ad.AttrPos("B"); !ok {
		t.Error("original lost position after copy mutation")
	}
}

// TestAttrPosBareAd checks the unbracketed form tracks positions too.
func TestAttrPosBareAd(t *testing.T) {
	ad := MustParse("Memory = 64\nOpSys = \"LINUX\"\n")
	if p, ok := ad.AttrPos("OpSys"); !ok || p.Line != 2 || p.Col != 1 {
		t.Errorf("AttrPos(OpSys) = %v %v, want 2:1", p, ok)
	}
}

// TestSyntaxErrorCarriesColumn checks the new line:col locator while
// preserving the historical message as a suffix.
func TestSyntaxErrorCarriesColumn(t *testing.T) {
	_, err := Parse("[\n  Memory = ;\n]")
	if err == nil {
		t.Fatal("want error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T, want *SyntaxError", err)
	}
	if se.Line != 2 || se.Col != 12 {
		t.Errorf("position = %d:%d, want 2:12", se.Line, se.Col)
	}
	msg := se.Error()
	if !strings.HasPrefix(msg, "2:12: ") {
		t.Errorf("message %q lacks line:col prefix", msg)
	}
	if !strings.Contains(msg, "classad: line 2: ") {
		t.Errorf("message %q lost the historical format", msg)
	}
}

// TestColumnAfterComments checks that block comments spanning lines
// keep the column bookkeeping honest.
func TestColumnAfterComments(t *testing.T) {
	ad := MustParse("[ /* multi\nline\ncomment */ Memory = 64 ]")
	if p, ok := ad.AttrPos("Memory"); !ok || p.Line != 3 || p.Col != 12 {
		t.Errorf("AttrPos(Memory) = %v %v, want 3:12", p, ok)
	}
}
