package classad

import "testing"

// TestArityTableInSync pins the arity table to the builtin function
// table: every builtin has an arity entry and vice versa, so the
// static analyzer can never disagree with the evaluator about which
// functions exist.
func TestArityTableInSync(t *testing.T) {
	for _, name := range BuiltinNames() {
		if _, _, ok := BuiltinArity(name); !ok {
			t.Errorf("builtin %q has no arity entry", name)
		}
		if !IsBuiltin(name) {
			t.Errorf("IsBuiltin(%q) = false for a listed builtin", name)
		}
	}
	for name := range builtinArity {
		if _, ok := builtins[name]; !ok {
			t.Errorf("arity entry %q is not a builtin", name)
		}
	}
}

// TestArityAgreesWithEvaluator spot-checks that calls inside the
// declared arity range do not produce the evaluator's wrong-argument-
// count error, and calls outside it do (for the builtins that enforce
// arity at all).
func TestArityAgreesWithEvaluator(t *testing.T) {
	cases := []struct {
		src     string
		wantErr bool
	}{
		{`member(1, {1, 2})`, false},
		{`member(1)`, true},
		{`substr("abc", 1)`, false},
		{`substr("abc", 1, 2)`, false},
		{`substr("abc", 1, 2, 3)`, true},
		{`time()`, false},
		{`time(1)`, true},
		{`ifThenElse(true, 1, 2)`, false},
		{`ifThenElse(true, 1)`, true},
	}
	ad := NewAd()
	for _, tc := range cases {
		e := MustParseExpr(tc.src)
		v := EvalExprAgainst(e, ad, nil, nil)
		if got := v.IsError(); got != tc.wantErr {
			t.Errorf("%s: IsError = %v, want %v (value %s)", tc.src, got, tc.wantErr, v)
		}
	}
}

// TestIsBuiltinFoldsCase mirrors the evaluator's case-insensitive
// function lookup.
func TestIsBuiltinFoldsCase(t *testing.T) {
	for _, name := range []string{"Member", "MEMBER", "IfThenElse", "isUndefined"} {
		if !IsBuiltin(name) {
			t.Errorf("IsBuiltin(%q) = false", name)
		}
	}
	if IsBuiltin("frobnicate") {
		t.Error("IsBuiltin(frobnicate) = true")
	}
	if _, _, ok := BuiltinArity("frobnicate"); ok {
		t.Error("BuiltinArity(frobnicate) ok = true")
	}
}
