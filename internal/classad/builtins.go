package classad

import (
	"math"
	"regexp"
	"strconv"
	"strings"
)

// builtinFn implements one builtin function. Arguments arrive
// unevaluated so that functions such as ifThenElse and isUndefined can
// control evaluation themselves; most builtins evaluate eagerly via
// evalArgs.
type builtinFn func(ctx *evalCtx, args []Expr) Value

// builtins maps folded function names to implementations. The set
// covers the functions used by deployed Condor policy expressions of
// the paper's era — member() appears in Figure 1 — plus the string,
// numeric, type-test and list helpers needed by the examples and the
// matchmaker's own tooling.
var builtins map[string]builtinFn

func init() {
	builtins = map[string]builtinFn{
		"member":          fnMember,
		"identicalmember": fnIdenticalMember,
		"strcmp":          fnStrcmp,
		"stricmp":         fnStricmp,
		"toupper":         fnToUpper,
		"tolower":         fnToLower,
		"substr":          fnSubstr,
		"strcat":          fnStrcat,
		"size":            fnSize,
		"int":             fnInt,
		"real":            fnReal,
		"string":          fnString,
		"bool":            fnBool,
		"floor":           fnFloor,
		"ceiling":         fnCeiling,
		"ceil":            fnCeiling,
		"round":           fnRound,
		"abs":             fnAbs,
		"pow":             fnPow,
		"sqrt":            fnSqrt,
		"quantize":        fnQuantize,
		"min":             fnMin,
		"max":             fnMax,
		"sum":             fnSum,
		"avg":             fnAvg,
		"isundefined":     typeTest(UndefinedType),
		"iserror":         typeTest(ErrorType),
		"isstring":        typeTest(StringType),
		"isinteger":       typeTest(IntegerType),
		"isreal":          typeTest(RealType),
		"isboolean":       typeTest(BooleanType),
		"islist":          typeTest(ListType),
		"isclassad":       typeTest(AdType),
		"ifthenelse":      fnIfThenElse,
		"anycompare":      fnAnyCompare,
		"allcompare":      fnAllCompare,
		"regexp":          fnRegexp,
		"regexps":         fnRegexps,
		"splitlist":       fnSplitList,
		"join":            fnJoin,
		"random":          fnRandom,
		"time":            fnTime,
		"currenttime":     fnTime,
		"daytime":         fnDayTime,
		"interval":        fnInterval,
		"unparse":         fnUnparse,
	}
}

// BuiltinNames returns the sorted names of all builtin functions, for
// documentation and the analyzer's diagnostics.
func BuiltinNames() []string {
	out := make([]string, 0, len(builtins))
	for n := range builtins {
		out = append(out, n)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func evalArgs(ctx *evalCtx, args []Expr) []Value {
	out := make([]Value, len(args))
	for i, a := range args {
		out[i] = a.eval(ctx)
	}
	return out
}

// argErr builds the standard wrong-arity error.
func argErr(name string, want string, got int) Value {
	return Erroneous("%s() expects %s argument(s), got %d", name, want, got)
}

// propagate returns the dominant non-value among vs (error beats
// undefined) and ok=false, or ok=true if all vs are proper values.
func propagate(vs ...Value) (Value, bool) {
	undef := false
	for _, v := range vs {
		if v.IsError() {
			return v, false
		}
		if v.IsUndefined() {
			undef = true
		}
	}
	if undef {
		return Undef(), false
	}
	return Value{}, true
}

// fnMember implements member(item, list): true if item equals (under
// the == operator's case-insensitive string semantics) some element of
// list. Figure 1 of the paper uses it to test research-group and
// friend membership. Undefined items or lists propagate undefined.
func fnMember(ctx *evalCtx, args []Expr) Value {
	if len(args) != 2 {
		return argErr("member", "2", len(args))
	}
	vs := evalArgs(ctx, args)
	if bad, ok := propagate(vs...); !ok {
		return bad
	}
	item := vs[0]
	list, ok := vs[1].ListVal()
	if !ok {
		// Tolerate reversed argument order, seen in old policy
		// files: member(list, item).
		if l2, ok2 := item.ListVal(); ok2 {
			list, item = l2, vs[1]
		} else {
			return Erroneous("member() second argument must be a list, got %s", vs[1].Type())
		}
	}
	sawUndef := false
	for _, el := range list {
		eq := evalCompare(OpEq, item, el)
		if eq.IsTrue() {
			return Bool(true)
		}
		if eq.IsUndefined() {
			sawUndef = true
		}
	}
	if sawUndef {
		return Undef()
	}
	return Bool(false)
}

// fnIdenticalMember is member() under the case-sensitive `is`
// identity instead of ==.
func fnIdenticalMember(ctx *evalCtx, args []Expr) Value {
	if len(args) != 2 {
		return argErr("identicalMember", "2", len(args))
	}
	vs := evalArgs(ctx, args)
	if vs[0].IsError() {
		return vs[0]
	}
	if vs[1].IsError() {
		return vs[1]
	}
	list, ok := vs[1].ListVal()
	if !ok {
		if vs[1].IsUndefined() {
			return Undef()
		}
		return Erroneous("identicalMember() second argument must be a list, got %s", vs[1].Type())
	}
	for _, el := range list {
		if vs[0].Identical(el) {
			return Bool(true)
		}
	}
	return Bool(false)
}

func twoStrings(name string, ctx *evalCtx, args []Expr) (a, b string, bad Value, ok bool) {
	if len(args) != 2 {
		return "", "", argErr(name, "2", len(args)), false
	}
	vs := evalArgs(ctx, args)
	if v, allOK := propagate(vs...); !allOK {
		return "", "", v, false
	}
	a, okA := vs[0].StringVal()
	b, okB := vs[1].StringVal()
	if !okA || !okB {
		return "", "", Erroneous("%s() expects string arguments", name), false
	}
	return a, b, Value{}, true
}

// fnStrcmp implements strcmp(a, b): the C convention, negative / zero
// / positive, case-sensitive.
func fnStrcmp(ctx *evalCtx, args []Expr) Value {
	a, b, bad, ok := twoStrings("strcmp", ctx, args)
	if !ok {
		return bad
	}
	return Int(int64(strings.Compare(a, b)))
}

// fnStricmp is strcmp folded to lower case.
func fnStricmp(ctx *evalCtx, args []Expr) Value {
	a, b, bad, ok := twoStrings("stricmp", ctx, args)
	if !ok {
		return bad
	}
	return Int(int64(strings.Compare(strings.ToLower(a), strings.ToLower(b))))
}

func oneString(name string, ctx *evalCtx, args []Expr) (string, Value, bool) {
	if len(args) != 1 {
		return "", argErr(name, "1", len(args)), false
	}
	v := args[0].eval(ctx)
	if bad, ok := propagate(v); !ok {
		return "", bad, false
	}
	s, ok := v.StringVal()
	if !ok {
		return "", Erroneous("%s() expects a string argument, got %s", name, v.Type()), false
	}
	return s, Value{}, true
}

func fnToUpper(ctx *evalCtx, args []Expr) Value {
	s, bad, ok := oneString("toUpper", ctx, args)
	if !ok {
		return bad
	}
	return Str(strings.ToUpper(s))
}

func fnToLower(ctx *evalCtx, args []Expr) Value {
	s, bad, ok := oneString("toLower", ctx, args)
	if !ok {
		return bad
	}
	return Str(strings.ToLower(s))
}

// fnSubstr implements substr(s, offset [, length]). Negative offsets
// count from the end; results are clamped to the string, matching the
// tolerant semantics of the deployed implementation.
func fnSubstr(ctx *evalCtx, args []Expr) Value {
	if len(args) != 2 && len(args) != 3 {
		return argErr("substr", "2 or 3", len(args))
	}
	vs := evalArgs(ctx, args)
	if bad, ok := propagate(vs...); !ok {
		return bad
	}
	s, ok := vs[0].StringVal()
	if !ok {
		return Erroneous("substr() first argument must be a string, got %s", vs[0].Type())
	}
	off, ok := vs[1].IntVal()
	if !ok {
		return Erroneous("substr() offset must be an integer, got %s", vs[1].Type())
	}
	n := int64(len(s))
	if off < 0 {
		off += n
	}
	if off < 0 {
		off = 0
	}
	if off > n {
		off = n
	}
	length := n - off
	if len(vs) == 3 {
		l, ok := vs[2].IntVal()
		if !ok {
			return Erroneous("substr() length must be an integer, got %s", vs[2].Type())
		}
		if l < 0 {
			// Negative length: leave that many chars off the end.
			l = n - off + l
		}
		if l < 0 {
			l = 0
		}
		if l < length {
			length = l
		}
	}
	return Str(s[off : off+length])
}

// fnStrcat concatenates the string form of all its arguments.
func fnStrcat(ctx *evalCtx, args []Expr) Value {
	vs := evalArgs(ctx, args)
	if bad, ok := propagate(vs...); !ok {
		return bad
	}
	var b strings.Builder
	for _, v := range vs {
		if s, ok := v.StringVal(); ok {
			b.WriteString(s)
		} else {
			b.WriteString(v.String())
		}
	}
	return Str(b.String())
}

// fnSize returns the length of a string or list, or the number of
// attributes of a classad.
func fnSize(ctx *evalCtx, args []Expr) Value {
	if len(args) != 1 {
		return argErr("size", "1", len(args))
	}
	v := args[0].eval(ctx)
	switch v.Type() {
	case UndefinedType, ErrorType:
		return v
	case StringType:
		s, _ := v.StringVal()
		return Int(int64(len(s)))
	case ListType:
		l, _ := v.ListVal()
		return Int(int64(len(l)))
	case AdType:
		ad, _ := v.AdVal()
		return Int(int64(ad.Len()))
	default:
		return Erroneous("size() of %s", v.Type())
	}
}

// fnInt converts to integer: reals truncate, booleans map to 0/1,
// numeric strings parse; anything else is an error.
func fnInt(ctx *evalCtx, args []Expr) Value {
	if len(args) != 1 {
		return argErr("int", "1", len(args))
	}
	v := args[0].eval(ctx)
	switch v.Type() {
	case UndefinedType, ErrorType:
		return v
	case IntegerType:
		return v
	case RealType:
		r, _ := v.RealVal()
		if math.IsNaN(r) || math.IsInf(r, 0) {
			return Erroneous("int() of non-finite real")
		}
		return Int(int64(r))
	case BooleanType:
		if v.IsTrue() {
			return Int(1)
		}
		return Int(0)
	case StringType:
		s, _ := v.StringVal()
		if i, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64); err == nil {
			return Int(i)
		}
		if f, err := strconv.ParseFloat(strings.TrimSpace(s), 64); err == nil {
			return Int(int64(f))
		}
		return Erroneous("int() cannot parse %q", s)
	default:
		return Erroneous("int() of %s", v.Type())
	}
}

// fnReal converts to real; the string forms "INF", "-INF" and "NaN"
// are accepted (they are also how the unparser prints non-finite
// reals).
func fnReal(ctx *evalCtx, args []Expr) Value {
	if len(args) != 1 {
		return argErr("real", "1", len(args))
	}
	v := args[0].eval(ctx)
	switch v.Type() {
	case UndefinedType, ErrorType, RealType:
		return v
	case IntegerType:
		i, _ := v.IntVal()
		return Real(float64(i))
	case BooleanType:
		if v.IsTrue() {
			return Real(1)
		}
		return Real(0)
	case StringType:
		s := strings.TrimSpace(mustString(v))
		switch strings.ToUpper(s) {
		case "INF", "+INF", "INFINITY":
			return Real(math.Inf(1))
		case "-INF", "-INFINITY":
			return Real(math.Inf(-1))
		case "NAN":
			return Real(math.NaN())
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return Real(f)
		}
		return Erroneous("real() cannot parse %q", s)
	default:
		return Erroneous("real() of %s", v.Type())
	}
}

func mustString(v Value) string {
	s, _ := v.StringVal()
	return s
}

// fnString renders any value as its string form; strings pass through
// unquoted.
func fnString(ctx *evalCtx, args []Expr) Value {
	if len(args) != 1 {
		return argErr("string", "1", len(args))
	}
	v := args[0].eval(ctx)
	switch v.Type() {
	case UndefinedType, ErrorType:
		return v
	case StringType:
		return v
	default:
		return Str(v.String())
	}
}

// fnBool coerces to boolean with the same rules as the Boolean
// operators, plus "true"/"false" strings.
func fnBool(ctx *evalCtx, args []Expr) Value {
	if len(args) != 1 {
		return argErr("bool", "1", len(args))
	}
	v := args[0].eval(ctx)
	if s, ok := v.StringVal(); ok {
		switch strings.ToLower(strings.TrimSpace(s)) {
		case "true", "t", "1", "yes":
			return Bool(true)
		case "false", "f", "0", "no":
			return Bool(false)
		default:
			return Erroneous("bool() cannot parse %q", s)
		}
	}
	return toBool(v)
}

func realFn(name string, f func(float64) float64) builtinFn {
	return func(ctx *evalCtx, args []Expr) Value {
		if len(args) != 1 {
			return argErr(name, "1", len(args))
		}
		v := args[0].eval(ctx)
		switch v.Type() {
		case UndefinedType, ErrorType:
			return v
		}
		n, ok := v.NumberVal()
		if !ok {
			return Erroneous("%s() of %s", name, v.Type())
		}
		r := f(n)
		if r == math.Trunc(r) && !math.IsInf(r, 0) && math.Abs(r) < 1<<62 {
			return Int(int64(r))
		}
		return Real(r)
	}
}

var (
	fnFloor   = realFn("floor", math.Floor)
	fnCeiling = realFn("ceiling", math.Ceil)
	fnRound   = realFn("round", math.Round)
)

// fnAbs preserves the operand's numeric type.
func fnAbs(ctx *evalCtx, args []Expr) Value {
	if len(args) != 1 {
		return argErr("abs", "1", len(args))
	}
	v := args[0].eval(ctx)
	switch v.Type() {
	case UndefinedType, ErrorType:
		return v
	case IntegerType:
		i, _ := v.IntVal()
		if i < 0 {
			return Int(-i)
		}
		return v
	case RealType:
		r, _ := v.RealVal()
		return Real(math.Abs(r))
	default:
		return Erroneous("abs() of %s", v.Type())
	}
}

// fnPow raises base to exp. Integer base and non-negative integer
// exponent yield an integer when the result fits.
func fnPow(ctx *evalCtx, args []Expr) Value {
	if len(args) != 2 {
		return argErr("pow", "2", len(args))
	}
	vs := evalArgs(ctx, args)
	if bad, ok := propagate(vs...); !ok {
		return bad
	}
	b, okB := vs[0].NumberVal()
	e, okE := vs[1].NumberVal()
	if !okB || !okE {
		return Erroneous("pow() expects numeric arguments")
	}
	r := math.Pow(b, e)
	if vs[0].Type() == IntegerType && vs[1].Type() == IntegerType && e >= 0 &&
		r == math.Trunc(r) && math.Abs(r) < 1<<62 {
		return Int(int64(r))
	}
	return Real(r)
}

func fnSqrt(ctx *evalCtx, args []Expr) Value {
	if len(args) != 1 {
		return argErr("sqrt", "1", len(args))
	}
	v := args[0].eval(ctx)
	switch v.Type() {
	case UndefinedType, ErrorType:
		return v
	}
	n, ok := v.NumberVal()
	if !ok {
		return Erroneous("sqrt() of %s", v.Type())
	}
	if n < 0 {
		return Erroneous("sqrt() of negative number")
	}
	return Real(math.Sqrt(n))
}

// fnQuantize rounds value up to the next multiple of quantum, the
// convention used for memory and disk requests.
func fnQuantize(ctx *evalCtx, args []Expr) Value {
	if len(args) != 2 {
		return argErr("quantize", "2", len(args))
	}
	vs := evalArgs(ctx, args)
	if bad, ok := propagate(vs...); !ok {
		return bad
	}
	val, okV := vs[0].NumberVal()
	q, okQ := vs[1].NumberVal()
	if !okV || !okQ {
		return Erroneous("quantize() expects numeric arguments")
	}
	if q <= 0 {
		return Erroneous("quantize() quantum must be positive")
	}
	r := math.Ceil(val/q) * q
	if vs[0].Type() == IntegerType && vs[1].Type() == IntegerType {
		return Int(int64(r))
	}
	return Real(r)
}

// foldNumeric implements min/max/sum/avg over either a single list
// argument or multiple scalar arguments.
func foldNumeric(name string, ctx *evalCtx, args []Expr, combine func(acc, x float64) float64, finish func(acc float64, n int) Value) Value {
	vs := evalArgs(ctx, args)
	if len(vs) == 1 {
		if l, ok := vs[0].ListVal(); ok {
			vs = l
		}
	}
	if bad, ok := propagate(vs...); !ok {
		return bad
	}
	if len(vs) == 0 {
		return Undef()
	}
	allInt := true
	var acc float64
	for i, v := range vs {
		n, ok := v.NumberVal()
		if !ok {
			return Erroneous("%s() expects numeric values, got %s", name, v.Type())
		}
		if v.Type() != IntegerType {
			allInt = false
		}
		if i == 0 {
			acc = n
		} else {
			acc = combine(acc, n)
		}
	}
	out := finish(acc, len(vs))
	if allInt && out.Type() == RealType {
		if r, _ := out.RealVal(); r == math.Trunc(r) {
			// Keep integer typing for all-integer inputs when exact.
			if name != "avg" {
				return Int(int64(r))
			}
		}
	}
	return out
}

func fnMin(ctx *evalCtx, args []Expr) Value {
	return foldNumeric("min", ctx, args, math.Min, func(a float64, _ int) Value { return Real(a) })
}

func fnMax(ctx *evalCtx, args []Expr) Value {
	return foldNumeric("max", ctx, args, math.Max, func(a float64, _ int) Value { return Real(a) })
}

func fnSum(ctx *evalCtx, args []Expr) Value {
	return foldNumeric("sum", ctx, args, func(a, x float64) float64 { return a + x },
		func(a float64, _ int) Value { return Real(a) })
}

func fnAvg(ctx *evalCtx, args []Expr) Value {
	return foldNumeric("avg", ctx, args, func(a, x float64) float64 { return a + x },
		func(a float64, n int) Value { return Real(a / float64(n)) })
}

// typeTest builds the isX() predicates. They are non-strict: that is
// their whole point.
func typeTest(t ValueType) builtinFn {
	return func(ctx *evalCtx, args []Expr) Value {
		if len(args) != 1 {
			return argErr("is"+t.String(), "1", len(args))
		}
		return Bool(args[0].eval(ctx).Type() == t)
	}
}

// fnIfThenElse is the functional form of ?:, evaluating only the
// selected branch.
func fnIfThenElse(ctx *evalCtx, args []Expr) Value {
	if len(args) != 3 {
		return argErr("ifThenElse", "3", len(args))
	}
	c := toBool(args[0].eval(ctx))
	switch c.Type() {
	case BooleanType:
		if c.IsTrue() {
			return args[1].eval(ctx)
		}
		return args[2].eval(ctx)
	default:
		return c
	}
}

var compareOps = map[string]Op{
	"<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe, "==": OpEq, "!=": OpNe,
	"is": OpIs, "isnt": OpIsnt,
}

// fnAnyCompare implements anyCompare(op, list, value): true if the
// comparison holds between any list element and value.
func fnAnyCompare(ctx *evalCtx, args []Expr) Value {
	return compareFold("anyCompare", ctx, args, false)
}

// fnAllCompare is the universal counterpart of anyCompare.
func fnAllCompare(ctx *evalCtx, args []Expr) Value {
	return compareFold("allCompare", ctx, args, true)
}

func compareFold(name string, ctx *evalCtx, args []Expr, all bool) Value {
	if len(args) != 3 {
		return argErr(name, "3", len(args))
	}
	vs := evalArgs(ctx, args)
	if bad, ok := propagate(vs...); !ok {
		return bad
	}
	opStr, ok := vs[0].StringVal()
	if !ok {
		return Erroneous("%s() first argument must be a comparison operator string", name)
	}
	op, ok := compareOps[strings.ToLower(strings.TrimSpace(opStr))]
	if !ok {
		return Erroneous("%s(): unknown comparison operator %q", name, opStr)
	}
	list, ok := vs[1].ListVal()
	if !ok {
		return Erroneous("%s() second argument must be a list", name)
	}
	for _, el := range list {
		var r Value
		switch op {
		case OpIs:
			r = Bool(el.Identical(vs[2]))
		case OpIsnt:
			r = Bool(!el.Identical(vs[2]))
		default:
			r = evalCompare(op, el, vs[2])
		}
		if all {
			if !r.IsTrue() {
				return Bool(false)
			}
		} else if r.IsTrue() {
			return Bool(true)
		}
	}
	return Bool(all)
}

// fnRegexp implements regexp(pattern, target [, options]): a match
// test using Go's RE2 syntax; option "i" folds case.
func fnRegexp(ctx *evalCtx, args []Expr) Value {
	if len(args) != 2 && len(args) != 3 {
		return argErr("regexp", "2 or 3", len(args))
	}
	vs := evalArgs(ctx, args)
	if bad, ok := propagate(vs...); !ok {
		return bad
	}
	pat, okP := vs[0].StringVal()
	tgt, okT := vs[1].StringVal()
	if !okP || !okT {
		return Erroneous("regexp() expects string arguments")
	}
	if len(vs) == 3 {
		opts, ok := vs[2].StringVal()
		if !ok {
			return Erroneous("regexp() options must be a string")
		}
		if strings.Contains(strings.ToLower(opts), "i") {
			pat = "(?i)" + pat
		}
	}
	re, err := regexp.Compile(pat)
	if err != nil {
		return Erroneous("regexp(): bad pattern %q: %v", pat, err)
	}
	return Bool(re.MatchString(tgt))
}

// fnRegexps implements regexps(pattern, target, substitute): regexp
// replacement with $1-style group references.
func fnRegexps(ctx *evalCtx, args []Expr) Value {
	if len(args) != 3 {
		return argErr("regexps", "3", len(args))
	}
	vs := evalArgs(ctx, args)
	if bad, ok := propagate(vs...); !ok {
		return bad
	}
	pat, okP := vs[0].StringVal()
	tgt, okT := vs[1].StringVal()
	sub, okS := vs[2].StringVal()
	if !okP || !okT || !okS {
		return Erroneous("regexps() expects string arguments")
	}
	re, err := regexp.Compile(pat)
	if err != nil {
		return Erroneous("regexps(): bad pattern %q: %v", pat, err)
	}
	return Str(re.ReplaceAllString(tgt, sub))
}

// fnSplitList splits a comma- or space-separated string into a list
// of trimmed strings.
func fnSplitList(ctx *evalCtx, args []Expr) Value {
	if len(args) != 1 && len(args) != 2 {
		return argErr("splitList", "1 or 2", len(args))
	}
	vs := evalArgs(ctx, args)
	if bad, ok := propagate(vs...); !ok {
		return bad
	}
	s, ok := vs[0].StringVal()
	if !ok {
		return Erroneous("splitList() expects a string, got %s", vs[0].Type())
	}
	seps := ", "
	if len(vs) == 2 {
		if sp, ok := vs[1].StringVal(); ok {
			seps = sp
		} else {
			return Erroneous("splitList() separator must be a string")
		}
	}
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return strings.ContainsRune(seps, r)
	})
	out := make([]Value, 0, len(fields))
	for _, f := range fields {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, Str(f))
		}
	}
	return ListOf(out...)
}

// fnJoin concatenates a list of values with a separator:
// join(sep, list).
func fnJoin(ctx *evalCtx, args []Expr) Value {
	if len(args) != 2 {
		return argErr("join", "2", len(args))
	}
	vs := evalArgs(ctx, args)
	if bad, ok := propagate(vs...); !ok {
		return bad
	}
	sep, okS := vs[0].StringVal()
	list, okL := vs[1].ListVal()
	if !okS || !okL {
		return Erroneous("join() expects (string, list)")
	}
	parts := make([]string, len(list))
	for i, el := range list {
		if s, ok := el.StringVal(); ok {
			parts[i] = s
		} else {
			parts[i] = el.String()
		}
	}
	return Str(strings.Join(parts, sep))
}

// fnRandom returns a uniform real in [0, x) — x defaults to 1.0; an
// integer argument yields an integer result in [0, x).
func fnRandom(ctx *evalCtx, args []Expr) Value {
	if len(args) > 1 {
		return argErr("random", "0 or 1", len(args))
	}
	u := ctx.env.Rand()
	if len(args) == 0 {
		return Real(u)
	}
	v := args[0].eval(ctx)
	switch v.Type() {
	case UndefinedType, ErrorType:
		return v
	case IntegerType:
		n, _ := v.IntVal()
		if n <= 0 {
			return Erroneous("random() bound must be positive")
		}
		return Int(int64(u * float64(n)))
	case RealType:
		r, _ := v.RealVal()
		if r <= 0 {
			return Erroneous("random() bound must be positive")
		}
		return Real(u * r)
	default:
		return Erroneous("random() of %s", v.Type())
	}
}

// fnTime returns the environment's current time in seconds since the
// Unix epoch; the simulator injects virtual time here.
func fnTime(ctx *evalCtx, args []Expr) Value {
	if len(args) != 0 {
		return argErr("time", "0", len(args))
	}
	return Int(ctx.env.Now())
}

// fnDayTime returns the number of seconds since local midnight of the
// environment's current time — the paper's DayTime attribute
// ("current time in seconds since midnight", Figure 1), so an RA can
// publish DayTime = dayTime() and have night-only policies evaluate
// correctly at claim time.
func fnDayTime(ctx *evalCtx, args []Expr) Value {
	if len(args) != 0 {
		return argErr("dayTime", "0", len(args))
	}
	now := ctx.env.Now()
	secs := now % 86400
	if secs < 0 {
		secs += 86400
	}
	return Int(secs)
}

// fnInterval renders a duration in seconds as the conventional
// "days+hh:mm:ss" display form used by queue tools.
func fnInterval(ctx *evalCtx, args []Expr) Value {
	if len(args) != 1 {
		return argErr("interval", "1", len(args))
	}
	v := args[0].eval(ctx)
	switch v.Type() {
	case UndefinedType, ErrorType:
		return v
	}
	n, ok := v.NumberVal()
	if !ok {
		return Erroneous("interval() of %s", v.Type())
	}
	secs := int64(n)
	neg := ""
	if secs < 0 {
		neg, secs = "-", -secs
	}
	days := secs / 86400
	secs %= 86400
	h, m, s := secs/3600, (secs%3600)/60, secs%60
	if days > 0 {
		return Str(strings.TrimPrefix(neg+sprintfInterval(days, h, m, s), ""))
	}
	return Str(neg + sprintfHMS(h, m, s))
}

func sprintfInterval(days, h, m, s int64) string {
	return strconvI(days) + "+" + sprintfHMS(h, m, s)
}

func sprintfHMS(h, m, s int64) string {
	pad := func(x int64) string {
		if x < 10 {
			return "0" + strconvI(x)
		}
		return strconvI(x)
	}
	return pad(h) + ":" + pad(m) + ":" + pad(s)
}

func strconvI(x int64) string { return strconv.FormatInt(x, 10) }

// fnUnparse renders its single argument's *expression* (not its
// value) in canonical source form — the introspection helper status
// tools use to display policies. The argument is intentionally not
// evaluated.
func fnUnparse(ctx *evalCtx, args []Expr) Value {
	if len(args) != 1 {
		return argErr("unparse", "1", len(args))
	}
	// For an attribute reference, unparse the referenced attribute's
	// definition if it exists in scope; otherwise unparse the
	// argument expression itself.
	if ref, ok := args[0].(attrRef); ok && ref.scope != ScopeOther {
		for _, ad := range ctx.chain {
			if e, found := ad.Lookup(ref.name); found {
				return Str(e.String())
			}
		}
		return Undef()
	}
	return Str(args[0].String())
}

// RegisterBuiltinsDoc returns a short description of every builtin,
// keyed by name, for the cadeval tool's help output.
func RegisterBuiltinsDoc() map[string]string {
	return map[string]string{
		"member":     "member(x, list) — true if x == some element",
		"strcmp":     "strcmp(a, b) — C-style comparison",
		"substr":     "substr(s, off[, len]) — substring",
		"ifthenelse": "ifThenElse(c, t, f) — lazy conditional",
		"regexp":     "regexp(pat, s[, opts]) — RE2 match",
		"time":       "time() — seconds since epoch",
	}
}
