package classad

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func partial(t *testing.T, src string, ad *Ad) string {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	return PartialEval(e, ad, FixedEnv(0, 1)).String()
}

func TestPartialEvalFigure2Constraint(t *testing.T) {
	job := Figure2()
	ce, _ := ConstraintOf(job)
	residual := PartialEval(ce, job, FixedEnv(0, 1)).String()
	// self.Memory folds to 31; other.* and the unqualified Arch,
	// OpSys, Disk (absent from the job, resolvable only on the other
	// side) stay symbolic.
	want := `((((other.Type == "Machine") && (Arch == "INTEL")) && (OpSys == "SOLARIS251")) && (Disk >= 6000)) && (other.Memory >= 31)`
	if residual != want {
		t.Errorf("residual:\n got %s\nwant %s", residual, want)
	}
}

func TestPartialEvalFoldsGround(t *testing.T) {
	ad := MustParse(`[ Memory = 64; Spare = Memory / 2 ]`)
	cases := map[string]string{
		"Memory * 2":                    "128",
		"Spare + 1":                     "33",
		"1 + 2 * 3":                     "7",
		`member("a", {"a","b"})`:        "true",
		"Missing":                       "Missing", // might resolve on the other side
		"other.Memory":                  "other.Memory",
		"self.Memory":                   "64",
		"Memory > 32 && other.Cpus > 1": "other.Cpus > 1",
	}
	// Note: Memory > 32 folds to true, and true && X cannot drop the
	// true (identity is unsound for non-boolean X) — so the last case
	// expects the simplified true && residual... adjust:
	cases["Memory > 32 && other.Cpus > 1"] = "true && (other.Cpus > 1)"
	for src, want := range cases {
		if got := partial(t, src, ad); got != want {
			t.Errorf("PartialEval(%s) = %s, want %s", src, got, want)
		}
	}
}

func TestPartialEvalDomination(t *testing.T) {
	ad := MustParse(`[ Memory = 16 ]`)
	cases := map[string]string{
		// Memory > 32 is false: the whole conjunction dies whatever
		// the other side offers.
		"Memory > 32 && other.Cpus > 1": "false",
		"other.Cpus > 1 && Memory > 32": "false",
		// Memory < 32 is true: the disjunction is already satisfied.
		"Memory < 32 || other.Cpus > 1": "true",
		"other.Cpus > 1 || Memory < 32": "true",
	}
	for src, want := range cases {
		if got := partial(t, src, ad); got != want {
			t.Errorf("PartialEval(%s) = %s, want %s", src, got, want)
		}
	}
}

func TestPartialEvalConditionals(t *testing.T) {
	ad := MustParse(`[ Fast = true ]`)
	if got := partial(t, "Fast ? other.Mips > 100 : other.Mips > 10", ad); got != "other.Mips > 100" {
		t.Errorf("literal condition not resolved: %s", got)
	}
	// Symbolic condition stays.
	got := partial(t, "other.Busy ? 1 : 2", ad)
	if got != "other.Busy ? 1 : 2" {
		t.Errorf("symbolic conditional rewritten: %s", got)
	}
}

func TestPartialEvalImpureStaysSymbolic(t *testing.T) {
	ad := MustParse(`[ T = time(); R = random() ]`)
	for _, src := range []string{"time() > 100", "T + 1", "random()", "R < 0.5", "dayTime() < 28800"} {
		got := partial(t, src, ad)
		if e, err := ParseExpr(got); err != nil {
			t.Fatalf("residual %q does not parse: %v", got, err)
		} else if _, isLit := e.(litExpr); isLit {
			t.Errorf("impure expression %q folded to %q", src, got)
		}
	}
}

func TestPartialEvalCycleStaysSymbolic(t *testing.T) {
	ad := MustParse(`[ a = b; b = a ]`)
	got := partial(t, "a + 1", ad)
	if got != "a + 1" {
		t.Errorf("cyclic reference rewritten to %q", got)
	}
}

// TestQuickPartialEvalSoundness is the key property: for any generated
// expression and pair of ads, evaluating the residual in the match
// context gives a value identical to evaluating the original.
func TestQuickPartialEvalSoundness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := genExpr(r, 4)
		self := genAd(r)
		other := genAd(r)
		env := FixedEnv(12345, 99)
		residual := PartialEval(e, self, env)
		ctxVal := func(expr Expr) Value {
			return EvalExprAgainst(expr, self, other, env)
		}
		orig := ctxVal(e)
		rew := ctxVal(residual)
		if !orig.Identical(rew) {
			t.Logf("seed %d:\n expr     %s\n residual %s\n orig %v rew %v",
				seed, e, residual, orig, rew)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickPartialEvalIdempotent: rewriting a residual again changes
// nothing.
func TestQuickPartialEvalIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := genExpr(r, 4)
		self := genAd(r)
		env := FixedEnv(0, 1)
		once := PartialEval(e, self, env)
		twice := PartialEval(once, self, env)
		return once.String() == twice.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
