package classad

// Robustness: the parser and evaluator must never panic, whatever
// bytes arrive — ads cross the network from arbitrary peers.

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanicsOnRandomBytes feeds raw random byte strings.
func TestParseNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if p := recover(); p != nil {
				t.Logf("input %q panicked: %v", data, p)
				ok = false
			}
		}()
		_, _ = Parse(string(data))
		_, _ = ParseExpr(string(data))
		_, _ = ParseMulti(string(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestParseNeverPanicsOnTokenSoup feeds syntactically plausible token
// sequences, which reach deeper into the parser than raw bytes do.
func TestParseNeverPanicsOnTokenSoup(t *testing.T) {
	tokens := []string{
		"[", "]", "{", "}", "(", ")", ";", ",", "=", ".", "?", ":",
		"||", "&&", "!", "<", "<=", ">", ">=", "==", "!=", "+", "-",
		"*", "/", "%", "is", "isnt", "true", "false", "undefined",
		"error", "self", "other", "member", "42", "3.5", `"str"`,
		"Memory", "Constraint", "=?=", "=!=",
	}
	f := func(seed int64) (ok bool) {
		defer func() {
			if p := recover(); p != nil {
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		var b strings.Builder
		for i, n := 0, r.Intn(40); i < n; i++ {
			b.WriteString(tokens[r.Intn(len(tokens))])
			b.WriteByte(' ')
		}
		src := b.String()
		if e, err := ParseExpr(src); err == nil {
			// Whatever parsed must also evaluate without panicking.
			_ = EvalExprEnv(e, genAd(r), FixedEnv(0, seed))
		}
		if ad, err := Parse(src); err == nil {
			for _, n := range ad.Names() {
				_ = ad.Eval(n)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestDeeplyNestedInputs: pathological nesting must error or succeed,
// not overflow the stack. Parser recursion depth is proportional to
// input size, so keep inputs bounded but deep.
func TestDeeplyNestedInputs(t *testing.T) {
	depth := 10000
	cases := []string{
		strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth),
		strings.Repeat("{", depth) + "1" + strings.Repeat("}", depth),
		strings.Repeat("!", depth) + "true",
		strings.Repeat("[a=", depth) + "1" + strings.Repeat("]", depth),
		strings.Repeat("-", depth) + "5",
	}
	for i, src := range cases {
		func() {
			defer func() {
				if p := recover(); p != nil {
					// A stack-overflow panic would kill the process
					// before reaching here, so any recoverable
					// panic is still a bug.
					t.Errorf("case %d panicked: %v", i, p)
				}
			}()
			if e, err := ParseExpr(src); err == nil {
				_ = EvalExpr(e, nil)
			}
		}()
	}
}

// TestHugeFlatAd: width is cheap even when depth is limited.
func TestHugeFlatAd(t *testing.T) {
	var b strings.Builder
	b.WriteString("[")
	for i := 0; i < 20000; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString("a")
		b.WriteString(itoa(i))
		b.WriteString(" = ")
		b.WriteString(itoa(i))
	}
	b.WriteString("]")
	ad, err := Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if ad.Len() != 20000 {
		t.Errorf("len = %d", ad.Len())
	}
	if v := ad.Eval("a19999"); !v.Identical(Int(19999)) {
		t.Errorf("a19999 = %v", v)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var digits []byte
	for i > 0 {
		digits = append([]byte{byte('0' + i%10)}, digits...)
		i /= 10
	}
	return string(digits)
}
