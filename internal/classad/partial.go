package classad

// Partial evaluation: rewrite an expression with everything that is
// already determined by one side of the match folded to literals,
// leaving only the genuinely bilateral parts symbolic. The analyzer
// uses it to show a customer the *residual* requirement their job
// actually imposes on providers — e.g. Figure 2's
//
//	other.Memory >= self.Memory
//
// becomes
//
//	other.Memory >= 31
//
// once the job's own Memory is substituted, which is the form an
// administrator can act on.

// impureFns are builtins whose value is not determined by the ad alone
// (they read the environment), so references through them stay
// symbolic.
var impureFns = map[string]bool{
	"random":      true,
	"time":        true,
	"currenttime": true,
	"daytime":     true,
}

// ImpureBuiltin reports whether name is a builtin whose value is not
// determined by the ads alone (it reads the environment: clock or
// random stream). Such calls stay symbolic under partial evaluation,
// and the bilateral analyzer refuses to build "can never match" proofs
// over expressions that reach one.
func ImpureBuiltin(name string) bool { return impureFns[Fold(name)] }

// groundChecker decides whether an expression's value is fully
// determined by the self ad: no other-scope references, no unresolved
// names (an unqualified name missing from self could still resolve in
// the other ad at match time), no impure functions, no cycles.
type groundChecker struct {
	self    *Ad
	visited map[string]bool
}

func (g *groundChecker) ground(e Expr) bool {
	switch n := e.(type) {
	case litExpr:
		return true
	case attrRef:
		if n.scope == ScopeOther {
			return false
		}
		key := Fold(n.name)
		if g.visited[key] {
			return false // cycle: evaluation would be an error anyway
		}
		def, ok := g.self.Lookup(n.name)
		if !ok {
			return false // might fall back to the other ad
		}
		g.visited[key] = true
		ok = g.ground(def)
		delete(g.visited, key)
		return ok
	case unaryExpr:
		return g.ground(n.arg)
	case binaryExpr:
		return g.ground(n.l) && g.ground(n.r)
	case condExpr:
		return g.ground(n.cond) && g.ground(n.then) && g.ground(n.els)
	case callExpr:
		if impureFns[Fold(n.name)] {
			return false
		}
		for _, a := range n.args {
			if !g.ground(a) {
				return false
			}
		}
		return true
	case listExpr:
		for _, el := range n.elems {
			if !g.ground(el) {
				return false
			}
		}
		return true
	case adExpr:
		// A nested ad literal is a value as-is.
		return true
	case selectExpr:
		return g.ground(n.base)
	case indexExpr:
		return g.ground(n.base) && g.ground(n.index)
	default:
		return false
	}
}

// PartialEval rewrites e with respect to self: ground subexpressions
// fold to their literal values; the rest is rebuilt with algebraic
// simplifications (identity and domination laws of the three-valued
// logic, literal conditionals). The result evaluates identically to e
// in any future two-way match with self — it is a rewriting, not an
// approximation.
func PartialEval(e Expr, self *Ad, env *Env) Expr {
	if self == nil {
		self = NewAd()
	}
	p := &partialer{
		g:   &groundChecker{self: self, visited: make(map[string]bool)},
		ad:  self,
		env: env,
	}
	return p.rewrite(e)
}

type partialer struct {
	g   *groundChecker
	ad  *Ad
	env *Env
}

// fold evaluates a ground expression to a literal.
func (p *partialer) fold(e Expr) Expr {
	return Lit(EvalExprEnv(e, p.ad, p.env))
}

func (p *partialer) rewrite(e Expr) Expr {
	if p.g.ground(e) {
		return p.fold(e)
	}
	out := p.rewriteChildren(e)
	// Child folds can make the rebuilt node ground (e.g. a
	// conditional collapsing to a literal under a negation); fold
	// again so the rewriting is a fixed point.
	if p.g.ground(out) {
		return p.fold(out)
	}
	return out
}

func (p *partialer) rewriteChildren(e Expr) Expr {
	switch n := e.(type) {
	case unaryExpr:
		return unaryExpr{n.op, p.rewrite(n.arg)}
	case binaryExpr:
		l := p.rewrite(n.l)
		r := p.rewrite(n.r)
		return p.simplifyBinary(n.op, l, r)
	case condExpr:
		cond := p.rewrite(n.cond)
		if lit, ok := cond.(litExpr); ok {
			b := toBool(lit.v)
			if bv, ok := b.BoolVal(); ok {
				if bv {
					return p.rewrite(n.then)
				}
				return p.rewrite(n.els)
			}
			// undefined/error condition: the conditional's value is
			// that condition, regardless of the arms.
			return Lit(b)
		}
		return condExpr{cond, p.rewrite(n.then), p.rewrite(n.els)}
	case callExpr:
		args := make([]Expr, len(n.args))
		for i, a := range n.args {
			args[i] = p.rewrite(a)
		}
		return callExpr{n.name, args}
	case listExpr:
		elems := make([]Expr, len(n.elems))
		for i, el := range n.elems {
			elems[i] = p.rewrite(el)
		}
		return listExpr{elems}
	case selectExpr:
		return selectExpr{p.rewrite(n.base), n.name}
	case indexExpr:
		return indexExpr{p.rewrite(n.base), p.rewrite(n.index)}
	default:
		return e
	}
}

// simplifyBinary applies the domination laws, which are exact in the
// three-valued logic whatever the other operand turns out to be:
// false dominates &&, true dominates || (even over error — see
// evalAnd/evalOr). The identity laws (true && x == x) are deliberately
// NOT applied: if x evaluates to a non-boolean, `true && x` coerces it
// while bare `x` would not, and a Constraint must evaluate to the
// boolean true — so the rewriting would change match outcomes.
func (p *partialer) simplifyBinary(op Op, l, r Expr) Expr {
	lb, lok := litBool(l)
	rb, rok := litBool(r)
	switch op {
	case OpAnd:
		if lok && !lb || rok && !rb {
			return Lit(Bool(false))
		}
	case OpOr:
		if lok && lb || rok && rb {
			return Lit(Bool(true))
		}
	}
	return binaryExpr{op, l, r}
}

// litBool extracts a literal boolean (with numeric coercion) from an
// expression.
func litBool(e Expr) (value, ok bool) {
	lit, isLit := e.(litExpr)
	if !isLit {
		return false, false
	}
	b := toBool(lit.v)
	return b.BoolVal()
}
