package classad

import (
	"encoding/json"
	"fmt"
)

// The wire protocol carries classads in their native source syntax,
// wrapped in JSON envelopes. These helpers centralize that mapping and
// also provide a structured JSON form (attribute name → unparsed
// expression) for tooling that wants to inspect ads without a classad
// parser.

// MarshalText renders the ad in canonical single-line source form.
func (a *Ad) MarshalText() ([]byte, error) {
	return []byte(a.String()), nil
}

// UnmarshalText parses an ad from source form, replacing the receiver's
// contents.
func (a *Ad) UnmarshalText(text []byte) error {
	parsed, err := Parse(string(text))
	if err != nil {
		return err
	}
	*a = *parsed
	return nil
}

// MarshalJSON encodes the ad as a JSON object mapping each attribute
// name (defining case) to the unparsed text of its expression, with a
// reserved "_order" key preserving insertion order so the round trip
// is faithful.
func (a *Ad) MarshalJSON() ([]byte, error) {
	obj := make(map[string]string, a.Len()+1)
	for _, n := range a.Names() {
		e, _ := a.Lookup(n)
		obj[n] = e.String()
	}
	type wire struct {
		Order []string          `json:"_order"`
		Attrs map[string]string `json:"attrs"`
	}
	return json.Marshal(wire{Order: a.Names(), Attrs: obj})
}

// UnmarshalJSON decodes the form produced by MarshalJSON.
func (a *Ad) UnmarshalJSON(data []byte) error {
	type wire struct {
		Order []string          `json:"_order"`
		Attrs map[string]string `json:"attrs"`
	}
	var w wire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	out := NewAd()
	seen := make(map[string]bool, len(w.Order))
	for _, n := range w.Order {
		src, ok := w.Attrs[n]
		if !ok {
			return fmt.Errorf("classad: json order lists %q but attrs omits it", n)
		}
		e, err := ParseExpr(src)
		if err != nil {
			return fmt.Errorf("classad: attribute %q: %w", n, err)
		}
		out.Set(n, e)
		seen[Fold(n)] = true
	}
	// Attributes present but not ordered (hand-written JSON) append
	// in map order; sort for determinism.
	var extra []string
	for n := range w.Attrs {
		if !seen[Fold(n)] {
			extra = append(extra, n)
		}
	}
	sortStrings(extra)
	for _, n := range extra {
		e, err := ParseExpr(w.Attrs[n])
		if err != nil {
			return fmt.Errorf("classad: attribute %q: %w", n, err)
		}
		out.Set(n, e)
	}
	*a = *out
	return nil
}
