package classad

// Exhaustive operator/type matrix: every binary operator applied to
// every ordered pair of value types, and every unary operator to every
// type. The assertions encode the semantic *classes* of §3.1 — strict
// undefined propagation, error domination, non-strict Boolean
// connectives, total is/isnt — and guarantee the evaluator is closed
// (always yields a value, never panics) over the whole domain.

import (
	"testing"
)

// representatives maps each value type to a literal representative.
var representatives = map[ValueType]Value{
	UndefinedType: Undef(),
	ErrorType:     Erroneous("rep"),
	BooleanType:   Bool(true),
	IntegerType:   Int(7),
	RealType:      Real(2.5),
	StringType:    Str("s"),
	ListType:      ListOf(Int(1)),
	AdType:        AdValue(MustParse("[x = 1]")),
}

var allTypes = []ValueType{
	UndefinedType, ErrorType, BooleanType, IntegerType,
	RealType, StringType, ListType, AdType,
}

func isScalarNumeric(t ValueType) bool {
	return t == IntegerType || t == RealType || t == BooleanType
}

func TestBinaryOperatorMatrix(t *testing.T) {
	arith := []Op{OpAdd, OpSub, OpMul, OpDiv, OpMod}
	relational := []Op{OpLt, OpLe, OpGt, OpGe}
	equality := []Op{OpEq, OpNe}
	boolean := []Op{OpAnd, OpOr}
	identity := []Op{OpIs, OpIsnt}

	for _, lt := range allTypes {
		for _, rt := range allTypes {
			l, r := Lit(representatives[lt]), Lit(representatives[rt])
			eval := func(op Op) Value {
				return EvalExpr(NewBinary(op, l, r), nil)
			}

			// Arithmetic: strict; numeric (incl. boolean coercion)
			// operands give numbers, anything else errors; undefined
			// propagates unless error dominates.
			for _, op := range arith {
				v := eval(op)
				switch {
				case lt == ErrorType || rt == ErrorType:
					if !v.IsError() {
						t.Errorf("%v %s %v = %v, want error", lt, op, rt, v)
					}
				case lt == UndefinedType || rt == UndefinedType:
					// Undefined propagates — except when the other
					// operand is a type that can never participate
					// (the implementation may report error first);
					// both are strict outcomes. Accept undefined,
					// and error only when a non-numeric operand is
					// present.
					if !v.IsUndefined() && !(v.IsError() && (!isScalarNumeric(lt) && lt != UndefinedType || !isScalarNumeric(rt) && rt != UndefinedType)) {
						t.Errorf("%v %s %v = %v, want undefined", lt, op, rt, v)
					}
				case isScalarNumeric(lt) && isScalarNumeric(rt):
					if _, ok := v.NumberVal(); !ok && !v.IsError() {
						t.Errorf("%v %s %v = %v, want numeric (or division error)", lt, op, rt, v)
					}
				default:
					if !v.IsError() {
						t.Errorf("%v %s %v = %v, want error", lt, op, rt, v)
					}
				}
			}

			// Relational: strict; ordered types compare, others
			// error.
			for _, op := range relational {
				v := eval(op)
				switch {
				case lt == ErrorType || rt == ErrorType:
					if !v.IsError() {
						t.Errorf("%v %s %v = %v, want error", lt, op, rt, v)
					}
				case lt == UndefinedType || rt == UndefinedType:
					if !v.IsUndefined() {
						t.Errorf("%v %s %v = %v, want undefined", lt, op, rt, v)
					}
				case lt == StringType && rt == StringType:
					if _, ok := v.BoolVal(); !ok {
						t.Errorf("string %s string = %v, want boolean", op, v)
					}
				case isScalarNumeric(lt) && isScalarNumeric(rt) &&
					lt != BooleanType && rt != BooleanType:
					if _, ok := v.BoolVal(); !ok {
						t.Errorf("%v %s %v = %v, want boolean", lt, op, rt, v)
					}
				case lt == BooleanType && rt == BooleanType:
					if !v.IsError() {
						t.Errorf("bool %s bool = %v, want error (no order on booleans)", op, v)
					}
				case lt == ListType || rt == ListType || lt == AdType || rt == AdType ||
					lt == StringType || rt == StringType:
					if !v.IsError() {
						t.Errorf("%v %s %v = %v, want error", lt, op, rt, v)
					}
				default:
					// mixed bool/number: defined (coerces).
					if _, ok := v.BoolVal(); !ok {
						t.Errorf("%v %s %v = %v, want boolean", lt, op, rt, v)
					}
				}
			}

			// Equality: strict; compatible types give booleans.
			for _, op := range equality {
				v := eval(op)
				switch {
				case lt == ErrorType || rt == ErrorType:
					if !v.IsError() {
						t.Errorf("%v %s %v = %v, want error", lt, op, rt, v)
					}
				case lt == UndefinedType || rt == UndefinedType:
					if !v.IsUndefined() {
						t.Errorf("%v %s %v = %v, want undefined", lt, op, rt, v)
					}
				case lt == ListType || rt == ListType || lt == AdType || rt == AdType:
					if !v.IsError() {
						t.Errorf("%v %s %v = %v, want error (no == on aggregates)", lt, op, rt, v)
					}
				case (lt == StringType) != (rt == StringType):
					if !v.IsError() {
						t.Errorf("%v %s %v = %v, want error", lt, op, rt, v)
					}
				default:
					if _, ok := v.BoolVal(); !ok {
						t.Errorf("%v %s %v = %v, want boolean", lt, op, rt, v)
					}
				}
			}

			// Boolean connectives: non-strict, never panic; result
			// is always boolean, undefined, or error.
			for _, op := range boolean {
				v := eval(op)
				switch v.Type() {
				case BooleanType, UndefinedType, ErrorType:
				default:
					t.Errorf("%v %s %v = %v (%s), want three-valued",
						lt, op, rt, v, v.Type())
				}
			}

			// is/isnt: total — always a boolean, whatever the
			// operands.
			for _, op := range identity {
				v := eval(op)
				if _, ok := v.BoolVal(); !ok {
					t.Errorf("%v %s %v = %v, want boolean always", lt, op, rt, v)
				}
			}
		}
	}
}

func TestUnaryOperatorMatrix(t *testing.T) {
	for _, ty := range allTypes {
		arg := Lit(representatives[ty])
		not := EvalExpr(NewUnary(OpNot, arg), nil)
		switch ty {
		case UndefinedType:
			if !not.IsUndefined() {
				t.Errorf("!%v = %v", ty, not)
			}
		case ErrorType:
			if !not.IsError() {
				t.Errorf("!%v = %v", ty, not)
			}
		case BooleanType, IntegerType, RealType:
			if _, ok := not.BoolVal(); !ok {
				t.Errorf("!%v = %v, want boolean", ty, not)
			}
		default:
			if !not.IsError() {
				t.Errorf("!%v = %v, want error", ty, not)
			}
		}

		neg := EvalExpr(NewUnary(OpNeg, arg), nil)
		switch ty {
		case UndefinedType:
			if !neg.IsUndefined() {
				t.Errorf("-%v = %v", ty, neg)
			}
		case ErrorType:
			if !neg.IsError() {
				t.Errorf("-%v = %v", ty, neg)
			}
		case BooleanType, IntegerType, RealType:
			if _, ok := neg.NumberVal(); !ok {
				t.Errorf("-%v = %v, want numeric", ty, neg)
			}
		default:
			if !neg.IsError() {
				t.Errorf("-%v = %v, want error", ty, neg)
			}
		}
	}
}

// TestIdentityTotality: is/isnt are total and complementary over the
// full type matrix.
func TestIdentityTotality(t *testing.T) {
	for _, lt := range allTypes {
		for _, rt := range allTypes {
			l, r := Lit(representatives[lt]), Lit(representatives[rt])
			is := EvalExpr(NewBinary(OpIs, l, r), nil)
			isnt := EvalExpr(NewBinary(OpIsnt, l, r), nil)
			ib, ok1 := is.BoolVal()
			nb, ok2 := isnt.BoolVal()
			if !ok1 || !ok2 || ib == nb {
				t.Errorf("%v is/isnt %v = %v / %v, want complementary booleans",
					lt, rt, is, isnt)
			}
			// Reflexivity on identical representatives.
			if lt == rt && !ib {
				t.Errorf("%v is %v = false, want reflexive", lt, rt)
			}
		}
	}
}
