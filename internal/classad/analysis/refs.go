package analysis

import (
	"sort"
	"strings"

	"repro/internal/classad"
)

// The reference pass resolves every attribute reference with the same
// scoping rules the evaluator uses: self.X looks only in the ad itself
// (never falling back to the matched ad), while an unqualified X tries
// the ad first and then the other party's ad at match time. A
// self-scoped reference to a missing attribute is therefore provably
// undefined (CAD101); an unqualified or other-scoped reference that is
// neither local nor part of the advertising protocol's well-known
// vocabulary is probably a typo (CAD102) — the dominant operational
// failure mode of hand-written ads, which silently never match.

// wellKnown is the advertising protocol's attribute vocabulary: the
// names given meaning by the protocol itself plus the machine and job
// attributes of the paper's figures as advertised by this repo's
// daemons.
var wellKnown = []string{
	// Protocol attributes (classad.Attr*).
	classad.AttrConstraint, classad.AttrRequirements, classad.AttrRank,
	classad.AttrType, classad.AttrName, classad.AttrOwner,
	classad.AttrContact, classad.AttrTicket,
	// Machine ads (paper Figure 1).
	"Activity", "Arch", "CurrentRank", "DayTime", "Disk", "Friends",
	"KFlops", "KeyboardIdle", "LoadAvg", "Memory", "Mips", "OpSys",
	"RemoteHost", "RemoteOwner", "ResearchGroup", "StartdIpAddr",
	"State", "Untrusted",
	// Job ads (paper Figure 2).
	"Args", "Cluster", "Cmd", "CompletionDate", "Iwd", "JobId",
	"JobStatus", "Process", "QDate", "ShadowContact", "WantCheckpoint",
	"WantRemoteSyscalls", "Work",
}

// buildVocab folds the well-known vocabulary plus any extras.
func buildVocab(extra []string) map[string]bool {
	v := make(map[string]bool, len(wellKnown)+len(extra))
	for _, n := range wellKnown {
		v[classad.Fold(n)] = true
	}
	for _, n := range extra {
		v[classad.Fold(n)] = true
	}
	return v
}

// checkRefs runs the reference pass over every attribute.
func (a *analyzer) checkRefs() {
	chain := []*classad.Ad{a.ad}
	for _, name := range a.ad.Names() {
		e, _ := a.ad.Lookup(name)
		a.refWalk(name, e, chain, false)
	}
}

// refWalk descends an expression. chain holds the enclosing ads,
// innermost first (nested ad literals push). probed marks descent
// through isUndefined/isError/unparse, whose arguments legitimately
// reference attributes that may not exist.
func (a *analyzer) refWalk(attr string, e classad.Expr, chain []*classad.Ad, probed bool) {
	info := classad.Inspect(e)
	switch info.Kind {
	case classad.KindAttrRef:
		if !probed {
			a.checkRef(attr, e, info, chain)
		}
		return
	case classad.KindCall:
		switch classad.Fold(info.Name) {
		case "isundefined", "iserror", "unparse":
			probed = true
		}
	case classad.KindAd:
		inner := append([]*classad.Ad{info.Ad}, chain...)
		for _, n := range info.Ad.Names() {
			ie, _ := info.Ad.Lookup(n)
			a.refWalk(attr, ie, inner, probed)
		}
		return
	case classad.KindSelect:
		// base.Field selects from a runtime record; only the base can
		// be resolved statically.
	}
	for _, c := range info.Args {
		a.refWalk(attr, c, chain, probed)
	}
}

// checkRef resolves one attribute reference against the scope chain.
func (a *analyzer) checkRef(attr string, e classad.Expr, info classad.ExprInfo, chain []*classad.Ad) {
	switch info.Scope {
	case classad.ScopeSelf:
		if _, ok := chain[0].Lookup(info.Name); ok {
			return
		}
		msg := "self." + info.Name + " is not defined in this ad; self never falls back to the matched ad, so the reference always evaluates to undefined"
		if sug := suggest(info.Name, adNames(chain[0])); sug != "" {
			msg += " (did you mean " + quoted(sug) + "?)"
		}
		a.report(CodeSelfNeverBinds, Warning, attr, e, "%s", msg)
	case classad.ScopeOther:
		if a.vocab[classad.Fold(info.Name)] {
			return
		}
		msg := "other." + info.Name + " is not a well-known advertised attribute; it binds only if the matched ad happens to define it"
		if sug := suggest(info.Name, a.candidates(chain)); sug != "" {
			msg += " (did you mean " + quoted(sug) + "?)"
		}
		a.report(CodeUnknownAttr, Warning, attr, e, "%s", msg)
	default:
		for _, ad := range chain {
			if _, ok := ad.Lookup(info.Name); ok {
				return
			}
		}
		if a.vocab[classad.Fold(info.Name)] {
			return
		}
		msg := quoted(info.Name) + " is not defined in this ad and is not a well-known advertised attribute; it binds only if the matched ad happens to define it"
		if sug := suggest(info.Name, a.candidates(chain)); sug != "" {
			msg += " (did you mean " + quoted(sug) + "?)"
		}
		a.report(CodeUnknownAttr, Warning, attr, e, "%s", msg)
	}
}

// candidates collects did-you-mean targets: the vocabulary plus every
// attribute defined in the enclosing ads.
func (a *analyzer) candidates(chain []*classad.Ad) []string {
	seen := make(map[string]bool, len(a.vocab))
	var out []string
	add := func(n string) {
		if f := classad.Fold(n); !seen[f] {
			seen[f] = true
			out = append(out, n)
		}
	}
	for _, n := range wellKnown {
		add(n)
	}
	for _, ad := range chain {
		for _, n := range ad.Names() {
			add(n)
		}
	}
	sort.Strings(out)
	return out
}

func adNames(ad *classad.Ad) []string {
	out := append([]string(nil), ad.Names()...)
	sort.Strings(out)
	return out
}

// suggest returns the closest candidate within a small edit distance,
// or "" when nothing is plausibly a typo for name.
func suggest(name string, candidates []string) string {
	limit := 1
	if len(name) >= 5 {
		limit = 2
	}
	best, bestDist := "", limit+1
	ln := strings.ToLower(name)
	for _, c := range candidates {
		if strings.EqualFold(c, name) {
			continue
		}
		if d := editDistance(ln, strings.ToLower(c), limit); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between a and b, capped at
// limit+1 to keep the scan cheap.
func editDistance(a, b string, limit int) int {
	if abs(len(a)-len(b)) > limit {
		return limit + 1
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if rowMin > limit {
			return limit + 1
		}
		prev, cur = cur, prev
	}
	if prev[len(b)] > limit {
		return limit + 1
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
