package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

var codeLit = regexp.MustCompile(`"(CAD\d{3})"`)

// TestAllCodesMatchesSource re-derives the code vocabulary from the
// package's own source: every "CADnnn" literal in a non-test file must
// appear in AllCodes and vice versa, so a new diagnostic cannot ship
// without a row in the table.
func TestAllCodesMatchesSource(t *testing.T) {
	fromSource := map[string]bool{}
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range files {
		if strings.HasSuffix(path, "_test.go") {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range codeLit.FindAllStringSubmatch(string(data), -1) {
			fromSource[m[1]] = true
		}
	}
	if len(fromSource) == 0 {
		t.Fatal("no CAD code literals found in package source")
	}

	declared := map[string]bool{}
	var prev string
	for _, info := range AllCodes() {
		if declared[info.Code] {
			t.Errorf("AllCodes lists %s twice", info.Code)
		}
		if info.Code <= prev {
			t.Errorf("AllCodes out of order: %s after %s", info.Code, prev)
		}
		prev = info.Code
		declared[info.Code] = true
		if !fromSource[info.Code] {
			t.Errorf("AllCodes lists %s but no source literal declares it", info.Code)
		}
	}
	for code := range fromSource {
		if !declared[code] {
			t.Errorf("source declares %s but AllCodes does not list it", code)
		}
	}
}

var docRow = regexp.MustCompile(`^\| (CAD\d{3}) \| (\w+) \| (.+) \|$`)

// TestDesignDocCodeTableInSync is the `make lint-codes` gate: the
// DESIGN.md diagnostic table must list exactly the codes AllCodes
// declares, each at its declared severity.
func TestDesignDocCodeTableInSync(t *testing.T) {
	data, err := os.ReadFile("../../../DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	documented := map[string]string{}
	var order []string
	for _, line := range strings.Split(string(data), "\n") {
		m := docRow.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		if _, dup := documented[m[1]]; dup {
			t.Errorf("DESIGN.md documents %s twice", m[1])
		}
		documented[m[1]] = m[2]
		order = append(order, m[1])
	}
	if len(documented) == 0 {
		t.Fatal("no CAD code table rows found in DESIGN.md")
	}
	if !sort.StringsAreSorted(order) {
		t.Errorf("DESIGN.md code table out of code order: %v", order)
	}

	for _, info := range AllCodes() {
		sev, ok := documented[info.Code]
		if !ok {
			t.Errorf("DESIGN.md is missing a row for %s (%s)", info.Code, info.Summary)
			continue
		}
		if sev != info.Severity.String() {
			t.Errorf("DESIGN.md documents %s as %q, analyzer reports it as %q",
				info.Code, sev, info.Severity)
		}
		delete(documented, info.Code)
	}
	for code := range documented {
		t.Errorf("DESIGN.md documents %s but no analyzer declares it", code)
	}
}
