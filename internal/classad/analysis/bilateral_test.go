package analysis

import (
	"strings"
	"testing"

	"repro/internal/classad"
)

func mustAd(t *testing.T, src string) *classad.Ad {
	t.Helper()
	ad, err := classad.Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return ad
}

func codesOf(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Code)
	}
	return out
}

func TestAnalyzeMatchContradiction(t *testing.T) {
	// Paper §3.2's mutual-constraint contradiction: the job wants big
	// memory, the machine only takes small jobs.
	job := mustAd(t, `[
		Type = "job";
		Memory = 2048;
		Constraint = other.Memory >= 2048;
	]`)
	machine := mustAd(t, `[
		Type = "machine";
		Memory = 512;
		Constraint = other.Memory <= 1024;
	]`)
	rep := AnalyzeMatch(job, machine, nil)
	if !rep.NeverMatch {
		t.Fatalf("NeverMatch = false, want true; diags: %v", rep.Diags())
	}
	// The job's constraint fails against the machine (512 < 2048) and
	// the machine's fails against the job (2048 > 1024): both sides.
	if !hasCode(rep.LeftDiags, CodePairContradiction) {
		t.Errorf("left diags missing CAD301: %v", codesOf(rep.LeftDiags))
	}
	if !hasCode(rep.RightDiags, CodePairContradiction) {
		t.Errorf("right diags missing CAD301: %v", codesOf(rep.RightDiags))
	}
	// Soundness: the evaluator agrees.
	if classad.Match(job, machine).Matched {
		t.Fatal("evaluator says the pair matches; verdict is unsound")
	}
}

func TestAnalyzeMatchCompatiblePairIsClean(t *testing.T) {
	job := mustAd(t, `[
		Type = "job";
		Memory = 31;
		Constraint = other.Memory >= 31 && other.Arch == "intel";
		Rank = other.Mips;
	]`)
	machine := mustAd(t, `[
		Type = "machine";
		Memory = 64;
		Arch = "intel";
		Mips = 110;
		Constraint = other.Memory <= 64;
		Rank = 0;
	]`)
	rep := AnalyzeMatch(job, machine, nil)
	if rep.NeverMatch || len(rep.Diags()) != 0 {
		t.Fatalf("clean pair produced diags: %v", rep.Diags())
	}
	if !classad.Match(job, machine).Matched {
		t.Fatal("fixture pair should actually match")
	}
}

func TestAnalyzeMatchUndefinedConjunct(t *testing.T) {
	// The machine never advertises Gpus: other.Gpus is a deterministic
	// undefined, so the conjunct can never be true.
	job := mustAd(t, `[
		Constraint = other.Gpus >= 1;
	]`)
	machine := mustAd(t, `[ Type = "machine"; Memory = 64 ]`)
	rep := AnalyzeMatch(job, machine, nil)
	if !rep.NeverMatch || !hasCode(rep.LeftDiags, CodePairContradiction) {
		t.Fatalf("want CAD301 for undefined conjunct, got %v", rep.Diags())
	}
	if got := rep.LeftDiags[0].Message; !strings.Contains(got, "undefined") {
		t.Errorf("message should name the undefined value: %q", got)
	}
}

func TestAnalyzeMatchCrossTypeClash(t *testing.T) {
	// SAMGrid's classic: Memory advertised as a string. The comparison
	// can only yield error — flagged CAD302 even though the verdict
	// names the type, not just the value.
	job := mustAd(t, `[
		Constraint = other.Memory >= 512;
	]`)
	machine := mustAd(t, `[ Name = "bad.example.com"; Memory = "64" ]`)
	rep := AnalyzeMatch(job, machine, nil)
	if !rep.NeverMatch || !hasCode(rep.LeftDiags, CodeCrossTypeClash) {
		t.Fatalf("want CAD302, got %v", rep.Diags())
	}
	msg := rep.LeftDiags[0].Message
	if !strings.Contains(msg, "Memory") || !strings.Contains(msg, "bad.example.com") {
		t.Errorf("CAD302 message should name the attribute and peer: %q", msg)
	}
	if classad.Match(job, machine).Matched {
		t.Fatal("evaluator says the pair matches; CAD302 unsound")
	}
}

func TestAnalyzeMatchRankUndefined(t *testing.T) {
	job := mustAd(t, `[
		Constraint = true;
		Rank = other.Mips;
	]`)
	machine := mustAd(t, `[ Type = "machine" ]`)
	rep := AnalyzeMatch(job, machine, nil)
	if rep.NeverMatch {
		t.Fatalf("rank finding must not block the match: %v", rep.Diags())
	}
	if !hasCode(rep.LeftDiags, CodePairRankUndefined) {
		t.Fatalf("want CAD303, got %v", rep.Diags())
	}
	if rep.LeftDiags[0].Severity != Warning {
		t.Errorf("CAD303 severity = %v, want Warning", rep.LeftDiags[0].Severity)
	}
}

func TestAnalyzeMatchImpureConjunctStaysQuiet(t *testing.T) {
	// random() could be anything; no verdict may be issued even though
	// one sampled evaluation happens to be false.
	job := mustAd(t, `[
		Constraint = random(100) > 200 && other.Memory >= 1;
	]`)
	machine := mustAd(t, `[ Memory = 64 ]`)
	rep := AnalyzeMatch(job, machine, nil)
	for _, d := range rep.Diags() {
		if d.Code == CodePairContradiction && strings.Contains(d.Expr, "random") {
			t.Fatalf("issued verdict over impure conjunct: %v", d)
		}
	}
}

func TestAnalyzeMatchNonZeroNumberConjunctNotFlagged(t *testing.T) {
	// A sole numeric conjunct of 5 fails the top-level constraint test
	// only because there is no coercion at the top; inside `5 && true`
	// it would pass. neverTruthy must not flag non-zero numbers.
	job := mustAd(t, `[ Constraint = 5 && other.Memory >= 1 ]`)
	machine := mustAd(t, `[ Memory = 64 ]`)
	rep := AnalyzeMatch(job, machine, nil)
	if hasCode(rep.LeftDiags, CodePairContradiction) {
		t.Fatalf("non-zero numeric conjunct flagged: %v", rep.Diags())
	}
}

func TestAnalyzeMatchCycleIsDeterministic(t *testing.T) {
	// A reference cycle evaluates to a deterministic error, so the
	// conjunct is provably never true.
	job := mustAd(t, `[ A = B; B = A; Constraint = A ]`)
	machine := mustAd(t, `[ Memory = 64 ]`)
	rep := AnalyzeMatch(job, machine, nil)
	if !hasCode(rep.LeftDiags, CodePairContradiction) {
		t.Fatalf("cycle conjunct not flagged: %v", rep.Diags())
	}
	if classad.Match(job, machine).Matched {
		t.Fatal("evaluator matched a cyclic constraint")
	}
}

func TestAnalyzeMatchNilAds(t *testing.T) {
	rep := AnalyzeMatch(nil, mustAd(t, `[ X = 1 ]`), nil)
	if rep.NeverMatch || len(rep.Diags()) != 0 {
		t.Fatalf("nil ad should yield empty report: %v", rep.Diags())
	}
}

func TestProvablyNeverTrue(t *testing.T) {
	self := mustAd(t, `[ Memory = 2048 ]`)
	other := mustAd(t, `[ Memory = 512 ]`)
	env := classad.DefaultEnv()
	tests := []struct {
		expr string
		want bool
	}{
		{`other.Memory >= self.Memory`, true},  // 512 >= 2048: false
		{`other.Memory >= 100`, false},         // true
		{`other.Gpus >= 1`, true},              // undefined
		{`random(10) < 100`, false},            // impure
		{`5`, false},                           // non-zero number coerces true in &&
		{`0`, true},                            // zero never coerces true
		{`"str"`, true},                        // non-coercible type
		{`time() > 0 && false`, true},          // domination: folds to false, pure
	}
	for _, tc := range tests {
		e, err := classad.ParseExpr(tc.expr)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", tc.expr, err)
		}
		if got := ProvablyNeverTrue(e, self, other, env); got != tc.want {
			t.Errorf("ProvablyNeverTrue(%q) = %v, want %v", tc.expr, got, tc.want)
		}
	}
}

func TestIsCounterpart(t *testing.T) {
	job := mustAd(t, `[ Type = "job" ]`)
	job2 := mustAd(t, `[ Type = "Job" ]`)
	machine := mustAd(t, `[ Type = "machine" ]`)
	untyped := mustAd(t, `[ X = 1 ]`)
	if IsCounterpart(job, job2) {
		t.Error("two jobs (case-folded) are not counterparts")
	}
	if !IsCounterpart(job, machine) {
		t.Error("job and machine are counterparts")
	}
	if !IsCounterpart(job, untyped) {
		t.Error("an untyped ad is a potential counterpart")
	}
	negotiator := mustAd(t, `[ Type = "Negotiator"; Name = "negotiator@pool" ]`)
	if IsCounterpart(machine, negotiator) || IsCounterpart(negotiator, untyped) {
		t.Error("service self-ads never pair for matchmaking")
	}
}
