package analysis

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/classad"
)

// TestBilateralDifferential is the soundness gate for the CAD300
// verdicts: over ≥1000 randomly generated ad pairs, every pair the
// bilateral analyzer declares NeverMatch must be rejected by the
// exhaustive evaluator — under two different environments (clocks and
// random seeds), since the verdict claims independence from both.
// Missed verdicts are fine (the analyzer is deliberately incomplete);
// a single contradicted verdict is a bug.
func TestBilateralDifferential(t *testing.T) {
	const pairs = 1200
	rng := rand.New(rand.NewSource(7))
	envA := classad.FixedEnv(1_000_000, 1)
	envB := classad.FixedEnv(2_000_000, 99)

	verdicts := 0
	for i := 0; i < pairs; i++ {
		left := genAd(rng, "job")
		right := genAd(rng, "machine")
		rep := AnalyzeMatch(left, right, &Options{Env: envA})
		if !rep.NeverMatch {
			continue
		}
		verdicts++
		for _, env := range []*classad.Env{envA, envB} {
			if classad.MatchEnv(left, right, env).Matched {
				t.Fatalf("pair %d: analyzer says NeverMatch but evaluator matched\nleft:  %s\nright: %s\ndiags: %v",
					i, left, right, rep.Diags())
			}
		}
	}
	// The generator is tuned so a healthy share of pairs earn a
	// verdict; if none do, the test is vacuous.
	if verdicts < pairs/20 {
		t.Fatalf("only %d/%d pairs earned a NeverMatch verdict; generator or analyzer degenerated", verdicts, pairs)
	}
	t.Logf("%d/%d pairs proven unmatchable, all confirmed by the evaluator", verdicts, pairs)
}

// genAd builds a random ad: a handful of typed attributes plus a
// constraint of 1–3 conjuncts drawn from shapes that exercise every
// verdict path — numeric bounds (satisfiable and not), references to
// attributes the peer may not define, type clashes (the attribute pool
// mixes int and string values for the same names), impure guards, and
// occasional cycles.
func genAd(rng *rand.Rand, kind string) *classad.Ad {
	ad := classad.NewAd()
	ad.Set("Type", classad.Lit(classad.Str(kind)))
	attrs := []string{"Memory", "Disk", "Mips", "Arch", "Pool"}
	for _, name := range attrs {
		switch rng.Intn(4) {
		case 0: // skip: attribute absent
		case 1:
			ad.Set(name, classad.Lit(classad.Int(int64(rng.Intn(256)))))
		case 2:
			ad.Set(name, classad.Lit(classad.Str(fmt.Sprintf("v%d", rng.Intn(4)))))
		case 3:
			ad.Set(name, classad.Lit(classad.Real(rng.Float64()*100)))
		}
	}
	if rng.Intn(8) == 0 { // occasional reference cycle
		ad.Set("CycA", classad.Attr("CycB"))
		ad.Set("CycB", classad.Attr("CycA"))
	}
	n := 1 + rng.Intn(3)
	constraint := genConjunct(rng, attrs)
	for i := 1; i < n; i++ {
		constraint = classad.NewBinary(classad.OpAnd, constraint, genConjunct(rng, attrs))
	}
	ad.Set("Constraint", constraint)
	if rng.Intn(2) == 0 {
		ad.Set("Rank", classad.OtherAttr(attrs[rng.Intn(len(attrs))]))
	}
	return ad
}

func genConjunct(rng *rand.Rand, attrs []string) classad.Expr {
	name := attrs[rng.Intn(len(attrs))]
	ref := classad.OtherAttr(name)
	ops := []classad.Op{classad.OpLt, classad.OpLe, classad.OpGt,
		classad.OpGe, classad.OpEq, classad.OpNe}
	op := ops[rng.Intn(len(ops))]
	switch rng.Intn(8) {
	case 0: // numeric bound, often unmeetable
		return classad.NewBinary(op, ref, classad.Lit(classad.Int(int64(rng.Intn(512)))))
	case 1: // string equality against the value pool
		return classad.NewBinary(classad.OpEq, ref, classad.Lit(classad.Str(fmt.Sprintf("v%d", rng.Intn(4)))))
	case 2: // reference to an attribute no generator ever emits
		return classad.NewBinary(op, classad.OtherAttr("NoSuchAttr"),
			classad.Lit(classad.Int(1)))
	case 3: // impure guard: must never earn a verdict on its own
		return classad.NewBinary(classad.OpGt,
			classad.NewCall("random", classad.Lit(classad.Int(100))),
			classad.Lit(classad.Int(int64(rng.Intn(120)))))
	case 4: // self vs other bound
		return classad.NewBinary(op, ref, classad.SelfAttr(name))
	case 5: // literal constant, sometimes plain false
		return classad.Lit(classad.Bool(rng.Intn(3) != 0))
	case 6: // cycle reference (undefined unless the cycle was emitted)
		return classad.NewBinary(classad.OpOr, classad.Attr("CycA"),
			classad.NewBinary(op, ref, classad.Lit(classad.Int(int64(rng.Intn(256))))))
	default: // unqualified reference: self-then-other resolution
		return classad.NewBinary(op, classad.Attr(name),
			classad.Lit(classad.Int(int64(rng.Intn(256)))))
	}
}
