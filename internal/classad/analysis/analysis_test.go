package analysis

import (
	"strings"
	"testing"

	"repro/internal/classad"
)

func lint(t *testing.T, src string) []Diagnostic {
	t.Helper()
	ad, err := classad.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return AnalyzeAd(ad, nil)
}

func codes(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Code
	}
	return out
}

func hasCode(diags []Diagnostic, code string) bool {
	for _, d := range diags {
		if d.Code == code {
			return true
		}
	}
	return false
}

// TestFigureAdsAreClean: the paper's own Figure 1 and Figure 2 ads
// must produce zero diagnostics — the analyzer earns no false
// positives on the reference workload.
func TestFigureAdsAreClean(t *testing.T) {
	for _, src := range []string{classad.Figure1Source, classad.Figure2Source} {
		if diags := lint(t, src); len(diags) != 0 {
			t.Errorf("figure ad flagged:\n%v", diags)
		}
	}
}

// TestStringNumberComparison: §3.1's strict comparison — a string
// against a number is error, never a match.
func TestStringNumberComparison(t *testing.T) {
	diags := lint(t, `[ Memory = 64; Constraint = Memory > "lots" ]`)
	if !hasCode(diags, CodeTypeConflict) {
		t.Fatalf("no CAD001 in %v", codes(diags))
	}
	if !HasErrors(diags) {
		t.Error("type conflict not an error")
	}
}

// TestRelationalBooleansAreError: §3.1 gives booleans equality but no
// order.
func TestRelationalBooleansAreError(t *testing.T) {
	if diags := lint(t, `[ A = true; B = false; Bad = A >= B ]`); !hasCode(diags, CodeTypeConflict) {
		t.Errorf("A >= B not flagged: %v", codes(diags))
	}
	// Equality of booleans is fine.
	if diags := lint(t, `[ A = true; B = false; Ok = A == B ]`); hasCode(diags, CodeTypeConflict) {
		t.Errorf("A == B flagged: %v", diags)
	}
	// Bool coerces against numbers (Figure 1's member(...) * 10).
	if diags := lint(t, `[ R = member(other.Owner, {"a"}) * 10 > 5 ]`); len(diags) != 0 {
		t.Errorf("bool*int coercion flagged: %v", diags)
	}
}

// TestUnknownBuiltinAndArity covers CAD002/CAD003, including the
// did-you-mean suggestion against the builtin table.
func TestUnknownBuiltinAndArity(t *testing.T) {
	diags := lint(t, `[ A = membr(1, {1}); B = strcmp("a") ]`)
	if !hasCode(diags, CodeUnknownBuiltin) || !hasCode(diags, CodeBadArity) {
		t.Fatalf("missing codes in %v", codes(diags))
	}
	for _, d := range diags {
		if d.Code == CodeUnknownBuiltin && !strings.Contains(d.Message, `"member"`) {
			t.Errorf("no did-you-mean for membr: %s", d.Message)
		}
	}
}

// TestSelfNeverFallsBack: §3.1 scoping — self.X does not consult the
// other ad, so a missing attribute is provably undefined; an
// unqualified X may still bind at match time and is not flagged when
// well-known.
func TestSelfNeverFallsBack(t *testing.T) {
	diags := lint(t, `[ Memory = 64; R = self.Memroy ]`)
	if !hasCode(diags, CodeSelfNeverBinds) {
		t.Fatalf("self.Memroy not flagged: %v", codes(diags))
	}
	var found bool
	for _, d := range diags {
		if d.Code == CodeSelfNeverBinds && strings.Contains(d.Message, `"Memory"`) {
			found = true
		}
	}
	if !found {
		t.Error("no did-you-mean suggestion for self.Memroy")
	}
	// Unqualified well-known names resolve against the vocabulary.
	if diags := lint(t, `[ Constraint = KFlops > 1000 ]`); len(diags) != 0 {
		t.Errorf("well-known unqualified ref flagged: %v", diags)
	}
}

// TestUnknownAttrSuggestion covers CAD102 on other-scoped and
// unqualified references outside the vocabulary.
func TestUnknownAttrSuggestion(t *testing.T) {
	diags := lint(t, `[ Constraint = other.Memroy >= 32 ]`)
	if !hasCode(diags, CodeUnknownAttr) {
		t.Fatalf("other.Memroy not flagged: %v", codes(diags))
	}
	if d := diags[0]; !strings.Contains(d.Message, `"Memory"`) {
		t.Errorf("no suggestion: %s", d.Message)
	}
	// The ad's own attributes extend the candidate set.
	diags = lint(t, `[ HasGPU = true; Constraint = other.HasGPUs ]`)
	if len(diags) == 0 || !strings.Contains(diags[0].Message, `"HasGPU"`) {
		t.Errorf("ad-local suggestion missing: %v", diags)
	}
}

// TestProbedRefsNotFlagged: references guarded by isUndefined/isError
// are deliberate probes, not typos.
func TestProbedRefsNotFlagged(t *testing.T) {
	src := `[ Constraint = isUndefined(other.CkptServer) || other.CkptServer == "c2" ]`
	diags := lint(t, src)
	// Only the unguarded use may warn.
	for _, d := range diags {
		if d.Code == CodeUnknownAttr {
			return
		}
	}
	t.Logf("diagnostics: %v", diags) // zero or one warning both acceptable
}

// TestVocabularyOption extends the well-known set.
func TestVocabularyOption(t *testing.T) {
	ad := classad.MustParse(`[ Constraint = other.SiteLocal > 1 ]`)
	if diags := AnalyzeAd(ad, nil); !hasCode(diags, CodeUnknownAttr) {
		t.Fatalf("SiteLocal not flagged without vocabulary: %v", diags)
	}
	opts := &Options{Vocabulary: []string{"SiteLocal"}}
	if diags := AnalyzeAd(ad, opts); len(diags) != 0 {
		t.Errorf("SiteLocal flagged despite vocabulary: %v", diags)
	}
}

// TestIntervalConflict is the canonical unsatisfiable pair, plus the
// boundary case where the interval collapses to a point.
func TestIntervalConflict(t *testing.T) {
	diags := lint(t, `[ Constraint = other.Memory > 64 && other.Memory < 32 ]`)
	if !hasCode(diags, CodeUnsatisfiable) {
		t.Fatalf("no CAD201: %v", codes(diags))
	}
	d := Unsatisfiable(diags)[0]
	if !strings.Contains(d.Message, "other.Memory > 64") || !strings.Contains(d.Message, "other.Memory < 32") {
		t.Errorf("conjuncts not named: %s", d.Message)
	}
	// x >= 64 && x <= 64 is satisfiable (exactly 64); strict on one
	// side is not.
	if diags := lint(t, `[ Constraint = other.Memory >= 64 && other.Memory <= 64 ]`); hasCode(diags, CodeUnsatisfiable) {
		t.Errorf("point interval flagged: %v", diags)
	}
	if diags := lint(t, `[ Constraint = other.Memory > 64 && other.Memory <= 64 ]`); !hasCode(diags, CodeUnsatisfiable) {
		t.Errorf("empty half-open interval not flagged: %v", diags)
	}
	// Mixed spellings of the same attribute share one interval; self
	// bindings fold before the bounds are read.
	diags = lint(t, `[ Memory = 31; Constraint = other.Memory >= Memory && Memory > other.Memory ]`)
	if !hasCode(diags, CodeUnsatisfiable) {
		t.Errorf("folded bound conflict not flagged: %v", codes(diags))
	}
}

// TestStringEqualityConflict: two equality demands on one attribute.
func TestStringEqualityConflict(t *testing.T) {
	diags := lint(t, `[ Constraint = Arch == "INTEL" && Arch == "SPARC" ]`)
	if !hasCode(diags, CodeUnsatisfiable) {
		t.Fatalf("no CAD201: %v", codes(diags))
	}
	// Same value twice (case-insensitive strings, §3.1) is fine.
	if diags := lint(t, `[ Constraint = Arch == "INTEL" && Arch == "intel" ]`); hasCode(diags, CodeUnsatisfiable) {
		t.Errorf("consistent equalities flagged: %v", diags)
	}
}

// TestConstantConjuncts: literal-folding verdicts — undefined and
// error conjuncts can never be true; self-satisfied conjuncts are
// tautologies.
func TestConstantConjuncts(t *testing.T) {
	for _, src := range []string{
		`[ Constraint = undefined && other.Memory > 1 ]`,
		`[ Constraint = error && other.Memory > 1 ]`,
		`[ Memory = 16; Constraint = Memory > 32 ]`,
	} {
		if diags := lint(t, src); !hasCode(diags, CodeUnsatisfiable) {
			t.Errorf("%s: no CAD201 in %v", src, codes(diags))
		}
	}
	diags := lint(t, `[ Memory = 64; Constraint = Memory > 32 && other.Type == "Job" ]`)
	if !hasCode(diags, CodeTautology) {
		t.Errorf("tautology not flagged: %v", codes(diags))
	}
	if HasErrors(diags) {
		t.Errorf("tautology should not be an error: %v", diags)
	}
}

// TestConstantRank covers CAD203, including constants hidden behind
// self-references.
func TestConstantRank(t *testing.T) {
	if diags := lint(t, `[ Rank = 0 ]`); !hasCode(diags, CodeConstantRank) {
		t.Errorf("Rank = 0 not flagged: %v", codes(diags))
	}
	if diags := lint(t, `[ Weight = 10; Rank = Weight * 2 ]`); !hasCode(diags, CodeConstantRank) {
		t.Errorf("folded constant Rank not flagged: %v", codes(diags))
	}
	if diags := lint(t, `[ Rank = other.Mips ]`); hasCode(diags, CodeConstantRank) {
		t.Errorf("other-dependent Rank flagged: %v", codes(diags))
	}
}

// TestDiagnosticPositions: findings carry the attribute's source
// position, and sort by it.
func TestDiagnosticPositions(t *testing.T) {
	diags := lint(t, "[\n  Rank = 1;\n  Constraint = other.Memory > 9 && other.Memory < 3\n]")
	if len(diags) < 2 {
		t.Fatalf("want 2 diagnostics, got %v", diags)
	}
	if diags[0].Code != CodeConstantRank || diags[0].Line != 2 || diags[0].Col != 3 {
		t.Errorf("first diagnostic = %+v, want CAD203 at 2:3", diags[0])
	}
	if diags[1].Code != CodeUnsatisfiable || diags[1].Line != 3 {
		t.Errorf("second diagnostic = %+v, want CAD201 at line 3", diags[1])
	}
	if s := diags[0].String(); !strings.HasPrefix(s, "2:3: CAD203 warning: ") {
		t.Errorf("String() = %q", s)
	}
}

// TestNestedAdScoping: attributes of a nested ad literal resolve in
// the nested scope first, then the enclosing ad.
func TestNestedAdScoping(t *testing.T) {
	src := `[ Memory = 64; Inner = [ Cpus = 4; Sum = Cpus + Memory ] ]`
	if diags := lint(t, src); hasCode(diags, CodeUnknownAttr) {
		t.Errorf("nested scope resolution flagged: %v", diags)
	}
}

// TestNilAndEmpty: degenerate inputs.
func TestNilAndEmpty(t *testing.T) {
	if diags := AnalyzeAd(nil, nil); diags != nil {
		t.Errorf("nil ad: %v", diags)
	}
	if diags := AnalyzeAd(classad.NewAd(), nil); len(diags) != 0 {
		t.Errorf("empty ad: %v", diags)
	}
}

// TestSeverityString pins the rendered severities.
func TestSeverityString(t *testing.T) {
	if Info.String() != "info" || Warning.String() != "warning" || Error.String() != "error" {
		t.Error("severity names changed")
	}
}
