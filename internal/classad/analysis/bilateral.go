package analysis

// Bilateral analysis: the cross-ad half of the static analyzer.
//
// Every pass in this package so far reasons about ONE ad; the question
// at the heart of the paper's §3.2 Constraint/Constraint match is
// bilateral — can a *pair* of ads ever satisfy each other? For a
// concrete pair, the evaluator's three-valued semantics make almost
// everything decidable: every attribute reference resolves (to a
// definition or to a deterministic undefined), so the only genuinely
// open terms are the impure builtins (time(), random(), ...) whose
// value changes between negotiation cycles. The analyzer therefore
// substitutes the self/other bindings both ways, partially evaluates
// the conjunction of both Constraints, and issues a verdict only for
// conjuncts whose value is provably fixed:
//
//   - CAD301: a conjunct of one side's constraint evaluates to a
//     non-true value against the peer, whatever the time or random
//     stream — the pair can never match (mutual-constraint
//     contradiction when both sides carry one);
//   - CAD302: a comparison tests a peer attribute whose inferred type
//     set makes a boolean result impossible (e.g. the request compares
//     other.Memory >= 512 against an ad advertising Memory = "64") —
//     a cross-ad type clash that can only yield undefined/error;
//   - CAD303: a Rank expression that is provably undefined or error
//     against the peer, so ranking silently degenerates to 0.
//
// The same machinery scales from one pair to a corpus (files or a live
// collector): schema.go infers the pool's attribute vocabulary with
// types and value ranges, and AuditCorpus runs the pair analysis over
// every request/offer combination to find "dead ads" no counterpart
// can match (CAD305) and attributes advertised with conflicting types
// (CAD304) — the mis-typed/mis-spelled attributes that silently starve
// jobs in production pools.
//
// Soundness: every CAD301/CAD302 verdict implies
// classad.Match(left, right).Matched == false under every environment.
// A randomized differential test pins this against the evaluator.

import (
	"fmt"

	"repro/internal/classad"
)

// Bilateral diagnostic codes. The CAD30x range is cross-ad analysis;
// CAD4xx (index-friendliness, emitted by matchmaker.LintIndex) is
// declared here so the whole diagnostic vocabulary lives in one
// package.
const (
	CodePairContradiction  = "CAD301" // conjunct provably never true against the peer
	CodeCrossTypeClash     = "CAD302" // comparison with peer attribute cannot yield a boolean
	CodePairRankUndefined  = "CAD303" // Rank provably undefined/error against the peer
	CodeSchemaTypeConflict = "CAD304" // attribute advertised with conflicting types across the corpus
	CodeDeadAd             = "CAD305" // no counterpart in the corpus can match the ad
	CodeUnindexable        = "CAD401" // constraint has no indexable conjunct: full scans
	CodeIndexUnsat         = "CAD402" // constraint compares against literal undefined/error
)

// maxPurityDepth bounds the purity walk the same way maxEvalDepth
// bounds evaluation; past it the checker conservatively answers
// "impure" and no verdict is issued.
const maxPurityDepth = 512

// pairKey identifies an (ad, attribute) pair on the purity walk's
// path, for cycle detection.
type pairKey struct {
	ad   *classad.Ad
	name string
}

// purityChecker decides whether an expression's value against a
// concrete pair of ads is fixed: the same under every environment. A
// pure expression contains no reachable impure builtin — every
// attribute reference resolves to a definition in one of the two ads
// (or to a deterministic undefined), and reference cycles evaluate to
// a deterministic error.
type purityChecker struct {
	depth    int
	visiting map[pairKey]bool
}

// pure walks e as it would evaluate with self as the lexical scope and
// other as the match candidate, mirroring the evaluator's resolution
// rules (self.X never consults the peer; unqualified names try self
// then other; scopes flip when a definition in the peer is entered).
func (pc *purityChecker) pure(e classad.Expr, self, other *classad.Ad) bool {
	if pc.depth++; pc.depth > maxPurityDepth {
		pc.depth--
		return false
	}
	defer func() { pc.depth-- }()
	info := classad.Inspect(e)
	switch info.Kind {
	case classad.KindCall:
		if classad.ImpureBuiltin(info.Name) {
			return false
		}
	case classad.KindAttrRef:
		switch info.Scope {
		case classad.ScopeSelf:
			return pc.pureDef(self, other, info.Name)
		case classad.ScopeOther:
			return pc.pureDef(other, self, info.Name)
		default:
			if _, ok := self.Lookup(info.Name); ok {
				return pc.pureDef(self, other, info.Name)
			}
			return pc.pureDef(other, self, info.Name)
		}
	case classad.KindAd:
		// A nested ad literal is a value as-is; its attributes evaluate
		// on selection with the nested ad as the only lexical scope and
		// the same match candidate.
		for _, n := range info.Ad.Names() {
			def, _ := info.Ad.Lookup(n)
			if !pc.pure(def, info.Ad, other) {
				return false
			}
		}
		return true
	}
	for _, c := range info.Args {
		if !pc.pure(c, self, other) {
			return false
		}
	}
	return true
}

// pureDef checks the definition of name in ad, evaluated with ad as
// self and peer as the candidate. A missing definition is pure (it
// evaluates to a deterministic undefined), and a definition already on
// the walk's path is a reference cycle, which the evaluator detects
// and turns into a deterministic error.
func (pc *purityChecker) pureDef(ad, peer *classad.Ad, name string) bool {
	def, ok := ad.Lookup(name)
	if !ok {
		return true
	}
	key := pairKey{ad, classad.Fold(name)}
	if pc.visiting == nil {
		pc.visiting = make(map[pairKey]bool)
	}
	if pc.visiting[key] {
		return true
	}
	pc.visiting[key] = true
	pure := pc.pure(def, ad, peer)
	delete(pc.visiting, key)
	return pure
}

// neverTruthy reports whether a conjunct with value v rules the whole
// constraint out: a conjunction is true only when every conjunct
// passes the boolean coercion (booleans as themselves, non-zero
// numbers as true); undefined, error, false, zero, and every
// non-coercible type can never contribute a match.
func neverTruthy(v classad.Value) bool {
	truth, coerces := truthiness(v)
	return !coerces || !truth
}

// ProvablyNeverTrue reports whether e — evaluated with self bound to
// self and other bound to other, as a Constraint conjunct is during
// matching — is provably never true: after partial evaluation against
// self (an exact rewriting, so domination laws like `x && false` fold
// even around impure terms) its value is fixed (no reachable impure
// builtin) and fails the boolean coercion. matchmaker.Analyze uses it
// for per-clause static verdicts against each offer.
func ProvablyNeverTrue(e classad.Expr, self, other *classad.Ad, env *classad.Env) bool {
	if e == nil {
		return false
	}
	if self == nil {
		self = classad.NewAd()
	}
	residual := classad.PartialEval(e, self, env)
	pc := &purityChecker{}
	if !pc.pure(residual, self, other) {
		return false
	}
	return neverTruthy(classad.EvalExprAgainst(residual, self, other, env))
}

// PairReport is the result of a bilateral analysis of two ads.
type PairReport struct {
	// LeftDiags are findings about the left ad's Constraint/Rank
	// evaluated against the right ad; RightDiags the reverse.
	// Positions in each slice refer to the ad the findings concern.
	LeftDiags, RightDiags []Diagnostic
	// NeverMatch is true when an error-severity finding proves the two
	// ads can never match, under any environment.
	NeverMatch bool
}

// Diags returns both sides' findings, left first.
func (r *PairReport) Diags() []Diagnostic {
	return append(append([]Diagnostic(nil), r.LeftDiags...), r.RightDiags...)
}

// AnalyzeMatch runs the bilateral analysis over a pair of ads: each
// side's constraint is checked conjunct by conjunct against the other
// (CAD301/CAD302), and each side's Rank is checked for provable
// undefinedness against its peer (CAD303). A nil ad yields an empty
// report.
func AnalyzeMatch(left, right *classad.Ad, opts *Options) *PairReport {
	rep := &PairReport{}
	if left == nil || right == nil {
		return rep
	}
	if opts == nil {
		opts = &Options{}
	}
	env := opts.Env
	if env == nil {
		env = classad.DefaultEnv()
	}
	rep.LeftDiags = checkAgainst(left, right, env)
	rep.RightDiags = checkAgainst(right, left, env)
	for _, d := range rep.Diags() {
		if d.Severity >= Error {
			rep.NeverMatch = true
		}
	}
	return rep
}

// checkAgainst analyzes self's constraint and Rank against a concrete
// peer, returning findings positioned in self.
func checkAgainst(self, peer *classad.Ad, env *classad.Env) []Diagnostic {
	var diags []Diagnostic
	peerName := displayName(peer)
	report := func(code string, sev Severity, attr string, expr classad.Expr, format string, args ...any) {
		d := Diagnostic{Code: code, Severity: sev, Attr: attr,
			Message: fmt.Sprintf(format, args...)}
		if expr != nil {
			d.Expr = expr.String()
		}
		if p, ok := self.AttrPos(attr); ok {
			d.Line, d.Col = p.Line, p.Col
		}
		diags = append(diags, d)
	}

	cattr := classad.AttrRequirements
	if _, ok := self.Lookup(classad.AttrConstraint); ok {
		cattr = classad.AttrConstraint
	}
	if ce, ok := classad.ConstraintOf(self); ok {
		for _, conj := range classad.SplitConjuncts(ce) {
			residual := classad.PartialEval(conj, self, env)
			if attr, litv, resTS, peerTS, clash := crossTypeClash(residual, self, peer, env); clash {
				report(CodeCrossTypeClash, Error, cattr, conj,
					"conjunct %q can never be true: it compares %s of %s (which is %s) with %s — the comparison can only yield %s, so the pair can never match",
					conj.String(), attr, peerName, peerTS.describe(), litv.String(), resTS.describe())
				continue
			}
			pc := &purityChecker{}
			if !pc.pure(residual, self, peer) {
				continue
			}
			if v := classad.EvalExprAgainst(residual, self, peer, env); neverTruthy(v) {
				report(CodePairContradiction, Error, cattr, conj,
					"conjunct %q evaluates to %s against %s, whatever the environment: the pair can never match",
					conj.String(), describeValue(v), peerName)
			}
		}
	}
	if re, ok := self.Lookup(classad.AttrRank); ok {
		pc := &purityChecker{}
		if pc.pure(re, self, peer) {
			if v := classad.EvalExprAgainst(re, self, peer, env); v.IsUndefined() || v.IsError() {
				report(CodePairRankUndefined, Warning, classad.AttrRank, re,
					"Rank evaluates to %s against %s: this pair is ranked 0, so candidate ordering falls back to arbitrary tie-breaks",
					describeValue(v), peerName)
			}
		}
	}
	return diags
}

// crossTypeClash recognizes a residual conjunct of the form
// `ref OP literal` (either operand order) where ref is an attribute of
// the peer — explicitly other-scoped, or unqualified and not supplied
// by self — and decides from the peer definition's inferred type set
// whether the comparison can ever produce a boolean. This proof does
// not need purity: type inference already accounts for impure builtins
// by their result types.
func crossTypeClash(residual classad.Expr, self, peer *classad.Ad, env *classad.Env) (attr string, lit classad.Value, res, peerTS typeSet, clash bool) {
	info := classad.Inspect(residual)
	if info.Kind != classad.KindBinary {
		return "", classad.Undef(), 0, 0, false
	}
	switch info.Op {
	case classad.OpLt, classad.OpLe, classad.OpGt, classad.OpGe,
		classad.OpEq, classad.OpNe:
	default:
		return "", classad.Undef(), 0, 0, false
	}
	l := classad.Inspect(info.Args[0])
	r := classad.Inspect(info.Args[1])
	ref, litInfo, refLeft := l, r, true
	if l.Kind == classad.KindLiteral && r.Kind == classad.KindAttrRef {
		ref, litInfo, refLeft = r, l, false
	} else if !(l.Kind == classad.KindAttrRef && r.Kind == classad.KindLiteral) {
		return "", classad.Undef(), 0, 0, false
	}
	switch ref.Scope {
	case classad.ScopeOther:
	case classad.ScopeNone:
		// An unqualified name the request defines resolves in the
		// request at match time; it says nothing about the peer.
		if _, bound := self.Lookup(ref.Name); bound {
			return "", classad.Undef(), 0, 0, false
		}
	default:
		return "", classad.Undef(), 0, 0, false
	}
	def, ok := peer.Lookup(ref.Name)
	if !ok {
		// Missing peer attribute: a deterministic undefined. CAD301's
		// pure-evaluation path reports it with a clearer message.
		return "", classad.Undef(), 0, 0, false
	}
	pa := &analyzer{ad: peer, env: env, vocab: buildVocab(nil)}
	peerTS = pa.inferAttr(ref.Name, def, map[string]bool{})
	litTS := bit(litInfo.Value.Type())
	if refLeft {
		res = compareResult(info.Op, peerTS, litTS)
	} else {
		res = compareResult(info.Op, litTS, peerTS)
	}
	if res&tBool != 0 {
		return "", classad.Undef(), 0, 0, false
	}
	return ref.Name, litInfo.Value, res, peerTS, true
}

// describeValue renders a value for a diagnostic message: the bare
// word for undefined/error, the unparsed literal otherwise.
func describeValue(v classad.Value) string {
	switch {
	case v.IsUndefined():
		return "undefined"
	case v.IsError():
		return "error"
	default:
		return v.String()
	}
}

// displayName names an ad for diagnostics: its Name attribute when it
// evaluates to a non-empty string, "the peer ad" otherwise.
func displayName(ad *classad.Ad) string {
	if s, ok := ad.Eval(classad.AttrName).StringVal(); ok && s != "" {
		return fmt.Sprintf("%q", s)
	}
	return "the peer ad"
}

// serviceAdTypes are infrastructure self-ads — the negotiator's own
// ad, a collector's, a scheduler's. They live in the collector for
// discovery and monitoring, not for matchmaking, so pairing a machine
// against one (and declaring the machine dead when the pool is
// otherwise empty) would be noise, not analysis.
var serviceAdTypes = map[string]bool{
	"negotiator": true,
	"collector":  true,
	"scheduler":  true,
	"daemon":     true,
}

// IsCounterpart reports whether two corpus ads are candidates for
// matching against each other: neither is a service self-ad, and they
// advertise different Types (or at least one of them does not say).
// The matchmaking protocol pairs requests with offers, never two ads
// of the same kind.
func IsCounterpart(a, b *classad.Ad) bool {
	ta, aok := a.Eval(classad.AttrType).StringVal()
	tb, bok := b.Eval(classad.AttrType).StringVal()
	if aok && serviceAdTypes[classad.Fold(ta)] {
		return false
	}
	if bok && serviceAdTypes[classad.Fold(tb)] {
		return false
	}
	if aok && bok {
		return !equalFoldStr(ta, tb)
	}
	return true
}

// CorpusAd pairs an ad with the origin it was read from (a file path
// or a collector's ad name), for attribution in audit findings.
type CorpusAd struct {
	Origin string
	Ad     *classad.Ad
}

// AuditFinding is one corpus-level finding, attributed to an ad.
type AuditFinding struct {
	Origin string
	Diag   Diagnostic
}

func (f AuditFinding) String() string {
	return fmt.Sprintf("%s: %s", f.Origin, f.Diag)
}

// AuditCorpus treats the ads as one pool and reports what no single-ad
// pass can see: attributes advertised with conflicting types across
// the corpus (CAD304), and dead ads — ads the bilateral analysis
// proves can never match ANY counterpart currently in the corpus
// (CAD305). Dead-ad messages carry schema hints ("pool's Memory
// ranges 32..256") when a constraint bound falls outside what the
// corpus advertises. The returned findings are grouped by origin in
// corpus order.
func AuditCorpus(corpus []CorpusAd, opts *Options) []AuditFinding {
	if opts == nil {
		opts = &Options{}
	}
	schema := InferSchema(corpus)
	var out []AuditFinding
	for _, f := range schema.TypeConflicts() {
		out = append(out, f)
	}

	// Pairwise verdicts, computed once per unordered pair.
	n := len(corpus)
	never := make([][]bool, n)
	for i := range never {
		never[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !IsCounterpart(corpus[i].Ad, corpus[j].Ad) {
				continue
			}
			rep := AnalyzeMatch(corpus[i].Ad, corpus[j].Ad, opts)
			never[i][j] = rep.NeverMatch
			never[j][i] = rep.NeverMatch
		}
	}
	for i := 0; i < n; i++ {
		counterparts, dead := 0, 0
		for j := 0; j < n; j++ {
			if j == i || !IsCounterpart(corpus[i].Ad, corpus[j].Ad) {
				continue
			}
			counterparts++
			if never[i][j] {
				dead++
			}
		}
		if counterparts == 0 || dead < counterparts {
			continue
		}
		msg := fmt.Sprintf("dead ad: none of the %d counterpart ad(s) in the corpus can match it", counterparts)
		if hints := schema.boundHints(corpus[i].Ad, opts.Env); hints != "" {
			msg += " (" + hints + ")"
		}
		d := Diagnostic{Code: CodeDeadAd, Severity: Warning, Message: msg}
		if ce, ok := classad.ConstraintOf(corpus[i].Ad); ok {
			d.Expr = ce.String()
		}
		if _, ok := corpus[i].Ad.Lookup(classad.AttrConstraint); ok {
			d.Attr = classad.AttrConstraint
		} else if _, ok := corpus[i].Ad.Lookup(classad.AttrRequirements); ok {
			d.Attr = classad.AttrRequirements
		}
		if p, ok := corpus[i].Ad.AttrPos(d.Attr); ok {
			d.Line, d.Col = p.Line, p.Col
		}
		out = append(out, AuditFinding{Origin: corpus[i].Origin, Diag: d})
	}
	return out
}
