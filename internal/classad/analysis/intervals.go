package analysis

import (
	"math"

	"repro/internal/classad"
)

// The constraint pass partially evaluates each top-level conjunct of
// the ad's Constraint/Requirements against the ad itself — exactly the
// folding a matchmaker could do before ever seeing a candidate — and
// then reasons about what is left:
//
//   - a conjunct that folds to a constant is either a tautology
//     (CAD202: it constrains nothing) or, if false, undefined or
//     error, can never be true, so the whole conjunction is
//     unsatisfiable (CAD201; §3.1: a constraint matches only when it
//     evaluates to true);
//   - residual numeric bounds on the same attribute of the matched ad
//     are intersected as intervals; an empty intersection (Memory > 64
//     && Memory < 32) is unsatisfiable no matter what the pool
//     advertises (CAD201), as are two equality tests demanding
//     different strings;
//   - a Rank that folds to a constant cannot order candidates, so
//     matching degenerates to arbitrary tie-breaks (CAD203).

// interval is a numeric range with open/closed ends.
type interval struct {
	lo, hi          float64
	loStrict        bool
	hiStrict        bool
	loSrc, hiSrc    string // conjunct sources that set each bound
	reported        bool
	eqStr, eqStrSrc string // string equality requirement, if any
	hasEqStr        bool
}

func newInterval() *interval {
	return &interval{lo: math.Inf(-1), hi: math.Inf(1)}
}

func (iv *interval) empty() bool {
	if iv.lo > iv.hi {
		return true
	}
	return iv.lo == iv.hi && (iv.loStrict || iv.hiStrict)
}

// checkConstraint runs the satisfiability pass.
func (a *analyzer) checkConstraint() {
	if ce, ok := classad.ConstraintOf(a.ad); ok {
		a.checkConjuncts(a.constraintAttr(), ce)
	}
	if re, ok := a.ad.Lookup(classad.AttrRank); ok {
		res := classad.PartialEval(re, a.ad, a.env)
		if info := classad.Inspect(res); info.Kind == classad.KindLiteral {
			a.report(CodeConstantRank, Warning, classad.AttrRank, re,
				"Rank is the constant %s: it cannot distinguish one candidate from another, so matching falls back to arbitrary tie-breaks",
				res.String())
		}
	}
}

// constraintAttr returns the spelling under which the ad defines its
// constraint, for position lookup.
func (a *analyzer) constraintAttr() string {
	if _, ok := a.ad.Lookup(classad.AttrConstraint); ok {
		return classad.AttrConstraint
	}
	return classad.AttrRequirements
}

func (a *analyzer) checkConjuncts(attr string, ce classad.Expr) {
	intervals := map[string]*interval{}
	for _, conj := range classad.SplitConjuncts(ce) {
		res := classad.PartialEval(conj, a.ad, a.env)
		info := classad.Inspect(res)
		if info.Kind == classad.KindLiteral {
			a.reportConstant(attr, conj, info.Value)
			continue
		}
		key, disp, op, num, str, ok := boundShape(res, info)
		if !ok {
			continue
		}
		iv := intervals[key]
		if iv == nil {
			iv = newInterval()
			intervals[key] = iv
		}
		if iv.reported {
			continue
		}
		src := res.String()
		if str != "" {
			if iv.hasEqStr && !equalFoldStr(iv.eqStr, str) {
				a.report(CodeUnsatisfiable, Error, attr, conj,
					"conjuncts %q and %q are unsatisfiable together: %s cannot equal both",
					iv.eqStrSrc, src, disp)
				iv.reported = true
				continue
			}
			iv.eqStr, iv.eqStrSrc, iv.hasEqStr = str, src, true
			continue
		}
		prevLo, prevHi := iv.loSrc, iv.hiSrc
		applyBound(iv, op, num, src)
		if iv.empty() {
			other := prevLo
			if iv.hiSrc != src {
				other = iv.hiSrc
			} else if iv.loSrc != src {
				other = iv.loSrc
			}
			if other == "" {
				other = prevHi
			}
			a.report(CodeUnsatisfiable, Error, attr, conj,
				"conjuncts %q and %q are unsatisfiable together: no value of %s can satisfy both",
				other, src, disp)
			iv.reported = true
		}
	}
}

// reportConstant classifies a conjunct that folded to a literal.
func (a *analyzer) reportConstant(attr string, conj classad.Expr, v classad.Value) {
	src := conj.String()
	switch {
	case v.IsUndefined():
		a.report(CodeUnsatisfiable, Error, attr, conj,
			"conjunct %q always evaluates to undefined, which is never true: the constraint can never be satisfied", src)
	case v.IsError():
		a.report(CodeUnsatisfiable, Error, attr, conj,
			"conjunct %q always evaluates to error, which is never true: the constraint can never be satisfied", src)
	default:
		// Constraints pass through a boolean coercion: numbers count
		// as booleans (non-zero is true), anything else is an error.
		truth, coerces := truthiness(v)
		switch {
		case !coerces:
			a.report(CodeUnsatisfiable, Error, attr, conj,
				"conjunct %q always evaluates to %s, which is never true in a boolean context: the constraint can never be satisfied",
				src, v.Type())
		case truth:
			a.report(CodeTautology, Warning, attr, conj,
				"conjunct %q is always true: it does not constrain the match", src)
		default:
			a.report(CodeUnsatisfiable, Error, attr, conj,
				"conjunct %q is always false: the constraint can never be satisfied", src)
		}
	}
}

// truthiness mirrors the evaluator's boolean coercion for constants.
func truthiness(v classad.Value) (truth, coerces bool) {
	switch v.Type() {
	case classad.BooleanType:
		return v.IsTrue(), true
	case classad.IntegerType, classad.RealType:
		n, _ := v.NumberVal()
		return n != 0, true
	default:
		return false, false
	}
}

// boundShape recognizes residual conjuncts of the form attr OP literal
// (or literal OP attr), where attr refers to the matched ad — an
// unqualified reference that did not bind locally, or an explicit
// other.X. It returns the folded attribute name, the normalized
// operator with the attribute on the left, and the numeric or string
// bound.
func boundShape(res classad.Expr, info classad.ExprInfo) (key, disp string, op classad.Op, num float64, str string, ok bool) {
	if info.Kind != classad.KindBinary {
		return "", "", 0, 0, "", false
	}
	switch info.Op {
	case classad.OpLt, classad.OpLe, classad.OpGt, classad.OpGe, classad.OpEq:
	default:
		return "", "", 0, 0, "", false
	}
	l := classad.Inspect(info.Args[0])
	r := classad.Inspect(info.Args[1])
	op = info.Op
	ref, lit := l, r
	if l.Kind == classad.KindLiteral && r.Kind == classad.KindAttrRef {
		ref, lit = r, l
		op = flip(op)
	} else if !(l.Kind == classad.KindAttrRef && r.Kind == classad.KindLiteral) {
		return "", "", 0, 0, "", false
	}
	if ref.Scope == classad.ScopeSelf {
		// A surviving self.X is an unbound local reference (always
		// undefined); CAD101 covers it.
		return "", "", 0, 0, "", false
	}
	if s, isStr := lit.Value.StringVal(); isStr {
		if op != classad.OpEq {
			return "", "", 0, 0, "", false
		}
		return classad.Fold(ref.Name), ref.Name, op, 0, s, true
	}
	if lit.Value.Type() != classad.IntegerType && lit.Value.Type() != classad.RealType {
		return "", "", 0, 0, "", false
	}
	n, _ := lit.Value.NumberVal()
	return classad.Fold(ref.Name), ref.Name, op, n, "", true
}

// flip mirrors a comparison for swapped operands: 3 < x  ≡  x > 3.
func flip(op classad.Op) classad.Op {
	switch op {
	case classad.OpLt:
		return classad.OpGt
	case classad.OpLe:
		return classad.OpGe
	case classad.OpGt:
		return classad.OpLt
	case classad.OpGe:
		return classad.OpLe
	}
	return op
}

// applyBound tightens iv with "attr op num".
func applyBound(iv *interval, op classad.Op, num float64, src string) {
	switch op {
	case classad.OpGt:
		if num > iv.lo || (num == iv.lo && !iv.loStrict) {
			iv.lo, iv.loStrict, iv.loSrc = num, true, src
		}
	case classad.OpGe:
		if num > iv.lo {
			iv.lo, iv.loStrict, iv.loSrc = num, false, src
		}
	case classad.OpLt:
		if num < iv.hi || (num == iv.hi && !iv.hiStrict) {
			iv.hi, iv.hiStrict, iv.hiSrc = num, true, src
		}
	case classad.OpLe:
		if num < iv.hi {
			iv.hi, iv.hiStrict, iv.hiSrc = num, false, src
		}
	case classad.OpEq:
		if num > iv.lo {
			iv.lo, iv.loStrict, iv.loSrc = num, false, src
		}
		if num < iv.hi {
			iv.hi, iv.hiStrict, iv.hiSrc = num, false, src
		}
	}
}

func equalFoldStr(a, b string) bool { return classad.Fold(a) == classad.Fold(b) }
