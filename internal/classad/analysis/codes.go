package analysis

// CodeInfo is one row of the diagnostic vocabulary: a stable code, the
// severity it is always reported at, and a one-line summary. The
// DESIGN.md code table is checked against this list by a test, so a
// new code that skips the docs fails `make lint-codes`.
type CodeInfo struct {
	Code     string
	Severity Severity
	Summary  string
}

// AllCodes returns every diagnostic code the analyzers can emit, in
// code order. CAD0xx are expression-level type errors, CAD1xx
// reference resolution, CAD2xx unilateral constraint analysis, CAD3xx
// bilateral (cross-ad) analysis, CAD4xx index friendliness.
func AllCodes() []CodeInfo {
	return []CodeInfo{
		{CodeTypeConflict, Error, "comparison can only yield `undefined`/`error` (type conflict)"},
		{CodeUnknownBuiltin, Error, "call to an unknown builtin (with suggestion)"},
		{CodeBadArity, Error, "builtin called with the wrong number of arguments"},
		{CodeSelfNeverBinds, Warning, "`self.X` can never bind (with did-you-mean)"},
		{CodeUnknownAttr, Warning, "attribute is neither local nor well-known (with did-you-mean)"},
		{CodeUnsatisfiable, Error, "constraint conjunct(s) provably unsatisfiable"},
		{CodeTautology, Warning, "constraint conjunct is a tautology"},
		{CodeConstantRank, Warning, "`Rank` is constant — cannot order candidates"},
		{CodePairContradiction, Error, "conjunct provably never true against the peer ad (any environment)"},
		{CodeCrossTypeClash, Error, "comparison against a peer attribute of a clashing type"},
		{CodePairRankUndefined, Warning, "`Rank` evaluates to `undefined`/`error` against the peer ad"},
		{CodeSchemaTypeConflict, Warning, "attribute's type disagrees across the ad corpus"},
		{CodeDeadAd, Warning, "dead ad: no counterpart in the corpus can match it"},
		{CodeUnindexable, Warning, "no conjunct of the constraint is indexable — full scan every cycle"},
		{CodeIndexUnsat, Error, "conjunct compares against a literal `undefined`/`error` value"},
	}
}
