// Package analysis is a static analyzer for the ClassAd language — the
// checker behind cadlint, csubmit's lint-on-submit warnings and the
// collector's validation counters.
//
// The paper's §5 asks for tooling that can identify "constraints which
// can never be satisfied by the pool". canalyze answers that question
// dynamically, against the live ads of a collector; this package
// answers it statically, from the ad alone. Three passes run over a
// parsed ad:
//
//   - type inference through the classad three-valued logic (CAD001,
//     CAD002, CAD003): comparisons and arithmetic whose operand types
//     guarantee an undefined or error result, unknown builtins, and
//     wrong arity;
//   - reference resolution with full self/other scoping (CAD101,
//     CAD102): self-scoped references that can never bind, and
//     unqualified or other-scoped references outside the advertising
//     protocol's well-known attribute vocabulary, with did-you-mean
//     suggestions;
//   - interval analysis over the numeric conjuncts of the constraint
//     (CAD201, CAD202, CAD203): unsatisfiable and tautological
//     clauses, and constant Rank expressions that reduce matching to
//     arbitrary tie-breaks.
//
// Diagnostics carry the code, a severity, and the source position of
// the attribute they concern (when the ad came from the parser).
package analysis

import (
	"fmt"
	"sort"

	"repro/internal/classad"
)

// Severity grades a diagnostic.
type Severity int

// The severities, in increasing order.
const (
	Info Severity = iota
	Warning
	// Error marks an ad that cannot behave as written: the flagged
	// expression can never contribute to a match.
	Error
)

// String returns the lowercase conventional name.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// Diagnostic codes. The CAD0xx range is type checking, CAD1xx is
// reference resolution, CAD2xx is constraint satisfiability.
const (
	CodeTypeConflict   = "CAD001" // comparison/arithmetic can only yield undefined/error
	CodeUnknownBuiltin = "CAD002" // call of a function that is not a builtin
	CodeBadArity       = "CAD003" // builtin called with the wrong number of arguments
	CodeSelfNeverBinds = "CAD101" // self.X where X is not defined in the ad
	CodeUnknownAttr    = "CAD102" // reference outside the ad and the well-known vocabulary
	CodeUnsatisfiable  = "CAD201" // conjunct (or conjunct pair) that can never be true
	CodeTautology      = "CAD202" // conjunct that is always true
	CodeConstantRank   = "CAD203" // Rank folds to a constant
)

// Diagnostic is one finding about an ad.
type Diagnostic struct {
	Code     string
	Severity Severity
	// Attr is the ad attribute the finding concerns ("" when the
	// finding is about the ad as a whole).
	Attr string
	// Line and Col locate the attribute's definition in the source the
	// ad was parsed from; zero when the ad was built programmatically.
	Line, Col int
	Message   string
	// Expr is the offending (sub)expression, unparsed.
	Expr string
}

// String renders the diagnostic as "line:col: CODE severity: message".
func (d Diagnostic) String() string {
	var pos string
	if d.Line > 0 {
		pos = fmt.Sprintf("%d:%d: ", d.Line, d.Col)
	}
	return fmt.Sprintf("%s%s %s: %s", pos, d.Code, d.Severity, d.Message)
}

// HasErrors reports whether any diagnostic has Error severity.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity >= Error {
			return true
		}
	}
	return false
}

// Unsatisfiable returns the CAD201 findings — the statically provable
// "can never match" verdicts. canalyze folds them into its report.
func Unsatisfiable(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Code == CodeUnsatisfiable {
			out = append(out, d)
		}
	}
	return out
}

// Options tunes an analysis run. The zero value is ready to use.
type Options struct {
	// Vocabulary adds attribute names to the well-known set consulted
	// by the reference pass (pool deployments with site-specific
	// attributes extend it here).
	Vocabulary []string
	// Env supplies the evaluation environment for constant folding;
	// nil selects classad.DefaultEnv.
	Env *classad.Env
}

// analyzer carries one run's state.
type analyzer struct {
	ad    *classad.Ad
	env   *classad.Env
	vocab map[string]bool // folded well-known names
	diags []Diagnostic
}

// AnalyzeAd runs every pass over ad and returns the findings sorted by
// source position. A nil ad has no findings.
func AnalyzeAd(ad *classad.Ad, opts *Options) []Diagnostic {
	if ad == nil {
		return nil
	}
	if opts == nil {
		opts = &Options{}
	}
	env := opts.Env
	if env == nil {
		env = classad.DefaultEnv()
	}
	a := &analyzer{ad: ad, env: env, vocab: buildVocab(opts.Vocabulary)}
	a.checkTypes()
	a.checkRefs()
	a.checkConstraint()
	sort.SliceStable(a.diags, func(i, j int) bool {
		di, dj := a.diags[i], a.diags[j]
		if di.Line != dj.Line {
			return di.Line < dj.Line
		}
		if di.Col != dj.Col {
			return di.Col < dj.Col
		}
		return di.Code < dj.Code
	})
	return a.diags
}

// report appends one finding, resolving the attribute's source
// position when the ad has one.
func (a *analyzer) report(code string, sev Severity, attr string, expr classad.Expr, format string, args ...any) {
	d := Diagnostic{
		Code:     code,
		Severity: sev,
		Attr:     attr,
		Message:  fmt.Sprintf(format, args...),
	}
	if expr != nil {
		d.Expr = expr.String()
	}
	if p, ok := a.ad.AttrPos(attr); ok {
		d.Line, d.Col = p.Line, p.Col
	}
	a.diags = append(a.diags, d)
}
