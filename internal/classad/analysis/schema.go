package analysis

// Pool-schema inference: treat a corpus of ads (files, or a live
// collector's contents) as one schema'd dataset in the spirit of
// Robinson & DeWitt's "Turning Cluster Management into Data
// Management". No declaration exists — ClassAds are schema-free by
// design — so the schema is INFERRED: walk every ad, record each
// attribute's observed value types and numeric/string ranges, and use
// the result two ways: CAD304 flags attributes advertised with
// conflicting types across the corpus (the `Memory = "64"` string in
// a pool of integer Memorys that SAMGrid's operators kept tripping
// over), and dead-ad findings (CAD305, emitted by AuditCorpus) are
// annotated with range hints showing WHY a constraint bound can never
// be met by what the pool advertises.

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/classad"
)

// attrSite records one ad that defines an attribute, with the types
// its definition can produce there.
type attrSite struct {
	origin string
	pos    classad.Pos
	hasPos bool
	types  typeSet
}

// AttrInfo aggregates everything the corpus says about one attribute.
type AttrInfo struct {
	// Name is the attribute's display spelling (first seen).
	Name string
	// Ads is how many corpus ads define the attribute.
	Ads int
	// Types is the union of inferred result types across definitions.
	Types typeSet
	// Lo/Hi bound the numeric literal values observed (valid when
	// HasNum); Strings holds distinct string literal values observed,
	// folded, capped at schemaMaxStrings.
	Lo, Hi  float64
	HasNum  bool
	Strings []string

	sites []attrSite
}

// schemaMaxStrings caps the distinct string values remembered per
// attribute; past it the set is only counted, not enumerated.
const schemaMaxStrings = 16

// Schema is an inferred attribute vocabulary for a corpus of ads.
type Schema struct {
	attrs map[string]*AttrInfo // folded name -> info
}

// InferSchema walks the corpus and builds the pool's attribute schema.
func InferSchema(corpus []CorpusAd) *Schema {
	s := &Schema{attrs: make(map[string]*AttrInfo)}
	for _, ca := range corpus {
		if ca.Ad == nil {
			continue
		}
		a := &analyzer{ad: ca.Ad, env: classad.DefaultEnv(), vocab: buildVocab(nil)}
		for _, name := range ca.Ad.Names() {
			def, _ := ca.Ad.Lookup(name)
			key := classad.Fold(name)
			info := s.attrs[key]
			if info == nil {
				info = &AttrInfo{Name: name, Lo: math.Inf(1), Hi: math.Inf(-1)}
				s.attrs[key] = info
			}
			info.Ads++
			ts := a.inferAttr(name, def, map[string]bool{})
			info.Types |= ts
			site := attrSite{origin: ca.Origin, types: ts}
			site.pos, site.hasPos = ca.Ad.AttrPos(name)
			info.sites = append(info.sites, site)
			v := ca.Ad.Eval(name)
			if n, ok := v.NumberVal(); ok {
				info.HasNum = true
				info.Lo = math.Min(info.Lo, n)
				info.Hi = math.Max(info.Hi, n)
			} else if str, ok := v.StringVal(); ok {
				folded := classad.Fold(str)
				if !containsStr(info.Strings, folded) && len(info.Strings) < schemaMaxStrings {
					info.Strings = append(info.Strings, folded)
				}
			}
		}
	}
	return s
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// Lookup returns the schema entry for an attribute name, if any ad in
// the corpus defines it.
func (s *Schema) Lookup(name string) (*AttrInfo, bool) {
	info, ok := s.attrs[classad.Fold(name)]
	return info, ok
}

// Vocabulary returns the corpus's attribute names (display spellings,
// sorted), suitable as extra vocabulary for the single-ad reference
// pass so pool-specific attributes don't read as typos.
func (s *Schema) Vocabulary() []string {
	out := make([]string, 0, len(s.attrs))
	for _, info := range s.attrs {
		out = append(out, info.Name)
	}
	sort.Strings(out)
	return out
}

// RangeHint renders what the corpus advertises for an attribute —
// "pool's Memory ranges 32..256 over 4 ad(s)" — or "" when the
// attribute is unknown or carries no literal values.
func (s *Schema) RangeHint(name string) string {
	info, ok := s.Lookup(name)
	if !ok {
		return ""
	}
	switch {
	case info.HasNum && info.Lo == info.Hi:
		return fmt.Sprintf("pool's %s is always %s over %d ad(s)",
			info.Name, fmtNum(info.Lo), info.Ads)
	case info.HasNum:
		return fmt.Sprintf("pool's %s ranges %s..%s over %d ad(s)",
			info.Name, fmtNum(info.Lo), fmtNum(info.Hi), info.Ads)
	case len(info.Strings) > 0:
		vals := append([]string(nil), info.Strings...)
		sort.Strings(vals)
		return fmt.Sprintf("pool's %s is one of %s over %d ad(s)",
			info.Name, quotedList(vals), info.Ads)
	}
	return ""
}

func fmtNum(n float64) string {
	if n == math.Trunc(n) && math.Abs(n) < 1e15 {
		return fmt.Sprintf("%d", int64(n))
	}
	return fmt.Sprintf("%g", n)
}

func quotedList(vals []string) string {
	qs := make([]string, len(vals))
	for i, v := range vals {
		qs[i] = quoted(v)
	}
	return strings.Join(qs, ", ")
}

// TypeConflicts reports every attribute whose definitions across the
// corpus cannot agree on a proper type (CAD304): e.g. Memory = "64"
// in one ad and Memory = 64 everywhere else. Numeric widths (int vs
// real) are not a conflict — the evaluator promotes them — and
// undefined/error components are ignored: only the proper values an
// attribute actually takes are compared. One finding is emitted per
// conflicting site, attributed to the minority type(s) so the fix
// points at the odd ad out.
func (s *Schema) TypeConflicts() []AuditFinding {
	var keys []string
	for k := range s.attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []AuditFinding
	for _, k := range keys {
		info := s.attrs[k]
		if info.Ads < 2 || !conflicting(info.Types) {
			continue
		}
		// Count sites per type family to name the majority.
		counts := make(map[typeSet]int)
		for _, site := range info.sites {
			counts[family(site.types)]++
		}
		majority, best := typeSet(0), -1
		for fam, n := range counts {
			if fam != 0 && (n > best || (n == best && fam < majority)) {
				majority, best = fam, n
			}
		}
		for _, site := range info.sites {
			fam := family(site.types)
			if fam == 0 || fam == majority {
				continue
			}
			d := Diagnostic{
				Code:     CodeSchemaTypeConflict,
				Severity: Warning,
				Attr:     info.Name,
				Message: fmt.Sprintf(
					"attribute %s is %s here but %s in %d other ad(s): cross-ad comparisons against it will yield error, not a match",
					info.Name, fam.describe(), majority.describe(), counts[majority]),
			}
			if site.hasPos {
				d.Line, d.Col = site.pos.Line, site.pos.Col
			}
			out = append(out, AuditFinding{Origin: site.origin, Diag: d})
		}
	}
	return out
}

// family buckets a type set for conflict detection: numbers (with the
// booleans that coerce to them) form one family, strings another,
// lists and ads their own; undefined/error components are dropped.
func family(ts typeSet) typeSet {
	proper := ts.proper()
	if proper&(tNumish) != 0 && proper&^(tNumish) == 0 {
		return tInt | tReal
	}
	return proper
}

// conflicting reports whether a type union spans more than one family
// of proper types.
func conflicting(ts typeSet) bool {
	proper := ts.proper()
	fams := 0
	for _, fam := range []typeSet{tNumish, tStr, tList, tAd} {
		if proper&fam != 0 {
			fams++
		}
	}
	return fams > 1
}

// boundHints explains a dead ad via the schema: for every bound-shaped
// conjunct of the ad's constraint (other.Memory >= 512 after partial
// evaluation), compare the bound against what the corpus advertises
// for that attribute and describe the gap. Empty when no bound is
// explained by the schema.
func (s *Schema) boundHints(ad *classad.Ad, env *classad.Env) string {
	ce, ok := classad.ConstraintOf(ad)
	if !ok {
		return ""
	}
	var hints []string
	for _, conj := range classad.SplitConjuncts(ce) {
		res := classad.PartialEval(conj, ad, env)
		key, disp, op, num, str, ok := boundShape(res, classad.Inspect(res))
		if !ok {
			continue
		}
		info, known := s.attrs[key]
		if !known {
			hints = append(hints, fmt.Sprintf("no ad in the corpus defines %s", disp))
			continue
		}
		if str != "" {
			if len(info.Strings) > 0 && !containsStr(info.Strings, classad.Fold(str)) {
				if h := s.RangeHint(disp); h != "" {
					hints = append(hints, h)
				}
			}
			continue
		}
		if !info.HasNum {
			continue
		}
		violated := false
		switch op {
		case classad.OpGt:
			violated = info.Hi <= num
		case classad.OpGe:
			violated = info.Hi < num
		case classad.OpLt:
			violated = info.Lo >= num
		case classad.OpLe:
			violated = info.Lo > num
		case classad.OpEq:
			violated = num < info.Lo || num > info.Hi
		}
		if violated {
			if h := s.RangeHint(disp); h != "" {
				hints = append(hints, h)
			}
		}
	}
	return strings.Join(dedupStrings(hints), "; ")
}

func dedupStrings(xs []string) []string {
	seen := make(map[string]bool, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
