package analysis

import (
	"strings"

	"repro/internal/classad"
)

// The type pass runs abstract interpretation over the classad's
// three-valued logic: every expression is assigned the *set* of value
// types it can evaluate to. A comparison whose operand sets rule out a
// boolean result — string against number, say — can only ever yield
// undefined or error, which in a Constraint means "never true": the
// exact silent failure mode this pass exists to flag.

// typeSet is a bitmask over classad.ValueType.
type typeSet uint

func bit(t classad.ValueType) typeSet { return 1 << uint(t) }

var (
	tUndef = bit(classad.UndefinedType)
	tErr   = bit(classad.ErrorType)
	tBool  = bit(classad.BooleanType)
	tInt   = bit(classad.IntegerType)
	tReal  = bit(classad.RealType)
	tStr   = bit(classad.StringType)
	tList  = bit(classad.ListType)
	tAd    = bit(classad.AdType)

	tNumish = tInt | tReal | tBool // accepted by arithmetic (bool coerces)
	tAny    = tUndef | tErr | tBool | tInt | tReal | tStr | tList | tAd
)

// proper strips the undefined/error bits, leaving the "real" values.
func (s typeSet) proper() typeSet { return s &^ (tUndef | tErr) }

// describe names the proper types in a set for diagnostics.
func (s typeSet) describe() string {
	var names []string
	for _, t := range []classad.ValueType{
		classad.BooleanType, classad.IntegerType, classad.RealType,
		classad.StringType, classad.ListType, classad.AdType,
	} {
		if s&bit(t) != 0 {
			names = append(names, t.String())
		}
	}
	if len(names) == 0 {
		if s&tErr != 0 && s&tUndef == 0 {
			return "error"
		}
		if s&tUndef != 0 && s&tErr == 0 {
			return "undefined"
		}
		return "undefined/error"
	}
	return strings.Join(names, " or ")
}

// funcResults maps builtins to their possible result types. Functions
// absent from the table are treated as returning anything. boolish etc.
// include undefined/error because most builtins propagate them.
var funcResults = map[string]typeSet{
	"member":          tBool | tUndef | tErr,
	"identicalmember": tBool | tUndef | tErr,
	"strcmp":          tInt | tUndef | tErr,
	"stricmp":         tInt | tUndef | tErr,
	"toupper":         tStr | tUndef | tErr,
	"tolower":         tStr | tUndef | tErr,
	"substr":          tStr | tUndef | tErr,
	"strcat":          tStr | tUndef | tErr,
	"size":            tInt | tUndef | tErr,
	"int":             tInt | tUndef | tErr,
	"real":            tReal | tUndef | tErr,
	"string":          tStr | tUndef | tErr,
	"bool":            tBool | tUndef | tErr,
	"floor":           tInt | tUndef | tErr,
	"ceiling":         tInt | tUndef | tErr,
	"ceil":            tInt | tUndef | tErr,
	"round":           tInt | tUndef | tErr,
	"abs":             tInt | tReal | tUndef | tErr,
	"pow":             tInt | tReal | tUndef | tErr,
	"sqrt":            tReal | tUndef | tErr,
	"quantize":        tInt | tReal | tUndef | tErr,
	"min":             tInt | tReal | tUndef | tErr,
	"max":             tInt | tReal | tUndef | tErr,
	"sum":             tInt | tReal | tUndef | tErr,
	"avg":             tInt | tReal | tUndef | tErr,
	"isundefined":     tBool,
	"iserror":         tBool,
	"isstring":        tBool,
	"isinteger":       tBool,
	"isreal":          tBool,
	"isboolean":       tBool,
	"islist":          tBool,
	"isclassad":       tBool,
	"anycompare":      tBool | tUndef | tErr,
	"allcompare":      tBool | tUndef | tErr,
	"regexp":          tBool | tUndef | tErr,
	"regexps":         tStr | tUndef | tErr,
	"splitlist":       tList | tUndef | tErr,
	"join":            tStr | tUndef | tErr,
	"random":          tInt | tReal | tErr,
	"time":            tInt | tErr,
	"currenttime":     tInt | tErr,
	"daytime":         tInt | tErr,
	"interval":        tStr | tUndef | tErr,
	"unparse":         tStr | tErr,
}

// checkTypes runs the type pass over every attribute of the ad.
func (a *analyzer) checkTypes() {
	for _, name := range a.ad.Names() {
		e, _ := a.ad.Lookup(name)
		a.typeWalk(name, e, map[string]bool{})
	}
}

// typeWalk descends one attribute's expression, reporting findings
// against attr. active guards recursive attribute references.
func (a *analyzer) typeWalk(attr string, e classad.Expr, active map[string]bool) {
	info := classad.Inspect(e)
	switch info.Kind {
	case classad.KindBinary:
		l := a.infer(info.Args[0], active)
		r := a.infer(info.Args[1], active)
		switch info.Op {
		case classad.OpLt, classad.OpLe, classad.OpGt, classad.OpGe,
			classad.OpEq, classad.OpNe:
			if res := compareResult(info.Op, l, r); res&tBool == 0 {
				a.report(CodeTypeConflict, Error, attr, e,
					"comparison %q can only evaluate to %s: left operand is %s, right operand is %s",
					e.String(), res.describe(), l.describe(), r.describe())
			}
		case classad.OpAdd, classad.OpSub, classad.OpMul, classad.OpDiv, classad.OpMod:
			if res := arithResult(l, r); res.proper() == 0 {
				a.report(CodeTypeConflict, Error, attr, e,
					"arithmetic %q can only evaluate to %s: left operand is %s, right operand is %s",
					e.String(), res.describe(), l.describe(), r.describe())
			}
		}
	case classad.KindCall:
		a.checkCall(attr, e, info)
	case classad.KindAd:
		// A nested ad literal opens a fresh scope; its attributes are
		// not checked against this ad's bindings.
		return
	}
	for _, c := range info.Args {
		a.typeWalk(attr, c, active)
	}
}

// checkCall validates the callee name and arity (CAD002/CAD003).
func (a *analyzer) checkCall(attr string, e classad.Expr, info classad.ExprInfo) {
	if !classad.IsBuiltin(info.Name) {
		msg := "call of unknown builtin " + quoted(info.Name)
		if sug := suggest(info.Name, classad.BuiltinNames()); sug != "" {
			msg += " (did you mean " + quoted(sug) + "?)"
		}
		a.report(CodeUnknownBuiltin, Error, attr, e, "%s", msg)
		return
	}
	min, max, ok := classad.BuiltinArity(info.Name)
	if !ok {
		return
	}
	n := len(info.Args)
	switch {
	case n < min:
		a.report(CodeBadArity, Error, attr, e,
			"%s expects at least %d argument(s), got %d", info.Name, min, n)
	case max >= 0 && n > max:
		a.report(CodeBadArity, Error, attr, e,
			"%s expects at most %d argument(s), got %d", info.Name, max, n)
	}
}

func quoted(s string) string { return `"` + s + `"` }

// infer computes the set of types e can evaluate to in the context of
// the analyzed ad. Anything it cannot reason about precisely widens to
// tAny, so the pass only flags what is provably broken.
func (a *analyzer) infer(e classad.Expr, active map[string]bool) typeSet {
	info := classad.Inspect(e)
	switch info.Kind {
	case classad.KindLiteral:
		return bit(info.Value.Type())
	case classad.KindAttrRef:
		switch info.Scope {
		case classad.ScopeOther:
			return tAny // depends on the matched ad
		case classad.ScopeSelf:
			if def, ok := a.ad.Lookup(info.Name); ok {
				return a.inferAttr(info.Name, def, active)
			}
			// self never falls back to the other ad: a missing
			// self-scoped attribute is always undefined.
			return tUndef
		default:
			if def, ok := a.ad.Lookup(info.Name); ok {
				return a.inferAttr(info.Name, def, active)
			}
			return tAny // may bind in the other ad at match time
		}
	case classad.KindUnary:
		arg := a.infer(info.Args[0], active)
		switch info.Op {
		case classad.OpNot:
			var out typeSet
			out |= arg & (tUndef | tErr)
			if arg&(tBool|tInt|tReal) != 0 {
				out |= tBool
			}
			if arg.proper()&^(tBool|tInt|tReal) != 0 {
				out |= tErr
			}
			return out
		case classad.OpNeg, classad.OpPlus:
			var out typeSet
			out |= arg & (tUndef | tErr)
			out |= arg & (tInt | tReal)
			if arg&tBool != 0 {
				out |= tInt
			}
			if arg.proper()&^tNumish != 0 {
				out |= tErr
			}
			return out
		}
		return tAny
	case classad.KindBinary:
		l := a.infer(info.Args[0], active)
		r := a.infer(info.Args[1], active)
		switch info.Op {
		case classad.OpAnd, classad.OpOr:
			// Non-strict: false && x is false regardless of x, so the
			// result is at most {bool, undefined, error}.
			return tBool | ((l | r) & (tUndef | tErr))
		case classad.OpIs, classad.OpIsnt:
			return tBool // meta-equality is total
		case classad.OpLt, classad.OpLe, classad.OpGt, classad.OpGe,
			classad.OpEq, classad.OpNe:
			return compareResult(info.Op, l, r)
		case classad.OpAdd, classad.OpSub, classad.OpMul, classad.OpDiv, classad.OpMod:
			return arithResult(l, r)
		}
		return tAny
	case classad.KindCond:
		cond := a.infer(info.Args[0], active)
		out := a.infer(info.Args[1], active) | a.infer(info.Args[2], active)
		out |= cond & (tUndef | tErr)
		return out
	case classad.KindCall:
		if res, ok := funcResults[classad.Fold(info.Name)]; ok {
			return res
		}
		return tAny
	case classad.KindList:
		return tList
	case classad.KindAd:
		return tAd
	default: // select, index: depends on runtime structure
		return tAny
	}
}

// inferAttr infers a referenced attribute's definition, guarding
// against reference cycles (which evaluate to error at runtime, but
// widening keeps the pass quiet about them).
func (a *analyzer) inferAttr(name string, def classad.Expr, active map[string]bool) typeSet {
	key := classad.Fold(name)
	if active[key] {
		return tAny
	}
	active[key] = true
	out := a.infer(def, active)
	delete(active, key)
	return out
}

// compareResult mirrors evalCompare over type sets: strings compare
// only with strings, booleans admit only ==/!= among themselves but
// coerce to integers against numbers, lists and ads never compare.
func compareResult(op classad.Op, l, r typeSet) typeSet {
	var out typeSet
	if (l|r)&tErr != 0 {
		out |= tErr
	}
	if (l|r)&tUndef != 0 {
		out |= tUndef
	}
	lp, rp := l.proper(), r.proper()
	if lp == 0 || rp == 0 {
		return out
	}
	if lp&tStr != 0 {
		if rp&tStr != 0 {
			out |= tBool
		}
		if rp&^tStr != 0 {
			out |= tErr
		}
	}
	if rp&tStr != 0 && lp&^tStr != 0 {
		out |= tErr
	}
	if lp&tBool != 0 && rp&tBool != 0 {
		if op == classad.OpEq || op == classad.OpNe {
			out |= tBool
		} else {
			out |= tErr
		}
	}
	if (lp&(tInt|tReal) != 0 && rp&tNumish != 0) ||
		(lp&tNumish != 0 && rp&(tInt|tReal) != 0) {
		out |= tBool
	}
	if lp&(tList|tAd) != 0 || rp&(tList|tAd) != 0 {
		out |= tErr
	}
	return out
}

// arithResult mirrors evalArith over type sets: numbers (and booleans,
// coerced) combine; anything else is an error; undefined propagates.
func arithResult(l, r typeSet) typeSet {
	var out typeSet
	if (l|r)&tErr != 0 {
		out |= tErr
	}
	if (l|r)&tUndef != 0 {
		out |= tUndef
	}
	lp, rp := l.proper(), r.proper()
	if lp == 0 || rp == 0 {
		return out
	}
	if lp&tNumish != 0 && rp&tNumish != 0 {
		if lp&tReal != 0 || rp&tReal != 0 {
			out |= tReal
		}
		if lp&(tInt|tBool) != 0 && rp&(tInt|tBool) != 0 {
			out |= tInt
		}
		out |= tErr // division by zero, overflow
	}
	if lp&^tNumish != 0 || rp&^tNumish != 0 {
		out |= tErr
	}
	return out
}
