package analysis

import (
	"strings"
	"testing"
)

func corpusFrom(t *testing.T, srcs map[string]string) []CorpusAd {
	t.Helper()
	var names []string
	for n := range srcs {
		names = append(names, n)
	}
	// Deterministic corpus order: sorted by origin.
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	var out []CorpusAd
	for _, n := range names {
		out = append(out, CorpusAd{Origin: n, Ad: mustAd(t, srcs[n])})
	}
	return out
}

func TestInferSchemaRanges(t *testing.T) {
	corpus := corpusFrom(t, map[string]string{
		"m1.ad": `[ Type = "machine"; Memory = 32; Arch = "intel" ]`,
		"m2.ad": `[ Type = "machine"; Memory = 256; Arch = "sparc" ]`,
	})
	s := InferSchema(corpus)
	info, ok := s.Lookup("memory")
	if !ok {
		t.Fatal("Memory not in schema")
	}
	if info.Ads != 2 || !info.HasNum || info.Lo != 32 || info.Hi != 256 {
		t.Fatalf("Memory info = %+v", info)
	}
	if hint := s.RangeHint("Memory"); !strings.Contains(hint, "32..256") {
		t.Errorf("RangeHint(Memory) = %q", hint)
	}
	if hint := s.RangeHint("Arch"); !strings.Contains(hint, `"intel"`) || !strings.Contains(hint, `"sparc"`) {
		t.Errorf("RangeHint(Arch) = %q", hint)
	}
	if s.RangeHint("NoSuchAttr") != "" {
		t.Error("unknown attribute should have no hint")
	}
	vocab := s.Vocabulary()
	found := false
	for _, v := range vocab {
		if v == "Memory" {
			found = true
		}
	}
	if !found {
		t.Errorf("Vocabulary() = %v, missing Memory", vocab)
	}
}

func TestTypeConflicts(t *testing.T) {
	corpus := corpusFrom(t, map[string]string{
		"good1.ad": `[ Type = "machine"; Memory = 64 ]`,
		"good2.ad": `[ Type = "machine"; Memory = 128 ]`,
		"oops.ad":  `[ Type = "machine"; Memory = "64" ]`,
	})
	s := InferSchema(corpus)
	finds := s.TypeConflicts()
	if len(finds) != 1 {
		t.Fatalf("TypeConflicts = %v, want exactly one", finds)
	}
	f := finds[0]
	if f.Origin != "oops.ad" || f.Diag.Code != CodeSchemaTypeConflict {
		t.Fatalf("conflict attributed to %s with %s, want oops.ad CAD304", f.Origin, f.Diag.Code)
	}
	if !strings.Contains(f.Diag.Message, "Memory") || !strings.Contains(f.Diag.Message, "2 other ad(s)") {
		t.Errorf("message = %q", f.Diag.Message)
	}
}

func TestTypeConflictsIgnoresNumericWidth(t *testing.T) {
	corpus := corpusFrom(t, map[string]string{
		"a.ad": `[ Load = 0.5 ]`,
		"b.ad": `[ Load = 1 ]`,
	})
	if finds := InferSchema(corpus).TypeConflicts(); len(finds) != 0 {
		t.Fatalf("int vs real flagged as conflict: %v", finds)
	}
}

func TestAuditCorpusDeadAd(t *testing.T) {
	corpus := corpusFrom(t, map[string]string{
		// The dead job: no machine advertises 4096 MB.
		"dead.ad": `[ Type = "job"; Constraint = other.Memory >= 4096 ]`,
		// A live job so the machines are not themselves dead.
		"live.ad": `[ Type = "job"; Constraint = other.Memory >= 64 ]`,
		"m1.ad":   `[ Type = "machine"; Memory = 128; Constraint = true ]`,
		"m2.ad":   `[ Type = "machine"; Memory = 256; Constraint = true ]`,
	})
	finds := AuditCorpus(corpus, nil)
	var dead []AuditFinding
	for _, f := range finds {
		if f.Diag.Code == CodeDeadAd {
			dead = append(dead, f)
		}
	}
	if len(dead) != 1 || dead[0].Origin != "dead.ad" {
		t.Fatalf("dead-ad findings = %v, want exactly dead.ad", dead)
	}
	if !strings.Contains(dead[0].Diag.Message, "128..256") {
		t.Errorf("dead-ad hint should cite the pool range: %q", dead[0].Diag.Message)
	}
}

func TestAuditCorpusCleanPool(t *testing.T) {
	corpus := corpusFrom(t, map[string]string{
		"job.ad": `[ Type = "job"; Memory = 31; Constraint = other.Memory >= 31 ]`,
		"m1.ad":  `[ Type = "machine"; Memory = 64; Constraint = other.Memory <= 64 ]`,
	})
	if finds := AuditCorpus(corpus, nil); len(finds) != 0 {
		t.Fatalf("clean pool produced findings: %v", finds)
	}
}

func TestAuditCorpusNoCounterparts(t *testing.T) {
	// A pool of only machines: nothing to match against, so nothing is
	// "dead" — absence of evidence, not evidence of absence.
	corpus := corpusFrom(t, map[string]string{
		"m1.ad": `[ Type = "machine"; Memory = 64; Constraint = other.Memory >= 1024 ]`,
		"m2.ad": `[ Type = "machine"; Memory = 32; Constraint = other.Memory >= 1024 ]`,
	})
	for _, f := range AuditCorpus(corpus, nil) {
		if f.Diag.Code == CodeDeadAd {
			t.Fatalf("dead-ad finding without counterparts: %v", f)
		}
	}
}

func TestAuditCorpusIgnoresServiceAds(t *testing.T) {
	// Auditing a live pool always sees the negotiator's self-ad. It is
	// of a different Type than every machine, and machine constraints
	// (other.Type == "Job") are provably false against it — but a
	// machine alone in a pool with the negotiator is idle, not dead.
	corpus := corpusFrom(t, map[string]string{
		"machine.ad":    `[ Type = "Machine"; Memory = 64; Constraint = other.Type == "Job" ]`,
		"negotiator.ad": `[ Type = "Negotiator"; Name = "negotiator@pool"; Machines = 1 ]`,
	})
	for _, f := range AuditCorpus(corpus, nil) {
		t.Errorf("unexpected finding in machine+negotiator pool: %v", f)
	}
}
