package classad

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens of the classad syntax.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokReal
	tokString
	tokLBracket // [
	tokRBracket // ]
	tokLBrace   // {
	tokRBrace   // }
	tokLParen   // (
	tokRParen   // )
	tokSemi     // ;
	tokComma    // ,
	tokAssign   // =
	tokDot      // .
	tokQuestion // ?
	tokColon    // :
	tokOr       // ||
	tokAnd      // &&
	tokNot      // !
	tokLt       // <
	tokLe       // <=
	tokGt       // >
	tokGe       // >=
	tokEq       // ==
	tokNe       // !=
	tokPlus     // +
	tokMinus    // -
	tokStar     // *
	tokSlash    // /
	tokPercent  // %
)

// token is a lexical token with its source position.
type token struct {
	kind tokenKind
	text string  // identifier or string payload
	ival int64   // integer payload
	rval float64 // real payload
	pos  int     // byte offset in input
	line int     // 1-based line number
	col  int     // 1-based column (byte) within the line
}

func (t token) describe() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return fmt.Sprintf("identifier %q", t.text)
	case tokInt:
		return fmt.Sprintf("integer %d", t.ival)
	case tokReal:
		return fmt.Sprintf("real %g", t.rval)
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// SyntaxError describes a lexical or parse failure, with the 1-based
// line number (and, when known, column) in the input.
type SyntaxError struct {
	Line int
	Col  int // 1-based column; 0 when unknown
	Msg  string
}

// Error implements the error interface. When a column is known the
// message is prefixed with a "line:col: " locator so that tools can
// print clickable file:line:col diagnostics; the historical
// "classad: line N: ..." text is kept as the suffix.
func (e *SyntaxError) Error() string {
	base := fmt.Sprintf("classad: line %d: %s", e.Line, e.Msg)
	if e.Col > 0 {
		return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, base)
	}
	return base
}

// lexer splits classad source into tokens. Comments use // to end of
// line or /* ... */, as in the paper's figures.
type lexer struct {
	src       string
	pos       int
	line      int
	lineStart int // byte offset of the start of the current line
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

// col returns the 1-based column of the current position.
func (lx *lexer) col() int { return lx.pos - lx.lineStart + 1 }

func (lx *lexer) errorf(format string, args ...any) *SyntaxError {
	return &SyntaxError{Line: lx.line, Col: lx.col(), Msg: fmt.Sprintf(format, args...)}
}

// skipSpace advances past whitespace and comments.
func (lx *lexer) skipSpace() error {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
			lx.lineStart = lx.pos
		case c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f':
			lx.pos++
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			end := strings.Index(lx.src[lx.pos+2:], "*/")
			if end < 0 {
				return lx.errorf("unterminated /* comment")
			}
			comment := lx.src[lx.pos : lx.pos+2+end+2]
			lx.line += strings.Count(comment, "\n")
			if nl := strings.LastIndexByte(comment, '\n'); nl >= 0 {
				lx.lineStart = lx.pos + nl + 1
			}
			lx.pos += 2 + end + 2
		case c == '#':
			// Shell-style comments are accepted for ad files.
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// next returns the next token.
func (lx *lexer) next() (token, error) {
	if err := lx.skipSpace(); err != nil {
		return token{}, err
	}
	start, line, col := lx.pos, lx.line, lx.col()
	mk := func(k tokenKind, text string) token {
		return token{kind: k, text: text, pos: start, line: line, col: col}
	}
	if lx.pos >= len(lx.src) {
		return mk(tokEOF, ""), nil
	}
	c := lx.src[lx.pos]
	switch c {
	case '[':
		lx.pos++
		return mk(tokLBracket, "["), nil
	case ']':
		lx.pos++
		return mk(tokRBracket, "]"), nil
	case '{':
		lx.pos++
		return mk(tokLBrace, "{"), nil
	case '}':
		lx.pos++
		return mk(tokRBrace, "}"), nil
	case '(':
		lx.pos++
		return mk(tokLParen, "("), nil
	case ')':
		lx.pos++
		return mk(tokRParen, ")"), nil
	case ';':
		lx.pos++
		return mk(tokSemi, ";"), nil
	case ',':
		lx.pos++
		return mk(tokComma, ","), nil
	case '?':
		lx.pos++
		return mk(tokQuestion, "?"), nil
	case ':':
		lx.pos++
		return mk(tokColon, ":"), nil
	case '+':
		lx.pos++
		return mk(tokPlus, "+"), nil
	case '-':
		lx.pos++
		return mk(tokMinus, "-"), nil
	case '*':
		lx.pos++
		return mk(tokStar, "*"), nil
	case '/':
		lx.pos++
		return mk(tokSlash, "/"), nil
	case '%':
		lx.pos++
		return mk(tokPercent, "%"), nil
	case '|':
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '|' {
			lx.pos += 2
			return mk(tokOr, "||"), nil
		}
		return token{}, lx.errorf("unexpected character '|'")
	case '&':
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '&' {
			lx.pos += 2
			return mk(tokAnd, "&&"), nil
		}
		return token{}, lx.errorf("unexpected character '&'")
	case '!':
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '=' {
			lx.pos += 2
			return mk(tokNe, "!="), nil
		}
		lx.pos++
		return mk(tokNot, "!"), nil
	case '<':
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '=' {
			lx.pos += 2
			return mk(tokLe, "<="), nil
		}
		lx.pos++
		return mk(tokLt, "<"), nil
	case '>':
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '=' {
			lx.pos += 2
			return mk(tokGe, ">="), nil
		}
		lx.pos++
		return mk(tokGt, ">"), nil
	case '=':
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '=' {
			lx.pos += 2
			return mk(tokEq, "=="), nil
		}
		// =?= and =!= are the Condor spellings of is / isnt.
		if lx.pos+2 < len(lx.src) && lx.src[lx.pos+1] == '?' && lx.src[lx.pos+2] == '=' {
			lx.pos += 3
			t := mk(tokIdent, "is")
			return t, nil
		}
		if lx.pos+2 < len(lx.src) && lx.src[lx.pos+1] == '!' && lx.src[lx.pos+2] == '=' {
			lx.pos += 3
			t := mk(tokIdent, "isnt")
			return t, nil
		}
		lx.pos++
		return mk(tokAssign, "="), nil
	case '"':
		return lx.lexString()
	case '.':
		// A leading dot can begin a real literal (.5); otherwise it
		// is the selection operator.
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] >= '0' && lx.src[lx.pos+1] <= '9' {
			return lx.lexNumber()
		}
		lx.pos++
		return mk(tokDot, "."), nil
	}
	if c >= '0' && c <= '9' {
		return lx.lexNumber()
	}
	r := rune(c)
	if isIdentStart(r) {
		j := lx.pos
		for j < len(lx.src) && isIdentPart(rune(lx.src[j])) {
			j++
		}
		text := lx.src[lx.pos:j]
		lx.pos = j
		return mk(tokIdent, text), nil
	}
	return token{}, lx.errorf("unexpected character %q", string(c))
}

// lexString scans a double-quoted string with C-style escapes.
func (lx *lexer) lexString() (token, error) {
	start, line, col := lx.pos, lx.line, lx.col()
	lx.pos++ // consume opening quote
	var b strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch c {
		case '"':
			lx.pos++
			return token{kind: tokString, text: b.String(), pos: start, line: line, col: col}, nil
		case '\n':
			return token{}, lx.errorf("newline in string literal")
		case '\\':
			lx.pos++
			if lx.pos >= len(lx.src) {
				return token{}, lx.errorf("unterminated string literal")
			}
			switch e := lx.src[lx.pos]; e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case '\'':
				b.WriteByte('\'')
			case '0':
				b.WriteByte(0)
			default:
				return token{}, lx.errorf("unknown escape \\%c in string", e)
			}
			lx.pos++
		default:
			b.WriteByte(c)
			lx.pos++
		}
	}
	return token{}, lx.errorf("unterminated string literal")
}

// lexNumber scans an integer or real literal. A number containing a
// decimal point or exponent is real; otherwise integer. Octal and hex
// integers are accepted with 0o/0x prefixes for completeness.
func (lx *lexer) lexNumber() (token, error) {
	start, line, col := lx.pos, lx.line, lx.col()
	j := lx.pos
	isReal := false
	if lx.src[j] == '0' && j+1 < len(lx.src) && (lx.src[j+1] == 'x' || lx.src[j+1] == 'X') {
		j += 2
		for j < len(lx.src) && isHexDigit(lx.src[j]) {
			j++
		}
		v, err := strconv.ParseInt(lx.src[lx.pos:j], 0, 64)
		if err != nil {
			return token{}, lx.errorf("bad hexadecimal literal %q", lx.src[lx.pos:j])
		}
		lx.pos = j
		return token{kind: tokInt, ival: v, pos: start, line: line, col: col}, nil
	}
	for j < len(lx.src) && lx.src[j] >= '0' && lx.src[j] <= '9' {
		j++
	}
	if j < len(lx.src) && lx.src[j] == '.' {
		// Only a real if followed by a digit; "3.attr" would be
		// selection on an integer (an error caught later), but
		// classad syntax has no such form, so a bare trailing dot
		// still belongs to the number.
		isReal = true
		j++
		for j < len(lx.src) && lx.src[j] >= '0' && lx.src[j] <= '9' {
			j++
		}
	}
	if j < len(lx.src) && (lx.src[j] == 'e' || lx.src[j] == 'E') {
		k := j + 1
		if k < len(lx.src) && (lx.src[k] == '+' || lx.src[k] == '-') {
			k++
		}
		if k < len(lx.src) && lx.src[k] >= '0' && lx.src[k] <= '9' {
			isReal = true
			j = k
			for j < len(lx.src) && lx.src[j] >= '0' && lx.src[j] <= '9' {
				j++
			}
		}
	}
	text := lx.src[lx.pos:j]
	lx.pos = j
	if isReal {
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token{}, lx.errorf("bad real literal %q", text)
		}
		return token{kind: tokReal, rval: v, pos: start, line: line, col: col}, nil
	}
	v, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		// Out-of-range integers degrade to reals, matching the
		// tolerant behaviour of the deployed system.
		f, ferr := strconv.ParseFloat(text, 64)
		if ferr != nil {
			return token{}, lx.errorf("bad integer literal %q", text)
		}
		return token{kind: tokReal, rval: f, pos: start, line: line, col: col}, nil
	}
	return token{kind: tokInt, ival: v, pos: start, line: line, col: col}, nil
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
