package classad

// Property-based tests over randomly generated expressions and ads,
// using testing/quick. The generator produces structurally valid
// expressions (the grammar's domain), so the properties exercise the
// evaluator and unparser, not the parser's error paths.

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// genValue produces a random literal value of bounded depth.
func genValue(r *rand.Rand, depth int) Value {
	n := 6
	if depth > 0 {
		n = 8
	}
	switch r.Intn(n) {
	case 0:
		return Int(int64(r.Intn(2001) - 1000))
	case 1:
		return Real(float64(r.Intn(2000))/7.0 - 100)
	case 2:
		return Str(randWord(r))
	case 3:
		return Bool(r.Intn(2) == 0)
	case 4:
		return Undef()
	case 5:
		return Erroneous("generated")
	case 6:
		k := r.Intn(4)
		elems := make([]Value, k)
		for i := range elems {
			elems[i] = genValue(r, depth-1)
		}
		return ListOf(elems...)
	default:
		ad := NewAd()
		for i, k := 0, r.Intn(3); i < k; i++ {
			ad.Set(randWord(r), Lit(genValue(r, depth-1)))
		}
		return AdValue(ad)
	}
}

var words = []string{"Memory", "Disk", "Arch", "Owner", "LoadAvg", "raman",
	"intel", "sparc", "KFlops", "x", "y", "z"}

func randWord(r *rand.Rand) string { return words[r.Intn(len(words))] }

// genExpr produces a random expression of bounded depth over the
// attributes of a companion ad.
func genExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			return Lit(genValue(r, 0))
		case 1:
			return Attr(randWord(r))
		default:
			return SelfAttr(randWord(r))
		}
	}
	switch r.Intn(10) {
	case 0, 1, 2:
		return Lit(genValue(r, depth-1))
	case 3:
		return Attr(randWord(r))
	case 4:
		ops := []Op{OpAdd, OpSub, OpMul, OpDiv, OpMod}
		return NewBinary(ops[r.Intn(len(ops))], genExpr(r, depth-1), genExpr(r, depth-1))
	case 5:
		ops := []Op{OpLt, OpLe, OpGt, OpGe, OpEq, OpNe}
		return NewBinary(ops[r.Intn(len(ops))], genExpr(r, depth-1), genExpr(r, depth-1))
	case 6:
		ops := []Op{OpAnd, OpOr, OpIs, OpIsnt}
		return NewBinary(ops[r.Intn(len(ops))], genExpr(r, depth-1), genExpr(r, depth-1))
	case 7:
		ops := []Op{OpNot, OpNeg, OpPlus}
		return NewUnary(ops[r.Intn(len(ops))], genExpr(r, depth-1))
	case 8:
		return NewCond(genExpr(r, depth-1), genExpr(r, depth-1), genExpr(r, depth-1))
	default:
		fns := []string{"member", "size", "int", "string", "strcat", "ifThenElse"}
		name := fns[r.Intn(len(fns))]
		var args []Expr
		arity := map[string]int{"member": 2, "size": 1, "int": 1, "string": 1,
			"strcat": 2, "ifThenElse": 3}[name]
		for i := 0; i < arity; i++ {
			args = append(args, genExpr(r, depth-1))
		}
		return NewCall(name, args...)
	}
}

func genAd(r *rand.Rand) *Ad {
	ad := NewAd()
	for i, k := 0, 1+r.Intn(6); i < k; i++ {
		ad.Set(randWord(r), Lit(genValue(r, 1)))
	}
	return ad
}

// TestQuickUnparseParseFixedPoint: for any generated expression e,
// parse(e.String()) unparses to the same text — the round-trip
// property the wire protocol depends on.
func TestQuickUnparseParseFixedPoint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := genExpr(r, 4)
		text := e.String()
		back, err := ParseExpr(text)
		if err != nil {
			t.Logf("seed %d: cannot re-parse %q: %v", seed, text, err)
			return false
		}
		if back.String() != text {
			t.Logf("seed %d: %q -> %q", seed, text, back.String())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickEvalDeterministic: evaluation is a pure function of the
// (expression, ad, env) triple.
func TestQuickEvalDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := genExpr(r, 4)
		ad := genAd(r)
		env := FixedEnv(12345, 1)
		v1 := EvalExprEnv(e, ad, env)
		v2 := EvalExprEnv(e, ad, FixedEnv(12345, 1))
		return v1.Identical(v2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickEvalNeverPanics: arbitrary expression/ad combinations must
// evaluate to a value, never panic.
func TestQuickEvalNeverPanics(t *testing.T) {
	f := func(seed int64) (ok bool) {
		defer func() {
			if p := recover(); p != nil {
				t.Logf("seed %d panicked: %v", seed, p)
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		e := genExpr(r, 5)
		ad := genAd(r)
		_ = EvalExprEnv(e, ad, FixedEnv(0, seed))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickValueStringParses: every generated literal value prints to
// a form the parser accepts and evaluates back to an identical value.
func TestQuickValueStringParses(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := genValue(r, 2)
		text := v.String()
		e, err := ParseExpr(text)
		if err != nil {
			t.Logf("seed %d: %q does not parse: %v", seed, text, err)
			return false
		}
		back := EvalExpr(e, nil)
		if !back.Identical(v) {
			t.Logf("seed %d: %q -> %v, want %v", seed, text, back, v)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickIdenticalIsEquivalence: Identical is reflexive and
// symmetric over generated values.
func TestQuickIdenticalIsEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genValue(r, 2)
		b := genValue(r, 2)
		if !a.Identical(a) || !b.Identical(b) {
			return false
		}
		return a.Identical(b) == b.Identical(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickMatchSymmetry: Match(a,b).Matched == Match(b,a).Matched for
// arbitrary generated ads with random constraints.
func TestQuickMatchSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genAd(r), genAd(r)
		a.Set(AttrConstraint, genExpr(r, 3))
		b.Set(AttrConstraint, genExpr(r, 3))
		env := FixedEnv(0, seed)
		ab := MatchEnv(a, b, env)
		ba := MatchEnv(b, a, env)
		return ab.Matched == ba.Matched && ab.LeftOK == ba.RightOK && ab.RightOK == ba.LeftOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickAndOrDuality: De Morgan holds in the three-valued logic:
// !(a && b) is identical to (!a || !b) whenever both sides are
// booleans, and both sides always have the same definedness class.
func TestQuickAndOrDuality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ad := genAd(r)
		a, b := genExpr(r, 3), genExpr(r, 3)
		env := FixedEnv(0, seed)
		lhs := EvalExprEnv(NewUnary(OpNot, NewBinary(OpAnd, a, b)), ad, env)
		rhs := EvalExprEnv(NewBinary(OpOr, NewUnary(OpNot, a), NewUnary(OpNot, b)), ad, env)
		// Generated expressions are pure except random(), which the
		// generator never emits, so double evaluation is safe.
		return lhs.Type() == rhs.Type() &&
			(lhs.Type() != BooleanType || lhs.IsTrue() == rhs.IsTrue())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickJSONRoundTrip: arbitrary generated ads survive the JSON
// wire mapping.
func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ad := genAd(r)
		ad.Set("Constraint", genExpr(r, 3))
		data, err := ad.MarshalJSON()
		if err != nil {
			return false
		}
		var back Ad
		if err := back.UnmarshalJSON(data); err != nil {
			t.Logf("seed %d: %v (json %s)", seed, err, data)
			return false
		}
		return ad.Equal(&back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickConstraintNeverCrashesMatch: matching ads with arbitrary
// constraint expressions never panics and always yields a boolean
// verdict.
func TestQuickConstraintNeverCrashesMatch(t *testing.T) {
	f := func(seed int64) (ok bool) {
		defer func() {
			if p := recover(); p != nil {
				t.Logf("seed %d panicked: %v", seed, p)
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		a, b := genAd(r), genAd(r)
		a.Set(AttrConstraint, genExpr(r, 4))
		b.Set(AttrConstraint, genExpr(r, 4))
		_ = MatchEnv(a, b, FixedEnv(0, seed))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickSubstrInBounds: substr never returns out-of-range slices
// whatever the offsets.
func TestQuickSubstrInBounds(t *testing.T) {
	f := func(s string, off, length int16) bool {
		// Build the call programmatically to avoid escaping issues.
		e := NewCall("substr", Lit(Str(s)), Lit(Int(int64(off))), Lit(Int(int64(length))))
		v := EvalExpr(e, nil)
		out, ok := v.StringVal()
		if !ok {
			return false
		}
		return len(out) <= len(s) && (len(out) == 0 || strings.Contains(s, out))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
