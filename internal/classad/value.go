// Package classad implements the classified-advertisement (classad)
// language of Raman, Livny and Solomon, "Matchmaking: Distributed
// Resource Management for High Throughput Computing" (HPDC 1998).
//
// A classad is a mapping from case-insensitive attribute names to
// expressions. Expressions evaluate to one of eight value types:
// Integer, Real, String, Boolean, Undefined, Error, List, or a nested
// ClassAd. Evaluation uses a three-valued logic: a reference to a
// missing attribute yields Undefined, strict operators propagate it,
// and the Boolean connectives && and || are non-strict so that
// constraints over partially known objects can still be expressed
// (paper §3.1).
//
// The package provides a lexer and parser for the classad syntax of
// the paper (Figures 1 and 2), an evaluator with self/other scoping
// for two-way matching, a library of builtin functions, an unparser
// that round-trips, and a JSON mapping used by the wire protocol.
package classad

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ValueType identifies the dynamic type of a Value.
type ValueType int

// The eight classad value types.
const (
	UndefinedType ValueType = iota
	ErrorType
	BooleanType
	IntegerType
	RealType
	StringType
	ListType
	AdType
)

// String returns the conventional name of the type.
func (t ValueType) String() string {
	switch t {
	case UndefinedType:
		return "undefined"
	case ErrorType:
		return "error"
	case BooleanType:
		return "boolean"
	case IntegerType:
		return "integer"
	case RealType:
		return "real"
	case StringType:
		return "string"
	case ListType:
		return "list"
	case AdType:
		return "classad"
	default:
		return fmt.Sprintf("ValueType(%d)", int(t))
	}
}

// Value is the result of evaluating a classad expression. The zero
// Value is Undefined.
type Value struct {
	typ  ValueType
	num  float64 // integer (exact in mantissa), real, or boolean (0/1)
	str  string  // string payload; for ErrorType, a diagnostic message
	list []Value // list payload
	ad   *Ad     // classad payload
}

// Undef returns the undefined value.
func Undef() Value { return Value{typ: UndefinedType} }

// Erroneous returns an error value carrying a diagnostic message. The
// message is advisory only: all error values compare identically under
// the is operator, per the language semantics.
func Erroneous(format string, args ...any) Value {
	return Value{typ: ErrorType, str: fmt.Sprintf(format, args...)}
}

// Bool returns a boolean value.
func Bool(b bool) Value {
	if b {
		return Value{typ: BooleanType, num: 1}
	}
	return Value{typ: BooleanType, num: 0}
}

// Int returns an integer value.
func Int(i int64) Value { return Value{typ: IntegerType, num: float64(i)} }

// Real returns a real value.
func Real(r float64) Value { return Value{typ: RealType, num: r} }

// Str returns a string value.
func Str(s string) Value { return Value{typ: StringType, str: s} }

// ListOf returns a list value holding vs. The slice is not copied.
func ListOf(vs ...Value) Value { return Value{typ: ListType, list: vs} }

// AdValue returns a value holding a nested classad.
func AdValue(ad *Ad) Value {
	if ad == nil {
		return Undef()
	}
	return Value{typ: AdType, ad: ad}
}

// Type reports the dynamic type of v.
func (v Value) Type() ValueType { return v.typ }

// IsUndefined reports whether v is the undefined value.
func (v Value) IsUndefined() bool { return v.typ == UndefinedType }

// IsError reports whether v is an error value.
func (v Value) IsError() bool { return v.typ == ErrorType }

// ErrMessage returns the diagnostic carried by an error value, or "".
func (v Value) ErrMessage() string {
	if v.typ == ErrorType {
		return v.str
	}
	return ""
}

// BoolVal returns the boolean payload; ok is false if v is not boolean.
func (v Value) BoolVal() (b, ok bool) {
	if v.typ != BooleanType {
		return false, false
	}
	return v.num != 0, true
}

// IsTrue reports whether v is the boolean true. The matchmaker uses
// this to test Constraint expressions: anything else — including
// undefined — fails the match (paper §3.2).
func (v Value) IsTrue() bool { return v.typ == BooleanType && v.num != 0 }

// IntVal returns the integer payload; ok is false if v is not integer.
func (v Value) IntVal() (int64, bool) {
	if v.typ != IntegerType {
		return 0, false
	}
	return int64(v.num), true
}

// RealVal returns the real payload; ok is false if v is not real.
func (v Value) RealVal() (float64, bool) {
	if v.typ != RealType {
		return 0, false
	}
	return v.num, true
}

// NumberVal returns v as a float64 if v is integer or real.
func (v Value) NumberVal() (float64, bool) {
	switch v.typ {
	case IntegerType, RealType:
		return v.num, true
	}
	return 0, false
}

// StringVal returns the string payload; ok is false if v is not a string.
func (v Value) StringVal() (string, bool) {
	if v.typ != StringType {
		return "", false
	}
	return v.str, true
}

// ListVal returns the list payload; ok is false if v is not a list.
// The returned slice aliases the value and must not be modified.
func (v Value) ListVal() ([]Value, bool) {
	if v.typ != ListType {
		return nil, false
	}
	return v.list, true
}

// AdVal returns the nested classad payload; ok is false otherwise.
func (v Value) AdVal() (*Ad, bool) {
	if v.typ != AdType {
		return nil, false
	}
	return v.ad, true
}

// RankVal interprets v as a Rank result per the paper: "non-integer
// values are treated as zero". Following deployed Condor behaviour we
// accept any numeric value and treat everything else as 0.
func (v Value) RankVal() float64 {
	if n, ok := v.NumberVal(); ok && !math.IsNaN(n) {
		return n
	}
	return 0
}

// Identical reports whether v and w are the same value under the
// non-strict `is` operator: same type and, recursively, the same
// payload. String comparison is case-sensitive here, unlike the ==
// operator. All error values are identical to each other; likewise
// undefined.
func (v Value) Identical(w Value) bool {
	if v.typ != w.typ {
		return false
	}
	switch v.typ {
	case UndefinedType, ErrorType:
		return true
	case BooleanType, IntegerType, RealType:
		return v.num == w.num
	case StringType:
		return v.str == w.str
	case ListType:
		if len(v.list) != len(w.list) {
			return false
		}
		for i := range v.list {
			if !v.list[i].Identical(w.list[i]) {
				return false
			}
		}
		return true
	case AdType:
		return v.ad.identical(w.ad)
	}
	return false
}

// String renders the value in classad source syntax. Strings are
// quoted, lists braced, nested ads bracketed.
func (v Value) String() string {
	var b strings.Builder
	v.write(&b)
	return b.String()
}

func (v Value) write(b *strings.Builder) {
	switch v.typ {
	case UndefinedType:
		b.WriteString("undefined")
	case ErrorType:
		b.WriteString("error")
	case BooleanType:
		if v.num != 0 {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case IntegerType:
		fmt.Fprintf(b, "%d", int64(v.num))
	case RealType:
		writeReal(b, v.num)
	case StringType:
		writeQuoted(b, v.str)
	case ListType:
		b.WriteByte('{')
		for i, e := range v.list {
			if i > 0 {
				b.WriteString(", ")
			}
			e.write(b)
		}
		b.WriteByte('}')
	case AdType:
		b.WriteString(v.ad.String())
	}
}

// writeReal prints a real so that it re-parses as a real (never as an
// integer literal).
func writeReal(b *strings.Builder, r float64) {
	if math.IsInf(r, 1) {
		b.WriteString("real(\"INF\")")
		return
	}
	if math.IsInf(r, -1) {
		b.WriteString("real(\"-INF\")")
		return
	}
	if math.IsNaN(r) {
		b.WriteString("real(\"NaN\")")
		return
	}
	s := fmt.Sprintf("%g", r)
	b.WriteString(s)
	if !strings.ContainsAny(s, ".eE") {
		b.WriteString(".0")
	}
}

func writeQuoted(b *strings.Builder, s string) {
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
}

// Ad is a classified advertisement: an ordered mapping from
// case-insensitive attribute names to expressions. Attribute insertion
// order is preserved for printing; lookup is by folded name.
type Ad struct {
	names []string        // defining-case names, in insertion order
	attrs map[string]Expr // folded name -> expression
	pos   map[string]Pos  // folded name -> source position, when parsed
}

// Pos is a 1-based line/column source position.
type Pos struct {
	Line, Col int
}

// NewAd returns an empty classad.
func NewAd() *Ad {
	return &Ad{attrs: make(map[string]Expr)}
}

// Fold normalizes an attribute name for case-insensitive comparison.
func Fold(name string) string { return strings.ToLower(name) }

// Len returns the number of attributes in the ad.
func (a *Ad) Len() int {
	if a == nil {
		return 0
	}
	return len(a.names)
}

// Names returns the attribute names in insertion order, with defining
// case. The caller must not modify the returned slice.
func (a *Ad) Names() []string {
	if a == nil {
		return nil
	}
	return a.names
}

// Lookup returns the expression bound to name (case-insensitive).
func (a *Ad) Lookup(name string) (Expr, bool) {
	if a == nil {
		return nil, false
	}
	e, ok := a.attrs[Fold(name)]
	return e, ok
}

// Set binds name to expr, replacing any previous binding. The defining
// case of the first insertion is kept for printing.
func (a *Ad) Set(name string, expr Expr) {
	key := Fold(name)
	if _, exists := a.attrs[key]; !exists {
		a.names = append(a.names, name)
	}
	a.attrs[key] = expr
}

// setPos records the source position of an attribute's name token; the
// parser calls it so that diagnostics can point into the original
// source. Programmatically built ads carry no positions.
func (a *Ad) setPos(name string, p Pos) {
	if a.pos == nil {
		a.pos = make(map[string]Pos)
	}
	a.pos[Fold(name)] = p
}

// AttrPos returns the source position of the attribute's definition
// when the ad was produced by the parser; ok is false for attributes
// set programmatically (and for ads built with NewAd).
func (a *Ad) AttrPos(name string) (Pos, bool) {
	if a == nil || a.pos == nil {
		return Pos{}, false
	}
	p, ok := a.pos[Fold(name)]
	return p, ok
}

// Delete removes the binding for name, if any.
func (a *Ad) Delete(name string) {
	key := Fold(name)
	if _, exists := a.attrs[key]; !exists {
		return
	}
	delete(a.attrs, key)
	delete(a.pos, key)
	for i, n := range a.names {
		if Fold(n) == key {
			a.names = append(a.names[:i], a.names[i+1:]...)
			break
		}
	}
}

// SetInt binds name to an integer literal.
func (a *Ad) SetInt(name string, v int64) { a.Set(name, Lit(Int(v))) }

// SetReal binds name to a real literal.
func (a *Ad) SetReal(name string, v float64) { a.Set(name, Lit(Real(v))) }

// SetString binds name to a string literal.
func (a *Ad) SetString(name string, v string) { a.Set(name, Lit(Str(v))) }

// SetBool binds name to a boolean literal.
func (a *Ad) SetBool(name string, v bool) { a.Set(name, Lit(Bool(v))) }

// SetExprString parses src as an expression and binds name to it.
func (a *Ad) SetExprString(name, src string) error {
	e, err := ParseExpr(src)
	if err != nil {
		return err
	}
	a.Set(name, e)
	return nil
}

// Copy returns a deep-enough copy of the ad: the attribute table is
// copied; expressions are immutable after parsing and are shared.
func (a *Ad) Copy() *Ad {
	if a == nil {
		return nil
	}
	c := &Ad{
		names: append([]string(nil), a.names...),
		attrs: make(map[string]Expr, len(a.attrs)),
	}
	for k, v := range a.attrs {
		c.attrs[k] = v
	}
	if a.pos != nil {
		c.pos = make(map[string]Pos, len(a.pos))
		for k, v := range a.pos {
			c.pos[k] = v
		}
	}
	return c
}

// identical reports structural equality of two ads: the same attribute
// set with expressions that unparse identically.
func (a *Ad) identical(b *Ad) bool {
	if a.Len() != b.Len() {
		return false
	}
	for k, e := range a.attrs {
		f, ok := b.attrs[k]
		if !ok || e.String() != f.String() {
			return false
		}
	}
	return true
}

// Equal reports whether a and b define the same attributes with
// expressions that unparse identically (a structural, not semantic,
// comparison).
func (a *Ad) Equal(b *Ad) bool {
	switch {
	case a == nil && b == nil:
		return true
	case a == nil || b == nil:
		return false
	}
	return a.identical(b)
}

// String renders the ad in classad source syntax: a bracketed,
// semicolon-separated attribute list in insertion order.
func (a *Ad) String() string {
	if a == nil {
		return "[ ]"
	}
	var b strings.Builder
	b.WriteString("[ ")
	for i, n := range a.names {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(n)
		b.WriteString(" = ")
		b.WriteString(a.attrs[Fold(n)].String())
	}
	b.WriteString(" ]")
	return b.String()
}

// Pretty renders the ad one attribute per line, indented, in the style
// of the paper's Figure 1.
func (a *Ad) Pretty() string {
	if a == nil {
		return "[\n]"
	}
	var b strings.Builder
	b.WriteString("[\n")
	for _, n := range a.names {
		fmt.Fprintf(&b, "    %s = %s;\n", n, a.attrs[Fold(n)].String())
	}
	b.WriteString("]")
	return b.String()
}

// SortedNames returns the attribute names sorted case-insensitively,
// useful for deterministic digests.
func (a *Ad) SortedNames() []string {
	out := append([]string(nil), a.names...)
	sort.Slice(out, func(i, j int) bool { return Fold(out[i]) < Fold(out[j]) })
	return out
}
