package classad

import (
	"fmt"
	"strings"
)

// parser is a recursive-descent parser for the classad expression and
// ad grammar used in the paper's figures, with C-like operator
// precedence:
//
//	?:  <  ||  <  &&  <  == != is isnt  <  < <= > >=  <  + -  <  * / %
//	<  unary ! - +  <  postfix . [ ] ( )
//
// Reserved words (case-insensitive): true, false, undefined, error,
// is, isnt. The scope qualifiers self/my and other/target are ordinary
// identifiers given meaning when followed by a dot.
type parser struct {
	lx   *lexer
	tok  token // current token
	peek *token
}

func newParser(src string) (*parser, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *parser) advance() error {
	if p.peek != nil {
		p.tok, p.peek = *p.peek, nil
		return nil
	}
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// peekTok returns the token after the current one without consuming.
func (p *parser) peekTok() (token, error) {
	if p.peek == nil {
		t, err := p.lx.next()
		if err != nil {
			return token{}, err
		}
		p.peek = &t
	}
	return *p.peek, nil
}

func (p *parser) errorf(format string, args ...any) error {
	return &SyntaxError{Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokenKind, what string) error {
	if p.tok.kind != k {
		return p.errorf("expected %s, found %s", what, p.tok.describe())
	}
	return p.advance()
}

// identIs reports whether the current token is the given reserved
// word, compared case-insensitively.
func (p *parser) identIs(word string) bool {
	return p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, word)
}

// ParseExpr parses a single classad expression. Trailing input after
// the expression is an error.
func ParseExpr(src string) (Expr, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("unexpected %s after expression", p.tok.describe())
	}
	return e, nil
}

// MustParseExpr is ParseExpr that panics on error; for tests and
// package-level literals.
func MustParseExpr(src string) Expr {
	e, err := ParseExpr(src)
	if err != nil {
		panic(err)
	}
	return e
}

// Parse parses a single classad. The ad may be written in the paper's
// bracketed form ("[ a = 1; b = 2 ]") or as a bare attribute list
// ("a = 1\nb = 2"), the long form printed by pool status tools.
// Trailing input after the ad is an error.
func Parse(src string) (*Ad, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	var ad *Ad
	if p.tok.kind == tokLBracket {
		ad, err = p.parseAd()
	} else {
		ad, err = p.parseBareAd()
	}
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("unexpected %s after classad", p.tok.describe())
	}
	return ad, nil
}

// MustParse is Parse that panics on error; for tests and fixtures.
func MustParse(src string) *Ad {
	ad, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return ad
}

// ParseMulti parses a sequence of bracketed classads separated only by
// whitespace, as produced when ads are streamed to a file.
func ParseMulti(src string) ([]*Ad, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	var out []*Ad
	for p.tok.kind != tokEOF {
		if p.tok.kind != tokLBracket {
			return nil, p.errorf("expected '[' to begin a classad, found %s", p.tok.describe())
		}
		ad, err := p.parseAd()
		if err != nil {
			return nil, err
		}
		out = append(out, ad)
	}
	return out, nil
}

// parseAd parses a bracketed ad: '[' (name '=' expr (';' name '=' expr)*)? ';'? ']'.
func (p *parser) parseAd() (*Ad, error) {
	if err := p.expect(tokLBracket, "'['"); err != nil {
		return nil, err
	}
	ad := NewAd()
	for p.tok.kind != tokRBracket {
		if p.tok.kind != tokIdent {
			return nil, p.errorf("expected attribute name, found %s", p.tok.describe())
		}
		name, npos := p.tok.text, Pos{Line: p.tok.line, Col: p.tok.col}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect(tokAssign, "'='"); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ad.Set(name, e)
		ad.setPos(name, npos)
		if p.tok.kind == tokSemi {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := p.expect(tokRBracket, "']' or ';'"); err != nil {
		return nil, err
	}
	return ad, nil
}

// parseBareAd parses an unbracketed attribute list running to EOF.
// Attributes may be separated by semicolons or simply by the start of
// the next "name =" binding.
func (p *parser) parseBareAd() (*Ad, error) {
	ad := NewAd()
	for p.tok.kind != tokEOF {
		if p.tok.kind == tokSemi {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		if p.tok.kind != tokIdent {
			return nil, p.errorf("expected attribute name, found %s", p.tok.describe())
		}
		name, npos := p.tok.text, Pos{Line: p.tok.line, Col: p.tok.col}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect(tokAssign, "'='"); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ad.Set(name, e)
		ad.setPos(name, npos)
	}
	return ad, nil
}

// parseExpr parses a full expression (lowest precedence: ?:).
func (p *parser) parseExpr() (Expr, error) {
	cond, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokQuestion {
		return cond, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	then, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokColon, "':'"); err != nil {
		return nil, err
	}
	els, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return condExpr{cond, then, els}, nil
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOr {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = binaryExpr{OpOr, l, r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseEquality()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokAnd {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseEquality()
		if err != nil {
			return nil, err
		}
		l = binaryExpr{OpAnd, l, r}
	}
	return l, nil
}

func (p *parser) parseEquality() (Expr, error) {
	l, err := p.parseRelational()
	if err != nil {
		return nil, err
	}
	for {
		var op Op
		switch {
		case p.tok.kind == tokEq:
			op = OpEq
		case p.tok.kind == tokNe:
			op = OpNe
		case p.identIs("is"):
			op = OpIs
		case p.identIs("isnt"):
			op = OpIsnt
		default:
			return l, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseRelational()
		if err != nil {
			return nil, err
		}
		l = binaryExpr{op, l, r}
	}
}

func (p *parser) parseRelational() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		var op Op
		switch p.tok.kind {
		case tokLt:
			op = OpLt
		case tokLe:
			op = OpLe
		case tokGt:
			op = OpGt
		case tokGe:
			op = OpGe
		default:
			return l, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		l = binaryExpr{op, l, r}
	}
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op Op
		switch p.tok.kind {
		case tokPlus:
			op = OpAdd
		case tokMinus:
			op = OpSub
		default:
			return l, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = binaryExpr{op, l, r}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op Op
		switch p.tok.kind {
		case tokStar:
			op = OpMul
		case tokSlash:
			op = OpDiv
		case tokPercent:
			op = OpMod
		default:
			return l, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = binaryExpr{op, l, r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.tok.kind {
	case tokNot:
		if err := p.advance(); err != nil {
			return nil, err
		}
		arg, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{OpNot, arg}, nil
	case tokMinus:
		if err := p.advance(); err != nil {
			return nil, err
		}
		arg, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negation of numeric literals so that "-5" is the
		// literal -5, which keeps unparsing tidy.
		if lit, ok := arg.(litExpr); ok {
			if i, ok := lit.v.IntVal(); ok {
				return litExpr{Int(-i)}, nil
			}
			if r, ok := lit.v.RealVal(); ok {
				return litExpr{Real(-r)}, nil
			}
		}
		return unaryExpr{OpNeg, arg}, nil
	case tokPlus:
		if err := p.advance(); err != nil {
			return nil, err
		}
		arg, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{OpPlus, arg}, nil
	}
	return p.parsePostfix()
}

// parsePostfix parses a primary expression followed by any number of
// .name selections and [index] subscripts.
func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.tok.kind {
		case tokDot:
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind != tokIdent {
				return nil, p.errorf("expected attribute name after '.', found %s", p.tok.describe())
			}
			name := p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
			// self.X / other.X are scoped references, not
			// record selection, when the base is the bare
			// qualifier identifier.
			if ref, ok := e.(attrRef); ok && ref.scope == ScopeNone {
				switch Fold(ref.name) {
				case "self", "my":
					e = attrRef{ScopeSelf, name}
					continue
				case "other", "target":
					e = attrRef{ScopeOther, name}
					continue
				}
			}
			e = selectExpr{e, name}
		case tokLBracket:
			if err := p.advance(); err != nil {
				return nil, err
			}
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tokRBracket, "']'"); err != nil {
				return nil, err
			}
			e = indexExpr{e, idx}
		default:
			return e, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	switch p.tok.kind {
	case tokInt:
		v := Int(p.tok.ival)
		if err := p.advance(); err != nil {
			return nil, err
		}
		return litExpr{v}, nil
	case tokReal:
		v := Real(p.tok.rval)
		if err := p.advance(); err != nil {
			return nil, err
		}
		return litExpr{v}, nil
	case tokString:
		v := Str(p.tok.text)
		if err := p.advance(); err != nil {
			return nil, err
		}
		return litExpr{v}, nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tokLBrace:
		return p.parseList()
	case tokLBracket:
		ad, err := p.parseAd()
		if err != nil {
			return nil, err
		}
		return adExpr{ad}, nil
	case tokIdent:
		word := p.tok.text
		switch Fold(word) {
		case "true":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return litExpr{Bool(true)}, nil
		case "false":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return litExpr{Bool(false)}, nil
		case "undefined":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return litExpr{Undef()}, nil
		case "error":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return litExpr{Erroneous("error literal")}, nil
		}
		nxt, err := p.peekTok()
		if err != nil {
			return nil, err
		}
		if nxt.kind == tokLParen {
			return p.parseCall(word)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return attrRef{ScopeNone, word}, nil
	}
	return nil, p.errorf("expected expression, found %s", p.tok.describe())
}

// parseList parses '{' (expr (',' expr)*)? ','? '}'.
func (p *parser) parseList() (Expr, error) {
	if err := p.expect(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	var elems []Expr
	for p.tok.kind != tokRBrace {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		elems = append(elems, e)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := p.expect(tokRBrace, "'}' or ','"); err != nil {
		return nil, err
	}
	return listExpr{elems}, nil
}

// parseCall parses name '(' (expr (',' expr)*)? ')'.
func (p *parser) parseCall(name string) (Expr, error) {
	if err := p.advance(); err != nil { // past name
		return nil, err
	}
	if err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	var args []Expr
	for p.tok.kind != tokRParen {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := p.expect(tokRParen, "')' or ','"); err != nil {
		return nil, err
	}
	return callExpr{name, args}, nil
}
