package classad

import (
	"encoding/json"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	for _, src := range []string{Figure1Source, Figure2Source, "[]", "[a = {1, [b = 2]}]"} {
		ad := MustParse(src)
		text, err := ad.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Ad
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("unmarshal %q: %v", text, err)
		}
		if !ad.Equal(&back) {
			t.Errorf("text round trip changed ad:\n%s\nvs\n%s", ad, &back)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, src := range []string{Figure1Source, Figure2Source, "[]"} {
		ad := MustParse(src)
		data, err := json.Marshal(ad)
		if err != nil {
			t.Fatal(err)
		}
		var back Ad
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal: %v\njson: %s", err, data)
		}
		if !ad.Equal(&back) {
			t.Errorf("json round trip changed ad:\n%s\nvs\n%s", ad, &back)
		}
		// Order must be preserved, not just the attribute set.
		for i, n := range ad.Names() {
			if back.Names()[i] != n {
				t.Errorf("attribute %d renamed/reordered: %q vs %q", i, n, back.Names()[i])
			}
		}
	}
}

func TestJSONWithoutOrder(t *testing.T) {
	// Hand-written JSON with no _order still decodes (sorted).
	var ad Ad
	err := json.Unmarshal([]byte(`{"attrs": {"b": "2", "a": "1"}}`), &ad)
	if err != nil {
		t.Fatal(err)
	}
	if ad.Len() != 2 {
		t.Fatalf("got %d attributes", ad.Len())
	}
	if v := ad.Eval("a"); !v.Identical(Int(1)) {
		t.Errorf("a = %v", v)
	}
}

func TestJSONErrors(t *testing.T) {
	var ad Ad
	// Order references a missing attribute.
	if err := json.Unmarshal([]byte(`{"_order": ["x"], "attrs": {}}`), &ad); err == nil {
		t.Error("expected error for order/attrs mismatch")
	}
	// Unparseable expression.
	if err := json.Unmarshal([]byte(`{"_order": ["x"], "attrs": {"x": "1 +"}}`), &ad); err == nil {
		t.Error("expected error for bad expression")
	}
	// Invalid JSON.
	if err := json.Unmarshal([]byte(`{nope`), &ad); err == nil {
		t.Error("expected error for invalid json")
	}
	// Bad text form.
	if err := ad.UnmarshalText([]byte("[ not an ad")); err == nil {
		t.Error("expected error for bad text")
	}
}
