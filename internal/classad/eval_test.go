package classad

import (
	"fmt"
	"testing"
)

// evalStr is a test helper: parse and evaluate src against ad (nil for
// an empty scope).
func evalStr(t *testing.T, src string, ad *Ad) Value {
	t.Helper()
	v, err := EvalString(src, ad)
	if err != nil {
		t.Fatalf("EvalString(%q): %v", src, err)
	}
	return v
}

func TestArithmeticTyping(t *testing.T) {
	cases := map[string]Value{
		"1 + 2":      Int(3),
		"1 + 2.0":    Real(3),
		"1.5 + 1.5":  Real(3),
		"5 - 7":      Int(-2),
		"3 * 4":      Int(12),
		"3 * 0.5":    Real(1.5),
		"7 / 2":      Int(3),  // integer division truncates
		"-7 / 2":     Int(-3), // toward zero
		"7.0 / 2":    Real(3.5),
		"7 % 3":      Int(1),
		"-7 % 3":     Int(-1),
		"7.5 % 2":    Real(1.5),
		"2 + true":   Int(3), // booleans coerce in arithmetic (Figure 1 Rank)
		"true * 10":  Int(10),
		"false * 10": Int(0),
	}
	for src, want := range cases {
		if got := evalStr(t, src, nil); !got.Identical(want) {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestArithmeticErrors(t *testing.T) {
	for _, src := range []string{
		"1 / 0", "1 % 0", "1.0 / 0.0", `"a" + 1`, `1 + "a"`, `{1} * 2`, "-[a=1]", `-"s"`,
	} {
		if got := evalStr(t, src, nil); !got.IsError() {
			t.Errorf("%s = %v, want error", src, got)
		}
	}
}

func TestStrictUndefinedPropagation(t *testing.T) {
	// Paper §3.1: comparison operators are strict; all of these are
	// undefined when Memory is missing.
	ad := NewAd() // no Memory attribute
	for _, src := range []string{
		"other.Memory > 32",
		"other.Memory == 32",
		"other.Memory != 32",
		"!(other.Memory == 32)",
		"Memory + 1",
		"-Memory",
		"Memory < 32",
	} {
		if got := evalStr(t, src, ad); !got.IsUndefined() {
			t.Errorf("%s = %v, want undefined", src, got)
		}
	}
}

func TestErrorDominatesUndefined(t *testing.T) {
	for _, src := range []string{
		"Missing + 1/0",
		"1/0 + Missing",
		"Missing < (1/0)",
	} {
		if got := evalStr(t, src, nil); !got.IsError() {
			t.Errorf("%s = %v, want error", src, got)
		}
	}
}

// TestThreeValuedLogicAnd exhaustively checks the non-strict
// conjunction table of paper §3.1 (experiment E4).
func TestThreeValuedLogicAnd(t *testing.T) {
	// Values: T, F, U (undefined), E (error).
	operands := map[string]string{
		"T": "true", "F": "false", "U": "Missing", "E": "1/0",
	}
	// false dominates, then error, then undefined.
	want := map[string]string{
		"TT": "T", "TF": "F", "TU": "U", "TE": "E",
		"FT": "F", "FF": "F", "FU": "F", "FE": "F",
		"UT": "U", "UF": "F", "UU": "U", "UE": "E",
		"ET": "E", "EF": "F", "EU": "E", "EE": "E",
	}
	for pair, w := range want {
		src := fmt.Sprintf("(%s) && (%s)", operands[pair[:1]], operands[pair[1:]])
		got := evalStr(t, src, nil)
		if !valueMatchesLetter(got, w) {
			t.Errorf("%s = %v, want %s", src, got, w)
		}
	}
}

// TestThreeValuedLogicOr checks the dual table: true dominates.
func TestThreeValuedLogicOr(t *testing.T) {
	operands := map[string]string{
		"T": "true", "F": "false", "U": "Missing", "E": "1/0",
	}
	want := map[string]string{
		"TT": "T", "TF": "T", "TU": "T", "TE": "T",
		"FT": "T", "FF": "F", "FU": "U", "FE": "E",
		"UT": "T", "UF": "U", "UU": "U", "UE": "E",
		"ET": "T", "EF": "E", "EU": "E", "EE": "E",
	}
	for pair, w := range want {
		src := fmt.Sprintf("(%s) || (%s)", operands[pair[:1]], operands[pair[1:]])
		got := evalStr(t, src, nil)
		if !valueMatchesLetter(got, w) {
			t.Errorf("%s = %v, want %s", src, got, w)
		}
	}
}

func valueMatchesLetter(v Value, letter string) bool {
	switch letter {
	case "T":
		return v.IsTrue()
	case "F":
		b, ok := v.BoolVal()
		return ok && !b
	case "U":
		return v.IsUndefined()
	case "E":
		return v.IsError()
	}
	return false
}

func TestPaperOrExample(t *testing.T) {
	// Paper §3.1: "Mips >= 10 || Kflops >= 1000 evaluates to true
	// whenever either of the attributes Mips or Kflops exists and
	// satisfies the indicated bound."
	src := "Mips >= 10 || Kflops >= 1000"
	cases := []struct {
		ad   string
		want string
	}{
		{"[Mips = 104]", "T"},              // only Mips, satisfies
		{"[Kflops = 21893]", "T"},          // only Kflops, satisfies
		{"[Mips = 5]", "U"},                // Mips fails, Kflops missing
		{"[Mips = 5; Kflops = 2000]", "T"}, // one of two satisfies
		{"[Mips = 5; Kflops = 5]", "F"},    // both exist, both fail
		{"[]", "U"},                        // neither exists
	}
	for _, c := range cases {
		got := evalStr(t, src, MustParse(c.ad))
		if !valueMatchesLetter(got, c.want) {
			t.Errorf("%s in %s = %v, want %s", src, c.ad, got, c.want)
		}
	}
}

func TestNotOperator(t *testing.T) {
	cases := map[string]string{
		"!true":    "F",
		"!false":   "T",
		"!Missing": "U",
		"!(1/0)":   "E",
		"!1":       "F", // numeric coercion
		"!0":       "T",
	}
	for src, w := range cases {
		if got := evalStr(t, src, nil); !valueMatchesLetter(got, w) {
			t.Errorf("%s = %v, want %s", src, got, w)
		}
	}
	if got := evalStr(t, `!"str"`, nil); !got.IsError() {
		t.Errorf(`!"str" = %v, want error`, got)
	}
}

func TestIsAndIsnt(t *testing.T) {
	cases := map[string]bool{
		"undefined is undefined":    true,
		"Missing is undefined":      true,
		"error is error":            true,
		"(1/0) is error":            true,
		"1 is 1":                    true,
		"1 is 1.0":                  false, // type-sensitive
		`"a" is "a"`:                true,
		`"a" is "A"`:                false, // case-sensitive, unlike ==
		`"a" == "A"`:                true,  // == folds case
		"{1,2} is {1,2}":            true,
		"{1,2} is {2,1}":            false,
		"[a=1] is [a=1]":            true,
		"[a=1] is [a=2]":            false,
		"[a=1] is [A=1]":            true, // attribute names fold
		"1 isnt 2":                  true,
		"undefined isnt error":      true,
		"other.Memory is undefined": true, // the paper's idiom
		"true is 1":                 false,
	}
	for src, want := range cases {
		got := evalStr(t, src, nil)
		b, ok := got.BoolVal()
		if !ok {
			t.Errorf("%s = %v, want boolean", src, got)
			continue
		}
		if b != want {
			t.Errorf("%s = %v, want %v", src, b, want)
		}
	}
}

func TestPaperIsUndefinedIdiom(t *testing.T) {
	// Paper §3.1: "other.Memory is undefined || other.Memory < 32".
	src := "other.Memory is undefined || other.Memory < 32"
	if got := evalStr(t, src, MustParse("[]")); !got.IsTrue() {
		t.Errorf("idiom with missing Memory = %v, want true", got)
	}
	// With self Memory via fallback disabled — evaluate against an ad
	// that has Memory; other is nil so other.Memory is undefined and
	// the first disjunct is true regardless.
	if got := evalStr(t, src, MustParse("[Memory = 64]")); !got.IsTrue() {
		t.Errorf("idiom with no other ad = %v, want true", got)
	}
}

func TestStringComparisons(t *testing.T) {
	cases := map[string]bool{
		`"abc" == "abc"`: true,
		`"abc" == "ABC"`: true, // case-insensitive
		`"abc" != "abd"`: true,
		`"abc" < "abd"`:  true,
		`"B" < "a"`:      true, // folded: "b" < "a" is false... b>a
	}
	// fix: "B" folds to "b", and "b" < "a" is false.
	cases[`"B" < "a"`] = false
	cases[`"A" < "b"`] = true
	for src, want := range cases {
		got := evalStr(t, src, nil)
		if b, _ := got.BoolVal(); b != want {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
	// Mixed-type comparisons are errors.
	for _, src := range []string{`"a" < 1`, `1 == "1"`, `true < false`, `{1} == {1}`} {
		if got := evalStr(t, src, nil); !got.IsError() {
			t.Errorf("%s = %v, want error", src, got)
		}
	}
	// Boolean equality works.
	if got := evalStr(t, "true == true", nil); !got.IsTrue() {
		t.Errorf("true == true = %v", got)
	}
	if got := evalStr(t, "true != false", nil); !got.IsTrue() {
		t.Errorf("true != false = %v", got)
	}
}

func TestConditionalStrictness(t *testing.T) {
	if got := evalStr(t, "Missing ? 1 : 2", nil); !got.IsUndefined() {
		t.Errorf("undefined condition = %v, want undefined", got)
	}
	if got := evalStr(t, "(1/0) ? 1 : 2", nil); !got.IsError() {
		t.Errorf("error condition = %v, want error", got)
	}
	// Numeric coercion in the condition (Condor compatibility).
	if got := evalStr(t, "1 ? 10 : 20", nil); !got.Identical(Int(10)) {
		t.Errorf("1 ? 10 : 20 = %v", got)
	}
	// Only the selected branch evaluates.
	if got := evalStr(t, "true ? 1 : (1/0)", nil); !got.Identical(Int(1)) {
		t.Errorf("condition did not short-circuit: %v", got)
	}
}

func TestSelfScopeResolution(t *testing.T) {
	ad := MustParse(`[
		Memory = 64;
		Twice = Memory * 2;
		Deep = Twice + self.Memory;
	]`)
	if got := ad.Eval("Twice"); !got.Identical(Int(128)) {
		t.Errorf("Twice = %v, want 128", got)
	}
	if got := ad.Eval("Deep"); !got.Identical(Int(192)) {
		t.Errorf("Deep = %v, want 192", got)
	}
}

func TestCircularReferenceDetection(t *testing.T) {
	ad := MustParse(`[ a = b; b = a; self_loop = self_loop + 1 ]`)
	for _, name := range []string{"a", "b", "self_loop"} {
		if got := ad.Eval(name); !got.IsError() {
			t.Errorf("circular %s = %v, want error", name, got)
		}
	}
	// Circularity across a match: each ad's attribute refers to the
	// other's, forever.
	left := MustParse(`[ Constraint = other.Ping; Ping = other.Pong ]`)
	right := MustParse(`[ Pong = other.Ping ]`)
	v := left.EvalAgainst("Ping", right, nil)
	if !v.IsError() {
		t.Errorf("cross-ad circular reference = %v, want error", v)
	}
	// A diamond (shared non-circular reference) is fine.
	diamond := MustParse(`[ a = b + b; b = c; c = 1 ]`)
	if got := diamond.Eval("a"); !got.Identical(Int(2)) {
		t.Errorf("diamond a = %v, want 2", got)
	}
}

func TestCrossAdResolution(t *testing.T) {
	machine := MustParse(`[ Memory = 64; Arch = "INTEL" ]`)
	job := MustParse(`[ Memory = 31; Want = other.Memory; Fallback = Arch ]`)
	// other. goes to the candidate.
	if got := job.EvalAgainst("Want", machine, nil); !got.Identical(Int(64)) {
		t.Errorf("other.Memory = %v, want 64", got)
	}
	// Unqualified falls back to the candidate when self lacks it
	// (the Figure 2 behaviour).
	if got := job.EvalAgainst("Fallback", machine, nil); !got.Identical(Str("INTEL")) {
		t.Errorf("fallback Arch = %v, want INTEL", got)
	}
	// Self wins over other for unqualified names.
	if got := job.EvalAgainst("Memory", machine, nil); !got.Identical(Int(31)) {
		t.Errorf("self-preferred Memory = %v, want 31", got)
	}
	// Without a candidate, other.X is undefined.
	if got := job.Eval("Want"); !got.IsUndefined() {
		t.Errorf("other.Memory with nil candidate = %v, want undefined", got)
	}
}

func TestOtherAttributeEvaluatesInItsOwnScope(t *testing.T) {
	// When the machine's Rank mentions its own attributes, a job
	// evaluating other.Rank must see the machine's bindings, and the
	// machine expression's own `other` must flip back to the job.
	machine := MustParse(`[ Boost = 5; Rank = Boost + other.Weight ]`)
	job := MustParse(`[ Weight = 2; Peek = other.Rank ]`)
	if got := job.EvalAgainst("Peek", machine, nil); !got.Identical(Int(7)) {
		t.Errorf("other.Rank = %v, want 7 (flip must restore scopes)", got)
	}
}

func TestNestedAdScoping(t *testing.T) {
	ad := MustParse(`[
		inner = [ x = 2; y = x * 3 ];
		viaSelect = inner.y;
	]`)
	if got := ad.Eval("viaSelect"); !got.Identical(Int(6)) {
		t.Errorf("inner.y = %v, want 6", got)
	}
	// Selection on undefined propagates undefined; on error, error.
	if got := evalStr(t, "Missing.field", nil); !got.IsUndefined() {
		t.Errorf("Missing.field = %v, want undefined", got)
	}
	if got := evalStr(t, "(1/0).field", nil); !got.IsError() {
		t.Errorf("(1/0).field = %v, want error", got)
	}
	// Selection on a non-ad value is an error.
	if got := evalStr(t, "(42).x", nil); !got.IsError() {
		t.Errorf("(42).x = %v, want error", got)
	}
}

func TestDeepNestingBounded(t *testing.T) {
	// A chain a0 -> a1 -> ... -> aN of attribute references must not
	// blow the stack; it either evaluates (small N) or errors (huge N).
	ad := NewAd()
	n := 2000
	ad.SetInt("a0", 7)
	for i := 1; i <= n; i++ {
		ad.Set(fmt.Sprintf("a%d", i), Attr(fmt.Sprintf("a%d", i-1)))
	}
	v := ad.Eval(fmt.Sprintf("a%d", n))
	if !v.IsError() && !v.Identical(Int(7)) {
		t.Errorf("deep chain = %v, want 7 or error", v)
	}
	if !v.IsError() {
		t.Logf("chain of %d evaluated fully", n)
	}
}

func TestEvalAttrMissing(t *testing.T) {
	ad := MustParse("[a = 1]")
	if got := ad.Eval("nothere"); !got.IsUndefined() {
		t.Errorf("missing attribute = %v, want undefined", got)
	}
}

func TestFixedEnvDeterminism(t *testing.T) {
	env := FixedEnv(1234567, 42)
	ad := NewAd()
	v := ad.EvalEnv("x", env) // missing: undefined, but exercise env path
	if !v.IsUndefined() {
		t.Fatalf("unexpected %v", v)
	}
	e := MustParseExpr("time()")
	if got := EvalExprEnv(e, nil, env); !got.Identical(Int(1234567)) {
		t.Errorf("time() = %v, want 1234567", got)
	}
	// Same seed, same stream.
	a := FixedEnv(0, 7)
	b := FixedEnv(0, 7)
	ra := EvalExprEnv(MustParseExpr("random()"), nil, a)
	rb := EvalExprEnv(MustParseExpr("random()"), nil, b)
	if !ra.Identical(rb) {
		t.Errorf("random() with same seed differs: %v vs %v", ra, rb)
	}
}

func TestRankVal(t *testing.T) {
	cases := map[string]float64{
		"10":      10,
		"2.5":     2.5,
		"true":    0, // non-numeric counts as zero per the paper
		`"high"`:  0,
		"Missing": 0,
		"1/0":     0,
		"{1}":     0,
	}
	for src, want := range cases {
		got := evalStr(t, src, nil).RankVal()
		if got != want {
			t.Errorf("RankVal(%s) = %v, want %v", src, got, want)
		}
	}
}
