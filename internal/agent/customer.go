package agent

import (
	"fmt"
	"sync"

	"repro/internal/classad"
	"repro/internal/obs"
)

// JobStatus is the lifecycle state of a queued job.
type JobStatus string

// Job states. Idle jobs advertise; Running jobs hold a claim; evicted
// jobs return to Idle (the CA resubmits them); Completed jobs leave
// the negotiation.
const (
	JobIdle      JobStatus = "Idle"
	JobRunning   JobStatus = "Running"
	JobCompleted JobStatus = "Completed"
	JobRemoved   JobStatus = "Removed"
)

// AttrJobID is the attribute the CA stamps on request ads so that
// match notifications can be routed back to the queue entry.
const AttrJobID = "JobId"

// Job is one queue entry.
type Job struct {
	// ID is the CA-assigned queue identifier.
	ID int
	// Ad is the job's classad (the Figure 2 shape).
	Ad *classad.Ad
	// Status is the lifecycle state.
	Status JobStatus
	// Resource names the machine running the job, when Running.
	Resource string
	// Work is the remaining work in CPU-seconds (simulation
	// currency); Done accumulates completed work. An eviction loses
	// progress since the last checkpoint.
	Work, Done float64
	// Checkpointed is the work safely banked by checkpointing; an
	// evicted job resumes from here (WantCheckpoint in Figure 2).
	Checkpointed float64
	// Evictions counts how many times the job lost its machine.
	Evictions int
}

// Customer is a Customer Agent: one owner, one queue.
type Customer struct {
	mu     sync.Mutex
	owner  string
	nextID int
	jobs   map[int]*Job
	order  []int
	env    *classad.Env
}

// NewCustomer builds a CA for owner.
func NewCustomer(owner string, env *classad.Env) *Customer {
	if env == nil {
		env = classad.DefaultEnv()
	}
	return &Customer{owner: owner, jobs: make(map[int]*Job), env: env}
}

// Owner returns the customer identity.
func (c *Customer) Owner() string { return c.owner }

// Submit queues a job ad, stamping Owner, QDate and JobId the way the
// deployed submission tool does, and returns the queue entry. work is
// the job's total demand in CPU-seconds (used by the simulator; zero
// is fine for protocol-only use).
func (c *Customer) Submit(ad *classad.Ad, work float64) *Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	stamped := ad.Copy()
	stamped.SetString(classad.AttrOwner, c.owner)
	stamped.SetInt(AttrJobID, int64(c.nextID))
	if _, ok := stamped.Lookup("QDate"); !ok {
		stamped.SetInt("QDate", c.env.Now())
	}
	if _, ok := stamped.Lookup(classad.AttrType); !ok {
		stamped.SetString(classad.AttrType, "Job")
	}
	// Every job is traceable from birth: direct submissions (tests,
	// simulator) that bypass the CA daemon's submit handler still get a
	// trace ID, so negotiation spans have something to hang off.
	if classad.TraceOf(stamped) == "" {
		stamped.SetString(classad.AttrTraceID, obs.NewTraceID())
	}
	j := &Job{ID: c.nextID, Ad: stamped, Status: JobIdle, Work: work}
	c.jobs[j.ID] = j
	c.order = append(c.order, j.ID)
	return j
}

// Remove withdraws a job from the queue.
func (c *Customer) Remove(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return fmt.Errorf("agent: no job %d in %s's queue", id, c.owner)
	}
	j.Status = JobRemoved
	return nil
}

// Job fetches a copy of a queue entry by ID. A copy, not a pointer:
// the queue mutates under its own lock, and handing out aliases would
// let callers observe torn states.
func (c *Customer) Job(id int) (Job, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// IdleRequests returns the request ads of all idle jobs, in submission
// order — what the CA hands the matchmaker when the negotiation cycle
// asks for requests.
func (c *Customer) IdleRequests() []*classad.Ad {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*classad.Ad
	for _, id := range c.order {
		if j := c.jobs[id]; j.Status == JobIdle {
			out = append(out, j.Ad)
		}
	}
	return out
}

// Counts reports queue occupancy by status.
func (c *Customer) Counts() map[JobStatus]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[JobStatus]int)
	for _, j := range c.jobs {
		out[j.Status]++
	}
	return out
}

// JobIDOf extracts the queue ID a request ad was stamped with.
func JobIDOf(ad *classad.Ad) (int, bool) {
	v := ad.Eval(AttrJobID)
	n, ok := v.IntVal()
	return int(n), ok
}

// MarkRunning transitions a job to Running on machine resource.
func (c *Customer) MarkRunning(id int, resource string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return fmt.Errorf("agent: no job %d", id)
	}
	if j.Status != JobIdle {
		return fmt.Errorf("agent: job %d is %s, cannot start", id, j.Status)
	}
	j.Status = JobRunning
	j.Resource = resource
	return nil
}

// Progress credits CPU-seconds to a running job; it reports true when
// the job completes. checkpoint controls whether the progress is
// banked against eviction.
func (c *Customer) Progress(id int, cpu float64, checkpoint bool) (completed bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return false, fmt.Errorf("agent: no job %d", id)
	}
	if j.Status != JobRunning {
		return false, fmt.Errorf("agent: job %d is %s, cannot progress", id, j.Status)
	}
	j.Done += cpu
	if checkpoint {
		j.Checkpointed = j.Done
	}
	if j.Done >= j.Work {
		j.Status = JobCompleted
		j.Resource = ""
		j.Ad.SetInt("CompletionDate", c.env.Now())
		return true, nil
	}
	return false, nil
}

// Evicted handles a preemption notice: the job loses unbanked progress
// and returns to Idle for resubmission in the next cycle.
func (c *Customer) Evicted(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return fmt.Errorf("agent: no job %d", id)
	}
	if j.Status != JobRunning {
		return fmt.Errorf("agent: job %d is %s, cannot evict", id, j.Status)
	}
	j.Status = JobIdle
	j.Resource = ""
	j.Done = j.Checkpointed
	j.Evictions++
	return nil
}

// Snapshot returns copies of all queue entries, in submission order.
func (c *Customer) Snapshot() []Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Job, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, *c.jobs[id])
	}
	return out
}
