package agent

import (
	"testing"

	"repro/internal/classad"
	"repro/internal/protocol"
)

// challengeRespond computes the CA side of the claim handshake.
func challengeRespond(ticket, nonce string) string {
	return protocol.Respond(ticket, nonce)
}

// workstation builds an RA around a Figure-1-style policy.
func workstation(name string) *Resource {
	base := classad.Figure1()
	base.SetString("Name", name)
	return NewResource(base, classad.FixedEnv(1000, 1))
}

// researchJob returns a job ad owned by a research-group member (the
// Figure 1 machine always accepts it at rank 10).
func researchJob() *classad.Ad {
	ad := classad.Figure2()
	return ad
}

func friendJob() *classad.Ad {
	ad := classad.Figure2()
	ad.SetString("Owner", "tannenba")
	return ad
}

func otherJob(owner string) *classad.Ad {
	ad := classad.Figure2()
	ad.SetString("Owner", owner)
	return ad
}

func TestResourceAdvertiseCarriesTicketAndState(t *testing.T) {
	r := workstation("w1")
	ad, err := r.Advertise()
	if err != nil {
		t.Fatal(err)
	}
	ticket, ok := ad.Eval(classad.AttrTicket).StringVal()
	if !ok || len(ticket) != 32 {
		t.Fatalf("ticket = %v", ad.Eval(classad.AttrTicket))
	}
	if st, _ := ad.Eval("State").StringVal(); st != "Unclaimed" {
		t.Errorf("State = %q", st)
	}
	// Each advertisement mints a fresh ticket.
	ad2, _ := r.Advertise()
	ticket2, _ := ad2.Eval(classad.AttrTicket).StringVal()
	if ticket == ticket2 {
		t.Error("ticket reused across advertisements")
	}
}

func TestClaimHappyPath(t *testing.T) {
	r := workstation("w1")
	ad, _ := r.Advertise()
	ticket, _ := ad.Eval(classad.AttrTicket).StringVal()
	out := r.RequestClaim(researchJob(), ticket)
	if !out.Accepted {
		t.Fatalf("claim rejected: %s", out.Reason)
	}
	if r.State() != StateClaimed {
		t.Errorf("state = %s, want Claimed", r.State())
	}
	claim, ok := r.CurrentClaim()
	if !ok || claim.Customer != "raman" || claim.Rank != 10 {
		t.Errorf("claim = %+v", claim)
	}
}

func TestClaimTicketChecks(t *testing.T) {
	r := workstation("w1")
	ad, _ := r.Advertise()
	ticket, _ := ad.Eval(classad.AttrTicket).StringVal()
	// Wrong ticket.
	if out := r.RequestClaim(researchJob(), "bogus"); out.Accepted {
		t.Error("claim with wrong ticket accepted")
	}
	// Stale ticket: a fresh advertisement invalidates the old one.
	if _, err := r.Advertise(); err != nil {
		t.Fatal(err)
	}
	if out := r.RequestClaim(researchJob(), ticket); out.Accepted {
		t.Error("claim with superseded ticket accepted")
	}
	// Consumed ticket: after a successful claim the ticket is spent.
	ad3, _ := r.Advertise()
	ticket3, _ := ad3.Eval(classad.AttrTicket).StringVal()
	if out := r.RequestClaim(researchJob(), ticket3); !out.Accepted {
		t.Fatalf("claim rejected: %s", out.Reason)
	}
	if out := r.RequestClaim(researchJob(), ticket3); out.Accepted {
		t.Error("spent ticket accepted again")
	}
	// Empty ticket never matches.
	if out := r.RequestClaim(researchJob(), ""); out.Accepted {
		t.Error("empty ticket accepted")
	}
}

// TestClaimRevalidation is experiment E5's unit form: state changes
// between advertisement and claim are caught at claim time (weak
// consistency, paper §3.2).
func TestClaimRevalidation(t *testing.T) {
	r := workstation("w1")
	ad, _ := r.Advertise()
	ticket, _ := ad.Eval(classad.AttrTicket).StringVal()
	// Between match and claim the owner came back: keyboard touched.
	// A friend's job needed KeyboardIdle > 15 min; the claim must be
	// re-checked against *current* state and rejected.
	r.SetDynamic("KeyboardIdle", classad.Int(3))
	out := r.RequestClaim(friendJob(), ticket)
	if out.Accepted {
		t.Fatal("stale match not caught at claim time")
	}
	// A research job is still fine — the policy admits it whatever
	// the keyboard is doing.
	out = r.RequestClaim(friendJob(), ticket)
	if out.Accepted {
		t.Fatal("second attempt should also fail")
	}
	out = r.RequestClaim(researchJob(), ticket)
	if !out.Accepted {
		t.Fatalf("research claim rejected: %s", out.Reason)
	}
}

// TestClaimRevalidationJobSide: the job's own constraint is also
// re-verified against the provider's current state.
func TestClaimRevalidationJobSide(t *testing.T) {
	r := workstation("w1")
	ad, _ := r.Advertise()
	ticket, _ := ad.Eval(classad.AttrTicket).StringVal()
	// Disk shrank below the job's requirement after the ad was sent.
	r.SetDynamic("Disk", classad.Int(10))
	out := r.RequestClaim(researchJob(), ticket)
	if out.Accepted {
		t.Error("claim accepted though the job's constraint now fails")
	}
}

// TestPreemption: a higher-ranked customer displaces the incumbent
// (paper §4); an equal- or lower-ranked one does not.
func TestPreemption(t *testing.T) {
	r := workstation("w1")
	ad, _ := r.Advertise()
	ticket, _ := ad.Eval(classad.AttrTicket).StringVal()
	// Friend claims the idle machine (rank 1).
	if out := r.RequestClaim(friendJob(), ticket); !out.Accepted {
		t.Fatalf("friend claim rejected: %s", out.Reason)
	}
	// Machine re-advertises while claimed.
	ad2, _ := r.Advertise()
	if st, _ := ad2.Eval("State").StringVal(); st != "Claimed" {
		t.Errorf("claimed machine advertises state %q", st)
	}
	if cr := ad2.Eval("CurrentRank").RankVal(); cr != 1 {
		t.Errorf("CurrentRank = %v, want 1", cr)
	}
	ticket2, _ := ad2.Eval(classad.AttrTicket).StringVal()
	// Another friend (same rank 1): refused, no preemption.
	out := r.RequestClaim(friendJob(), ticket2)
	if out.Accepted {
		t.Fatal("equal-rank claim preempted the incumbent")
	}
	// Research job (rank 10): preempts.
	ad3, _ := r.Advertise()
	ticket3, _ := ad3.Eval(classad.AttrTicket).StringVal()
	out = r.RequestClaim(researchJob(), ticket3)
	if !out.Accepted {
		t.Fatalf("higher-rank claim rejected: %s", out.Reason)
	}
	if out.Preempted == nil || out.Preempted.Customer != "tannenba" {
		t.Errorf("preempted = %+v, want tannenba's claim", out.Preempted)
	}
	preempted, _ := r.Stats()
	if preempted != 1 {
		t.Errorf("preemption count = %d", preempted)
	}
	claim, _ := r.CurrentClaim()
	if claim.Customer != "raman" {
		t.Errorf("claim holder = %s", claim.Customer)
	}
}

func TestReleaseAndEvict(t *testing.T) {
	r := workstation("w1")
	ad, _ := r.Advertise()
	ticket, _ := ad.Eval(classad.AttrTicket).StringVal()
	if err := r.Release("anyone"); err == nil {
		t.Error("release on unclaimed resource should error")
	}
	_ = r.RequestClaim(researchJob(), ticket)
	if err := r.Release("intruder"); err == nil {
		t.Error("release by non-holder should error")
	}
	if err := r.Release("raman"); err != nil {
		t.Fatal(err)
	}
	if r.State() != StateUnclaimed {
		t.Errorf("state after release = %s", r.State())
	}
	// Eviction by owner activity.
	ad2, _ := r.Advertise()
	ticket2, _ := ad2.Eval(classad.AttrTicket).StringVal()
	_ = r.RequestClaim(researchJob(), ticket2)
	old, ok := r.Evict()
	if !ok || old.Customer != "raman" {
		t.Errorf("evicted claim = %+v", old)
	}
	if r.State() != StateOwner {
		t.Errorf("state after evict = %s, want Owner", r.State())
	}
	if _, ok := r.Evict(); ok {
		t.Error("second evict found a claim")
	}
	_, evictions := r.Stats()
	if evictions != 1 {
		t.Errorf("evictions = %d", evictions)
	}
}

func TestOwnerPresence(t *testing.T) {
	r := workstation("w1")
	r.OwnerReturned()
	if r.State() != StateOwner {
		t.Errorf("state = %s", r.State())
	}
	r.OwnerLeft()
	if r.State() != StateUnclaimed {
		t.Errorf("state = %s", r.State())
	}
	// Owner presence does not clobber a claim's state directly.
	ad, _ := r.Advertise()
	ticket, _ := ad.Eval(classad.AttrTicket).StringVal()
	_ = r.RequestClaim(researchJob(), ticket)
	r.OwnerReturned()
	if r.State() != StateClaimed {
		t.Errorf("OwnerReturned changed a claimed machine to %s", r.State())
	}
}

func TestVerifyChallenge(t *testing.T) {
	r := workstation("w1")
	ad, _ := r.Advertise()
	ticket, _ := ad.Eval(classad.AttrTicket).StringVal()
	nonce := "abc123"
	mac := challengeRespond(ticket, nonce)
	if !r.VerifyChallenge(nonce, mac) {
		t.Error("valid challenge response rejected")
	}
	if r.VerifyChallenge(nonce, challengeRespond("wrong", nonce)) {
		t.Error("forged response accepted")
	}
}

func TestForceClaim(t *testing.T) {
	// ForceClaim bypasses ticket and policy — the baseline scheduler's
	// dispatch. Owner policy would reject this job (untrusted), but
	// force installs it anyway.
	r := workstation("w1")
	job := otherJob("rival") // untrusted per Figure 1
	claim := r.ForceClaim(job)
	if claim.Customer != "rival" {
		t.Errorf("claim customer = %q", claim.Customer)
	}
	if r.State() != StateClaimed {
		t.Errorf("state = %s", r.State())
	}
	// Force-claim over an existing claim counts as a preemption.
	r.ForceClaim(otherJob("riffraff"))
	preempted, _ := r.Stats()
	if preempted != 1 {
		t.Errorf("preempted = %d", preempted)
	}
	// Release works normally afterwards.
	if err := r.Release("riffraff"); err != nil {
		t.Fatal(err)
	}
	if r.State() != StateUnclaimed {
		t.Errorf("state after release = %s", r.State())
	}
}

func TestPublishClock(t *testing.T) {
	// 10:01:47 into some day.
	env := classad.FixedEnv(36107+1000*86400, 1)
	base := classad.Figure1()
	base.Delete("DayTime") // replace the static figure value
	r := NewResource(base, env)
	r.PublishClock()
	ad, err := r.Advertise()
	if err != nil {
		t.Fatal(err)
	}
	if v := ad.Eval("DayTime"); !v.Identical(classad.Int(36107)) {
		t.Errorf("DayTime = %v, want 36107", v)
	}
	if v := ad.Eval("CurrentTime"); !v.Identical(classad.Int(36107 + 1000*86400)) {
		t.Errorf("CurrentTime = %v", v)
	}
	// The published values are snapshots: they parse back as plain
	// literals, so a stored ad ages while the RA's live view moves.
	back := classad.MustParse(ad.String())
	if v := back.Eval("DayTime"); !v.Identical(classad.Int(36107)) {
		t.Errorf("snapshot DayTime = %v", v)
	}
}

func TestDynamicAttributesAppearInAd(t *testing.T) {
	r := workstation("w1")
	r.SetDynamic("LoadAvg", classad.Real(1.75))
	r.SetDynamic("KeyboardIdle", classad.Int(9))
	ad, _ := r.Advertise()
	if v := ad.Eval("LoadAvg"); !v.Identical(classad.Real(1.75)) {
		t.Errorf("LoadAvg = %v", v)
	}
	if v := ad.Eval("KeyboardIdle"); !v.Identical(classad.Int(9)) {
		t.Errorf("KeyboardIdle = %v", v)
	}
}
