// Package agent implements the two agent roles of paper §4:
//
//   - the Resource-owner Agent (RA), "responsible for enforcing the
//     policies stipulated by resource owners": it probes the resource,
//     encapsulates state and policy in a classad, mints authorization
//     tickets, and at claim time re-verifies both the ticket and its
//     constraints against *current* state — the weak-consistency
//     design of §3.2;
//   - the Customer Agent (CA), which "maintains per-customer queues of
//     submitted jobs, represented as lists of classads", turns idle
//     jobs into request ads, claims matched resources, and resubmits
//     jobs evicted by preemption.
package agent

import (
	"fmt"
	"sync"

	"repro/internal/classad"
	"repro/internal/protocol"
)

// MachineState is the RA's activity state, advertised in the State
// attribute.
type MachineState string

// The RA state machine: Unclaimed -> Claimed -> (Preempting ->)
// Unclaimed. Matched is a transient the protocol traverses between
// notification and claim; it is not advertised.
const (
	StateUnclaimed  MachineState = "Unclaimed"
	StateClaimed    MachineState = "Claimed"
	StatePreempting MachineState = "Preempting"
	// StateOwner marks a machine whose interactive owner is active;
	// its policy usually refuses all matches in this state.
	StateOwner MachineState = "Owner"
)

// Claim records the working relationship the claiming protocol
// establishes.
type Claim struct {
	// Customer is the owner of the claiming job.
	Customer string
	// Job is the request ad the claim was granted to.
	Job *classad.Ad
	// Rank is the RA's rank of the job at claim time; a later claim
	// preempts only if the RA ranks it strictly higher.
	Rank float64
	// Started is the claim's start, in env time.
	Started int64
}

// Resource is a Resource-owner Agent.
type Resource struct {
	mu sync.Mutex
	// base is the owner-supplied ad: capabilities plus the policy
	// expressions (Constraint, Rank). The RA never mutates it.
	base *classad.Ad
	// dynamic holds probe results (LoadAvg, KeyboardIdle, DayTime,
	// ...), merged over base at advertisement and claim time. Values
	// may be live expressions (e.g. time()-based keyboard idleness)
	// so that claim-time re-validation sees genuinely current state;
	// advertisements snapshot them to literals.
	dynamic map[string]classad.Expr
	env     *classad.Env

	state  MachineState
	ticket string // ticket of the outstanding advertisement
	claim  *Claim

	// preempted counts claims evicted in favour of better ones, and
	// evictions counts owner-activity evictions; benchmarks read
	// both.
	preempted int
	evictions int
}

// NewResource builds an RA around an owner-supplied ad. The ad should
// carry a Name; Constraint/Rank express the owner's policy (a missing
// Constraint accepts everyone).
func NewResource(base *classad.Ad, env *classad.Env) *Resource {
	if env == nil {
		env = classad.DefaultEnv()
	}
	return &Resource{
		base:    base,
		dynamic: make(map[string]classad.Expr),
		env:     env,
		state:   StateUnclaimed,
	}
}

// Name returns the resource's advertised name.
func (r *Resource) Name() string {
	s, _ := r.base.Eval(classad.AttrName).StringVal()
	return s
}

// SetDynamic records a probe result that will appear in subsequent
// advertisements and in claim-time policy evaluation: the RA
// "periodically probes the resource to determine its current state".
func (r *Resource) SetDynamic(name string, v classad.Value) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dynamic[name] = classad.Lit(v)
}

// PublishClock installs the standard time-derived probes as live
// expressions: DayTime (seconds since midnight, the paper's Figure 1
// attribute) and CurrentTime. Night-only owner policies then evaluate
// correctly both in fresh advertisements and at claim time.
func (r *Resource) PublishClock() {
	r.SetDynamicExpr("DayTime", classad.NewCall("dayTime"))
	r.SetDynamicExpr("CurrentTime", classad.NewCall("time"))
}

// SetDynamicExpr records a live probe: the expression is re-evaluated
// whenever the RA's current state is consulted, so a claim arriving
// long after the last advertisement still sees up-to-date values —
// e.g. KeyboardIdle = time() - idleSince. Advertisements freeze the
// expression's current value, which is exactly what makes a stored ad
// stale.
func (r *Resource) SetDynamicExpr(name string, e classad.Expr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dynamic[name] = e
}

// State reports the current machine state.
func (r *Resource) State() MachineState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// CurrentClaim returns a copy of the active claim, if any.
func (r *Resource) CurrentClaim() (Claim, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.claim == nil {
		return Claim{}, false
	}
	return *r.claim, true
}

// Stats reports preemption and eviction counts.
func (r *Resource) Stats() (preempted, evictions int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.preempted, r.evictions
}

// currentAdLocked composes base + dynamic + state into the ad the RA
// stands behind right now.
func (r *Resource) currentAdLocked() *classad.Ad {
	ad := r.base.Copy()
	for k, e := range r.dynamic {
		ad.Set(k, e)
	}
	ad.SetString("State", string(r.state))
	if r.claim != nil {
		ad.SetReal("CurrentRank", r.claim.Rank)
		ad.SetString("RemoteOwner", r.claim.Customer)
	}
	return ad
}

// Advertise composes the current advertisement, minting a fresh
// authorization ticket that a subsequent claim must present (paper §4:
// the advertising protocol "allows an RA to include an authorization
// ticket with its ad"). The ticket is embedded in the ad so the
// matchmaker can forward it to the matched customer.
func (r *Resource) Advertise() (*classad.Ad, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ticket, err := protocol.NewTicket()
	if err != nil {
		return nil, err
	}
	r.ticket = ticket
	ad := r.currentAdLocked()
	// Snapshot live probes to literals: the advertisement describes
	// the resource at this instant, and ages from here.
	for k := range r.dynamic {
		v := ad.EvalEnv(k, r.env)
		ad.Set(k, classad.Lit(v))
	}
	ad.SetString(classad.AttrTicket, ticket)
	return ad, nil
}

// ClaimOutcome reports a claim decision.
type ClaimOutcome struct {
	Accepted bool
	// Reason explains a rejection.
	Reason string
	// Preempted is the claim that was evicted to make room, if any.
	Preempted *Claim
}

// RequestClaim runs the RA side of the claiming protocol (paper §4):
// "The RA accepts the resource request only if the ticket matches the
// one that it gave the pool manager, and the request matches the RA's
// constraints with respect to the updated state of the request and
// resource, which may have changed since the last advertisement."
//
// When the machine is already claimed, the request is accepted only if
// the RA ranks it strictly higher than the running claim, in which
// case the incumbent is preempted — the opportunistic-scheduling rule
// of §4 ("it is still interested in hearing from higher priority
// customers"). What constitutes higher priority is the RA's Rank
// expression, i.e. entirely under owner control.
func (r *Resource) RequestClaim(job *classad.Ad, ticket string) ClaimOutcome {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ticket == "" || ticket != r.ticket {
		return ClaimOutcome{Reason: "authorization ticket mismatch"}
	}
	// Weak consistency: re-verify both constraints against the
	// *current* ad, not the one that was matched.
	cur := r.currentAdLocked()
	if !classad.EvalConstraint(cur, job, r.env) {
		return ClaimOutcome{Reason: "resource constraint no longer satisfied"}
	}
	if !classad.EvalConstraint(job, cur, r.env) {
		return ClaimOutcome{Reason: "request constraint no longer satisfied"}
	}
	rank := classad.EvalRank(cur, job, r.env)
	var preempted *Claim
	if r.claim != nil {
		if rank <= r.claim.Rank {
			return ClaimOutcome{Reason: fmt.Sprintf(
				"claimed by %s at rank %g (offered rank %g)",
				r.claim.Customer, r.claim.Rank, rank)}
		}
		old := *r.claim
		preempted = &old
		r.preempted++
	}
	owner, _ := job.Eval(classad.AttrOwner).StringVal()
	r.claim = &Claim{
		Customer: owner,
		Job:      job,
		Rank:     rank,
		Started:  r.env.Now(),
	}
	r.state = StateClaimed
	// The presented ticket is consumed; the next advertisement mints
	// a fresh one.
	r.ticket = ""
	return ClaimOutcome{Accepted: true, Preempted: preempted}
}

// ForceClaim installs a claim with no ticket or constraint checks.
// It models dispatch by a conventional scheduler that has no notion of
// owner policies (the baseline of experiment E7) and the ablation that
// removes claim-time re-validation (E5); the matchmaking path never
// uses it.
func (r *Resource) ForceClaim(job *classad.Ad) Claim {
	r.mu.Lock()
	defer r.mu.Unlock()
	owner, _ := job.Eval(classad.AttrOwner).StringVal()
	if r.claim != nil {
		r.preempted++
	}
	r.claim = &Claim{
		Customer: owner,
		Job:      job,
		Rank:     0,
		Started:  r.env.Now(),
	}
	r.state = StateClaimed
	r.ticket = ""
	return *r.claim
}

// Release ends the active claim (customer side finished or gave up):
// "When the CA finishes using the resource, it relinquishes the claim,
// and the RA advertises itself as unclaimed."
func (r *Resource) Release(customer string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.claim == nil {
		return fmt.Errorf("agent: release on unclaimed resource %s", r.Name())
	}
	if customer != "" && r.claim.Customer != customer {
		return fmt.Errorf("agent: release by %s but claim is held by %s",
			customer, r.claim.Customer)
	}
	r.claim = nil
	r.state = StateUnclaimed
	return nil
}

// Evict forcibly ends the active claim because the owner reclaimed the
// machine (keyboard touched, load rose). Returns the evicted claim.
func (r *Resource) Evict() (Claim, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.claim == nil {
		return Claim{}, false
	}
	old := *r.claim
	r.claim = nil
	r.state = StateOwner
	r.evictions++
	return old, true
}

// OwnerReturned marks interactive owner activity without an active
// claim; OwnerLeft returns the machine to the pool.
func (r *Resource) OwnerReturned() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.claim == nil {
		r.state = StateOwner
	}
}

// OwnerLeft marks the machine idle again.
func (r *Resource) OwnerLeft() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.claim == nil {
		r.state = StateUnclaimed
	}
}

// VerifyChallenge implements the RA side of the claiming protocol's
// optional challenge-response: prove the peer knows the ticket.
func (r *Resource) VerifyChallenge(nonce, mac string) bool {
	r.mu.Lock()
	ticket := r.ticket
	r.mu.Unlock()
	return ticket != "" && protocol.VerifyResponse(ticket, nonce, mac)
}
