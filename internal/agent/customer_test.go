package agent

import (
	"testing"

	"repro/internal/classad"
)

func newCA(t *testing.T) *Customer {
	t.Helper()
	return NewCustomer("raman", classad.FixedEnv(500, 1))
}

func TestSubmitStampsAttributes(t *testing.T) {
	c := newCA(t)
	j := c.Submit(classad.MustParse(`[ Cmd = "run_sim"; Memory = 31 ]`), 100)
	if j.ID != 1 || j.Status != JobIdle {
		t.Fatalf("job = %+v", j)
	}
	if owner, _ := j.Ad.Eval("Owner").StringVal(); owner != "raman" {
		t.Errorf("Owner = %q", owner)
	}
	if id, ok := JobIDOf(j.Ad); !ok || id != 1 {
		t.Errorf("JobId = %d, %v", id, ok)
	}
	if q, _ := j.Ad.Eval("QDate").IntVal(); q != 500 {
		t.Errorf("QDate = %d", q)
	}
	if typ, _ := j.Ad.Eval("Type").StringVal(); typ != "Job" {
		t.Errorf("Type = %q", typ)
	}
	// A caller-supplied QDate survives.
	j2 := c.Submit(classad.MustParse(`[ QDate = 42 ]`), 1)
	if q, _ := j2.Ad.Eval("QDate").IntVal(); q != 42 {
		t.Errorf("caller QDate = %d", q)
	}
	// IDs are sequential.
	if j2.ID != 2 {
		t.Errorf("second ID = %d", j2.ID)
	}
}

func TestSubmitDoesNotMutateCallerAd(t *testing.T) {
	c := newCA(t)
	ad := classad.MustParse(`[ Cmd = "x" ]`)
	c.Submit(ad, 1)
	if _, ok := ad.Lookup("Owner"); ok {
		t.Error("Submit mutated the caller's ad")
	}
}

func TestIdleRequestsLifecycle(t *testing.T) {
	c := newCA(t)
	j1 := c.Submit(classad.MustParse(`[ Cmd = "a" ]`), 10)
	j2 := c.Submit(classad.MustParse(`[ Cmd = "b" ]`), 10)
	if n := len(c.IdleRequests()); n != 2 {
		t.Fatalf("idle = %d", n)
	}
	if err := c.MarkRunning(j1.ID, "w1"); err != nil {
		t.Fatal(err)
	}
	if n := len(c.IdleRequests()); n != 1 {
		t.Errorf("idle after start = %d", n)
	}
	// Running a running job is an error.
	if err := c.MarkRunning(j1.ID, "w2"); err == nil {
		t.Error("double MarkRunning allowed")
	}
	// Completion.
	done, err := c.Progress(j1.ID, 10, false)
	if err != nil || !done {
		t.Fatalf("progress: done=%v err=%v", done, err)
	}
	job1, _ := c.Job(j1.ID)
	if job1.Status != JobCompleted {
		t.Errorf("status = %s", job1.Status)
	}
	if cd, _ := job1.Ad.Eval("CompletionDate").IntVal(); cd != 500 {
		t.Errorf("CompletionDate = %d", cd)
	}
	// Removal takes a job out of negotiation.
	if err := c.Remove(j2.ID); err != nil {
		t.Fatal(err)
	}
	if n := len(c.IdleRequests()); n != 0 {
		t.Errorf("idle after remove = %d", n)
	}
	if err := c.Remove(99); err == nil {
		t.Error("removing unknown job should error")
	}
	counts := c.Counts()
	if counts[JobCompleted] != 1 || counts[JobRemoved] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestEvictionLosesUnbankedProgress(t *testing.T) {
	c := newCA(t)
	j := c.Submit(classad.MustParse(`[ Cmd = "sim" ]`), 100)
	_ = c.MarkRunning(j.ID, "w1")
	// 30 units done, none checkpointed.
	if done, _ := c.Progress(j.ID, 30, false); done {
		t.Fatal("job finished early")
	}
	if err := c.Evicted(j.ID); err != nil {
		t.Fatal(err)
	}
	job, _ := c.Job(j.ID)
	if job.Status != JobIdle || job.Done != 0 || job.Evictions != 1 {
		t.Errorf("after eviction: %+v", job)
	}
	// With checkpointing, progress survives eviction (Figure 2's
	// WantCheckpoint).
	_ = c.MarkRunning(j.ID, "w2")
	_, _ = c.Progress(j.ID, 40, true)
	_ = c.Evicted(j.ID)
	job, _ = c.Job(j.ID)
	if job.Done != 40 {
		t.Errorf("checkpointed progress = %v, want 40", job.Done)
	}
	// Resumed job needs only the remainder.
	_ = c.MarkRunning(j.ID, "w3")
	if done, _ := c.Progress(j.ID, 60, false); !done {
		t.Error("job should complete after 40 + 60")
	}
}

func TestProgressAndEvictErrors(t *testing.T) {
	c := newCA(t)
	j := c.Submit(classad.MustParse(`[ Cmd = "x" ]`), 5)
	if _, err := c.Progress(j.ID, 1, false); err == nil {
		t.Error("progress on idle job allowed")
	}
	if err := c.Evicted(j.ID); err == nil {
		t.Error("evicting idle job allowed")
	}
	if _, err := c.Progress(999, 1, false); err == nil {
		t.Error("progress on unknown job allowed")
	}
}

func TestSnapshotOrder(t *testing.T) {
	c := newCA(t)
	for i := 0; i < 5; i++ {
		c.Submit(classad.MustParse(`[ Cmd = "x" ]`), 1)
	}
	snap := c.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("snapshot = %d entries", len(snap))
	}
	for i, j := range snap {
		if j.ID != i+1 {
			t.Errorf("entry %d has ID %d", i, j.ID)
		}
	}
}

func TestJobIDOfForeignAd(t *testing.T) {
	if _, ok := JobIDOf(classad.MustParse("[x = 1]")); ok {
		t.Error("JobIDOf invented an ID")
	}
}
