package modelcheck

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
)

// RenderTrace replays a counterexample schedule against a fresh,
// instrumented world and renders what happened, step by step, through
// the same event machinery the live daemons use: the world emits
// modelcheck events per action and the matchmakers emit their usual
// match/rejection events, so the rendering reads like `cstatus
// -events` output for the violating execution. The schedule replays
// deterministically, so the rendered trace is the reproduction.
func RenderTrace(cfg Config, schedule []Action) (string, error) {
	sys, err := newSystem(&cfg)
	if err != nil {
		return "", err
	}
	o := obs.New()
	w := sys.newWorld(o)
	for _, a := range schedule {
		w.apply(a)
	}

	var b strings.Builder
	if len(w.violations) == 0 {
		b.WriteString("schedule replayed clean (no violation)\n")
	}
	for _, v := range w.violations {
		fmt.Fprintf(&b, "counterexample %s: %s\n", v.Code, v.Detail)
	}
	b.WriteString("\nschedule:\n")
	for i, a := range schedule {
		fmt.Fprintf(&b, "  %2d. %s\n", i+1, a)
	}
	b.WriteString("\ntrace:\n")
	for _, line := range w.trace {
		fmt.Fprintf(&b, "  %s\n", line)
	}
	events := o.Events().Snapshot()
	if len(events) > 0 {
		b.WriteString("\nevents:\n")
		for _, ev := range events {
			fmt.Fprintf(&b, "  [%s] %s", ev.Src, ev.Type)
			if ev.Cycle != "" {
				fmt.Fprintf(&b, " cycle=%s", ev.Cycle)
			}
			for _, k := range sortedKeys(ev.Fields) {
				fmt.Fprintf(&b, " %s=%s", k, ev.Fields[k])
			}
			b.WriteByte('\n')
		}
	}
	return b.String(), nil
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
