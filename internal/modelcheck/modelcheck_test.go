package modelcheck

import (
	"os"
	"strings"
	"testing"
	"time"
)

// canonicalConfig is the pool `make mc` checks on every run: two
// machines, two single-unit jobs, two negotiators racing for the
// lease, and one clock tick that can depose a leader mid-flight.
// Small enough to exhaust, rich enough that every safety invariant has
// something to bite on: concurrent cycles, message reordering, ticket
// staleness, lease takeover.
func canonicalConfig() Config {
	return Config{
		Machines: []MachineSpec{
			{Name: "m1", Ad: `[ Type = "Machine"; Name = "m1"; Memory = 32 ]`},
			{Name: "m2", Ad: `[ Type = "Machine"; Name = "m2"; Memory = 64 ]`},
		},
		Jobs: []JobSpec{
			{Name: "alice/j1", Owner: "alice", Work: 1,
				Ad: `[ Type = "Job"; Name = "alice/j1"; Owner = "alice" ]`},
			{Name: "bob/j1", Owner: "bob", Work: 1,
				Ad: `[ Type = "Job"; Name = "bob/j1"; Owner = "bob" ]`},
		},
		Negotiators: []string{"neg1", "neg2"},
		MaxTicks:    1,
	}
}

// TestExhaustiveSmallPoolInvariants is the `make mc-short` gate: the
// canonical pool, explored exhaustively to the depth bound, holds
// every safety invariant. -short trims the depth for the inner dev
// loop; MC_FULL=1 (what `make mc` sets) deepens it.
func TestExhaustiveSmallPoolInvariants(t *testing.T) {
	cfg := canonicalConfig()
	cfg.MaxDepth = 9
	cfg.MaxSchedules = 400000
	if os.Getenv("MC_FULL") != "" {
		cfg.MaxDepth = 11
		cfg.MaxSchedules = 0
	}
	start := time.Now() //determguard:ok harness wall-time for the log line below; never enters replayed state
	res, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("explored %d schedules over %d distinct states (deepest %d, truncated %v) in %v",
		res.Schedules, res.States, res.Deepest, res.Truncated, time.Since(start)) //determguard:ok harness wall-time log only
	for _, v := range res.Violations {
		t.Errorf("invariant violated: %v\nschedule: %v", v, v.Schedule)
	}
	if res.Schedules < 10000 {
		t.Errorf("explored only %d schedules; the bound is supposed to cover >= 10000", res.Schedules)
	}
}

// TestLivenessCanonicalPool: under fair scheduling, both finite jobs
// of the canonical pool complete (MC201 holds on main).
func TestLivenessCanonicalPool(t *testing.T) {
	res, err := CheckLiveness(canonicalConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("liveness violated: %v\n%s", res.Violation,
			strings.Join(res.Violation.Trace, "\n"))
	}
	t.Logf("all obligations served in %d fair rounds", res.Rounds)
}

// livelockConfig reconstructs ROADMAP item 1: machine A is claimed by
// an infinite job, its idle twin B ties every rank, and a late-arriving
// job must choose between them every cycle.
func livelockConfig(legacy bool) Config {
	return Config{
		Machines: []MachineSpec{
			{Name: "A", Ad: `[ Type = "Machine"; Name = "A"; Memory = 32 ]`},
			{Name: "B", Ad: `[ Type = "Machine"; Name = "B"; Memory = 32 ]`},
		},
		Jobs: []JobSpec{
			// The incumbent: grabs A in round 1 and never finishes.
			{Name: "alice/forever", Owner: "alice", Work: -1,
				Ad: `[ Type = "Job"; Name = "alice/forever"; Owner = "alice" ]`},
			// The victim: arrives once A is claimed, ties A and B on
			// rank. Pre-fix, the earliest-index tie-break picked the
			// claimed A every cycle and the claim bounced every cycle.
			{Name: "bob/starved", Owner: "bob", Work: 1, Delay: 1,
				Ad: `[ Type = "Job"; Name = "bob/starved"; Owner = "bob" ]`},
		},
		Negotiators:           []string{"neg1"},
		LegacyClaimedTieBreak: legacy,
	}
}

// TestLivelockRegression mechanically rediscovers the claimed-offer
// livelock (ROADMAP item 1) as an MC201 counterexample under the
// legacy tie-break, and proves the unclaimed-over-claimed fix resolves
// it. This is the model checker's version of
// TestForensicsClaimedOfferLivelock, with the loop detected rather
// than asserted.
func TestLivelockRegression(t *testing.T) {
	res, err := CheckLiveness(livelockConfig(true), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil || res.Violation.Code != CodeStarvation {
		t.Fatalf("legacy tie-break: want %s, got %v", CodeStarvation, res.Violation)
	}
	if len(res.Starved) != 1 || res.Starved[0] != "bob/starved" {
		t.Errorf("starved = %v, want bob/starved", res.Starved)
	}
	trace := strings.Join(res.Violation.Trace, "\n")
	if !strings.Contains(trace, "MATCH bob/starved -> A") ||
		!strings.Contains(trace, "claim rejected") {
		t.Errorf("counterexample trace does not show the bounce loop:\n%s", trace)
	}
	t.Logf("livelock rediscovered: %v", res.Violation)

	fixed, err := CheckLiveness(livelockConfig(false), 0)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Violation != nil {
		t.Fatalf("unclaimed-over-claimed tie-break still livelocks: %v\n%s",
			fixed.Violation, strings.Join(fixed.Violation.Trace, "\n"))
	}
}

// TestExploreRespectsMaxSchedules: the truncation valve reports
// itself.
func TestExploreRespectsMaxSchedules(t *testing.T) {
	cfg := canonicalConfig()
	cfg.MaxDepth = 8
	cfg.MaxSchedules = 500
	res, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.Schedules > 500 {
		t.Fatalf("truncation: %+v", res)
	}
}

// TestConfigValidation: malformed scenarios fail loudly, not deep in a
// replay.
func TestConfigValidation(t *testing.T) {
	if _, err := Explore(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	cfg := canonicalConfig()
	cfg.Machines[0].Ad = `[ Name = "mismatch" ]`
	if _, err := Explore(cfg); err == nil {
		t.Error("machine Name mismatch accepted")
	}
	cfg = canonicalConfig()
	cfg.Jobs[0].Ad = `[ not classad`
	if _, err := Explore(cfg); err == nil {
		t.Error("unparsable job ad accepted")
	}
}
