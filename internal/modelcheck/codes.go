// Package modelcheck is a deterministic, exhaustive small-scope
// explorer for the pool protocol. It wires the real collector store,
// matchmakers and resource agents to an in-memory transport where the
// checker owns every source of nondeterminism — message delivery
// order, advertisement refresh timing, lease expiry, negotiator
// takeover — and walks the schedule space with a depth-bounded DFS,
// pruning on canonical state fingerprints. Safety invariants (MC1xx)
// are checked after every action of every schedule; the liveness
// obligation (MC201) runs under a deterministic fair scheduler with
// loop detection. A violated invariant yields a minimal counterexample
// schedule that replays byte-for-byte, renderable as a human-readable
// trace through the obs event/span machinery.
//
// The point is the same as the repo's static analyzers, one layer up:
// the protocol invariants DESIGN.md states in prose are enforced by
// machine. A change that reintroduces the claimed-offer livelock or
// weakens epoch fencing fails `make mc`, not a code review.
package modelcheck

// CodeInfo is one row of the model checker's invariant vocabulary: a
// stable code, whether it is a safety or liveness property, and a
// one-line summary. The DESIGN.md §13 table is checked against this
// list by a test, so a new invariant that skips the docs fails
// `make lint-codes`.
type CodeInfo struct {
	Code string
	// Kind is "safety" (checked after every action of every explored
	// schedule) or "liveness" (checked under the fair scheduler).
	Kind    string
	Summary string
}

// Stable invariant codes. MC1xx are safety properties, MC2xx liveness.
const (
	// CodeSingleLeader: at most one negotiator ever holds the
	// leadership lease at any given epoch.
	CodeSingleLeader = "MC101"
	// CodeStaleEpochClaim: no claim is granted on behalf of a MATCH
	// stamped with an epoch below the customer's high-water mark.
	CodeStaleEpochClaim = "MC102"
	// CodeClaimExclusive: a machine never runs two claims at once, and
	// a new grant displaces the incumbent only through preemption.
	CodeClaimExclusive = "MC103"
	// CodeLedgerConservation: accumulated fair-share charges equal
	// successful claim acknowledgments, one for one.
	CodeLedgerConservation = "MC104"
	// CodeUnsatisfiableMatch: the matchmaker never emits a match the
	// bilateral analyzer proves can never satisfy both parties.
	CodeUnsatisfiableMatch = "MC105"
	// CodeStarvation: under fair scheduling, every satisfiable finite
	// request eventually runs to completion.
	CodeStarvation = "MC201"
)

// AllCodes returns every invariant the checker can report, in code
// order.
func AllCodes() []CodeInfo {
	return []CodeInfo{
		{CodeSingleLeader, "safety", "two negotiators held the leadership lease at the same epoch"},
		{CodeStaleEpochClaim, "safety", "a claim was granted from a MATCH bearing a stale negotiator epoch"},
		{CodeClaimExclusive, "safety", "a machine held two claims at once, or a grant displaced an incumbent without preemption"},
		{CodeLedgerConservation, "safety", "fair-share charges diverged from successful claim acknowledgments"},
		{CodeUnsatisfiableMatch, "safety", "the matchmaker emitted a match the bilateral analyzer proves unsatisfiable"},
		{CodeStarvation, "liveness", "a satisfiable finite job never completed under fair scheduling"},
	}
}
