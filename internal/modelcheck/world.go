package modelcheck

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/agent"
	"repro/internal/classad"
	"repro/internal/classad/analysis"
	"repro/internal/collector"
	"repro/internal/matchmaker"
	"repro/internal/obs"
)

// MachineSpec describes one resource in the model pool.
type MachineSpec struct {
	// Name must match the Name attribute of Ad.
	Name string
	// Ad is the machine's base classad in source syntax: capabilities
	// plus Constraint/Rank policy. The world builds a real
	// agent.Resource around it, so claim-time revalidation, ticket
	// minting and preemption all run the shipped code.
	Ad string
}

// JobSpec describes one request in the model pool.
type JobSpec struct {
	// Name must match the Name attribute of Ad (owner/job convention).
	Name string
	// Owner is the fair-share principal charged for the job's claims.
	Owner string
	// Ad is the job's classad in source syntax.
	Ad string
	// Work is how many complete() steps the job needs once running.
	// -1 marks a job that never finishes — environment, not a
	// liveness obligation (it models a long-running incumbent).
	Work int
	// Delay defers the job's arrival under the fair scheduler: it
	// stays out of the pool for the first Delay rounds. The DFS
	// explorer ignores it (arrival order is part of the explored
	// nondeterminism there).
	Delay int
}

// Hooks are the seeded mutations the self-test flips on to prove the
// checker catches the bug class each invariant guards. All off in a
// faithful model.
type Hooks struct {
	// DisableEpochFence makes the model customer accept MATCH
	// notifications bearing stale epochs — the bug MC102 exists to
	// catch.
	DisableEpochFence bool
	// DropClaimRequeue loses a job whose claim bounced instead of
	// requeueing it — the starvation bug MC201 exists to catch.
	DropClaimRequeue bool
	// DoubleCharge bills two units per acknowledged claim — the
	// ledger bug MC104 exists to catch.
	DoubleCharge bool
}

// Config is one model-checking scenario: the pool's cast and the
// exploration bounds.
type Config struct {
	Machines    []MachineSpec
	Jobs        []JobSpec
	Negotiators []string
	// MaxTicks bounds how many times a schedule may advance the pool
	// clock past the lease deadline (each tick is an opportunity for
	// negotiator takeover).
	MaxTicks int
	// MaxDepth bounds schedule length for the DFS explorer; 0 selects
	// a default of 8 actions.
	MaxDepth int
	// MaxSchedules truncates exploration after this many schedules
	// (0 = unbounded); Result.Truncated reports whether it bit.
	MaxSchedules int
	// StopOnViolation ends exploration at the first counterexample
	// instead of collecting one per invariant code.
	StopOnViolation bool
	// LegacyClaimedTieBreak runs the matchmakers with the pre-fix
	// selection order that ignored claimed state on rank ties; the
	// MC201 regression test uses it to rediscover the claimed-offer
	// livelock mechanically.
	LegacyClaimedTieBreak bool
	Hooks                 Hooks
}

// Action is one deterministic step of a schedule. Actions are stable
// across replays of the same Config, so a counterexample schedule
// reproduces exactly.
type Action struct {
	// Op is one of tick, advertise, submit, negotiate, deliver,
	// complete.
	Op string
	// Arg indexes the machine (advertise), job (submit, complete),
	// negotiator (negotiate) or pending message (deliver); unused for
	// tick.
	Arg int
}

func (a Action) String() string {
	if a.Op == "tick" {
		return "tick"
	}
	return fmt.Sprintf("%s(%d)", a.Op, a.Arg)
}

// Violation is one invariant breach, with the schedule that reproduces
// it and the replayed trace of what each step did.
type Violation struct {
	Code     string
	Detail   string
	Schedule []Action
	Trace    []string
}

func (v *Violation) String() string {
	return fmt.Sprintf("%s: %s", v.Code, v.Detail)
}

// job lifecycle in the model. A job has at most one outstanding MATCH
// message: matching removes its request ad from the pool, and only a
// requeue puts it back.
type jobStatus int

const (
	jobIdle jobStatus = iota
	jobAdvertised
	jobMatched
	jobRunning
	jobLimbo // DropClaimRequeue mutant: lost, never requeued
	jobDone
)

var jobStatusNames = [...]string{"idle", "advertised", "matched", "running", "limbo", "done"}

// message is one MATCH notification in flight from a negotiator to
// the model customer.
type message struct {
	job, machine int
	epoch        uint64
	ticket       string
	neg          string
}

// system is the immutable, validated form of a Config: base ads
// parsed once, copied into every replayed world.
type system struct {
	cfg          *Config
	machineProto []*classad.Ad
	jobProto     []*classad.Ad
}

func newSystem(cfg *Config) (*system, error) {
	s := &system{cfg: cfg}
	if len(cfg.Machines) == 0 || len(cfg.Jobs) == 0 || len(cfg.Negotiators) == 0 {
		return nil, fmt.Errorf("modelcheck: config needs at least one machine, job and negotiator")
	}
	for _, m := range cfg.Machines {
		ad, err := classad.Parse(m.Ad)
		if err != nil {
			return nil, fmt.Errorf("machine %s: %v", m.Name, err)
		}
		if name, _ := ad.Eval(classad.AttrName).StringVal(); name != m.Name {
			return nil, fmt.Errorf("machine %s: ad Name = %q", m.Name, name)
		}
		s.machineProto = append(s.machineProto, ad)
	}
	for _, j := range cfg.Jobs {
		ad, err := classad.Parse(j.Ad)
		if err != nil {
			return nil, fmt.Errorf("job %s: %v", j.Name, err)
		}
		if name, _ := ad.Eval(classad.AttrName).StringVal(); name != j.Name {
			return nil, fmt.Errorf("job %s: ad Name = %q", j.Name, name)
		}
		s.jobProto = append(s.jobProto, ad)
	}
	return s, nil
}

// machineState is the model's view of one resource, alongside the
// real agent.Resource that owns the authoritative claim state.
type machineState struct {
	res *agent.Resource
	// advertised is whether the machine's ad is in the store.
	advertised bool
	// ticket is the live authorization ticket ("" once consumed by a
	// granted claim), mirroring the agent's private copy.
	ticket string
	// runningJob is the model's claim bookkeeping (-1 = unclaimed),
	// cross-checked against the agent every step (MC103).
	runningJob int
}

type jobState struct {
	st        jobStatus
	machine   int // when running
	remaining int // work units left
}

// World is one concrete execution of a scenario: real collector,
// matchmakers and resource agents, plus the model's bookkeeping of
// everything an invariant needs to observe.
type World struct {
	sys   *system
	clock int64
	ticks int
	env   *classad.Env

	store *collector.Store
	usage *matchmaker.PriorityTable
	mms   map[string]*matchmaker.Matchmaker

	machines []*machineState
	jobs     []*jobState
	pending  []message

	// caHigh is the model customer's epoch high-water mark — the
	// fencing state cadaemon keeps as highestEpoch.
	caHigh uint64
	// epochHolders records which negotiator won each lease epoch
	// (MC101: at most one per epoch).
	epochHolders map[uint64]string

	// charges and acks are the raw MC104 ledger: units billed vs
	// claims acknowledged. The PriorityTable decays, so conservation
	// is checked on these counters, not on it.
	charges int
	acks    int

	cycleSeq   int
	violations []*Violation
	codeSeen   map[string]bool
	trace      []string

	// o instruments replays used for trace rendering; nil during
	// exploration (events and spans cost time the DFS cannot spare).
	o *obs.Obs
}

// newWorld builds a fresh world at the scenario's initial state.
func (s *system) newWorld(o *obs.Obs) *World {
	w := &World{
		sys:          s,
		clock:        1000,
		epochHolders: map[uint64]string{},
		codeSeen:     map[string]bool{},
		mms:          map[string]*matchmaker.Matchmaker{},
		o:            o,
	}
	w.env = &classad.Env{
		Now:  func() int64 { return w.clock },
		Rand: func() float64 { return 0.5 },
	}
	w.store = collector.New(w.env)
	w.usage = matchmaker.NewPriorityTable()
	for _, neg := range s.cfg.Negotiators {
		mm := matchmaker.New(matchmaker.Config{
			Env:                   w.env,
			DeferCharges:          true,
			LegacyClaimedTieBreak: s.cfg.LegacyClaimedTieBreak,
		})
		mm.SetUsage(w.usage)
		if o != nil {
			mm.Instrument(o)
		}
		w.mms[neg] = mm
	}
	for i := range s.cfg.Machines {
		w.machines = append(w.machines, &machineState{
			res:        agent.NewResource(s.machineProto[i].Copy(), w.env),
			runningJob: -1,
		})
	}
	for i := range s.cfg.Jobs {
		w.jobs = append(w.jobs, &jobState{machine: -1, remaining: s.cfg.Jobs[i].Work})
	}
	return w
}

// enabled enumerates the actions available from the current state, in
// a deterministic order (the DFS's branching structure).
func (w *World) enabled() []Action {
	var out []Action
	if w.ticks < w.sys.cfg.MaxTicks {
		out = append(out, Action{Op: "tick"})
	}
	for i := range w.machines {
		out = append(out, Action{Op: "advertise", Arg: i})
	}
	for i, j := range w.jobs {
		if j.st == jobIdle {
			out = append(out, Action{Op: "submit", Arg: i})
		}
	}
	for i := range w.sys.cfg.Negotiators {
		out = append(out, Action{Op: "negotiate", Arg: i})
	}
	for k := range w.pending {
		out = append(out, Action{Op: "deliver", Arg: k})
	}
	for i, j := range w.jobs {
		if j.st == jobRunning && w.sys.cfg.Jobs[i].Work >= 0 {
			out = append(out, Action{Op: "complete", Arg: i})
		}
	}
	return out
}

func (w *World) tracef(format string, args ...any) {
	w.trace = append(w.trace, fmt.Sprintf(format, args...))
}

func (w *World) emit(typ, cycle string, fields map[string]string) {
	if w.o != nil {
		w.o.Events().Emit("modelcheck", typ, cycle, fields)
	}
}

func (w *World) violate(code, format string, args ...any) {
	if w.codeSeen[code] {
		return
	}
	w.codeSeen[code] = true
	v := &Violation{Code: code, Detail: fmt.Sprintf(format, args...)}
	w.violations = append(w.violations, v)
	w.tracef("VIOLATION %s: %s", code, v.Detail)
	w.emit("violation", "", map[string]string{"code": code, "detail": v.Detail})
}

// apply executes one action and re-checks the safety invariants.
func (w *World) apply(a Action) {
	switch a.Op {
	case "tick":
		w.ticks++
		w.clock += collector.DefaultLeaseTTL + 1
		w.tracef("tick: clock advances past the lease deadline (t=%d)", w.clock)
	case "advertise":
		w.advertiseMachine(a.Arg)
	case "submit":
		w.submitJob(a.Arg)
	case "negotiate":
		w.negotiate(a.Arg)
	case "deliver":
		w.deliver(a.Arg)
	case "complete":
		w.complete(a.Arg)
	default:
		panic("modelcheck: unknown action " + a.Op)
	}
	w.checkInvariants()
}

func (w *World) advertiseMachine(i int) {
	m := w.machines[i]
	name := w.sys.cfg.Machines[i].Name
	ad, err := m.res.Advertise()
	if err != nil {
		panic(fmt.Sprintf("modelcheck: advertise %s: %v", name, err))
	}
	if err := w.store.Update(ad, 0); err != nil {
		panic(fmt.Sprintf("modelcheck: store %s: %v", name, err))
	}
	m.ticket, _ = ad.Eval(classad.AttrTicket).StringVal()
	m.advertised = true
	state, _ := ad.Eval("State").StringVal()
	w.tracef("advertise machine %s: State=%s, fresh ticket", name, state)
	w.emit("advertise", "", map[string]string{"machine": name, "state": state})
}

func (w *World) submitJob(i int) {
	name := w.sys.cfg.Jobs[i].Name
	if err := w.store.Update(w.sys.jobProto[i].Copy(), 0); err != nil {
		panic(fmt.Sprintf("modelcheck: store %s: %v", name, err))
	}
	w.jobs[i].st = jobAdvertised
	w.tracef("submit job %s: request ad enters the pool", name)
	w.emit("submit", "", map[string]string{"job": name})
}

func (w *World) negotiate(ni int) {
	neg := w.sys.cfg.Negotiators[ni]
	lease, granted, err := w.store.AcquireLease(neg, 0)
	if err != nil {
		panic(fmt.Sprintf("modelcheck: lease: %v", err))
	}
	if !granted {
		w.tracef("negotiate %s: lease refused (held by %s until t=%d, epoch %d)",
			neg, lease.Holder, lease.Deadline, lease.Epoch)
		return
	}
	if prev, ok := w.epochHolders[lease.Epoch]; ok && prev != neg {
		w.violate(CodeSingleLeader, "epoch %d granted to both %s and %s", lease.Epoch, prev, neg)
	} else {
		w.epochHolders[lease.Epoch] = neg
	}

	var reqs, offs []*classad.Ad
	var reqIdx, offIdx []int
	for i, j := range w.jobs {
		if j.st != jobAdvertised {
			continue
		}
		if ad, ok := w.store.Lookup(w.sys.cfg.Jobs[i].Name); ok {
			reqs = append(reqs, ad)
			reqIdx = append(reqIdx, i)
		}
	}
	for i, m := range w.machines {
		if !m.advertised {
			continue
		}
		if ad, ok := w.store.Lookup(w.sys.cfg.Machines[i].Name); ok {
			offs = append(offs, ad)
			offIdx = append(offIdx, i)
		}
	}
	w.cycleSeq++
	cycle := fmt.Sprintf("mc%03d", w.cycleSeq)
	matches := w.mms[neg].NegotiateCycle(cycle, reqs, offs)
	w.tracef("negotiate %s (epoch %d, cycle %s): %d requests x %d offers -> %d matches",
		neg, lease.Epoch, cycle, len(reqs), len(offs), len(matches))
	for _, match := range matches {
		ji := reqIdx[indexOf(reqs, match.Request)]
		mi := offIdx[indexOf(offs, match.Offer)]
		jobName := w.sys.cfg.Jobs[ji].Name
		machName := w.sys.cfg.Machines[mi].Name
		// MC105 oracle: the bilateral analyzer must not be able to
		// prove the emitted pair unsatisfiable.
		if rep := analysis.AnalyzeMatch(match.Request, match.Offer, &analysis.Options{Env: w.env}); rep.NeverMatch {
			w.violate(CodeUnsatisfiableMatch,
				"match %s -> %s is provably unsatisfiable: %v", jobName, machName, rep.Diags())
		}
		ticket, _ := match.Offer.Eval(classad.AttrTicket).StringVal()
		w.pending = append(w.pending, message{
			job: ji, machine: mi, epoch: lease.Epoch, ticket: ticket, neg: neg,
		})
		w.jobs[ji].st = jobMatched
		w.store.Invalidate(jobName)
		w.tracef("  MATCH %s -> %s (epoch %d) queued for delivery", jobName, machName, lease.Epoch)
		w.emit("match_sent", cycle, map[string]string{
			"job": jobName, "machine": machName,
			"epoch": fmt.Sprintf("%d", lease.Epoch), "negotiator": neg,
		})
	}
}

func (w *World) deliver(k int) {
	msg := w.pending[k]
	w.pending = append(w.pending[:k:k], w.pending[k+1:]...)
	jobName := w.sys.cfg.Jobs[msg.job].Name
	machName := w.sys.cfg.Machines[msg.machine].Name

	// The model customer's epoch fence, mirroring cadaemon: a MATCH
	// below the high-water mark comes from a deposed leader.
	stale := msg.epoch < w.caHigh
	if msg.epoch > w.caHigh {
		w.caHigh = msg.epoch
	}
	if stale && !w.sys.cfg.Hooks.DisableEpochFence {
		w.tracef("deliver MATCH %s -> %s: fenced, epoch %d < high-water %d; job requeued",
			jobName, machName, msg.epoch, w.caHigh)
		w.emit("match_fenced", "", map[string]string{
			"job": jobName, "epoch": fmt.Sprintf("%d", msg.epoch),
			"high": fmt.Sprintf("%d", w.caHigh),
		})
		w.requeue(msg.job)
		return
	}

	out := w.machines[msg.machine].res.RequestClaim(w.sys.jobProto[msg.job].Copy(), msg.ticket)
	if !out.Accepted {
		if w.sys.cfg.Hooks.DropClaimRequeue {
			w.jobs[msg.job].st = jobLimbo
			w.tracef("deliver MATCH %s -> %s: claim rejected (%s); job DROPPED (mutant)",
				jobName, machName, out.Reason)
		} else {
			w.requeue(msg.job)
			w.tracef("deliver MATCH %s -> %s: claim rejected (%s); job requeued",
				jobName, machName, out.Reason)
		}
		w.emit("claim_rejected", "", map[string]string{
			"job": jobName, "machine": machName, "reason": out.Reason,
		})
		return
	}

	if stale {
		w.violate(CodeStaleEpochClaim,
			"claim %s -> %s granted from MATCH with stale epoch %d (high-water %d)",
			jobName, machName, msg.epoch, w.caHigh)
	}
	w.acks++
	charge := 1
	if w.sys.cfg.Hooks.DoubleCharge {
		charge = 2
	}
	w.charges += charge
	w.usage.Record(w.sys.cfg.Jobs[msg.job].Owner, float64(charge))

	m := w.machines[msg.machine]
	if prev := m.runningJob; prev >= 0 {
		if out.Preempted == nil {
			w.violate(CodeClaimExclusive,
				"machine %s granted %s while %s still holds the claim, with no preemption",
				machName, jobName, w.sys.cfg.Jobs[prev].Name)
		} else {
			w.requeue(prev)
			w.tracef("  claim of %s preempted by %s", w.sys.cfg.Jobs[prev].Name, jobName)
		}
	}
	m.runningJob = msg.job
	m.ticket = "" // consumed by the grant, as in the agent
	w.jobs[msg.job].st = jobRunning
	w.jobs[msg.job].machine = msg.machine
	w.tracef("deliver MATCH %s -> %s: claim GRANTED (epoch %d), owner %s charged %d",
		jobName, machName, msg.epoch, w.sys.cfg.Jobs[msg.job].Owner, charge)
	w.emit("claim_granted", "", map[string]string{
		"job": jobName, "machine": machName, "epoch": fmt.Sprintf("%d", msg.epoch),
	})
}

func (w *World) complete(i int) {
	j := w.jobs[i]
	name := w.sys.cfg.Jobs[i].Name
	j.remaining--
	if j.remaining > 0 {
		w.tracef("complete %s: %d work units left", name, j.remaining)
		return
	}
	m := w.machines[j.machine]
	if err := m.res.Release(w.sys.cfg.Jobs[i].Owner); err != nil {
		panic(fmt.Sprintf("modelcheck: release %s: %v", name, err))
	}
	m.runningJob = -1
	j.st = jobDone
	j.machine = -1
	w.tracef("complete %s: done, claim released", name)
	w.emit("complete", "", map[string]string{"job": name})
}

// requeue returns a matched-or-evicted job to the idle state; a
// subsequent submit action puts its request ad back in the pool.
func (w *World) requeue(ji int) {
	j := w.jobs[ji]
	j.st = jobIdle
	j.machine = -1
}

// checkInvariants runs the safety checks that hold in every state.
func (w *World) checkInvariants() {
	// MC103: the model's claim bookkeeping and the agents' claim state
	// must agree, and no machine runs two jobs.
	for i, m := range w.machines {
		claim, held := m.res.CurrentClaim()
		switch {
		case m.runningJob >= 0 && !held:
			w.violate(CodeClaimExclusive, "model says %s runs %s but the agent holds no claim",
				w.sys.cfg.Machines[i].Name, w.sys.cfg.Jobs[m.runningJob].Name)
		case m.runningJob >= 0 && claim.Customer != w.sys.cfg.Jobs[m.runningJob].Owner:
			w.violate(CodeClaimExclusive, "machine %s claims customer %s but the model runs %s",
				w.sys.cfg.Machines[i].Name, claim.Customer, w.sys.cfg.Jobs[m.runningJob].Name)
		}
	}
	// MC104: charges and acknowledgments stay one for one.
	if w.charges != w.acks {
		w.violate(CodeLedgerConservation,
			"%d units charged against %d acknowledged claims", w.charges, w.acks)
	}
}

// fingerprint canonicalizes the world state for DFS pruning. Tickets
// are random per replay, so they appear only as live/stale relative to
// each machine's current ticket; the lease deadline appears only as an
// expired bit (one tick always expires any live lease, so the bit
// captures everything future behavior depends on). Observability
// artifacts are excluded.
func (w *World) fingerprint() string {
	var b strings.Builder
	lease := w.store.LeaseInfo()
	fmt.Fprintf(&b, "t%d|L%s/%d/%v|H%d|c%d|a%d|",
		w.ticks, lease.Holder, lease.Epoch, lease.Deadline > w.clock, w.caHigh, w.charges, w.acks)
	for i, m := range w.machines {
		fmt.Fprintf(&b, "m%d:%d:", i, m.runningJob)
		if !m.advertised {
			b.WriteString("-|")
			continue
		}
		ad, ok := w.store.Lookup(w.sys.cfg.Machines[i].Name)
		if !ok {
			b.WriteString("x|")
			continue
		}
		b.WriteString(canonAd(ad, m.ticket))
		b.WriteByte('|')
	}
	for i, j := range w.jobs {
		fmt.Fprintf(&b, "j%d:%s:%d:%d|", i, jobStatusNames[j.st], j.machine, j.remaining)
	}
	msgs := make([]string, 0, len(w.pending))
	for _, msg := range w.pending {
		live := msg.ticket != "" && msg.ticket == w.machines[msg.machine].ticket
		msgs = append(msgs, fmt.Sprintf("%d>%d@%d/%v", msg.job, msg.machine, msg.epoch, live))
	}
	sort.Strings(msgs)
	b.WriteString(strings.Join(msgs, ","))
	return b.String()
}

// canonAd renders an ad with the authorization ticket normalized to
// live/stale against the machine's current ticket.
func canonAd(ad *classad.Ad, liveTicket string) string {
	var b strings.Builder
	for _, n := range ad.SortedNames() {
		e, _ := ad.Lookup(n)
		b.WriteString(classad.Fold(n))
		b.WriteByte('=')
		if classad.Fold(n) == classad.Fold(classad.AttrTicket) {
			t, _ := ad.Eval(classad.AttrTicket).StringVal()
			if t != "" && t == liveTicket {
				b.WriteString("<live>")
			} else {
				b.WriteString("<stale>")
			}
		} else {
			b.WriteString(e.String())
		}
		b.WriteByte(';')
	}
	return b.String()
}

// indexOf finds ad in ads by pointer identity (the matchmaker returns
// the very ads it was handed).
func indexOf(ads []*classad.Ad, ad *classad.Ad) int {
	for i := range ads {
		if ads[i] == ad {
			return i
		}
	}
	panic("modelcheck: match references an unknown ad")
}
