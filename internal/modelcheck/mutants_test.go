package modelcheck

import (
	"strings"
	"testing"
)

// Seeded-mutant self-test: each hook plants one protocol bug, and the
// checker must rediscover it as the expected MC code with a schedule
// that replays. A model checker that cannot catch planted bugs proves
// nothing by passing on main.

// epochMutantConfig is the deposed-leader scenario: neg1 matches job1
// to A at epoch 1, the clock tick deposes it, neg2 matches job2 to B
// at epoch 2, and the two MATCH notifications race to the customer.
// Constraints pin each job to its machine so both matches can be in
// flight at once with both tickets live.
func epochMutantConfig(disableFence bool) Config {
	return Config{
		Machines: []MachineSpec{
			{Name: "A", Ad: `[ Type = "Machine"; Name = "A"; Memory = 32 ]`},
			{Name: "B", Ad: `[ Type = "Machine"; Name = "B"; Memory = 64 ]`},
		},
		Jobs: []JobSpec{
			{Name: "alice/j1", Owner: "alice", Work: 1,
				Ad: `[ Type = "Job"; Name = "alice/j1"; Owner = "alice"; Constraint = other.Memory < 64 ]`},
			{Name: "bob/j1", Owner: "bob", Work: 1,
				Ad: `[ Type = "Job"; Name = "bob/j1"; Owner = "bob"; Constraint = other.Memory >= 64 ]`},
		},
		Negotiators:     []string{"neg1", "neg2"},
		MaxTicks:        1,
		MaxDepth:        9,
		StopOnViolation: true,
		Hooks:           Hooks{DisableEpochFence: disableFence},
	}
}

func findCode(t *testing.T, res *Result, code string) *Violation {
	t.Helper()
	for _, v := range res.Violations {
		if v.Code == code {
			return v
		}
	}
	t.Fatalf("no %s violation found; got %v (after %d schedules)", code, res.Violations, res.Schedules)
	return nil
}

// TestMutantStaleEpochClaim: with the customer's epoch fence disabled,
// the explorer finds a schedule where a deposed negotiator's MATCH is
// honoured after the new leader's — MC102 — and the counterexample
// replays and renders. With the fence in place the same space is
// clean, which is the point of the fence.
func TestMutantStaleEpochClaim(t *testing.T) {
	res, err := Explore(epochMutantConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	v := findCode(t, res, CodeStaleEpochClaim)
	t.Logf("MC102 rediscovered after %d schedules: %v", res.Schedules, v)

	rendered, err := RenderTrace(epochMutantConfig(true), v.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rendered, "counterexample MC102") ||
		!strings.Contains(rendered, "stale epoch") {
		t.Errorf("rendered trace missing the violation:\n%s", rendered)
	}
	if !strings.Contains(rendered, "match_sent") {
		t.Errorf("rendered trace carries no matchmaker events:\n%s", rendered)
	}

	clean, err := Explore(epochMutantConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Violations) != 0 {
		t.Fatalf("fence enabled but violations found: %v", clean.Violations)
	}
}

// TestMutantDoubleCharge: billing two units per acknowledged claim
// breaks ledger conservation on the very first grant — MC104.
func TestMutantDoubleCharge(t *testing.T) {
	cfg := Config{
		Machines: []MachineSpec{
			{Name: "m1", Ad: `[ Type = "Machine"; Name = "m1" ]`},
		},
		Jobs: []JobSpec{
			{Name: "alice/j1", Owner: "alice", Work: 1,
				Ad: `[ Type = "Job"; Name = "alice/j1"; Owner = "alice" ]`},
		},
		Negotiators:     []string{"neg1"},
		MaxDepth:        5,
		StopOnViolation: true,
		Hooks:           Hooks{DoubleCharge: true},
	}
	res, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := findCode(t, res, CodeLedgerConservation)
	if !strings.Contains(v.Detail, "2 units charged against 1") {
		t.Errorf("detail = %q", v.Detail)
	}
	rendered, err := RenderTrace(cfg, v.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rendered, "counterexample MC104") {
		t.Errorf("rendered trace missing MC104:\n%s", rendered)
	}

	cfg.Hooks.DoubleCharge = false
	clean, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Violations) != 0 {
		t.Fatalf("unmutated billing violates: %v", clean.Violations)
	}
}

// TestMutantDropClaimRequeue: losing a bounced claim instead of
// requeueing it starves the job forever — MC201 under the fair
// scheduler. One machine, a two-round incumbent, and a second job
// whose first claim is guaranteed to bounce off the incumbent's claim.
func TestMutantDropClaimRequeue(t *testing.T) {
	cfg := Config{
		Machines: []MachineSpec{
			{Name: "m1", Ad: `[ Type = "Machine"; Name = "m1" ]`},
		},
		Jobs: []JobSpec{
			{Name: "alice/long", Owner: "alice", Work: 2,
				Ad: `[ Type = "Job"; Name = "alice/long"; Owner = "alice" ]`},
			{Name: "bob/j1", Owner: "bob", Work: 1,
				Ad: `[ Type = "Job"; Name = "bob/j1"; Owner = "bob" ]`},
		},
		Negotiators: []string{"neg1"},
		Hooks:       Hooks{DropClaimRequeue: true},
	}
	res, err := CheckLiveness(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil || res.Violation.Code != CodeStarvation {
		t.Fatalf("want %s, got %v", CodeStarvation, res.Violation)
	}
	if len(res.Starved) != 1 || res.Starved[0] != "bob/j1" {
		t.Errorf("starved = %v, want bob/j1", res.Starved)
	}
	if trace := strings.Join(res.Violation.Trace, "\n"); !strings.Contains(trace, "DROPPED") {
		t.Errorf("trace does not show the dropped claim:\n%s", trace)
	}

	cfg.Hooks.DropClaimRequeue = false
	clean, err := CheckLiveness(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Violation != nil {
		t.Fatalf("requeueing pool still starves: %v\n%s", clean.Violation,
			strings.Join(clean.Violation.Trace, "\n"))
	}
}
