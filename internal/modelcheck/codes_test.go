package modelcheck

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

var codeLit = regexp.MustCompile(`"(MC\d{3})"`)

// TestAllMCCodesMatchesSource re-derives the invariant vocabulary from
// the package's own source: every "MCnnn" literal in a non-test file
// must appear in AllCodes and vice versa, so a new invariant cannot
// ship without a row in the table.
func TestAllMCCodesMatchesSource(t *testing.T) {
	fromSource := map[string]bool{}
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range files {
		if strings.HasSuffix(path, "_test.go") {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range codeLit.FindAllStringSubmatch(string(data), -1) {
			fromSource[m[1]] = true
		}
	}
	if len(fromSource) == 0 {
		t.Fatal("no MC code literals found in package source")
	}

	declared := map[string]bool{}
	var prev string
	for _, info := range AllCodes() {
		if declared[info.Code] {
			t.Errorf("AllCodes lists %s twice", info.Code)
		}
		if info.Code <= prev {
			t.Errorf("AllCodes out of order: %s after %s", info.Code, prev)
		}
		prev = info.Code
		declared[info.Code] = true
		if !fromSource[info.Code] {
			t.Errorf("AllCodes lists %s but no source literal declares it", info.Code)
		}
		if info.Kind != "safety" && info.Kind != "liveness" {
			t.Errorf("%s has kind %q", info.Code, info.Kind)
		}
	}
	for code := range fromSource {
		if !declared[code] {
			t.Errorf("source declares %s but AllCodes does not list it", code)
		}
	}
}

var docRow = regexp.MustCompile(`^\| (MC\d{3}) \| (\w+) \| (.+) \|$`)

// TestDesignDocModelCheckTableInSync is the `make lint-codes` gate:
// the DESIGN.md §13 invariant table must list exactly the codes
// AllCodes declares, each with its declared kind.
func TestDesignDocModelCheckTableInSync(t *testing.T) {
	data, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	documented := map[string]string{}
	var order []string
	for _, line := range strings.Split(string(data), "\n") {
		m := docRow.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		if _, dup := documented[m[1]]; dup {
			t.Errorf("DESIGN.md documents %s twice", m[1])
		}
		documented[m[1]] = m[2]
		order = append(order, m[1])
	}
	if len(documented) == 0 {
		t.Fatal("no MC invariant table rows found in DESIGN.md")
	}
	if !sort.StringsAreSorted(order) {
		t.Errorf("DESIGN.md invariant table out of code order: %v", order)
	}

	for _, info := range AllCodes() {
		kind, ok := documented[info.Code]
		if !ok {
			t.Errorf("DESIGN.md is missing a row for %s (%s)", info.Code, info.Summary)
			continue
		}
		if kind != info.Kind {
			t.Errorf("DESIGN.md documents %s as %q, the checker reports it as %q",
				info.Code, kind, info.Kind)
		}
		delete(documented, info.Code)
	}
	for code := range documented {
		t.Errorf("DESIGN.md documents %s but the checker does not declare it", code)
	}
}
