package modelcheck

// Delivery-order schedule exploration for the event-driven engine
// (the modelcheck half of the DropDirtyNotification rediscovery): a
// small pool's delta streams are delivered in every interleaving and
// every wake batching, and the engine's final assignment must equal a
// from-scratch negotiation on every schedule. The dropped-wake mutant
// survives some schedules — the ones where the change lands in the
// same wake as the ad it patches — which is exactly why a fixed-order
// test cannot pin this bug and an exhaustive schedule walk can.

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/classad"
	"repro/internal/matchmaker"
)

func eventAd(src string) *classad.Ad { return classad.MustParse(src) }

// eventScenario's per-advertiser delta streams. Order within a stream
// is fixed (one advertiser's updates are FIFO); the schedule freedom
// is the interleaving across streams and where wakes fall.
func eventStreams() [][]matchmaker.AdDelta {
	return [][]matchmaker.AdDelta{
		{ // machine a appears big, then shrinks
			{Kind: matchmaker.AdUpsert, Name: "a",
				Ad: eventAd(`[Name = "a"; Type = "Machine"; Memory = 64; Constraint = true; Rank = 0]`)},
			{Kind: matchmaker.AdUpsert, Name: "a",
				Ad: eventAd(`[Name = "a"; Type = "Machine"; Memory = 16; Constraint = true; Rank = 0]`)},
		},
		{ // machine b is steady
			{Kind: matchmaker.AdUpsert, Name: "b",
				Ad: eventAd(`[Name = "b"; Type = "Machine"; Memory = 32; Constraint = true; Rank = 0]`)},
		},
		{ // one job that prefers the biggest machine it fits on
			{Kind: matchmaker.AdUpsert, Name: "j1",
				Ad: eventAd(`[Name = "j1"; Type = "Job"; Owner = "u1"; Constraint = other.Memory >= 32; Rank = other.Memory]`)},
		},
	}
}

// interleavings enumerates every merge of the streams that preserves
// each stream's internal order.
func interleavings(streams [][]matchmaker.AdDelta) [][]matchmaker.AdDelta {
	pos := make([]int, len(streams))
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	var out [][]matchmaker.AdDelta
	var walk func(prefix []matchmaker.AdDelta)
	walk = func(prefix []matchmaker.AdDelta) {
		if len(prefix) == total {
			out = append(out, append([]matchmaker.AdDelta(nil), prefix...))
			return
		}
		for i, s := range streams {
			if pos[i] >= len(s) {
				continue
			}
			d := s[pos[i]]
			pos[i]++
			walk(append(prefix, d))
			pos[i]--
		}
	}
	walk(nil)
	return out
}

// runSchedule feeds seq into a fresh engine, waking after every
// position whose bit is set in wakeMask (and always at the end), and
// returns the final request -> offer assignment.
func runSchedule(seq []matchmaker.AdDelta, wakeMask int, mutant bool) map[string]string {
	m := matchmaker.New(matchmaker.Config{Index: true})
	eng := matchmaker.NewIncremental(m)
	eng.Hooks.DropDirtyNotification = mutant
	cycle := 0
	for i, d := range seq {
		eng.Notify(d)
		if wakeMask&(1<<i) != 0 {
			cycle++
			eng.Recompute(fmt.Sprintf("s%d", cycle))
		}
	}
	eng.Recompute("final")
	got := map[string]string{}
	for _, match := range eng.Matches() {
		r, _ := match.Request.Eval("Name").StringVal()
		o, _ := match.Offer.Eval("Name").StringVal()
		got[r] = o
	}
	return got
}

// referenceAssignment negotiates the final pool from scratch.
func referenceAssignment(streams [][]matchmaker.AdDelta) map[string]string {
	final := map[string]*classad.Ad{}
	for _, s := range streams {
		for _, d := range s {
			final[d.Name] = d.Ad
		}
	}
	names := make([]string, 0, len(final))
	for name := range final {
		names = append(names, name)
	}
	sort.Strings(names)
	var reqs, offs []*classad.Ad
	for _, name := range names {
		ad := final[name]
		if typ, _ := ad.Eval("Type").StringVal(); classad.Fold(typ) == "job" {
			reqs = append(reqs, ad)
		} else {
			offs = append(offs, ad)
		}
	}
	want := map[string]string{}
	for _, match := range matchmaker.New(matchmaker.Config{Index: true}).Negotiate(reqs, offs) {
		r, _ := match.Request.Eval("Name").StringVal()
		o, _ := match.Offer.Eval("Name").StringVal()
		want[r] = o
	}
	return want
}

func sameAssignment(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestDeliveryScheduleConvergence: on every delivery interleaving and
// every wake batching, the healthy engine's final state equals the
// from-scratch negotiation. This is the event-driven analogue of the
// checker's safety walk — delta delivery order must not matter.
func TestDeliveryScheduleConvergence(t *testing.T) {
	streams := eventStreams()
	want := referenceAssignment(streams)
	orders := interleavings(streams)
	total := 0
	for _, seq := range orders {
		for mask := 0; mask < 1<<len(seq); mask++ {
			total++
			if got := runSchedule(seq, mask, false); !sameAssignment(got, want) {
				t.Fatalf("schedule (order %v, wake mask %b) diverged: got %v, want %v",
					names(seq), mask, got, want)
			}
		}
	}
	t.Logf("%d schedules explored (%d interleavings), all converged to %v", total, len(orders), want)
}

// TestDeliveryScheduleRediscoversDroppedWake: with the
// DropDirtyNotification mutant seeded there EXISTS a schedule whose
// final state diverges — and also schedules that mask the bug, which
// is why the exhaustive walk (not one lucky order) is the test.
func TestDeliveryScheduleRediscoversDroppedWake(t *testing.T) {
	streams := eventStreams()
	want := referenceAssignment(streams)
	orders := interleavings(streams)
	diverged, agreed := 0, 0
	var witness string
	for _, seq := range orders {
		for mask := 0; mask < 1<<len(seq); mask++ {
			if got := runSchedule(seq, mask, true); sameAssignment(got, want) {
				agreed++
			} else {
				diverged++
				if witness == "" {
					witness = fmt.Sprintf("order %v, wake mask %b: got %v, want %v",
						names(seq), mask, runSchedule(seq, mask, true), want)
				}
			}
		}
	}
	if diverged == 0 {
		t.Fatalf("DropDirtyNotification mutant survived every delivery schedule")
	}
	if agreed == 0 {
		t.Fatalf("mutant diverged on every schedule; the bug would not need schedule exploration")
	}
	t.Logf("mutant rediscovered: %d/%d schedules diverged; witness: %s", diverged, diverged+agreed, witness)
}

func names(seq []matchmaker.AdDelta) []string {
	out := make([]string, len(seq))
	for i, d := range seq {
		out[i] = d.Name
	}
	return out
}
