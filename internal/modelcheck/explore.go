package modelcheck

import "sort"

// Result summarizes one exploration run.
type Result struct {
	// Schedules is how many distinct action prefixes were executed —
	// every node of the DFS replays its whole prefix against a fresh
	// world, so each counts as one fully-executed schedule.
	Schedules int
	// States is how many distinct canonical fingerprints were reached.
	States int
	// Deepest is the longest schedule executed.
	Deepest int
	// Truncated reports that MaxSchedules ended exploration early.
	Truncated bool
	// Violations holds one counterexample per violated invariant code
	// (the first schedule that reached it), sorted by code.
	Violations []*Violation
}

// Explore walks the scenario's schedule space with a depth-bounded
// DFS. Every source of nondeterminism is an explicit Action, so the
// walk is exhaustive up to MaxDepth over the canonical state space:
// message delivery orders, advertisement refresh points, lease expiry
// and negotiator takeover interleavings are all schedules.
//
// The explorer is replay-based: the real components (collector store,
// matchmakers, resource agents) cannot snapshot or undo, so each DFS
// node rebuilds a fresh world and replays its action prefix. Prefix
// replay makes every counterexample trivially reproducible — the
// Violation's Schedule is the reproduction, byte for byte.
//
// Pruning: a state fingerprint already visited with at least as much
// remaining depth cannot lead anywhere new and is cut. Violating
// states are recorded (first schedule to reach each code wins) and
// their subtrees cut — every extension would contain the same
// violation.
func Explore(cfg Config) (*Result, error) {
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 8
	}
	sys, err := newSystem(&cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	seen := map[string]int{}
	stop := false

	var dfs func(prefix []Action, remaining int)
	dfs = func(prefix []Action, remaining int) {
		if stop {
			return
		}
		if cfg.MaxSchedules > 0 && res.Schedules >= cfg.MaxSchedules {
			res.Truncated = true
			stop = true
			return
		}
		res.Schedules++
		if len(prefix) > res.Deepest {
			res.Deepest = len(prefix)
		}
		w := sys.newWorld(nil)
		for _, a := range prefix {
			w.apply(a)
		}
		if len(w.violations) > 0 {
			for _, v := range w.violations {
				if hasCode(res.Violations, v.Code) {
					continue
				}
				v.Schedule = append([]Action(nil), prefix...)
				v.Trace = append([]string(nil), w.trace...)
				res.Violations = append(res.Violations, v)
				if cfg.StopOnViolation {
					stop = true
				}
			}
			return // every extension repeats the violation
		}
		fp := w.fingerprint()
		if prev, ok := seen[fp]; ok && prev >= remaining {
			return
		}
		seen[fp] = remaining
		if remaining == 0 {
			return
		}
		for _, a := range w.enabled() {
			dfs(append(prefix, a), remaining-1)
		}
	}
	dfs(nil, cfg.MaxDepth)
	res.States = len(seen)
	sort.Slice(res.Violations, func(i, j int) bool {
		return res.Violations[i].Code < res.Violations[j].Code
	})
	return res, nil
}

func hasCode(vs []*Violation, code string) bool {
	for _, v := range vs {
		if v.Code == code {
			return true
		}
	}
	return false
}
