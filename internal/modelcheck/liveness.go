package modelcheck

import (
	"fmt"
	"strings"
)

// LivenessResult reports one fair-schedule run.
type LivenessResult struct {
	// Rounds is how many fair rounds ran.
	Rounds int
	// Violation is the MC201 counterexample (or a safety violation the
	// run tripped over), nil when every obligation completed.
	Violation *Violation
	// Starved names the finite jobs that never completed when
	// Violation is set.
	Starved []string
}

// CheckLiveness runs the scenario under a deterministic fair
// scheduler and checks MC201: every satisfiable finite job eventually
// runs to completion. Each round, in fixed order: every machine
// re-advertises, every idle job (whose Delay has passed) enters the
// pool, the first negotiator runs a cycle, every pending MATCH is
// delivered FIFO, and every running finite job completes one work
// unit. This is the fairness assumption of the paper's opportunistic
// model — everyone gets to act every round — so a job that still
// starves is starved by the protocol, not the schedule.
//
// Starvation is detected by fingerprint recurrence: the scheduler is
// deterministic, so revisiting a canonical state with obligations
// outstanding proves the system is in a loop that never serves them —
// the claimed-offer livelock of ROADMAP item 1 is exactly such a loop.
func CheckLiveness(cfg Config, maxRounds int) (*LivenessResult, error) {
	if maxRounds <= 0 {
		maxRounds = 32
	}
	sys, err := newSystem(&cfg)
	if err != nil {
		return nil, err
	}
	w := sys.newWorld(nil)
	res := &LivenessResult{}
	seen := map[string]int{}
	for round := 1; round <= maxRounds; round++ {
		res.Rounds = round
		w.tracef("--- fair round %d ---", round)
		for i := range w.machines {
			w.apply(Action{Op: "advertise", Arg: i})
		}
		for i, j := range w.jobs {
			if j.st == jobIdle && round > cfg.Jobs[i].Delay {
				w.apply(Action{Op: "submit", Arg: i})
			}
		}
		w.apply(Action{Op: "negotiate", Arg: 0})
		for len(w.pending) > 0 {
			w.apply(Action{Op: "deliver", Arg: 0})
		}
		for i, j := range w.jobs {
			if j.st == jobRunning && cfg.Jobs[i].Work >= 0 {
				w.apply(Action{Op: "complete", Arg: i})
			}
		}
		if len(w.violations) > 0 {
			v := w.violations[0]
			v.Trace = append([]string(nil), w.trace...)
			res.Violation = v
			res.Starved = starved(w)
			return res, nil
		}
		if len(starved(w)) == 0 {
			return res, nil // every obligation met
		}
		fp := w.fingerprint()
		if prev, ok := seen[fp]; ok {
			res.Starved = starved(w)
			res.Violation = &Violation{
				Code: CodeStarvation,
				Detail: fmt.Sprintf(
					"no progress: rounds %d and %d reach the same state with %s still unserved",
					prev, round, strings.Join(res.Starved, ", ")),
				Trace: append([]string(nil), w.trace...),
			}
			return res, nil
		}
		seen[fp] = round
	}
	res.Starved = starved(w)
	res.Violation = &Violation{
		Code: CodeStarvation,
		Detail: fmt.Sprintf("%s still unserved after %d fair rounds",
			strings.Join(res.Starved, ", "), maxRounds),
		Trace: append([]string(nil), w.trace...),
	}
	return res, nil
}

// starved lists the finite jobs that have not completed.
func starved(w *World) []string {
	var out []string
	for i, j := range w.jobs {
		if w.sys.cfg.Jobs[i].Work >= 0 && j.st != jobDone {
			out = append(out, w.sys.cfg.Jobs[i].Name)
		}
	}
	return out
}
