package pool

// Event-loop tests: the event-driven manager must behave exactly like
// the timer-mode manager — same request/offer partition, same matches,
// same convergence under chaos — while doing no negotiation work when
// the pool is quiet. The chaos soak runs in -short mode too (scaled
// down): it is the regression net for the event path's retry and
// fallback machinery.

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/classad"
	"repro/internal/netx"
	"repro/internal/obs"
)

// TestEventLoopMatchesTimerMode drives the same ad pool through a
// timer-mode manager and an event-driven one and asserts wake and
// cycle produce the same matches, charge the same usage, and leave the
// same store behind.
func TestEventLoopMatchesTimerMode(t *testing.T) {
	build := func() (*Manager, string) {
		mgr := NewManager(ManagerConfig{Logf: t.Logf, Obs: obs.New()})
		addr, err := mgr.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(mgr.Close)
		return mgr, addr
	}
	seedAds := func(mgr *Manager) {
		machine := figure1Machine()
		machine.SetString(classad.AttrName, "ev.example")
		if err := mgr.Store().Update(machine, 0); err != nil {
			t.Fatal(err)
		}
		job := classad.Figure2()
		job.SetString(classad.AttrName, "job.ev.1")
		if err := mgr.Store().Update(job, 0); err != nil {
			t.Fatal(err)
		}
	}

	timerMgr, _ := build()
	seedAds(timerMgr)
	timerRes := timerMgr.RunCycle()

	eventMgr, _ := build()
	el := eventMgr.StartEvents(time.Hour) // fallback out of the picture
	t.Cleanup(el.Stop)
	seedAds(eventMgr)
	waitEngineIdle(t, el)
	eventRes, stats := el.Wake()

	if len(timerRes.Matches) != 1 || len(eventRes.Matches) != 1 {
		t.Fatalf("matches: timer %d, event %d, want 1 and 1", len(timerRes.Matches), len(eventRes.Matches))
	}
	tr, er := timerRes.Matches[0], eventRes.Matches[0]
	if adName(tr.Request) != adName(er.Request) || adName(tr.Offer) != adName(er.Offer) {
		t.Fatalf("timer matched %s->%s, event matched %s->%s",
			adName(tr.Request), adName(tr.Offer), adName(er.Request), adName(er.Offer))
	}
	if timerRes.Requests != eventRes.Requests || timerRes.Offers != eventRes.Offers {
		t.Fatalf("pool split: timer %d/%d, event %d/%d",
			timerRes.Requests, timerRes.Offers, eventRes.Requests, eventRes.Offers)
	}
	if stats.FullRebuild != true {
		t.Fatalf("first wake was not the seeding full rebuild: %+v", stats)
	}

	// Quiescence: a content-identical re-advertise queues nothing, so
	// the event manager does no further negotiation work at all.
	seedless := figure1Machine()
	seedless.SetString(classad.AttrName, "ev.example")
	if err := eventMgr.Store().Update(seedless, 0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // give the pump a chance to (wrongly) queue
	if el.Engine().NeedsWake() {
		t.Fatalf("identical heartbeat queued negotiation work")
	}
}

// waitEngineIdle blocks until the pump has delivered everything the
// store has published so far (the subscription and engine queues are
// asynchronous).
func waitEngineIdle(t *testing.T, el *EventLoop) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !el.Engine().NeedsWake() {
		if time.Now().After(deadline) {
			t.Fatal("engine never received the seeded deltas")
		}
		time.Sleep(time.Millisecond)
	}
}

// chaosPoolRun is one full seeded chaos scenario: a manager (timer- or
// event-driven), RAs, a CA, jobs run to completion through injected
// faults. It returns once every job completed (or fails the test).
type chaosPoolRun struct {
	okClaims  int
	fallbacks int
	wakes     int64
	rounds    int
}

func runChaosPool(t *testing.T, seed int64, nJobs, nRAs int, drop float64, eventMode bool, fallback time.Duration, deadline time.Duration) chaosPoolRun {
	t.Helper()
	faults := netx.NewFaults(netx.FaultPlan{
		Seed:      seed,
		Drop:      drop,
		Reset:     0.05,
		Delay:     0.15,
		DelayTime: 2 * time.Millisecond,
	})
	dialer, retry := chaosNet(seed)
	o := obs.New()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	collectorAddr := ln.Addr().String()
	mgr := NewManager(ManagerConfig{Logf: t.Logf, Dialer: dialer, NotifyRetry: retry, Obs: o})
	mgr.Serve(faults.Listener(ln))
	defer mgr.Close()

	var el *EventLoop
	if eventMode {
		el = mgr.StartEvents(fallback)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go el.Run(ctx)
		defer el.Stop()
	}

	const adLifetime = 2
	ras := make([]*ResourceDaemon, nRAs)
	for i := range ras {
		machine := figure1Machine()
		machine.SetString(classad.AttrName, fmt.Sprintf("evchaos%d.example", i))
		ra := NewResourceDaemon(agent.NewResource(machine, nil), collectorAddr, adLifetime, t.Logf)
		ra.ConfigureNetwork(dialer, retry)
		ra.IdleTimeout = 2 * time.Second
		raLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ra.Serve(faults.Listener(raLn))
		defer ra.Close()
		ras[i] = ra
	}

	ca := NewCustomerDaemon(agent.NewCustomer("raman", nil), collectorAddr, adLifetime, t.Logf)
	ca.ConfigureNetwork(dialer, retry)
	ca.IdleTimeout = 2 * time.Second
	ca.ClaimTimeout = 500 * time.Millisecond
	caLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ca.Serve(faults.Listener(caLn))
	defer ca.Close()

	ids := make([]int, nJobs)
	for i := range ids {
		ids[i] = ca.CA.Submit(classad.Figure2(), 10).ID
	}
	allDone := func() bool {
		for _, id := range ids {
			if j, _ := ca.CA.Job(id); j.Status != agent.JobCompleted {
				return false
			}
		}
		return true
	}

	var run chaosPoolRun
	stopAt := time.Now().Add(deadline)
	for run.rounds = 1; !allDone(); run.rounds++ {
		if time.Now().After(stopAt) {
			for _, id := range ids {
				j, _ := ca.CA.Job(id)
				t.Logf("job %d: %s (done %.0f/%.0f)", id, j.Status, j.Done, j.Work)
			}
			t.Fatalf("%s mode: jobs incomplete after %d rounds; faults: %+v",
				modeName(eventMode), run.rounds, faults.Stats())
		}
		for _, ra := range ras {
			_ = ra.Advertise() // faults tolerated; retried next round
		}
		_ = ca.AdvertiseIdle()
		if !eventMode {
			mgr.RunCycle()
		}
		for _, j := range ca.CA.Snapshot() {
			if j.Status == agent.JobRunning || j.Status == agent.JobCompleted {
				_ = ca.Complete(j.ID)
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st := faults.Stats(); st.Drops == 0 {
		t.Fatalf("%s mode: no faults injected: %+v", modeName(eventMode), st)
	}
	run.okClaims, _ = ca.ClaimStats()
	if el != nil {
		// The fallback ticker fires on a quiet pool too — that is the
		// point of the safety net. Wait out at least one tick so the
		// run proves the net is alive, not just that deltas won.
		fbDeadline := time.Now().Add(10 * fallback)
		for el.Fallbacks() == 0 && time.Now().Before(fbDeadline) {
			time.Sleep(fallback / 10)
		}
		run.fallbacks = el.Fallbacks()
	}
	run.wakes = o.Registry().Snapshot().Counters["matchmaker_wakes_total"]
	return run
}

func modeName(eventMode bool) string {
	if eventMode {
		return "event"
	}
	return "timer"
}

// TestChaosEventPoolConvergesWithTimerMode runs the same seeded fault
// scenario through both drivers. Both must converge — every job
// completes — and the event run must show its machinery actually
// engaged: wakes happened, and the fallback rebuild fired (it is the
// retry path for matches whose notification the chaos ate). Scaled
// down but NOT skipped under -short: this is the event path's
// regression net in the fast loop.
func TestChaosEventPoolConvergesWithTimerMode(t *testing.T) {
	seed := int64(20260807)
	nJobs, nRAs, drop := 6, 3, 0.30
	deadline := 90 * time.Second
	if testing.Short() {
		nJobs, nRAs, drop = 3, 2, 0.15
		deadline = 30 * time.Second
	}

	event := runChaosPool(t, seed, nJobs, nRAs, drop, true, 300*time.Millisecond, deadline)
	timer := runChaosPool(t, seed, nJobs, nRAs, drop, false, 0, deadline)

	// Convergence parity: the harness fails the run that does not
	// complete, so reaching here means both converged; the claim floor
	// checks neither converged vacuously.
	if event.okClaims < nJobs {
		t.Errorf("event mode: claims ok = %d, want >= %d", event.okClaims, nJobs)
	}
	if timer.okClaims < nJobs {
		t.Errorf("timer mode: claims ok = %d, want >= %d", timer.okClaims, nJobs)
	}
	if event.wakes == 0 {
		t.Errorf("event mode: matchmaker_wakes_total = 0; the engine never ran")
	}
	if event.fallbacks == 0 {
		t.Errorf("event mode: fallback rebuild never fired over %d rounds", event.rounds)
	}
	t.Logf("event: %d rounds, %d wakes, %d fallbacks, %d claims; timer: %d rounds, %d claims",
		event.rounds, event.wakes, event.fallbacks, event.okClaims, timer.rounds, timer.okClaims)
}

// TestEventManagerSelfAdsDoNotWake pins the self-wake loop guard: the
// manager's own negotiator self-ad and daemon liveness ads (published
// after every wake) must not queue another wake.
func TestEventManagerSelfAdsDoNotWake(t *testing.T) {
	mgr := NewManager(ManagerConfig{Logf: t.Logf, Obs: obs.New()})
	if _, err := mgr.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	el := mgr.StartEvents(time.Hour)
	t.Cleanup(el.Stop)

	machine := figure1Machine()
	machine.SetString(classad.AttrName, "selfad.example")
	if err := mgr.Store().Update(machine, 0); err != nil {
		t.Fatal(err)
	}
	waitEngineIdle(t, el)
	el.Wake() // publishes the negotiator self-ad and daemon ads

	// The pump is asynchronous; give the self-ad deltas time to arrive
	// (they must be classified as ignorable, queueing nothing).
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		if el.Engine().NeedsWake() {
			t.Fatalf("the manager's own post-wake self-ads woke the engine: self-wake loop")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
