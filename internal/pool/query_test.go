package pool

import (
	"bufio"
	"net"
	"path/filepath"
	"testing"

	"repro/internal/agent"
	"repro/internal/classad"
	"repro/internal/matchmaker"
	"repro/internal/protocol"
)

// queryCA poses a one-way query to a customer daemon, the way cqueue
// does.
func queryCA(t *testing.T, addr string, constraint string) []*classad.Ad {
	t.Helper()
	query := classad.NewAd()
	if err := query.SetExprString(classad.AttrConstraint, constraint); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := protocol.Write(conn, &protocol.Envelope{
		Type: protocol.TypeQuery, Ad: protocol.EncodeAd(query),
	}); err != nil {
		t.Fatal(err)
	}
	reply, err := protocol.Read(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != protocol.TypeQueryReply {
		t.Fatalf("reply = %s (%s)", reply.Type, reply.Reason)
	}
	out := make([]*classad.Ad, 0, len(reply.Ads))
	for _, s := range reply.Ads {
		ad, err := protocol.DecodeAd(s)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ad)
	}
	return out
}

func TestCustomerQueueQuery(t *testing.T) {
	ca := NewCustomerDaemon(agent.NewCustomer("raman", nil), "127.0.0.1:1", 0, t.Logf)
	addr, err := ca.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()

	j1 := ca.CA.Submit(classad.MustParse(`[ Cmd = "a" ]`), 100)
	j2 := ca.CA.Submit(classad.MustParse(`[ Cmd = "b" ]`), 100)
	if err := ca.CA.MarkRunning(j2.ID, "w9"); err != nil {
		t.Fatal(err)
	}
	if _, err := ca.CA.Progress(j2.ID, 25, false); err != nil {
		t.Fatal(err)
	}

	all := queryCA(t, addr, "true")
	if len(all) != 2 {
		t.Fatalf("query all = %d jobs", len(all))
	}
	running := queryCA(t, addr, `other.JobStatus == "Running"`)
	if len(running) != 1 {
		t.Fatalf("running = %d", len(running))
	}
	if host, _ := running[0].Eval("RemoteHost").StringVal(); host != "w9" {
		t.Errorf("RemoteHost = %q", host)
	}
	if done, _ := running[0].Eval("WorkDone").NumberVal(); done != 25 {
		t.Errorf("WorkDone = %v", done)
	}
	idle := queryCA(t, addr, `other.JobStatus == "Idle"`)
	if len(idle) != 1 {
		t.Fatalf("idle = %d", len(idle))
	}
	if id, _ := idle[0].Eval("JobId").IntVal(); id != int64(j1.ID) {
		t.Errorf("idle job id = %d", id)
	}
}

func TestManagerUsagePersistence(t *testing.T) {
	dir := t.TempDir()
	usageFile := filepath.Join(dir, "usage.json")

	mgr := NewManager(ManagerConfig{
		Matchmaker: matchmaker.Config{FairShare: true},
		UsageFile:  usageFile,
		Logf:       t.Logf,
	})
	// Seed the store directly (in-process advertising): one machine,
	// one job owned by alice.
	machine := classad.Figure1()
	machine.SetInt("DayTime", 22*3600)
	machine.SetString(classad.AttrTicket, "t")
	if err := mgr.Store().Update(machine, 0); err != nil {
		t.Fatal(err)
	}
	job := classad.Figure2()
	job.SetString(classad.AttrName, "raman/job1")
	if err := mgr.Store().Update(job, 0); err != nil {
		t.Fatal(err)
	}
	res := mgr.RunCycle()
	// Notification fails (no contacts), and — charge-on-claim-ack —
	// a match that never produced an acknowledged claim bills nothing.
	if len(res.Matches) != 1 {
		t.Fatalf("matches = %d", len(res.Matches))
	}
	if u := mgr.Usage().Effective("raman"); u != 0 {
		t.Errorf("usage = %v, want 0 for an unacknowledged match", u)
	}
	// Charge as an acknowledged claim would have, then run a cycle so
	// the per-cycle save persists the table.
	mgr.Usage().Record("raman", 1)
	mgr.RunCycle()

	// A restarted manager inherits the history.
	mgr2 := NewManager(ManagerConfig{
		Matchmaker: matchmaker.Config{FairShare: true},
		UsageFile:  usageFile,
		Logf:       t.Logf,
	})
	if u := mgr2.Usage().Effective("raman"); u != 1 {
		t.Errorf("restored usage = %v, want 1", u)
	}
}
