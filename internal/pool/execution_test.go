package pool

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/classad"
	"repro/internal/remote"
)

// execJob builds a job ad that executes for real: remote syscalls
// against the CA's shadow, reading "in" and writing "out".
func execJob() *classad.Ad {
	return classad.MustParse(`[
		Type = "Job";
		Cmd  = "run_sim";
		WantRemoteSyscalls = 1;
		WantCheckpoint = 1;
		In  = "in";
		Out = "out";
		Memory = 31;
		Constraint = other.Type == "Machine";
	]`)
}

// execPool stands up a manager, one RA and one execution-enabled CA.
func execPool(t *testing.T, input []byte) (*Manager, *ResourceDaemon, *CustomerDaemon, *remote.FileStore) {
	t.Helper()
	mgr := NewManager(ManagerConfig{Logf: t.Logf})
	addr, err := mgr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)

	ra := NewResourceDaemon(agent.NewResource(figure1Machine(), nil), addr, 0, t.Logf)
	if _, err := ra.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ra.Close)

	ca := NewCustomerDaemon(agent.NewCustomer("raman", nil), addr, 0, t.Logf)
	if _, err := ca.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ca.Close)
	fs := remote.NewFileStore()
	fs.Put("in", input)
	if _, err := ca.EnableExecution(fs); err != nil {
		t.Fatal(err)
	}
	return mgr, ra, ca, fs
}

func waitStatus(t *testing.T, ca *CustomerDaemon, id int, want agent.JobStatus, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if j, _ := ca.CA.Job(id); j.Status == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	j, _ := ca.CA.Job(id)
	t.Fatalf("job %d stuck at %s, want %s", id, j.Status, want)
}

// TestExecutionEndToEnd: match → claim → starter runs the job through
// the shadow → JOB_DONE settles the queue → claim released — the full
// Condor lifecycle over real sockets with real (synthetic) work.
func TestExecutionEndToEnd(t *testing.T) {
	input := bytes.Repeat([]byte("high throughput, not high performance. "), 100)
	mgr, ra, ca, fs := execPool(t, input)
	job := ca.CA.Submit(execJob(), 100)

	if err := ra.Advertise(); err != nil {
		t.Fatal(err)
	}
	if err := ca.AdvertiseIdle(); err != nil {
		t.Fatal(err)
	}
	res := mgr.RunCycle()
	if res.Notified != 1 {
		t.Fatalf("cycle: %+v errors=%v", res, res.Errors)
	}
	// The starter runs asynchronously; completion flows back as
	// JOB_DONE.
	waitStatus(t, ca, job.ID, agent.JobCompleted, 10*time.Second)

	got, _ := fs.Get("out")
	want := remote.ExpectedOutput(input, 64)
	if !bytes.Equal(got, want) {
		t.Errorf("output mismatch: %d vs %d bytes", len(got), len(want))
	}
	// The RA released its claim after completion.
	deadline := time.Now().Add(5 * time.Second)
	for ra.RA.State() != agent.StateUnclaimed && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if ra.RA.State() != agent.StateUnclaimed {
		t.Errorf("RA state = %s after completion", ra.RA.State())
	}
}

// TestExecutionSurvivesDaemonEviction: the owner reclaims the machine
// mid-run; the starter is cancelled, the job requeues, the next cycle
// re-matches it, and it resumes from the checkpoint — final output
// still byte-identical.
func TestExecutionSurvivesDaemonEviction(t *testing.T) {
	// Enough records that the run takes a while (~6400 steps).
	input := bytes.Repeat([]byte("x"), 64*6400)
	mgr, ra, ca, fs := execPool(t, input)
	job := ca.CA.Submit(execJob(), 100)

	if err := ra.Advertise(); err != nil {
		t.Fatal(err)
	}
	if err := ca.AdvertiseIdle(); err != nil {
		t.Fatal(err)
	}
	if res := mgr.RunCycle(); res.Notified != 1 {
		t.Fatalf("cycle: %+v", res)
	}
	waitStatus(t, ca, job.ID, agent.JobRunning, 5*time.Second)

	// Let the starter make some progress, then the owner returns.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := ca.Shadow().Checkpoint("raman/job1"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint materialized")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !ra.EvictClaim() {
		t.Fatal("eviction found no claim")
	}
	waitStatus(t, ca, job.ID, agent.JobIdle, 5*time.Second)
	if ra.RA.State() != agent.StateOwner {
		t.Errorf("RA state after eviction = %s", ra.RA.State())
	}

	// The owner leaves; the next cycle re-matches and the job
	// resumes from its checkpoint.
	ra.RA.OwnerLeft()
	if err := ra.Advertise(); err != nil {
		t.Fatal(err)
	}
	if err := ca.AdvertiseIdle(); err != nil {
		t.Fatal(err)
	}
	if res := mgr.RunCycle(); res.Notified != 1 {
		t.Fatalf("second cycle: %+v errors=%v", res, res.Errors)
	}
	waitStatus(t, ca, job.ID, agent.JobCompleted, 30*time.Second)

	got, _ := fs.Get("out")
	want := remote.ExpectedOutput(input, 64)
	if !bytes.Equal(got, want) {
		t.Errorf("output corrupted across eviction: %d vs %d bytes", len(got), len(want))
	}
}

// TestNonExecutingJobsUnaffected: jobs without the execution
// attributes behave exactly as before — claim held until the CA calls
// Complete.
func TestNonExecutingJobsUnaffected(t *testing.T) {
	mgr, ra, ca, _ := execPool(t, nil)
	job := ca.CA.Submit(classad.Figure2(), 100)
	if err := ra.Advertise(); err != nil {
		t.Fatal(err)
	}
	if err := ca.AdvertiseIdle(); err != nil {
		t.Fatal(err)
	}
	if res := mgr.RunCycle(); res.Notified != 1 {
		t.Fatalf("cycle: %+v", res)
	}
	waitStatus(t, ca, job.ID, agent.JobRunning, 5*time.Second)
	// It stays running (no starter to finish it) until completed
	// explicitly.
	time.Sleep(50 * time.Millisecond)
	if j, _ := ca.CA.Job(job.ID); j.Status != agent.JobRunning {
		t.Fatalf("status = %s", j.Status)
	}
	if err := ca.Complete(job.ID); err != nil {
		t.Fatal(err)
	}
	if ra.RA.State() != agent.StateUnclaimed {
		t.Errorf("RA state = %s", ra.RA.State())
	}
}
