package pool

import (
	"net"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/agent"
	"repro/internal/classad"
	"repro/internal/collector"
	"repro/internal/matchmaker"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// poolClock returns a classad environment whose time is an atomic
// counter the test advances by hand, so lease expiry is deterministic.
func poolClock(start int64) (*classad.Env, *atomic.Int64) {
	clock := &atomic.Int64{}
	clock.Store(start)
	return &classad.Env{
		Now:  clock.Load,
		Rand: func() float64 { return 0.5 },
	}, clock
}

// haHarness is a pool with a standalone durable collector and two
// standalone negotiators competing for its leadership lease.
type haHarness struct {
	addr   string
	server *collector.Server
	clock  *atomic.Int64
	ra     *ResourceDaemon
	ca     *CustomerDaemon
	caObs  *obs.Obs
	negA   *NegotiatorDaemon
	negB   *NegotiatorDaemon
	bObs   *obs.Obs
}

func newHAHarness(t *testing.T) *haHarness {
	t.Helper()
	dir := t.TempDir()
	env, clock := poolClock(1_000_000)

	cstore, err := collector.OpenDurable(filepath.Join(dir, "collector"), env, nil)
	if err != nil {
		t.Fatal(err)
	}
	server := collector.NewServer(cstore, t.Logf)
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(server.Close)
	t.Cleanup(func() { cstore.Close() })

	ra := NewResourceDaemon(agent.NewResource(figure1Machine(), nil), addr, 0, t.Logf)
	if _, err := ra.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ra.Close)

	caObs := obs.New()
	ca := NewCustomerDaemon(agent.NewCustomer("raman", nil), addr, 0, t.Logf)
	ca.Instrument(caObs)
	if err := ca.EnableJournal(filepath.Join(dir, "ca"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ca.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ca.Close)

	ledgerA, err := matchmaker.OpenUsageLedger(filepath.Join(dir, "ledger-a"), nil)
	if err != nil {
		t.Fatal(err)
	}
	negA := NewNegotiatorDaemon("nego-a", &collector.Client{Addr: addr}, ledgerA,
		matchmaker.Config{Env: env})
	negA.Logf = t.Logf
	t.Cleanup(negA.Close)
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stateA := negA.ServeState(lnA)

	ledgerB, err := matchmaker.OpenUsageLedger(filepath.Join(dir, "ledger-b"), nil)
	if err != nil {
		t.Fatal(err)
	}
	bObs := obs.New()
	negB := NewNegotiatorDaemon("nego-b", &collector.Client{Addr: addr}, ledgerB,
		matchmaker.Config{Env: env})
	negB.Logf = t.Logf
	negB.PeerState = "http://" + stateA
	negB.Instrument(bObs)
	t.Cleanup(negB.Close)

	return &haHarness{
		addr: addr, server: server, clock: clock,
		ra: ra, ca: ca, caObs: caObs,
		negA: negA, negB: negB, bObs: bObs,
	}
}

func (h *haHarness) advertise(t *testing.T) {
	t.Helper()
	if err := h.ra.Advertise(); err != nil {
		t.Fatal(err)
	}
	if err := h.ca.AdvertiseIdle(); err != nil {
		t.Fatal(err)
	}
}

// TestNegotiatorFailover is the HA chaos run: two standalone
// negotiators share one collector; the leader dies between producing a
// match and the next renewal, the standby takes over within one lease
// period under a higher epoch, the dead leader's stale match is
// fenced, and the usage ledger ends identical to a run with no
// failure — zero lost claims, no double grants.
func TestNegotiatorFailover(t *testing.T) {
	h := newHAHarness(t)

	// Cycle 1: negotiator A wins the first election (epoch 1) and
	// matches job 1.
	job1 := h.ca.CA.Submit(classad.Figure2(), 100)
	h.advertise(t)
	res := h.negA.Tick()
	if res.Standby || res.Epoch != 1 {
		t.Fatalf("A's first tick = %+v, want leader at epoch 1", res)
	}
	if res.Notified != 1 {
		t.Fatalf("A notified %d, errors: %v", res.Notified, res.Errors)
	}
	if j, _ := h.ca.CA.Job(job1.ID); j.Status != agent.JobRunning {
		t.Fatalf("job 1 = %s after A's cycle", j.Status)
	}

	// B ticks while A leads: it must stand by — matching nothing —
	// and warm-sync A's ledger through the state endpoint.
	resB := h.negB.Tick()
	if !resB.Standby {
		t.Fatalf("B's tick with A alive = %+v, want standby", resB)
	}
	if leader, _ := h.negB.Leader(); leader {
		t.Fatal("B believes it leads while A holds the lease")
	}
	if got := h.negB.Usage().Effective("raman"); got < 0.99 || got > 1.01 {
		t.Fatalf("B's synced usage for raman = %g, want ~1 (A's one match)", got)
	}

	// Job 1 completes; job 2 arrives. Then A dies holding the lease,
	// with the match work for job 2 undone — the paper's soft-state
	// argument (§4.3) says nothing but time is lost.
	if err := h.ca.Complete(job1.ID); err != nil {
		t.Fatal(err)
	}
	job2 := h.ca.CA.Submit(classad.Figure2(), 100)
	h.advertise(t)
	h.negA.Close()

	// Within A's lease period B remains a standby: the collector
	// cannot yet distinguish a dead leader from a slow one.
	if res := h.negB.Tick(); !res.Standby {
		t.Fatalf("B seized leadership inside A's lease: %+v", res)
	}

	// One lease period later B takes over under epoch 2 and matches
	// job 2 — the claim A never introduced is not lost.
	h.clock.Add(collector.DefaultLeaseTTL + 1)
	res = h.negB.Tick()
	if res.Standby || res.Epoch != 2 {
		t.Fatalf("B's takeover tick = %+v, want leader at epoch 2", res)
	}
	if res.Notified != 1 {
		t.Fatalf("B notified %d, errors: %v", res.Notified, res.Errors)
	}
	if j, _ := h.ca.CA.Job(job2.ID); j.Status != agent.JobRunning {
		t.Fatalf("job 2 = %s after failover", j.Status)
	}
	if snap := h.bObs.Registry().Snapshot(); snap.Counters["negotiator_failovers_total"] != 1 {
		t.Errorf("negotiator_failovers_total = %d, want 1", snap.Counters["negotiator_failovers_total"])
	}

	// A MATCH from the deposed leader (epoch 1) arrives late — say a
	// notification A had queued before dying. The CA fences it.
	machine := figure1Machine()
	machine.SetString(classad.AttrTicket, "stale")
	target := classad.NewAd()
	target.SetString(classad.AttrContact, h.ca.Contact())
	_, err := sendToContact(nil, target, &protocol.Envelope{
		Type:   protocol.TypeMatch,
		PeerAd: protocol.EncodeAd(machine),
		Ticket: "stale",
		Epoch:  1,
	})
	if err == nil || !strings.Contains(err.Error(), "stale negotiator epoch") {
		t.Fatalf("stale MATCH error = %v, want epoch fence rejection", err)
	}
	if snap := h.caObs.Registry().Snapshot(); snap.Counters["pool_fenced_matches_total"] != 1 {
		t.Errorf("pool_fenced_matches_total = %d, want 1", snap.Counters["pool_fenced_matches_total"])
	}
	if h.ca.HighestEpoch() != 2 {
		t.Errorf("CA high-water epoch = %d, want 2", h.ca.HighestEpoch())
	}

	// No double grants: the RA holds exactly one claim, from job 2's
	// single successful claim exchange.
	if st := h.ra.RA.State(); st != agent.StateClaimed {
		t.Errorf("RA state = %s", st)
	}
	okClaims, rejected := h.ca.ClaimStats()
	if okClaims != 2 || rejected != 0 {
		t.Errorf("claim stats = %d ok / %d rejected, want 2/0", okClaims, rejected)
	}

	// Ledger equality: a failure-free run of the same workload charges
	// raman exactly two units (one per match). B's ledger — one unit
	// shipped from A, one charged by B — must agree. Decay over the
	// test's wall-clock milliseconds is negligible.
	if got := h.negB.Usage().Effective("raman"); got < 1.99 || got > 2.01 {
		t.Errorf("post-failover usage for raman = %g, want ~2 (the no-failure total)", got)
	}
}

// TestLeaseSurvivesCollectorRestart: the epoch fence must hold even
// when the collector itself restarts between two leaders' reigns —
// the lease state rides the collector's journal.
func TestLeaseSurvivesCollectorRestart(t *testing.T) {
	dir := t.TempDir()
	env, clock := poolClock(5_000)

	s1, err := collector.OpenDurable(dir, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	lease, granted, err := s1.AcquireLease("nego-a", 0)
	if err != nil || !granted || lease.Epoch != 1 {
		t.Fatalf("first acquire = %+v %v %v", lease, granted, err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Collector restarts; A's lease (and epoch) must still stand.
	s2, err := collector.OpenDurable(dir, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, granted, _ := s2.AcquireLease("nego-b", 0); granted {
		t.Fatal("B stole the lease across a collector restart")
	}
	clock.Add(collector.DefaultLeaseTTL + 1)
	lease, granted, err = s2.AcquireLease("nego-b", 0)
	if err != nil || !granted {
		t.Fatalf("post-expiry acquire: %+v %v %v", lease, granted, err)
	}
	if lease.Epoch != 2 {
		t.Errorf("epoch after restart and takeover = %d, want 2", lease.Epoch)
	}
}

// TestClaimJournalRestartGranted: a CA restart restores a granted
// claim — the job resumes Running with its claim reference intact, and
// completion still releases the provider.
func TestClaimJournalRestartGranted(t *testing.T) {
	dir := t.TempDir()
	p := newTestPool(t, figure1Machine(), "raman")
	if err := p.ca.EnableJournal(dir, nil); err != nil {
		t.Fatal(err)
	}
	job := p.ca.CA.Submit(classad.Figure2(), 100)
	if err := p.ra.Advertise(); err != nil {
		t.Fatal(err)
	}
	if err := p.ca.AdvertiseIdle(); err != nil {
		t.Fatal(err)
	}
	if res := p.mgr.RunCycle(); res.Notified != 1 {
		t.Fatalf("cycle: %+v", res)
	}
	if p.ra.RA.State() != agent.StateClaimed {
		t.Fatal("machine not claimed")
	}

	// The CA process dies and comes back: a fresh daemon, a fresh
	// queue holding the same submission, the same journal directory.
	p.ca.Close()
	ca2 := NewCustomerDaemon(agent.NewCustomer("raman", nil), p.addr, 0, t.Logf)
	job2 := ca2.CA.Submit(classad.Figure2(), 100)
	if job2.ID != job.ID {
		t.Fatalf("restarted queue assigned job ID %d, want %d", job2.ID, job.ID)
	}
	if err := ca2.EnableJournal(dir, nil); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ca2.Close)

	j, _ := ca2.CA.Job(job2.ID)
	if j.Status != agent.JobRunning {
		t.Fatalf("reconciled job = %s, want Running", j.Status)
	}
	live := ca2.Journal().Live()
	if len(live) != 1 || live[0].Phase != PhaseGranted {
		t.Fatalf("journal after reconcile = %+v", live)
	}
	// The restored claim reference still reaches the provider.
	if err := ca2.Complete(job2.ID); err != nil {
		t.Fatal(err)
	}
	if p.ra.RA.State() != agent.StateUnclaimed {
		t.Errorf("RA state after restored release = %s", p.ra.RA.State())
	}
	if live := ca2.Journal().Live(); len(live) != 0 {
		t.Errorf("journal after completion = %+v", live)
	}
}

// TestClaimJournalRestartClaiming: a claim that was in flight when the
// CA died has an unknown outcome; reconciliation sends the idempotent
// RELEASE and leaves the job idle for re-matching.
func TestClaimJournalRestartClaiming(t *testing.T) {
	dir := t.TempDir()
	p := newTestPool(t, figure1Machine(), "raman")

	// Forge the previous incarnation's journal: a begin record with no
	// verdict, pointing at the live RA.
	j, err := OpenClaimJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Begin(1, "leonardo.cs.wisc.edu", p.ra.Contact()); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	ca2 := NewCustomerDaemon(agent.NewCustomer("raman", nil), p.addr, 0, t.Logf)
	job := ca2.CA.Submit(classad.Figure2(), 100)
	if err := ca2.EnableJournal(dir, nil); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ca2.Close)

	// The provider never granted the claim, so the RELEASE is a no-op
	// there; the record is settled and the job stays idle.
	if live := ca2.Journal().Live(); len(live) != 0 {
		t.Errorf("unsettled journal after reconcile: %+v", live)
	}
	if jb, _ := ca2.CA.Job(job.ID); jb.Status != agent.JobIdle {
		t.Errorf("job = %s, want Idle for re-matching", jb.Status)
	}
	if p.ra.RA.State() != agent.StateUnclaimed {
		t.Errorf("RA state = %s", p.ra.RA.State())
	}
}

// TestManagerHAStandby: a Manager enrolled in HA stands down when
// another negotiator holds the lease in its own store.
func TestManagerHAStandby(t *testing.T) {
	env, clock := poolClock(10_000)
	mgr := NewManager(ManagerConfig{Env: env, HAName: "mgr", Logf: t.Logf})
	t.Cleanup(mgr.Close)

	// An external negotiator grabbed the lease first (in-process, as a
	// co-located standby would).
	if _, granted, err := mgr.Store().AcquireLease("other", 0); err != nil || !granted {
		t.Fatalf("external acquire: %v %v", granted, err)
	}
	res := mgr.RunCycle()
	if !res.Standby {
		t.Fatalf("cycle with foreign lease = %+v, want standby", res)
	}

	// After expiry the manager wins the next election and cycles.
	clock.Add(collector.DefaultLeaseTTL + 1)
	res = mgr.RunCycle()
	if res.Standby || res.Epoch != 2 {
		t.Fatalf("post-expiry cycle = %+v, want leader at epoch 2", res)
	}
}

// TestTracePropagatesAcrossFailover pins the causal trace through the
// HA story: the deposed leader's late MATCH for a job is fenced and
// recorded as an errored span of the job's trace, and the new leader's
// successful renegotiation of the same job — notify, claim, verdict —
// appears under the same trace ID. One `cstatus -trace` then shows the
// whole arc: the introduction that bounced off the epoch fence and the
// retry that landed.
func TestTracePropagatesAcrossFailover(t *testing.T) {
	h := newHAHarness(t)
	// Route every daemon's spans into one ring so the reassembled tree
	// can be asserted in one place.
	h.ra.Instrument(h.caObs)
	h.negB.Instrument(h.caObs)

	// Cycle 1: A leads under epoch 1 and matches job 1.
	job1 := h.ca.CA.Submit(classad.Figure2(), 100)
	h.advertise(t)
	if res := h.negA.Tick(); res.Standby || res.Epoch != 1 || res.Notified != 1 {
		t.Fatalf("A's first tick = %+v, want leader at epoch 1 with one match", res)
	}
	if err := h.ca.Complete(job1.ID); err != nil {
		t.Fatal(err)
	}

	// Job 2 arrives carrying its submission-minted trace; A dies with
	// the match undone.
	job2 := h.ca.CA.Submit(classad.Figure2(), 100)
	trace := classad.TraceOf(job2.Ad)
	if trace == "" {
		t.Fatal("job 2 carries no trace ID")
	}
	h.advertise(t)
	h.negA.Close()

	// The new epoch reaches the CA first: a MATCH under epoch 2 for a
	// machine no idle job wants raises the fencing high-water mark and
	// is otherwise harmless.
	vax := classad.NewAd()
	vax.SetString(classad.AttrType, "Machine")
	vax.SetString(classad.AttrName, "vax")
	vax.SetString("Arch", "VAX")
	target := classad.NewAd()
	target.SetString(classad.AttrContact, h.ca.Contact())
	if _, err := sendToContact(nil, target, &protocol.Envelope{
		Type: protocol.TypeMatch, PeerAd: protocol.EncodeAd(vax), Epoch: 2,
	}); err != nil {
		t.Fatal(err)
	}

	// Now the deposed leader's queued MATCH for job 2 lands, stamped
	// with the job's trace context. The fence rejects it — and the
	// refusal joins the trace as an errored span.
	stale := figure1Machine()
	_, err := sendToContact(nil, target, &protocol.Envelope{
		Type: protocol.TypeMatch, PeerAd: protocol.EncodeAd(stale),
		Epoch: 1, Trace: trace, Span: "s-deposed",
	})
	if err == nil || !strings.Contains(err.Error(), "stale negotiator epoch") {
		t.Fatalf("stale MATCH error = %v, want epoch fence rejection", err)
	}

	// B takes over under epoch 2 and renegotiates job 2: the retry that
	// works, under the same trace.
	h.clock.Add(collector.DefaultLeaseTTL + 1)
	res := h.negB.Tick()
	if res.Standby || res.Epoch != 2 || res.Notified != 1 {
		t.Fatalf("B's takeover tick = %+v, want leader at epoch 2 with one match", res)
	}
	if j, _ := h.ca.CA.Job(job2.ID); j.Status != agent.JobRunning {
		t.Fatalf("job 2 = %s after failover", j.Status)
	}

	spans := h.caObs.Spans().Select(trace, 0)
	byKey := make(map[string]obs.Span)
	for _, sp := range spans {
		if sp.Trace != trace {
			t.Fatalf("Select leaked foreign span %+v", sp)
		}
		byKey[sp.Src+"/"+sp.Name] = sp
	}
	fenced, ok := byKey["ca/match_fenced"]
	if !ok {
		t.Fatalf("no fenced span under trace %s (spans: %v)", trace, byKey)
	}
	if !strings.Contains(fenced.Err, "stale negotiator epoch 1") || fenced.Parent != "s-deposed" {
		t.Fatalf("fenced span = %+v, want errored child of the deposed leader's span", fenced)
	}
	notify, ok := byKey["negotiator/notify"]
	if !ok {
		t.Fatalf("no notify span from the new leader (spans: %v)", byKey)
	}
	claim, ok := byKey["ca/claim"]
	if !ok || claim.Parent != notify.ID || claim.Fields["outcome"] != "granted" {
		t.Fatalf("claim span = %+v, want granted child of notify %s", claim, notify.ID)
	}
	verdict, ok := byKey["ra/verdict"]
	if !ok || verdict.Parent != claim.ID || verdict.Fields["outcome"] != "accepted" {
		t.Fatalf("verdict span = %+v, want accepted child of claim %s", verdict, claim.ID)
	}
	if _, ok := byKey["matchmaker/negotiate"]; !ok {
		t.Errorf("no negotiate span from B's matchmaker (spans: %v)", byKey)
	}
}
