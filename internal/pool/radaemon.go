package pool

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/agent"
	"repro/internal/classad"
	"repro/internal/collector"
	"repro/internal/netx"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/remote"
)

// ResourceDaemon exposes a Resource-owner Agent over TCP: it serves
// the claiming protocol (CLAIM / RELEASE, optionally guarded by a
// challenge-response handshake) and acknowledges MATCH notifications.
// It advertises to the collector on demand.
type ResourceDaemon struct {
	RA *agent.Resource

	// RequireChallenge makes the daemon demand an HMAC handshake
	// before considering a claim (paper §3.2 "Authentication").
	RequireChallenge bool

	// IdleTimeout bounds a handler's wait for the next envelope;
	// WriteTimeout bounds each reply write. Set before Listen/Serve.
	IdleTimeout  time.Duration
	WriteTimeout time.Duration

	collector *collector.Client
	// deltas refreshes the RA's ads with UPDATE_DELTA envelopes: an
	// unchanged heartbeat ships an empty delta instead of the full ad.
	deltas   *collector.DeltaAdvertiser
	lifetime int64
	dialer   *netx.Dialer

	mu       sync.Mutex
	ln       net.Listener
	contact  string
	closed   bool
	wg       sync.WaitGroup
	logf     func(string, ...any)
	onEvict  func(claim agent.Claim)
	preempts int
	// starterCancel stops the starter of the active claim, when the
	// claimed job executes via remote syscalls.
	starterCancel chan struct{}

	// Observability hooks; nil (no-op) until Instrument is called.
	obs           *obs.Obs
	events        *obs.Events
	spans         *obs.Spans
	mClaimsRx     *obs.Counter
	mClaimsAccept *obs.Counter
	mClaimsRefuse *obs.Counter
	mPreemptions  *obs.Counter
	mReleases     *obs.Counter
	gHandlersRA   *obs.Gauge
}

// NewResourceDaemon builds a daemon around an RA that advertises to
// collectorAddr with the given ad lifetime (0 for the default).
func NewResourceDaemon(ra *agent.Resource, collectorAddr string, lifetime int64, logf func(string, ...any)) *ResourceDaemon {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	client := &collector.Client{Addr: collectorAddr}
	return &ResourceDaemon{
		RA:           ra,
		IdleTimeout:  netx.DefaultIdleTimeout,
		WriteTimeout: netx.DefaultIOTimeout,
		collector:    client,
		deltas:       collector.NewDeltaAdvertiser(client),
		lifetime:     lifetime,
		dialer:       netx.DefaultDialer,
		logf:         logf,
	}
}

// Instrument routes claiming-protocol activity into o: claims
// received and their verdicts (pool_ra_claims_total,
// pool_ra_claims_accepted_total, pool_ra_claims_rejected_total),
// preemptions and evictions of the active claim
// (pool_ra_preemptions_total), releases served
// (pool_ra_releases_total), and live claim handlers (pool_ra_handlers
// gauge). Claim events carry the cycle ID the CA echoed from its
// MATCH notification. Call before Listen/Serve.
func (d *ResourceDaemon) Instrument(o *obs.Obs) {
	reg := o.Registry()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.obs = o
	d.events = o.Events()
	d.spans = o.Spans()
	d.mClaimsRx = reg.Counter("pool_ra_claims_total")
	d.mClaimsAccept = reg.Counter("pool_ra_claims_accepted_total")
	d.mClaimsRefuse = reg.Counter("pool_ra_claims_rejected_total")
	d.mPreemptions = reg.Counter("pool_ra_preemptions_total")
	d.mReleases = reg.Counter("pool_ra_releases_total")
	d.gHandlersRA = reg.Gauge("pool_ra_handlers")
}

// emit logs one RA event stamped with the given cycle ID.
func (d *ResourceDaemon) emit(typ, cycle string, fields map[string]string) {
	d.mu.Lock()
	ev := d.events
	d.mu.Unlock()
	ev.Emit("ra", typ, cycle, fields)
}

// ConfigureNetwork sets the dialer and retry policy used for all of
// the daemon's outbound traffic (collector heartbeats and CA
// notifications). Call before Listen/Serve.
func (d *ResourceDaemon) ConfigureNetwork(dialer *netx.Dialer, retry netx.RetryPolicy) {
	if dialer == nil {
		dialer = netx.DefaultDialer
	}
	d.dialer = dialer
	d.collector.Dialer = dialer
	d.collector.Retry = retry
}

// OnEvict registers a callback invoked when a claim is preempted by a
// better one; the daemon also notifies the displaced job's CA.
func (d *ResourceDaemon) OnEvict(fn func(agent.Claim)) { d.onEvict = fn }

// Listen binds the claiming endpoint and returns the contact address
// that will appear in advertisements.
func (d *ResourceDaemon) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	return d.Serve(ln), nil
}

// Serve starts the claiming endpoint on an existing listener (which
// chaos tests wrap in a netx.FaultListener) and returns the contact
// address.
func (d *ResourceDaemon) Serve(ln net.Listener) string {
	d.mu.Lock()
	d.ln = ln
	d.contact = ln.Addr().String()
	d.mu.Unlock()
	d.wg.Add(1)
	go d.acceptLoop(ln)
	return d.contact
}

// Contact returns the daemon's claiming address.
func (d *ResourceDaemon) Contact() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.contact
}

// Close stops the daemon, cancelling any running starter.
func (d *ResourceDaemon) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	ln := d.ln
	d.mu.Unlock()
	d.stopStarter()
	if ln != nil {
		ln.Close()
	}
	d.wg.Wait()
}

// Advertise composes the RA's current ad — adding the Contact address
// — and sends it to the collector (Figure 3 step 1).
func (d *ResourceDaemon) Advertise() error {
	ad, err := d.RA.Advertise()
	if err != nil {
		return err
	}
	ad.SetString(classad.AttrContact, d.Contact())
	if err := d.deltas.Advertise(ad, d.lifetime); err != nil {
		return err
	}
	d.mu.Lock()
	o := d.obs
	d.mu.Unlock()
	if o != nil {
		if err := d.deltas.Advertise(DaemonAd("ra", d.RA.Name(), o), daemonAdLifetime); err != nil {
			d.logf("ra %s: advertising daemon ad: %v", d.RA.Name(), err)
		}
	}
	return nil
}

// Invalidate withdraws the RA's ad from the collector.
func (d *ResourceDaemon) Invalidate() error {
	d.deltas.Forget(d.RA.Name())
	return d.collector.Invalidate(d.RA.Name())
}

func (d *ResourceDaemon) acceptLoop(ln net.Listener) {
	defer d.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			d.handle(conn)
		}()
	}
}

func (d *ResourceDaemon) handle(conn net.Conn) {
	defer conn.Close()
	d.mu.Lock()
	gHandlers := d.gHandlersRA
	d.mu.Unlock()
	gHandlers.Inc()
	defer gHandlers.Dec()
	bounded := netx.TimeoutConn(conn, d.IdleTimeout, d.WriteTimeout)
	r := bufio.NewReader(bounded)
	for {
		env, err := protocol.Read(r)
		if err != nil {
			if !quietReadError(err) {
				d.logf("ra %s: read: %v", d.RA.Name(), err)
			}
			return
		}
		var reply *protocol.Envelope
		switch env.Type {
		case protocol.TypeMatch: //epochguard:ok advisory notification; the claim protocol re-fences via the ticket
			// Step 3: the provider learns who it was matched to.
			// Advisory — the claim carries everything needed.
			reply = &protocol.Envelope{Type: protocol.TypeAck}
		case protocol.TypeClaim:
			reply = d.handleClaim(bounded, r, env)
		case protocol.TypeRelease:
			reply = d.handleRelease(env)
		default:
			reply = protocol.Errorf("resource daemon does not handle %s", env.Type)
		}
		if err := protocol.Write(bounded, reply); err != nil {
			d.logf("ra %s: write: %v", d.RA.Name(), err)
			return
		}
	}
}

// handleRelease ends the active claim. RELEASE is idempotent: when
// the reply to a successful release is lost in transit, the CA
// retries, and the duplicate finds the resource already unclaimed —
// that is success, not an error (DESIGN.md, "Failure semantics").
func (d *ResourceDaemon) handleRelease(env *protocol.Envelope) *protocol.Envelope {
	if err := d.RA.Release(env.Name); err != nil {
		if _, held := d.RA.CurrentClaim(); !held {
			d.stopStarter()
			d.mReleases.Inc()
			d.emit("release", env.Cycle, map[string]string{
				"customer": env.Name, "duplicate": "true",
			})
			return &protocol.Envelope{Type: protocol.TypeAck, Reason: "already released"}
		}
		return protocol.Errorf("%v", err)
	}
	d.stopStarter()
	d.mReleases.Inc()
	d.emit("release", env.Cycle, map[string]string{"customer": env.Name})
	return &protocol.Envelope{Type: protocol.TypeAck}
}

// handleClaim runs the RA side of the claiming protocol (Figure 3
// step 4): optional challenge handshake, then ticket verification and
// constraint re-validation via the agent.
func (d *ResourceDaemon) handleClaim(conn net.Conn, r *bufio.Reader, env *protocol.Envelope) *protocol.Envelope {
	job, err := protocol.DecodeAd(env.Ad)
	if err != nil {
		return protocol.Errorf("bad claim ad: %v", err)
	}
	if d.RequireChallenge {
		nonce, err := protocol.NewNonce()
		if err != nil {
			return protocol.Errorf("nonce: %v", err)
		}
		if err := protocol.Write(conn, &protocol.Envelope{
			Type: protocol.TypeChallenge, Nonce: nonce,
		}); err != nil {
			return protocol.Errorf("challenge write: %v", err)
		}
		resp, err := protocol.Read(r)
		if err != nil {
			return protocol.Errorf("challenge read: %v", err)
		}
		if resp.Type != protocol.TypeChalReply ||
			!protocol.VerifyResponse(env.Ticket, nonce, resp.MAC) {
			return &protocol.Envelope{Type: protocol.TypeClaimReply,
				Accepted: false, Reason: "challenge failed"}
		}
	}
	d.mClaimsRx.Inc()
	// The verdict is the last hop of the submission trace: parented to
	// the CA's claim span via the CLAIM envelope's Trace/Span fields.
	d.mu.Lock()
	spans := d.spans
	d.mu.Unlock()
	sp := spans.Start(env.Trace, env.Span, "ra", "verdict")
	sp.Set("job", adName(job))
	sp.Set("machine", d.RA.Name())
	out := d.RA.RequestClaim(job, env.Ticket)
	if out.Accepted {
		sp.Set("outcome", "accepted")
	} else {
		sp.Fail(out.Reason)
	}
	sp.End()
	if out.Accepted {
		d.mClaimsAccept.Inc()
		d.emit("claim_accepted", env.Cycle, map[string]string{
			"job": adName(job),
		})
		if out.Preempted != nil {
			d.stopStarter()
			d.notifyPreempted(*out.Preempted)
		}
		d.maybeStartJob(job)
	} else {
		d.mClaimsRefuse.Inc()
		d.emit("claim_rejected", env.Cycle, map[string]string{
			"job": adName(job), "reason": out.Reason,
		})
	}
	return &protocol.Envelope{
		Type:     protocol.TypeClaimReply,
		Accepted: out.Accepted,
		Reason:   out.Reason,
	}
}

// stopStarter cancels the running starter, if any.
func (d *ResourceDaemon) stopStarter() {
	d.mu.Lock()
	cancel := d.starterCancel
	d.starterCancel = nil
	d.mu.Unlock()
	if cancel != nil {
		close(cancel)
	}
}

// EvictClaim forcibly ends the active claim (the daemon-level owner
// eviction): the starter is cancelled, the RA reclaims the machine,
// and the displaced job's CA gets a PREEMPT notice so the job
// requeues.
func (d *ResourceDaemon) EvictClaim() bool {
	d.stopStarter()
	old, ok := d.RA.Evict()
	if !ok {
		return false
	}
	d.notifyPreempted(old)
	return true
}

// maybeStartJob launches a starter for a claimed job that asked for
// remote-syscall execution (Figure 2's WantRemoteSyscalls): the job's
// ad names its shadow (ShadowContact), its remote input and output
// files (In/Out), and the starter runs on this machine, holding no job
// state locally. Jobs without the attributes simply hold the claim
// until the CA releases it, as before.
func (d *ResourceDaemon) maybeStartJob(job *classad.Ad) {
	if !job.Eval("WantRemoteSyscalls").IsTrue() &&
		!job.Eval("WantRemoteSyscalls").Identical(classad.Int(1)) {
		return
	}
	shadowAddr, ok := job.Eval("ShadowContact").StringVal()
	if !ok || shadowAddr == "" {
		return
	}
	input, okIn := job.Eval("In").StringVal()
	output, okOut := job.Eval("Out").StringVal()
	if !okIn || !okOut {
		return
	}
	owner, _ := job.Eval(classad.AttrOwner).StringVal()
	id, _ := agent.JobIDOf(job)
	spec := remote.JobSpec{
		Key:    fmt.Sprintf("%s/job%d", owner, id),
		Input:  input,
		Output: output,
	}
	cancel := make(chan struct{})
	d.mu.Lock()
	d.starterCancel = cancel
	d.mu.Unlock()
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		res, err := remote.Run(shadowAddr, spec, cancel)
		if err != nil {
			d.logf("ra %s: starter: %v", d.RA.Name(), err)
			return
		}
		if !res.Done {
			return // evicted; the eviction path notified the CA
		}
		d.mu.Lock()
		if d.starterCancel == cancel {
			d.starterCancel = nil
		}
		d.mu.Unlock()
		// The job finished: release the claim locally and tell the
		// CA, which settles its queue bookkeeping.
		if err := d.RA.Release(owner); err != nil {
			d.logf("ra %s: release after completion: %v", d.RA.Name(), err)
		}
		if _, err := sendToContact(d.dialer, job, &protocol.Envelope{
			Type:  protocol.TypeJobDone,
			Ad:    protocol.EncodeAd(job),
			Name:  d.RA.Name(),
			Trace: classad.TraceOf(job),
		}); err != nil {
			d.logf("ra %s: job-done notify: %v", d.RA.Name(), err)
		}
	}()
}

// notifyPreempted tells the displaced job's CA that its claim is gone,
// via the Contact in the job's own ad.
func (d *ResourceDaemon) notifyPreempted(claim agent.Claim) {
	d.mu.Lock()
	d.preempts++
	d.mu.Unlock()
	d.mPreemptions.Inc()
	d.emit("preempt_sent", "", map[string]string{
		"customer": claim.Customer, "job": adName(claim.Job),
	})
	if d.onEvict != nil {
		d.onEvict(claim)
	}
	_, err := sendToContact(d.dialer, claim.Job, &protocol.Envelope{
		Type:  protocol.TypePreempt,
		Ad:    protocol.EncodeAd(claim.Job),
		Name:  d.RA.Name(),
		Trace: classad.TraceOf(claim.Job),
	})
	if err != nil {
		d.logf("ra %s: preempt notify: %v", d.RA.Name(), err)
	}
}
