package pool

import (
	"testing"

	"repro/internal/agent"
	"repro/internal/classad"
	"repro/internal/matchmaker"
)

// TestChargeOnClaimAck pins the fair-share billing rule: usage is
// charged when the customer's MATCH ack reports the claim was granted,
// not when the match is emitted. A match that bounces off claim-time
// revalidation (the weak-consistency path of §3.2) costs the customer
// nothing; the successful retry costs exactly one charge. modelcheck's
// MC104 (usage-ledger conservation) is the exhaustive backstop for
// this test's single schedule.
func TestChargeOnClaimAck(t *testing.T) {
	p := newTestPool(t, figure1Machine(), "tannenba")
	p.ca.CA.Submit(classad.Figure2(), 100)
	if err := p.ra.Advertise(); err != nil {
		t.Fatal(err)
	}
	if err := p.ca.AdvertiseIdle(); err != nil {
		t.Fatal(err)
	}
	// The machine's state moves on between advertisement and claim:
	// the match still happens, the claim bounces.
	p.ra.RA.SetDynamic("KeyboardIdle", classad.Int(2))

	res := p.mgr.RunCycle()
	if len(res.Matches) != 1 || res.Notified != 1 {
		t.Fatalf("bounce cycle = %+v", res)
	}
	if res.Charged != 0 {
		t.Fatalf("bounced match charged %d customers", res.Charged)
	}
	if u := p.mgr.Usage().Effective("tannenba"); u != 0 {
		t.Fatalf("usage after bounced match = %v, want 0", u)
	}

	// The owner leaves; the retry cycle's claim lands and bills once.
	p.ra.RA.SetDynamic("KeyboardIdle", classad.Int(3600))
	if err := p.ra.Advertise(); err != nil {
		t.Fatal(err)
	}
	if err := p.ca.AdvertiseIdle(); err != nil {
		t.Fatal(err)
	}
	res = p.mgr.RunCycle()
	if res.Notified != 1 || p.ra.RA.State() != agent.StateClaimed {
		t.Fatalf("retry cycle = %+v, RA state %s", res, p.ra.RA.State())
	}
	if res.Charged != 1 {
		t.Fatalf("granted claim charged %d customers, want 1", res.Charged)
	}
	if u := p.mgr.Usage().Effective("tannenba"); u != 1 {
		t.Fatalf("usage after granted claim = %v, want 1", u)
	}
}

// TestChargeOnClaimAckLedger runs the same rule against a durable
// usage ledger: the journaled table sees no charge for a match whose
// claim never acked, so a negotiator restart cannot resurrect a bogus
// bill.
func TestChargeOnClaimAckLedger(t *testing.T) {
	ledger, err := matchmaker.OpenUsageLedger(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(ManagerConfig{Logf: t.Logf, Ledger: ledger})
	addr, err := mgr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)

	ra := NewResourceDaemon(agent.NewResource(figure1Machine(), nil), addr, 0, t.Logf)
	if _, err := ra.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ra.Close)
	ca := NewCustomerDaemon(agent.NewCustomer("tannenba", nil), addr, 0, t.Logf)
	if _, err := ca.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ca.Close)

	ca.CA.Submit(classad.Figure2(), 100)
	if err := ra.Advertise(); err != nil {
		t.Fatal(err)
	}
	if err := ca.AdvertiseIdle(); err != nil {
		t.Fatal(err)
	}
	ra.RA.SetDynamic("KeyboardIdle", classad.Int(2)) // claim will bounce
	if res := mgr.RunCycle(); res.Charged != 0 {
		t.Fatalf("bounced match charged the ledger: %+v", res)
	}
	if u := mgr.Usage().Effective("tannenba"); u != 0 {
		t.Fatalf("ledger-backed usage = %v, want 0", u)
	}

	ra.RA.SetDynamic("KeyboardIdle", classad.Int(3600))
	if err := ra.Advertise(); err != nil {
		t.Fatal(err)
	}
	if err := ca.AdvertiseIdle(); err != nil {
		t.Fatal(err)
	}
	if res := mgr.RunCycle(); res.Charged != 1 {
		t.Fatalf("granted claim: %+v, want Charged=1", res)
	}
	if u := mgr.Usage().Effective("tannenba"); u != 1 {
		t.Fatalf("ledger-backed usage = %v, want 1", u)
	}
}
