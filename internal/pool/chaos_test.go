package pool

import (
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/classad"
	"repro/internal/netx"
	"repro/internal/obs"
)

// chaosNet is the tightened network configuration the chaos suite
// runs under: every round-trip bounded in milliseconds-to-seconds so
// the whole suite finishes quickly, every retry seeded so a failing
// run replays.
func chaosNet(seed int64) (*netx.Dialer, netx.RetryPolicy) {
	dialer := &netx.Dialer{
		ConnectTimeout: time.Second,
		IOTimeout:      time.Second,
	}
	retry := netx.RetryPolicy{
		Attempts: 3,
		Base:     2 * time.Millisecond,
		Max:      20 * time.Millisecond,
		Jitter:   0.5,
		Seed:     seed,
	}
	return dialer, retry
}

// rebindListener re-listens on a specific just-released address,
// retrying briefly while the kernel finishes tearing down the old
// listener.
func rebindListener(t *testing.T, addr string) net.Listener {
	t.Helper()
	var err error
	for i := 0; i < 200; i++ {
		var ln net.Listener
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			return ln
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("could not rebind %s: %v", addr, err)
	return nil
}

// waitGoroutineBaseline polls until the goroutine count returns to
// (near) its pre-test baseline, failing if handlers leaked.
func waitGoroutineBaseline(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d now vs %d baseline\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosPoolCompletesAllJobs runs a full pool — manager, three
// RAs, a CA, a stream of jobs — under seeded fault injection on every
// listener: ≥30% of connections dropped at accept, resets and delays
// sprinkled per operation, a collector restart mid-heartbeat, and a
// provider killed outright. The paper's failure semantics must carry
// the pool through: every job completes, no claim round-trip outlives
// its deadline, ads lost to the collector restart are re-established
// by the advertising retry loop, and every handler goroutine drains.
func TestChaosPoolCompletesAllJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak with real sockets and timers; skipped in -short mode")
	}
	const seed = 20260806
	const nRAs = 3
	const nJobs = 8

	faults := netx.NewFaults(netx.FaultPlan{
		Seed:      seed,
		Drop:      0.30,
		Reset:     0.05,
		Delay:     0.20,
		DelayTime: 2 * time.Millisecond,
	})
	dialer, retry := chaosNet(seed)

	// The whole run is instrumented: recovery is asserted through the
	// metrics an operator would scrape, not just internal counters.
	o := obs.New()
	netx.Instrument(o.Registry())
	t.Cleanup(func() { netx.Instrument(nil) })
	faults.Publish(o.Registry())

	baseline := runtime.NumGoroutine()

	// Pool manager on a fixed address so its restart below lands on
	// the same contact the agents keep dialing.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	collectorAddr := ln.Addr().String()
	mgr := NewManager(ManagerConfig{Logf: t.Logf, Dialer: dialer, NotifyRetry: retry, Obs: o})
	mgr.Serve(faults.Listener(ln))

	const adLifetime = 2 // seconds; a dead provider's stale ad ages out fast

	ras := make([]*ResourceDaemon, nRAs)
	for i := range ras {
		machine := figure1Machine()
		machine.SetString(classad.AttrName, fmt.Sprintf("chaos%d.example", i))
		ra := NewResourceDaemon(agent.NewResource(machine, nil), collectorAddr, adLifetime, t.Logf)
		ra.Instrument(o)
		ra.ConfigureNetwork(dialer, retry)
		ra.IdleTimeout = 2 * time.Second
		raLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ra.Serve(faults.Listener(raLn))
		ras[i] = ra
	}

	ca := NewCustomerDaemon(agent.NewCustomer("raman", nil), collectorAddr, adLifetime, t.Logf)
	ca.Instrument(o)
	ca.ConfigureNetwork(dialer, retry)
	ca.IdleTimeout = 2 * time.Second
	ca.ClaimTimeout = 500 * time.Millisecond
	caLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ca.Serve(faults.Listener(caLn))

	ids := make([]int, nJobs)
	for i := range ids {
		ids[i] = ca.CA.Submit(classad.Figure2(), 10).ID
	}
	allDone := func() bool {
		for _, id := range ids {
			if j, _ := ca.CA.Job(id); j.Status != agent.JobCompleted {
				return false
			}
		}
		return true
	}

	deadline := time.Now().Add(90 * time.Second)
	deadRA := -1
	for round := 1; !allDone(); round++ {
		if time.Now().After(deadline) {
			for _, id := range ids {
				j, _ := ca.CA.Job(id)
				t.Logf("job %d: %s (done %.0f/%.0f)", id, j.Status, j.Done, j.Work)
			}
			t.Fatalf("jobs incomplete after %d rounds; faults: %+v", round, faults.Stats())
		}
		switch round {
		case 4:
			// Collector restart mid-heartbeat: the store (and every
			// ad in it) is lost; agents must re-establish state via
			// their periodic advertising alone.
			mgr.Close()
			mgr = NewManager(ManagerConfig{Logf: t.Logf, Dialer: dialer, NotifyRetry: retry, Obs: o})
			mgr.Serve(faults.Listener(rebindListener(t, collectorAddr)))
		case 6:
			// Provider death: its stale ad keeps drawing matches
			// until the lifetime expires; every claim against it must
			// fail within the claim deadline and requeue the job.
			ras[0].Close()
			deadRA = 0
		}
		for i, ra := range ras {
			if i != deadRA {
				_ = ra.Advertise() // faults tolerated; retried next round
			}
		}
		_ = ca.AdvertiseIdle()
		mgr.RunCycle()
		// Jobs run to completion between cycles; Complete also
		// retries any release a previous round failed to deliver.
		for _, j := range ca.CA.Snapshot() {
			if j.Status == agent.JobRunning || j.Status == agent.JobCompleted {
				_ = ca.Complete(j.ID)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The fault plan actually bit: with 30% drops configured over
	// this much traffic, silence here would mean the injector was
	// wired to nothing.
	if st := faults.Stats(); st.Drops == 0 {
		t.Fatalf("no faults injected: %+v", st)
	}
	okClaims, rejected := ca.ClaimStats()
	t.Logf("claims: %d ok, %d rejected/failed; faults: %+v", okClaims, rejected, faults.Stats())
	if okClaims < nJobs {
		t.Errorf("claims ok = %d, want >= %d (every job must have claimed once)", okClaims, nJobs)
	}

	// No claim round-trip may outlive its configured deadline (plus
	// the bounded dial and scheduling slack).
	maxAllowed := ca.ClaimTimeout + dialer.ConnectTimeout + 500*time.Millisecond
	if got := ca.MaxClaimDuration(); got > maxAllowed {
		t.Errorf("slowest claim round-trip %v exceeds bound %v", got, maxAllowed)
	}

	// Expired ads are re-established after recovery: with faults off,
	// one clean advertising round repopulates the restarted
	// collector's store with every surviving provider.
	faults.SetEnabled(false)
	for i, ra := range ras {
		if i == deadRA {
			continue
		}
		if err := ra.Advertise(); err != nil {
			t.Errorf("clean re-advertise of RA %d: %v", i, err)
		}
		name := fmt.Sprintf("chaos%d.example", i)
		if _, ok := mgr.Store().Lookup(name); !ok {
			t.Errorf("ad %s not re-established after collector restart", name)
		}
	}

	// Recovery left its trace in the metrics an operator would scrape:
	// the transport retried through the injected faults, and every
	// claim round-trip landed in the latency histogram.
	snap := o.Registry().Snapshot()
	if got := snap.Counters["netx_retries_total"]; got == 0 {
		t.Errorf("netx_retries_total = 0; 30%% drops must force retries")
	}
	if got := snap.Counters["netx_dials_total"]; got == 0 {
		t.Errorf("netx_dials_total = 0; instrumentation wired to nothing")
	}
	if h := snap.Histograms["pool_claim_seconds"]; h.Count < int64(nJobs) {
		t.Errorf("pool_claim_seconds count = %d, want >= %d", h.Count, nJobs)
	}
	if got := snap.Gauges["netx_fault_drops"]; got == 0 {
		t.Errorf("netx_fault_drops gauge = 0, want the injector's drop count")
	}

	// Teardown drains every handler: goroutine count returns to the
	// pre-test baseline, and the handler gauges agree.
	ca.Close()
	for i, ra := range ras {
		if i != deadRA {
			ra.Close()
		}
	}
	mgr.Close()
	waitGoroutineBaseline(t, baseline)
	for _, g := range []string{"collector_handlers", "pool_ca_handlers", "pool_ra_handlers"} {
		waitGaugeZero(t, o, g)
	}
}

// TestChaosWedgedPeerCannotPinHandler: a client that connects and
// then goes silent is disconnected by the server's idle deadline —
// the handler goroutine count returns to baseline while the wedged
// client still holds its socket open.
func TestChaosWedgedPeerCannotPinHandler(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak with real sockets and timers; skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()
	ra := NewResourceDaemon(agent.NewResource(figure1Machine(), nil), "127.0.0.1:1", 0, t.Logf)
	ra.IdleTimeout = 50 * time.Millisecond
	contact, err := ra.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// A peer that dials and wedges without sending a single envelope.
	conn, err := net.Dial("tcp", contact)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// The handler must give up on its own — before the daemon is
	// closed, not because of it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		buf := make([]byte, 1)
		conn.SetReadDeadline(time.Now().Add(10 * time.Millisecond))
		if _, err := conn.Read(buf); err != nil {
			if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
				break // server closed our connection: handler exited
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("idle deadline never fired: wedged peer still connected")
		}
	}

	ra.Close()
	waitGoroutineBaseline(t, baseline)
}

// TestChaosClaimAgainstWedgedProviderIsBounded: a "provider" that
// accepts the claim connection and then never replies. The CA's claim
// round-trip must fail within ClaimTimeout and requeue the job rather
// than hang the notification handler.
func TestChaosClaimAgainstWedgedProviderIsBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak with real sockets and timers; skipped in -short mode")
	}
	// The wedge: accepts and holds connections open silently.
	wedge, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer wedge.Close()
	go func() {
		for {
			c, err := wedge.Accept()
			if err != nil {
				return
			}
			defer c.Close()
		}
	}()

	// The manager's advisory provider notification also hits the
	// wedge; a tight dialer keeps that leg bounded in milliseconds.
	mgr := NewManager(ManagerConfig{Logf: t.Logf,
		Dialer:      &netx.Dialer{ConnectTimeout: time.Second, IOTimeout: 200 * time.Millisecond},
		NotifyRetry: netx.RetryPolicy{Attempts: 2, Base: 5 * time.Millisecond, Seed: 1},
	})
	addr, err := mgr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)

	ca := NewCustomerDaemon(agent.NewCustomer("raman", nil), addr, 0, t.Logf)
	ca.ClaimTimeout = 100 * time.Millisecond
	if _, err := ca.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ca.Close)

	job := ca.CA.Submit(classad.Figure2(), 100)
	if err := ca.AdvertiseIdle(); err != nil {
		t.Fatal(err)
	}
	// A machine ad whose Contact is the wedge, advertised directly.
	machine := figure1Machine()
	machine.SetString(classad.AttrContact, wedge.Addr().String())
	machine.SetString(classad.AttrTicket, "deadbeef")
	if err := mgr.Store().Update(machine, 0); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	res := mgr.RunCycle()
	elapsed := time.Since(start)
	if len(res.Matches) != 1 {
		t.Fatalf("matches = %d, want 1", len(res.Matches))
	}
	// The claim failed within its deadline; generous slack for the
	// machinery around it.
	if elapsed > 2*time.Second {
		t.Fatalf("cycle against wedged provider took %v", elapsed)
	}
	if got := ca.MaxClaimDuration(); got > time.Second {
		t.Fatalf("claim round-trip %v not bounded by ClaimTimeout", got)
	}
	// The job survived: still idle, ready for re-matching.
	j, _ := ca.CA.Job(job.ID)
	if j.Status != agent.JobIdle {
		t.Fatalf("job status = %s, want Idle (requeued)", j.Status)
	}
	if _, rejected := ca.ClaimStats(); rejected != 1 {
		t.Fatalf("rejected claims = %d, want 1", rejected)
	}
}
