package pool

// Event-driven pool management: the manager variant that sleeps on the
// collector store's change feed instead of a fixed negotiation timer.
// Where RunCycle rebuilds the whole match from scratch every period,
// the EventLoop feeds store deltas into the matchmaker's incremental
// engine and wakes only when something actually changed — steady-state
// heartbeats (content-identical re-advertisements) publish no delta
// and cost no negotiation at all. A configurable fallback timer still
// forces a periodic full rebuild, which is the safety net for anything
// the delta path could ever lose (and the recovery path for
// notification failures).
//
// Lease/epoch semantics are unchanged from timer mode: an HA-enrolled
// manager acquires the leadership lease before each wake and stamps
// its epoch into every MATCH; a wake without the lease matches
// nothing and is retried shortly.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/classad"
	"repro/internal/collector"
	"repro/internal/matchmaker"
	"repro/internal/obs"
)

// DefaultFallback is the default full-rebuild fallback period.
const DefaultFallback = 300 * time.Second

// standbyRetryDelay paces wake attempts while another negotiator holds
// the leadership lease (the queued deltas stay queued meanwhile).
const standbyRetryDelay = time.Second

// notifyRetryDelay schedules a rebuild after a wake left notification
// errors behind, so an unreachable party is retried well before the
// fallback period.
const notifyRetryDelay = 5 * time.Second

// EventLoop couples a Manager to the incremental negotiation engine
// through the store's change feed. Construct with Manager.StartEvents,
// drive with Run (daemons) or Wake (tests and simulations), stop with
// Stop.
type EventLoop struct {
	m   *Manager
	eng *matchmaker.Incremental
	sub *collector.Subscription

	fallback time.Duration
	done     chan struct{}
	wg       sync.WaitGroup

	mu        sync.Mutex
	fallbacks int // fallback rebuilds requested so far
}

// StartEvents subscribes the manager to its own store's change feed,
// seeds the incremental engine with the current ad pool, and starts
// the delta pump and the fallback timer (fallback <= 0 selects
// DefaultFallback). The caller owns the returned loop and must Stop
// it; RunCycle must not run concurrently with an event loop — they
// are alternative drivers for the same matchmaker.
func (m *Manager) StartEvents(fallback time.Duration) *EventLoop {
	if fallback <= 0 {
		fallback = DefaultFallback
	}
	el := &EventLoop{
		m:        m,
		eng:      matchmaker.NewIncremental(m.mm),
		sub:      m.store.Subscribe(),
		fallback: fallback,
		done:     make(chan struct{}),
	}
	if m.obs != nil {
		el.eng.InstrumentEngine(m.obs)
	}
	// Seed: everything already stored arrives as an upsert before any
	// live delta. The subscription was opened first, so a concurrent
	// change is delivered both ways — upserts are idempotent and
	// content-identical replays are suppressed by the engine.
	for _, ad := range m.store.All() {
		if name, err := collector.NameOf(ad); err == nil {
			el.eng.Notify(matchmaker.AdDelta{Kind: matchmaker.AdUpsert, Name: name, Ad: ad})
		}
	}
	el.wg.Add(2)
	go el.pump()
	go el.fallbackTimer()
	return el
}

// Engine exposes the incremental engine (tests, metrics).
func (el *EventLoop) Engine() *matchmaker.Incremental { return el.eng }

// Fallbacks reports how many fallback full rebuilds the timer has
// requested.
func (el *EventLoop) Fallbacks() int {
	el.mu.Lock()
	defer el.mu.Unlock()
	return el.fallbacks
}

// pump moves store deltas into the engine until the subscription
// closes.
func (el *EventLoop) pump() {
	defer el.wg.Done()
	for {
		deltas := el.sub.Wait()
		if len(deltas) == 0 {
			return // closed: Wait only returns empty once unsubscribed
		}
		converted := make([]matchmaker.AdDelta, len(deltas))
		for i, d := range deltas {
			switch d.Kind {
			case collector.DeltaExpired, collector.DeltaInvalidated:
				converted[i] = matchmaker.AdDelta{Kind: matchmaker.AdRemove, Name: d.Name}
			default:
				converted[i] = matchmaker.AdDelta{Kind: matchmaker.AdUpsert, Name: d.Name, Ad: d.Ad}
			}
		}
		el.eng.Notify(converted...)
	}
}

// fallbackTimer periodically forces a full rebuild.
func (el *EventLoop) fallbackTimer() {
	defer el.wg.Done()
	t := time.NewTicker(el.fallback)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			el.mu.Lock()
			el.fallbacks++
			el.mu.Unlock()
			el.eng.MarkAllDirty()
		case <-el.done:
			return
		}
	}
}

// Stop closes the subscription, the engine (unblocking Run), and the
// fallback timer.
func (el *EventLoop) Stop() {
	select {
	case <-el.done:
		return // already stopped
	default:
	}
	close(el.done)
	el.sub.Close()
	el.eng.Close()
	el.wg.Wait()
}

// Run blocks on needs_matchmaking and executes wakes until ctx is
// cancelled or the loop is stopped. Standby wakes (HA, lease held
// elsewhere) and notification failures are retried on their own
// delays.
func (el *EventLoop) Run(ctx context.Context) {
	stop := context.AfterFunc(ctx, el.Stop)
	defer stop()
	for el.eng.Wait() {
		res, _ := el.Wake()
		if res.Standby {
			// The lease holder negotiates; check again shortly rather
			// than spinning on the still-queued deltas.
			select {
			case <-time.After(standbyRetryDelay):
			case <-el.done:
				return
			}
			continue
		}
		if len(res.Errors) > 0 {
			// An unreachable party keeps its match in the engine; a
			// forced rebuild re-derives and re-notifies it.
			time.AfterFunc(notifyRetryDelay, func() {
				select {
				case <-el.done:
				default:
					el.eng.MarkAllDirty()
				}
			})
		}
	}
}

// Wake runs one event-driven negotiation wake: acquire the lease
// (HA), recompute the assignment incrementally, and run the
// matchmaking protocol for every current match — the same per-match
// bookkeeping as RunCycle (notify, charge on accepted claim, withdraw
// the matched request, history). Matches already notified in earlier
// wakes have left the store (their requests were invalidated), so
// re-notification only happens for matches whose notification failed,
// which is exactly the retry timer mode gets from its next cycle.
func (el *EventLoop) Wake() (CycleResult, matchmaker.WakeStats) {
	m := el.m
	start := time.Now()
	m.mu.Lock()
	m.cycles++
	n := m.cycles
	m.mu.Unlock()
	cycleID := obs.NewCycleID(n)

	var epoch uint64
	if m.haName != "" {
		lease, granted, err := m.store.AcquireLease(m.haName, m.leaseTTL)
		if err != nil || !granted {
			if err != nil {
				m.logf("pool: lease: %v", err)
			}
			m.obs.Events().Emit("manager", "cycle_standby", cycleID, map[string]string{
				"leader": lease.Holder,
				"epoch":  fmt.Sprint(lease.Epoch),
			})
			return CycleResult{Cycle: cycleID, Standby: true, Duration: time.Since(start)}, matchmaker.WakeStats{}
		}
		epoch = lease.Epoch
		m.mu.Lock()
		m.epoch = epoch
		m.deadline = lease.Deadline
		m.mu.Unlock()
	}

	matches, stats := el.eng.Recompute(cycleID)
	res := CycleResult{
		Requests: stats.Requests, Offers: stats.Offers,
		Matches: matches, Cycle: cycleID, Epoch: epoch,
	}
	m.obs.Events().Emit("manager", "wake_begin", cycleID, map[string]string{
		"requests": fmt.Sprint(res.Requests),
		"offers":   fmt.Sprint(res.Offers),
		"deltas":   fmt.Sprint(stats.Deltas),
		"dirty":    fmt.Sprint(stats.Dirty),
		"full":     fmt.Sprint(stats.FullRebuild),
	})
	for _, match := range res.Matches {
		accepted, err := m.notify(match, cycleID, epoch)
		if err != nil {
			res.Errors = append(res.Errors, err)
			m.mNotifyErrors.Inc()
			m.obs.Events().Emit("manager", "notify_failed", cycleID, map[string]string{
				"request": adName(match.Request),
				"offer":   adName(match.Offer),
				"error":   err.Error(),
			})
			continue
		}
		res.Notified++
		if accepted {
			m.mm.Usage().Record(matchmaker.OwnerOf(match.Request), 1)
			res.Charged++
		}
		m.logMatch(match)
		if name, err := collector.NameOf(match.Request); err == nil {
			m.store.Invalidate(name)
		}
	}
	if m.ledger != nil {
		if err := m.ledger.MaybeCompact(); err != nil {
			m.logf("pool: compacting usage ledger: %v", err)
		}
		if err := m.ledger.Err(); err != nil {
			m.logf("pool: usage ledger: %v", err)
		}
	} else if m.usageFile != "" {
		if err := m.mm.Usage().Save(m.usageFile); err != nil {
			m.logf("pool: saving usage history: %v", err)
		}
	}
	res.Duration = time.Since(start)
	m.hCycleSeconds.Observe(res.Duration.Seconds())
	m.hCycleReqs.Observe(float64(res.Requests))
	m.hCycleMatches.Observe(float64(len(res.Matches)))
	m.obs.Events().Emit("manager", "wake_end", cycleID, map[string]string{
		"matches":  fmt.Sprint(len(res.Matches)),
		"notified": fmt.Sprint(res.Notified),
		"errors":   fmt.Sprint(len(res.Errors)),
		"duration": res.Duration.String(),
	})
	m.publishSelf(res)
	m.publishDaemonAds()
	return res, stats
}

// TickEvent is the remote negotiator's event-mode heartbeat: acquire
// or renew the lease exactly as Tick does, but skip the negotiation
// cycle when the collector's pool-change counter says nothing changed
// since the last cycle this daemon ran (force overrides — the
// caller's fallback). The result's Skipped field reports an
// idle-skipped heartbeat. Lease/epoch handling, standby warm-sync and
// failover accounting are identical to Tick.
func (d *NegotiatorDaemon) TickEvent(force bool) CycleResult {
	lease, granted, seq, err := d.client.AcquireLeaseSeq(d.Name, d.LeaseTTL)
	if err != nil {
		d.Logf("negotiator %s: lease: %v", d.Name, err)
		d.setStandby(0)
		return CycleResult{Standby: true}
	}
	d.observe(lease.Epoch)
	if !granted {
		d.setStandby(lease.Epoch)
		d.syncFromPeer()
		return CycleResult{Standby: true, Epoch: lease.Epoch}
	}
	d.becomeLeader(lease.Epoch, lease.Deadline)
	d.mu.Lock()
	idle := d.seqKnown && seq == d.lastSeq && !force
	d.mu.Unlock()
	if idle {
		return CycleResult{Epoch: lease.Epoch, Skipped: true}
	}
	res := d.negotiate(lease.Epoch)
	// Re-read the counter after our own writes (invalidations, self-ads)
	// so the next heartbeat's comparison is against the post-cycle pool.
	// A third-party write racing this read is absorbed into the new
	// baseline; the caller's periodic force is the safety net, exactly
	// like the in-process fallback rebuild.
	if _, _, after, err := d.client.AcquireLeaseSeq(d.Name, d.LeaseTTL); err == nil {
		d.mu.Lock()
		d.lastSeq, d.seqKnown = after, true
		d.mu.Unlock()
	} else {
		d.mu.Lock()
		d.seqKnown = false
		d.mu.Unlock()
	}
	return res
}

// classifyStoreAd mirrors the manager's request/offer split for one
// stored ad; it exists so tests can assert the event loop and the
// timer loop partition ads identically.
func classifyStoreAd(ad *classad.Ad) string {
	typ, ok := ad.Eval(classad.AttrType).StringVal()
	if !ok {
		return "offer"
	}
	switch classad.Fold(typ) {
	case "job":
		return "request"
	case "negotiator", "daemon":
		return "ignore"
	}
	return "offer"
}
