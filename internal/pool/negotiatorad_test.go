package pool

import (
	"testing"

	"repro/internal/classad"
	"repro/internal/matchmaker"
)

// TestNegotiatorPublishesItself: after a cycle, the manager's own
// classad is in the store, carrying cycle statistics and the
// fair-share table — queryable like any other entity (paper §4).
func TestNegotiatorPublishesItself(t *testing.T) {
	mgr := NewManager(ManagerConfig{
		Matchmaker: matchmaker.Config{FairShare: true},
		Logf:       t.Logf,
	})
	machine := figure1Machine()
	machine.SetString(classad.AttrTicket, "t")
	if err := mgr.Store().Update(machine, 0); err != nil {
		t.Fatal(err)
	}
	job := classad.Figure2()
	job.SetString(classad.AttrName, "raman/job1")
	if err := mgr.Store().Update(job, 0); err != nil {
		t.Fatal(err)
	}
	// Usage is charged on claim acknowledgment, not match emission —
	// and this pool has no reachable CA, so seed the table directly to
	// exercise its publication.
	mgr.Usage().Record("raman", 1)
	res := mgr.RunCycle()
	if len(res.Matches) != 1 {
		t.Fatalf("cycle: %+v", res)
	}
	if res.Charged != 0 {
		t.Fatalf("Charged = %d on a cycle with no acknowledged claim", res.Charged)
	}

	// The negotiator ad answers a one-way query.
	q := classad.MustParse(`[ Constraint = other.Type == "Negotiator" ]`)
	got := mgr.Store().Query(q)
	if len(got) != 1 {
		t.Fatalf("negotiator ads = %d", len(got))
	}
	ad := got[0]
	if c, _ := ad.Eval("Cycle").IntVal(); c != 1 {
		t.Errorf("Cycle = %d", c)
	}
	if n, _ := ad.Eval("LastMatches").IntVal(); n != 1 {
		t.Errorf("LastMatches = %d", n)
	}
	if n, _ := ad.Eval("LastOffers").IntVal(); n != 1 {
		t.Errorf("LastOffers = %d", n)
	}
	// The fair-share table rides along as a nested ad.
	usage := ad.Eval("Usage")
	inner, ok := usage.AdVal()
	if !ok {
		t.Fatalf("Usage = %v", usage)
	}
	if u := inner.Eval("raman").RankVal(); u != 1 {
		t.Errorf("raman's published usage = %v", u)
	}
	// Expression access works end to end.
	v, err := classad.EvalString("Usage.raman", ad)
	if err != nil {
		t.Fatal(err)
	}
	if v.RankVal() != 1 {
		t.Errorf("Usage.raman = %v", v)
	}
}

// TestNegotiatorAdNeverMatchesJobs: the manager's own ad must not be
// handed out as an offer, even to constraint-free requests.
func TestNegotiatorAdNeverMatchesJobs(t *testing.T) {
	mgr := NewManager(ManagerConfig{Logf: t.Logf})
	mgr.RunCycle() // publishes the negotiator ad into an empty store
	greedy := classad.NewAd()
	greedy.SetString(classad.AttrType, "Job")
	greedy.SetString(classad.AttrName, "u/job1")
	greedy.SetString(classad.AttrOwner, "u")
	// No constraint: accepts anything offered.
	if err := mgr.Store().Update(greedy, 0); err != nil {
		t.Fatal(err)
	}
	res := mgr.RunCycle()
	if res.Offers != 0 {
		t.Errorf("offers = %d, the negotiator ad leaked into negotiation", res.Offers)
	}
	if len(res.Matches) != 0 {
		t.Errorf("the job matched %d offers", len(res.Matches))
	}
}
