package pool

import (
	"testing"

	"repro/internal/agent"
	"repro/internal/classad"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// TestSubmitLintUnindexableCounter: a job whose constraint the offer
// index cannot prune on is counted (pool_submit_lint_unindexable_total)
// but still queued — the lint observes, it does not gatekeep.
func TestSubmitLintUnindexableCounter(t *testing.T) {
	d := NewCustomerDaemon(agent.NewCustomer("raman", nil), "", 0, t.Logf)
	o := obs.New()
	d.Instrument(o)

	unindexable := classad.MustParse(`[ Constraint = member("intel", other.Archs) ]`)
	indexable := classad.MustParse(`[ Memory = 31; Constraint = other.Memory >= self.Memory ]`)
	for _, ad := range []*classad.Ad{unindexable, indexable} {
		reply := d.handleSubmit(&protocol.Envelope{
			Type: protocol.TypeSubmit, Ad: protocol.EncodeAd(ad)})
		if reply.Type != protocol.TypeAck {
			t.Fatalf("submit rejected: %+v", reply)
		}
	}

	if got := o.Registry().Counter("pool_submit_lint_unindexable_total").Value(); got != 1 {
		t.Errorf("pool_submit_lint_unindexable_total = %d, want 1", got)
	}
	if got := len(d.CA.IdleRequests()); got != 2 {
		t.Errorf("queued jobs = %d, want 2 (lint never rejects)", got)
	}
}
