package pool

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/classad"
	"repro/internal/collector"
	"repro/internal/matchmaker"
	"repro/internal/netx"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// scrape GETs one path from a live debug endpoint and decodes it —
// the acceptance path goes over real HTTP, exactly as an operator's
// curl would.
func scrape(t *testing.T, addr, path string, out any) {
	t.Helper()
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", path, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", path, err)
	}
}

// waitGaugeZero polls a metric gauge until it drains to zero; handler
// goroutines observe the peer's close a beat after the protocol
// exchange finishes.
func waitGaugeZero(t *testing.T, o *obs.Obs, name string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		snap := o.Registry().Snapshot()
		if snap.Gauges[name] == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("gauge %s = %g, want 0 (leaked handler)", name, snap.Gauges[name])
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestObservabilityEndToEnd is the observability acceptance run: one
// fully instrumented pool executes a real match over sockets, the
// /metrics scrape shows nonzero collector, matchmaker, claim and netx
// activity, and a single cycle ID correlates the manager, matchmaker,
// CA and RA events of the match.
func TestObservabilityEndToEnd(t *testing.T) {
	o := obs.New()
	netx.Instrument(o.Registry())
	t.Cleanup(func() { netx.Instrument(nil) })

	mgr := NewManager(ManagerConfig{Logf: t.Logf, Obs: o})
	addr, err := mgr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)

	ra := NewResourceDaemon(agent.NewResource(figure1Machine(), nil), addr, 0, t.Logf)
	ra.Instrument(o)
	if _, err := ra.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ra.Close)

	ca := NewCustomerDaemon(agent.NewCustomer("raman", nil), addr, 0, t.Logf)
	ca.Instrument(o)
	if _, err := ca.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ca.Close)

	ds, err := o.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })

	job := ca.CA.Submit(classad.Figure2(), 100)
	if err := ra.Advertise(); err != nil {
		t.Fatal(err)
	}
	if err := ca.AdvertiseIdle(); err != nil {
		t.Fatal(err)
	}
	res := mgr.RunCycle()
	if res.Notified != 1 {
		t.Fatalf("cycle = %+v", res)
	}
	if res.Cycle == "" {
		t.Fatal("cycle result carries no cycle ID")
	}
	if err := ca.Complete(job.ID); err != nil {
		t.Fatal(err)
	}

	// The /metrics scrape: every layer must have registered activity.
	var snap obs.Snapshot
	scrape(t, ds.Addr(), "/metrics", &snap)
	for _, name := range []string{
		"collector_ads_stored_total", // advertising protocol
		"collector_advertise_total",  // collector server
		"matchmaker_matches_total",   // negotiation
		"pool_claim_attempts_total",  // CA claim lifecycle
		"pool_claims_ok_total",       //
		"pool_ra_claims_total",       // RA claiming protocol
		"pool_ra_claims_accepted_total",
		"pool_ra_releases_total",
		"netx_dials_total", // transport substrate
	} {
		if snap.Counters[name] <= 0 {
			t.Errorf("counter %s = %d, want > 0", name, snap.Counters[name])
		}
	}
	for _, name := range []string{
		"pool_cycle_seconds",
		"matchmaker_negotiate_seconds",
		"matchmaker_offers_scanned",
		"pool_claim_seconds",
	} {
		if snap.Histograms[name].Count <= 0 {
			t.Errorf("histogram %s count = %d, want > 0", name, snap.Histograms[name].Count)
		}
	}
	// Machine ad + negotiator self-ad, plus the four Daemon-type health
	// ads (collector, negotiator, CA, RA) behind absent-ad detection.
	if got := snap.Gauges["collector_ads"]; got != 6 {
		t.Errorf("collector_ads gauge = %g, want 6", got)
	}

	// The trace: one cycle ID stitches the match's story across all
	// four parties.
	var events []obs.Event
	scrape(t, ds.Addr(), "/events?cycle="+url.QueryEscape(res.Cycle), &events)
	srcs := make(map[string]bool)
	types := make(map[string]bool)
	for _, ev := range events {
		if ev.Cycle != res.Cycle {
			t.Errorf("event %s/%s has cycle %q, want %q", ev.Src, ev.Type, ev.Cycle, res.Cycle)
		}
		srcs[ev.Src] = true
		types[ev.Type] = true
	}
	for _, src := range []string{"manager", "matchmaker", "ca", "ra"} {
		if !srcs[src] {
			t.Errorf("no event from %q for cycle %s (events: %v)", src, res.Cycle, events)
		}
	}
	for _, typ := range []string{"cycle_begin", "match", "claim_ok", "claim_accepted", "cycle_end"} {
		if !types[typ] {
			t.Errorf("no %q event for cycle %s", typ, res.Cycle)
		}
	}

	// No handler goroutine outlives its connection: the gauges drain
	// to zero once the protocol exchanges end.
	for _, g := range []string{"collector_handlers", "pool_ca_handlers", "pool_ra_handlers"} {
		waitGaugeZero(t, o, g)
	}
}

// TestDurabilityMetricsScraped is the durability acceptance run: an
// HA manager on a durable store and ledger executes a real match, and
// the /metrics scrape — over HTTP, as an operator's curl would —
// shows the WAL appending and fsyncing, a snapshot installing, the
// leadership epoch standing, a deposed-epoch MATCH fenced, and a
// standby negotiator's election counters registered.
func TestDurabilityMetricsScraped(t *testing.T) {
	dir := t.TempDir()
	o := obs.New()

	cstore, err := collector.OpenDurable(filepath.Join(dir, "collector"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ledger, err := matchmaker.OpenUsageLedger(filepath.Join(dir, "usage"), nil)
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(ManagerConfig{
		Logf: t.Logf, Obs: o, Store: cstore, Ledger: ledger, HAName: "mgr",
	})
	addr, err := mgr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)

	ra := NewResourceDaemon(agent.NewResource(figure1Machine(), nil), addr, 0, t.Logf)
	if _, err := ra.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ra.Close)
	ca := NewCustomerDaemon(agent.NewCustomer("raman", nil), addr, 0, t.Logf)
	ca.Instrument(o)
	if err := ca.EnableJournal(filepath.Join(dir, "ca"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ca.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ca.Close)

	ds, err := o.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })

	ca.CA.Submit(classad.Figure2(), 100)
	if err := ra.Advertise(); err != nil {
		t.Fatal(err)
	}
	if err := ca.AdvertiseIdle(); err != nil {
		t.Fatal(err)
	}
	res := mgr.RunCycle()
	if res.Notified != 1 || res.Epoch != 1 {
		t.Fatalf("cycle = %+v", res)
	}
	// Force one snapshot generation so the install counter registers
	// activity without journaling hundreds of records.
	if err := ledger.Compact(); err != nil {
		t.Fatal(err)
	}
	// A MATCH from a long-deposed negotiator: first raise the CA's
	// high-water mark (the epoch-3 notification is acknowledged but
	// finds no idle job), then fence its epoch-2 straggler.
	machine := figure1Machine()
	target := classad.NewAd()
	target.SetString(classad.AttrContact, ca.Contact())
	for _, tc := range []struct {
		epoch   uint64
		wantErr bool
	}{{3, false}, {2, true}} {
		_, err := sendToContact(nil, target, &protocol.Envelope{
			Type: protocol.TypeMatch, PeerAd: protocol.EncodeAd(machine), Epoch: tc.epoch,
		})
		if (err != nil) != tc.wantErr {
			t.Fatalf("MATCH at epoch %d: err = %v, want error %v", tc.epoch, err, tc.wantErr)
		}
	}

	var snap obs.Snapshot
	scrape(t, ds.Addr(), "/metrics", &snap)
	for _, name := range []string{
		"store_wal_appends_total",       // journaled records
		"store_wal_bytes_total",         //
		"store_snapshot_installs_total", // the forced compaction
		"collector_lease_grants_total",  // the manager's own election
		"pool_fenced_matches_total",     // the deposed straggler
	} {
		if snap.Counters[name] <= 0 {
			t.Errorf("counter %s = %d, want > 0", name, snap.Counters[name])
		}
	}
	if snap.Histograms["store_fsync_seconds"].Count <= 0 {
		t.Error("store_fsync_seconds histogram is empty: nothing was synced")
	}
	if got := snap.Gauges["negotiator_leader_epoch"]; got != 1 {
		t.Errorf("negotiator_leader_epoch = %g, want 1", got)
	}

	// A standby negotiator pointed at the same collector registers the
	// election metrics on its own endpoint.
	o2 := obs.New()
	negB := NewNegotiatorDaemon("nego-b", &collector.Client{Addr: addr}, nil,
		matchmaker.Config{})
	negB.Instrument(o2)
	t.Cleanup(negB.Close)
	if res := negB.Tick(); !res.Standby {
		t.Fatalf("standby tick against a leading manager = %+v", res)
	}
	ds2, err := o2.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds2.Close() })
	var snap2 obs.Snapshot
	scrape(t, ds2.Addr(), "/metrics", &snap2)
	if snap2.Counters["negotiator_standby_ticks_total"] != 1 {
		t.Errorf("negotiator_standby_ticks_total = %d, want 1", snap2.Counters["negotiator_standby_ticks_total"])
	}
	if _, ok := snap2.Counters["negotiator_failovers_total"]; !ok {
		t.Error("negotiator_failovers_total not registered")
	}
	if got := snap2.Gauges["negotiator_leader_epoch"]; got != 0 {
		t.Errorf("standby's negotiator_leader_epoch = %g, want 0", got)
	}
}

// TestObservabilityCycleIDsDistinct: every cycle mints a fresh ID, so
// traces never blur two negotiations together.
func TestObservabilityCycleIDsDistinct(t *testing.T) {
	o := obs.New()
	mgr := NewManager(ManagerConfig{Logf: t.Logf, Obs: o})
	seen := make(map[string]bool)
	for i := 0; i < 5; i++ {
		res := mgr.RunCycle()
		if res.Cycle == "" {
			t.Fatalf("cycle %d has no ID", i)
		}
		if seen[res.Cycle] {
			t.Fatalf("cycle ID %s repeated", res.Cycle)
		}
		seen[res.Cycle] = true
	}
	// And the IDs carry the cycle ordinal for human eyes.
	res := mgr.RunCycle()
	if want := fmt.Sprintf("c%d-", mgr.Cycles()); len(res.Cycle) < len(want) || res.Cycle[:len(want)] != want {
		t.Errorf("cycle ID %q does not start with %q", res.Cycle, want)
	}
}

// TestTraceAndWhyAcceptance pins the PR's two headline debug surfaces
// over real HTTP, as `cstatus -trace` and `cstatus -why` consume them:
// /trace?id= returns the span tree of one submission covering at least
// four daemons (collector, matchmaker, manager, CA, RA), and
// /why?request= explains an unmatched request from the live rejection
// ledger. /daemons rounds it out with every daemon's self-ad health.
func TestTraceAndWhyAcceptance(t *testing.T) {
	o := obs.New()
	mgr := NewManager(ManagerConfig{Logf: t.Logf, Obs: o})
	addr, err := mgr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)

	ra := NewResourceDaemon(agent.NewResource(figure1Machine(), nil), addr, 0, t.Logf)
	ra.Instrument(o)
	if _, err := ra.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ra.Close)

	ca := NewCustomerDaemon(agent.NewCustomer("raman", nil), addr, 0, t.Logf)
	ca.Instrument(o)
	if _, err := ca.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ca.Close)

	ds, err := o.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })

	// One matchable job and one that can never match.
	job := ca.CA.Submit(classad.Figure2(), 100)
	hog := classad.Figure2()
	if err := hog.SetExprString(classad.AttrConstraint, `other.Memory >= 1048576`); err != nil {
		t.Fatal(err)
	}
	ca.CA.Submit(hog, 100)

	if err := ra.Advertise(); err != nil {
		t.Fatal(err)
	}
	if err := ca.AdvertiseIdle(); err != nil {
		t.Fatal(err)
	}
	res := mgr.RunCycle()
	if res.Notified != 1 {
		t.Fatalf("cycle = %+v, want one notified match", res)
	}

	// The span tree of the matched job's trace, scraped as the CLI
	// does. The submission happened in-process (no submit span), but
	// the trace must still cover collector storage, negotiation, the
	// manager's notification, the CA's claim and the RA's verdict.
	trace := classad.TraceOf(job.Ad)
	if trace == "" {
		t.Fatal("submitted job has no trace ID")
	}
	var spans []obs.Span
	scrape(t, ds.Addr(), "/trace?id="+url.QueryEscape(trace), &spans)
	srcs := make(map[string]bool)
	names := make(map[string]string)
	for _, sp := range spans {
		if sp.Trace != trace {
			t.Errorf("span %s/%s carries trace %q, want %q", sp.Src, sp.Name, sp.Trace, trace)
		}
		if sp.End.Before(sp.Start) {
			t.Errorf("span %s/%s ends before it starts", sp.Src, sp.Name)
		}
		srcs[sp.Src] = true
		names[sp.Name] = sp.Src
	}
	if len(srcs) < 4 {
		t.Fatalf("trace covers %d daemons (%v), want >= 4 (spans: %+v)", len(srcs), srcs, spans)
	}
	for name, src := range map[string]string{
		"ad_stored": "collector", "negotiate": "matchmaker",
		"notify": "manager", "claim": "ca", "verdict": "ra",
	} {
		if names[name] != src {
			t.Errorf("no %s span from %s (got %v)", name, src, names)
		}
	}

	// The forensic explanation of the unmatched request, scraped live.
	var report matchmaker.Report
	scrape(t, ds.Addr(), "/why?request="+url.QueryEscape("raman/job2"), &report)
	if report.Matched || report.Cycle != res.Cycle {
		t.Fatalf("report = %+v, want unmatched in cycle %s", report, res.Cycle)
	}
	if report.Reason == "" || len(report.Ledger) == 0 {
		t.Fatalf("report = %+v, want a reason and a per-offer ledger", report)
	}
	v := report.Ledger[0]
	if v.Offer == "" || v.Outcome == "" || v.Detail == "" {
		t.Fatalf("ledger entry = %+v, want offer, outcome and detail", v)
	}

	// The /why index lists every request with a retained report.
	var index struct {
		Requests []string `json:"requests"`
	}
	scrape(t, ds.Addr(), "/why", &index)
	if len(index.Requests) != 2 {
		t.Fatalf("/why index = %v, want both jobs", index.Requests)
	}

	// Daemon health from self-ads: the manager's collector and
	// negotiator halves, the CA and the RA, all current.
	var daemons []collector.DaemonStatus
	scrape(t, ds.Addr(), "/daemons", &daemons)
	kinds := make(map[string]string)
	for _, d := range daemons {
		kinds[d.Kind] = d.Status
	}
	for _, kind := range []string{"collector", "negotiator", "ca", "ra"} {
		if kinds[kind] != "ok" {
			t.Errorf("daemon kind %q status = %q, want ok (daemons: %+v)", kind, kinds[kind], daemons)
		}
	}
}
