package pool

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/agent"
	"repro/internal/classad"
)

// syncBuffer is a concurrency-safe bytes.Buffer: history writes happen
// inside RunCycle while tests may read.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestMatchHistoryLog(t *testing.T) {
	var buf syncBuffer
	mgr := NewManager(ManagerConfig{Logf: t.Logf, History: &buf})
	addr, err := mgr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)

	ra := NewResourceDaemon(agent.NewResource(figure1Machine(), nil), addr, 0, t.Logf)
	if _, err := ra.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ra.Close)
	ca := NewCustomerDaemon(agent.NewCustomer("raman", nil), addr, 0, t.Logf)
	if _, err := ca.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ca.Close)

	ca.CA.Submit(classad.Figure2(), 10)
	if err := ra.Advertise(); err != nil {
		t.Fatal(err)
	}
	if err := ca.AdvertiseIdle(); err != nil {
		t.Fatal(err)
	}
	if res := mgr.RunCycle(); res.Notified != 1 {
		t.Fatalf("cycle: %+v", res)
	}

	// The log holds one parseable classad record.
	records, err := classad.ParseMulti(buf.String())
	if err != nil {
		t.Fatalf("history does not parse: %v\n%s", err, buf.String())
	}
	if len(records) != 1 {
		t.Fatalf("records = %d", len(records))
	}
	rec := records[0]
	if typ, _ := rec.Eval("Type").StringVal(); typ != "Match" {
		t.Errorf("Type = %q", typ)
	}
	if who, _ := rec.Eval("Customer").StringVal(); who != "raman" {
		t.Errorf("Customer = %q", who)
	}
	if offer, _ := rec.Eval("OfferName").StringVal(); offer != "leonardo.cs.wisc.edu" {
		t.Errorf("OfferName = %q", offer)
	}
	if r := rec.Eval("OfferRank").RankVal(); r != 10 {
		t.Errorf("OfferRank = %v", r)
	}
	// And the log is queryable by the same one-way mechanism.
	q := classad.MustParse(`[ Constraint = other.Customer == "raman" && other.OfferRank >= 10 ]`)
	if !classad.MatchesQuery(q, rec, nil) {
		t.Error("history record not queryable")
	}
}
