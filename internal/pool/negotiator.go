package pool

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/classad"
	"repro/internal/collector"
	"repro/internal/matchmaker"
	"repro/internal/netx"
	"repro/internal/obs"
)

// NegotiatorDaemon is a standalone negotiator speaking the wire
// protocol to a (possibly remote) collector — the half of the paper's
// pool manager that runs the matchmaking algorithm, split out so a
// pool can run two of them for availability. The paper's argument
// that matchmaker failure is tolerable ("the information maintained
// by the manager is all soft state", §4.3) makes failover simple:
// nothing needs to be reconciled except the accounting ledger, which
// ships between peers as a store.Log bundle.
//
// Each Tick the daemon requests the leadership lease from the
// collector. Holding it, the daemon queries the pool, runs one
// negotiation cycle, and stamps its lease epoch into every MATCH; the
// CA-side fence (cadaemon.go) then rejects anything an already-deposed
// leader manages to send. Not holding it, the daemon pulls the
// leader's usage ledger from its state endpoint so a takeover starts
// warm.
type NegotiatorDaemon struct {
	// Name identifies this negotiator in leader election.
	Name string
	// LeaseTTL is the requested lease duration in pool-clock seconds
	// (0 for the collector's default).
	LeaseTTL int64
	// PeerState, when set, is the base URL of the peer negotiator's
	// state endpoint (http://host:port); a standby pulls /state from
	// it each tick for warm handoff.
	PeerState string
	// Logf receives diagnostics; nil discards.
	Logf func(string, ...any)

	client *collector.Client
	// deltas refreshes the negotiator's self-ads with UPDATE_DELTA
	// envelopes (full ads only when attributes actually changed).
	deltas *collector.DeltaAdvertiser
	mm     *matchmaker.Matchmaker
	ledger *matchmaker.UsageLedger
	dialer *netx.Dialer
	retry  netx.RetryPolicy

	mu       sync.Mutex
	leader   bool
	epoch    uint64
	deadline int64  // current lease deadline (pool-clock seconds)
	lastSeen uint64 // highest epoch ever observed (ours or the peer's)
	// Event mode (TickEvent): the collector's pool-change counter as of
	// this daemon's last completed cycle, used to skip idle heartbeats.
	lastSeq  uint64
	seqKnown bool
	cycles   int
	httpSrv  *http.Server
	httpLn   net.Listener
	// lastBundle is the most recently installed peer-state bundle,
	// kept to skip re-installing identical state on every heartbeat.
	lastBundle []byte

	obs        *obs.Obs
	mFailovers *obs.Counter
	mStandby   *obs.Counter
}

// NewNegotiatorDaemon builds a negotiator around a collector client
// and an optional durable usage ledger (nil keeps accounting in
// memory).
func NewNegotiatorDaemon(name string, client *collector.Client, ledger *matchmaker.UsageLedger, mmCfg matchmaker.Config) *NegotiatorDaemon {
	if !mmCfg.Aggregate && !mmCfg.Index && mmCfg.Parallel == 0 {
		mmCfg.Index = true
		mmCfg.Parallel = matchmaker.ParallelAuto
	}
	// Same accounting rule as the combined Manager: matches bill only
	// when the customer's ack reports the claim was accepted.
	mmCfg.DeferCharges = true
	d := &NegotiatorDaemon{
		Name:   name,
		Logf:   func(string, ...any) {},
		client: client,
		deltas: collector.NewDeltaAdvertiser(client),
		mm:     matchmaker.New(mmCfg),
		ledger: ledger,
		dialer: netx.DefaultDialer,
	}
	if ledger != nil {
		d.mm.SetUsage(ledger.Table())
	}
	return d
}

// ConfigureNetwork sets the dialer and retry policy for notifications
// and collector traffic.
func (d *NegotiatorDaemon) ConfigureNetwork(dialer *netx.Dialer, retry netx.RetryPolicy) {
	if dialer == nil {
		dialer = netx.DefaultDialer
	}
	d.dialer = dialer
	d.retry = retry
	d.client.Dialer = dialer
	d.client.Retry = retry
}

// Instrument routes negotiator activity into o: leadership changes
// (negotiator_failovers_total — incremented when this daemon takes
// over from a different leader), standby ticks
// (negotiator_standby_ticks_total), the current leadership epoch
// (negotiator_leader_epoch gauge; 0 while standby), plus the
// matchmaker's and ledger's own metrics.
func (d *NegotiatorDaemon) Instrument(o *obs.Obs) {
	d.obs = o
	reg := o.Registry()
	d.mFailovers = reg.Counter("negotiator_failovers_total")
	d.mStandby = reg.Counter("negotiator_standby_ticks_total")
	reg.GaugeFunc("negotiator_leader_epoch", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		if !d.leader {
			return 0
		}
		return float64(d.epoch)
	})
	d.mm.Instrument(o)
	if d.ledger != nil {
		d.ledger.Instrument(reg)
	}
}

// Leader reports whether the daemon held the lease at its last tick,
// and under which epoch.
func (d *NegotiatorDaemon) Leader() (bool, uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.leader, d.epoch
}

// Usage exposes the fair-share table (ledger-backed when a ledger was
// supplied).
func (d *NegotiatorDaemon) Usage() *matchmaker.PriorityTable { return d.mm.Usage() }

// Tick runs one heartbeat: acquire or renew the lease, then either
// negotiate (leader) or sync state from the leader (standby). The
// caller drives it on the pool's negotiation period — and should do so
// at least a few times per lease TTL so renewal outpaces expiry.
func (d *NegotiatorDaemon) Tick() CycleResult {
	lease, granted, err := d.client.AcquireLease(d.Name, d.LeaseTTL)
	if err != nil {
		// Collector unreachable: we cannot prove we still hold the
		// lease, so behave as a standby and match nothing.
		d.Logf("negotiator %s: lease: %v", d.Name, err)
		d.setStandby(0)
		return CycleResult{Standby: true}
	}
	d.observe(lease.Epoch)
	if !granted {
		d.setStandby(lease.Epoch)
		d.syncFromPeer()
		return CycleResult{Standby: true, Epoch: lease.Epoch}
	}
	d.becomeLeader(lease.Epoch, lease.Deadline)
	return d.negotiate(lease.Epoch)
}

// observe tracks the highest epoch seen pool-wide.
func (d *NegotiatorDaemon) observe(epoch uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if epoch > d.lastSeen {
		d.lastSeen = epoch
	}
}

func (d *NegotiatorDaemon) setStandby(leaderEpoch uint64) {
	d.mu.Lock()
	was := d.leader
	d.leader = false
	d.mu.Unlock()
	d.mStandby.Inc()
	if was {
		d.Logf("negotiator %s: deposed (leader epoch %d)", d.Name, leaderEpoch)
	}
}

func (d *NegotiatorDaemon) becomeLeader(epoch uint64, deadline int64) {
	d.mu.Lock()
	was, prev := d.leader, d.epoch
	d.leader, d.epoch, d.deadline = true, epoch, deadline
	d.mu.Unlock()
	if !was && epoch > 1 && epoch != prev {
		// Taking over from a different leader (epoch bumped), not a
		// pool's very first election and not our own renewal after a
		// hiccup.
		d.mFailovers.Inc()
		d.Logf("negotiator %s: taking over as leader, epoch %d", d.Name, epoch)
	}
}

// negotiate runs one cycle as leader against a freshly queried pool
// snapshot.
func (d *NegotiatorDaemon) negotiate(epoch uint64) CycleResult {
	start := time.Now()
	d.mu.Lock()
	d.cycles++
	n := d.cycles
	d.mu.Unlock()
	cycleID := obs.NewCycleID(n)

	all, err := d.client.Query(classad.NewAd())
	if err != nil {
		d.Logf("negotiator %s: query: %v", d.Name, err)
		return CycleResult{Cycle: cycleID, Epoch: epoch, Duration: time.Since(start)}
	}
	var requests, offers []*classad.Ad
	for _, ad := range all {
		typ, ok := ad.Eval(classad.AttrType).StringVal()
		if !ok {
			offers = append(offers, ad)
			continue
		}
		switch classad.Fold(typ) {
		case "job":
			requests = append(requests, ad)
		case "negotiator", "daemon":
			// the leader's own ad, and daemon self-ads (monitoring
			// state, not matchable resources)
		default:
			offers = append(offers, ad)
		}
	}
	res := CycleResult{Requests: len(requests), Offers: len(offers), Cycle: cycleID, Epoch: epoch}
	res.Matches = d.mm.NegotiateCycle(cycleID, requests, offers)
	for _, match := range res.Matches {
		accepted, err := notifyMatch(d.dialer, d.retry, d.Logf, d.obs.Spans(), "negotiator", match, cycleID, epoch)
		if err != nil {
			res.Errors = append(res.Errors, err)
			continue
		}
		res.Notified++
		if accepted {
			d.mm.Usage().Record(matchmaker.OwnerOf(match.Request), 1)
			res.Charged++
		}
		if name, err := collector.NameOf(match.Request); err == nil {
			if err := d.client.Invalidate(name); err != nil {
				d.Logf("negotiator %s: invalidate %s: %v", d.Name, name, err)
			}
		}
	}
	d.publishSelf(res)
	if d.ledger != nil {
		if err := d.ledger.MaybeCompact(); err != nil {
			d.Logf("negotiator %s: ledger compact: %v", d.Name, err)
		}
	}
	res.Duration = time.Since(start)
	return res
}

// publishSelf advertises the negotiator's own classad, so cstatus -ha
// can show who leads under which epoch even when the collector is
// queried remotely.
func (d *NegotiatorDaemon) publishSelf(res CycleResult) {
	ad := classad.NewAd()
	ad.SetString(classad.AttrType, "Negotiator")
	ad.SetString(classad.AttrName, "negotiator/"+d.Name)
	ad.SetString("Leader", d.Name)
	ad.SetInt("Epoch", int64(res.Epoch))
	d.mu.Lock()
	ad.SetInt("Cycle", int64(d.cycles))
	ad.SetInt("LeaseDeadline", d.deadline)
	d.mu.Unlock()
	ad.SetInt("LastRequests", int64(res.Requests))
	ad.SetInt("LastOffers", int64(res.Offers))
	ad.SetInt("LastMatches", int64(len(res.Matches)))
	usage := classad.NewAd()
	table := d.mm.Usage()
	for _, customer := range table.Customers() {
		usage.SetReal(customer, table.Effective(customer))
	}
	ad.Set("Usage", classad.NewAdExpr(usage))
	if err := d.deltas.Advertise(ad, 0); err != nil {
		d.Logf("negotiator %s: advertising self: %v", d.Name, err)
	}
	d.publishDaemonAd(res)
}

// publishDaemonAd advertises the standalone negotiator's Daemon-type
// health ad (see selfad.go) when instrumented, so absent-ad detection
// covers remote negotiators too.
func (d *NegotiatorDaemon) publishDaemonAd(res CycleResult) {
	if d.obs == nil {
		return
	}
	ad := DaemonAd("negotiator", d.Name, d.obs)
	ad.SetInt("LeaderEpoch", int64(res.Epoch))
	if d.ledger != nil {
		ad.SetInt("WALGeneration", int64(d.ledger.Stats().Gen))
	}
	if err := d.deltas.Advertise(ad, daemonAdLifetime); err != nil {
		d.Logf("negotiator %s: advertising daemon ad: %v", d.Name, err)
	}
}

// ServeState starts the warm-handoff endpoint on ln: GET /state
// returns the usage ledger as a store.Log bundle that a standby
// installs with UsageLedger.Install. Returns the bound address.
func (d *NegotiatorDaemon) ServeState(ln net.Listener) string {
	mux := http.NewServeMux()
	mux.HandleFunc("/state", func(w http.ResponseWriter, r *http.Request) {
		if d.ledger == nil {
			http.Error(w, "no ledger", http.StatusNotFound)
			return
		}
		bundle, err := d.ledger.Ship()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(bundle)
	})
	srv := &http.Server{Handler: mux}
	d.mu.Lock()
	d.httpSrv, d.httpLn = srv, ln
	d.mu.Unlock()
	go srv.Serve(ln)
	return ln.Addr().String()
}

// syncFromPeer pulls the leader's ledger bundle and installs it, so
// this standby's accounting is warm when it takes over. Best-effort:
// an unreachable peer (it may just have died — that is why we are
// about to take over) leaves the local ledger as is.
func (d *NegotiatorDaemon) syncFromPeer() {
	if d.PeerState == "" || d.ledger == nil {
		return
	}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(d.PeerState + "/state")
	if err != nil {
		d.Logf("negotiator %s: peer state: %v", d.Name, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		d.Logf("negotiator %s: peer state: HTTP %d", d.Name, resp.StatusCode)
		return
	}
	bundle, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		d.Logf("negotiator %s: peer state read: %v", d.Name, err)
		return
	}
	// Installing writes a fresh log generation; skip it when the leader
	// shipped the same bundle as last heartbeat (an idle pool), so a
	// standby does not churn a snapshot per poll.
	d.mu.Lock()
	same := bytes.Equal(bundle, d.lastBundle)
	d.mu.Unlock()
	if same {
		return
	}
	if err := d.ledger.Install(bundle); err != nil {
		d.Logf("negotiator %s: installing peer state: %v", d.Name, err)
		return
	}
	d.mu.Lock()
	d.lastBundle = bundle
	d.mu.Unlock()
}

// Cycles reports how many leader cycles this daemon has run.
func (d *NegotiatorDaemon) Cycles() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cycles
}

// Close stops the state endpoint and releases the ledger.
func (d *NegotiatorDaemon) Close() {
	d.mu.Lock()
	srv, ln := d.httpSrv, d.httpLn
	d.httpSrv, d.httpLn = nil, nil
	d.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
	if ln != nil {
		ln.Close()
	}
	if d.ledger != nil {
		d.ledger.Close()
	}
}

// String renders leadership state for logs and cstatus.
func (d *NegotiatorDaemon) String() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.leader {
		return fmt.Sprintf("%s: leader (epoch %d, %d cycles)", d.Name, d.epoch, d.cycles)
	}
	return fmt.Sprintf("%s: standby (last seen epoch %d)", d.Name, d.lastSeen)
}
