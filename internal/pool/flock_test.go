package pool

import (
	"testing"

	"repro/internal/agent"
	"repro/internal/classad"
)

// flockFixture stands up two independent pools (each with its own
// manager and one machine) and one customer daemon flocked to both.
type flockFixture struct {
	mgrA, mgrB *Manager
	raA, raB   *ResourceDaemon
	ca         *CustomerDaemon
}

func newFlock(t *testing.T) *flockFixture {
	t.Helper()
	f := &flockFixture{}
	f.mgrA = NewManager(ManagerConfig{Logf: t.Logf})
	addrA, err := f.mgrA.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.mgrA.Close)
	f.mgrB = NewManager(ManagerConfig{Logf: t.Logf})
	addrB, err := f.mgrB.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.mgrB.Close)

	mkMachine := func(name string) *classad.Ad {
		ad := figure1Machine()
		ad.SetString(classad.AttrName, name)
		return ad
	}
	f.raA = NewResourceDaemon(agent.NewResource(mkMachine("wsA.poolA"), nil), addrA, 0, t.Logf)
	if _, err := f.raA.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.raA.Close)
	f.raB = NewResourceDaemon(agent.NewResource(mkMachine("wsB.poolB"), nil), addrB, 0, t.Logf)
	if _, err := f.raB.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.raB.Close)

	f.ca = NewCustomerDaemon(agent.NewCustomer("raman", nil), addrA, 0, t.Logf)
	f.ca.AddFlockTarget(addrB)
	if _, err := f.ca.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.ca.Close)
	return f
}

// TestFlockingSpreadsWork: with the home pool's machine busy, the
// second job runs in the remote pool.
func TestFlockingSpreadsWork(t *testing.T) {
	f := newFlock(t)
	j1 := f.ca.CA.Submit(classad.Figure2(), 100)
	j2 := f.ca.CA.Submit(classad.Figure2(), 100)

	if err := f.raA.Advertise(); err != nil {
		t.Fatal(err)
	}
	if err := f.raB.Advertise(); err != nil {
		t.Fatal(err)
	}
	if err := f.ca.AdvertiseIdle(); err != nil {
		t.Fatal(err)
	}
	// Home pool cycle serves one job.
	resA := f.mgrA.RunCycle()
	if resA.Notified != 1 {
		t.Fatalf("pool A cycle: %+v errors=%v", resA, resA.Errors)
	}
	// Remote pool cycle serves the other.
	resB := f.mgrB.RunCycle()
	if resB.Notified == 0 {
		t.Fatalf("pool B cycle matched nothing: %+v", resB)
	}
	if f.raA.RA.State() != agent.StateClaimed || f.raB.RA.State() != agent.StateClaimed {
		t.Errorf("states: A=%s B=%s, want both Claimed", f.raA.RA.State(), f.raB.RA.State())
	}
	running := 0
	for _, id := range []int{j1.ID, j2.ID} {
		if j, _ := f.ca.CA.Job(id); j.Status == agent.JobRunning {
			running++
		}
	}
	if running != 2 {
		t.Errorf("running jobs = %d, want 2 across the flock", running)
	}
}

// TestFlockingDoubleMatchHarmless: both pools match the same single
// job; the first claim wins, the second pool's stale match is
// acknowledged without error, and its machine stays unclaimed for the
// next cycle.
func TestFlockingDoubleMatchHarmless(t *testing.T) {
	f := newFlock(t)
	f.ca.CA.Submit(classad.Figure2(), 100)
	if err := f.raA.Advertise(); err != nil {
		t.Fatal(err)
	}
	if err := f.raB.Advertise(); err != nil {
		t.Fatal(err)
	}
	if err := f.ca.AdvertiseIdle(); err != nil {
		t.Fatal(err)
	}
	resA := f.mgrA.RunCycle()
	if resA.Notified != 1 {
		t.Fatalf("pool A: %+v", resA)
	}
	// Pool B still holds the job's ad (each pool has its own store)
	// and matches it again.
	resB := f.mgrB.RunCycle()
	if len(resB.Matches) != 1 {
		t.Fatalf("pool B should still match the stale ad: %+v", resB)
	}
	if len(resB.Errors) != 0 {
		t.Errorf("stale flock match produced errors: %v", resB.Errors)
	}
	// The job runs exactly once; pool B's machine is untouched.
	if f.raA.RA.State() != agent.StateClaimed {
		t.Errorf("pool A machine state = %s", f.raA.RA.State())
	}
	if f.raB.RA.State() != agent.StateUnclaimed {
		t.Errorf("pool B machine state = %s, want Unclaimed", f.raB.RA.State())
	}
	okClaims, rejected := f.ca.ClaimStats()
	if okClaims != 1 || rejected != 0 {
		t.Errorf("claims ok=%d rejected=%d", okClaims, rejected)
	}
}
