package pool

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/agent"
	"repro/internal/classad"
	"repro/internal/classad/analysis"
	"repro/internal/collector"
	"repro/internal/matchmaker"
	"repro/internal/netx"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/remote"
	"repro/internal/store"
)

// CustomerDaemon exposes a Customer Agent over TCP: it advertises the
// queue's idle jobs, receives MATCH notifications from the pool
// manager (Figure 3 step 3), and drives the claiming protocol against
// the matched provider (step 4). A PREEMPT notice returns the job to
// the queue for the next cycle.
type CustomerDaemon struct {
	CA *agent.Customer

	// IdleTimeout bounds a handler's wait for the next envelope;
	// WriteTimeout bounds each reply write. Set before Listen/Serve.
	IdleTimeout  time.Duration
	WriteTimeout time.Duration
	// ClaimTimeout is the absolute deadline on one whole claim
	// round-trip (dial-to-verdict, challenge included). On expiry the
	// claim counts as rejected and the job stays idle for
	// re-matching — the paper's claim-retry path (§3.2). Defaults to
	// netx.DefaultIOTimeout.
	ClaimTimeout time.Duration

	// collectors are the pools this CA participates in. The first is
	// the home pool; additional entries are flock targets (in the
	// tradition of "A Worldwide Flock of Condors", the paper's
	// reference [3]): idle jobs advertise to every pool, whichever
	// matchmaker finds a match first wins, and a second pool's
	// belated match is rejected harmlessly at claim-initiation time
	// because the job is no longer idle — weak consistency again.
	collectors []*collector.Client
	lifetime   int64
	dialer     *netx.Dialer
	retry      netx.RetryPolicy

	mu      sync.Mutex
	ln      net.Listener
	contact string
	closed  bool
	wg      sync.WaitGroup
	logf    func(string, ...any)

	// claims maps job ID -> provider contact for release.
	claims map[int]claimRef
	// journal, when enabled, persists the claim lifecycle so a CA
	// restart neither leaks held providers nor forgets running jobs
	// (claimjournal.go).
	journal *ClaimJournal
	// highestEpoch is the match-fencing high-water mark: MATCH
	// notifications carrying a lower (non-zero) negotiator epoch are
	// from a deposed leader and are rejected.
	highestEpoch uint64
	// stats
	claimsOK, claimsRejected int
	maxClaimDur              time.Duration

	// Observability hooks; nil (no-op) until Instrument is called.
	obs              *obs.Obs
	events           *obs.Events
	spans            *obs.Spans
	mClaimAttempts   *obs.Counter
	mClaimOK         *obs.Counter
	mClaimRejected   *obs.Counter
	mClaimFailed     *obs.Counter
	mReleaseRequeued *obs.Counter
	mPreemptsRx      *obs.Counter
	mFenced          *obs.Counter
	mLintErrors      *obs.Counter
	mLintWarnings    *obs.Counter
	mLintUnindexable *obs.Counter
	hClaimSeconds    *obs.Histogram
	gHandlers        *obs.Gauge

	// shadow serves remote syscalls and checkpoints for this CA's
	// executing jobs, when execution is enabled.
	shadow     *remote.Shadow
	shadowAddr string
}

type claimRef struct {
	contact string
	machine string
	trace   string
}

// NewCustomerDaemon builds a daemon around a CA.
func NewCustomerDaemon(ca *agent.Customer, collectorAddr string, lifetime int64, logf func(string, ...any)) *CustomerDaemon {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &CustomerDaemon{
		CA:           ca,
		IdleTimeout:  netx.DefaultIdleTimeout,
		WriteTimeout: netx.DefaultIOTimeout,
		ClaimTimeout: netx.DefaultIOTimeout,
		collectors:   []*collector.Client{{Addr: collectorAddr}},
		lifetime:     lifetime,
		dialer:       netx.DefaultDialer,
		logf:         logf,
		claims:       make(map[int]claimRef),
	}
}

// Instrument routes claim-lifecycle activity into o: attempts,
// verdicts and transport failures (pool_claim_attempts_total,
// pool_claims_ok_total, pool_claims_rejected_total,
// pool_claims_failed_total), releases kept for retry
// (pool_release_requeued_total), eviction notices received
// (pool_preempts_received_total), static-analysis findings on
// submitted job ads (pool_submit_lint_errors_total,
// pool_submit_lint_warnings_total, plus
// pool_submit_lint_unindexable_total for jobs the offer index cannot
// prune on), the end-to-end claim latency from
// MATCH receipt to the provider's verdict ack (pool_claim_seconds),
// and live notification handlers (pool_ca_handlers gauge). Claim
// events carry the cycle ID from the MATCH envelope. Call before
// Listen/Serve.
func (d *CustomerDaemon) Instrument(o *obs.Obs) {
	reg := o.Registry()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.obs = o
	d.events = o.Events()
	d.spans = o.Spans()
	d.mClaimAttempts = reg.Counter("pool_claim_attempts_total")
	d.mClaimOK = reg.Counter("pool_claims_ok_total")
	d.mClaimRejected = reg.Counter("pool_claims_rejected_total")
	d.mClaimFailed = reg.Counter("pool_claims_failed_total")
	d.mReleaseRequeued = reg.Counter("pool_release_requeued_total")
	d.mPreemptsRx = reg.Counter("pool_preempts_received_total")
	d.mFenced = reg.Counter("pool_fenced_matches_total")
	d.mLintErrors = reg.Counter("pool_submit_lint_errors_total")
	d.mLintWarnings = reg.Counter("pool_submit_lint_warnings_total")
	d.mLintUnindexable = reg.Counter("pool_submit_lint_unindexable_total")
	d.hClaimSeconds = reg.Histogram("pool_claim_seconds", obs.DurationBuckets)
	d.gHandlers = reg.Gauge("pool_ca_handlers")
}

// emit logs one CA event stamped with the given cycle ID.
func (d *CustomerDaemon) emit(typ, cycle string, fields map[string]string) {
	d.mu.Lock()
	ev := d.events
	d.mu.Unlock()
	ev.Emit("ca", typ, cycle, fields)
}

// spansRef reads the span ring under the lock (nil until Instrument).
func (d *CustomerDaemon) spansRef() *obs.Spans {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.spans
}

// ConfigureNetwork sets the dialer and retry policy used for all of
// the daemon's outbound traffic (collector heartbeats, claim dials,
// releases). Call before Listen/Serve.
func (d *CustomerDaemon) ConfigureNetwork(dialer *netx.Dialer, retry netx.RetryPolicy) {
	if dialer == nil {
		dialer = netx.DefaultDialer
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dialer = dialer
	d.retry = retry
	for _, c := range d.collectors {
		c.Dialer = dialer
		c.Retry = retry
	}
}

// EnableExecution gives the CA a shadow: jobs carrying
// WantRemoteSyscalls with In/Out attributes will actually execute on
// the machines that claim them, doing all I/O against fs at this site.
// Returns the shadow's address (also stamped into claim ads as
// ShadowContact).
func (d *CustomerDaemon) EnableExecution(fs *remote.FileStore) (string, error) {
	shadow := remote.NewShadow(fs, d.logf)
	addr, err := shadow.Listen("127.0.0.1:0")
	if err != nil {
		return "", err
	}
	d.mu.Lock()
	d.shadow = shadow
	d.shadowAddr = addr
	d.mu.Unlock()
	return addr, nil
}

// Shadow exposes the CA's shadow, when execution is enabled.
func (d *CustomerDaemon) Shadow() *remote.Shadow {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.shadow
}

// EnableJournal attaches a durable claim journal rooted at dir and
// reconciles any state a previous incarnation left behind. fs selects
// the filesystem (nil for the real one). Call before Listen/Serve.
//
// Reconciliation follows the journal's phase per claim:
//
//   - "claiming" — the process died between the begin record and the
//     verdict, so the outcome is unknown: the provider may be holding a
//     claim nobody remembers. An idempotent RELEASE is sent (a provider
//     that never granted it just acknowledges), and the job requeues by
//     staying idle.
//   - "granted" — the provider is holding the claim and the job was
//     running there. If the job is still in the queue it is restored to
//     Running with its claim reference intact, so completion and
//     release work as if the restart never happened; a job no longer in
//     the queue gets its claim released rather than leaked.
//
// The journaled negotiator-epoch high-water mark is restored too, so
// fencing survives the restart.
func (d *CustomerDaemon) EnableJournal(dir string, fs store.FS) error {
	j, err := OpenClaimJournal(dir, fs)
	if err != nil {
		return err
	}
	d.mu.Lock()
	d.journal = j
	d.highestEpoch = j.Epoch()
	d.mu.Unlock()
	for _, c := range j.Live() {
		switch c.Phase {
		case PhaseGranted:
			if job, ok := d.CA.Job(c.Job); ok {
				if job.Status == agent.JobIdle {
					if err := d.CA.MarkRunning(c.Job, c.Machine); err != nil {
						d.logf("ca %s: reconcile job %d: %v", d.CA.Owner(), c.Job, err)
					}
				}
				d.mu.Lock()
				d.claims[c.Job] = claimRef{contact: c.Contact, machine: c.Machine}
				d.mu.Unlock()
				continue
			}
			// The queue no longer knows this job: release the provider
			// rather than leak it.
			fallthrough
		case PhaseClaiming:
			if err := d.sendRelease(c.Contact, ""); err != nil {
				// Provider unreachable; keep the journal record so the
				// next restart retries the release.
				d.logf("ca %s: reconcile release of %s failed: %v", d.CA.Owner(), c.Machine, err)
				continue
			}
			j.Release(c.Job)
			d.emit("claim_reconciled", "", map[string]string{
				"job":     fmt.Sprintf("%d", c.Job),
				"machine": c.Machine,
				"phase":   c.Phase,
			})
		}
	}
	return nil
}

// Journal exposes the claim journal, when enabled.
func (d *CustomerDaemon) Journal() *ClaimJournal {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.journal
}

// HighestEpoch reports the fencing high-water mark.
func (d *CustomerDaemon) HighestEpoch() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.highestEpoch
}

// AddFlockTarget registers an additional pool whose collector receives
// this CA's idle-job advertisements.
func (d *CustomerDaemon) AddFlockTarget(collectorAddr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.collectors = append(d.collectors, &collector.Client{
		Addr: collectorAddr, Dialer: d.dialer, Retry: d.retry,
	})
}

// Listen binds the notification endpoint.
func (d *CustomerDaemon) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	return d.Serve(ln), nil
}

// Serve starts the notification endpoint on an existing listener
// (which chaos tests wrap in a netx.FaultListener) and returns the
// contact address.
func (d *CustomerDaemon) Serve(ln net.Listener) string {
	d.mu.Lock()
	d.ln = ln
	d.contact = ln.Addr().String()
	d.mu.Unlock()
	d.wg.Add(1)
	go d.acceptLoop(ln)
	return d.contact
}

// Contact returns the daemon's notification address.
func (d *CustomerDaemon) Contact() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.contact
}

// Close stops the daemon and its shadow.
func (d *CustomerDaemon) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	ln := d.ln
	shadow := d.shadow
	journal := d.journal
	d.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	if shadow != nil {
		shadow.Close()
	}
	d.wg.Wait()
	if journal != nil {
		journal.Close()
	}
}

// ClaimStats reports accepted and rejected claim attempts.
func (d *CustomerDaemon) ClaimStats() (ok, rejected int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.claimsOK, d.claimsRejected
}

// MaxClaimDuration reports the longest single claim round-trip so
// far — chaos tests assert it never exceeds ClaimTimeout (plus the
// dial bound).
func (d *CustomerDaemon) MaxClaimDuration() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.maxClaimDur
}

// AdvertiseIdle sends one request ad per idle job to every pool this
// CA participates in, each stamped with the daemon's Contact and a
// unique Name (paper §4: CAs advertise "per-customer queues of
// submitted jobs, represented as lists of classads").
func (d *CustomerDaemon) AdvertiseIdle() error {
	d.mu.Lock()
	clients := append([]*collector.Client(nil), d.collectors...)
	o := d.obs
	d.mu.Unlock()
	// The CA's own Daemon-type health ad rides along with the queue (to
	// the home pool only — flock targets monitor their own daemons):
	// absent-ad detection in `cstatus -ha` then covers CAs too.
	if o != nil && len(clients) > 0 {
		if err := clients[0].Advertise(DaemonAd("ca", d.CA.Owner(), o), daemonAdLifetime); err != nil {
			d.logf("ca %s: advertising daemon ad: %v", d.CA.Owner(), err)
		}
	}
	for _, ad := range d.CA.IdleRequests() {
		stamped := ad.Copy()
		stamped.SetString(classad.AttrContact, d.Contact())
		id, _ := agent.JobIDOf(ad)
		stamped.SetString(classad.AttrName,
			fmt.Sprintf("%s/job%d", d.CA.Owner(), id))
		for _, c := range clients {
			if err := c.Advertise(stamped, d.lifetime); err != nil {
				return err
			}
		}
	}
	return nil
}

func (d *CustomerDaemon) acceptLoop(ln net.Listener) {
	defer d.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			d.handle(conn)
		}()
	}
}

func (d *CustomerDaemon) handle(conn net.Conn) {
	defer conn.Close()
	d.mu.Lock()
	gHandlers := d.gHandlers
	d.mu.Unlock()
	gHandlers.Inc()
	defer gHandlers.Dec()
	bounded := netx.TimeoutConn(conn, d.IdleTimeout, d.WriteTimeout)
	r := bufio.NewReader(bounded)
	for {
		env, err := protocol.Read(r)
		if err != nil {
			if !quietReadError(err) {
				d.logf("ca %s: read: %v", d.CA.Owner(), err)
			}
			return
		}
		var reply *protocol.Envelope
		switch env.Type {
		case protocol.TypeMatch:
			reply = d.handleMatch(env)
		case protocol.TypePreempt:
			reply = d.handlePreempt(env)
		case protocol.TypeSubmit:
			reply = d.handleSubmit(env)
		case protocol.TypeQuery:
			reply = d.handleQuery(env)
		case protocol.TypeJobDone:
			reply = d.handleJobDone(env)
		default:
			reply = protocol.Errorf("customer daemon does not handle %s", env.Type)
		}
		if err := protocol.Write(bounded, reply); err != nil {
			d.logf("ca %s: write: %v", d.CA.Owner(), err)
			return
		}
	}
}

// handleMatch receives a match notification and immediately runs the
// claiming protocol against the provider. The matchmaker is done; from
// here on the two parties speak directly.
func (d *CustomerDaemon) handleMatch(env *protocol.Envelope) *protocol.Envelope {
	// Epoch fencing: a MATCH stamped with a negotiator epoch below the
	// highest we have seen comes from a deposed leader that has not yet
	// noticed its lease lapsed. Honouring it could double-grant a
	// provider the new leader is also matching, so it is refused
	// outright. Epoch 0 marks a non-HA negotiator and passes unfenced.
	if env.Epoch > 0 {
		d.mu.Lock()
		high := d.highestEpoch
		if env.Epoch > high {
			d.highestEpoch = env.Epoch
		}
		j := d.journal
		d.mu.Unlock()
		if env.Epoch < high {
			d.mFenced.Inc()
			d.emit("match_fenced", env.Cycle, map[string]string{
				"epoch":   fmt.Sprintf("%d", env.Epoch),
				"current": fmt.Sprintf("%d", high),
			})
			// The refusal is part of the trace: a fenced MATCH shows up
			// as an errored span, so `cstatus -trace` explains why the
			// deposed leader's introduction went nowhere.
			sp := d.spansRef().Start(env.Trace, env.Span, "ca", "match_fenced")
			sp.Fail(fmt.Sprintf("stale negotiator epoch %d (current %d)", env.Epoch, high))
			sp.End()
			return protocol.Errorf("stale negotiator epoch %d (current %d)", env.Epoch, high)
		}
		if env.Epoch > high && j != nil {
			if _, err := j.ObserveEpoch(env.Epoch); err != nil {
				d.logf("ca %s: journal epoch: %v", d.CA.Owner(), err)
			}
		}
	}
	machine, err := protocol.DecodeAd(env.PeerAd)
	if err != nil {
		return protocol.Errorf("bad peer ad: %v", err)
	}
	// Which of our jobs was matched? The manager negotiated with the
	// ad we advertised, which carries the JobId stamp.
	// The notification does not include our own ad back, so we
	// locate the job via the session-free convention: claim the
	// first idle job whose constraint accepts this machine.
	job, found := d.pickJobFor(machine)
	if !found {
		// Not an error: with flocking, a second pool's match for a
		// job that already started elsewhere lands here; the match
		// was simply stale and the provider will be re-advertised.
		return &protocol.Envelope{Type: protocol.TypeAck,
			Reason: fmt.Sprintf("no idle job wants machine %s", adName(machine))}
	}
	// The claim carries a contactable copy of the job ad so the RA
	// can reach this CA later (e.g. to deliver a PREEMPT notice),
	// plus the shadow address when this CA executes jobs for real.
	claimAd := job.Ad.Copy()
	claimAd.SetString(classad.AttrContact, d.Contact())
	d.mu.Lock()
	if d.shadowAddr != "" {
		claimAd.SetString("ShadowContact", d.shadowAddr)
	}
	d.mu.Unlock()
	// The attempt is journaled before the dial: if we die past this
	// point, reconciliation knows a claim may be outstanding and will
	// release it. A journal that cannot record the attempt vetoes it —
	// an untracked claim is exactly the leak the journal exists to
	// prevent.
	providerContact, _ := machine.Eval(classad.AttrContact).StringVal()
	d.mu.Lock()
	journal := d.journal
	d.mu.Unlock()
	if journal != nil {
		if err := journal.Begin(job.ID, adName(machine), providerContact); err != nil {
			return protocol.Errorf("claim journal: %v", err)
		}
	}
	// Claim latency is measured end to end: from MATCH receipt here to
	// the provider's verdict (or failure), the paper's step-3-to-step-4
	// gap a customer actually experiences.
	trace := env.Trace
	if trace == "" {
		trace = classad.TraceOf(job.Ad)
	}
	sp := d.spansRef().Start(trace, env.Span, "ca", "claim")
	sp.Set("machine", adName(machine))
	sp.Set("job", fmt.Sprintf("%d", job.ID))
	d.mClaimAttempts.Inc()
	start := time.Now()
	accepted, reason, err := d.claim(machine, claimAd, env.Ticket, env.Cycle, trace, sp.ID())
	dur := time.Since(start)
	d.hClaimSeconds.Observe(dur.Seconds())
	d.mu.Lock()
	if dur > d.maxClaimDur {
		d.maxClaimDur = dur
	}
	d.mu.Unlock()
	if err != nil {
		// The provider is dead, wedged past the claim deadline, or
		// the connection was cut. The job was never marked running,
		// so it simply stays Idle and re-advertises next cycle — the
		// claim-retry path of §3.2; nothing is lost. The notification
		// itself is acknowledged: the matchmaker's introduction was
		// delivered, it just didn't pan out. The journal keeps the
		// "claiming" record: the dial may have half-landed, so the
		// next reconcile sends the idempotent RELEASE.
		d.mu.Lock()
		d.claimsRejected++
		d.mu.Unlock()
		d.mClaimFailed.Inc()
		sp.Fail(err.Error())
		sp.End()
		d.emit("claim_failed", env.Cycle, map[string]string{
			"machine": adName(machine),
			"job":     fmt.Sprintf("%d", job.ID),
			"error":   err.Error(),
		})
		d.logf("ca %s: claim of %s failed, job %d requeued: %v",
			d.CA.Owner(), adName(machine), job.ID, err)
		return &protocol.Envelope{Type: protocol.TypeAck,
			Reason: fmt.Sprintf("claim failed: %v", err)}
	}
	d.mu.Lock()
	if accepted {
		d.claimsOK++
	} else {
		d.claimsRejected++
	}
	d.mu.Unlock()
	if !accepted {
		// Weak consistency at work: the provider's state moved on.
		// The job stays idle and will be re-advertised next cycle. The
		// provider itself said no, so no claim is outstanding and the
		// journal record can go.
		if journal != nil {
			journal.Abort(job.ID)
		}
		d.mClaimRejected.Inc()
		sp.Set("outcome", "rejected")
		sp.Set("reason", reason)
		sp.End()
		d.emit("claim_rejected", env.Cycle, map[string]string{
			"machine": adName(machine),
			"job":     fmt.Sprintf("%d", job.ID),
			"reason":  reason,
		})
		d.logf("ca %s: claim of %s rejected: %s", d.CA.Owner(), adName(machine), reason)
		return &protocol.Envelope{Type: protocol.TypeAck, Reason: reason}
	}
	d.mClaimOK.Inc()
	sp.Set("outcome", "granted")
	sp.End()
	d.emit("claim_ok", env.Cycle, map[string]string{
		"machine":    adName(machine),
		"job":        fmt.Sprintf("%d", job.ID),
		"latency_ms": fmt.Sprintf("%d", dur.Milliseconds()),
	})
	if journal != nil {
		journal.Grant(job.ID)
	}
	if err := d.CA.MarkRunning(job.ID, adName(machine)); err != nil {
		return protocol.Errorf("%v", err)
	}
	d.mu.Lock()
	d.claims[job.ID] = claimRef{contact: providerContact, machine: adName(machine), trace: trace}
	d.mu.Unlock()
	// Accepted tells the notifying negotiator the claim actually
	// landed: that ack — not the match itself — is what charges the
	// customer's fair-share usage. Every other return path leaves
	// Accepted false, so bounced matches never bill.
	return &protocol.Envelope{Type: protocol.TypeAck, Accepted: true}
}

// pickJobFor selects the idle job this match should serve: the first
// idle job whose bilateral constraints accept the machine, in
// submission order.
func (d *CustomerDaemon) pickJobFor(machine *classad.Ad) (agent.Job, bool) {
	for _, ad := range d.CA.IdleRequests() {
		if classad.Match(ad, machine).Matched {
			if id, ok := agent.JobIDOf(ad); ok {
				if j, ok := d.CA.Job(id); ok {
					return j, true
				}
			}
		}
	}
	return agent.Job{}, false
}

// claim dials the provider and runs the claiming protocol, answering
// a challenge if one is issued. The whole exchange — however many
// envelopes the handshake takes — runs under one absolute deadline
// (ClaimTimeout), so a wedged provider can never stall the CA's
// notification handler beyond the configured bound. The cycle ID from
// the MATCH notification rides along in the CLAIM envelope so the
// provider's events correlate with this negotiation cycle.
func (d *CustomerDaemon) claim(machine, jobAd *classad.Ad, ticket, cycle, trace, span string) (bool, string, error) {
	contact, ok := machine.Eval(classad.AttrContact).StringVal()
	if !ok || contact == "" {
		return false, "", errors.New("provider ad has no Contact")
	}
	conn, err := d.dialer.DialTotal(contact, d.ClaimTimeout)
	if err != nil {
		return false, "", err
	}
	defer conn.Close()
	if err := protocol.Write(conn, &protocol.Envelope{
		Type:   protocol.TypeClaim,
		Ad:     protocol.EncodeAd(jobAd),
		Ticket: ticket,
		Cycle:  cycle,
		Trace:  trace,
		Span:   span,
	}); err != nil {
		return false, "", err
	}
	r := bufio.NewReader(conn)
	reply, err := protocol.Read(r)
	if err != nil {
		return false, "", err
	}
	if reply.Type == protocol.TypeChallenge {
		if err := protocol.Write(conn, &protocol.Envelope{
			Type: protocol.TypeChalReply,
			MAC:  protocol.Respond(ticket, reply.Nonce),
		}); err != nil {
			return false, "", err
		}
		reply, err = protocol.Read(r)
		if err != nil {
			return false, "", err
		}
	}
	switch reply.Type {
	case protocol.TypeClaimReply:
		return reply.Accepted, reply.Reason, nil
	case protocol.TypeError:
		return false, reply.Reason, nil
	default:
		return false, "", fmt.Errorf("unexpected claim reply %s", reply.Type)
	}
}

// handlePreempt processes an eviction notice from an RA: the job
// returns to Idle and will be re-advertised.
func (d *CustomerDaemon) handlePreempt(env *protocol.Envelope) *protocol.Envelope {
	jobAd, err := protocol.DecodeAd(env.Ad)
	if err != nil {
		return protocol.Errorf("bad preempt ad: %v", err)
	}
	id, ok := agent.JobIDOf(jobAd)
	if !ok {
		return protocol.Errorf("preempt notice without JobId")
	}
	if err := d.CA.Evicted(id); err != nil {
		return protocol.Errorf("%v", err)
	}
	d.mu.Lock()
	delete(d.claims, id)
	j := d.journal
	d.mu.Unlock()
	if j != nil {
		j.Release(id) // the RA evicted us; nothing left to hold
	}
	d.mPreemptsRx.Inc()
	d.emit("preempted", env.Cycle, map[string]string{
		"job": fmt.Sprintf("%d", id),
	})
	return &protocol.Envelope{Type: protocol.TypeAck}
}

// handleSubmit queues a job ad delivered by the submission tool. The
// envelope's Lifetime field carries the job's CPU demand in seconds
// (zero is fine for protocol-only use). The ad is statically analyzed
// on the way in: findings never reject the job (the submitter may know
// better), but they are logged and counted so a pool operator can see
// queues filling with requests that can never match.
//
// Submission is where a causal trace begins: the handler honours a
// trace the submitter minted (env.Trace) or mints one itself, records
// the root "submit" span, and stamps TraceId/TraceSpan into the ad so
// every later hop — collector storage, negotiation (possibly many
// cycles later, possibly under a failed-over negotiator), claim,
// verdict — parents its spans back here. The trace ID returns to the
// submitter in the ack's Trace field.
func (d *CustomerDaemon) handleSubmit(env *protocol.Envelope) *protocol.Envelope {
	ad, err := protocol.DecodeAd(env.Ad)
	if err != nil {
		return protocol.Errorf("bad job ad: %v", err)
	}
	trace := env.Trace
	if trace == "" {
		trace = classad.TraceOf(ad)
	}
	if trace == "" {
		trace = obs.NewTraceID()
	}
	d.mu.Lock()
	spans := d.spans
	d.mu.Unlock()
	sp := spans.Start(trace, env.Span, "ca", "submit")
	sp.Set("owner", d.CA.Owner())
	ad.SetString(classad.AttrTraceID, trace)
	if id := sp.ID(); id != "" {
		ad.SetString(classad.AttrTraceSpan, id)
	}
	for _, diag := range analysis.AnalyzeAd(ad, nil) {
		if diag.Severity >= analysis.Error {
			d.mLintErrors.Inc()
		} else {
			d.mLintWarnings.Inc()
		}
		d.logf("ca %s: submit lint: %s", d.CA.Owner(), diag)
	}
	// Index-friendliness: a job the offer index cannot prune on costs
	// a full pool scan every negotiation cycle. Counted separately so
	// an operator can spot scan pressure building in the queue.
	for _, diag := range matchmaker.LintIndex(ad, nil) {
		if diag.Code == analysis.CodeUnindexable {
			d.mLintUnindexable.Inc()
		} else if diag.Severity >= analysis.Error {
			d.mLintErrors.Inc()
		}
		d.logf("ca %s: submit lint: %s", d.CA.Owner(), diag)
	}
	j := d.CA.Submit(ad, float64(env.Lifetime))
	sp.Set("job", fmt.Sprintf("%d", j.ID))
	sp.End()
	return &protocol.Envelope{Type: protocol.TypeAck,
		Name:  fmt.Sprintf("%s/job%d", d.CA.Owner(), j.ID),
		Trace: trace}
}

// handleJobDone settles the queue when a starter ran the job to
// completion: the job is credited its full work and the claim record
// dropped (the RA already released its side).
func (d *CustomerDaemon) handleJobDone(env *protocol.Envelope) *protocol.Envelope {
	jobAd, err := protocol.DecodeAd(env.Ad)
	if err != nil {
		return protocol.Errorf("bad job-done ad: %v", err)
	}
	id, ok := agent.JobIDOf(jobAd)
	if !ok {
		return protocol.Errorf("job-done without JobId")
	}
	j, ok := d.CA.Job(id)
	if !ok {
		return protocol.Errorf("no job %d", id)
	}
	if _, err := d.CA.Progress(id, j.Work-j.Done, false); err != nil {
		return protocol.Errorf("%v", err)
	}
	d.mu.Lock()
	delete(d.claims, id)
	journal := d.journal
	d.mu.Unlock()
	if journal != nil {
		journal.Release(id) // the RA released its side on completion
	}
	return &protocol.Envelope{Type: protocol.TypeAck}
}

// handleQuery answers a one-way query over the queue: each job is
// rendered as its ad augmented with live status attributes (JobStatus,
// RemoteHost, Evictions), and the query's constraint filters them —
// the per-queue flavour of the paper's "tools to check on the status
// of job queues".
func (d *CustomerDaemon) handleQuery(env *protocol.Envelope) *protocol.Envelope {
	query, err := protocol.DecodeAd(env.Ad)
	if err != nil {
		return protocol.Errorf("bad query: %v", err)
	}
	var out []string
	for _, j := range d.CA.Snapshot() {
		ad := j.Ad.Copy()
		ad.SetString("JobStatus", string(j.Status))
		if j.Resource != "" {
			ad.SetString("RemoteHost", j.Resource)
		}
		ad.SetInt("Evictions", int64(j.Evictions))
		ad.SetReal("WorkDone", j.Done)
		ad.SetReal("WorkTotal", j.Work)
		if classad.MatchesQuery(query, ad, nil) {
			out = append(out, protocol.EncodeAd(ad))
		}
	}
	return &protocol.Envelope{Type: protocol.TypeQueryReply, Ads: out}
}

// Complete finishes a running job: credit its full remaining work and
// release the claim ("When the CA finishes using the resource, it
// relinquishes the claim"). Complete is idempotent: when a RELEASE is
// lost in transit the claim record is kept, and calling Complete
// again retries only the release — the queue bookkeeping is not
// redone — so a provider briefly unreachable at completion time is
// freed as soon as connectivity returns.
func (d *CustomerDaemon) Complete(jobID int) error {
	j, ok := d.CA.Job(jobID)
	if !ok {
		return fmt.Errorf("pool: no job %d", jobID)
	}
	if j.Status == agent.JobRunning {
		if _, err := d.CA.Progress(jobID, j.Work-j.Done, false); err != nil {
			return err
		}
	}
	d.mu.Lock()
	ref, had := d.claims[jobID]
	delete(d.claims, jobID)
	d.mu.Unlock()
	if !had {
		return nil
	}
	err := d.sendRelease(ref.contact, ref.trace)
	if err == nil {
		d.mu.Lock()
		journal := d.journal
		d.mu.Unlock()
		if journal != nil {
			journal.Release(jobID)
		}
	}
	if err != nil {
		// The release never landed: remember the claim so a later
		// Complete call can retry it once the provider is reachable.
		d.mu.Lock()
		if _, exists := d.claims[jobID]; !exists {
			d.claims[jobID] = ref
		}
		d.mu.Unlock()
		d.mReleaseRequeued.Inc()
		d.emit("release_requeued", "", map[string]string{
			"job":     fmt.Sprintf("%d", jobID),
			"machine": ref.machine,
			"error":   err.Error(),
		})
	}
	return err
}

// sendRelease delivers one RELEASE to a provider contact. RELEASE is
// idempotent (the RA acknowledges a duplicate release of an
// already-unclaimed machine), so transport failures retry with
// backoff. If the provider is truly gone the claim dies with it — its
// ad expires and the machine returns via re-advertising.
func (d *CustomerDaemon) sendRelease(contact, trace string) error {
	return netx.Retry(context.Background(), d.retry, func() error {
		conn, err := d.dialer.Dial(contact)
		if err != nil {
			return err
		}
		defer conn.Close()
		if err := protocol.Write(conn, &protocol.Envelope{
			Type: protocol.TypeRelease, Name: d.CA.Owner(), Trace: trace,
		}); err != nil {
			return err
		}
		reply, err := protocol.Read(bufio.NewReader(conn))
		if err != nil {
			return err
		}
		if reply.Type == protocol.TypeError {
			return netx.Permanent(errors.New(reply.Reason))
		}
		return nil
	})
}

func adName(ad *classad.Ad) string {
	s, _ := ad.Eval(classad.AttrName).StringVal()
	return s
}
