// Package pool wires the framework's components into a running pool:
// a Manager (collector + negotiator, the paper's "pool manager"),
// ResourceDaemon (an RA with a TCP claiming endpoint), and
// CustomerDaemon (a CA that receives match notifications and runs the
// claiming protocol). Together they execute the paper's Figure 3:
//
//	(1) RAs and CAs advertise to the matchmaker;
//	(2) the matchmaker runs the matchmaking algorithm;
//	(3) both matched parties are notified and receive each other's
//	    ads (the CA also receiving the RA's authorization ticket);
//	(4) the CA claims the RA directly, the matchmaker uninvolved.
//
// Periodic activities (advertising, negotiation cycles) are explicit
// methods so tests and simulations control time; the daemon binaries
// drive them with tickers.
package pool

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/classad"
	"repro/internal/collector"
	"repro/internal/matchmaker"
	"repro/internal/netx"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// Manager is the pool manager: it owns the collector store and runs
// negotiation cycles against snapshots of it. It retains no state
// about matches — the paper's stateless-matchmaker property — so a
// crashed manager is replaced by constructing a new one against an
// empty store and letting the agents' periodic advertisements refill
// it.
type Manager struct {
	store     *collector.Store
	server    *collector.Server
	mm        *matchmaker.Matchmaker
	env       *classad.Env
	logf      func(string, ...any)
	usageFile string
	history   io.Writer
	ledger    *matchmaker.UsageLedger

	// HA participation: when haName is set the manager's co-located
	// negotiator acquires the leadership lease from its own store
	// before each cycle and stamps the lease epoch into MATCH
	// notifications, so it coexists safely with standby
	// NegotiatorDaemons pointed at the same collector.
	haName   string
	leaseTTL int64

	dialer      *netx.Dialer
	notifyRetry netx.RetryPolicy

	// Observability hooks; nil (no-op) unless ManagerConfig.Obs is set.
	obs           *obs.Obs
	hCycleSeconds *obs.Histogram
	hCycleReqs    *obs.Histogram
	hCycleMatches *obs.Histogram
	mNotifyErrors *obs.Counter

	mu       sync.Mutex
	cycles   int
	epoch    uint64 // last lease epoch held (0 when not HA)
	deadline int64  // last lease deadline (pool-clock seconds)
}

// ManagerConfig tunes a Manager.
type ManagerConfig struct {
	// Env supplies time; nil for the process default.
	Env *classad.Env
	// Matchmaker tunes the negotiation algorithm.
	Matchmaker matchmaker.Config
	// Logf receives diagnostics; nil discards them.
	Logf func(string, ...any)
	// UsageFile, when set, persists the fair-share accounting table
	// there: loaded at construction, saved after every cycle. Match
	// state itself is never persisted — the matchmaker stays
	// stateless — but fairness is advisory history worth keeping.
	UsageFile string
	// History, when set, receives one classad per successful match
	// notification — an append-only accounting log. Everything in
	// the system is a classad, including its own records (paper §4),
	// so the log is queryable with the same one-way matching the
	// status tools use (cmd/chistory).
	History io.Writer
	// Dialer bounds MATCH notification dials; nil selects
	// netx.DefaultDialer.
	Dialer *netx.Dialer
	// NotifyRetry is the backoff policy for notification transport
	// failures; the zero value selects the netx defaults. Redelivered
	// MATCH envelopes are harmless: the CA no-ops when the job is no
	// longer idle, the RA's copy is advisory.
	NotifyRetry netx.RetryPolicy
	// Obs, when set, instruments the manager and everything it owns
	// (collector store and server, matchmaker): per-cycle histograms
	// (pool_cycle_seconds, pool_cycle_requests, pool_cycle_matches),
	// notification failures (pool_notify_errors_total), and the trace
	// events that carry each cycle's ID across daemons.
	Obs *obs.Obs
	// Store, when set, is a pre-opened advertisement store — typically
	// collector.OpenDurable, so ads, expiry deadlines and the
	// leadership lease survive manager restarts — that the manager
	// adopts (and closes) instead of creating a fresh in-memory one.
	Store *collector.Store
	// Ledger, when set, backs the fair-share table with a durable
	// usage ledger (matchmaker.OpenUsageLedger): every charge is
	// journaled as it lands, superseding the per-cycle UsageFile save.
	// The manager adopts and closes it.
	Ledger *matchmaker.UsageLedger
	// HAName, when set, enrolls the manager's negotiator half in
	// leader election under this identity: each RunCycle first
	// acquires (or renews) the leadership lease and stamps its epoch
	// into MATCH notifications; a cycle without the lease is a standby
	// no-op. Leave empty for the classic single-negotiator pool.
	HAName string
	// LeaseTTL is the leadership lease duration in pool-clock seconds
	// (0 selects collector.DefaultLeaseTTL). Only meaningful with
	// HAName.
	LeaseTTL int64
}

// NewManager builds a pool manager.
func NewManager(cfg ManagerConfig) *Manager {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Matchmaker.Env == nil {
		cfg.Matchmaker.Env = cfg.Env
	}
	// Production cycles default to the two-stage engine: the offer
	// index plus a CPU-bounded parallel scan, which reproduce the
	// sequential scan's matches exactly. Aggregation has its own
	// pruning, and Parallel=1 is the explicit sequential opt-out.
	if !cfg.Matchmaker.Aggregate && !cfg.Matchmaker.Index && cfg.Matchmaker.Parallel == 0 {
		cfg.Matchmaker.Index = true
		cfg.Matchmaker.Parallel = matchmaker.ParallelAuto
	}
	// Pool accounting is charge-on-claim-ack: the matchmaker defers,
	// and RunCycle bills only when the customer's MATCH ack reports the
	// claim was accepted. A match that bounces off claim-time
	// revalidation costs the customer nothing.
	cfg.Matchmaker.DeferCharges = true
	store := cfg.Store
	if store == nil {
		store = collector.New(cfg.Env)
	}
	m := &Manager{
		store:       store,
		mm:          matchmaker.New(cfg.Matchmaker),
		env:         cfg.Env,
		logf:        cfg.Logf,
		usageFile:   cfg.UsageFile,
		history:     cfg.History,
		ledger:      cfg.Ledger,
		haName:      cfg.HAName,
		leaseTTL:    cfg.LeaseTTL,
		dialer:      cfg.Dialer,
		notifyRetry: cfg.NotifyRetry,
	}
	if m.dialer == nil {
		m.dialer = netx.DefaultDialer
	}
	if m.ledger != nil {
		m.mm.SetUsage(m.ledger.Table())
	}
	if cfg.Obs != nil {
		m.obs = cfg.Obs
		reg := cfg.Obs.Registry()
		m.hCycleSeconds = reg.Histogram("pool_cycle_seconds", obs.DurationBuckets)
		m.hCycleReqs = reg.Histogram("pool_cycle_requests", obs.CountBuckets)
		m.hCycleMatches = reg.Histogram("pool_cycle_matches", obs.CountBuckets)
		m.mNotifyErrors = reg.Counter("pool_notify_errors_total")
		store.Instrument(reg)
		m.mm.Instrument(cfg.Obs)
		if m.ledger != nil {
			m.ledger.Instrument(reg)
		}
		if m.haName != "" {
			reg.GaugeFunc("negotiator_leader_epoch", func() float64 {
				m.mu.Lock()
				defer m.mu.Unlock()
				return float64(m.epoch)
			})
		}
		cfg.Obs.Handle("/daemons", func(map[string][]string) (any, error) {
			return m.store.DaemonHealth(), nil
		})
	}
	if m.usageFile != "" && m.ledger == nil {
		if err := m.mm.Usage().Load(m.usageFile); err != nil {
			m.logf("pool: usage history %s unreadable, starting fresh: %v", m.usageFile, err)
		}
	}
	return m
}

// Usage exposes the fair-share accounting table.
func (m *Manager) Usage() *matchmaker.PriorityTable { return m.mm.Usage() }

// Listen starts the collector endpoint on addr and returns the bound
// address that agents should advertise to.
func (m *Manager) Listen(addr string) (string, error) {
	m.server = collector.NewServer(m.store, m.logf)
	if m.obs != nil {
		m.server.Instrument(m.obs)
	}
	return m.server.Listen(addr)
}

// Serve starts the collector endpoint on an existing listener (which
// chaos tests wrap in a netx.FaultListener) and returns its address.
func (m *Manager) Serve(ln net.Listener) string {
	m.server = collector.NewServer(m.store, m.logf)
	if m.obs != nil {
		m.server.Instrument(m.obs)
	}
	return m.server.Serve(ln)
}

// Obs exposes the manager's observability sinks (nil when the manager
// was built without ManagerConfig.Obs).
func (m *Manager) Obs() *obs.Obs { return m.obs }

// Close shuts the collector endpoint down and releases any adopted
// durable state (store and ledger).
func (m *Manager) Close() {
	if m.server != nil {
		m.server.Close()
	}
	if m.ledger != nil {
		m.ledger.Close()
	}
	m.store.Close()
}

// Store exposes the ad store for direct (in-process) advertising.
func (m *Manager) Store() *collector.Store { return m.store }

// Cycles reports how many negotiation cycles have run.
func (m *Manager) Cycles() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cycles
}

// CycleResult summarizes one negotiation cycle.
type CycleResult struct {
	Requests, Offers int
	Matches          []matchmaker.Match
	// Notified counts matches whose parties were both reachable.
	Notified int
	// Charged counts matches whose customer acknowledged a granted
	// claim — the only ones that billed fair-share usage.
	Charged int
	// Errors collects notification failures (unreachable contacts).
	Errors []error
	// Cycle is the cycle's trace identifier: every event this cycle
	// emitted — across manager, matchmaker, CA and RA — carries it.
	Cycle string
	// Standby is true when an HA-enrolled negotiator ran the cycle
	// without holding the leadership lease: nothing was matched.
	Standby bool
	// Skipped is true when an event-mode heartbeat (TickEvent) held the
	// lease but skipped negotiation because the pool had not changed.
	Skipped bool
	// Epoch is the leadership epoch the cycle ran under (0 without HA).
	Epoch uint64
	// Duration is the cycle's wall time.
	Duration time.Duration
}

// RunCycle executes one negotiation cycle (paper §4: "Periodically,
// the pool manager enters a negotiation cycle"): snapshot the store,
// split job ads from provider ads, run the matchmaking algorithm, and
// invoke the matchmaking protocol for every match — sending each party
// the other's ad, the session identifier, and (to the customer) the
// provider's authorization ticket.
func (m *Manager) RunCycle() CycleResult {
	start := time.Now()
	m.mu.Lock()
	m.cycles++
	n := m.cycles
	m.mu.Unlock()
	cycleID := obs.NewCycleID(n)

	// HA: hold the leadership lease before matching anything. A manager
	// that cannot get (or keep) the lease is a standby this cycle: it
	// matches nothing, because a concurrent leader may be granting the
	// same offers.
	var epoch uint64
	if m.haName != "" {
		lease, granted, err := m.store.AcquireLease(m.haName, m.leaseTTL)
		if err != nil || !granted {
			if err != nil {
				m.logf("pool: lease: %v", err)
			}
			m.obs.Events().Emit("manager", "cycle_standby", cycleID, map[string]string{
				"leader": lease.Holder,
				"epoch":  fmt.Sprint(lease.Epoch),
			})
			return CycleResult{Cycle: cycleID, Standby: true, Duration: time.Since(start)}
		}
		epoch = lease.Epoch
		m.mu.Lock()
		m.epoch = epoch
		m.deadline = lease.Deadline
		m.mu.Unlock()
	}

	requests := m.store.SelectType("Job")
	var offers []*classad.Ad
	for _, ad := range m.store.All() {
		typ, ok := ad.Eval(classad.AttrType).StringVal()
		if ok {
			switch classad.Fold(typ) {
			case "job", "negotiator", "daemon":
				continue // requests, the manager's own ad, and self-ads
			}
		}
		offers = append(offers, ad)
	}
	res := CycleResult{Requests: len(requests), Offers: len(offers), Cycle: cycleID, Epoch: epoch}
	m.obs.Events().Emit("manager", "cycle_begin", cycleID, map[string]string{
		"requests": fmt.Sprint(res.Requests),
		"offers":   fmt.Sprint(res.Offers),
	})
	res.Matches = m.mm.NegotiateCycle(cycleID, requests, offers)
	for _, match := range res.Matches {
		accepted, err := m.notify(match, cycleID, epoch)
		if err != nil {
			res.Errors = append(res.Errors, err)
			m.mNotifyErrors.Inc()
			m.obs.Events().Emit("manager", "notify_failed", cycleID, map[string]string{
				"request": adName(match.Request),
				"offer":   adName(match.Offer),
				"error":   err.Error(),
			})
			continue
		}
		res.Notified++
		if accepted {
			// The claim landed: now — and only now — the customer is
			// charged (Config.DeferCharges holds the matchmaker back).
			m.mm.Usage().Record(matchmaker.OwnerOf(match.Request), 1)
			res.Charged++
		}
		m.logMatch(match)
		// The matched request leaves the store: its CA will
		// re-advertise if the claim falls through. The provider ad
		// stays — its ticket is consumed by the claim, so a stale
		// re-match is caught by the claiming protocol, which is
		// exactly the weak-consistency design.
		if name, err := collector.NameOf(match.Request); err == nil {
			m.store.Invalidate(name)
		}
	}
	if m.ledger != nil {
		if err := m.ledger.MaybeCompact(); err != nil {
			m.logf("pool: compacting usage ledger: %v", err)
		}
		if err := m.ledger.Err(); err != nil {
			m.logf("pool: usage ledger: %v", err)
		}
	} else if m.usageFile != "" {
		if err := m.mm.Usage().Save(m.usageFile); err != nil {
			m.logf("pool: saving usage history: %v", err)
		}
	}
	res.Duration = time.Since(start)
	m.hCycleSeconds.Observe(res.Duration.Seconds())
	m.hCycleReqs.Observe(float64(res.Requests))
	m.hCycleMatches.Observe(float64(len(res.Matches)))
	m.obs.Events().Emit("manager", "cycle_end", cycleID, map[string]string{
		"matches":  fmt.Sprint(len(res.Matches)),
		"notified": fmt.Sprint(res.Notified),
		"errors":   fmt.Sprint(len(res.Errors)),
		"duration": res.Duration.String(),
	})
	m.publishSelf(res)
	m.publishDaemonAds()
	return res
}

// publishSelf stores the negotiator's own classad in the collector
// after each cycle — "All entities are represented with classads"
// (paper §4), the matchmaker included. Status tools can then browse
// cycle statistics and the fair-share table with the same one-way
// queries they use for machines:
//
//	cstatus -constraint 'other.Type == "Negotiator"' -long
func (m *Manager) publishSelf(res CycleResult) {
	ad := classad.NewAd()
	ad.SetString(classad.AttrType, "Negotiator")
	ad.SetString(classad.AttrName, "negotiator@pool")
	m.mu.Lock()
	ad.SetInt("Cycle", int64(m.cycles))
	if m.haName != "" {
		ad.SetString("Leader", m.haName)
		ad.SetInt("Epoch", int64(m.epoch))
		ad.SetInt("LeaseDeadline", m.deadline)
	}
	m.mu.Unlock()
	ad.SetInt("LastRequests", int64(res.Requests))
	ad.SetInt("LastOffers", int64(res.Offers))
	ad.SetInt("LastMatches", int64(len(res.Matches)))
	ad.SetInt("LastNotified", int64(res.Notified))
	// The fair-share table, as a nested ad: user -> decayed usage.
	usage := classad.NewAd()
	table := m.mm.Usage()
	for _, customer := range table.Customers() {
		usage.SetReal(customer, table.Effective(customer))
	}
	ad.Set("Usage", classad.NewAdExpr(usage))
	if err := m.store.Update(ad, 0); err != nil {
		m.logf("pool: publishing negotiator ad: %v", err)
	}
}

// logMatch appends one match record — itself a classad — to the
// history writer.
func (m *Manager) logMatch(match matchmaker.Match) {
	if m.history == nil {
		return
	}
	rec := classad.NewAd()
	rec.SetString(classad.AttrType, "Match")
	env := m.env
	if env == nil {
		env = classad.DefaultEnv()
	}
	rec.SetInt("Time", env.Now())
	m.mu.Lock()
	rec.SetInt("Cycle", int64(m.cycles))
	m.mu.Unlock()
	if owner, ok := match.Request.Eval(classad.AttrOwner).StringVal(); ok {
		rec.SetString("Customer", owner)
	}
	if name, ok := match.Request.Eval(classad.AttrName).StringVal(); ok {
		rec.SetString("RequestName", name)
	}
	if name, ok := match.Offer.Eval(classad.AttrName).StringVal(); ok {
		rec.SetString("OfferName", name)
	}
	rec.SetReal("RequestRank", match.RequestRank)
	rec.SetReal("OfferRank", match.OfferRank)
	if _, err := fmt.Fprintln(m.history, rec.String()); err != nil {
		m.logf("pool: writing history: %v", err)
	}
}

// notify runs the matchmaking protocol for one match.
func (m *Manager) notify(match matchmaker.Match, cycleID string, epoch uint64) (bool, error) {
	return notifyMatch(m.dialer, m.notifyRetry, m.logf, m.obs.Spans(), "manager", match, cycleID, epoch)
}

// notifyMatch runs the matchmaking protocol for one match: a MATCH
// envelope to each party's Contact address carrying the peer's ad and
// the cycle's trace ID; the customer's copy also carries the
// provider's ticket. epoch, when non-zero, is the sender's leadership
// epoch — the CA fences out envelopes whose epoch has been superseded.
// Traced matches (the request ad carries a TraceId) propagate the
// trace into both envelopes and record a notify span under src.
// Shared by the combined Manager and the standalone NegotiatorDaemon.
//
// accepted reports whether the customer's ack carried Accepted — the
// claim was granted — which is the signal deferred fair-share charging
// keys on. A CA predating the flag acks without it; such a pool simply
// stops charging, which is the conservative failure mode (customers
// are under- rather than over-billed).
func notifyMatch(dialer *netx.Dialer, retry netx.RetryPolicy, logf func(string, ...any),
	spans *obs.Spans, src string, match matchmaker.Match, cycleID string, epoch uint64) (accepted bool, err error) {
	session, err := protocol.NewSession()
	if err != nil {
		return false, err
	}
	ticket, _ := match.Offer.Eval(classad.AttrTicket).StringVal()
	trace := match.Trace
	if trace == "" {
		trace = classad.TraceOf(match.Request)
	}
	parent := match.Span
	if parent == "" {
		parent = classad.TraceSpanOf(match.Request)
	}
	sp := spans.Start(trace, parent, src, "notify")
	sp.Set("request", adName(match.Request))
	sp.Set("offer", adName(match.Offer))

	// Customer first: it drives the claiming protocol. MATCH is
	// idempotent for the CA (a duplicate lands after the job left the
	// idle state and is acknowledged as stale), so transport failures
	// are retried with backoff before the match is abandoned to the
	// next cycle.
	if err := netx.Retry(context.Background(), retry, func() error {
		reply, err := sendToContact(dialer, match.Request, &protocol.Envelope{
			Type:    protocol.TypeMatch,
			PeerAd:  protocol.EncodeAd(match.Offer),
			Ticket:  ticket,
			Session: session,
			Cycle:   cycleID,
			Trace:   trace,
			Span:    sp.ID(),
			Epoch:   epoch,
		})
		if err != nil {
			return err
		}
		accepted = reply.Accepted
		return nil
	}); err != nil {
		sp.Fail(err.Error())
		sp.End()
		return false, fmt.Errorf("pool: notify customer: %w", err)
	}
	// Provider notification is advisory; a provider without a
	// reachable contact still works because the claim itself carries
	// everything the RA needs. One bounded attempt is enough.
	if _, err := sendToContact(dialer, match.Offer, &protocol.Envelope{
		Type:    protocol.TypeMatch,
		PeerAd:  protocol.EncodeAd(match.Request),
		Session: session,
		Cycle:   cycleID,
		Trace:   trace,
		Span:    sp.ID(),
		Epoch:   epoch,
	}); err != nil {
		logf("pool: notify provider: %v", err)
	}
	sp.Set("claim_accepted", fmt.Sprint(accepted))
	sp.End()
	return accepted, nil
}

// sendToContact dials the ad's Contact address with bounded connect
// and I/O deadlines, delivers one envelope, and returns the
// acknowledging reply.
func sendToContact(d *netx.Dialer, ad *classad.Ad, env *protocol.Envelope) (*protocol.Envelope, error) {
	contact, ok := ad.Eval(classad.AttrContact).StringVal()
	if !ok || contact == "" {
		// No retry can conjure a contact address.
		return nil, netx.Permanent(errors.New("ad has no Contact address"))
	}
	if d == nil {
		d = netx.DefaultDialer
	}
	conn, err := d.Dial(contact)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := protocol.Write(conn, env); err != nil {
		return nil, err
	}
	reply, err := protocol.Read(bufio.NewReader(conn))
	if err != nil {
		return nil, err
	}
	if reply.Type == protocol.TypeError {
		return nil, netx.Permanent(errors.New(reply.Reason))
	}
	return reply, nil
}

// quietReadError reports whether a handler read error is ordinary
// connection lifecycle (clean close, daemon shutdown, idle timeout)
// rather than a protocol problem worth logging.
func quietReadError(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, os.ErrDeadlineExceeded)
}
