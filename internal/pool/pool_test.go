package pool

import (
	"strings"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/classad"
	"repro/internal/matchmaker"
)

// testPool spins up a manager, one RA daemon and one CA daemon on
// loopback TCP, all torn down with the test.
type testPool struct {
	mgr  *Manager
	addr string
	ra   *ResourceDaemon
	ca   *CustomerDaemon
}

func newTestPool(t *testing.T, raAd *classad.Ad, owner string) *testPool {
	t.Helper()
	mgr := NewManager(ManagerConfig{Logf: t.Logf})
	addr, err := mgr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)

	ra := NewResourceDaemon(agent.NewResource(raAd, nil), addr, 0, t.Logf)
	if _, err := ra.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ra.Close)

	ca := NewCustomerDaemon(agent.NewCustomer(owner, nil), addr, 0, t.Logf)
	if _, err := ca.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ca.Close)

	return &testPool{mgr: mgr, addr: addr, ra: ra, ca: ca}
}

// figure1Machine is the paper's workstation with the friendliest
// dynamic state (idle keyboard, low load, night), so matches hinge on
// the tested condition, not the example policy.
func figure1Machine() *classad.Ad {
	ad := classad.Figure1()
	ad.SetInt("DayTime", 22*3600)
	ad.SetInt("KeyboardIdle", 3600)
	ad.SetReal("LoadAvg", 0.01)
	return ad
}

// TestFigure3EndToEnd is experiment E3: advertise, match, notify and
// claim over real sockets — every arrow of the paper's Figure 3.
func TestFigure3EndToEnd(t *testing.T) {
	p := newTestPool(t, figure1Machine(), "raman")
	job := p.ca.CA.Submit(classad.Figure2(), 100)

	// Step 1: both entities advertise.
	if err := p.ra.Advertise(); err != nil {
		t.Fatal(err)
	}
	if err := p.ca.AdvertiseIdle(); err != nil {
		t.Fatal(err)
	}
	if got := p.mgr.Store().Len(); got != 2 {
		t.Fatalf("store has %d ads, want 2", got)
	}

	// Steps 2 and 3: the negotiation cycle matches and notifies.
	res := p.mgr.RunCycle()
	if len(res.Matches) != 1 {
		t.Fatalf("cycle matched %d pairs, want 1", len(res.Matches))
	}
	if res.Notified != 1 {
		t.Fatalf("notified %d, errors: %v", res.Notified, res.Errors)
	}

	// Step 4 happened synchronously inside the notification: the CA
	// claimed the RA.
	if p.ra.RA.State() != agent.StateClaimed {
		t.Errorf("RA state = %s, want Claimed", p.ra.RA.State())
	}
	claim, ok := p.ra.RA.CurrentClaim()
	if !ok || claim.Customer != "raman" {
		t.Errorf("claim = %+v", claim)
	}
	j, _ := p.ca.CA.Job(job.ID)
	if j.Status != agent.JobRunning {
		t.Errorf("job status = %s, want Running", j.Status)
	}
	if j.Resource != "leonardo.cs.wisc.edu" {
		t.Errorf("job resource = %q", j.Resource)
	}
	okClaims, rejected := p.ca.ClaimStats()
	if okClaims != 1 || rejected != 0 {
		t.Errorf("claim stats = %d ok / %d rejected", okClaims, rejected)
	}

	// Completion releases the claim and the RA returns to Unclaimed.
	if err := p.ca.Complete(job.ID); err != nil {
		t.Fatal(err)
	}
	if p.ra.RA.State() != agent.StateUnclaimed {
		t.Errorf("RA state after release = %s", p.ra.RA.State())
	}
	j, _ = p.ca.CA.Job(job.ID)
	if j.Status != agent.JobCompleted {
		t.Errorf("job status after completion = %s", j.Status)
	}
}

// TestFigure3WithChallenge runs the same flow with the HMAC
// challenge-response handshake enabled on the RA.
func TestFigure3WithChallenge(t *testing.T) {
	p := newTestPool(t, figure1Machine(), "raman")
	p.ra.RequireChallenge = true
	p.ca.CA.Submit(classad.Figure2(), 100)
	if err := p.ra.Advertise(); err != nil {
		t.Fatal(err)
	}
	if err := p.ca.AdvertiseIdle(); err != nil {
		t.Fatal(err)
	}
	res := p.mgr.RunCycle()
	if res.Notified != 1 {
		t.Fatalf("notified %d, errors: %v", res.Notified, res.Errors)
	}
	if p.ra.RA.State() != agent.StateClaimed {
		t.Errorf("RA state = %s; challenge handshake should still succeed", p.ra.RA.State())
	}
}

// TestStaleClaimRejected is experiment E5 over sockets: the machine's
// state changes between advertisement and claim; the claim is caught
// at claim time and the job stays idle for the next cycle.
func TestStaleClaimRejected(t *testing.T) {
	p := newTestPool(t, figure1Machine(), "tannenba") // a friend
	job := p.ca.CA.Submit(classad.Figure2(), 100)
	if err := p.ra.Advertise(); err != nil {
		t.Fatal(err)
	}
	if err := p.ca.AdvertiseIdle(); err != nil {
		t.Fatal(err)
	}
	// Owner touches the keyboard after the ad went out: friends are
	// no longer welcome.
	p.ra.RA.SetDynamic("KeyboardIdle", classad.Int(2))

	res := p.mgr.RunCycle()
	if len(res.Matches) != 1 {
		t.Fatalf("stale ad should still match in the negotiator; got %d", len(res.Matches))
	}
	if p.ra.RA.State() != agent.StateUnclaimed {
		t.Errorf("RA state = %s, want Unclaimed (claim must be rejected)", p.ra.RA.State())
	}
	j, _ := p.ca.CA.Job(job.ID)
	if j.Status != agent.JobIdle {
		t.Errorf("job status = %s, want Idle for resubmission", j.Status)
	}
	_, rejected := p.ca.ClaimStats()
	if rejected != 1 {
		t.Errorf("rejected claims = %d, want 1", rejected)
	}

	// Progress is still possible: the owner leaves, agents
	// re-advertise, the next cycle succeeds.
	p.ra.RA.SetDynamic("KeyboardIdle", classad.Int(3600))
	if err := p.ra.Advertise(); err != nil {
		t.Fatal(err)
	}
	if err := p.ca.AdvertiseIdle(); err != nil {
		t.Fatal(err)
	}
	res = p.mgr.RunCycle()
	if res.Notified != 1 {
		t.Fatalf("second cycle notified %d, errors: %v", res.Notified, res.Errors)
	}
	if p.ra.RA.State() != agent.StateClaimed {
		t.Errorf("RA state after recovery cycle = %s", p.ra.RA.State())
	}
}

// TestMatchmakerCrashRecovery is experiment E6: killing the pool
// manager loses nothing durable — a fresh manager on a fresh store is
// fully operational as soon as the agents re-advertise, because
// matches are introductions and all allocation state lives in the
// agents (paper §3.2, "the matchmaker is a stateless service").
func TestMatchmakerCrashRecovery(t *testing.T) {
	p := newTestPool(t, figure1Machine(), "raman")
	job := p.ca.CA.Submit(classad.Figure2(), 100)
	if err := p.ra.Advertise(); err != nil {
		t.Fatal(err)
	}
	if err := p.ca.AdvertiseIdle(); err != nil {
		t.Fatal(err)
	}

	// The manager "crashes" before ever running a cycle.
	p.mgr.Close()

	// A replacement comes up at a new address with an empty store.
	mgr2 := NewManager(ManagerConfig{Logf: t.Logf})
	addr2, err := mgr2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr2.Close)

	// Agents re-target their periodic advertisements (in deployment
	// the address is fixed and the TCP connection simply succeeds
	// again; re-pointing the client models the same recovery).
	ra2 := NewResourceDaemon(p.ra.RA, addr2, 0, t.Logf)
	ra2.mu.Lock()
	ra2.contact = p.ra.Contact() // same claiming endpoint
	ra2.mu.Unlock()
	ca2 := NewCustomerDaemon(p.ca.CA, addr2, 0, t.Logf)
	ca2.mu.Lock()
	ca2.contact = p.ca.Contact()
	ca2.mu.Unlock()
	// Route claims through the original CA daemon's listener: the
	// MATCH notification goes to the original contact address, which
	// is still served by p.ca. Re-advertise through the new clients.
	if err := ra2.Advertise(); err != nil {
		t.Fatal(err)
	}
	if err := ca2.AdvertiseIdle(); err != nil {
		t.Fatal(err)
	}
	res := mgr2.RunCycle()
	if res.Notified != 1 {
		t.Fatalf("recovered manager notified %d, errors: %v", res.Notified, res.Errors)
	}
	if p.ra.RA.State() != agent.StateClaimed {
		t.Errorf("RA state = %s after recovery", p.ra.RA.State())
	}
	j, _ := p.ca.CA.Job(job.ID)
	if j.Status != agent.JobRunning {
		t.Errorf("job status = %s after recovery", j.Status)
	}
}

// TestPreemptionOverSockets: a higher-ranked customer's claim evicts
// the incumbent, whose CA receives a PREEMPT notice and requeues the
// job.
func TestPreemptionOverSockets(t *testing.T) {
	mgr := NewManager(ManagerConfig{Logf: t.Logf})
	addr, err := mgr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)

	ra := NewResourceDaemon(agent.NewResource(figure1Machine(), nil), addr, 0, t.Logf)
	if _, err := ra.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ra.Close)

	friend := NewCustomerDaemon(agent.NewCustomer("tannenba", nil), addr, 0, t.Logf)
	if _, err := friend.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(friend.Close)
	research := NewCustomerDaemon(agent.NewCustomer("raman", nil), addr, 0, t.Logf)
	if _, err := research.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(research.Close)

	// Cycle 1: only the friend's job is queued; it claims the
	// machine at rank 1.
	friendJob := friend.CA.Submit(classad.Figure2(), 1000)
	if err := ra.Advertise(); err != nil {
		t.Fatal(err)
	}
	if err := friend.AdvertiseIdle(); err != nil {
		t.Fatal(err)
	}
	if res := mgr.RunCycle(); res.Notified != 1 {
		t.Fatalf("cycle 1: %+v", res)
	}
	if st := ra.RA.State(); st != agent.StateClaimed {
		t.Fatalf("cycle 1 left RA %s", st)
	}

	// Cycle 2: the machine re-advertises (State=Claimed,
	// CurrentRank=1) and a research job arrives. The machine's
	// constraint still accepts research members, the RA ranks the
	// job at 10 > 1, so the claim preempts.
	researchJob := research.CA.Submit(classad.Figure2(), 1000)
	if err := ra.Advertise(); err != nil {
		t.Fatal(err)
	}
	if err := research.AdvertiseIdle(); err != nil {
		t.Fatal(err)
	}
	if res := mgr.RunCycle(); res.Notified != 1 {
		t.Fatalf("cycle 2: %+v", res)
	}
	claim, _ := ra.RA.CurrentClaim()
	if claim.Customer != "raman" {
		t.Fatalf("claim holder = %s, want raman", claim.Customer)
	}
	preempted, _ := ra.RA.Stats()
	if preempted != 1 {
		t.Errorf("preemptions = %d", preempted)
	}

	// The friend's job got its PREEMPT notice and is idle again.
	deadline := time.Now().Add(2 * time.Second)
	for {
		j, _ := friend.CA.Job(friendJob.ID)
		if j.Status == agent.JobIdle {
			if j.Evictions != 1 {
				t.Errorf("evictions = %d", j.Evictions)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("friend job never returned to Idle (status %s)", j.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	j, _ := research.CA.Job(researchJob.ID)
	if j.Status != agent.JobRunning {
		t.Errorf("research job = %s", j.Status)
	}
}

// TestCycleWithNoAds: an empty store cycles cleanly.
func TestCycleWithNoAds(t *testing.T) {
	mgr := NewManager(ManagerConfig{})
	res := mgr.RunCycle()
	if res.Requests != 0 || res.Offers != 0 || len(res.Matches) != 0 {
		t.Errorf("empty cycle = %+v", res)
	}
	if mgr.Cycles() != 1 {
		t.Errorf("cycles = %d", mgr.Cycles())
	}
}

// TestUnreachableCustomerContact: a match whose customer cannot be
// notified is reported as an error, and the cycle carries on.
func TestUnreachableCustomerContact(t *testing.T) {
	mgr := NewManager(ManagerConfig{Logf: t.Logf})
	machine := figure1Machine()
	machine.SetString(classad.AttrContact, "127.0.0.1:1") // nothing listens
	machine.SetString(classad.AttrTicket, "deadbeef")
	if err := mgr.Store().Update(machine, 0); err != nil {
		t.Fatal(err)
	}
	job := classad.Figure2()
	job.SetString(classad.AttrName, "raman/job1")
	job.SetString(classad.AttrContact, "127.0.0.1:1")
	if err := mgr.Store().Update(job, 0); err != nil {
		t.Fatal(err)
	}
	res := mgr.RunCycle()
	if len(res.Matches) != 1 || res.Notified != 0 || len(res.Errors) != 1 {
		t.Errorf("cycle = %+v", res)
	}
	if !strings.Contains(res.Errors[0].Error(), "notify customer") {
		t.Errorf("error = %v", res.Errors[0])
	}
}

// TestFairShareAcrossDaemons: the manager's fair-share config reaches
// the negotiation.
func TestFairShareAcrossDaemons(t *testing.T) {
	mgr := NewManager(ManagerConfig{
		Matchmaker: matchmaker.Config{FairShare: true},
	})
	if mgr.Cycles() != 0 {
		t.Fatal("fresh manager has cycles")
	}
	// Smoke only: detailed fairness is tested in the matchmaker
	// package; here we just confirm the wiring accepts the config.
	res := mgr.RunCycle()
	if res.Requests != 0 {
		t.Errorf("requests = %d", res.Requests)
	}
}
