package pool

// Daemon self-advertisement: every daemon periodically publishes a
// Machine-style classad describing its own health, so the pool
// monitors itself through its own matchmaking substrate — "All
// entities are represented with classads" (paper §4), the monitoring
// system included. The collector tracks Type == "Daemon" ads past
// expiry (collector.DaemonHealth), which is the absent-ad detection
// behind `cstatus -ha`: a daemon that stops advertising turns
// "missing" instead of silently vanishing.

import (
	"fmt"

	"repro/internal/classad"
	"repro/internal/obs"
)

// daemonAdLifetime is the validity of a manager-published self-ad in
// pool-clock seconds: short enough that a dead daemon is surfaced
// within a couple of negotiation periods, long enough to survive a
// slow cycle.
const daemonAdLifetime = 120

// DaemonAd builds the self-advertisement for one daemon: kind names
// the role ("collector", "negotiator", "ca", "ra"), name the instance.
// The ad carries the health signals a monitor needs to detect a
// wedged (not just dead) daemon: a digest of the metrics registry
// (unchanging digest = no activity), event/span ring totals and drop
// counts. Callers add role-specific attributes (LeaderEpoch,
// WALGeneration) before advertising.
func DaemonAd(kind, name string, o *obs.Obs) *classad.Ad {
	ad := classad.NewAd()
	ad.SetString(classad.AttrType, "Daemon")
	ad.SetString(classad.AttrName, fmt.Sprintf("daemon/%s/%s", kind, name))
	ad.SetString("Daemon", kind)
	ad.SetString("MetricsDigest", o.Registry().Digest())
	ad.SetInt("EventsTotal", o.Events().Total())
	ad.SetInt("EventsDropped", o.Events().Dropped())
	ad.SetInt("SpansTotal", o.Spans().Total())
	ad.SetInt("SpansDropped", o.Spans().Dropped())
	return ad
}

// publishDaemonAds stores the manager's own self-ads (its collector
// and co-located negotiator halves) after each cycle. Skipped when
// the manager is uninstrumented — there is no health to report.
func (m *Manager) publishDaemonAds() {
	if m.obs == nil {
		return
	}
	name := m.haName
	if name == "" {
		name = "pool"
	}
	for _, kind := range []string{"collector", "negotiator"} {
		ad := DaemonAd(kind, name, m.obs)
		if kind == "negotiator" {
			m.mu.Lock()
			ad.SetInt("LeaderEpoch", int64(m.epoch))
			m.mu.Unlock()
			if m.ledger != nil {
				ad.SetInt("WALGeneration", int64(m.ledger.Stats().Gen))
			}
		} else if stats, ok := m.store.LogStats(); ok {
			ad.SetInt("WALGeneration", int64(stats.Gen))
		}
		if err := m.store.Update(ad, daemonAdLifetime); err != nil {
			m.logf("pool: publishing %s self-ad: %v", kind, err)
		}
	}
}
