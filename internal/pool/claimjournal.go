package pool

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"repro/internal/store"
)

// ClaimJournal persists a customer agent's claim lifecycle. The
// claiming protocol leaves the CA as the only party who knows which
// providers it is holding: the matchmaker forgot the match the moment
// it was made (the paper's stateless-matchmaker property), and the RA
// knows only that *someone* claimed it. A CA that crashes mid-flight
// therefore leaks claims — machines held by a dead customer until
// their ads expire — and forgets which running jobs it must later
// release. The journal records each transition as it happens:
//
//	begin(job, provider)   before the claim dial — outcome unknown
//	grant(job)             the provider accepted; job is running there
//	abort(job)             the provider rejected / the dial failed
//	release(job)           the claim was relinquished (or preempted)
//	epoch(e)               a higher negotiator epoch was observed
//
// On restart the daemon reconciles (EnableJournal): claims still in
// "begin" have unknown outcomes, so the provider is sent an idempotent
// RELEASE and the job requeues; "granted" claims are restored so the
// job resumes running where it was. The journaled epoch keeps the
// match-fencing high-water mark across restarts — without it a
// restarted CA would accept a deposed negotiator's stale matches.

// claimSnapshotEvery bounds WAL growth: once this many records have
// accumulated, the next transition folds live state into a snapshot.
const claimSnapshotEvery = 128

// Claim phases.
const (
	PhaseClaiming = "claiming" // begin journaled, outcome unknown
	PhaseGranted  = "granted"  // provider accepted
)

// ClaimRecord is one live claim as the journal knows it.
type ClaimRecord struct {
	Job     int    `json:"job"`
	Machine string `json:"machine"`
	Contact string `json:"contact"`
	Phase   string `json:"phase"`
}

// claimOp is one journaled transition.
type claimOp struct {
	Op      string `json:"op"` // begin | grant | abort | release | epoch
	Job     int    `json:"job,omitempty"`
	Machine string `json:"machine,omitempty"`
	Contact string `json:"contact,omitempty"`
	Epoch   uint64 `json:"epoch,omitempty"`
}

// claimSnapshot is the journal's whole-state image.
type claimSnapshot struct {
	Claims []ClaimRecord `json:"claims"`
	Epoch  uint64        `json:"epoch"`
}

// ClaimJournal couples the claim table to a store.Log. It keeps its
// own mirror of live claims so snapshots need no callback into the
// daemon.
type ClaimJournal struct {
	mu     sync.Mutex
	log    *store.Log
	claims map[int]ClaimRecord
	epoch  uint64
	err    error
}

// OpenClaimJournal opens (or creates) the journal at dir and replays
// surviving state. fs selects the filesystem (nil for the real one).
func OpenClaimJournal(dir string, fs store.FS) (*ClaimJournal, error) {
	l, rec, err := store.Open(dir, fs)
	if err != nil {
		return nil, err
	}
	j := &ClaimJournal{log: l, claims: make(map[int]ClaimRecord)}
	if len(rec.Snapshot) > 0 {
		var snap claimSnapshot
		if err := json.Unmarshal(rec.Snapshot, &snap); err != nil {
			l.Close()
			return nil, fmt.Errorf("pool: corrupt claim snapshot: %w", err)
		}
		for _, c := range snap.Claims {
			j.claims[c.Job] = c
		}
		j.epoch = snap.Epoch
	}
	for _, raw := range rec.Records {
		var op claimOp
		if err := json.Unmarshal(raw, &op); err != nil {
			l.Close()
			return nil, fmt.Errorf("pool: corrupt claim record: %w", err)
		}
		switch op.Op {
		case "begin":
			j.claims[op.Job] = ClaimRecord{
				Job: op.Job, Machine: op.Machine, Contact: op.Contact, Phase: PhaseClaiming,
			}
		case "grant":
			if c, ok := j.claims[op.Job]; ok {
				c.Phase = PhaseGranted
				j.claims[op.Job] = c
			}
		case "abort", "release":
			delete(j.claims, op.Job)
		case "epoch":
			if op.Epoch > j.epoch {
				j.epoch = op.Epoch
			}
		default:
			l.Close()
			return nil, fmt.Errorf("pool: unknown claim op %q", op.Op)
		}
	}
	return j, nil
}

// Live returns the replayed (or current) claim set, sorted by job ID.
func (j *ClaimJournal) Live() []ClaimRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]ClaimRecord, 0, len(j.claims))
	for _, c := range j.claims {
		out = append(out, c)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Job < out[b].Job })
	return out
}

// Epoch returns the highest negotiator epoch the journal has seen.
func (j *ClaimJournal) Epoch() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.epoch
}

// Begin journals a claim attempt before its dial; errors are fail-stop
// (the caller should not proceed with the dial, or the claim could be
// granted with no durable trace).
func (j *ClaimJournal) Begin(job int, machine, contact string) error {
	return j.apply(claimOp{Op: "begin", Job: job, Machine: machine, Contact: contact})
}

// Grant journals a provider's acceptance.
func (j *ClaimJournal) Grant(job int) error { return j.apply(claimOp{Op: "grant", Job: job}) }

// Abort journals a rejected or failed claim attempt.
func (j *ClaimJournal) Abort(job int) error { return j.apply(claimOp{Op: "abort", Job: job}) }

// Release journals the relinquishment (or preemption, or completion)
// of a claim.
func (j *ClaimJournal) Release(job int) error { return j.apply(claimOp{Op: "release", Job: job}) }

// ObserveEpoch journals a newly observed negotiator epoch if it is
// higher than the journal's high-water mark, returning that mark.
func (j *ClaimJournal) ObserveEpoch(epoch uint64) (uint64, error) {
	j.mu.Lock()
	if epoch <= j.epoch {
		e := j.epoch
		j.mu.Unlock()
		return e, nil
	}
	j.mu.Unlock()
	if err := j.apply(claimOp{Op: "epoch", Epoch: epoch}); err != nil {
		return j.Epoch(), err
	}
	return epoch, nil
}

// apply journals one transition and mirrors it into live state.
func (j *ClaimJournal) apply(op claimOp) error {
	raw, err := json.Marshal(op)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if err := j.log.Append(raw); err != nil {
		j.err = err
		return err
	}
	switch op.Op {
	case "begin":
		j.claims[op.Job] = ClaimRecord{
			Job: op.Job, Machine: op.Machine, Contact: op.Contact, Phase: PhaseClaiming,
		}
	case "grant":
		if c, ok := j.claims[op.Job]; ok {
			c.Phase = PhaseGranted
			j.claims[op.Job] = c
		}
	case "abort", "release":
		delete(j.claims, op.Job)
	case "epoch":
		if op.Epoch > j.epoch {
			j.epoch = op.Epoch
		}
	}
	if j.log.SinceSnapshot() >= claimSnapshotEvery {
		if err := j.snapshotLocked(); err != nil {
			j.err = err
			return err
		}
	}
	return nil
}

// snapshotLocked folds live state into a new snapshot generation; the
// caller holds j.mu.
func (j *ClaimJournal) snapshotLocked() error {
	snap := claimSnapshot{Epoch: j.epoch, Claims: make([]ClaimRecord, 0, len(j.claims))}
	for _, c := range j.claims {
		snap.Claims = append(snap.Claims, c)
	}
	sort.Slice(snap.Claims, func(a, b int) bool { return snap.Claims[a].Job < snap.Claims[b].Job })
	raw, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	return j.log.Snapshot(raw)
}

// Err reports the first persistence failure (fail-stop thereafter).
func (j *ClaimJournal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Stats reports the underlying log's statistics.
func (j *ClaimJournal) Stats() store.Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.log.Stats()
}

// Close releases the log.
func (j *ClaimJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.log.Close()
}
