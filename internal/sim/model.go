package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/agent"
	"repro/internal/classad"
)

// PoolSpec configures the synthetic machine population, standing in
// for the heterogeneous, distributively owned UW-Madison pool of the
// paper. Architectures, operating systems and capacities are drawn
// from weighted mixes; a configurable fraction of machines are
// desktops whose owners come and go (the opportunistic-scheduling
// driver of §4), the rest dedicated cluster nodes.
type PoolSpec struct {
	// Machines is the pool size.
	Machines int
	// ArchMix maps architecture name to weight (e.g. INTEL:0.6,
	// SPARC:0.3, ALPHA:0.1). Empty means all INTEL.
	ArchMix map[string]float64
	// OpSysMix maps operating system to weight. Empty means all
	// SOLARIS251.
	OpSysMix map[string]float64
	// MemoryChoicesMB is the set of memory sizes machines come in;
	// empty means {32, 64, 128, 256}.
	MemoryChoicesMB []int64
	// DiskKB is the per-machine disk; zero means 323496 (Figure 1).
	DiskKB int64
	// DesktopFraction is the fraction of machines with interactive
	// owners; the rest are dedicated (always idle).
	DesktopFraction float64
	// MeanOwnerActive and MeanOwnerIdle are the means (seconds) of
	// the exponential owner activity/idleness periods on desktops.
	// Zeros mean 1800 (30 min active) and 3600 (1 h idle).
	MeanOwnerActive, MeanOwnerIdle float64
	// Classes coarsens the Mips/KFlops diversity: machines are
	// assigned one of this many speed grades (>=1); zero means 4.
	Classes int
	// RankExpr is the machines' Rank expression (their preference
	// over customers); empty means "other.Memory". Priority-
	// preemption experiments set owner-defined priorities here, e.g.
	// member(other.Owner, {"raman"}) * 10.
	RankExpr string
	// Diurnal makes desktop owners follow a day/night pattern:
	// during working hours (08:00–18:00, the Figure 1 boundary)
	// activity periods triple and idle periods shrink to a third;
	// at night the reverse — so harvested cycles concentrate at
	// night, the behaviour the paper's owners legislate with their
	// DayTime policies.
	Diurnal bool
}

func (s *PoolSpec) fill() {
	if len(s.ArchMix) == 0 {
		s.ArchMix = map[string]float64{"INTEL": 1}
	}
	if len(s.OpSysMix) == 0 {
		s.OpSysMix = map[string]float64{"SOLARIS251": 1}
	}
	if len(s.MemoryChoicesMB) == 0 {
		s.MemoryChoicesMB = []int64{32, 64, 128, 256}
	}
	if s.DiskKB == 0 {
		s.DiskKB = 323496
	}
	if s.MeanOwnerActive == 0 {
		s.MeanOwnerActive = 1800
	}
	if s.MeanOwnerIdle == 0 {
		s.MeanOwnerIdle = 3600
	}
	if s.Classes <= 0 {
		s.Classes = 4
	}
}

// meanActive returns the filled owner-activity mean.
func (s *PoolSpec) meanActive() float64 { return s.MeanOwnerActive }

// meanIdle returns the filled owner-idleness mean.
func (s *PoolSpec) meanIdle() float64 { return s.MeanOwnerIdle }

// weightedPick draws a key from a weighted map deterministically via
// rng. Iteration order is made deterministic by sorting keys.
func weightedPick(rng *rand.Rand, weights map[string]float64) string {
	keys := make([]string, 0, len(weights))
	for k := range weights {
		keys = append(keys, k)
	}
	// insertion sort for determinism without importing sort twice
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var total float64
	for _, k := range keys {
		total += weights[k]
	}
	x := rng.Float64() * total
	for _, k := range keys {
		x -= weights[k]
		if x < 0 {
			return k
		}
	}
	return keys[len(keys)-1]
}

// Machine is one simulated workstation: an RA plus its owner-activity
// state.
type Machine struct {
	Res *agent.Resource
	// Desktop machines have interactive owners; dedicated ones do
	// not.
	Desktop bool
	// OwnerActive mirrors the current owner state.
	OwnerActive bool
	// Mips is the machine's speed grade; job progress scales with it.
	Mips int64
	// claimGen invalidates scheduled completion events across
	// evictions/preemptions.
	claimGen int64
	// runningJob is the (customer, jobID) currently running, if any.
	runningCustomer string
	runningJob      int
	// busySince tracks utilization accounting.
	busySince int64
	busyTotal int64
	// ownerIdleSince is when the interactive owner last left;
	// KeyboardIdle is derived from it at advertisement time.
	ownerIdleSince int64
}

// DesktopConstraint is the owner policy applied to desktop machines:
// harvest cycles only when the owner is away (the §1 example policy:
// "if the keyboard hasn't been touched for over fifteen minutes and
// the load average is less than 0.1" — we encode owner presence via
// KeyboardIdle).
const DesktopConstraint = `KeyboardIdle > 15*60 && LoadAvg < 0.3`

// BuildPool generates the machine population from spec.
func BuildPool(spec PoolSpec, eng *Engine, env *classad.Env) []*Machine {
	spec.fill()
	rng := eng.Rand()
	machines := make([]*Machine, spec.Machines)
	for i := range machines {
		arch := weightedPick(rng, spec.ArchMix)
		opsys := weightedPick(rng, spec.OpSysMix)
		mem := spec.MemoryChoicesMB[rng.Intn(len(spec.MemoryChoicesMB))]
		grade := rng.Intn(spec.Classes) + 1
		mips := int64(50 * grade)
		desktop := rng.Float64() < spec.DesktopFraction

		ad := classad.NewAd()
		ad.SetString(classad.AttrType, "Machine")
		ad.SetString(classad.AttrName, fmt.Sprintf("node%04d.pool.sim", i))
		ad.SetString("Arch", arch)
		ad.SetString("OpSys", opsys)
		ad.SetInt("Memory", mem)
		ad.SetInt("Disk", spec.DiskKB)
		ad.SetInt("Mips", mips)
		ad.SetInt("KFlops", mips*200)
		// DistributivelyOwned is config-time truth about who controls
		// the machine: the conventional baseline's administrator can
		// only enroll machines whose owners cede control (dedicated
		// nodes), while the matchmaker serves both kinds because the
		// owner's policy travels inside the ad.
		ad.SetBool("DistributivelyOwned", desktop)
		if desktop {
			if err := ad.SetExprString(classad.AttrConstraint, DesktopConstraint); err != nil {
				panic(err)
			}
		}
		// Machines mildly prefer jobs that fit tightly in memory, a
		// typical owner-supplied Rank, unless the spec supplies an
		// owner-defined priority scheme.
		rankExpr := spec.RankExpr
		if rankExpr == "" {
			rankExpr = "other.Memory"
		}
		if err := ad.SetExprString(classad.AttrRank, rankExpr); err != nil {
			panic(err)
		}

		m := &Machine{
			Res:     agent.NewResource(ad, env),
			Desktop: desktop,
			Mips:    mips,
		}
		m.Res.SetDynamic("LoadAvg", classad.Real(0.05))
		m.Res.SetDynamic("KeyboardIdle", classad.Int(3600))
		machines[i] = m
	}
	return machines
}

// JobSpec configures the synthetic workload: a batch of jobs from a
// set of users, in the high-throughput style the paper targets (the
// metric is jobs finished per simulated day, not any single job's
// latency).
type JobSpec struct {
	// Jobs is the batch size.
	Jobs int
	// Users submit round-robin; empty means one user "u0".
	Users []string
	// MeanRuntime is the mean job CPU demand in seconds at the
	// reference speed (Mips=100); zero means 3600.
	MeanRuntime float64
	// MemoryChoicesMB is the set of job memory requirements; empty
	// means {16, 32, 64, 128}.
	MemoryChoicesMB []int64
	// ArchMix weights the architecture each job requires; empty
	// means INTEL only.
	ArchMix map[string]float64
	// OpSysMix, when non-empty, adds an operating-system requirement
	// to each job's constraint — the qualitative dimension a
	// queue-per-architecture baseline cannot see (experiment E7).
	OpSysMix map[string]float64
	// Checkpoint marks jobs as checkpointable: evictions lose no
	// banked progress (WantCheckpoint of Figure 2).
	Checkpoint bool
}

func (s *JobSpec) fill() {
	if len(s.Users) == 0 {
		s.Users = []string{"u0"}
	}
	if s.MeanRuntime == 0 {
		s.MeanRuntime = 3600
	}
	if len(s.MemoryChoicesMB) == 0 {
		s.MemoryChoicesMB = []int64{16, 32, 64, 128}
	}
	if len(s.ArchMix) == 0 {
		s.ArchMix = map[string]float64{"INTEL": 1}
	}
}

// BuildWorkload generates the customers and their queued jobs.
func BuildWorkload(spec JobSpec, eng *Engine, env *classad.Env) []*agent.Customer {
	spec.fill()
	rng := eng.Rand()
	customers := make(map[string]*agent.Customer, len(spec.Users))
	order := make([]*agent.Customer, 0, len(spec.Users))
	for _, u := range spec.Users {
		c := agent.NewCustomer(u, env)
		customers[u] = c
		order = append(order, c)
	}
	for i := 0; i < spec.Jobs; i++ {
		user := spec.Users[i%len(spec.Users)]
		mem := spec.MemoryChoicesMB[rng.Intn(len(spec.MemoryChoicesMB))]
		arch := weightedPick(rng, spec.ArchMix)
		runtime := float64(eng.Exp(spec.MeanRuntime))

		ad := classad.NewAd()
		ad.SetString(classad.AttrType, "Job")
		ad.SetString("Cmd", "run_sim")
		ad.SetInt("Memory", mem)
		if spec.Checkpoint {
			ad.SetInt("WantCheckpoint", 1)
		}
		constraint := fmt.Sprintf(
			`other.Type == "Machine" && other.Arch == %q && other.Memory >= self.Memory`,
			arch)
		if len(spec.OpSysMix) > 0 {
			opsys := weightedPick(rng, spec.OpSysMix)
			constraint += fmt.Sprintf(` && other.OpSys == %q`, opsys)
		}
		if err := ad.SetExprString(classad.AttrConstraint, constraint); err != nil {
			panic(err)
		}
		// Jobs prefer fast machines, as Figure 2's Rank does.
		if err := ad.SetExprString(classad.AttrRank, "other.Mips"); err != nil {
			panic(err)
		}
		customers[user].Submit(ad, runtime)
	}
	return order
}
