package sim

import "testing"

// TestDiurnalHarvestConcentratesAtNight: with owners following a
// day/night pattern, the matchmaker's claims cluster in the off-hours
// — the "others may only use the workstation at night" world of the
// paper's Figure 1, emerging here from owner behaviour rather than
// policy.
func TestDiurnalHarvestConcentratesAtNight(t *testing.T) {
	if testing.Short() {
		t.Skip("diurnal simulation soak; skipped in -short mode")
	}
	m := New(Config{
		Pool: PoolSpec{
			Machines:        20,
			DesktopFraction: 1.0,
			MeanOwnerActive: 3600,
			MeanOwnerIdle:   3600,
			Diurnal:         true,
			Classes:         1,
		},
		Workload: JobSpec{Jobs: 250, MeanRuntime: 1800,
			Users: []string{"u1", "u2"}},
		Seed:     47,
		Duration: 2 * 86400,
	}).Run()

	if m.Claims == 0 {
		t.Fatal("no claims at all")
	}
	var day, night int
	for h, n := range m.ClaimsByHour {
		if h >= 8 && h < 18 {
			day += n
		} else {
			night += n
		}
	}
	// Per-hour rates: 10 day hours vs 14 night hours.
	dayRate := float64(day) / 10
	nightRate := float64(night) / 14
	t.Logf("claims/hour: day %.1f, night %.1f (total %d)", dayRate, nightRate, m.Claims)
	if nightRate <= 1.5*dayRate {
		t.Errorf("night harvest rate %.1f not clearly above day rate %.1f", nightRate, dayRate)
	}
}

// TestDiurnalOffUniform: without the diurnal model, claims spread
// roughly evenly — the control for the test above.
func TestDiurnalOffUniform(t *testing.T) {
	if testing.Short() {
		t.Skip("diurnal simulation soak; skipped in -short mode")
	}
	m := New(Config{
		Pool: PoolSpec{
			Machines:        20,
			DesktopFraction: 1.0,
			MeanOwnerActive: 3600,
			MeanOwnerIdle:   3600,
			Classes:         1,
		},
		Workload: JobSpec{Jobs: 250, MeanRuntime: 1800,
			Users: []string{"u1", "u2"}},
		Seed:     47,
		Duration: 2 * 86400,
	}).Run()
	var day, night int
	for h, n := range m.ClaimsByHour {
		if h >= 8 && h < 18 {
			day += n
		} else {
			night += n
		}
	}
	dayRate := float64(day) / 10
	nightRate := float64(night) / 14
	// Within 2x of each other either way — loose, just "no strong
	// diurnal signal".
	if nightRate > 2*dayRate || dayRate > 2*nightRate {
		t.Errorf("unexpected diurnal signal without the model: day %.1f night %.1f",
			dayRate, nightRate)
	}
}
