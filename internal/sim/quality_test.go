package sim

import (
	"fmt"
	"testing"

	"repro/internal/classad"
	"repro/internal/matchmaker"
)

// buildSpeedView makes a cycle view with machines of known speeds and
// jobs that rank by other.Mips — the DESIGN.md §7 rank-vs-first-fit
// ablation fixture.
func buildSpeedView(t *testing.T, mips []int64, jobs int) *CycleView {
	t.Helper()
	view := &CycleView{}
	for i, m := range mips {
		ad := classad.NewAd()
		ad.SetString("Type", "Machine")
		ad.SetString("Name", fmt.Sprintf("m%d", i))
		ad.SetString("Arch", "INTEL")
		ad.SetInt("Memory", 128)
		ad.SetInt("Mips", m)
		view.MachineAds = append(view.MachineAds, ad)
	}
	for i := 0; i < jobs; i++ {
		ad := classad.NewAd()
		ad.SetString("Type", "Job")
		ad.SetString("Owner", fmt.Sprintf("u%d", i))
		if err := ad.SetExprString("Constraint", `other.Arch == "INTEL"`); err != nil {
			t.Fatal(err)
		}
		if err := ad.SetExprString("Rank", "other.Mips"); err != nil {
			t.Fatal(err)
		}
		view.JobAds = append(view.JobAds, ad)
	}
	return view
}

func assignedMips(view *CycleView, as []Assignment) (total int64) {
	for _, a := range as {
		m, _ := view.MachineAds[a.Machine].Eval("Mips").IntVal()
		total += m
	}
	return total
}

// TestRankSelectionMaximizesPreference: with jobs preferring fast
// machines, rank-sorted selection assigns exactly the top-k machines
// by Mips; first-fit takes the first k in scan order, which is
// strictly worse whenever a slow machine precedes a fast one.
func TestRankSelectionMaximizesPreference(t *testing.T) {
	// Slow machines deliberately first in scan order.
	mips := []int64{50, 60, 70, 200, 190, 180, 80, 90}
	view := buildSpeedView(t, mips, 3)
	env := classad.FixedEnv(0, 1)

	ranked := NewMatchmakerSchedulerCfg(matchmaker.Config{Env: env})
	firstFit := NewMatchmakerSchedulerCfg(matchmaker.Config{Env: env, FirstFit: true})

	ra := ranked.Assign(view)
	fa := firstFit.Assign(view)
	if len(ra) != 3 || len(fa) != 3 {
		t.Fatalf("assignments: ranked=%d firstfit=%d", len(ra), len(fa))
	}
	rankedTotal := assignedMips(view, ra)
	firstFitTotal := assignedMips(view, fa)
	if rankedTotal != 200+190+180 {
		t.Errorf("ranked total Mips = %d, want the top three (570)", rankedTotal)
	}
	if firstFitTotal != 50+60+70 {
		t.Errorf("first-fit total Mips = %d, want the first three (180)", firstFitTotal)
	}
	if rankedTotal <= firstFitTotal {
		t.Errorf("rank selection did not beat first-fit: %d vs %d", rankedTotal, firstFitTotal)
	}
}

// TestRankSelectionFasterCompletionInSim: the end-to-end form — on an
// underloaded heterogeneous pool, rank-seeking jobs run on fast
// machines and finish sooner in wall-clock (virtual) time.
func TestRankSelectionFasterCompletionInSim(t *testing.T) {
	mkCfg := func() Config {
		return Config{
			Pool: PoolSpec{
				Machines:        24,
				DesktopFraction: 0,
				Classes:         4, // Mips 50..200
			},
			// Few jobs: contention never forces slow machines.
			Workload: JobSpec{Jobs: 4, MeanRuntime: 7200},
			Seed:     31,
			Duration: 2 * 86400,
		}
	}
	ranked := New(mkCfg()).Run()

	cfg := mkCfg()
	probe := New(cfg)
	cfg.Scheduler = NewMatchmakerSchedulerCfg(matchmaker.Config{
		Env: probe.Env(), FirstFit: true, FairShare: true,
	})
	firstFit := New(cfg).Run()

	t.Logf("ranked:    completed=%d turnaround=%.0f", ranked.Completed, ranked.MeanTurnaround())
	t.Logf("first-fit: completed=%d turnaround=%.0f", firstFit.Completed, firstFit.MeanTurnaround())
	if ranked.Completed != 4 || firstFit.Completed != 4 {
		t.Fatalf("both should finish: %d vs %d", ranked.Completed, firstFit.Completed)
	}
	if ranked.MeanTurnaround() > firstFit.MeanTurnaround() {
		t.Errorf("rank selection turnaround %.0f > first-fit %.0f on an underloaded pool",
			ranked.MeanTurnaround(), firstFit.MeanTurnaround())
	}
}

// TestFirstFitSchedulerStillSound: first-fit is an ablation of match
// quality, never of match validity.
func TestFirstFitSchedulerStillSound(t *testing.T) {
	cfg := Config{
		Pool:     PoolSpec{Machines: 10, DesktopFraction: 0.5, Classes: 2},
		Workload: JobSpec{Jobs: 30, MeanRuntime: 1800},
		Seed:     33,
		Duration: 86400,
	}
	probe := New(cfg)
	cfg.Scheduler = NewMatchmakerSchedulerCfg(matchmaker.Config{
		Env: probe.Env(), FirstFit: true,
	})
	m := New(cfg).Run()
	if m.Completed == 0 {
		t.Error("first-fit completed nothing")
	}
	if m.FailedDispatches != 0 {
		t.Errorf("first-fit produced %d invalid dispatches", m.FailedDispatches)
	}
}
