// Package sim provides the synthetic cluster substrate that stands in
// for the paper's production Condor pool (see DESIGN.md §5,
// substitutions): a deterministic discrete-event engine with a virtual
// clock, generators for heterogeneous machines with desktop-owner
// activity models, job workload generators, and a driver that runs
// opportunistic scheduling experiments — negotiation cycles, claims
// with re-validation, preemption and eviction — entirely in virtual
// time.
package sim

import (
	"container/heap"
	"math/rand"
)

// Event is a scheduled callback.
type event struct {
	at  int64
	seq int64 // tie-break: FIFO among simultaneous events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Engine is a single-threaded discrete-event simulator. All callbacks
// run on the caller's goroutine inside Run; the virtual clock never
// moves backwards.
type Engine struct {
	now  int64
	seq  int64
	heap eventHeap
	rng  *rand.Rand
}

// NewEngine returns an engine at time 0 with a deterministic random
// stream derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() int64 { return e.now }

// Rand exposes the engine's deterministic random stream.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule queues fn to run at now+delay (a non-positive delay means
// "immediately after the current event").
func (e *Engine) Schedule(delay int64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	heap.Push(&e.heap, event{at: e.now + delay, seq: e.seq, fn: fn})
}

// Run executes events in time order until the queue empties or the
// clock passes until. Events scheduled exactly at until still run.
func (e *Engine) Run(until int64) {
	for len(e.heap) > 0 {
		next := e.heap[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.heap)
		e.now = next.at
		next.fn()
	}
	if e.now < until {
		e.now = until
	}
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.heap) }

// Exp draws an exponential variate with the given mean, floored at 1
// second so zero-length periods cannot stall state machines.
func (e *Engine) Exp(mean float64) int64 {
	if mean <= 0 {
		return 1
	}
	v := int64(e.rng.ExpFloat64() * mean)
	if v < 1 {
		v = 1
	}
	return v
}
