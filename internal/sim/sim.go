package sim

import (
	"fmt"

	"repro/internal/agent"
	"repro/internal/classad"
	"repro/internal/collector"
)

// Assignment pairs a job (index into CycleView.JobAds) with a machine
// (index into CycleView.MachineAds).
type Assignment struct {
	Job, Machine int
}

// CycleView is the negotiation-cycle snapshot handed to a Scheduler:
// the idle jobs' fresh request ads and the providers' possibly stale
// advertisements from the collector, exactly the information the
// paper's pool manager has.
type CycleView struct {
	Now        int64
	JobAds     []*classad.Ad
	MachineAds []*classad.Ad
}

// Scheduler decides which job is introduced to which machine each
// cycle. Implementations: the matchmaker (this package) and the
// conventional queue scheduler (internal/baseline).
type Scheduler interface {
	// Assign returns the cycle's pairings. Each machine index may
	// appear at most once.
	Assign(view *CycleView) []Assignment
	// EnforcesPolicies reports whether assignments respect ads'
	// Constraint expressions. The conventional baseline cannot — its
	// model has no owner policies — so its dispatches are applied
	// directly and owner activity evicts them after the fact.
	EnforcesPolicies() bool
	// Name labels the scheduler in reports.
	Name() string
}

// Metrics aggregates one simulation run. All work figures are in
// reference CPU-seconds (Mips=100).
type Metrics struct {
	Scheduler string
	// Duration is the simulated horizon in seconds.
	Duration int64
	// Completed counts finished jobs; CompletedWork their total
	// demand.
	Completed     int
	CompletedWork float64
	// Claims counts successful claims; StaleRejects counts claims
	// rejected at claim time by re-validation (the weak-consistency
	// safety net); FailedDispatches counts baseline dispatches that
	// died instantly (owner present, wrong OpSys, ...).
	Claims, StaleRejects, FailedDispatches int
	// Evictions counts owner-activity evictions; Preemptions counts
	// displacements by higher-ranked customers; WastedWork is CPU
	// time lost to unbanked progress.
	Evictions   int
	Preemptions int
	WastedWork  float64
	// BusySeconds accumulates machine-seconds spent running jobs;
	// MachineSeconds is the total capacity offered.
	BusySeconds, MachineSeconds int64
	// WaitSum accumulates (completion - submission) over completed
	// jobs, for mean turnaround.
	WaitSum int64
	// Cycles counts negotiation cycles run.
	Cycles int
	// ClaimsByHour bins claim starts by virtual hour of day, for the
	// diurnal-harvest experiment.
	ClaimsByHour [24]int
}

// Utilization returns busy machine-seconds over offered
// machine-seconds.
func (m Metrics) Utilization() float64 {
	if m.MachineSeconds == 0 {
		return 0
	}
	return float64(m.BusySeconds) / float64(m.MachineSeconds)
}

// Goodput returns completed reference CPU-seconds per simulated day.
func (m Metrics) Goodput() float64 {
	if m.Duration == 0 {
		return 0
	}
	return m.CompletedWork * 86400 / float64(m.Duration)
}

// MeanTurnaround returns the mean completion latency of finished jobs.
func (m Metrics) MeanTurnaround() float64 {
	if m.Completed == 0 {
		return 0
	}
	return float64(m.WaitSum) / float64(m.Completed)
}

// String renders a one-line summary.
func (m Metrics) String() string {
	return fmt.Sprintf(
		"%-12s completed=%4d util=%5.1f%% goodput=%8.0f cpu-s/day wasted=%8.0f evict=%4d stale=%3d failedDispatch=%4d",
		m.Scheduler, m.Completed, 100*m.Utilization(), m.Goodput(),
		m.WastedWork, m.Evictions, m.StaleRejects, m.FailedDispatches)
}

// Config assembles a simulation.
type Config struct {
	Pool     PoolSpec
	Workload JobSpec
	// Seed drives all randomness.
	Seed int64
	// Duration is the simulated horizon (seconds); zero means one
	// day.
	Duration int64
	// NegotiationPeriod is the cycle interval (default 300 s, the
	// deployed value).
	NegotiationPeriod int64
	// AdvertisePeriod is how often RAs refresh their ads (default
	// 300 s). Longer periods mean staler ads and more claim-time
	// rejections — experiment E5's knob.
	AdvertisePeriod int64
	// Scheduler defaults to the matchmaker.
	Scheduler Scheduler
	// DisableClaimCheck skips claim-time re-validation (ablation:
	// shows why weak consistency needs the claiming phase). Jobs
	// started on machines whose owner is already back are evicted
	// only at the owner's next activity event.
	DisableClaimCheck bool
	// Preemption lets claimed machines keep advertising (State =
	// "Claimed", CurrentRank published) so that customers the RA
	// ranks strictly higher can displace the incumbent — paper §4:
	// "although the workstation is currently busy, it is still
	// interested in hearing from higher priority customers".
	Preemption bool
}

// Simulation is a configured run.
type Simulation struct {
	cfg       Config
	eng       *Engine
	env       *classad.Env
	store     *collector.Store
	machines  []*Machine
	customers []*agent.Customer
	metrics   Metrics
	jobStart  map[string]int64 // "owner/id" -> submit time
}

// New builds a simulation.
func New(cfg Config) *Simulation {
	if cfg.Duration == 0 {
		cfg.Duration = 86400
	}
	if cfg.NegotiationPeriod == 0 {
		cfg.NegotiationPeriod = 300
	}
	if cfg.AdvertisePeriod == 0 {
		cfg.AdvertisePeriod = 300
	}
	eng := NewEngine(cfg.Seed)
	env := &classad.Env{
		Now:  func() int64 { return eng.Now() },
		Rand: func() float64 { return eng.Rand().Float64() },
	}
	cfg.Pool.fill()
	cfg.Workload.fill()
	s := &Simulation{
		cfg:      cfg,
		eng:      eng,
		env:      env,
		store:    collector.New(env),
		jobStart: make(map[string]int64),
	}
	s.machines = BuildPool(cfg.Pool, eng, env)
	s.customers = BuildWorkload(cfg.Workload, eng, env)
	if s.cfg.Scheduler == nil {
		s.cfg.Scheduler = NewMatchmakerScheduler(env)
	}
	return s
}

// Env exposes the simulation's virtual-time environment.
func (s *Simulation) Env() *classad.Env { return s.env }

// Machines exposes the machine population (benchmarks inspect it).
func (s *Simulation) Machines() []*Machine { return s.machines }

// Customers exposes the customer agents.
func (s *Simulation) Customers() []*agent.Customer { return s.customers }

// Run executes the simulation and returns its metrics.
func (s *Simulation) Run() Metrics {
	s.metrics = Metrics{
		Scheduler: s.cfg.Scheduler.Name(),
		Duration:  s.cfg.Duration,
	}
	// Owner activity processes on desktops.
	for _, m := range s.machines {
		if m.Desktop {
			s.scheduleOwnerFlip(m)
		}
	}
	// Periodic advertisement per machine, staggered to avoid a
	// thundering herd at t=0 — the first ads go out within one
	// period.
	for i, m := range s.machines {
		offset := int64(i) % s.cfg.AdvertisePeriod
		s.scheduleAdvertise(m, offset)
	}
	// Record submission times for turnaround accounting.
	for _, c := range s.customers {
		for _, j := range c.Snapshot() {
			s.jobStart[jobKey(c.Owner(), j.ID)] = 0
		}
	}
	// Negotiation cycles.
	s.scheduleCycle(s.cfg.NegotiationPeriod)

	s.eng.Run(s.cfg.Duration)

	// Final utilization accounting for still-busy machines.
	for _, m := range s.machines {
		if m.runningJob != 0 {
			m.busyTotal += s.eng.Now() - m.busySince
			m.runningJob = 0
		}
		s.metrics.BusySeconds += m.busyTotal
	}
	s.metrics.MachineSeconds = int64(len(s.machines)) * s.cfg.Duration
	return s.metrics
}

func jobKey(owner string, id int) string { return fmt.Sprintf("%s/%d", owner, id) }

func (s *Simulation) scheduleAdvertise(m *Machine, delay int64) {
	s.eng.Schedule(delay, func() {
		s.advertise(m)
		s.scheduleAdvertise(m, s.cfg.AdvertisePeriod)
	})
}

// advertise refreshes the machine's ad in the collector store,
// reflecting its state at this instant (the RA snapshots its live
// probes to literals). Claimed machines advertise only when the
// preemption option is on, in which case their ads carry State =
// "Claimed" and CurrentRank so higher-priority customers can displace
// the incumbent.
func (s *Simulation) advertise(m *Machine) {
	if m.runningJob != 0 && !s.cfg.Preemption {
		return
	}
	ad, err := m.Res.Advertise()
	if err != nil {
		panic(err)
	}
	if err := s.store.Update(ad, 3*s.cfg.AdvertisePeriod); err != nil {
		panic(err)
	}
}

func (s *Simulation) scheduleOwnerFlip(m *Machine) {
	activeMean := s.cfg.Pool.meanActive()
	idleMean := s.cfg.Pool.meanIdle()
	if s.cfg.Pool.Diurnal {
		hour := (s.eng.Now() % 86400) / 3600
		if hour >= 8 && hour < 18 {
			activeMean *= 3
			idleMean /= 3
		} else {
			activeMean /= 3
			idleMean *= 3
		}
	}
	var period int64
	if m.OwnerActive {
		period = s.eng.Exp(activeMean)
	} else {
		period = s.eng.Exp(idleMean)
	}
	s.eng.Schedule(period, func() {
		m.OwnerActive = !m.OwnerActive
		if m.OwnerActive {
			// The RA's probes see the owner immediately; stored
			// advertisements keep claiming idleness until they are
			// refreshed — that gap is what claim-time
			// re-validation exists for.
			m.Res.SetDynamic("KeyboardIdle", classad.Int(0))
			m.Res.SetDynamic("LoadAvg", classad.Real(1.2))
			m.Res.OwnerReturned()
			s.ownerEvicts(m)
		} else {
			m.ownerIdleSince = s.eng.Now()
			// Keyboard idleness grows with time from here; the
			// live expression keeps claim-time checks honest.
			m.Res.SetDynamicExpr("KeyboardIdle",
				classad.NewBinary(classad.OpSub,
					classad.NewCall("time"),
					classad.Lit(classad.Int(s.eng.Now()))))
			m.Res.SetDynamic("LoadAvg", classad.Real(0.05))
			m.Res.OwnerLeft()
		}
		s.scheduleOwnerFlip(m)
	})
}

// ownerEvicts handles the owner reclaiming a busy machine: the claim
// ends, unbanked progress is lost, the job requeues.
func (s *Simulation) ownerEvicts(m *Machine) {
	if m.runningJob == 0 {
		return
	}
	owner, id := m.runningCustomer, m.runningJob
	c := s.customerOf(owner)
	elapsed := s.eng.Now() - m.busySince
	speed := float64(m.Mips) / 100
	earned := float64(elapsed) * speed
	job, _ := c.Job(id)
	remaining := job.Work - job.Done
	if earned >= remaining {
		// The job would have completed at this very instant; count
		// the completion event (scheduled for now) instead.
		return
	}
	checkpoint := job.Ad.Eval("WantCheckpoint").IsTrue() ||
		job.Ad.Eval("WantCheckpoint").Identical(classad.Int(1))
	if checkpoint {
		if _, err := c.Progress(id, earned, true); err != nil {
			panic(err)
		}
	} else {
		s.metrics.WastedWork += earned
	}
	if err := c.Evicted(id); err != nil {
		panic(err)
	}
	if _, ok := m.Res.Evict(); !ok {
		panic("sim: machine busy but RA unclaimed")
	}
	s.metrics.Evictions++
	m.claimGen++
	m.busyTotal += elapsed
	m.runningJob = 0
	m.runningCustomer = ""
	s.store.Invalidate(m.Res.Name())
}

// handlePreempted settles the books when a higher-ranked customer
// displaces a running claim: the incumbent's progress is credited (or
// wasted), its job requeues, and its completion event is cancelled.
// The RA has already swapped the claim itself.
func (s *Simulation) handlePreempted(m *Machine, old agent.Claim) {
	owner := old.Customer
	id, ok := agent.JobIDOf(old.Job)
	if !ok || m.runningJob != id {
		panic("sim: preempted claim does not match running job")
	}
	c := s.customerOf(owner)
	elapsed := s.eng.Now() - m.busySince
	speed := float64(m.Mips) / 100
	earned := float64(elapsed) * speed
	job, _ := c.Job(id)
	// Cap strictly below the remaining work: crediting the full
	// remainder would mark the job Completed, but the preemption has
	// already taken its machine — it loses the photo finish.
	if remaining := job.Work - job.Done; earned >= remaining {
		earned = remaining - 1
		if earned < 0 {
			earned = 0
		}
	}
	checkpoint := job.Ad.Eval("WantCheckpoint").IsTrue() ||
		job.Ad.Eval("WantCheckpoint").Identical(classad.Int(1))
	if checkpoint && earned > 0 {
		if _, err := c.Progress(id, earned, true); err != nil {
			panic(err)
		}
	} else {
		s.metrics.WastedWork += earned
	}
	if err := c.Evicted(id); err != nil {
		panic(err)
	}
	s.metrics.Preemptions++
	m.claimGen++
	m.busyTotal += elapsed
	m.runningJob = 0
	m.runningCustomer = ""
}

func (s *Simulation) customerOf(owner string) *agent.Customer {
	for _, c := range s.customers {
		if c.Owner() == owner {
			return c
		}
	}
	panic("sim: unknown customer " + owner)
}

func (s *Simulation) scheduleCycle(delay int64) {
	s.eng.Schedule(delay, func() {
		s.runCycle()
		s.scheduleCycle(s.cfg.NegotiationPeriod)
	})
}

// runCycle gathers fresh job requests and the collector's (possibly
// stale) machine ads, asks the scheduler for assignments, and executes
// the claiming protocol for each.
func (s *Simulation) runCycle() {
	s.metrics.Cycles++
	view := &CycleView{Now: s.eng.Now()}
	type jobRef struct {
		c  *agent.Customer
		id int
	}
	var jobs []jobRef
	for _, c := range s.customers {
		for _, ad := range c.IdleRequests() {
			id, _ := agent.JobIDOf(ad)
			jobs = append(jobs, jobRef{c, id})
			view.JobAds = append(view.JobAds, ad)
		}
	}
	machineByName := make(map[string]*Machine, len(s.machines))
	for _, m := range s.machines {
		machineByName[m.Res.Name()] = m
	}
	view.MachineAds = s.store.SelectType("Machine")

	for _, a := range s.cfg.Scheduler.Assign(view) {
		jr := jobs[a.Job]
		mad := view.MachineAds[a.Machine]
		name, _ := mad.Eval(classad.AttrName).StringVal()
		m := machineByName[name]
		if m == nil {
			continue
		}
		if m.runningJob != 0 && (!s.cfg.Preemption || !s.cfg.Scheduler.EnforcesPolicies()) {
			continue // stale ad for a machine that got busy
		}
		jobAd := view.JobAds[a.Job]
		if s.cfg.Scheduler.EnforcesPolicies() && !s.cfg.DisableClaimCheck {
			ticket, _ := mad.Eval(classad.AttrTicket).StringVal()
			out := m.Res.RequestClaim(jobAd, ticket)
			if !out.Accepted {
				s.metrics.StaleRejects++
				s.store.Invalidate(name)
				continue
			}
			if out.Preempted != nil {
				s.handlePreempted(m, *out.Preempted)
			}
			s.startJob(m, jr.c, jr.id)
			continue
		}
		// Conventional dispatch (or ablated claim check): no policy
		// gate. A dispatch the job itself cannot use — wrong
		// architecture, operating system or memory, invisible to a
		// coarse queue — dies immediately and the job requeues.
		if !classad.EvalConstraint(jobAd, mad, s.env) {
			s.metrics.FailedDispatches++
			continue
		}
		m.Res.ForceClaim(jobAd)
		intruded := m.Desktop && m.OwnerActive
		s.startJob(m, jr.c, jr.id)
		if intruded {
			// The owner is at the keyboard: the intruding job is
			// killed within a minute, its work wasted — the cost a
			// policy-blind scheduler pays on distributively owned
			// machines.
			gen := m.claimGen
			s.eng.Schedule(60, func() {
				if m.claimGen == gen && m.runningJob != 0 {
					s.ownerEvicts(m)
				}
			})
		}
	}
}

// startJob begins execution and schedules completion.
func (s *Simulation) startJob(m *Machine, c *agent.Customer, id int) {
	if err := c.MarkRunning(id, m.Res.Name()); err != nil {
		panic(err)
	}
	s.metrics.Claims++
	s.metrics.ClaimsByHour[(s.eng.Now()%86400)/3600]++
	m.runningJob = id
	m.runningCustomer = c.Owner()
	m.busySince = s.eng.Now()
	m.claimGen++
	gen := m.claimGen
	job, _ := c.Job(id)
	speed := float64(m.Mips) / 100
	wall := int64((job.Work-job.Done)/speed) + 1
	s.store.Invalidate(m.Res.Name())
	s.eng.Schedule(wall, func() {
		if m.claimGen != gen || m.runningJob != id {
			return // evicted in the meantime
		}
		remaining := 0.0
		if j, ok := c.Job(id); ok {
			remaining = j.Work - j.Done
		}
		done, err := c.Progress(id, remaining, false)
		if err != nil {
			panic(err)
		}
		if !done {
			panic("sim: completion event without completion")
		}
		s.metrics.Completed++
		s.metrics.CompletedWork += job.Work
		s.metrics.WaitSum += s.eng.Now() - s.jobStart[jobKey(c.Owner(), id)]
		m.busyTotal += s.eng.Now() - m.busySince
		m.runningJob = 0
		m.runningCustomer = ""
		if err := m.Res.Release(c.Owner()); err != nil {
			panic(err)
		}
		// The machine rejoins the pool immediately (advertise on
		// state change).
		s.advertise(m)
	})
}
