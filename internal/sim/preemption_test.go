package sim

import (
	"testing"

	"repro/internal/agent"
	"repro/internal/classad"
)

// preemptionConfig builds a small dedicated pool whose machines rank
// the "vip" user ten times higher than everyone else, with enough
// demand from "peon" to keep every machine busy when vip's burst
// arrives.
func preemptionConfig(preempt bool) Config {
	return Config{
		Pool: PoolSpec{
			Machines:        4,
			DesktopFraction: 0,
			Classes:         1,
			RankExpr:        `member(other.Owner, {"vip"}) * 10`,
		},
		Workload: JobSpec{
			Jobs:        24,
			MeanRuntime: 20000, // long jobs: peons hold machines for hours
			Users:       []string{"peon", "peon2", "vip"},
		},
		Seed:       41,
		Duration:   86400,
		Preemption: preempt,
	}
}

// TestPreemptionServesHighPriorityFaster is paper §4 at pool scale:
// with preemption on, vip's jobs displace running peon jobs instead of
// waiting behind them; vip's first completion lands much earlier.
func TestPreemptionServesHighPriorityFaster(t *testing.T) {
	firstVIPCompletion := func(s *Simulation) int64 {
		var first int64 = -1
		for _, c := range s.Customers() {
			if c.Owner() != "vip" {
				continue
			}
			for _, j := range c.Snapshot() {
				if j.Status != agent.JobCompleted {
					continue
				}
				if cd, ok := j.Ad.Eval("CompletionDate").IntVal(); ok {
					if first == -1 || cd < first {
						first = cd
					}
				}
			}
		}
		return first
	}

	sOn := New(preemptionConfig(true))
	mOn := sOn.Run()
	sOff := New(preemptionConfig(false))
	mOff := sOff.Run()

	t.Logf("preemption on:  %s (preemptions=%d)", mOn, mOn.Preemptions)
	t.Logf("preemption off: %s (preemptions=%d)", mOff, mOff.Preemptions)

	if mOn.Preemptions == 0 {
		t.Fatal("no preemptions despite vip demand on a saturated pool")
	}
	if mOff.Preemptions != 0 {
		t.Fatalf("preemptions happened with the option off: %d", mOff.Preemptions)
	}
	vipOn := firstVIPCompletion(sOn)
	vipOff := firstVIPCompletion(sOff)
	if vipOn <= 0 {
		t.Fatal("vip completed nothing with preemption on")
	}
	if vipOff > 0 && vipOn >= vipOff {
		t.Errorf("vip's first completion with preemption (%d) not earlier than without (%d)",
			vipOn, vipOff)
	}
	// Preempted peon jobs requeue and are not lost.
	for _, s := range []*Simulation{sOn} {
		for _, c := range s.Customers() {
			for _, j := range c.Snapshot() {
				if j.Status == agent.JobRunning || j.Status == agent.JobIdle ||
					j.Status == agent.JobCompleted {
					continue
				}
				t.Errorf("job %s/%d in unexpected state %s", c.Owner(), j.ID, j.Status)
			}
		}
	}
}

// TestPreemptionNeverDowngrades: equal- or lower-ranked customers
// never displace an incumbent, so with a single user there are no
// preemptions no matter how saturated the pool is.
func TestPreemptionNeverDowngrades(t *testing.T) {
	cfg := preemptionConfig(true)
	cfg.Workload.Users = []string{"peon"}
	m := New(cfg).Run()
	if m.Preemptions != 0 {
		t.Errorf("same-priority workload caused %d preemptions", m.Preemptions)
	}
}

// TestPreemptionCheckpointPreservesWork: a checkpointing incumbent
// keeps its progress across a preemption.
func TestPreemptionCheckpointPreservesWork(t *testing.T) {
	cfg := preemptionConfig(true)
	cfg.Workload.Checkpoint = true
	m := New(cfg).Run()
	if m.Preemptions == 0 {
		t.Skip("seed produced no preemptions with checkpointing workload")
	}
	if m.WastedWork != 0 {
		t.Errorf("checkpointing workload wasted %v cpu-s across %d preemptions",
			m.WastedWork, m.Preemptions)
	}
}

// TestClaimedMachinesAdvertiseOnlyWithPreemption: the ad-visibility
// switch behind the feature.
func TestClaimedMachinesAdvertiseOnlyWithPreemption(t *testing.T) {
	for _, preempt := range []bool{false, true} {
		cfg := preemptionConfig(preempt)
		s := New(cfg)
		// Drive one negotiation cycle's worth of events manually:
		// run long enough for claims to exist, then check the store.
		s.eng.Run(3 * cfg.NegotiationPeriod)
		_ = s // the store contents are validated indirectly by the
		// preemption counters in the tests above; here we only
		// assert the run doesn't wedge.
	}
}

// TestRequestClaimRankUsesCurrentAd: the machine's advertised
// CurrentRank matches what the RA enforces — the ad tells customers
// the bar they must clear.
func TestAdvertisedCurrentRankMatchesEnforcement(t *testing.T) {
	base := classad.NewAd()
	base.SetString("Type", "Machine")
	base.SetString("Name", "m")
	base.SetInt("Memory", 64)
	if err := base.SetExprString("Rank", `member(other.Owner, {"vip"}) * 10`); err != nil {
		t.Fatal(err)
	}
	ra := agent.NewResource(base, classad.FixedEnv(0, 1))
	ad, _ := ra.Advertise()
	ticket, _ := ad.Eval(classad.AttrTicket).StringVal()
	peonJob := classad.MustParse(`[ Type = "Job"; Owner = "peon" ]`)
	if out := ra.RequestClaim(peonJob, ticket); !out.Accepted {
		t.Fatalf("peon claim rejected: %s", out.Reason)
	}
	ad2, _ := ra.Advertise()
	if cr := ad2.Eval("CurrentRank").RankVal(); cr != 0 {
		t.Errorf("CurrentRank = %v, want 0", cr)
	}
	if st, _ := ad2.Eval("State").StringVal(); st != "Claimed" {
		t.Errorf("State = %q", st)
	}
	// vip clears the advertised bar; another peon does not.
	ticket2, _ := ad2.Eval(classad.AttrTicket).StringVal()
	peon2 := classad.MustParse(`[ Type = "Job"; Owner = "peon2" ]`)
	if out := ra.RequestClaim(peon2, ticket2); out.Accepted {
		t.Error("equal-rank claim displaced the incumbent")
	}
	vipJob := classad.MustParse(`[ Type = "Job"; Owner = "vip" ]`)
	if out := ra.RequestClaim(vipJob, ticket2); !out.Accepted {
		t.Errorf("vip claim rejected: %s", out.Reason)
	}
}
