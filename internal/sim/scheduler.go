package sim

import (
	"repro/internal/classad"
	"repro/internal/matchmaker"
)

// MatchmakerScheduler adapts the matchmaking algorithm to the
// simulator's Scheduler interface.
type MatchmakerScheduler struct {
	mm *matchmaker.Matchmaker
}

// NewMatchmakerScheduler builds a matchmaking scheduler with fair
// share enabled (the deployed configuration).
func NewMatchmakerScheduler(env *classad.Env) *MatchmakerScheduler {
	return &MatchmakerScheduler{
		mm: matchmaker.New(matchmaker.Config{Env: env, FairShare: true}),
	}
}

// NewMatchmakerSchedulerCfg builds a matchmaking scheduler with an
// explicit configuration (used by the aggregation and first-fit
// ablation benchmarks).
func NewMatchmakerSchedulerCfg(cfg matchmaker.Config) *MatchmakerScheduler {
	return &MatchmakerScheduler{mm: matchmaker.New(cfg)}
}

// Name implements Scheduler.
func (s *MatchmakerScheduler) Name() string { return "matchmaker" }

// EnforcesPolicies implements Scheduler: matches respect both sides'
// constraints.
func (s *MatchmakerScheduler) EnforcesPolicies() bool { return true }

// Assign implements Scheduler by running one negotiation cycle over
// the view.
func (s *MatchmakerScheduler) Assign(view *CycleView) []Assignment {
	jobIdx := make(map[*classad.Ad]int, len(view.JobAds))
	for i, ad := range view.JobAds {
		jobIdx[ad] = i
	}
	machIdx := make(map[*classad.Ad]int, len(view.MachineAds))
	for i, ad := range view.MachineAds {
		machIdx[ad] = i
	}
	matches := s.mm.Negotiate(view.JobAds, view.MachineAds)
	out := make([]Assignment, 0, len(matches))
	for _, m := range matches {
		out = append(out, Assignment{Job: jobIdx[m.Request], Machine: machIdx[m.Offer]})
	}
	return out
}
