package sim

import (
	"testing"

	"repro/internal/agent"
	"repro/internal/classad"
)

func TestBuildPoolShape(t *testing.T) {
	eng := NewEngine(1)
	env := classad.FixedEnv(0, 1)
	spec := PoolSpec{
		Machines:        50,
		ArchMix:         map[string]float64{"INTEL": 0.5, "SPARC": 0.5},
		DesktopFraction: 0.5,
	}
	machines := BuildPool(spec, eng, env)
	if len(machines) != 50 {
		t.Fatalf("pool size = %d", len(machines))
	}
	arch := map[string]int{}
	desktops := 0
	for _, m := range machines {
		ad, err := m.Res.Advertise()
		if err != nil {
			t.Fatal(err)
		}
		a, _ := ad.Eval("Arch").StringVal()
		arch[a]++
		if m.Desktop {
			desktops++
			if _, ok := ad.Lookup(classad.AttrConstraint); !ok {
				t.Error("desktop without an owner policy")
			}
		}
		if mem, ok := ad.Eval("Memory").IntVal(); !ok || mem < 32 {
			t.Errorf("Memory = %v", ad.Eval("Memory"))
		}
		if name, _ := ad.Eval("Name").StringVal(); name == "" {
			t.Error("machine without a Name")
		}
	}
	// With a 50/50 mix over 50 machines, both architectures appear.
	if arch["INTEL"] == 0 || arch["SPARC"] == 0 {
		t.Errorf("arch mix = %v", arch)
	}
	if desktops == 0 || desktops == 50 {
		t.Errorf("desktops = %d, want a genuine mixture", desktops)
	}
}

func TestBuildPoolDeterministic(t *testing.T) {
	build := func() []string {
		eng := NewEngine(99)
		machines := BuildPool(PoolSpec{Machines: 20, DesktopFraction: 0.3,
			ArchMix: map[string]float64{"INTEL": 0.7, "SPARC": 0.3}}, eng, classad.FixedEnv(0, 1))
		var sigs []string
		for _, m := range machines {
			sigs = append(sigs, m.Res.Name())
		}
		return sigs
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pool differs at %d", i)
		}
	}
}

func TestBuildWorkloadShape(t *testing.T) {
	eng := NewEngine(2)
	customers := BuildWorkload(JobSpec{
		Jobs:  30,
		Users: []string{"alice", "bob", "carol"},
	}, eng, classad.FixedEnv(0, 1))
	if len(customers) != 3 {
		t.Fatalf("customers = %d", len(customers))
	}
	total := 0
	for _, c := range customers {
		jobs := c.Snapshot()
		total += len(jobs)
		for _, j := range jobs {
			if j.Work <= 0 {
				t.Errorf("job %d of %s has work %v", j.ID, c.Owner(), j.Work)
			}
			if _, ok := classad.ConstraintOf(j.Ad); !ok {
				t.Error("job without constraint")
			}
		}
	}
	if total != 30 {
		t.Errorf("total jobs = %d", total)
	}
}

// TestSimulationDedicatedPoolCompletesEverything: a dedicated
// homogeneous pool with light load finishes the whole batch — the
// simulator's conservation sanity check.
func TestSimulationDedicatedPoolCompletesEverything(t *testing.T) {
	s := New(Config{
		Pool:     PoolSpec{Machines: 20, DesktopFraction: 0, Classes: 1},
		Workload: JobSpec{Jobs: 40, MeanRuntime: 1800, Users: []string{"u1", "u2"}},
		Seed:     7,
		Duration: 4 * 86400,
	})
	m := s.Run()
	if m.Completed != 40 {
		t.Errorf("completed = %d of 40 (metrics: %s)", m.Completed, m)
	}
	if m.Evictions != 0 {
		t.Errorf("evictions on a dedicated pool = %d", m.Evictions)
	}
	if m.Utilization() <= 0 || m.Utilization() > 1 {
		t.Errorf("utilization = %v", m.Utilization())
	}
	if m.Cycles == 0 {
		t.Error("no negotiation cycles ran")
	}
}

// TestSimulationOpportunistic is experiment E8's smoke form: on a
// desktop pool, cycles are harvested while owners are away, evictions
// happen, and checkpointing jobs waste no work.
func TestSimulationOpportunistic(t *testing.T) {
	base := Config{
		Pool: PoolSpec{
			Machines:        30,
			DesktopFraction: 1.0,
			MeanOwnerActive: 1800,
			MeanOwnerIdle:   7200,
			Classes:         1,
		},
		Workload: JobSpec{Jobs: 120, MeanRuntime: 3600, Users: []string{"u1", "u2", "u3"}},
		Seed:     11,
		Duration: 2 * 86400,
	}
	m := New(base).Run()
	if m.Completed == 0 {
		t.Fatalf("no jobs completed on the desktop pool: %s", m)
	}
	if m.Evictions == 0 {
		t.Error("no owner evictions over two days of desktop activity")
	}
	// Checkpointing eliminates wasted work.
	ckpt := base
	ckpt.Workload.Checkpoint = true
	mc := New(ckpt).Run()
	if mc.WastedWork != 0 {
		t.Errorf("checkpointing workload wasted %v cpu-s", mc.WastedWork)
	}
	if m.WastedWork == 0 && m.Evictions > 0 {
		t.Error("non-checkpointing evictions should waste work")
	}
	if mc.Completed < m.Completed {
		t.Errorf("checkpointing completed %d < non-checkpointing %d", mc.Completed, m.Completed)
	}
}

// TestSimulationPolicyNeverViolated: with the matchmaker, no job ever
// starts on a desktop whose owner is active (claims re-validate), so
// every eviction stems from an owner returning mid-run.
func TestSimulationStaleClaimsCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation soak; skipped in -short mode")
	}
	// Long advertise period = very stale ads = claim-time rejections.
	s := New(Config{
		Pool: PoolSpec{
			Machines:        20,
			DesktopFraction: 1.0,
			MeanOwnerActive: 900,
			MeanOwnerIdle:   1800, // rapid flapping
			Classes:         1,
		},
		Workload:          JobSpec{Jobs: 100, MeanRuntime: 1200},
		Seed:              3,
		Duration:          86400,
		AdvertisePeriod:   1800, // ads go stale quickly relative to flapping
		NegotiationPeriod: 300,
	})
	m := s.Run()
	if m.StaleRejects == 0 {
		t.Errorf("expected stale-claim rejections with flapping owners: %s", m)
	}
	if m.Completed == 0 {
		t.Error("system made no progress despite staleness")
	}
}

// TestSimulationAblationNoClaimCheck: disabling claim-time
// re-validation turns would-be rejections into wasted dispatches onto
// owner-occupied machines.
func TestSimulationAblationNoClaimCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation soak; skipped in -short mode")
	}
	cfg := Config{
		Pool: PoolSpec{
			Machines:        20,
			DesktopFraction: 1.0,
			MeanOwnerActive: 1800,
			MeanOwnerIdle:   1800,
			Classes:         1,
		},
		Workload:          JobSpec{Jobs: 100, MeanRuntime: 1200},
		Seed:              5,
		Duration:          86400,
		AdvertisePeriod:   1800,
		DisableClaimCheck: true,
	}
	m := New(cfg).Run()
	withCheck := cfg
	withCheck.DisableClaimCheck = false
	mc := New(withCheck).Run()
	if m.StaleRejects != 0 {
		t.Errorf("ablated run still counted %d stale rejects", m.StaleRejects)
	}
	if mc.StaleRejects == 0 {
		t.Errorf("checked run caught no stale claims")
	}
	// The ablated run wastes at least as much work (usually far
	// more) because intrusions run for a minute before dying.
	if m.Evictions <= mc.Evictions {
		t.Logf("note: ablated evictions %d vs checked %d", m.Evictions, mc.Evictions)
	}
}

// TestSimulationFairShareAcrossUsers: the matchmaker's fair share
// spreads a contended pool across users.
func TestSimulationFairShare(t *testing.T) {
	s := New(Config{
		Pool:     PoolSpec{Machines: 5, DesktopFraction: 0, Classes: 1},
		Workload: JobSpec{Jobs: 60, MeanRuntime: 3600, Users: []string{"a", "b", "c"}},
		Seed:     13,
		Duration: 86400,
	})
	s.Run()
	done := map[string]int{}
	for _, c := range s.Customers() {
		for _, j := range c.Snapshot() {
			if j.Status == agent.JobCompleted {
				done[c.Owner()]++
			}
		}
	}
	for user, n := range done {
		if n == 0 {
			t.Errorf("user %s starved: %v", user, done)
		}
	}
	if len(done) != 3 {
		t.Errorf("served users = %v", done)
	}
}

func TestMetricsDerivations(t *testing.T) {
	m := Metrics{
		Duration:       86400,
		Completed:      10,
		CompletedWork:  36000,
		BusySeconds:    43200,
		MachineSeconds: 86400,
		WaitSum:        100000,
	}
	if u := m.Utilization(); u != 0.5 {
		t.Errorf("utilization = %v", u)
	}
	if g := m.Goodput(); g != 36000 {
		t.Errorf("goodput = %v", g)
	}
	if w := m.MeanTurnaround(); w != 10000 {
		t.Errorf("turnaround = %v", w)
	}
	var zero Metrics
	if zero.Utilization() != 0 || zero.Goodput() != 0 || zero.MeanTurnaround() != 0 {
		t.Error("zero metrics should not divide by zero")
	}
	if zero.String() == "" {
		t.Error("empty summary")
	}
}

func TestSimulationDeterminism(t *testing.T) {
	cfg := Config{
		Pool:     PoolSpec{Machines: 15, DesktopFraction: 0.5, Classes: 2},
		Workload: JobSpec{Jobs: 50, MeanRuntime: 2400, Users: []string{"x", "y"}},
		Seed:     21,
		Duration: 86400,
	}
	a := New(cfg).Run()
	b := New(cfg).Run()
	if a.Completed != b.Completed || a.Evictions != b.Evictions ||
		a.StaleRejects != b.StaleRejects || a.BusySeconds != b.BusySeconds {
		t.Errorf("same seed, different outcomes:\n%s\n%s", a, b)
	}
}
