package sim

import (
	"testing"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var log []int
	e.Schedule(30, func() { log = append(log, 3) })
	e.Schedule(10, func() { log = append(log, 1) })
	e.Schedule(20, func() { log = append(log, 2) })
	e.Run(100)
	if len(log) != 3 || log[0] != 1 || log[1] != 2 || log[2] != 3 {
		t.Errorf("order = %v", log)
	}
	if e.Now() != 100 {
		t.Errorf("now = %d, want clock advanced to horizon", e.Now())
	}
}

func TestEngineFIFOAmongSimultaneous(t *testing.T) {
	e := NewEngine(1)
	var log []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(10, func() { log = append(log, i) })
	}
	e.Run(10)
	for i, v := range log {
		if v != i {
			t.Fatalf("simultaneous events out of order: %v", log)
		}
	}
}

func TestEngineHorizonExclusive(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.Schedule(10, func() { ran++ })
	e.Schedule(11, func() { ran++ })
	e.Run(10)
	if ran != 1 {
		t.Errorf("ran = %d, want only the event at t<=10", ran)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d", e.Pending())
	}
	// Resuming picks the remaining event up.
	e.Run(20)
	if ran != 2 {
		t.Errorf("after resume ran = %d", ran)
	}
}

func TestEngineSelfScheduling(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			e.Schedule(5, tick)
		}
	}
	e.Schedule(5, tick)
	e.Run(1000)
	if count != 10 {
		t.Errorf("ticks = %d", count)
	}
	if e.Now() != 1000 {
		t.Errorf("now = %d", e.Now())
	}
}

func TestEngineNegativeDelayRunsNow(t *testing.T) {
	e := NewEngine(1)
	order := []string{}
	e.Schedule(10, func() {
		e.Schedule(-5, func() { order = append(order, "inner") })
		order = append(order, "outer")
	})
	e.Run(10)
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Errorf("order = %v", order)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []int64 {
		e := NewEngine(42)
		var draws []int64
		for i := 0; i < 10; i++ {
			draws = append(draws, e.Exp(100))
		}
		return draws
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestEngineExpPositive(t *testing.T) {
	e := NewEngine(7)
	for i := 0; i < 100; i++ {
		if v := e.Exp(300); v < 1 {
			t.Fatalf("Exp returned %d", v)
		}
	}
	if e.Exp(0) != 1 || e.Exp(-5) != 1 {
		t.Error("non-positive mean should floor at 1")
	}
}
