// Package submit parses submit-description files — the batch-oriented
// front end the deployed system's users actually wrote, which the
// submission tool translates into the job classads of the paper's
// Figure 2. A submit file sets parameters line by line and emits jobs
// with "queue [N]" statements; parameters persist across queue
// statements so a single file can describe a heterogeneous batch:
//
//	executable   = run_sim
//	arguments    = -Q 17 $(Process)
//	memory       = 31
//	requirements = other.Arch == "INTEL" && other.OpSys == "SOLARIS251"
//	rank         = KFlops/1E3 + other.Memory/32
//	checkpoint   = true
//	work         = 3600
//	queue 5
//
//	memory = 128
//	queue 2
//
// The macros $(Process) (0-based index within a queue statement) and
// $(Cluster) (the submission's cluster number) substitute into string
// values, as users of the deployed system expect.
package submit

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/classad"
)

// Job is one queued job produced by a submit file.
type Job struct {
	// Ad is the job's classad, in the Figure 2 shape.
	Ad *classad.Ad
	// Work is the job's synthetic CPU demand in seconds (the "work"
	// parameter; zero if unset).
	Work float64
	// Cluster and Process identify the job within the submission.
	Cluster, Process int
}

// knownKeys maps submit-file parameters to the classad attributes they
// set. Expression-valued parameters parse as classad expressions;
// string-valued ones become string literals.
var exprKeys = map[string]string{
	"requirements": classad.AttrConstraint,
	"constraint":   classad.AttrConstraint,
	"rank":         classad.AttrRank,
}

var stringKeys = map[string]string{
	"executable": "Cmd",
	"arguments":  "Args",
	"initialdir": "Iwd",
	"input":      "In",
	"output":     "Out",
	"error":      "Err",
}

var intKeys = map[string]string{
	"memory": "Memory",
	"disk":   "Disk",
}

var boolKeys = map[string]string{
	"checkpoint":      "WantCheckpoint",
	"remote_syscalls": "WantRemoteSyscalls",
}

// Parse reads a submit file and expands it into jobs. cluster is the
// submission's cluster number (for $(Cluster)).
func Parse(src string, cluster int) ([]Job, error) {
	type param struct {
		key, value string
		line       int
	}
	current := map[string]param{}
	var order []string
	setParam := func(key, value string, line int) {
		k := strings.ToLower(key)
		if _, seen := current[k]; !seen {
			order = append(order, k)
		}
		current[k] = param{key: key, value: value, line: line}
	}

	var jobs []Job
	emit := func(n, line int) error {
		for i := 0; i < n; i++ {
			ad := classad.NewAd()
			ad.SetString(classad.AttrType, "Job")
			var work float64
			for _, k := range order {
				p := current[k]
				value := expandMacros(p.value, cluster, i)
				switch {
				case k == "work":
					w, err := strconv.ParseFloat(value, 64)
					if err != nil {
						return fmt.Errorf("submit: line %d: bad work %q", p.line, value)
					}
					work = w
				case exprKeys[k] != "":
					e, err := classad.ParseExpr(value)
					if err != nil {
						return fmt.Errorf("submit: line %d: %s: %v", p.line, p.key, err)
					}
					ad.Set(exprKeys[k], e)
				case stringKeys[k] != "":
					ad.SetString(stringKeys[k], value)
				case intKeys[k] != "":
					v, err := strconv.ParseInt(value, 10, 64)
					if err != nil {
						return fmt.Errorf("submit: line %d: %s must be an integer, got %q",
							p.line, p.key, value)
					}
					ad.SetInt(intKeys[k], v)
				case boolKeys[k] != "":
					switch strings.ToLower(value) {
					case "true", "yes", "1":
						ad.SetInt(boolKeys[k], 1)
					case "false", "no", "0":
						ad.SetInt(boolKeys[k], 0)
					default:
						return fmt.Errorf("submit: line %d: %s must be boolean, got %q",
							p.line, p.key, value)
					}
				default:
					// Unknown keys become string attributes with
					// their original spelling — the extensibility
					// users rely on ("+ProjectName = ..." in later
					// systems).
					name := strings.TrimPrefix(p.key, "+")
					ad.SetString(name, value)
				}
			}
			ad.SetInt("Cluster", int64(cluster))
			ad.SetInt("Process", int64(i))
			jobs = append(jobs, Job{Ad: ad, Work: work, Cluster: cluster, Process: i})
		}
		return nil
	}

	queued := false
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "//") {
			continue
		}
		lower := strings.ToLower(line)
		if lower == "queue" || strings.HasPrefix(lower, "queue ") || strings.HasPrefix(lower, "queue\t") {
			n := 1
			rest := strings.TrimSpace(line[len("queue"):])
			if rest != "" {
				v, err := strconv.Atoi(rest)
				if err != nil || v < 1 {
					return nil, fmt.Errorf("submit: line %d: bad queue count %q", lineNo+1, rest)
				}
				n = v
			}
			if err := emit(n, lineNo+1); err != nil {
				return nil, err
			}
			queued = true
			continue
		}
		eq := strings.Index(line, "=")
		if eq < 1 {
			return nil, fmt.Errorf("submit: line %d: expected 'key = value' or 'queue', got %q",
				lineNo+1, line)
		}
		key := strings.TrimSpace(line[:eq])
		value := strings.TrimSpace(line[eq+1:])
		if key == "" {
			return nil, fmt.Errorf("submit: line %d: empty parameter name", lineNo+1)
		}
		setParam(key, value, lineNo+1)
	}
	if !queued {
		return nil, fmt.Errorf("submit: no queue statement — nothing submitted")
	}
	return jobs, nil
}

// expandMacros substitutes $(Cluster) and $(Process), case-
// insensitively.
func expandMacros(s string, cluster, process int) string {
	out := s
	for _, m := range []struct {
		name  string
		value int
	}{{"cluster", cluster}, {"process", process}} {
		for _, spelling := range []string{
			"$(" + m.name + ")",
			"$(" + strings.ToUpper(m.name[:1]) + m.name[1:] + ")",
			"$(" + strings.ToUpper(m.name) + ")",
		} {
			out = strings.ReplaceAll(out, spelling, strconv.Itoa(m.value))
		}
	}
	return out
}
