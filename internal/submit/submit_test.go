package submit

import (
	"strconv"
	"testing"

	"repro/internal/classad"
)

const basicFile = `
# the paper's Figure 2 job, submit-file style
executable   = run_sim
arguments    = -Q 17 3200 10
initialdir   = /usr/raman/sim2
memory       = 31
requirements = other.Type == "Machine" && Arch == "INTEL" && other.Memory >= self.Memory
rank         = KFlops/1E3 + other.Memory/32
checkpoint   = true
remote_syscalls = true
work         = 3600
queue
`

func TestParseBasic(t *testing.T) {
	jobs, err := Parse(basicFile, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	j := jobs[0]
	if j.Work != 3600 || j.Cluster != 7 || j.Process != 0 {
		t.Errorf("job meta = %+v", j)
	}
	ad := j.Ad
	checks := map[string]classad.Value{
		"Type":               classad.Str("Job"),
		"Cmd":                classad.Str("run_sim"),
		"Args":               classad.Str("-Q 17 3200 10"),
		"Iwd":                classad.Str("/usr/raman/sim2"),
		"Memory":             classad.Int(31),
		"WantCheckpoint":     classad.Int(1),
		"WantRemoteSyscalls": classad.Int(1),
		"Cluster":            classad.Int(7),
		"Process":            classad.Int(0),
	}
	for name, want := range checks {
		if got := ad.Eval(name); !got.Identical(want) {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	// The generated ad matches the Figure 1 machine like Figure 2
	// does.
	machine := classad.Figure1()
	ad.SetString("Owner", "raman")
	if !classad.Match(ad, machine).Matched {
		t.Error("submit-file job does not match the Figure 1 machine")
	}
}

func TestParseQueueN(t *testing.T) {
	jobs, err := Parse(`
executable = sweep
arguments  = -point $(Process) -run $(Cluster)
queue 5
`, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 5 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	for i, j := range jobs {
		args, _ := j.Ad.Eval("Args").StringVal()
		want := "-point " + strconv.Itoa(i) + " -run 42"
		if args != want {
			t.Errorf("job %d Args = %q, want %q", i, args, want)
		}
		if p, _ := j.Ad.Eval("Process").IntVal(); int(p) != i {
			t.Errorf("job %d Process = %d", i, p)
		}
	}
}

func TestParameterChangesBetweenQueues(t *testing.T) {
	jobs, err := Parse(`
executable = a
memory     = 32
queue 2
memory     = 128
queue
`, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	for i, want := range []int64{32, 32, 128} {
		if m, _ := jobs[i].Ad.Eval("Memory").IntVal(); m != want {
			t.Errorf("job %d Memory = %d, want %d", i, m, want)
		}
	}
	// Process restarts per queue statement.
	if p, _ := jobs[2].Ad.Eval("Process").IntVal(); p != 0 {
		t.Errorf("third job Process = %d, want 0", p)
	}
}

func TestUnknownKeysBecomeAttributes(t *testing.T) {
	jobs, err := Parse(`
executable   = x
+ProjectName = hep-sim
queue
`, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := jobs[0].Ad.Eval("ProjectName").StringVal(); v != "hep-sim" {
		t.Errorf("ProjectName = %q", v)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no queue":         "executable = x\n",
		"bad queue count":  "queue zero\n",
		"negative queue":   "queue -1\n",
		"bad memory":       "memory = lots\nqueue\n",
		"bad requirements": "requirements = 1 +\nqueue\n",
		"bad checkpoint":   "checkpoint = maybe\nqueue\n",
		"no equals":        "just some words\nqueue\n",
		"bad work":         "work = soon\nqueue\n",
	}
	for name, src := range cases {
		if _, err := Parse(src, 1); err == nil {
			t.Errorf("%s: expected error for %q", name, src)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	jobs, err := Parse(`
# comment
// another comment

executable = x

queue
`, 1)
	if err != nil || len(jobs) != 1 {
		t.Fatalf("err=%v jobs=%d", err, len(jobs))
	}
}

func TestConstraintSpelling(t *testing.T) {
	jobs, err := Parse("constraint = other.Memory >= 64\nqueue\n", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := classad.ConstraintOf(jobs[0].Ad); !ok {
		t.Error("constraint spelling not honoured")
	}
}
