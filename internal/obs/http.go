package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Handler returns the debug endpoint: /metrics (registry snapshot as
// JSON), /events (event ring as JSON, filterable with ?src=, ?cycle=,
// ?type= and ?n=), /trace (span ring as JSON, filterable with ?id=
// and ?n=), any extensions registered via Handle, and the standard
// pprof tree under /debug/pprof/. The handler is read-only and safe
// to expose on a loopback or operations-network address; it is never
// started unless a daemon is given -debug-addr.
func (o *Obs) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, o.Registry().Snapshot())
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		limit, _ := strconv.Atoi(q.Get("n"))
		writeJSON(w, o.Events().Select(q.Get("src"), q.Get("cycle"), q.Get("type"), limit))
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		limit, _ := strconv.Atoi(q.Get("n"))
		writeJSON(w, o.Spans().Select(q.Get("id"), limit))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		// Extensions registered via Handle may arrive after ServeDebug
		// started the mux, so they are resolved per request here
		// rather than registered as routes.
		if fn := o.handler(r.URL.Path); fn != nil {
			v, err := fn(r.URL.Query())
			if err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			writeJSON(w, v)
			return
		}
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("matchmaking debug endpoint\n" +
			"  /metrics          metrics registry snapshot (JSON)\n" +
			"  /events           event ring (JSON; ?src= ?cycle= ?type= ?n=)\n" +
			"  /trace            span ring (JSON; ?id= ?n=)\n" +
			"  /debug/pprof/     Go runtime profiles\n"))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// DebugServer is a running debug HTTP endpoint.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug binds addr and serves the Handler in the background,
// returning the bound address (addr may use port 0).
func (o *Obs) ServeDebug(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: o.Handler()}
	go srv.Serve(ln)
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound address.
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *DebugServer) Close() error { return s.srv.Close() }
