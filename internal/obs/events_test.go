package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestEventsWraparound fills a small ring past capacity and checks the
// survivors are exactly the most recent events, in order, with intact
// sequence numbers.
func TestEventsWraparound(t *testing.T) {
	e := NewEvents(8)
	for i := 0; i < 20; i++ {
		e.Emit("test", fmt.Sprintf("t%d", i), "", nil)
	}
	if e.Len() != 8 {
		t.Errorf("len = %d, want 8", e.Len())
	}
	if e.Total() != 20 {
		t.Errorf("total = %d, want 20", e.Total())
	}
	got := e.Snapshot()
	if len(got) != 8 {
		t.Fatalf("snapshot len = %d, want 8", len(got))
	}
	for i, ev := range got {
		wantSeq := int64(12 + i)
		if ev.Seq != wantSeq || ev.Type != fmt.Sprintf("t%d", wantSeq) {
			t.Errorf("event %d = seq %d type %s, want seq %d type t%d",
				i, ev.Seq, ev.Type, wantSeq, wantSeq)
		}
	}
}

// TestEventsSelect filters by cycle, type and limit.
func TestEventsSelect(t *testing.T) {
	e := NewEvents(64)
	for i := 0; i < 10; i++ {
		cycle := "c1"
		if i%2 == 0 {
			cycle = "c2"
		}
		e.Emit("mgr", "tick", cycle, map[string]string{"i": fmt.Sprint(i)})
	}
	e.Emit("mgr", "done", "c1", nil)

	if got := e.Select("", "c1", "", 0); len(got) != 6 {
		t.Errorf("cycle filter: %d events, want 6", len(got))
	}
	if got := e.Select("", "c1", "done", 0); len(got) != 1 {
		t.Errorf("cycle+type filter: %d events, want 1", len(got))
	}
	got := e.Select("", "", "tick", 3)
	if len(got) != 3 {
		t.Fatalf("limit: %d events, want 3", len(got))
	}
	// Limit keeps the most recent matches.
	if got[2].Fields["i"] != "9" {
		t.Errorf("limit kept %v, want the latest ticks", got)
	}
}

// TestEventsSelectSrcWraparound pins the src filter across a ring
// wraparound: two sources interleave past capacity, and selecting one
// source returns exactly its surviving events, in order, even though
// the ring has overwritten the early ones.
func TestEventsSelectSrcWraparound(t *testing.T) {
	e := NewEvents(8)
	for i := 0; i < 20; i++ {
		src := "ca"
		if i%2 == 1 {
			src = "ra"
		}
		e.Emit(src, fmt.Sprintf("t%d", i), "", nil)
	}
	if d := e.Dropped(); d != 12 {
		t.Errorf("dropped = %d, want 12", d)
	}
	got := e.Select("ca", "", "", 0)
	if len(got) != 4 {
		t.Fatalf("src filter after wraparound: %d events, want 4 (got %v)", len(got), got)
	}
	// The ring holds seqs 12..19; the even ones are "ca".
	for i, ev := range got {
		wantSeq := int64(12 + 2*i)
		if ev.Seq != wantSeq || ev.Src != "ca" {
			t.Errorf("event %d = seq %d src %s, want seq %d src ca", i, ev.Seq, ev.Src, wantSeq)
		}
	}
	if got := e.Select("ca", "", "", 2); len(got) != 2 || got[1].Seq != 18 {
		t.Errorf("src filter + limit kept %v, want the 2 latest ca events", got)
	}
}

// TestEventsConcurrent emits from many goroutines; under -race this is
// the ring's thread-safety proof.
func TestEventsConcurrent(t *testing.T) {
	e := NewEvents(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				e.Emit("w", "t", fmt.Sprintf("c%d", w), nil)
				e.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	if e.Total() != 1600 {
		t.Errorf("total = %d, want 1600", e.Total())
	}
}

// TestNewCycleID: readable prefix, unique suffix.
func TestNewCycleID(t *testing.T) {
	a, b := NewCycleID(7), NewCycleID(7)
	if !strings.HasPrefix(a, "c7-") {
		t.Errorf("cycle id %q lacks ordinal prefix", a)
	}
	if a == b {
		t.Errorf("two cycle ids collided: %q", a)
	}
}
