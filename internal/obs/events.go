package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"
)

// Event is one structured log record. Events carrying the same Cycle
// value belong to the same negotiation cycle: the manager mints a
// cycle ID, stamps it into its own events and into the MATCH envelopes
// it sends, and every downstream daemon (matchmaker, CA, RA) copies it
// into the events it emits — so /events?cycle=ID replays one cycle's
// full story across process boundaries.
type Event struct {
	// Seq is a strictly increasing sequence number (per Events buffer);
	// it orders events emitted within the same clock tick.
	Seq int64 `json:"seq"`
	// Time is the emission wall-clock time.
	Time time.Time `json:"time"`
	// Src names the emitting component: "manager", "matchmaker",
	// "collector", "ca", "ra", "netx".
	Src string `json:"src"`
	// Type names the event: "cycle_begin", "match", "claim", ...
	Type string `json:"type"`
	// Cycle is the negotiation-cycle ID, when the event belongs to one.
	Cycle string `json:"cycle,omitempty"`
	// Fields carries event-specific key/value detail.
	Fields map[string]string `json:"fields,omitempty"`
}

// DefaultEventCapacity is the ring size used by New.
const DefaultEventCapacity = 4096

// Events is a bounded ring of events: emission is O(1), old events are
// overwritten once the ring is full. All methods are nil-safe.
type Events struct {
	mu   sync.Mutex
	buf  []Event
	next int64 // seq of the next event; also total emitted
}

// NewEvents returns a ring holding the most recent capacity events
// (<= 0 selects DefaultEventCapacity).
func NewEvents(capacity int) *Events {
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	return &Events{buf: make([]Event, capacity)}
}

// Emit appends one event. fields may be nil.
func (e *Events) Emit(src, typ, cycle string, fields map[string]string) {
	if e == nil {
		return
	}
	now := time.Now()
	e.mu.Lock()
	seq := e.next
	e.next++
	e.buf[seq%int64(len(e.buf))] = Event{
		Seq: seq, Time: now, Src: src, Type: typ, Cycle: cycle, Fields: fields,
	}
	e.mu.Unlock()
}

// Len reports how many events the ring currently holds.
func (e *Events) Len() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.next < int64(len(e.buf)) {
		return int(e.next)
	}
	return len(e.buf)
}

// Total reports how many events were ever emitted (including ones the
// ring has since overwritten).
func (e *Events) Total() int64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.next
}

// Dropped reports how many events the ring has overwritten.
func (e *Events) Dropped() int64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if d := e.next - int64(len(e.buf)); d > 0 {
		return d
	}
	return 0
}

// Snapshot returns the retained events in emission order.
func (e *Events) Snapshot() []Event {
	return e.Select("", "", "", 0)
}

// Select returns retained events in emission order, filtered by src,
// cycle and type when non-empty, keeping only the most recent limit
// events when limit > 0. Always returns a non-nil slice (it is served
// as JSON).
func (e *Events) Select(src, cycle, typ string, limit int) []Event {
	out := []Event{}
	if e == nil {
		return out
	}
	e.mu.Lock()
	n := int64(len(e.buf))
	lo := e.next - n
	if lo < 0 {
		lo = 0
	}
	for seq := lo; seq < e.next; seq++ {
		ev := e.buf[seq%n]
		if src != "" && ev.Src != src {
			continue
		}
		if cycle != "" && ev.Cycle != cycle {
			continue
		}
		if typ != "" && ev.Type != typ {
			continue
		}
		out = append(out, ev)
	}
	e.mu.Unlock()
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// NewCycleID mints the identifier for negotiation cycle n: readable
// (the cycle ordinal is visible) and unique across manager restarts
// (four random bytes), e.g. "c42-9f1b03d7".
func NewCycleID(n int) string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion should not break negotiation; fall back
		// to the ordinal alone.
		return fmt.Sprintf("c%d", n)
	}
	return fmt.Sprintf("c%d-%s", n, hex.EncodeToString(b[:]))
}

// Obs bundles the sinks a component needs. A nil *Obs (and the nil
// Registry/Events/Spans inside a zero Obs) disables instrumentation
// without any call-site branching.
type Obs struct {
	Reg *Registry
	Ev  *Events
	Sp  *Spans

	// handlers holds dynamic debug-endpoint extensions registered via
	// Handle; the HTTP handler's fallback route consults it, so
	// components can expose queries (/why, /daemons) without obs
	// importing them.
	hmu      sync.Mutex
	handlers map[string]func(map[string][]string) (any, error)
}

// New returns an Obs with a fresh registry, a default-capacity event
// ring and a default-capacity span ring.
func New() *Obs {
	return &Obs{Reg: NewRegistry(), Ev: NewEvents(0), Sp: NewSpans(0)}
}

// Registry returns the metrics registry; nil-safe.
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Reg
}

// Events returns the event ring; nil-safe.
func (o *Obs) Events() *Events {
	if o == nil {
		return nil
	}
	return o.Ev
}

// Spans returns the span ring; nil-safe.
func (o *Obs) Spans() *Spans {
	if o == nil {
		return nil
	}
	return o.Sp
}

// Handle registers a debug-endpoint extension at path (e.g. "/why"):
// fn receives the parsed query parameters and its result is served as
// JSON (or its error as a 404). Safe to call before or after
// ServeDebug; nil-safe, so uninstrumented components can register
// unconditionally.
func (o *Obs) Handle(path string, fn func(query map[string][]string) (any, error)) {
	if o == nil {
		return
	}
	o.hmu.Lock()
	if o.handlers == nil {
		o.handlers = make(map[string]func(map[string][]string) (any, error))
	}
	o.handlers[path] = fn
	o.hmu.Unlock()
}

// handler returns the extension registered at path, if any; nil-safe.
func (o *Obs) handler(path string) func(map[string][]string) (any, error) {
	if o == nil {
		return nil
	}
	o.hmu.Lock()
	defer o.hmu.Unlock()
	return o.handlers[path]
}
