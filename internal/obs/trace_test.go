package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpansRecordSelect(t *testing.T) {
	s := NewSpans(8)
	for i := 0; i < 3; i++ {
		s.Record(Span{Trace: "t-a", ID: NewSpanID(), Src: "ca", Name: "submit"})
	}
	s.Record(Span{Trace: "t-b", ID: NewSpanID(), Src: "matchmaker", Name: "negotiate"})
	if got := s.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := s.Total(); got != 4 {
		t.Fatalf("Total = %d, want 4", got)
	}
	if got := s.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d, want 0", got)
	}
	if got := len(s.Select("t-a", 0)); got != 3 {
		t.Fatalf("Select(t-a) = %d spans, want 3", got)
	}
	if got := len(s.Select("t-b", 0)); got != 1 {
		t.Fatalf("Select(t-b) = %d spans, want 1", got)
	}
	if got := len(s.Select("", 0)); got != 4 {
		t.Fatalf("Select(all) = %d spans, want 4", got)
	}
	if got := len(s.Select("", 2)); got != 2 {
		t.Fatalf("Select(all, limit 2) = %d spans, want 2", got)
	}
	if got := s.Select("t-missing", 0); got == nil || len(got) != 0 {
		t.Fatalf("Select(missing) = %#v, want empty non-nil slice", got)
	}
}

func TestSpansWraparound(t *testing.T) {
	s := NewSpans(4)
	for i := 0; i < 10; i++ {
		trace := "t-even"
		if i%2 == 1 {
			trace = "t-odd"
		}
		s.Record(Span{Trace: trace, Name: "op", Start: time.Unix(int64(i), 0)})
	}
	if got := s.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	// Ring of 4 retains spans 6..9: two even, two odd.
	even := s.Select("t-even", 0)
	if len(even) != 2 || !even[0].Start.Equal(time.Unix(6, 0)) || !even[1].Start.Equal(time.Unix(8, 0)) {
		t.Fatalf("Select(t-even) = %+v, want spans 6 and 8", even)
	}
}

func TestSpanRecLifecycle(t *testing.T) {
	s := NewSpans(8)
	sp := s.Start("t-x", "s-parent", "ca", "claim")
	if sp.ID() == "" {
		t.Fatal("live recorder has no ID")
	}
	sp.Set("machine", "m1")
	sp.End()
	sp.End() // idempotent: still one span
	got := s.Select("t-x", 0)
	if len(got) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(got))
	}
	rec := got[0]
	if rec.Parent != "s-parent" || rec.Src != "ca" || rec.Name != "claim" {
		t.Fatalf("span = %+v", rec)
	}
	if rec.Fields["machine"] != "m1" {
		t.Fatalf("fields = %v", rec.Fields)
	}
	if rec.End.Before(rec.Start) {
		t.Fatalf("End %v before Start %v", rec.End, rec.Start)
	}

	fail := s.Start("t-x", "", "ca", "match_fenced")
	fail.Fail("stale epoch")
	fail.End()
	got = s.Select("t-x", 0)
	if len(got) != 2 || got[1].Err != "stale epoch" {
		t.Fatalf("failed span not recorded: %+v", got)
	}
}

func TestSpansNilSafety(t *testing.T) {
	var s *Spans
	s.Record(Span{})
	if s.Len() != 0 || s.Total() != 0 || s.Dropped() != 0 {
		t.Fatal("nil ring reports non-zero state")
	}
	if got := s.Select("t", 5); got == nil || len(got) != 0 {
		t.Fatalf("nil Select = %#v", got)
	}
	// A nil ring and an untraced request both yield nil recorders whose
	// whole surface is a no-op — call sites never branch.
	for _, rec := range []*SpanRec{s.Start("t", "", "ca", "op"), NewSpans(4).Start("", "", "ca", "op")} {
		if rec != nil {
			t.Fatal("expected nil recorder")
		}
		if rec.ID() != "" {
			t.Fatal("nil recorder has an ID")
		}
		rec.Set("k", "v")
		rec.Fail("e")
		rec.End()
	}
}

func TestTraceIDs(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Fatalf("trace IDs collide: %s", a)
	}
	if len(a) != 2+16 || a[:2] != "t-" {
		t.Fatalf("trace ID %q has unexpected shape", a)
	}
	sp := NewSpanID()
	if len(sp) != 2+8 || sp[:2] != "s-" {
		t.Fatalf("span ID %q has unexpected shape", sp)
	}
}

func TestSpanJSONShape(t *testing.T) {
	data, err := json.Marshal(Span{Trace: "t-1", ID: "s-1", Src: "ca", Name: "submit"})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"trace"`, `"id"`, `"src"`, `"name"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("marshalled span %s lacks %s", data, key)
		}
	}
	for _, key := range []string{`"parent"`, `"err"`, `"fields"`} {
		if strings.Contains(string(data), key) {
			t.Errorf("marshalled span %s includes empty %s", data, key)
		}
	}
}
