package obs

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// registration matches a metric registered with a literal name:
// reg.Counter("x"), reg.Gauge("x"), reg.GaugeFunc("x", ...),
// reg.Histogram("x", ...). Dynamically-suffixed names (a literal
// prefix ending in "_", like the per-code lint counters) are the one
// documented exclusion.
var registration = regexp.MustCompile(`\.(Counter|GaugeFunc|Gauge|Histogram)\("([a-z0-9_]+)"`)

// tableRow matches one row of the DESIGN.md §12 metrics table.
var tableRow = regexp.MustCompile("^\\| `([a-z0-9_]+)` \\| (counter|gauge|histogram) \\|$")

// TestDesignDocMetricsTableInSync is part of the `make lint-codes`
// gate: the DESIGN.md §12 metrics table must list exactly the metric
// names internal/ registers statically, each at its registered kind.
// A metric added without a row — or a row whose metric was renamed
// away — fails here, so the operator-facing registry documentation
// cannot rot.
func TestDesignDocMetricsTableInSync(t *testing.T) {
	inSource := map[string]string{}
	err := filepath.WalkDir("..", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range registration.FindAllStringSubmatch(string(data), -1) {
			kind, name := m[1], m[2]
			if strings.HasSuffix(name, "_") {
				continue // dynamic suffix: name is built at runtime
			}
			kind = strings.ToLower(strings.TrimSuffix(kind, "Func"))
			if prev, ok := inSource[name]; ok && prev != kind {
				t.Errorf("%s registered as both %s and %s", name, prev, kind)
			}
			inSource[name] = kind
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(inSource) == 0 {
		t.Fatal("no metric registrations found under internal/")
	}

	data, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	documented := map[string]string{}
	var order []string
	for _, line := range strings.Split(string(data), "\n") {
		m := tableRow.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		if _, dup := documented[m[1]]; dup {
			t.Errorf("DESIGN.md documents %s twice", m[1])
		}
		documented[m[1]] = m[2]
		order = append(order, m[1])
	}
	if len(documented) == 0 {
		t.Fatal("no metrics table rows found in DESIGN.md §12")
	}
	if !sort.StringsAreSorted(order) {
		t.Errorf("DESIGN.md metrics table out of name order: %v", order)
	}

	for name, kind := range inSource {
		doc, ok := documented[name]
		if !ok {
			t.Errorf("DESIGN.md §12 is missing a row for %s (%s)", name, kind)
			continue
		}
		if doc != kind {
			t.Errorf("DESIGN.md documents %s as %q, source registers a %s", name, doc, kind)
		}
		delete(documented, name)
	}
	for name := range documented {
		t.Errorf("DESIGN.md documents %s but nothing registers it", name)
	}
}
