package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed hop of a request's journey across the pool. Spans
// sharing a Trace value belong to the same causal story: the trace ID
// is minted at submission, stamped into every envelope the request's
// processing sends (Envelope.Trace), and each daemon that does work on
// its behalf records a span naming itself as Src. Parent links a span
// to the remote span whose envelope carried the work here, so the
// retained spans of one trace reassemble into a tree spanning process
// boundaries — the dependency-free core of distributed tracing.
type Span struct {
	// Trace identifies the causal story this span belongs to.
	Trace string `json:"trace"`
	// ID identifies this span within its trace.
	ID string `json:"id"`
	// Parent is the ID of the span that caused this one ("" for a
	// root span).
	Parent string `json:"parent,omitempty"`
	// Src names the recording component: "manager", "matchmaker",
	// "collector", "ca", "ra", "negotiator".
	Src string `json:"src"`
	// Name names the operation: "submit", "notify", "claim", ...
	Name string `json:"name"`
	// Start and End bound the operation; End-Start is the hop latency.
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// Err is non-empty when the operation failed (a fenced MATCH, a
	// rejected claim); failed spans still belong to the tree.
	Err string `json:"err,omitempty"`
	// Fields carries span-specific key/value detail.
	Fields map[string]string `json:"fields,omitempty"`
}

// DefaultSpanCapacity is the span-ring size used by New.
const DefaultSpanCapacity = 4096

// Spans is a bounded ring of completed spans, the tracing counterpart
// of Events: recording is O(1), old spans are overwritten once the
// ring is full. All methods are nil-safe.
type Spans struct {
	mu   sync.Mutex
	buf  []Span
	next int64 // total recorded; buf[next%len] is the next slot
}

// NewSpans returns a ring holding the most recent capacity spans
// (<= 0 selects DefaultSpanCapacity).
func NewSpans(capacity int) *Spans {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &Spans{buf: make([]Span, capacity)}
}

// Record appends one completed span.
func (s *Spans) Record(span Span) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.buf[s.next%int64(len(s.buf))] = span
	s.next++
	s.mu.Unlock()
}

// Len reports how many spans the ring currently holds.
func (s *Spans) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.next < int64(len(s.buf)) {
		return int(s.next)
	}
	return len(s.buf)
}

// Total reports how many spans were ever recorded.
func (s *Spans) Total() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

// Dropped reports how many spans the ring has overwritten.
func (s *Spans) Dropped() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if d := s.next - int64(len(s.buf)); d > 0 {
		return d
	}
	return 0
}

// Select returns retained spans in recording order, filtered by trace
// when non-empty, keeping only the most recent limit spans when
// limit > 0. Always returns a non-nil slice (it is served as JSON).
func (s *Spans) Select(trace string, limit int) []Span {
	out := []Span{}
	if s == nil {
		return out
	}
	s.mu.Lock()
	n := int64(len(s.buf))
	lo := s.next - n
	if lo < 0 {
		lo = 0
	}
	for seq := lo; seq < s.next; seq++ {
		sp := s.buf[seq%n]
		if trace != "" && sp.Trace != trace {
			continue
		}
		out = append(out, sp)
	}
	s.mu.Unlock()
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// Start opens a live span under trace with the given parent span ID
// and returns a recorder for it; call End (or Fail then End) when the
// operation completes to commit it to the ring. A nil *Spans or an
// empty trace yields a nil recorder, whose methods are all no-ops —
// call sites never branch on instrumentation or on whether the
// request is traced.
func (s *Spans) Start(trace, parent, src, name string) *SpanRec {
	if s == nil || trace == "" {
		return nil
	}
	return &SpanRec{
		ring: s,
		span: Span{
			Trace: trace, ID: NewSpanID(), Parent: parent,
			Src: src, Name: name, Start: time.Now(),
		},
	}
}

// SpanRec is an open span being timed. All methods are nil-safe.
type SpanRec struct {
	ring *Spans
	mu   sync.Mutex
	span Span
	done atomic.Bool
}

// ID returns the span's ID, to be propagated as the Parent of any
// downstream span ("" on a nil recorder — untraced requests propagate
// empty trace context, which downstream Start treats as untraced).
func (r *SpanRec) ID() string {
	if r == nil {
		return ""
	}
	return r.span.ID
}

// Set attaches one key/value detail to the span.
func (r *SpanRec) Set(key, value string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.span.Fields == nil {
		r.span.Fields = make(map[string]string)
	}
	r.span.Fields[key] = value
	r.mu.Unlock()
}

// Fail marks the span as errored.
func (r *SpanRec) Fail(err string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.span.Err = err
	r.mu.Unlock()
}

// End stamps the end time and commits the span to the ring. Only the
// first End records; later calls are no-ops.
func (r *SpanRec) End() {
	if r == nil || !r.done.CompareAndSwap(false, true) {
		return
	}
	r.mu.Lock()
	r.span.End = time.Now()
	sp := r.span
	r.mu.Unlock()
	r.ring.Record(sp)
}

// NewTraceID mints a trace identifier, e.g. "t-9f1b03d7c4a21e56":
// 64 random bits is enough to never collide within one ring's
// retention window.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion should not break submission; fall back to
		// a timestamp-derived ID.
		return fmt.Sprintf("t-%x", time.Now().UnixNano())
	}
	return "t-" + hex.EncodeToString(b[:])
}

// NewSpanID mints a span identifier (unique within one trace).
func NewSpanID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("s-%x", time.Now().UnixNano())
	}
	return "s-" + hex.EncodeToString(b[:])
}
