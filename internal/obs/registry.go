// Package obs is the pool-wide observability layer: a dependency-free
// metrics registry (atomic counters, gauges, fixed-bucket histograms),
// a structured event log (a bounded ring of typed, timestamped events
// carrying the negotiation-cycle ID that stitches a match's story
// together across daemons), and an optional debug HTTP endpoint
// exposing both as JSON alongside net/http/pprof.
//
// The paper's matchmaker is a periodic, opaque service — operators can
// only infer behavior from queue state (§4). This package makes the
// pool observable without changing its semantics: every hook is
// nil-safe, so an uninstrumented component pays one nil check per
// metric update and nothing else. Components receive an *Obs (or just
// a *Registry) at construction; a nil Obs, nil Registry, nil Counter
// and nil Events all no-op.
package obs

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are
// nil-safe: an uninstrumented component holds nil counters and every
// update is a no-op.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down (live handler goroutines,
// queue depths). Nil-safe like Counter.
type Gauge struct{ v atomic.Int64 }

// Set stores an absolute value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets. Bucket i holds
// observations v with v <= Bounds[i] (and v > Bounds[i-1]); one
// overflow bucket past the last bound catches the rest. Observe is
// lock-free; Sum is maintained with a CAS loop over float bits.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is overflow
	count  atomic.Int64
	sum    atomic.Uint64 // math.Float64bits
}

// DurationBuckets is the default bucket set for latency histograms, in
// seconds: half a millisecond through ten seconds, roughly
// logarithmic. Chosen to straddle both test pools (millisecond
// round-trips) and the deployed system's five-minute cycles.
var DurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// CountBuckets is the default bucket set for size histograms (requests
// per cycle, offers scanned per request).
var CountBuckets = []float64{0, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound is >= v; equality lands in the
	// bucket (le semantics), misses land in the overflow bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// HistogramSnapshot is the JSON form of a histogram: per-bucket counts
// (not cumulative) with their upper bounds; the final bucket (no
// bound) is the overflow. P50/P95/P99 are quantiles estimated from
// the bucket counts — exact only at bucket boundaries, linearly
// interpolated within a bucket, and clamped to the last finite bound
// when the quantile falls in the overflow bucket.
type HistogramSnapshot struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
	P50     float64   `json:"p50"`
	P95     float64   `json:"p95"`
	P99     float64   `json:"p99"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sum.Load()),
		Bounds:  h.bounds,
		Buckets: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// Quantile estimates the q-th quantile (0 < q < 1) from the bucket
// counts: it finds the bucket holding the q*Count-th observation and
// interpolates linearly between the bucket's bounds. Observations in
// the overflow bucket are indistinguishable beyond the last bound, so
// quantiles landing there report the last bound (a floor, not an
// estimate). Returns 0 on an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count <= 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	cum := float64(0)
	for i, c := range s.Buckets {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			// Overflow bucket: no upper bound to interpolate toward.
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := float64(0)
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		return lo + (s.Bounds[i]-lo)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Registry names and owns metrics. Metric lookup/creation takes a
// mutex; updates on the returned metric are lock-free. All methods are
// nil-safe, returning nil metrics whose updates no-op, so call sites
// never branch on "is observability on".
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	funcs    map[string]func() float64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		funcs:    make(map[string]func() float64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a gauge computed at snapshot time — the shape
// for values another component already tracks (fault-injector stats,
// runtime.NumGoroutine).
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds on first use (later calls reuse the
// original bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if len(bounds) == 0 {
			bounds = DurationBuckets
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is the JSON form of a whole registry, served at /metrics.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every metric's current value. Safe on a nil
// registry (returns an empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	funcs := make(map[string]func() float64, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	// Values are read outside the registry lock: a gauge func may call
	// back into arbitrary code.
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = float64(v.Value())
	}
	for k, fn := range funcs {
		s.Gauges[k] = fn()
	}
	for k, v := range hists {
		s.Histograms[k] = v.snapshot()
	}
	return s
}

// Digest hashes the current snapshot into a short stable hex string —
// the MetricsDigest a daemon publishes in its self-ad. Two scrapes of
// an idle daemon digest identically; any metric movement changes the
// digest, so a monitor can detect activity (or a wedged daemon whose
// digest never changes) without shipping the whole snapshot through
// the collector. Nil-safe.
func (r *Registry) Digest() string {
	s := r.Snapshot()
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for k := range s.Counters {
		names = append(names, "c:"+k)
	}
	for k := range s.Gauges {
		names = append(names, "g:"+k)
	}
	for k := range s.Histograms {
		names = append(names, "h:"+k)
	}
	sort.Strings(names)
	h := fnv.New64a()
	for _, n := range names {
		fmt.Fprint(h, n, "=")
		switch n[0] {
		case 'c':
			fmt.Fprint(h, s.Counters[n[2:]])
		case 'g':
			fmt.Fprint(h, s.Gauges[n[2:]])
		case 'h':
			hs := s.Histograms[n[2:]]
			fmt.Fprint(h, hs.Count, "/", hs.Sum)
		}
		fmt.Fprint(h, ";")
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
