package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

// TestDebugEndpoints starts the debug server and exercises /metrics,
// /events (with a cycle filter) and the pprof index over real HTTP.
func TestDebugEndpoints(t *testing.T) {
	o := New()
	o.Reg.Counter("collector_queries_total").Add(5)
	o.Reg.Histogram("pool_claim_seconds", nil).Observe(0.002)
	o.Ev.Emit("manager", "cycle_begin", "c1-deadbeef", map[string]string{"requests": "3"})
	o.Ev.Emit("ca", "claim", "c1-deadbeef", nil)
	o.Ev.Emit("manager", "cycle_begin", "c2-deadbeef", nil)

	srv, err := o.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	var snap Snapshot
	getJSON(t, base+"/metrics", &snap)
	if snap.Counters["collector_queries_total"] != 5 {
		t.Errorf("/metrics counters = %+v", snap.Counters)
	}
	if snap.Histograms["pool_claim_seconds"].Count != 1 {
		t.Errorf("/metrics histograms = %+v", snap.Histograms)
	}

	var evs []Event
	getJSON(t, base+"/events?cycle=c1-deadbeef", &evs)
	if len(evs) != 2 {
		t.Fatalf("/events?cycle= returned %d events, want 2", len(evs))
	}
	if evs[0].Src != "manager" || evs[1].Src != "ca" {
		t.Errorf("event sources = %s, %s", evs[0].Src, evs[1].Src)
	}

	resp, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status = %d", resp.StatusCode)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("GET %s: bad JSON: %v\n%s", url, err, body)
	}
}
