package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

// TestCounterConcurrent hammers one counter and one gauge from many
// goroutines; run under -race this is the registry's thread-safety
// proof.
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Lookup-then-update on every iteration exercises the
				// registry's creation lock, not just the atomic.
				r.Counter("hits").Inc()
				r.Gauge("depth").Inc()
				r.Gauge("depth").Dec()
				r.Histogram("lat", DurationBuckets).Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("depth").Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := r.Histogram("lat", nil).Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestNilSafety: every metric operation must no-op on nil receivers —
// that is the contract uninstrumented components rely on.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(3)
	r.GaugeFunc("z", func() float64 { return 1 })
	r.Histogram("h", nil).Observe(1)
	if s := r.Snapshot(); len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
	var o *Obs
	o.Registry().Counter("x").Inc()
	o.Events().Emit("src", "type", "", nil)
	if o.Events().Len() != 0 {
		t.Error("nil events not empty")
	}
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram has observations")
	}
}

// TestHistogramBucketEdges pins the boundary semantics: a value equal
// to a bucket's upper bound lands in that bucket, one past it lands in
// the next, and values beyond the last bound land in the overflow
// bucket.
func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	for _, v := range []float64{
		0.5,  // bucket 0 (<= 1)
		1,    // bucket 0: boundary is inclusive
		1.01, // bucket 1 (<= 2)
		2,    // bucket 1: boundary is inclusive
		5,    // bucket 2
		5.01, // overflow
		99,   // overflow
	} {
		h.Observe(v)
	}
	s := h.snapshot()
	want := []int64{2, 2, 1, 2}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %v, want %d entries", s.Buckets, len(want))
	}
	for i := range want {
		if s.Buckets[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, s.Buckets[i], want[i], s.Buckets)
		}
	}
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	if got, want := s.Sum, 0.5+1+1.01+2+5+5.01+99; got != want {
		t.Errorf("sum = %g, want %g", got, want)
	}
}

// TestHistogramReusesBounds: a second registration under the same name
// keeps the original bounds.
func TestHistogramReusesBounds(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("h", []float64{1, 2})
	h2 := r.Histogram("h", []float64{100})
	if h1 != h2 {
		t.Fatal("same name produced distinct histograms")
	}
	if got := len(h1.snapshot().Bounds); got != 2 {
		t.Errorf("bounds len = %d, want 2", got)
	}
}

// TestSnapshotJSON: the snapshot must round-trip through JSON — it is
// the /metrics wire format the CLI decodes.
func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Gauge("b").Set(-2)
	r.GaugeFunc("c", func() float64 { return 7.5 })
	r.Histogram("d_seconds", []float64{1}).Observe(0.5)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a_total"] != 3 {
		t.Errorf("counter lost: %+v", back.Counters)
	}
	if back.Gauges["b"] != -2 || back.Gauges["c"] != 7.5 {
		t.Errorf("gauges lost: %+v", back.Gauges)
	}
	if h := back.Histograms["d_seconds"]; h.Count != 1 || h.Sum != 0.5 {
		t.Errorf("histogram lost: %+v", h)
	}
}

// TestHistogramQuantiles: quantiles interpolate within buckets, land
// exactly on boundaries when the rank does, clamp to the last bound in
// the overflow bucket, and are zero on an empty histogram.
func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{10, 20, 40})
	// 10 observations in (0,10], 10 in (10,20]: p50 = 10 exactly (rank
	// 10 exhausts the first bucket), p75 interpolates halfway into the
	// second bucket.
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	s := h.snapshot()
	if got := s.Quantile(0.50); got != 10 {
		t.Errorf("p50 = %g, want 10", got)
	}
	if got := s.Quantile(0.75); got != 15 {
		t.Errorf("p75 = %g, want 15", got)
	}
	if s.P50 != s.Quantile(0.50) || s.P95 != s.Quantile(0.95) || s.P99 != s.Quantile(0.99) {
		t.Errorf("snapshot quantile fields disagree with Quantile(): %+v", s)
	}

	// All mass past the last bound: every quantile clamps to it.
	over := newHistogram([]float64{10, 20, 40})
	for i := 0; i < 4; i++ {
		over.Observe(1000)
	}
	if got := over.snapshot().Quantile(0.50); got != 40 {
		t.Errorf("overflow p50 = %g, want clamp to 40", got)
	}

	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
}

// TestRegistryDigest: the digest is stable while metrics are idle and
// moves when any metric moves — the self-ad's wedged-daemon detector.
func TestRegistryDigest(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total").Inc()
	d1 := r.Digest()
	if d2 := r.Digest(); d2 != d1 {
		t.Fatalf("idle digest moved: %s -> %s", d1, d2)
	}
	r.Counter("x_total").Inc()
	if d3 := r.Digest(); d3 == d1 {
		t.Fatal("digest unchanged after counter increment")
	}
	var nilReg *Registry
	if nilReg.Digest() == "" {
		t.Fatal("nil registry digest is empty")
	}
}
