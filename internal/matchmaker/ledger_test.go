package matchmaker

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"repro/internal/store"
)

func TestUsageLedgerSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	led, err := OpenUsageLedger(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	tab := led.Table()
	tab.SetHalfLife(0) // exact arithmetic for the assertions
	tab.Advance(100)
	tab.Record("raman", 3)
	tab.Record("livny", 1)
	tab.Advance(200)
	tab.Record("raman", 2)
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}

	led2, err := OpenUsageLedger(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer led2.Close()
	tab2 := led2.Table()
	if got := tab2.Effective("raman"); got != 5 {
		t.Errorf("raman usage = %v, want 5", got)
	}
	if got := tab2.Effective("livny"); got != 1 {
		t.Errorf("livny usage = %v, want 1", got)
	}
	// New charges after recovery land on top of the recovered history.
	tab2.Record("livny", 4)
	led3, err := reopenLedger(t, led2, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer led3.Close()
	if got := led3.Table().Effective("livny"); got != 5 {
		t.Errorf("livny usage after second restart = %v, want 5", got)
	}
}

func reopenLedger(t *testing.T, led *UsageLedger, dir string) (*UsageLedger, error) {
	t.Helper()
	if err := led.Close(); err != nil {
		return nil, err
	}
	return OpenUsageLedger(dir, nil)
}

func TestUsageLedgerReplaysDecay(t *testing.T) {
	dir := t.TempDir()
	led, err := OpenUsageLedger(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	tab := led.Table()
	tab.SetHalfLife(100)
	tab.Advance(0)
	tab.Record("u", 8)
	tab.Advance(100) // one half-life
	tab.Record("u", 1)

	// Mirror table, no persistence, same operations.
	want := NewPriorityTable()
	want.SetHalfLife(100)
	want.Advance(0)
	want.Record("u", 8)
	want.Advance(100)
	want.Record("u", 1)

	led2, err := reopenLedger(t, led, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer led2.Close()
	got, exp := led2.Table().Effective("u"), want.Effective("u")
	if math.Abs(got-exp) > 1e-9 {
		t.Errorf("replayed usage %v, want %v (8 decayed one half-life + 1 = 5)", got, exp)
	}
}

func TestUsageLedgerCompaction(t *testing.T) {
	dir := t.TempDir()
	led, err := OpenUsageLedger(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	tab := led.Table()
	tab.SetHalfLife(0)
	for i := 0; i < ledgerSnapshotEvery+5; i++ {
		tab.Record(fmt.Sprintf("u%d", i%7), 1)
		if err := led.MaybeCompact(); err != nil {
			t.Fatal(err)
		}
	}
	if s := led.Stats(); s.Gen == 0 {
		t.Fatalf("no snapshot after %d records", ledgerSnapshotEvery+5)
	}
	led2, err := reopenLedger(t, led, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer led2.Close()
	total := 0.0
	for _, c := range led2.Table().Customers() {
		total += led2.Table().Effective(c)
	}
	if int(total) != ledgerSnapshotEvery+5 {
		t.Errorf("recovered total usage %v, want %d", total, ledgerSnapshotEvery+5)
	}
}

func TestUsageLedgerShipInstall(t *testing.T) {
	leader, err := OpenUsageLedger(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	leader.Table().SetHalfLife(0)
	leader.Table().Record("a", 2)
	leader.Table().Record("b", 7)
	bundle, err := leader.Ship()
	if err != nil {
		t.Fatal(err)
	}

	standbyDir := t.TempDir()
	standby, err := OpenUsageLedger(standbyDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	standby.Table().Record("stale", 99)
	if err := standby.Install(bundle); err != nil {
		t.Fatal(err)
	}
	if got := standby.Table().Effective("b"); got != 7 {
		t.Errorf("installed usage b = %v, want 7", got)
	}
	if got := standby.Table().Effective("stale"); got != 0 {
		t.Errorf("stale local usage survived install: %v", got)
	}
	// Post-install charges persist across restart.
	standby.Table().Record("b", 1)
	standby2, err := reopenLedger(t, standby, standbyDir)
	if err != nil {
		t.Fatal(err)
	}
	defer standby2.Close()
	if got := standby2.Table().Effective("b"); got != 8 {
		t.Errorf("usage b after restart = %v, want 8", got)
	}
}

// A standby polls Ship on every heartbeat; shipping a clean ledger
// must not churn a log generation per poll, and must hand back a
// byte-identical bundle so the standby can skip re-installing it.
func TestUsageLedgerShipCleanIsStable(t *testing.T) {
	led, err := OpenUsageLedger(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	led.Table().SetHalfLife(0)
	led.Table().Record("a", 3)
	first, err := led.Ship()
	if err != nil {
		t.Fatal(err)
	}
	gen := led.Stats().Gen
	for i := 0; i < 3; i++ {
		again, err := led.Ship()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("ship %d: clean ledger shipped a different bundle", i)
		}
	}
	if got := led.Stats().Gen; got != gen {
		t.Errorf("clean ships advanced the generation: %d -> %d", gen, got)
	}
	// A new record re-dirties the ledger: the next ship compacts.
	led.Table().Record("a", 1)
	if _, err := led.Ship(); err != nil {
		t.Fatal(err)
	}
	if got := led.Stats().Gen; got <= gen {
		t.Errorf("dirty ship did not compact: generation still %d", got)
	}
}

func TestUsageLedgerCrashPoints(t *testing.T) {
	workload := func(led *UsageLedger) (acked int) {
		tab := led.Table()
		tab.SetHalfLife(0)
		for i := 0; i < 8; i++ {
			tab.Record("u", 1)
			if led.Err() != nil {
				return acked
			}
			acked++
		}
		return acked
	}
	ffs := store.NewFaultFS(nil, store.FaultPlan{})
	led, err := OpenUsageLedger(t.TempDir(), ffs)
	if err != nil {
		t.Fatal(err)
	}
	workload(led)
	led.Close()
	total := ffs.Stats().Ops

	for k := 1; k <= total; k++ {
		dir := t.TempDir()
		led, err := OpenUsageLedger(dir, store.NewFaultFS(nil, store.FaultPlan{Seed: int64(k), CrashAtOp: k}))
		if err != nil {
			continue
		}
		acked := workload(led)
		led.Close()
		led2, err := OpenUsageLedger(dir, nil)
		if err != nil {
			t.Fatalf("crash@%d: recovery failed: %v", k, err)
		}
		if got := int(led2.Table().Effective("u")); got < acked {
			t.Errorf("crash@%d: recovered %d charges, %d were acknowledged", k, got, acked)
		}
		led2.Close()
	}
}
