package matchmaker

import (
	"fmt"
	"testing"

	"repro/internal/classad"
)

// regularPool builds n offers spread over k distinct machine classes;
// names differ within a class but capabilities are identical.
func regularPool(n, k int) []*classad.Ad {
	out := make([]*classad.Ad, n)
	for i := range out {
		class := i % k
		m := machine(fmt.Sprintf("node%d", i), "INTEL", int64(32*(class+1)))
		m.SetInt("Class", int64(class))
		out[i] = m
	}
	return out
}

func TestSignatureIgnoresIdentity(t *testing.T) {
	a := machine("alpha", "INTEL", 64)
	b := machine("beta", "INTEL", 64)
	c := machine("gamma", "SPARC", 64)
	if Signature(a) != Signature(b) {
		t.Error("identical machines with different names must share a signature")
	}
	if Signature(a) == Signature(c) {
		t.Error("different architectures must not share a signature")
	}
	// Contact and ticket are identity attributes too.
	d := machine("alpha", "INTEL", 64)
	d.SetString(classad.AttrContact, "host:1234")
	d.SetString(classad.AttrTicket, "deadbeef")
	if Signature(a) != Signature(d) {
		t.Error("contact/ticket must not affect the signature")
	}
}

func TestSignatureCaseInsensitive(t *testing.T) {
	a := classad.MustParse("[ Memory = 64 ]")
	b := classad.MustParse("[ MEMORY = 64 ]")
	if Signature(a) != Signature(b) {
		t.Error("attribute case must not affect the signature")
	}
}

func TestAggregateClasses(t *testing.T) {
	offers := regularPool(100, 4)
	classes := AggregateClasses(offers)
	if len(classes) != 4 {
		t.Fatalf("got %d classes, want 4", len(classes))
	}
	total := 0
	for _, c := range classes {
		total += len(c)
	}
	if total != 100 {
		t.Errorf("classes cover %d offers, want 100", total)
	}
}

// TestAggregationMatchesLinearScan is the soundness half of E11: with
// aggregation on, every request gets an offer from the same class the
// linear scan would pick, and the total number of matches is
// identical.
func TestAggregationMatchesLinearScan(t *testing.T) {
	offers := regularPool(60, 3)
	var requests []*classad.Ad
	for i := 0; i < 40; i++ {
		r := job(fmt.Sprintf("u%d", i%5), "INTEL", int64(32*(i%3+1)))
		if err := r.SetExprString("Rank", "other.Memory"); err != nil {
			t.Fatal(err)
		}
		requests = append(requests, r)
	}
	plain := New(Config{}).Negotiate(requests, offers)
	agg := New(Config{Aggregate: true}).Negotiate(requests, offers)
	if len(plain) != len(agg) {
		t.Fatalf("aggregation changed match count: %d vs %d", len(agg), len(plain))
	}
	for i := range plain {
		if plain[i].Request != agg[i].Request {
			t.Errorf("match %d pairs a different request", i)
		}
		if Signature(plain[i].Offer) != Signature(agg[i].Offer) {
			t.Errorf("match %d picks a different offer class", i)
		}
		if plain[i].RequestRank != agg[i].RequestRank {
			t.Errorf("match %d rank differs: %v vs %v", i,
				plain[i].RequestRank, agg[i].RequestRank)
		}
	}
}

// TestAggregationExhaustsClasses: when a class runs out, later
// requests fall through to other classes rather than failing.
func TestAggregationExhaustsClasses(t *testing.T) {
	offers := regularPool(6, 3) // 2 offers per class
	var requests []*classad.Ad
	for i := 0; i < 6; i++ {
		requests = append(requests, job(fmt.Sprintf("u%d", i), "INTEL", 1))
	}
	matches := New(Config{Aggregate: true}).Negotiate(requests, offers)
	if len(matches) != 6 {
		t.Fatalf("got %d matches, want all 6 offers consumed", len(matches))
	}
	seen := map[*classad.Ad]bool{}
	for _, m := range matches {
		if seen[m.Offer] {
			t.Error("an offer was introduced twice in one cycle")
		}
		seen[m.Offer] = true
	}
}

// TestAggregationBatchOfIdenticalJobs: request-side memoization — a
// batch of identical jobs (differing only in JobId/QDate) produces the
// same matches as the linear scan, while evaluating constraints only
// once per (request class, offer class) pair.
func TestAggregationBatchOfIdenticalJobs(t *testing.T) {
	offers := regularPool(40, 4)
	var requests []*classad.Ad
	for i := 0; i < 30; i++ {
		r := job("u", "INTEL", 32)
		r.SetInt("JobId", int64(i+1))
		r.SetInt("QDate", int64(1000+i))
		if err := r.SetExprString("Rank", "other.Memory"); err != nil {
			t.Fatal(err)
		}
		requests = append(requests, r)
	}
	// All 30 share a signature despite distinct JobIds.
	sig := Signature(requests[0])
	for _, r := range requests {
		if Signature(r) != sig {
			t.Fatal("batch jobs do not share a signature")
		}
	}
	plain := New(Config{}).Negotiate(requests, offers)
	agg := New(Config{Aggregate: true}).Negotiate(requests, offers)
	if len(plain) != len(agg) || len(plain) != 30 {
		t.Fatalf("counts: plain=%d agg=%d", len(plain), len(agg))
	}
	for i := range plain {
		if plain[i].Request != agg[i].Request || plain[i].Offer != agg[i].Offer {
			t.Errorf("match %d differs: %v vs %v", i,
				nameOfAd(plain[i].Offer), nameOfAd(agg[i].Offer))
		}
	}
}

func nameOfAd(ad *classad.Ad) string {
	s, _ := ad.Eval("Name").StringVal()
	return s
}

func TestAggregationHeterogeneousPoolDegenerates(t *testing.T) {
	// Zero value regularity: every machine unique; aggregation must
	// still be correct (one class per offer).
	var offers []*classad.Ad
	for i := 0; i < 20; i++ {
		offers = append(offers, machine(fmt.Sprintf("n%d", i), "INTEL", int64(i+1)))
	}
	classes := AggregateClasses(offers)
	if len(classes) != 20 {
		t.Errorf("got %d classes, want 20", len(classes))
	}
	req := job("u", "INTEL", 15)
	matches := New(Config{Aggregate: true}).Negotiate([]*classad.Ad{req}, offers)
	if len(matches) != 1 {
		t.Fatalf("got %d matches", len(matches))
	}
	if mem, _ := matches[0].Offer.Eval("Memory").IntVal(); mem < 15 {
		t.Errorf("matched machine with %d MB, constraint requires >= 15", mem)
	}
}
