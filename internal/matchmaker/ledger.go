package matchmaker

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/store"
)

// UsageLedger makes the fair-share accounting durable. The paper is
// explicit that everything else in the matchmaker is soft state
// rebuilt by re-advertising (§4.3), but usage history is the one
// thing a restart genuinely loses: forget it and every past resource
// hog restarts with the best priority in the pool. The ledger
// journals every PriorityTable mutation through a store.Log as it
// happens, so the history a restarted (or failed-over) negotiator
// charges against is exactly the history its predecessor accumulated
// — and `chistory -ledger` reads the same source of truth.
//
// The Snapshot-file Save/Load pair remains for pools that accept
// losing the last cycle's charges; a pool that cares opens a ledger.

// ledgerSnapshotEvery bounds WAL growth: MaybeCompact folds the table
// into a fresh snapshot once this many records have accumulated.
const ledgerSnapshotEvery = 256

// Usage-journal operation names.
const (
	usageOpRecord   = "record"
	usageOpReset    = "reset"
	usageOpHalfLife = "halflife"
)

// usageRecord is one journaled PriorityTable mutation. Now carries the
// table's virtual clock at mutation time so replay reproduces decay
// exactly.
type usageRecord struct {
	Op       string  `json:"op"`
	Customer string  `json:"customer,omitempty"`
	Amount   float64 `json:"amount,omitempty"`
	Now      float64 `json:"now,omitempty"`
}

// UsageLedger couples a PriorityTable to a write-ahead log.
type UsageLedger struct {
	table *PriorityTable

	mu  sync.Mutex
	log *store.Log
	err error
}

// OpenUsageLedger opens (or creates) the durable usage ledger at dir,
// replaying any surviving history into a fresh PriorityTable and
// attaching the journal so every subsequent mutation is persisted. fs
// selects the filesystem (nil for the real one).
func OpenUsageLedger(dir string, fs store.FS) (*UsageLedger, error) {
	l, rec, err := store.Open(dir, fs)
	if err != nil {
		return nil, err
	}
	table := NewPriorityTable()
	if len(rec.Snapshot) > 0 {
		if err := table.UnmarshalJSON(rec.Snapshot); err != nil {
			l.Close()
			return nil, fmt.Errorf("matchmaker: ledger snapshot: %w", err)
		}
	}
	for _, raw := range rec.Records {
		var r usageRecord
		if err := json.Unmarshal(raw, &r); err != nil {
			l.Close()
			return nil, fmt.Errorf("matchmaker: corrupt ledger record: %w", err)
		}
		switch r.Op {
		case usageOpRecord:
			table.Advance(r.Now)
			table.Record(r.Customer, r.Amount) // journal not yet attached
		case usageOpReset:
			table.Reset()
		case usageOpHalfLife:
			table.SetHalfLife(r.Amount)
		default:
			l.Close()
			return nil, fmt.Errorf("matchmaker: unknown ledger op %q", r.Op)
		}
	}
	led := &UsageLedger{table: table, log: l}
	table.setJournal(led.append)
	return led, nil
}

// Table returns the ledger-backed priority table; hand it to
// New(…).SetUsage or read it directly. All mutations made through it
// are journaled.
func (u *UsageLedger) Table() *PriorityTable { return u.table }

// append is the PriorityTable journal hook. It runs with the table
// lock held, so it must not call back into the table; snapshotting
// (which serializes the table) is deferred to MaybeCompact.
func (u *UsageLedger) append(r usageRecord) {
	raw, err := json.Marshal(r)
	if err != nil {
		return // unreachable for this struct
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.err != nil {
		return
	}
	if err := u.log.Append(raw); err != nil {
		u.err = err
	}
}

// Err reports the first persistence failure. Once set, further
// mutations stop being journaled (fail-stop, like the underlying log);
// the table keeps working in memory and the caller should arrange a
// reopen.
func (u *UsageLedger) Err() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.err
}

// MaybeCompact folds the table into a fresh snapshot if the WAL has
// grown past the policy threshold. The negotiator calls it once per
// cycle — cheap when below threshold.
func (u *UsageLedger) MaybeCompact() error {
	u.mu.Lock()
	due := u.err == nil && u.log.SinceSnapshot() >= ledgerSnapshotEvery
	u.mu.Unlock()
	if !due {
		return nil
	}
	return u.Compact()
}

// Compact forces a snapshot now. Lock order matters: the table is
// serialized first (table lock), then the log written (ledger lock) —
// never both at once, since append acquires them in the opposite
// nesting.
func (u *UsageLedger) Compact() error {
	data, err := u.table.MarshalJSON()
	if err != nil {
		return err
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.err != nil {
		return u.err
	}
	if err := u.log.Snapshot(data); err != nil {
		u.err = err
		return err
	}
	return nil
}

// Stats reports the underlying log's statistics.
func (u *UsageLedger) Stats() store.Stats {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.log.Stats()
}

// Instrument routes the underlying log's activity into reg (the
// store_wal_* and store_snapshot_* metrics).
func (u *UsageLedger) Instrument(reg *obs.Registry) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.log.Instrument(reg)
}

// Ship serializes the ledger for warm handoff to a standby (the
// store.Log bundle format).
func (u *UsageLedger) Ship() ([]byte, error) {
	// Snapshot first so the bundle is one compact image plus an empty
	// WAL tail — but only when records accumulated since the last one.
	// A standby polls Ship on every heartbeat; an unconditional compact
	// would churn a generation (snapshot + fsync + rename) per poll on
	// an idle pool.
	u.mu.Lock()
	dirty := u.err == nil && u.log.SinceSnapshot() > 0
	u.mu.Unlock()
	if dirty {
		if err := u.Compact(); err != nil {
			return nil, err
		}
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.log.Ship()
}

// Install replaces the ledger's contents with a shipped bundle,
// rebuilding the table from it. The local history it replaces is
// retired with the old log generation.
func (u *UsageLedger) Install(bundle []byte) error {
	u.table.setJournal(nil)
	u.mu.Lock()
	rec, err := u.log.Install(bundle)
	u.mu.Unlock()
	if err != nil {
		return err
	}
	fresh := NewPriorityTable()
	if len(rec.Snapshot) > 0 {
		if err := fresh.UnmarshalJSON(rec.Snapshot); err != nil {
			return fmt.Errorf("matchmaker: shipped ledger snapshot: %w", err)
		}
	}
	for _, raw := range rec.Records {
		var r usageRecord
		if err := json.Unmarshal(raw, &r); err != nil {
			return fmt.Errorf("matchmaker: shipped ledger record: %w", err)
		}
		switch r.Op {
		case usageOpRecord:
			fresh.Advance(r.Now)
			fresh.Record(r.Customer, r.Amount)
		case usageOpReset:
			fresh.Reset()
		case usageOpHalfLife:
			fresh.SetHalfLife(r.Amount)
		}
	}
	// Swap the rebuilt state into the existing table (callers hold
	// pointers to it), then reattach the journal.
	u.table.adopt(fresh)
	u.table.setJournal(u.append)
	u.mu.Lock()
	u.err = nil
	u.mu.Unlock()
	return nil
}

// Close releases the log; the table keeps working in memory but stops
// journaling.
func (u *UsageLedger) Close() error {
	u.table.setJournal(nil)
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.log.Close()
}
