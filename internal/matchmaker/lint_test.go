package matchmaker

import (
	"strings"
	"testing"

	"repro/internal/classad"
	"repro/internal/classad/analysis"
)

func parseAd(t *testing.T, src string) *classad.Ad {
	t.Helper()
	ad, err := classad.Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return ad
}

func TestLintIndexUnindexable(t *testing.T) {
	// member() is not an indexable shape: the index cannot prune, so
	// every cycle scans the whole pool for this request.
	req := parseAd(t, `[ Constraint = member("intel", other.Archs) ]`)
	diags := LintIndex(req, nil)
	if len(diags) != 1 || diags[0].Code != analysis.CodeUnindexable {
		t.Fatalf("diags = %v, want one CAD401", diags)
	}
	if diags[0].Severity != analysis.Warning {
		t.Errorf("CAD401 severity = %v, want Warning", diags[0].Severity)
	}
	if !strings.Contains(diags[0].Message, "scan the full offer set") {
		t.Errorf("message = %q", diags[0].Message)
	}
}

func TestLintIndexCleanConstraint(t *testing.T) {
	req := parseAd(t, `[ Memory = 31; Constraint = other.Memory >= self.Memory && member("x", other.L) ]`)
	if diags := LintIndex(req, nil); len(diags) != 0 {
		t.Fatalf("indexable constraint flagged: %v", diags)
	}
}

func TestLintIndexNoConstraint(t *testing.T) {
	req := parseAd(t, `[ Memory = 31 ]`)
	if diags := LintIndex(req, nil); len(diags) != 0 {
		t.Fatalf("constraint-free ad flagged: %v", diags)
	}
	if diags := LintIndex(nil, nil); len(diags) != 0 {
		t.Fatalf("nil ad flagged: %v", diags)
	}
}

func TestLintIndexUnsat(t *testing.T) {
	// 1/0 folds to a literal error under partial evaluation; strict
	// comparison against it is never true.
	req := parseAd(t, `[ Constraint = other.Memory > 1/0 ]`)
	diags := LintIndex(req, nil)
	if len(diags) != 1 || diags[0].Code != analysis.CodeIndexUnsat {
		t.Fatalf("diags = %v, want one CAD402", diags)
	}
	if diags[0].Severity != analysis.Error {
		t.Errorf("CAD402 severity = %v, want Error", diags[0].Severity)
	}
	if !strings.Contains(diags[0].Message, "other.Memory > 1 / 0") &&
		!strings.Contains(diags[0].Message, "error") {
		t.Errorf("message should name the conjunct or the error value: %q", diags[0].Message)
	}
}

func TestLintIndexPositions(t *testing.T) {
	req := parseAd(t, "[\n  Owner = \"x\";\n  Constraint = member(\"a\", other.L)\n]")
	diags := LintIndex(req, nil)
	if len(diags) != 1 {
		t.Fatalf("diags = %v", diags)
	}
	if diags[0].Line != 3 {
		t.Errorf("finding at line %d, want 3 (the Constraint attribute)", diags[0].Line)
	}
}

func TestAnalyzeIncludesIndexDiags(t *testing.T) {
	req := parseAd(t, `[ Owner = "u"; Constraint = member("intel", other.Archs) ]`)
	offers := []*classad.Ad{parseAd(t, `[ Type = "machine"; Archs = {"intel"}; Constraint = true ]`)}
	a := Analyze(req, offers, nil)
	if len(a.Index) != 1 || a.Index[0].Code != analysis.CodeUnindexable {
		t.Fatalf("Analysis.Index = %v, want CAD401", a.Index)
	}
	if a.Unsatisfiable {
		t.Error("CAD401 is a warning; it must not mark the request unsatisfiable")
	}
	if out := a.String(); !strings.Contains(out, "index: ") || !strings.Contains(out, "CAD401") {
		t.Errorf("String() missing index line:\n%s", out)
	}
}

func TestAnalyzeIndexUnsatIsFatal(t *testing.T) {
	req := parseAd(t, `[ Constraint = other.Memory > 1/0 ]`)
	a := Analyze(req, nil, nil)
	if !a.Unsatisfiable {
		t.Fatal("CAD402 must mark the request unsatisfiable even on an empty pool")
	}
}

func TestAnalyzeStaticNever(t *testing.T) {
	// Three offers: two provably too small (pure evaluation), one
	// matching. The clause report must prove exactly the two.
	req := parseAd(t, `[ Owner = "u"; Constraint = other.Memory >= 128 ]`)
	offers := []*classad.Ad{
		parseAd(t, `[ Type = "machine"; Memory = 32; Constraint = true ]`),
		parseAd(t, `[ Type = "machine"; Memory = 64; Constraint = true ]`),
		parseAd(t, `[ Type = "machine"; Memory = 256; Constraint = true ]`),
	}
	a := Analyze(req, offers, nil)
	if len(a.Clauses) != 1 || a.Clauses[0].StaticNever != 2 {
		t.Fatalf("StaticNever = %+v, want 2 on the single clause", a.Clauses)
	}
	if out := a.String(); !strings.Contains(out, "provably never true against 2/3 offer(s)") {
		t.Errorf("String() missing bilateral static line:\n%s", out)
	}
}
