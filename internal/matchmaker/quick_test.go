package matchmaker

// Property-based tests of the negotiation cycle's invariants over
// randomly generated pools and workloads.

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/classad"
)

// randomPool builds a random offer list; some machines carry owner
// constraints.
func randomPool(r *rand.Rand, n int) []*classad.Ad {
	archs := []string{"INTEL", "SPARC", "ALPHA"}
	out := make([]*classad.Ad, n)
	for i := range out {
		m := machine(fmt.Sprintf("m%d", i), archs[r.Intn(len(archs))],
			int64(32*(1+r.Intn(8))))
		switch r.Intn(4) {
		case 0:
			_ = m.SetExprString("Constraint", `other.Memory <= Memory`)
		case 1:
			_ = m.SetExprString("Constraint", fmt.Sprintf(`other.Owner != "u%d"`, r.Intn(4)))
		}
		if r.Intn(2) == 0 {
			_ = m.SetExprString("Rank", "other.Memory")
		}
		out[i] = m
	}
	return out
}

func randomRequests(r *rand.Rand, n int) []*classad.Ad {
	archs := []string{"INTEL", "SPARC", "ALPHA"}
	out := make([]*classad.Ad, n)
	for i := range out {
		j := job(fmt.Sprintf("u%d", r.Intn(4)), archs[r.Intn(len(archs))],
			int64(16*(1+r.Intn(8))))
		j.SetInt("Memory", int64(16*(1+r.Intn(8))))
		if r.Intn(2) == 0 {
			_ = j.SetExprString("Rank", "other.Memory")
		}
		out[i] = j
	}
	return out
}

// trickyPool builds an offer list that stresses the offer index:
// literal attributes (posting lists), expression-valued attributes
// (always-candidates), missing attributes (strict-comparison pruning),
// wrong-typed attributes, and offer-side constraints.
func trickyPool(r *rand.Rand, n int) []*classad.Ad {
	archs := []string{"INTEL", "SPARC", "ALPHA"}
	out := make([]*classad.Ad, n)
	for i := range out {
		m := machine(fmt.Sprintf("m%d", i), archs[r.Intn(len(archs))],
			int64(32*(1+r.Intn(8))))
		switch r.Intn(8) {
		case 0: // expression-valued Memory: index must keep it
			m.SetInt("Slots", int64(1+r.Intn(4)))
			_ = m.SetExprString("Memory", "32 * Slots")
		case 1: // missing Memory entirely
			m.Delete("Memory")
		case 2: // wrong-typed Arch
			m.SetInt("Arch", int64(r.Intn(3)))
		case 3: // offer-side constraint (bilateral pruning untouched)
			_ = m.SetExprString("Constraint", `other.Memory <= Memory`)
		case 4:
			_ = m.SetExprString("Constraint", fmt.Sprintf(`other.Owner != "u%d"`, r.Intn(4)))
		}
		if r.Intn(2) == 0 {
			_ = m.SetExprString("Rank", "other.Memory")
		}
		out[i] = m
	}
	return out
}

// trickyRequests builds a request mix of matchable, unsatisfiable, and
// undefined-yielding constraints, exercising every extraction rule of
// the index (self folds, unqualified names, flipped literals,
// unindexable disjunctions, both constraint spellings).
func trickyRequests(r *rand.Rand, n int) []*classad.Ad {
	archs := []string{"INTEL", "SPARC", "ALPHA"}
	out := make([]*classad.Ad, n)
	for i := range out {
		j := job(fmt.Sprintf("u%d", r.Intn(4)), archs[r.Intn(len(archs))],
			int64(16*(1+r.Intn(8))))
		j.SetInt("Memory", int64(16*(1+r.Intn(8))))
		switch r.Intn(10) {
		case 0: // self fold: residual is other.Memory >= <literal>
			_ = j.SetExprString("Constraint", `other.Memory >= self.Memory`)
		case 1: // flipped literal operand
			_ = j.SetExprString("Constraint", fmt.Sprintf(`%d <= other.Memory`, 32*(1+r.Intn(4))))
		case 2: // unsatisfiable interval pair: prunes everything
			_ = j.SetExprString("Constraint", `other.Memory > 64 && other.Memory < 32`)
		case 3: // undefined-yielding: attribute absent pool-wide
			_ = j.SetExprString("Constraint", `other.NoSuchAttr >= 5`)
		case 4: // disjunction: not indexable, full scan
			_ = j.SetExprString("Constraint", `other.Memory >= 64 || other.Mips >= 10`)
		case 5: // alternative spelling
			c, _ := j.Lookup("Constraint")
			j.Delete("Constraint")
			j.Set("Requirements", c)
		case 6: // equality on the numeric axis
			_ = j.SetExprString("Constraint", fmt.Sprintf(`other.Memory == %d`, 32*(1+r.Intn(8))))
		}
		if r.Intn(2) == 0 {
			_ = j.SetExprString("Rank", "other.Memory")
		}
		out[i] = j
	}
	return out
}

// TestQuickDifferentialIndexParallel is the differential property test
// locking the two-stage engine to the sequential reference: over
// randomized pools mixing matchable, unsatisfiable, and
// undefined-yielding constraints, Negotiate with indexing and/or
// parallel scanning enabled returns identical matches, ranks, and
// ordering to the plain sequential scan — with and without FairShare.
func TestQuickDifferentialIndexParallel(t *testing.T) {
	maxCount := 120
	if testing.Short() {
		maxCount = 25
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		offers := trickyPool(r, 1+r.Intn(40))
		requests := trickyRequests(r, 1+r.Intn(25))
		env := classad.FixedEnv(0, seed)
		for _, fair := range []bool{false, true} {
			ref := New(Config{Env: env, FairShare: fair}).Negotiate(requests, offers)
			for _, cfg := range []Config{
				{Env: env, FairShare: fair, Index: true},
				{Env: env, FairShare: fair, Parallel: 4},
				{Env: env, FairShare: fair, Index: true, Parallel: 4},
				{Env: env, FairShare: fair, Index: true, Parallel: ParallelAuto},
			} {
				got := New(cfg).Negotiate(requests, offers)
				if len(got) != len(ref) {
					t.Logf("seed %d cfg %+v: %d matches, reference %d", seed, cfg, len(got), len(ref))
					return false
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Logf("seed %d cfg %+v: match %d differs:\n got %+v\n ref %+v",
							seed, cfg, i, got[i], ref[i])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: maxCount}); err != nil {
		t.Error(err)
	}
}

// TestQuickDifferentialFirstFit extends the differential guarantee to
// first-fit mode: index and parallelism must still pick the earliest
// compatible available offer.
func TestQuickDifferentialFirstFit(t *testing.T) {
	maxCount := 60
	if testing.Short() {
		maxCount = 15
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		offers := trickyPool(r, 1+r.Intn(40))
		requests := trickyRequests(r, 1+r.Intn(20))
		env := classad.FixedEnv(0, seed)
		ref := New(Config{Env: env, FirstFit: true}).Negotiate(requests, offers)
		for _, cfg := range []Config{
			{Env: env, FirstFit: true, Index: true},
			{Env: env, FirstFit: true, Index: true, Parallel: 4},
		} {
			got := New(cfg).Negotiate(requests, offers)
			if len(got) != len(ref) {
				t.Logf("seed %d cfg %+v: %d matches, reference %d", seed, cfg, len(got), len(ref))
				return false
			}
			for i := range ref {
				if got[i].Request != ref[i].Request || got[i].Offer != ref[i].Offer {
					t.Logf("seed %d cfg %+v: match %d differs", seed, cfg, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: maxCount}); err != nil {
		t.Error(err)
	}
}

// TestQuickNegotiateInvariants: every produced match is bilaterally
// valid, no offer is used twice, no request is served twice, and the
// cycle is deterministic.
func TestQuickNegotiateInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		offers := randomPool(r, 1+r.Intn(20))
		requests := randomRequests(r, 1+r.Intn(20))
		env := classad.FixedEnv(0, seed)
		for _, cfg := range []Config{
			{Env: env},
			{Env: env, FairShare: true},
			{Env: env, Aggregate: true},
			{Env: env, FirstFit: true},
		} {
			matches := New(cfg).Negotiate(requests, offers)
			usedOffer := map[*classad.Ad]bool{}
			usedReq := map[*classad.Ad]bool{}
			for _, m := range matches {
				if usedOffer[m.Offer] || usedReq[m.Request] {
					t.Logf("seed %d cfg %+v: duplicate use", seed, cfg)
					return false
				}
				usedOffer[m.Offer] = true
				usedReq[m.Request] = true
				res := classad.MatchEnv(m.Request, m.Offer, env)
				if !res.Matched {
					t.Logf("seed %d cfg %+v: invalid match emitted", seed, cfg)
					return false
				}
			}
			again := New(cfg).Negotiate(requests, offers)
			if len(again) != len(matches) {
				t.Logf("seed %d cfg %+v: nondeterministic cycle", seed, cfg)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickNegotiateMaximalForSatisfiableRequests: any request left
// unmatched has no compatible offer left unused (the cycle does not
// strand work it could have served). This holds for the greedy
// algorithm because each request takes at most one offer.
func TestQuickNegotiateNoStrandedWork(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		offers := randomPool(r, 1+r.Intn(15))
		requests := randomRequests(r, 1+r.Intn(15))
		env := classad.FixedEnv(0, seed)
		matches := New(Config{Env: env}).Negotiate(requests, offers)
		usedOffer := map[*classad.Ad]bool{}
		usedReq := map[*classad.Ad]bool{}
		for _, m := range matches {
			usedOffer[m.Offer] = true
			usedReq[m.Request] = true
		}
		for _, req := range requests {
			if usedReq[req] {
				continue
			}
			for _, off := range offers {
				if usedOffer[off] {
					continue
				}
				if classad.MatchEnv(req, off, env).Matched {
					t.Logf("seed %d: request stranded despite compatible free offer", seed)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickAggregationEquivalence: aggregation never changes who gets
// served or the rank they get, over random value-regular pools.
func TestQuickAggregationEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		classes := 1 + r.Intn(5)
		n := classes * (1 + r.Intn(6))
		offers := make([]*classad.Ad, n)
		for i := range offers {
			c := i % classes
			m := machine(fmt.Sprintf("m%d", i), "INTEL", int64(32*(c+1)))
			m.SetInt("Class", int64(c))
			offers[i] = m
		}
		requests := randomRequests(r, 1+r.Intn(12))
		env := classad.FixedEnv(0, seed)
		plain := New(Config{Env: env}).Negotiate(requests, offers)
		agg := New(Config{Env: env, Aggregate: true}).Negotiate(requests, offers)
		if len(plain) != len(agg) {
			t.Logf("seed %d: counts differ %d vs %d", seed, len(plain), len(agg))
			return false
		}
		for i := range plain {
			if plain[i].Request != agg[i].Request ||
				plain[i].RequestRank != agg[i].RequestRank ||
				Signature(plain[i].Offer) != Signature(agg[i].Offer) {
				t.Logf("seed %d: match %d differs", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickGangInvariants: gang assignments use distinct offers and
// every slot's bilateral constraints hold.
func TestQuickGangInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		offers := randomPool(r, 2+r.Intn(15))
		// Random 2-3 slot gang over arch/memory requirements.
		slots := 2 + r.Intn(2)
		gangSrc := `[ Type = "Job"; Owner = "u0"; Gang = {`
		for s := 0; s < slots; s++ {
			if s > 0 {
				gangSrc += ", "
			}
			gangSrc += fmt.Sprintf(
				`[ Constraint = other.Memory >= %d ]`, 32*(1+r.Intn(4)))
		}
		gangSrc += `} ]`
		req := classad.MustParse(gangSrc)
		env := classad.FixedEnv(0, seed)
		gm, ok := MatchGang(req, offers, env)
		if !ok {
			return true // nothing to check; all-or-nothing respected
		}
		seen := map[int]bool{}
		for si, oi := range gm.Offers {
			if seen[oi] {
				t.Logf("seed %d: offer %d reused", seed, oi)
				return false
			}
			seen[oi] = true
			if !classad.MatchEnv(gm.SubRequests[si], offers[oi], env).Matched {
				t.Logf("seed %d: slot %d invalid", seed, si)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
