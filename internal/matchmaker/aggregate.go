package matchmaker

import (
	"strings"

	"repro/internal/classad"
)

// Ad aggregation (paper §5, future work): "lists of classads
// representing resources and customers exhibit a high degree of
// regularity ... We are currently investigating techniques for
// exploiting this regularity, and automatically aggregating classads
// so that matches may be performed in groups."
//
// The implementation groups offers into equivalence classes by a
// structural signature — the canonical unparse of the ad with
// identity-only attributes removed — and evaluates each request
// against one representative per class instead of every offer. When a
// pool has high value regularity (many identical workstations), a
// negotiation cycle's matching work drops from O(offers) to
// O(classes) per request.
//
// The optimization is sound exactly when constraints and ranks do not
// discriminate between members of a class, i.e. they do not reference
// the excluded identity attributes. That is the same assumption the
// deployed negotiator's auto-clustering makes.

// identityAttrs are excluded from the aggregation signature: they
// identify an individual resource or queue entry without describing
// its capability or requirements. (The deployed system computes the
// "significant attributes" actually referenced by pool expressions;
// this static list covers the conventional schema and carries the same
// caveat — constraints that discriminate on identity attributes defeat
// aggregation's assumption.)
var identityAttrs = map[string]bool{
	classad.Fold(classad.AttrName):    true,
	classad.Fold(classad.AttrContact): true,
	classad.Fold(classad.AttrTicket):  true,
	"machine":                         true,
	// Job-side identity: queue position, not requirements.
	"jobid":   true,
	"cluster": true,
	"process": true,
	"qdate":   true,
}

// Signature returns the aggregation key of an ad: attributes sorted
// case-insensitively, identity attributes removed, expressions in
// canonical unparsed form.
func Signature(ad *classad.Ad) string {
	var b strings.Builder
	for _, n := range ad.SortedNames() {
		if identityAttrs[classad.Fold(n)] {
			continue
		}
		e, _ := ad.Lookup(n)
		b.WriteString(classad.Fold(n))
		b.WriteByte('=')
		b.WriteString(e.String())
		b.WriteByte(';')
	}
	return b.String()
}

// aggregation holds the equivalence classes of one cycle's offers.
type aggregation struct {
	groups [][]int // offer indices per class, in first-seen order
}

// aggregate partitions offers into classes by Signature.
func aggregate(offers []*classad.Ad) *aggregation {
	index := make(map[string]int)
	a := &aggregation{}
	for i, off := range offers {
		sig := Signature(off)
		gi, ok := index[sig]
		if !ok {
			gi = len(a.groups)
			index[sig] = gi
			a.groups = append(a.groups, nil)
		}
		a.groups[gi] = append(a.groups[gi], i)
	}
	return a
}

// NumClasses reports how many equivalence classes the offers formed —
// the benchmark's measure of value regularity.
func (a *aggregation) NumClasses() int { return len(a.groups) }

// classCand is one offer class a request is compatible with, with the
// ranks every member of the class shares. Candidate lists are computed
// once per *request signature* and reused across a whole batch of
// identical jobs.
type classCand struct {
	group            int
	reqRank, offRank float64
	// claimed is the class's State == "Claimed" status. State is part
	// of the aggregation signature (it is not an identity attribute),
	// so every member of a class shares it and the representative's
	// value stands for the group in better()'s tie-break.
	claimed bool
}

// candidates evaluates the request against one representative per
// class and returns the compatible classes. Members of a class are
// identical modulo identity attributes, so any member represents.
func (a *aggregation) candidates(req *classad.Ad, offers []*classad.Ad, cfg Config) []classCand {
	var out []classCand
	for gi, group := range a.groups {
		res := classad.MatchEnv(req, offers[group[0]], cfg.Env)
		if !res.Matched {
			continue
		}
		out = append(out, classCand{group: gi, reqRank: res.LeftRank, offRank: res.RightRank,
			claimed: !cfg.LegacyClaimedTieBreak && offerClaimed(offers[group[0]])})
	}
	return out
}

// pick selects the offer for one request from its candidate classes,
// reproducing the scan's choice exactly — better() is the shared
// selection rule: the best-ranked compatible offer, ties broken by
// the earliest available offer index (first-fit mode: simply the
// earliest available compatible offer).
func (a *aggregation) pick(cands []classCand, available []bool, firstFit bool) (best int, reqRank, offRank float64) {
	best = -1
	var bestClaimed bool
	for _, c := range cands {
		oi := a.firstAvailable(c.group, available)
		if oi < 0 {
			continue
		}
		switch {
		case firstFit:
			if best < 0 || oi < best {
				best, reqRank, offRank = oi, c.reqRank, c.offRank
			}
		case best < 0 || better(candidate{oi, c.reqRank, c.offRank, c.claimed}, candidate{best, reqRank, offRank, bestClaimed}):
			best, reqRank, offRank, bestClaimed = oi, c.reqRank, c.offRank, c.claimed
		}
	}
	return best, reqRank, offRank
}

// firstAvailable returns the smallest available offer index in a
// class, or -1.
func (a *aggregation) firstAvailable(group int, available []bool) int {
	for _, oi := range a.groups[group] {
		if available[oi] {
			return oi
		}
	}
	return -1
}

// AggregateClasses exposes the class decomposition for tools and
// benchmarks: it returns the offer indices of each class.
func AggregateClasses(offers []*classad.Ad) [][]int {
	return aggregate(offers).groups
}
