package matchmaker

import (
	"strings"
	"testing"

	"repro/internal/classad"
)

func smallPool() []*classad.Ad {
	return []*classad.Ad{
		machine("i1", "INTEL", 64),
		machine("i2", "INTEL", 128),
		machine("s1", "SPARC", 256),
	}
}

func TestAnalyzeSatisfiable(t *testing.T) {
	req := job("u", "INTEL", 64)
	a := Analyze(req, smallPool(), nil)
	if a.Unsatisfiable {
		t.Error("satisfiable request flagged unsatisfiable")
	}
	if a.Compatible != 2 {
		t.Errorf("compatible = %d, want 2", a.Compatible)
	}
	if len(a.Clauses) != 2 {
		t.Fatalf("clauses = %d, want 2 conjuncts", len(a.Clauses))
	}
	// Arch clause: 2 of 3; Memory clause: all 3.
	if a.Clauses[0].Satisfied != 2 {
		t.Errorf("arch clause satisfied by %d, want 2", a.Clauses[0].Satisfied)
	}
	if a.Clauses[1].Satisfied != 3 {
		t.Errorf("memory clause satisfied by %d, want 3", a.Clauses[1].Satisfied)
	}
	if !strings.Contains(a.String(), "matchable") {
		t.Errorf("report verdict wrong:\n%s", a)
	}
}

// TestAnalyzeUnsatisfiable is experiment E12's core case: a clause no
// offer can satisfy is identified by name.
func TestAnalyzeUnsatisfiable(t *testing.T) {
	req := job("u", "ALPHA", 64) // no ALPHA machines exist
	a := Analyze(req, smallPool(), nil)
	if !a.Unsatisfiable {
		t.Fatal("impossible request not flagged")
	}
	if a.Clauses[0].Satisfied != 0 {
		t.Errorf("arch clause satisfied by %d, want 0", a.Clauses[0].Satisfied)
	}
	report := a.String()
	if !strings.Contains(report, "unsatisfiable") {
		t.Errorf("report should say unsatisfiable:\n%s", report)
	}
	if !strings.Contains(report, "!") {
		t.Errorf("culprit clause not flagged:\n%s", report)
	}
}

// TestAnalyzeSchemaMismatch: a clause referencing an attribute no
// offer publishes shows up as undefined, the paper's "hidden
// characteristics of a pool" diagnostic.
func TestAnalyzeSchemaMismatch(t *testing.T) {
	req := classad.MustParse(`[
		Owner = "u";
		Constraint = other.HasGPU == true && other.Memory >= 1;
	]`)
	a := Analyze(req, smallPool(), nil)
	if !a.Unsatisfiable {
		t.Error("GPU clause should be unsatisfiable")
	}
	if a.Clauses[0].Undefined != 3 {
		t.Errorf("GPU clause undefined on %d offers, want 3", a.Clauses[0].Undefined)
	}
	if !strings.Contains(a.String(), "undefined on 3") {
		t.Errorf("report should count undefined offers:\n%s", a)
	}
}

// TestAnalyzeRejectedByOwners: the pool could serve the request, but
// owner policies refuse it — a different verdict than unsatisfiable.
func TestAnalyzeRejectedByOwners(t *testing.T) {
	pool := smallPool()
	for _, m := range pool {
		if err := m.SetExprString("Constraint", `other.Owner == "vip"`); err != nil {
			t.Fatal(err)
		}
	}
	req := job("pleb", "INTEL", 1)
	a := Analyze(req, pool, nil)
	if a.Unsatisfiable {
		t.Error("owner rejection is not unsatisfiability")
	}
	if a.Compatible != 0 || a.RequestOK != 2 || a.OfferOK != 0 {
		t.Errorf("counts wrong: %+v", a)
	}
	if !strings.Contains(a.String(), "owner policies refuse") {
		t.Errorf("verdict should blame owner policies:\n%s", a)
	}
}

func TestAnalyzeNoConstraint(t *testing.T) {
	req := classad.MustParse(`[ Owner = "u" ]`)
	a := Analyze(req, smallPool(), nil)
	if len(a.Clauses) != 0 {
		t.Errorf("constraint-free request has %d clauses", len(a.Clauses))
	}
	if a.Compatible != 3 {
		t.Errorf("compatible = %d, want 3", a.Compatible)
	}
	if !strings.Contains(a.String(), "no constraint") {
		t.Errorf("report:\n%s", a)
	}
}

func TestAnalyzeEmptyPool(t *testing.T) {
	a := Analyze(job("u", "INTEL", 1), nil, nil)
	if a.Unsatisfiable {
		t.Error("empty pool must not be reported as clause unsatisfiability")
	}
	if a.Compatible != 0 {
		t.Errorf("compatible = %d", a.Compatible)
	}
	if !strings.Contains(a.String(), "no match") {
		t.Errorf("report:\n%s", a)
	}
}

func TestAnalyzeClauseErrorCounting(t *testing.T) {
	req := classad.MustParse(`[
		Owner = "u";
		Constraint = (other.Memory / 0 > 1) && other.Memory >= 1;
	]`)
	a := Analyze(req, smallPool(), nil)
	if a.Clauses[0].Errored != 3 {
		t.Errorf("division-by-zero clause errored on %d, want 3", a.Clauses[0].Errored)
	}
	if !strings.Contains(a.String(), "error on 3") {
		t.Errorf("report:\n%s", a)
	}
}

func TestAnalyzeResiduals(t *testing.T) {
	// A constraint over the job's own Memory shows providers the
	// concrete bound.
	req := classad.MustParse(`[
		Owner = "u";
		Memory = 48;
		Constraint = other.Memory >= self.Memory && other.Arch == "INTEL";
	]`)
	a := Analyze(req, smallPool(), nil)
	if a.Clauses[0].Residual != "other.Memory >= 48" {
		t.Errorf("residual = %q", a.Clauses[0].Residual)
	}
	// The arch clause has nothing to fold.
	if a.Clauses[1].Residual != "" {
		t.Errorf("unexpected residual %q", a.Clauses[1].Residual)
	}
	if !strings.Contains(a.String(), "other.Memory >= 48") {
		t.Errorf("report should show the residual:\n%s", a)
	}
	// Counts still computed against the real constraint: machines
	// with >= 48 MB are i1(64), i2(128), s1(256) = 3.
	if a.Clauses[0].Satisfied != 3 {
		t.Errorf("memory clause satisfied = %d", a.Clauses[0].Satisfied)
	}
}

func TestSplitConjunctsOrder(t *testing.T) {
	e := classad.MustParseExpr("a && b && c && d")
	parts := classad.SplitConjuncts(e)
	if len(parts) != 4 {
		t.Fatalf("got %d conjuncts, want 4", len(parts))
	}
	got := make([]string, len(parts))
	for i, p := range parts {
		got[i] = p.String()
	}
	if strings.Join(got, ",") != "a,b,c,d" {
		t.Errorf("conjunct order = %v", got)
	}
	// Disjunctions and other expressions do not split.
	if n := len(classad.SplitConjuncts(classad.MustParseExpr("a || b"))); n != 1 {
		t.Errorf("|| split into %d parts", n)
	}
}
