package matchmaker

// Index-friendliness lint (the CAD400 series): static warnings about
// how a request's constraint will behave against the two-stage
// negotiation engine's OfferIndex. The index prunes candidates using
// conjuncts of the shape `other.Attr OP literal` (after partial
// evaluation against the request); a constraint that contributes none
// forces stage two to scan the entire offer set every cycle — correct,
// but the exact quadratic cost the index exists to avoid. The pass
// lives here rather than in classad/analysis because it is defined by
// this package's IndexableTests extraction: the lint warns about
// whatever the index actually fails to use, not an approximation.

import (
	"fmt"

	"repro/internal/classad"
	"repro/internal/classad/analysis"
)

// LintIndex reports index-friendliness findings for a request ad:
//
//   - CAD401 (warning): the ad has a constraint, but no conjunct is
//     indexable — every negotiation cycle will evaluate the full offer
//     set for this request.
//   - CAD402 (error): a conjunct compares against a literal undefined
//     or error after partial evaluation; comparisons are strict
//     (§3.1), so the constraint can never be true and the index
//     rejects the request outright.
//
// An ad without a constraint gets no findings: it accepts everything,
// which needs no index. Findings are positioned at the constraint
// attribute.
func LintIndex(req *classad.Ad, env *classad.Env) []analysis.Diagnostic {
	if req == nil {
		return nil
	}
	ce, ok := classad.ConstraintOf(req)
	if !ok {
		return nil
	}
	cattr := classad.AttrRequirements
	if _, ok := req.Lookup(classad.AttrConstraint); ok {
		cattr = classad.AttrConstraint
	}
	mkDiag := func(code string, sev analysis.Severity, msg string) analysis.Diagnostic {
		d := analysis.Diagnostic{Code: code, Severity: sev, Attr: cattr,
			Message: msg, Expr: ce.String()}
		if p, ok := req.AttrPos(cattr); ok {
			d.Line, d.Col = p.Line, p.Col
		}
		return d
	}

	tests, unsat := IndexableTests(req, env)
	if unsat {
		culprit := ""
		for _, conj := range classad.SplitConjuncts(ce) {
			if comparesBadLiteral(classad.PartialEval(conj, req, env)) {
				culprit = conj.String()
				break
			}
		}
		msg := "constraint compares against a literal undefined/error value; strict comparison is never true, so the constraint can never be satisfied"
		if culprit != "" {
			msg = fmt.Sprintf("conjunct %q compares against a literal undefined/error value; strict comparison is never true, so the constraint can never be satisfied", culprit)
		}
		return []analysis.Diagnostic{mkDiag(analysis.CodeIndexUnsat, analysis.Error, msg)}
	}
	if len(tests) == 0 {
		return []analysis.Diagnostic{mkDiag(analysis.CodeUnindexable, analysis.Warning,
			"no conjunct of the constraint is indexable (shape `other.Attr OP literal` after partial evaluation): every negotiation cycle will scan the full offer set for this ad")}
	}
	return nil
}

// comparesBadLiteral reports whether a residual conjunct is a
// comparison with a literal undefined/error operand — the shape that
// makes IndexableTests return unsat.
func comparesBadLiteral(res classad.Expr) bool {
	info := classad.Inspect(res)
	if info.Kind != classad.KindBinary {
		return false
	}
	switch info.Op {
	case classad.OpLt, classad.OpLe, classad.OpGt, classad.OpGe, classad.OpEq:
	default:
		return false
	}
	l := classad.Inspect(info.Args[0])
	r := classad.Inspect(info.Args[1])
	ref, lit := l, r
	if l.Kind == classad.KindLiteral && r.Kind == classad.KindAttrRef {
		ref, lit = r, l
	} else if !(l.Kind == classad.KindAttrRef && r.Kind == classad.KindLiteral) {
		return false
	}
	if ref.Scope == classad.ScopeSelf {
		return false
	}
	return lit.Value.IsUndefined() || lit.Value.IsError()
}
