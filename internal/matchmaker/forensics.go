package matchmaker

// Negotiation forensics: the per-request "why did this not match?"
// ledger the paper's future-work §5b asks for, answered from the live
// cycle rather than static analysis (which canalyze/cadlint already
// provide). When the matchmaker is instrumented, every negotiation
// records a bounded Report per request — for an unmatched request, a
// per-offer verdict naming the failing constraint conjunct, the
// request that took the offer, or the posting-list test that pruned
// it; for a matched request, whether the chosen offer was already
// claimed (the ROADMAP item 1 livelock signature: the match succeeds
// every cycle, the claim is rejected every cycle). Reports are served
// at /why?request= on the debug endpoint and by `cstatus -why`.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/classad"
)

// Per-offer forensic outcomes. The first three mirror the scan's
// decision structure; matched-claimed flags a match the claim protocol
// is likely to reject (claimed resources revalidate rank at claim
// time).
const (
	VerdictConstraintFailed = "constraint-failed"
	VerdictOutranked        = "outranked"
	VerdictIndexPruned      = "index-pruned"
	VerdictMatchedClaimed   = "matched-claimed"
	VerdictUnpicked         = "unpicked"
)

// OfferVerdict is one offer's fate during one request's scan.
type OfferVerdict struct {
	// Offer names the offer ad.
	Offer string `json:"offer"`
	// Outcome is one of the Verdict* constants.
	Outcome string `json:"outcome"`
	// Detail localizes the outcome: the failing conjunct, the winning
	// request, or the pruning posting-list test.
	Detail string `json:"detail,omitempty"`
}

// Report is the forensic record of one request's most recent
// negotiation.
type Report struct {
	Request string    `json:"request"`
	Owner   string    `json:"owner,omitempty"`
	Cycle   string    `json:"cycle"`
	Time    time.Time `json:"time"`
	// Matched reports the cycle's outcome; Offer names the match.
	Matched bool   `json:"matched"`
	Offer   string `json:"offer,omitempty"`
	// Claimed is set on a matched report whose offer advertised
	// State == "Claimed" — the match may bounce off claim-time
	// revalidation (ROADMAP item 1).
	Claimed bool `json:"claimed,omitempty"`
	// Reason is the unmatched-summary category (Reason* constants).
	Reason string `json:"reason,omitempty"`
	// Ledger holds per-offer verdicts, capped at maxLedgerEntries;
	// Truncated reports that offers beyond the cap went unexamined.
	Ledger    []OfferVerdict `json:"ledger,omitempty"`
	Truncated bool           `json:"truncated,omitempty"`
}

const (
	// maxForensicsReports bounds the report store; the oldest
	// request's report is evicted past it.
	maxForensicsReports = 256
	// maxLedgerEntries bounds one report's per-offer ledger; building
	// a ledger stops (and marks Truncated) once it fills, so forensic
	// cost per unmatched request is O(cap) evaluations, not O(pool).
	maxLedgerEntries = 16
)

// Forensics retains the latest Report per request (keyed by folded
// request name), bounded by maxForensicsReports with FIFO eviction.
// All methods are safe for concurrent use; a nil *Forensics no-ops.
type Forensics struct {
	mu      sync.Mutex
	reports map[string]Report
	order   []string
}

// NewForensics returns an empty store.
func NewForensics() *Forensics {
	return &Forensics{reports: make(map[string]Report)}
}

// record stores r as the latest report for its request.
func (f *Forensics) record(r Report) {
	if f == nil {
		return
	}
	key := classad.Fold(r.Request)
	f.mu.Lock()
	if _, seen := f.reports[key]; !seen {
		f.order = append(f.order, key)
		if len(f.order) > maxForensicsReports {
			delete(f.reports, f.order[0])
			f.order = f.order[1:]
		}
	}
	f.reports[key] = r
	f.mu.Unlock()
}

// Lookup returns the latest report for the named request.
func (f *Forensics) Lookup(request string) (Report, bool) {
	if f == nil {
		return Report{}, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	r, ok := f.reports[classad.Fold(request)]
	return r, ok
}

// Requests lists the request names with a retained report, sorted.
func (f *Forensics) Requests() []string {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	out := make([]string, 0, len(f.reports))
	for _, r := range f.reports {
		out = append(out, r.Request)
	}
	f.mu.Unlock()
	sort.Strings(out)
	return out
}

// offerClaimed reports whether an offer advertises itself as already
// claimed by a running job.
func offerClaimed(off *classad.Ad) bool {
	s, ok := off.Eval("State").StringVal()
	return ok && strings.EqualFold(s, "Claimed")
}

// buildLedger walks the offers an unmatched request was (or would have
// been) scanned against and explains each one's rejection, stopping at
// the ledger cap. cand/indexed carry the offer index's candidate set
// for the request (indexed=false means every offer was scanned);
// takenBy names the request that consumed each unavailable offer this
// cycle.
func (m *Matchmaker) buildLedger(req *classad.Ad, offers []*classad.Ad, available []bool, takenBy []string, cand []int, indexed bool) ([]OfferVerdict, bool) {
	inCand := map[int]bool{}
	var tests []reqTest
	if indexed {
		for _, oi := range cand {
			inCand[oi] = true
		}
		tests, _ = IndexableTests(req, m.cfg.Env)
	}
	var ledger []OfferVerdict
	for oi, off := range offers {
		if len(ledger) >= maxLedgerEntries {
			return ledger, true
		}
		v := OfferVerdict{Offer: adName(off)}
		switch {
		case indexed && !inCand[oi]:
			v.Outcome = VerdictIndexPruned
			v.Detail = pruneDetail(tests, off)
		default:
			res := classad.MatchEnv(req, off, m.cfg.Env)
			switch {
			case !res.Matched:
				v.Outcome = VerdictConstraintFailed
				v.Detail = failedConjunct(req, off, res, m.cfg.Env)
			case !available[oi]:
				v.Outcome = VerdictOutranked
				if takenBy != nil && takenBy[oi] != "" {
					v.Detail = "taken by " + takenBy[oi]
				} else {
					v.Detail = "claimed earlier this cycle"
				}
			default:
				// Compatible and available offers are always picked, so
				// this arm only fires on exotic rank values; keep the
				// ledger honest rather than silent.
				v.Outcome = VerdictUnpicked
				v.Detail = "compatible and available but not selected"
			}
		}
		ledger = append(ledger, v)
	}
	return ledger, false
}

// failedConjunct names the first constraint conjunct that rejects the
// pair, checking the request's side first (the side order MatchResult
// reports).
func failedConjunct(req, off *classad.Ad, res classad.MatchResult, env *classad.Env) string {
	side := func(label string, self, other *classad.Ad) string {
		e, ok := classad.ConstraintOf(self)
		if !ok {
			return label + " constraint not satisfied"
		}
		for _, c := range classad.SplitConjuncts(e) {
			if !classad.EvalExprAgainst(c, self, other, env).IsTrue() {
				return fmt.Sprintf("%s constraint conjunct `%s` not satisfied", label, c)
			}
		}
		return label + " constraint not satisfied"
	}
	if !res.LeftOK {
		return side("request", req, off)
	}
	return side("offer", off, req)
}

// pruneDetail names the posting-list test that excluded the offer from
// the candidate set, with the offer's actual value.
func pruneDetail(tests []reqTest, off *classad.Ad) string {
	for _, t := range tests {
		if excluded, why := testExcludes(t, off); excluded {
			return fmt.Sprintf("posting list %s: %s", t.attr, why)
		}
	}
	return "excluded by the candidate intersection"
}

// testExcludes mirrors the index's fill semantics for one offer:
// expression-valued attributes are never excluded, missing attributes
// always are (strict comparison with undefined is never true), and
// literal values are tested directly.
func testExcludes(t reqTest, off *classad.Ad) (bool, string) {
	e, ok := off.Lookup(t.attr)
	if !ok {
		return true, "attribute undefined"
	}
	info := classad.Inspect(e)
	if info.Kind != classad.KindLiteral {
		return false, ""
	}
	v := info.Value
	switch t.kind {
	case testStrEq:
		s, isStr := v.StringVal()
		if !isStr {
			return true, fmt.Sprintf("value %s is not a string (test == %q)", v, t.str)
		}
		if classad.Fold(s) != t.str {
			return true, fmt.Sprintf("%q fails == %q", s, t.str)
		}
	case testNum:
		n, isNum := numericBound(v)
		if !isNum {
			return true, fmt.Sprintf("value %s is not numeric (test %s %g)", v, t.op, t.num)
		}
		if !opHolds(n, t.op, t.num) {
			return true, fmt.Sprintf("%g fails %s %g", n, t.op, t.num)
		}
	}
	return false, ""
}

// opHolds evaluates `a OP b` for the comparison operators the index
// prunes on.
func opHolds(a float64, op classad.Op, b float64) bool {
	switch op {
	case classad.OpLt:
		return a < b
	case classad.OpLe:
		return a <= b
	case classad.OpGt:
		return a > b
	case classad.OpGe:
		return a >= b
	case classad.OpEq:
		return a == b
	}
	return true
}
