package matchmaker

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/classad"
)

func TestNegotiateMixedPlainOnly(t *testing.T) {
	// Without gangs, NegotiateMixed agrees with Negotiate.
	offers := []*classad.Ad{
		machine("a", "INTEL", 64),
		machine("b", "SPARC", 128),
	}
	requests := []*classad.Ad{
		job("u1", "INTEL", 32),
		job("u2", "SPARC", 64),
	}
	plain := New(Config{}).Negotiate(requests, offers)
	mixed := New(Config{}).NegotiateMixed(requests, offers)
	if len(plain) != len(mixed) {
		t.Fatalf("counts differ: %d vs %d", len(plain), len(mixed))
	}
	for i := range plain {
		if plain[i].Offer != mixed[i].Offer || plain[i].Request != mixed[i].Request {
			t.Errorf("match %d differs", i)
		}
	}
}

func TestNegotiateMixedServesGangs(t *testing.T) {
	offers := []*classad.Ad{
		machine("w1", "INTEL", 64),
		machine("w2", "INTEL", 128),
		tapeDrive("t1", 10),
	}
	requests := []*classad.Ad{
		gangRequest("alice"),   // needs one INTEL machine + the tape
		job("bob", "INTEL", 1), // plain request
	}
	mm := New(Config{})
	matches := mm.NegotiateMixed(requests, offers)
	if len(matches) != 3 {
		t.Fatalf("matches = %d, want 3 (two gang slots + one plain)", len(matches))
	}
	// The gang's two slots come first (submission order) and use
	// distinct offers; bob gets what is left.
	seen := map[*classad.Ad]bool{}
	for _, m := range matches {
		if seen[m.Offer] {
			t.Error("offer used twice across gang and plain matches")
		}
		seen[m.Offer] = true
	}
	// Gang sub-requests carry the inherited owner.
	for _, m := range matches[:2] {
		if who, _ := m.Request.Eval("Owner").StringVal(); who != "alice" {
			t.Errorf("gang slot owner = %q", who)
		}
	}
	// Usage accounting charged the gang owner per slot.
	if u := mm.Usage().Effective("alice"); u != 2 {
		t.Errorf("alice's usage = %v, want 2", u)
	}
	if u := mm.Usage().Effective("bob"); u != 1 {
		t.Errorf("bob's usage = %v, want 1", u)
	}
}

func TestNegotiateMixedGangAllOrNothing(t *testing.T) {
	// Gang cannot complete (no tape): it consumes nothing, and the
	// machines remain for the plain request.
	offers := []*classad.Ad{machine("w1", "INTEL", 64)}
	requests := []*classad.Ad{
		gangRequest("alice"),
		job("bob", "INTEL", 1),
	}
	matches := New(Config{}).NegotiateMixed(requests, offers)
	if len(matches) != 1 {
		t.Fatalf("matches = %d, want only bob's", len(matches))
	}
	if who, _ := matches[0].Request.Eval("Owner").StringVal(); who != "bob" {
		t.Errorf("match owner = %q", who)
	}
}

func TestNegotiateMixedGangContention(t *testing.T) {
	// Two gangs contend for one tape: exactly one is served.
	offers := []*classad.Ad{
		machine("w1", "INTEL", 64),
		machine("w2", "INTEL", 64),
		tapeDrive("t1", 10),
	}
	requests := []*classad.Ad{gangRequest("a"), gangRequest("b")}
	matches := New(Config{}).NegotiateMixed(requests, offers)
	if len(matches) != 2 {
		t.Fatalf("matches = %d, want the 2 slots of a single gang", len(matches))
	}
	owners := map[string]bool{}
	for _, m := range matches {
		who, _ := m.Request.Eval("Owner").StringVal()
		owners[who] = true
	}
	if len(owners) != 1 {
		t.Errorf("both gangs partially served: %v", owners)
	}
}

func TestPriorityTablePersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "usage.json")

	pt := NewPriorityTable()
	pt.SetHalfLife(100)
	pt.Advance(50)
	pt.Record("alice", 8)
	pt.Record("bob", 2)
	if err := pt.Save(path); err != nil {
		t.Fatal(err)
	}

	restored := NewPriorityTable()
	if err := restored.Load(path); err != nil {
		t.Fatal(err)
	}
	if u := restored.Effective("alice"); math.Abs(u-8) > 1e-9 {
		t.Errorf("alice restored usage = %v", u)
	}
	if u := restored.Effective("bob"); math.Abs(u-2) > 1e-9 {
		t.Errorf("bob restored usage = %v", u)
	}
	// Decay semantics survive the round trip: one half-life later,
	// usage halves.
	restored.Advance(150)
	if u := restored.Effective("alice"); math.Abs(u-4) > 1e-9 {
		t.Errorf("alice after restored half-life = %v, want 4", u)
	}
	// Missing file: clean no-op.
	fresh := NewPriorityTable()
	if err := fresh.Load(filepath.Join(dir, "nonexistent.json")); err != nil {
		t.Errorf("missing file should not error: %v", err)
	}
	if len(fresh.Customers()) != 0 {
		t.Error("fresh table has customers")
	}
	// Corrupt file: a real error.
	bad := filepath.Join(dir, "bad.json")
	if err := writeFile(bad, "{nope"); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Load(bad); err == nil {
		t.Error("corrupt file should error")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
