package matchmaker

import (
	"fmt"
	"sort"

	"repro/internal/classad"
)

// Co-allocation via nested classads (paper §3.1: ads "can be
// arbitrarily nested, leading to a natural language for expressing
// resource aggregates or co-allocation requests").
//
// A gang request is a customer ad whose Gang attribute is a list of
// nested classads, each a sub-request with its own Constraint and
// Rank. The gang is served only if every sub-request can be introduced
// to a distinct offer with both sides' constraints satisfied — the
// all-or-nothing semantics co-allocation needs (e.g. a job that
// requires a workstation and a tape drive simultaneously).

// AttrGang is the attribute holding the list of sub-request ads.
const AttrGang = "Gang"

// IsGang reports whether the ad carries a gang request.
func IsGang(ad *classad.Ad) bool {
	_, ok := ad.Lookup(AttrGang)
	return ok
}

// GangSubRequests extracts the sub-request ads of a gang request. Each
// sub-request inherits the parent's Owner (for fair-share accounting
// and owner policies) unless it sets its own.
func GangSubRequests(req *classad.Ad) ([]*classad.Ad, error) {
	v := req.Eval(AttrGang)
	list, ok := v.ListVal()
	if !ok {
		return nil, fmt.Errorf("matchmaker: %s attribute is %s, want a list of classads", AttrGang, v.Type())
	}
	subs := make([]*classad.Ad, 0, len(list))
	for i, el := range list {
		sub, ok := el.AdVal()
		if !ok {
			return nil, fmt.Errorf("matchmaker: %s[%d] is %s, want a classad", AttrGang, i, el.Type())
		}
		c := sub.Copy()
		for _, inherited := range []string{classad.AttrOwner, classad.AttrContact} {
			if _, has := c.Lookup(inherited); has {
				continue
			}
			if v, ok := req.Eval(inherited).StringVal(); ok {
				c.SetString(inherited, v)
			}
		}
		subs = append(subs, c)
	}
	if len(subs) == 0 {
		return nil, fmt.Errorf("matchmaker: empty %s list", AttrGang)
	}
	return subs, nil
}

// GangMatch is the assignment produced for a gang request: one offer
// index per sub-request, in sub-request order.
type GangMatch struct {
	// SubRequests are the extracted sub-request ads.
	SubRequests []*classad.Ad
	// Offers[i] is the index (into the offers slice passed to
	// MatchGang) assigned to SubRequests[i].
	Offers []int
}

// gangIndexThreshold is the offer count above which MatchGang prunes
// each sub-request's candidate enumeration through an offer index.
const gangIndexThreshold = 256

// MatchGang finds an all-or-nothing assignment of distinct offers to
// the gang's sub-requests, preferring higher sub-request ranks. It
// returns ok=false if no complete assignment exists.
//
// The search is exact: candidates are enumerated per sub-request,
// sub-requests are ordered most-constrained-first, and assignment
// backtracks on conflict. Pools are small relative to gang sizes in
// practice, and the candidate pre-filter keeps the search shallow.
// Against large pools the enumeration itself is pruned through the
// offer index, which never drops a viable candidate.
func MatchGang(req *classad.Ad, offers []*classad.Ad, env *classad.Env) (GangMatch, bool) {
	var ix *OfferIndex
	if len(offers) >= gangIndexThreshold {
		ix = NewOfferIndex(offers)
	}
	return matchGang(req, offers, ix, env)
}

// MatchGangIndexed is MatchGang against a prebuilt index over the same
// offer slice; NegotiateMixed shares one index across all gangs and
// ordinary requests of a cycle.
func MatchGangIndexed(req *classad.Ad, offers []*classad.Ad, ix *OfferIndex, env *classad.Env) (GangMatch, bool) {
	return matchGang(req, offers, ix, env)
}

func matchGang(req *classad.Ad, offers []*classad.Ad, ix *OfferIndex, env *classad.Env) (GangMatch, bool) {
	subs, err := GangSubRequests(req)
	if err != nil {
		return GangMatch{}, false
	}
	// Enumerate candidates per sub-request, rank-sorted.
	type cand struct {
		offer int
		rank  float64
	}
	cands := make([][]cand, len(subs))
	for si, sub := range subs {
		// pool is the candidate offer indices for this sub-request:
		// nil means the index had nothing to prune on, so scan all.
		var pool []int
		if ix != nil {
			if c, indexed := ix.Candidates(sub, env); indexed {
				pool = c
			}
		}
		consider := func(oi int) {
			res := classad.MatchEnv(sub, offers[oi], env)
			if res.Matched {
				cands[si] = append(cands[si], cand{oi, res.LeftRank})
			}
		}
		if pool != nil {
			for _, oi := range pool {
				consider(oi)
			}
		} else {
			for oi := range offers {
				consider(oi)
			}
		}
		sort.SliceStable(cands[si], func(a, b int) bool {
			return cands[si][a].rank > cands[si][b].rank
		})
		if len(cands[si]) == 0 {
			return GangMatch{SubRequests: subs}, false
		}
	}
	// Most-constrained-variable order.
	order := make([]int, len(subs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(cands[order[a]]) < len(cands[order[b]])
	})

	assigned := make([]int, len(subs))
	for i := range assigned {
		assigned[i] = -1
	}
	used := make(map[int]bool)
	var search func(k int) bool
	search = func(k int) bool {
		if k == len(order) {
			return true
		}
		si := order[k]
		for _, c := range cands[si] {
			if used[c.offer] {
				continue
			}
			used[c.offer] = true
			assigned[si] = c.offer
			if search(k + 1) {
				return true
			}
			used[c.offer] = false
			assigned[si] = -1
		}
		return false
	}
	if !search(0) {
		return GangMatch{SubRequests: subs}, false
	}
	return GangMatch{SubRequests: subs, Offers: assigned}, true
}

// NegotiateMixed runs a negotiation cycle over a request list that may
// contain both ordinary requests and gang (co-allocation) requests, in
// submission/fair-share order. A gang request is served all-or-nothing
// against the offers still available when its turn comes; its matches
// appear as one Match per slot, all sharing the gang's parent ad as
// Request context via the sub-request's inherited Owner. Ordinary
// requests behave exactly as in Negotiate.
func (m *Matchmaker) NegotiateMixed(requests, offers []*classad.Ad) []Match {
	order := m.requestOrder(requests)
	available := make([]bool, len(offers))
	remaining := make([]*classad.Ad, 0, len(offers))
	idxMap := make([]int, 0, len(offers))
	for i := range offers {
		available[i] = true
	}
	var ix *OfferIndex
	if m.cfg.Index {
		ix = NewOfferIndex(offers)
	}
	var out []Match
	for _, ri := range order {
		req := requests[ri]
		if IsGang(req) {
			// Build the currently available offer slice. The gang's
			// index must cover exactly this slice, so it is rebuilt
			// per gang — construction touches no expressions, so it
			// stays cheap next to the candidate evaluations it saves.
			remaining = remaining[:0]
			idxMap = idxMap[:0]
			for oi, ok := range available {
				if ok {
					remaining = append(remaining, offers[oi])
					idxMap = append(idxMap, oi)
				}
			}
			var gix *OfferIndex
			if m.cfg.Index && len(remaining) >= gangIndexThreshold {
				gix = NewOfferIndex(remaining)
			}
			gm, ok := MatchGangIndexed(req, remaining, gix, m.cfg.Env)
			if !ok {
				continue
			}
			for si, rem := range gm.Offers {
				oi := idxMap[rem]
				available[oi] = false
				sub := gm.SubRequests[si]
				out = append(out, Match{
					Request:     sub,
					Offer:       offers[oi],
					RequestRank: classad.EvalRank(sub, offers[oi], m.cfg.Env),
					OfferRank:   classad.EvalRank(offers[oi], sub, m.cfg.Env),
				})
			}
			m.usage.Record(owner(req), float64(len(gm.Offers)))
			continue
		}
		best, reqRank, offRank, _, _, _, _ := m.scan(req, offers, ix, available)
		if best >= 0 {
			available[best] = false
			out = append(out, Match{Request: req, Offer: offers[best],
				RequestRank: reqRank, OfferRank: offRank})
			m.usage.Record(owner(req), 1)
		}
	}
	return out
}
