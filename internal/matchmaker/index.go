package matchmaker

// The offer index: stage one of the two-stage negotiation engine.
//
// A negotiation cycle's cost is dominated by bilateral Constraint/Rank
// evaluation over the full request × offer cross product (paper §3.2
// runs the matchmaking algorithm against every ad in the pool). Most
// request constraints, however, open with conjuncts a matchmaker can
// decide *without* evaluating the offer's side at all: equality and
// interval bounds on literal attributes of the offer, such as
//
//	other.Arch == "INTEL" && other.Memory >= 32 && ...
//
// The index extracts those conjuncts from the request's constraint
// (after partially evaluating it against the request, so
// `other.Memory >= self.Memory` folds to `other.Memory >= 31`) and
// answers them from per-attribute posting lists built over the offer
// set, cutting the candidate list the scanner must evaluate from the
// whole pool to the offers that could possibly satisfy the request.
//
// Soundness, not completeness: an offer pruned by the index can never
// produce a match — three-valued conjunction is true only when every
// conjunct is true (§3.1: false, undefined and error are all
// non-matches), and comparison operators are strict — while an offer
// the index keeps may still fail the full bilateral evaluation the
// scanner performs. Attributes an offer defines as expressions rather
// than literals cannot be decided statically, so such offers are
// always candidates for tests on that attribute.

import (
	"math"
	"sort"
	"sync"

	"repro/internal/classad"
)

// testKind classifies an indexable test.
type testKind int

const (
	testStrEq testKind = iota // attr == "literal" (case-folded)
	testNum                   // attr OP number, OP in < <= > >= ==
)

// reqTest is one indexable conjunct of a request constraint,
// normalized to attribute-on-the-left form. attr and str are
// case-folded, mirroring the evaluator's case-insensitive attribute
// names and string comparison.
type reqTest struct {
	attr string
	kind testKind
	str  string
	op   classad.Op
	num  float64
}

// IndexableTests extracts the conjuncts of req's constraint that the
// offer index can prune on. unsat reports that some conjunct compares
// against a literal undefined/error — comparisons are strict, so the
// constraint can never be true and the request matches nothing.
//
// What is indexable (see DESIGN.md §10): a top-level conjunct whose
// partial-evaluation residual has the shape `ref OP literal` (either
// operand order) where OP is <, <=, >, >=, or ==, the literal is a
// string (equality only), number, or boolean, and ref is an attribute
// of the offer — either explicitly other-scoped, or unqualified and
// not supplied by the request itself (an unqualified name resolves in
// the request first, so one the request defines says nothing about
// the offer).
func IndexableTests(req *classad.Ad, env *classad.Env) (tests []reqTest, unsat bool) {
	ce, ok := classad.ConstraintOf(req)
	if !ok {
		return nil, false
	}
	for _, conj := range classad.SplitConjuncts(ce) {
		res := classad.PartialEval(conj, req, env)
		info := classad.Inspect(res)
		if info.Kind != classad.KindBinary {
			continue
		}
		switch info.Op {
		case classad.OpLt, classad.OpLe, classad.OpGt, classad.OpGe, classad.OpEq:
		default:
			continue
		}
		l := classad.Inspect(info.Args[0])
		r := classad.Inspect(info.Args[1])
		op := info.Op
		ref, lit := l, r
		if l.Kind == classad.KindLiteral && r.Kind == classad.KindAttrRef {
			ref, lit = r, l
			op = flipCmp(op)
		} else if !(l.Kind == classad.KindAttrRef && r.Kind == classad.KindLiteral) {
			continue
		}
		switch ref.Scope {
		case classad.ScopeOther:
			// Always the offer's attribute.
		case classad.ScopeNone:
			// Unqualified names resolve in the request first; only
			// when the request cannot supply the name does the offer's
			// attribute decide the test. (A request-defined name that
			// survived partial evaluation is non-ground — it will
			// resolve in the request at match time, not the offer.)
			if _, bound := req.Lookup(ref.Name); bound {
				continue
			}
		default:
			// A surviving self.X is an unbound local reference; the
			// static analyzer (CAD101) flags it, the index ignores it.
			continue
		}
		v := lit.Value
		if v.IsUndefined() || v.IsError() {
			// Strict comparison against undefined/error is never true,
			// so the whole conjunction is unsatisfiable.
			return nil, true
		}
		if s, isStr := v.StringVal(); isStr {
			if op != classad.OpEq {
				continue // relational order on strings is rare; not indexed
			}
			tests = append(tests, reqTest{
				attr: classad.Fold(ref.Name), kind: testStrEq, str: classad.Fold(s)})
			continue
		}
		n, isNum := numericBound(v)
		if !isNum || math.IsNaN(n) {
			// Lists, ads: comparing them is an error — never true —
			// but leave the conjunct to the full evaluation rather
			// than encode error semantics here. NaN: the evaluator's
			// three-way compare classifies NaN as equal to everything;
			// not worth reproducing in posting lists.
			continue
		}
		if v.Type() == classad.BooleanType && op != classad.OpEq {
			continue // relational order on booleans is an error
		}
		tests = append(tests, reqTest{attr: classad.Fold(ref.Name), kind: testNum, op: op, num: n})
	}
	return tests, false
}

// numericBound extracts the numeric axis value of a literal: numbers
// as themselves, booleans coerced to 0/1 exactly as evalCompare does.
func numericBound(v classad.Value) (float64, bool) {
	switch v.Type() {
	case classad.IntegerType, classad.RealType:
		n, _ := v.NumberVal()
		return n, true
	case classad.BooleanType:
		if v.IsTrue() {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

// flipCmp mirrors a comparison for swapped operands: 3 < x ≡ x > 3.
func flipCmp(op classad.Op) classad.Op {
	switch op {
	case classad.OpLt:
		return classad.OpGt
	case classad.OpLe:
		return classad.OpGe
	case classad.OpGt:
		return classad.OpLt
	case classad.OpGe:
		return classad.OpLe
	}
	return op
}

// numEntry is one (value, offer) pair on an attribute's numeric axis.
type numEntry struct {
	val float64
	idx int
}

// postings holds everything the index knows about one attribute across
// the offer set.
type postings struct {
	// strs maps a case-folded literal string value to the offers
	// advertising it, ascending by offer index.
	strs map[string][]int
	// nums lists offers with a literal numeric (or boolean, coerced)
	// value, sorted by value then offer index.
	nums []numEntry
	// exprs lists offers whose definition is not a literal: their
	// value depends on the match, so every test on this attribute must
	// keep them. Ascending by offer index.
	exprs []int
}

// OfferIndex is a set of per-attribute posting lists over an offer
// set. The matchmaker builds one per negotiation cycle from the
// cycle's snapshot — the same weak-consistency stance as the rest of
// the system: decisions are made against a possibly stale snapshot
// and validated by the claiming protocol. The index also supports
// incremental maintenance (Add/Remove) under a lock for callers that
// keep one alive across snapshots.
type OfferIndex struct {
	mu     sync.RWMutex
	offers []*classad.Ad
	live   []bool
	nlive  int
	attrs  map[string]*postings
}

// NewOfferIndex builds posting lists over offers. Build cost is one
// pass over every attribute of every offer — no expression evaluation.
func NewOfferIndex(offers []*classad.Ad) *OfferIndex {
	ix := &OfferIndex{attrs: make(map[string]*postings)}
	for _, off := range offers {
		ix.addLocked(off)
	}
	for _, p := range ix.attrs {
		sort.Slice(p.nums, func(a, b int) bool {
			if p.nums[a].val != p.nums[b].val {
				return p.nums[a].val < p.nums[b].val
			}
			return p.nums[a].idx < p.nums[b].idx
		})
	}
	return ix
}

// Len reports how many live offers the index covers.
func (ix *OfferIndex) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.nlive
}

// Offers returns the indexed offer slice; slot i corresponds to the
// candidate indices Candidates returns. Removed slots stay in place
// (and are never returned as candidates) so indices remain stable.
func (ix *OfferIndex) Offers() []*classad.Ad {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]*classad.Ad, len(ix.offers))
	copy(out, ix.offers)
	return out
}

// Add indexes one more offer and returns its slot.
func (ix *OfferIndex) Add(off *classad.Ad) int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	i := ix.addLocked(off)
	// A freshly appended slot has the highest index, so string and
	// expression lists stay sorted; the numeric axis needs an insert.
	// addLocked appended the new entry at the tail, so one rotation
	// into its binary-searched position restores order — a full
	// re-sort here is O(n log n) per Add and dominates steady-state
	// delta wakes at pool scale.
	for _, name := range off.Names() {
		p := ix.attrs[classad.Fold(name)]
		if p == nil || len(p.nums) == 0 {
			continue
		}
		last := len(p.nums) - 1
		e := p.nums[last]
		if e.idx != i {
			continue // this attribute was not numeric on the new offer
		}
		at := sort.Search(last, func(k int) bool {
			if p.nums[k].val != e.val {
				return p.nums[k].val > e.val
			}
			return p.nums[k].idx > e.idx
		})
		copy(p.nums[at+1:], p.nums[at:last])
		p.nums[at] = e
	}
	return i
}

// Remove retires the offer in slot i: it stops appearing in candidate
// lists. Posting entries are dropped lazily on lookup.
func (ix *OfferIndex) Remove(i int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if i >= 0 && i < len(ix.live) && ix.live[i] {
		ix.live[i] = false
		ix.nlive--
	}
}

// addLocked appends the offer and files every literal attribute into
// its posting list. Callers sort numeric axes afterwards.
func (ix *OfferIndex) addLocked(off *classad.Ad) int {
	i := len(ix.offers)
	ix.offers = append(ix.offers, off)
	ix.live = append(ix.live, true)
	ix.nlive++
	for _, name := range off.Names() {
		e, ok := off.Lookup(name)
		if !ok {
			continue
		}
		key := classad.Fold(name)
		p := ix.attrs[key]
		if p == nil {
			p = &postings{strs: make(map[string][]int)}
			ix.attrs[key] = p
		}
		info := classad.Inspect(e)
		if info.Kind != classad.KindLiteral {
			p.exprs = append(p.exprs, i)
			continue
		}
		v := info.Value
		if s, isStr := v.StringVal(); isStr {
			f := classad.Fold(s)
			p.strs[f] = append(p.strs[f], i)
			continue
		}
		if n, isNum := numericBound(v); isNum && !math.IsNaN(n) {
			p.nums = append(p.nums, numEntry{n, i})
			continue
		}
		// Literal undefined/error/list/ad: no test this index answers
		// can hold for it (strict comparison yields undefined or
		// error), so it is correctly absent from every posting list.
	}
	return i
}

// Candidates returns the offers that could possibly satisfy req's
// constraint, ascending by offer index.
//
// indexed=false means the constraint had no indexable conjunct and the
// caller must scan everything (cand is nil). indexed=true with an
// empty cand means the index proved no offer can match.
func (ix *OfferIndex) Candidates(req *classad.Ad, env *classad.Env) (cand []int, indexed bool) {
	tests, unsat := IndexableTests(req, env)
	if unsat {
		return []int{}, true
	}
	if len(tests) == 0 {
		return nil, false
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := len(ix.offers)
	words := (n + 63) / 64
	acc := make([]uint64, words)
	scratch := make([]uint64, words)
	for ti, t := range tests {
		set := acc
		if ti > 0 {
			set = scratch
			for w := range set {
				set[w] = 0
			}
		}
		ix.fill(set, t)
		if ti > 0 {
			for w := range acc {
				acc[w] &= set[w]
			}
		}
	}
	for i := 0; i < n; i++ {
		if acc[i/64]&(1<<(uint(i)%64)) != 0 && ix.live[i] {
			cand = append(cand, i)
		}
	}
	if cand == nil {
		cand = []int{}
	}
	return cand, true
}

// liveIndices returns the live slots explicitly, or nil when every
// slot is live (callers treat nil as "all").
func (ix *OfferIndex) liveIndices() []int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.nlive == len(ix.offers) {
		return nil
	}
	out := make([]int, 0, ix.nlive)
	for i, ok := range ix.live {
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// fill sets the bit of every offer test t admits: literal values that
// satisfy it plus every expression-valued definition of the attribute.
// Offers without the attribute stay clear — a strict comparison with
// undefined is undefined, never true.
func (ix *OfferIndex) fill(set []uint64, t reqTest) {
	p := ix.attrs[t.attr]
	if p == nil {
		return
	}
	for _, i := range p.exprs {
		set[i/64] |= 1 << (uint(i) % 64)
	}
	switch t.kind {
	case testStrEq:
		for _, i := range p.strs[t.str] {
			set[i/64] |= 1 << (uint(i) % 64)
		}
	case testNum:
		lo, hi := numRange(p.nums, t.op, t.num)
		for _, e := range p.nums[lo:hi] {
			set[e.idx/64] |= 1 << (uint(e.idx) % 64)
		}
	}
}

// numRange returns the half-open window of nums (sorted by value)
// satisfying `value OP bound`.
func numRange(nums []numEntry, op classad.Op, bound float64) (lo, hi int) {
	geq := func(b float64) int { // first index with val >= b
		return sort.Search(len(nums), func(i int) bool { return nums[i].val >= b })
	}
	gt := func(b float64) int { // first index with val > b
		return sort.Search(len(nums), func(i int) bool { return nums[i].val > b })
	}
	switch op {
	case classad.OpLt:
		return 0, geq(bound)
	case classad.OpLe:
		return 0, gt(bound)
	case classad.OpGt:
		return gt(bound), len(nums)
	case classad.OpGe:
		return geq(bound), len(nums)
	case classad.OpEq:
		return geq(bound), gt(bound)
	}
	return 0, 0
}
