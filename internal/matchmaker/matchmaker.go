// Package matchmaker implements the matchmaking algorithm of paper
// §3.2/§4: the periodic negotiation cycle that pairs customer request
// ads with compatible provider ads, ranks candidates, enforces a fair
// matching policy from past resource usage, and — per the paper's
// future-work section — aggregates regular ads for group matching,
// diagnoses unsatisfiable constraints, and services co-allocation
// (gang) requests expressed as nested classads.
//
// The matchmaker is deliberately stateless with respect to matches: a
// match is an introduction, not an allocation, and nothing here needs
// to survive a restart except the (advisory) usage history used for
// fairness.
package matchmaker

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/classad"
	"repro/internal/obs"
)

// Match is one pairing produced by a negotiation cycle. It carries
// both ads so the matchmaking protocol can forward each party the
// other's ad (paper §3.2 step 3).
type Match struct {
	// Request is the customer ad; Offer is the provider ad.
	Request, Offer *classad.Ad
	// RequestRank is the request's Rank of the offer (the primary
	// selection key); OfferRank is the offer's Rank of the request
	// (the tie-breaker).
	RequestRank, OfferRank float64
	// Trace is the request's causal trace ID (the job ad's TraceId
	// attribute) and Span the matchmaker's negotiate-span ID, for the
	// notifier to propagate into MATCH envelopes. Both empty on
	// untraced or uninstrumented matches.
	Trace, Span string
}

// Config tunes a negotiation cycle.
type Config struct {
	// Env supplies time and randomness to constraint evaluation; nil
	// means the process default.
	Env *classad.Env
	// FairShare orders customers by accumulated usage (lightest
	// first) instead of submission order.
	FairShare bool
	// Aggregate enables group matching over equivalence classes of
	// offers (paper §5 future work). Results are identical to the
	// linear scan; only the work per request shrinks when offers are
	// value-regular.
	Aggregate bool
	// FirstFit skips rank maximization and takes the first
	// compatible offer; exists for the ablation benchmark only.
	FirstFit bool
	// Index enables the offer index: indexable conjuncts of each
	// request's constraint (equality and interval bounds on literal
	// offer attributes) are answered from per-attribute posting lists,
	// so the scan only evaluates candidate offers. Results are
	// identical to the full scan (property-tested); ignored when
	// Aggregate is on, which prunes by equivalence class instead.
	Index bool
	// Parallel shards each request's candidate scan across workers:
	// 0 or 1 is sequential, ParallelAuto (-1) uses one worker per CPU,
	// n>1 forces exactly n workers. The reduction is deterministic —
	// parallel results are bit-identical to the sequential scan.
	Parallel int
	// DeferCharges stops NegotiateCycle from charging fair-share usage
	// at match emission. The caller owns charging instead — the pool
	// manager and negotiator daemon charge via Usage().Record only when
	// the customer's MATCH ack reports the claim was accepted, so a
	// match that bounces off claim-time revalidation never bills the
	// customer (modelcheck invariant MC104 is the backstop). Off by
	// default: a bare matchmaker keeps the paper's simple
	// charge-per-match accounting.
	DeferCharges bool
	// LegacyClaimedTieBreak reinstates the pre-fix selection order that
	// ignored an offer's claimed state on rank ties (earliest index
	// won). It exists solely so modelcheck's MC201 regression and the
	// seeded-mutant self-tests can mechanically rediscover the
	// claimed-offer livelock (ROADMAP item 1); production configs must
	// leave it off.
	LegacyClaimedTieBreak bool
}

// Matchmaker runs negotiation cycles. The zero value is usable; usage
// history accumulates across cycles when fair share is on.
type Matchmaker struct {
	cfg   Config
	usage *PriorityTable

	// Observability hooks; nil (no-op) until Instrument is called.
	events      *obs.Events
	spans       *obs.Spans
	forensics   *Forensics
	mMatches    *obs.Counter
	mRejNone    *obs.Counter // no offers in the pool at all
	mRejConstr  *obs.Counter // no offer satisfies the bilateral constraints
	mRejTaken   *obs.Counter // compatible offers existed but were all taken
	mIdxCand    *obs.Counter // offers the index admitted as candidates
	mIdxPruned  *obs.Counter // offers the index proved incompatible unseen
	mIdxMisses  *obs.Counter // requests with no indexable conjunct (full scan)
	hNegotiate  *obs.Histogram
	hScanned    *obs.Histogram
	hScanFanout *obs.Histogram // workers used per request scan
}

// Rejection reasons, mirroring the categories of Analyze: the pool is
// empty, the pool cannot serve the request, or the pool could but
// higher-priority requests took every compatible offer this cycle.
const (
	ReasonNoOffers         = "no-offers"
	ReasonConstraintFailed = "constraint-failed"
	ReasonOutranked        = "outranked"
)

// New returns a matchmaker with the given configuration.
func New(cfg Config) *Matchmaker {
	return &Matchmaker{cfg: cfg, usage: NewPriorityTable()}
}

// Instrument routes negotiation activity into o:
// matchmaker_matches_total and the per-reason rejection counters
// (matchmaker_rejected_{no_offers,constraint,outranked}_total),
// negotiation wall time (matchmaker_negotiate_seconds), offers
// examined per request (matchmaker_offers_scanned), the offer index's
// work (matchmaker_index_candidates_total /
// matchmaker_index_pruned_total / matchmaker_index_unindexed_total),
// and scan fan-out (matchmaker_scan_workers). Each match and
// rejection also lands in the event buffer, stamped with the cycle ID
// passed to NegotiateCycle; requests whose ad carries a TraceId get a
// negotiate span in the span ring. Instrumentation also switches on
// negotiation forensics — a per-request rejection ledger retained in a
// bounded store and served at /why?request= on o's debug endpoint.
// Call before the first cycle.
func (m *Matchmaker) Instrument(o *obs.Obs) {
	reg := o.Registry()
	m.events = o.Events()
	m.spans = o.Spans()
	m.forensics = NewForensics()
	o.Handle("/why", func(q map[string][]string) (any, error) {
		var request string
		if vs := q["request"]; len(vs) > 0 {
			request = vs[0]
		}
		if request == "" {
			return map[string]any{"requests": m.forensics.Requests()}, nil
		}
		r, ok := m.forensics.Lookup(request)
		if !ok {
			return nil, fmt.Errorf("no forensics recorded for request %q", request)
		}
		return r, nil
	})
	m.mMatches = reg.Counter("matchmaker_matches_total")
	m.mRejNone = reg.Counter("matchmaker_rejected_no_offers_total")
	m.mRejConstr = reg.Counter("matchmaker_rejected_constraint_total")
	m.mRejTaken = reg.Counter("matchmaker_rejected_outranked_total")
	m.mIdxCand = reg.Counter("matchmaker_index_candidates_total")
	m.mIdxPruned = reg.Counter("matchmaker_index_pruned_total")
	m.mIdxMisses = reg.Counter("matchmaker_index_unindexed_total")
	m.hNegotiate = reg.Histogram("matchmaker_negotiate_seconds", obs.DurationBuckets)
	m.hScanned = reg.Histogram("matchmaker_offers_scanned", obs.CountBuckets)
	m.hScanFanout = reg.Histogram("matchmaker_scan_workers", obs.CountBuckets)
}

// instrumented reports whether Instrument has been called; rejection
// diagnosis does extra matching work that uninstrumented cycles skip.
func (m *Matchmaker) instrumented() bool { return m.mMatches != nil }

// now reads the negotiation clock. Cycle timestamps (forensics
// reports, latency observations) must come from the injected Env when
// one is configured: the model checker replays cycles under a virtual
// clock, and a wall-clock read here would leak nondeterminism into
// replayed state. Without an Env the wall clock is the clock.
func (m *Matchmaker) now() time.Time {
	if m.cfg.Env != nil && m.cfg.Env.Now != nil {
		return time.Unix(m.cfg.Env.Now(), 0)
	}
	return time.Now() //determguard:ok the non-replay default; modelcheck always injects Env.Now
}

// Forensics exposes the negotiation-forensics store (nil until
// Instrument is called).
func (m *Matchmaker) Forensics() *Forensics { return m.forensics }

// Usage exposes the fair-share accounting table.
func (m *Matchmaker) Usage() *PriorityTable { return m.usage }

// SetUsage replaces the fair-share table — the hook a durable
// negotiator uses to charge usage against a ledger-backed table
// (ledger.go) instead of the default in-memory one. Call before the
// first cycle.
func (m *Matchmaker) SetUsage(t *PriorityTable) {
	if t != nil {
		m.usage = t
	}
}

// owner extracts the customer identity from a request ad; requests
// without an Owner share the anonymous customer "".
func owner(ad *classad.Ad) string {
	v := ad.Eval(classad.AttrOwner)
	if s, ok := v.StringVal(); ok {
		return s
	}
	return ""
}

// OwnerOf is the exported form of the accounting identity rule:
// callers charging deferred usage (Config.DeferCharges) must bill the
// same customer key Negotiate would have.
func OwnerOf(ad *classad.Ad) string { return owner(ad) }

// Negotiate runs one cycle: it considers requests customer by
// customer — ordered by fair-share priority when enabled — and for
// each request selects, among compatible offers, the one the request
// ranks highest, breaking ties by the offer's rank of the request
// (paper §3.2). Each offer is introduced to at most one request per
// cycle; the matchmaker retains no state about the matches it hands
// out.
//
// With aggregation on, group matching applies on both sides (paper §5
// future work): offers are partitioned into equivalence classes and
// each request is evaluated against one representative per class; the
// per-request candidate list is additionally memoized by the request's
// own signature, so a batch of identical jobs — the high-throughput
// norm — costs one evaluation sweep instead of one per job. Outcomes
// are identical to the linear scan (property-tested) provided
// constraints and ranks are pure and do not reference identity
// attributes.
func (m *Matchmaker) Negotiate(requests, offers []*classad.Ad) []Match {
	return m.NegotiateCycle("", requests, offers)
}

// NegotiateCycle is Negotiate carrying the negotiation-cycle ID the
// pool manager minted: when the matchmaker is instrumented, every
// match and rejection event it emits is stamped with the ID, so a
// cycle's decisions correlate with the manager, CA and RA events that
// surround them.
func (m *Matchmaker) NegotiateCycle(cycle string, requests, offers []*classad.Ad) []Match {
	start := m.now()
	order := m.requestOrder(requests)
	available := make([]bool, len(offers))
	for i := range available {
		available[i] = true
	}

	var agg *aggregation
	var memo map[string][]classCand
	if m.cfg.Aggregate {
		agg = aggregate(offers)
		memo = make(map[string][]classCand)
	}
	var ix *OfferIndex
	if m.cfg.Index && agg == nil {
		ix = NewOfferIndex(offers)
	}

	// takenBy records which request consumed each offer this cycle, so
	// forensic "outranked" verdicts can name the winner.
	var takenBy []string
	if m.forensics != nil {
		takenBy = make([]string, len(offers))
	}

	var out []Match
	for _, ri := range order {
		req := requests[ri]
		trace := classad.TraceOf(req)
		sp := m.spans.Start(trace, classad.TraceSpanOf(req), "matchmaker", "negotiate")
		sp.Set("request", adName(req))
		var best, scanned int
		var reqRank, offRank float64
		var cands []classCand
		var scanCand []int
		var scanIndexed bool
		if agg != nil {
			sig := Signature(req)
			var seen bool
			cands, seen = memo[sig]
			if !seen {
				cands = agg.candidates(req, offers, m.cfg)
				memo[sig] = cands
				scanned = agg.NumClasses()
			}
			best, reqRank, offRank = agg.pick(cands, available, m.cfg.FirstFit)
		} else {
			var workers int
			best, reqRank, offRank, scanned, workers, scanCand, scanIndexed = m.scan(req, offers, ix, available)
			m.hScanFanout.Observe(float64(workers))
		}
		m.hScanned.Observe(float64(scanned))
		if best >= 0 {
			available[best] = false
			out = append(out, Match{
				Request:     req,
				Offer:       offers[best],
				RequestRank: reqRank,
				OfferRank:   offRank,
				Trace:       trace,
				Span:        sp.ID(),
			})
			if !m.cfg.DeferCharges {
				m.usage.Record(owner(req), 1)
			}
			m.mMatches.Inc()
			if m.events != nil {
				m.events.Emit("matchmaker", "match", cycle, map[string]string{
					"request":      adName(req),
					"offer":        adName(offers[best]),
					"request_rank": fmt.Sprintf("%g", reqRank),
					"offer_rank":   fmt.Sprintf("%g", offRank),
				})
			}
			if m.forensics != nil {
				takenBy[best] = adName(req)
				r := Report{
					Request: adName(req), Owner: owner(req), Cycle: cycle,
					Time: m.now(), Matched: true, Offer: adName(offers[best]),
				}
				if offerClaimed(offers[best]) {
					r.Claimed = true
					r.Ledger = []OfferVerdict{{
						Offer:   r.Offer,
						Outcome: VerdictMatchedClaimed,
						Detail: fmt.Sprintf("offer advertises State == \"Claimed\"; "+
							"claim-time revalidation rejects unless offered rank %g beats the running claim", offRank),
					}}
				}
				m.forensics.record(r)
			}
			sp.Set("outcome", "match")
			sp.Set("offer", adName(offers[best]))
		} else if m.instrumented() {
			reason := m.diagnose(req, offers, available, agg, cands)
			switch reason {
			case ReasonNoOffers:
				m.mRejNone.Inc()
			case ReasonConstraintFailed:
				m.mRejConstr.Inc()
			case ReasonOutranked:
				m.mRejTaken.Inc()
			}
			if m.events != nil {
				m.events.Emit("matchmaker", "no_match", cycle, map[string]string{
					"request": adName(req),
					"reason":  reason,
				})
			}
			if m.forensics != nil {
				ledger, truncated := m.buildLedger(req, offers, available, takenBy, scanCand, scanIndexed)
				m.forensics.record(Report{
					Request: adName(req), Owner: owner(req), Cycle: cycle,
					Time: m.now(), Reason: reason,
					Ledger: ledger, Truncated: truncated,
				})
			}
			sp.Set("outcome", reason)
		}
		sp.End()
	}
	m.hNegotiate.Observe(m.now().Sub(start).Seconds())
	return out
}

// diagnose categorizes why a request left the cycle unmatched,
// mirroring Analyze's verdicts: an empty pool (no-offers), a pool with
// no bilaterally compatible offer (constraint-failed), or compatible
// offers that higher-priority requests already took (outranked). The
// scan path re-examines only the offers the scan skipped as
// unavailable — available offers it did not evaluate were pruned by
// the index, which only prunes provably incompatible pairs; the
// aggregate path reads the candidate classes, which were computed
// ignoring availability.
func (m *Matchmaker) diagnose(req *classad.Ad, offers []*classad.Ad, available []bool, agg *aggregation, cands []classCand) string {
	if len(offers) == 0 {
		return ReasonNoOffers
	}
	if agg != nil {
		if len(cands) > 0 {
			return ReasonOutranked
		}
		return ReasonConstraintFailed
	}
	for oi := range offers {
		if available[oi] {
			continue // the scan already proved these incompatible
		}
		if classad.MatchEnv(req, offers[oi], m.cfg.Env).Matched {
			return ReasonOutranked
		}
	}
	return ReasonConstraintFailed
}

func adName(ad *classad.Ad) string {
	if s, ok := ad.Eval(classad.AttrName).StringVal(); ok {
		return s
	}
	return owner(ad)
}

// scan selects the offer for one request: with an index, only the
// candidate offers the posting lists admit are evaluated; without one,
// every offer is. The scan itself runs sequentially or sharded per
// Config.Parallel — either way the selection is the one better()
// defines: highest request rank, ties to the higher offer rank,
// remaining ties to the earliest offer.
func (m *Matchmaker) scan(req *classad.Ad, offers []*classad.Ad, ix *OfferIndex, available []bool) (best int, reqRank, offRank float64, scanned, workers int, cand []int, indexed bool) {
	if ix != nil {
		cand, indexed = ix.Candidates(req, m.cfg.Env)
		if indexed {
			m.mIdxCand.Add(int64(len(cand)))
			m.mIdxPruned.Add(int64(len(offers) - len(cand)))
		} else {
			m.mIdxMisses.Inc()
		}
	}
	best, reqRank, offRank, scanned, workers = scanOffers(req, offers, cand, available, m.cfg)
	return best, reqRank, offRank, scanned, workers, cand, indexed
}

// requestOrder returns the indices of requests in service order. With
// fair share on, customers are ordered by effective usage (lightest
// first, the paper's "fair matching policy" from "past resource usage
// information"); requests within a customer keep submission order.
// Without fair share, submission order is preserved.
func (m *Matchmaker) requestOrder(requests []*classad.Ad) []int {
	order := make([]int, len(requests))
	for i := range order {
		order[i] = i
	}
	if !m.cfg.FairShare {
		return order
	}
	sort.SliceStable(order, func(a, b int) bool {
		ua := m.usage.Effective(owner(requests[order[a]]))
		ub := m.usage.Effective(owner(requests[order[b]]))
		return ua < ub
	})
	return order
}

// bestOfferIndexThreshold is the offer count above which BestOffer
// builds a throwaway index: posting-list construction evaluates
// nothing, so it amortizes after pruning a handful of candidates.
const bestOfferIndexThreshold = 256

// BestOffer is the single-request entry point: it returns the index of
// the offer the request should be introduced to, or -1, applying the
// same selection rule as Negotiate — better() is the single source of
// truth for both. Tools use it for "what would I match?" queries.
// Large offer lists are pruned through a throwaway offer index; the
// result is identical either way.
func BestOffer(req *classad.Ad, offers []*classad.Ad, env *classad.Env) (int, Match) {
	var ix *OfferIndex
	if len(offers) >= bestOfferIndexThreshold {
		ix = NewOfferIndex(offers)
	}
	return bestOffer(req, offers, ix, env)
}

// BestOfferIndexed is BestOffer against a prebuilt index (covering
// exactly the offers of interest), for callers answering many
// requests against one offer set.
func BestOfferIndexed(req *classad.Ad, ix *OfferIndex, env *classad.Env) (int, Match) {
	return bestOffer(req, ix.Offers(), ix, env)
}

func bestOffer(req *classad.Ad, offers []*classad.Ad, ix *OfferIndex, env *classad.Env) (int, Match) {
	var cand []int
	if ix != nil {
		var indexed bool
		cand, indexed = ix.Candidates(req, env)
		if !indexed {
			cand = ix.liveIndices() // skip removed slots; nil when all live
		}
	}
	available := make([]bool, len(offers))
	for i := range available {
		available[i] = true
	}
	best, reqRank, offRank, _, _ := scanOffers(req, offers, cand, available, Config{Env: env})
	if best < 0 {
		return -1, Match{}
	}
	return best, Match{Request: req, Offer: offers[best],
		RequestRank: reqRank, OfferRank: offRank}
}
