package matchmaker

// Event-driven incremental negotiation (ROADMAP item 3): the dirty-set
// engine that replaces the fixed-timer full rebuild.
//
// The collector store publishes ad deltas (new/changed/expired/
// invalidated) over its subscription seam; the pool manager adapts
// them into AdDeltas and Notify()s this engine. The engine keeps a
// persistent OfferIndex (reusing its incremental Add/Remove), the
// previous wake's full assignment, and a dirty request set — a
// request is dirty if it is new, was unmatched, or its prior match's
// offer was touched by a delta (the ISSUE's rule). A
// needs_matchmaking condition variable wakes negotiation only when
// there is queued work, so a quiet pool costs nothing; a configurable
// full-rebuild fallback (MarkAllDirty) is the safety net against any
// lost notification.
//
// Correctness contract (pinned by TestIncrementalDifferential):
// after any delta stream, Recompute's assignment, fair-share charges,
// and forensic verdicts are identical to a from-scratch NegotiateCycle
// over the same live ads. The argument for the one shortcut the
// engine takes — a clean matched request re-examines only the
// "frontier" instead of the whole pool — is:
//
//   - Requests are replayed in the same canonical order as a full
//     cycle (name-sorted, then fair-share). If the order diverges
//     from the previous wake at position k (usage changed, a request
//     arrived or left), every request from k on is marked dirty, so
//     the shortcut only applies where the serving prefix is
//     literally identical.
//   - The frontier is the set of offers whose content or availability
//     differs from the previous wake at the corresponding point of
//     the replay: offers touched by deltas, offers freed by departed
//     requests, plus — grown during the replay — both sides of every
//     pick that changed. By induction, an offer outside the frontier
//     is bit-identical and identically available at a clean request's
//     turn.
//   - A clean request's previous pick therefore still beats every
//     non-frontier offer (same ads, same ranks, same claimed state,
//     and the same relative tie-break order, because positions are
//     assigned in name-sorted order and the relative order of two
//     fixed names never changes). The new winner is the better() of
//     the previous pick and the best frontier challenger — a scan
//     over the frontier only.
//
// Unmatched and dirty requests take the full indexed scan, which is
// exactly the NegotiateCycle path (same scanOffers kernel, same
// better() comparator, same diagnose/forensics), so their outcomes
// are trivially identical.

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/classad"
	"repro/internal/obs"
)

// AdDeltaKind classifies one pool change as the engine sees it.
type AdDeltaKind int

const (
	// AdUpsert: an ad appeared or changed; Ad carries the new content.
	AdUpsert AdDeltaKind = iota
	// AdRemove: the ad named Name expired or was invalidated.
	AdRemove
)

// AdDelta is one pool change delivered to the engine. Name is the
// ad's folded name; Ad is nil for AdRemove.
type AdDelta struct {
	Kind AdDeltaKind
	Name string
	Ad   *classad.Ad
}

// IncrementalHooks are seeded fault-injection points for the engine's
// self-tests (PR 8 style); all off in production.
type IncrementalHooks struct {
	// DropDirtyNotification silently discards content-change deltas
	// for offers the engine already knows — the "resource changed but
	// nobody re-matched it" bug the change feed exists to prevent. The
	// differential suite and the modelcheck delivery-order schedule
	// must both rediscover it.
	DropDirtyNotification bool
}

// offerRec is the engine's record of one live offer.
type offerRec struct {
	ad   *classad.Ad
	slot int // slot in the persistent OfferIndex
	src  string
}

// reqRec is the engine's record of one live request and its previous
// outcome.
type reqRec struct {
	ad    *classad.Ad
	src   string
	dirty bool
	// Previous wake's outcome.
	matched          bool
	offer            string // folded name of the matched offer
	reqRank, offRank float64
}

// WakeStats summarizes one Recompute for callers and tests.
type WakeStats struct {
	// Requests and Offers are the pool sizes this wake served.
	Requests, Offers int
	// Deltas is how many queued deltas this wake absorbed.
	Deltas int
	// Dirty is how many requests took the full scan path.
	Dirty int
	// Clean is how many matched requests took the frontier shortcut.
	Clean int
	// Evals counts bilateral MatchEnv evaluations performed — the
	// negotiation work the incremental engine exists to avoid.
	Evals int
	// FullRebuild reports that this wake ran with every request dirty
	// (first wake, MarkAllDirty fallback, or an unsupported config).
	FullRebuild bool
}

// Incremental is the event-driven negotiation engine. Construct with
// NewIncremental, feed it AdDeltas via Notify, and run wakes with
// Recompute (typically from a loop blocked on Wait). All methods are
// safe for concurrent use; Recompute itself is serialized.
type Incremental struct {
	m *Matchmaker

	// Hooks seed faults for self-tests; zero in production.
	Hooks IncrementalHooks

	mu   sync.Mutex
	cond *sync.Cond // needs_matchmaking: signaled on queued work
	// pending is the queued delta stream; forceFull requests a full
	// rebuild on the next wake.
	pending   []AdDelta
	forceFull bool
	closed    bool

	// Persistent negotiation state.
	ix       *OfferIndex
	offers   map[string]*offerRec
	requests map[string]*reqRec
	// touched accumulates offer names whose content changed (or that
	// appeared/disappeared) since the last wake — the initial
	// frontier.
	touched map[string]bool
	// freed accumulates offers released by requests that left the
	// pool since the last wake.
	freed map[string]bool
	// prevOrder is the request-name order the previous wake served.
	prevOrder []string
	// hadOffers is whether the previous wake saw a non-empty offer
	// pool (the no-offers reason boundary; crossing it dirties
	// unmatched requests, which are always dirty anyway — kept for
	// clarity of the invariant).
	hadOffers bool
	firstWake bool

	// Observability; nil-safe until InstrumentEngine.
	gDirty        *obs.Gauge
	mWakes        *obs.Counter
	mCoalesced    *obs.Counter
	mFullRebuilds *obs.Counter
	mEvals        *obs.Counter
}

// NewIncremental wraps m. The engine owns m's cycle execution: run
// wakes through Recompute, not NegotiateCycle. Charging is forced to
// the deferred model (Config.DeferCharges) — an event-driven engine
// has no per-cycle charge point, so the caller bills usage on claim
// acknowledgment exactly as pool.NewManager already does.
// Aggregate/FirstFit configs are served by falling back to a full
// rebuild every wake (still correct, no longer incremental).
func NewIncremental(m *Matchmaker) *Incremental {
	m.cfg.DeferCharges = true
	e := &Incremental{
		m:         m,
		ix:        NewOfferIndex(nil),
		offers:    make(map[string]*offerRec),
		requests:  make(map[string]*reqRec),
		touched:   make(map[string]bool),
		freed:     make(map[string]bool),
		firstWake: true,
	}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// InstrumentEngine registers the engine's own metrics with o:
// matchmaker_dirty_requests (gauge: dirty-set depth after the last
// wake's drain), matchmaker_wakes_total, matchmaker_wake_coalesced_total
// (deltas absorbed into an already-pending wake),
// matchmaker_full_rebuilds_total (fallback cycles), and
// matchmaker_incremental_evals_total (bilateral evaluations spent).
// The embedded Matchmaker is instrumented separately (Instrument).
func (e *Incremental) InstrumentEngine(o *obs.Obs) {
	reg := o.Registry()
	e.mu.Lock()
	e.gDirty = reg.Gauge("matchmaker_dirty_requests")
	e.mWakes = reg.Counter("matchmaker_wakes_total")
	e.mCoalesced = reg.Counter("matchmaker_wake_coalesced_total")
	e.mFullRebuilds = reg.Counter("matchmaker_full_rebuilds_total")
	e.mEvals = reg.Counter("matchmaker_incremental_evals_total")
	e.mu.Unlock()
}

// Matchmaker exposes the embedded matchmaker (usage, forensics).
func (e *Incremental) Matchmaker() *Matchmaker { return e.m }

// classifyAd mirrors the pool manager's request/offer split: Type
// "Job" is a request, negotiator and daemon self-ads are neither, and
// everything else — including ads with no Type — is an offer.
const (
	adRequest = iota
	adOffer
	adIgnore
)

func classifyAd(ad *classad.Ad) int {
	typ, ok := ad.Eval(classad.AttrType).StringVal()
	if !ok {
		return adOffer
	}
	switch classad.Fold(typ) {
	case "job":
		return adRequest
	case "negotiator", "daemon":
		return adIgnore
	}
	return adOffer
}

// Notify queues deltas and signals needs_matchmaking. Deltas for ads
// the engine ignores (negotiator/daemon self-ads) are dropped without
// a wake, so a self-advertising manager does not wake itself forever.
func (e *Incremental) Notify(deltas ...AdDelta) {
	e.mu.Lock()
	defer e.mu.Unlock()
	queued := false
	for _, d := range deltas {
		if d.Kind == AdUpsert {
			if d.Ad == nil || classifyAd(d.Ad) == adIgnore {
				continue
			}
			if e.Hooks.DropDirtyNotification {
				// Seeded mutant: a content change for a known offer is
				// dropped on the floor — the index keeps the stale ad and
				// nothing re-enters negotiation for it.
				if _, known := e.offers[classad.Fold(d.Name)]; known {
					continue
				}
			}
		} else {
			// A removal for a name the engine never stored is noise.
			key := classad.Fold(d.Name)
			if _, isOffer := e.offers[key]; !isOffer {
				if _, isReq := e.requests[key]; !isReq {
					continue
				}
			}
		}
		if len(e.pending) > 0 || e.forceFull {
			e.mCoalesced.Inc()
		}
		e.pending = append(e.pending, d)
		queued = true
	}
	if queued {
		e.cond.Signal()
	}
}

// MarkAllDirty requests a full rebuild on the next wake — the
// fallback cycle's entry point — and signals needs_matchmaking.
func (e *Incremental) MarkAllDirty() {
	e.mu.Lock()
	e.forceFull = true
	e.cond.Signal()
	e.mu.Unlock()
}

// Wait blocks on needs_matchmaking until there is queued work (or a
// forced rebuild), returning false once the engine is closed.
func (e *Incremental) Wait() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.pending) == 0 && !e.forceFull && !e.closed {
		e.cond.Wait()
	}
	return !e.closed
}

// NeedsWake reports whether Recompute has queued work, without
// blocking.
func (e *Incremental) NeedsWake() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.pending) > 0 || e.forceFull
}

// Close wakes any blocked Wait and marks the engine closed.
func (e *Incremental) Close() {
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
}

// drainLocked applies queued deltas to the persistent state: the
// offer index, the request set, the dirty marks, and the initial
// frontier. The caller holds e.mu.
func (e *Incremental) drainLocked() int {
	n := len(e.pending)
	for _, d := range e.pending {
		key := classad.Fold(d.Name)
		switch d.Kind {
		case AdUpsert:
			switch classifyAd(d.Ad) {
			case adRequest:
				src := d.Ad.String()
				if prev, ok := e.requests[key]; ok {
					if prev.src == src {
						continue // content-identical refresh
					}
					prev.ad, prev.src, prev.dirty = d.Ad, src, true
				} else {
					e.requests[key] = &reqRec{ad: d.Ad, src: src, dirty: true}
				}
				// A job and an offer may not share a name (the store
				// would have overwritten one with the other); drop any
				// stale offer record under the same key.
				e.dropOfferLocked(key)
			case adOffer:
				src := d.Ad.String()
				if prev, ok := e.offers[key]; ok {
					if prev.src == src {
						continue
					}
					e.ix.Remove(prev.slot)
					prev.ad, prev.src, prev.slot = d.Ad, src, e.ix.Add(d.Ad)
				} else {
					e.offers[key] = &offerRec{ad: d.Ad, src: src, slot: e.ix.Add(d.Ad)}
				}
				// A request re-advertised as an offer (name reuse) frees
				// whatever it held, like any other request departure.
				if rec, ok := e.requests[key]; ok {
					if rec.matched {
						e.freed[rec.offer] = true
					}
					delete(e.requests, key)
				}
				e.touched[key] = true
			}
		case AdRemove:
			if rec, ok := e.requests[key]; ok {
				if rec.matched {
					e.freed[rec.offer] = true
				}
				delete(e.requests, key)
			}
			e.dropOfferLocked(key)
		}
	}
	e.pending = nil
	return n
}

// dropOfferLocked retires the offer stored under key, if any.
func (e *Incremental) dropOfferLocked(key string) {
	if rec, ok := e.offers[key]; ok {
		e.ix.Remove(rec.slot)
		delete(e.offers, key)
		e.touched[key] = true
	}
}

// compactLocked rebuilds the persistent index once dead slots
// outnumber live ones, so long churny runs do not grow it without
// bound. Rebuilding evaluates nothing — it is one pass over the live
// offers' attributes.
func (e *Incremental) compactLocked() {
	if len(e.ix.offers) < 64 || 2*len(e.offers) > len(e.ix.offers) {
		return
	}
	names := make([]string, 0, len(e.offers))
	for name := range e.offers {
		names = append(names, name)
	}
	sort.Strings(names)
	ads := make([]*classad.Ad, len(names))
	for i, name := range names {
		ads[i] = e.offers[name].ad
	}
	e.ix = NewOfferIndex(ads)
	for i, name := range names {
		e.offers[name].slot = i
	}
}

// Recompute runs one wake: it drains the queued deltas, replays the
// negotiation in canonical order with the frontier shortcut, and
// returns the complete current assignment (every live match, not just
// the changed ones — MATCH notification is idempotent and the caller
// retries unacknowledged matches exactly as in timer mode). The
// returned assignment is what NegotiateCycle would produce from
// scratch over the engine's current ads.
func (e *Incremental) Recompute(cycle string) ([]Match, WakeStats) {
	start := e.m.now()
	e.mu.Lock()
	defer e.mu.Unlock()

	var stats WakeStats
	stats.Deltas = e.drainLocked()
	full := e.forceFull || e.firstWake || e.m.cfg.Aggregate || e.m.cfg.FirstFit
	e.forceFull, e.firstWake = false, false
	if full {
		stats.FullRebuild = true
		e.mFullRebuilds.Inc()
		for _, rec := range e.requests {
			rec.dirty = true
		}
	}
	e.compactLocked()

	// Name-sorted view of the live offers: positions in this view are
	// the tie-break indices, identical to a full cycle over the
	// store's sorted snapshot. Relative order of two fixed names never
	// changes across wakes, which is what keeps the previous pick's
	// tie-break comparisons valid.
	offerNames := make([]string, 0, len(e.offers))
	for name := range e.offers {
		offerNames = append(offerNames, name)
	}
	sort.Strings(offerNames)
	view := make([]*classad.Ad, len(offerNames))
	posOf := make(map[string]int, len(offerNames))
	posOfSlot := make([]int, len(e.ix.offers))
	for i := range posOfSlot {
		posOfSlot[i] = -1
	}
	for i, name := range offerNames {
		rec := e.offers[name]
		view[i] = rec.ad
		posOf[name] = i
		posOfSlot[rec.slot] = i
	}

	// Canonical request order: name-sorted base, fair-share on top —
	// the same order a full cycle computes over the store's sorted
	// job snapshot. Any divergence from the previous wake's order
	// dirties every request from the divergence point on.
	reqNames := make([]string, 0, len(e.requests))
	for name := range e.requests {
		reqNames = append(reqNames, name)
	}
	sort.Strings(reqNames)
	reqAds := make([]*classad.Ad, len(reqNames))
	for i, name := range reqNames {
		reqAds[i] = e.requests[name].ad
	}
	order := e.m.requestOrder(reqAds)
	ordered := make([]string, len(order))
	for i, ri := range order {
		ordered[i] = reqNames[ri]
	}
	for i, name := range ordered {
		if i >= len(e.prevOrder) || e.prevOrder[i] != name {
			for _, later := range ordered[i:] {
				e.requests[later].dirty = true
			}
			break
		}
	}
	e.prevOrder = ordered

	// The pool crossing empty<->non-empty flips unmatched reasons
	// between no-offers and constraint-failed; unmatched requests are
	// always dirty (the ISSUE's rule), so the boundary needs no extra
	// marking — tracked only to keep the invariant explicit.
	e.hadOffers = len(view) > 0

	// Initial frontier: touched offers plus offers freed by departed
	// requests, as view positions. It grows as replayed picks change.
	frontier := make([]bool, len(view))
	for name := range e.touched {
		if pos, ok := posOf[name]; ok {
			frontier[pos] = true
		}
	}
	for name := range e.freed {
		if pos, ok := posOf[name]; ok {
			frontier[pos] = true
		}
	}
	e.touched = make(map[string]bool)
	e.freed = make(map[string]bool)

	// Requests whose prior match's offer was touched (or disappeared)
	// are dirty — the ISSUE's third rule; unmatched requests are dirty
	// by the second.
	for _, name := range ordered {
		rec := e.requests[name]
		if !rec.matched {
			rec.dirty = true
			continue
		}
		pos, alive := posOf[rec.offer]
		if !alive || frontier[pos] {
			rec.dirty = true
		}
	}

	// Snapshot the initial frontier and, when indexing is on, build a
	// mini-index over just those offers: a clean request's challenger
	// scan then evaluates only the frontier members that could possibly
	// satisfy its constraint (Candidates is a superset of the matching
	// offers, so skipping the rest drops no challenger). Offers the
	// replay adds to the frontier later are collected in grown and
	// scanned unpruned — there are few of them.
	var frontierPos []int
	for ci := range frontier {
		if frontier[ci] {
			frontierPos = append(frontierPos, ci)
		}
	}
	var fix *OfferIndex
	if e.m.cfg.Index && len(frontierPos) > 0 {
		fads := make([]*classad.Ad, len(frontierPos))
		for k, pos := range frontierPos {
			fads[k] = view[pos]
		}
		fix = NewOfferIndex(fads)
	}
	var grown []int
	extendFrontier := func(pos int) {
		if !frontier[pos] {
			frontier[pos] = true
			grown = append(grown, pos)
		}
	}

	stats.Requests, stats.Offers = len(ordered), len(view)
	dirtyCount := 0
	for _, name := range ordered {
		if e.requests[name].dirty {
			dirtyCount++
		}
	}
	stats.Dirty = dirtyCount
	stats.Clean = len(ordered) - dirtyCount
	e.gDirty.Set(int64(dirtyCount))
	e.mWakes.Inc()

	avail := make([]bool, len(view))
	for i := range avail {
		avail[i] = true
	}
	var takenBy []string
	if e.m.forensics != nil {
		takenBy = make([]string, len(view))
	}

	var out []Match
	for _, name := range ordered {
		rec := e.requests[name]
		var best int
		var reqRank, offRank float64
		var scanCand []int
		var scanIndexed bool
		if !rec.dirty {
			// Frontier shortcut: the previous pick still beats every
			// unchanged offer; only frontier members can challenge it.
			pos := posOf[rec.offer]
			if !avail[pos] {
				// An earlier changed pick took it; fall back to the
				// full scan for this request.
				rec.dirty = true
				stats.Dirty++
				stats.Clean--
			} else {
				best, reqRank, offRank = pos, rec.reqRank, rec.offRank
				cur := candidate{pos, rec.reqRank, rec.offRank,
					!e.m.cfg.LegacyClaimedTieBreak && offerClaimed(view[pos])}
				challenge := func(ci int) {
					if !avail[ci] || ci == pos {
						return
					}
					stats.Evals++
					res := classad.MatchEnv(rec.ad, view[ci], e.m.cfg.Env)
					if !res.Matched {
						return
					}
					ch := candidate{ci, res.LeftRank, res.RightRank,
						!e.m.cfg.LegacyClaimedTieBreak && offerClaimed(view[ci])}
					if better(ch, cur) {
						cur = ch
						best, reqRank, offRank = ci, res.LeftRank, res.RightRank
					}
				}
				if fix != nil {
					if slots, ok := fix.Candidates(rec.ad, e.m.cfg.Env); ok {
						for _, s := range slots {
							challenge(frontierPos[s])
						}
					} else {
						for _, ci := range frontierPos {
							challenge(ci)
						}
					}
				} else {
					for _, ci := range frontierPos {
						challenge(ci)
					}
				}
				for _, ci := range grown {
					challenge(ci)
				}
			}
		}
		var sp *obs.SpanRec
		if rec.dirty {
			// Dirty requests are genuinely re-negotiated, so they get
			// the same trace span a full cycle would record; a clean
			// request keeps its prior decision and emits nothing.
			sp = e.m.spans.Start(classad.TraceOf(rec.ad), classad.TraceSpanOf(rec.ad), "matchmaker", "negotiate")
			sp.Set("request", adName(rec.ad))
			var scanned int
			best, reqRank, offRank, scanned, scanCand, scanIndexed = e.scanDirty(rec.ad, view, posOfSlot, avail)
			stats.Evals += scanned
		}

		prevMatched, prevOffer := rec.matched, rec.offer
		if best >= 0 {
			avail[best] = false
			if takenBy != nil {
				takenBy[best] = adName(rec.ad)
			}
			rec.matched, rec.offer = true, offerNames[best]
			rec.reqRank, rec.offRank = reqRank, offRank
			out = append(out, Match{
				Request: rec.ad, Offer: view[best],
				RequestRank: reqRank, OfferRank: offRank,
				Trace: classad.TraceOf(rec.ad),
				Span:  sp.ID(),
			})
			sp.Set("outcome", "match")
			sp.Set("offer", offerNames[best])
		} else {
			rec.matched, rec.offer = false, ""
		}
		sp.End()
		// Every pick difference extends the frontier: the old offer is
		// free where it was taken, the new one taken where it was free.
		if rec.offer != prevOffer || rec.matched != prevMatched {
			if prevMatched {
				if pos, ok := posOf[prevOffer]; ok {
					extendFrontier(pos)
				}
			}
			if rec.matched {
				extendFrontier(best)
			}
		}
		e.recordOutcome(cycle, rec, view, avail, takenBy, best, offRank, scanCand, scanIndexed)
		rec.dirty = false
	}

	e.mEvals.Add(int64(stats.Evals))
	e.m.hNegotiate.Observe(e.m.now().Sub(start).Seconds())
	return out, stats
}

// scanDirty is the dirty request's full path: the persistent index's
// candidates mapped into view positions, then the shared scanOffers
// kernel — the same two-stage scan a full cycle runs.
func (e *Incremental) scanDirty(req *classad.Ad, view []*classad.Ad, posOfSlot []int, avail []bool) (best int, reqRank, offRank float64, scanned int, cand []int, indexed bool) {
	m := e.m
	if m.cfg.Index {
		var slots []int
		slots, indexed = e.ix.Candidates(req, m.cfg.Env)
		if indexed {
			cand = make([]int, 0, len(slots))
			for _, s := range slots {
				if pos := posOfSlot[s]; pos >= 0 {
					cand = append(cand, pos)
				}
			}
			sort.Ints(cand)
			m.mIdxCand.Add(int64(len(cand)))
			m.mIdxPruned.Add(int64(len(view) - len(cand)))
		} else {
			m.mIdxMisses.Inc()
		}
	}
	var workers int
	best, reqRank, offRank, scanned, workers = scanOffers(req, view, cand, avail, m.cfg)
	m.hScanFanout.Observe(float64(workers))
	m.hScanned.Observe(float64(scanned))
	return best, reqRank, offRank, scanned, cand, indexed
}

// recordOutcome mirrors NegotiateCycle's per-request bookkeeping —
// match counters, events, forensic reports, rejection diagnosis — for
// requests the wake actually recomputed. A clean request that kept
// its match retains its previous report verbatim, which is identical
// in every verdict field.
func (e *Incremental) recordOutcome(cycle string, rec *reqRec, view []*classad.Ad, avail []bool, takenBy []string, best int, offRank float64, scanCand []int, scanIndexed bool) {
	m := e.m
	if !m.instrumented() {
		return
	}
	if rec.matched {
		m.mMatches.Inc()
		if m.events != nil {
			m.events.Emit("matchmaker", "match", cycle, map[string]string{
				"request":      adName(rec.ad),
				"offer":        adName(view[best]),
				"request_rank": fmt.Sprintf("%g", rec.reqRank),
				"offer_rank":   fmt.Sprintf("%g", rec.offRank),
			})
		}
		if m.forensics != nil {
			r := Report{
				Request: adName(rec.ad), Owner: owner(rec.ad), Cycle: cycle,
				Time: m.now(), Matched: true, Offer: adName(view[best]),
			}
			if offerClaimed(view[best]) {
				r.Claimed = true
				r.Ledger = []OfferVerdict{{
					Offer:   r.Offer,
					Outcome: VerdictMatchedClaimed,
					Detail: fmt.Sprintf("offer advertises State == \"Claimed\"; "+
						"claim-time revalidation rejects unless offered rank %g beats the running claim", offRank),
				}}
			}
			m.forensics.record(r)
		}
		return
	}
	reason := m.diagnose(rec.ad, view, avail, nil, nil)
	switch reason {
	case ReasonNoOffers:
		m.mRejNone.Inc()
	case ReasonConstraintFailed:
		m.mRejConstr.Inc()
	case ReasonOutranked:
		m.mRejTaken.Inc()
	}
	if m.events != nil {
		m.events.Emit("matchmaker", "no_match", cycle, map[string]string{
			"request": adName(rec.ad),
			"reason":  reason,
		})
	}
	if m.forensics != nil {
		ledger, truncated := m.buildLedger(rec.ad, view, avail, takenBy, scanCand, scanIndexed)
		m.forensics.record(Report{
			Request: adName(rec.ad), Owner: owner(rec.ad), Cycle: cycle,
			Time: m.now(), Reason: reason,
			Ledger: ledger, Truncated: truncated,
		})
	}
}

// Matches returns the current assignment without recomputing, in the
// previous wake's order (tests and status tools).
func (e *Incremental) Matches() []Match {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []Match
	for _, name := range e.prevOrder {
		rec, ok := e.requests[name]
		if !ok || !rec.matched {
			continue
		}
		off, ok := e.offers[rec.offer]
		if !ok {
			continue
		}
		out = append(out, Match{
			Request: rec.ad, Offer: off.ad,
			RequestRank: rec.reqRank, OfferRank: rec.offRank,
			Trace: classad.TraceOf(rec.ad),
		})
	}
	return out
}
