package matchmaker

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/classad"
	"repro/internal/obs"
)

// named stamps a Name on a test ad so forensics can key it.
func named(ad *classad.Ad, name string) *classad.Ad {
	ad.SetString("Name", name)
	return ad
}

func TestForensicsStoreBounds(t *testing.T) {
	f := NewForensics()
	for i := 0; i < maxForensicsReports+10; i++ {
		f.record(Report{Request: fmt.Sprintf("req%d", i)})
	}
	if got := len(f.Requests()); got != maxForensicsReports {
		t.Fatalf("store holds %d reports, want cap %d", got, maxForensicsReports)
	}
	if _, ok := f.Lookup("req0"); ok {
		t.Fatal("oldest report survived FIFO eviction")
	}
	if _, ok := f.Lookup("REQ42"); !ok {
		t.Fatal("lookup is not case-folded")
	}
	// Re-recording overwrites in place, no extra slot.
	f.record(Report{Request: "req42", Cycle: "c2"})
	if got := len(f.Requests()); got != maxForensicsReports {
		t.Fatalf("overwrite grew the store to %d", got)
	}
	if r, _ := f.Lookup("req42"); r.Cycle != "c2" {
		t.Fatalf("overwrite lost: %+v", r)
	}

	var nilF *Forensics
	nilF.record(Report{Request: "x"})
	if _, ok := nilF.Lookup("x"); ok || nilF.Requests() != nil {
		t.Fatal("nil forensics is not a no-op")
	}
}

func TestForensicsConstraintFailedNamesConjunct(t *testing.T) {
	m := New(Config{})
	m.Instrument(obs.New())
	offers := []*classad.Ad{named(machine("m1", "INTEL", 32), "m1")}
	req := named(job("alice", "INTEL", 64), "alice/job1")
	if got := m.NegotiateCycle("c-1", []*classad.Ad{req}, offers); len(got) != 0 {
		t.Fatalf("unexpected match: %+v", got)
	}
	r, ok := m.Forensics().Lookup("alice/job1")
	if !ok {
		t.Fatal("no report recorded")
	}
	if r.Matched || r.Reason != ReasonConstraintFailed {
		t.Fatalf("report = %+v, want unmatched constraint-failed", r)
	}
	if len(r.Ledger) != 1 || r.Ledger[0].Outcome != VerdictConstraintFailed {
		t.Fatalf("ledger = %+v", r.Ledger)
	}
	if !strings.Contains(r.Ledger[0].Detail, "other.Memory >= 64") {
		t.Fatalf("detail %q does not name the failing conjunct", r.Ledger[0].Detail)
	}
}

func TestForensicsOutrankedNamesWinner(t *testing.T) {
	m := New(Config{})
	m.Instrument(obs.New())
	offers := []*classad.Ad{named(machine("m1", "INTEL", 64), "m1")}
	requests := []*classad.Ad{
		named(job("alice", "INTEL", 32), "alice/job1"),
		named(job("bob", "INTEL", 32), "bob/job1"),
	}
	if got := m.NegotiateCycle("c-1", requests, offers); len(got) != 1 {
		t.Fatalf("got %d matches, want 1", len(got))
	}
	winner := adName(requests[0])
	loser := "bob/job1"
	if r, _ := m.Forensics().Lookup(winner); !r.Matched {
		// Priority order may pick either owner first; find the loser.
		winner, loser = loser, winner
	}
	r, ok := m.Forensics().Lookup(loser)
	if !ok {
		t.Fatal("no report for the outranked request")
	}
	if r.Matched || r.Reason != ReasonOutranked {
		t.Fatalf("report = %+v, want outranked", r)
	}
	if len(r.Ledger) != 1 || r.Ledger[0].Outcome != VerdictOutranked {
		t.Fatalf("ledger = %+v", r.Ledger)
	}
	if want := "taken by " + winner; r.Ledger[0].Detail != want {
		t.Fatalf("detail = %q, want %q", r.Ledger[0].Detail, want)
	}
}

func TestForensicsIndexPruned(t *testing.T) {
	m := New(Config{Index: true})
	m.Instrument(obs.New())
	offers := []*classad.Ad{named(machine("m1", "SPARC", 64), "m1")}
	req := named(job("alice", "INTEL", 32), "alice/job1")
	if got := m.NegotiateCycle("c-1", []*classad.Ad{req}, offers); len(got) != 0 {
		t.Fatalf("unexpected match: %+v", got)
	}
	r, ok := m.Forensics().Lookup("alice/job1")
	if !ok {
		t.Fatal("no report recorded")
	}
	if len(r.Ledger) != 1 || r.Ledger[0].Outcome != VerdictIndexPruned {
		t.Fatalf("ledger = %+v, want index-pruned", r.Ledger)
	}
	if !strings.Contains(r.Ledger[0].Detail, "posting list") {
		t.Fatalf("detail %q does not name the posting list", r.Ledger[0].Detail)
	}
}

func TestForensicsLedgerTruncates(t *testing.T) {
	m := New(Config{})
	m.Instrument(obs.New())
	var offers []*classad.Ad
	for i := 0; i < maxLedgerEntries+8; i++ {
		name := fmt.Sprintf("m%d", i)
		offers = append(offers, named(machine(name, "SPARC", 64), name))
	}
	req := named(job("alice", "INTEL", 32), "alice/job1")
	m.NegotiateCycle("c-1", []*classad.Ad{req}, offers)
	r, _ := m.Forensics().Lookup("alice/job1")
	if len(r.Ledger) != maxLedgerEntries || !r.Truncated {
		t.Fatalf("ledger len = %d truncated = %v, want %d/true",
			len(r.Ledger), r.Truncated, maxLedgerEntries)
	}
}

// TestForensicsClaimedOfferLivelock pins ROADMAP item 1 as *resolved*:
// a machine that advertises State == "Claimed" at equal rank to an
// idle twin used to win the earliest-index tie-break every cycle, the
// claim-time revalidation bounced it every cycle, and the job starved
// while an idle machine sat next to it. better() now prefers unclaimed
// offers at equal request rank (scan.go), so the idle twin wins, the
// claim succeeds, and nothing matched-claimed appears in forensics.
// modelcheck's MC201 liveness check rediscovers the old behaviour as a
// counterexample trace when the tie-break is reverted
// (TestLivelockRegression in internal/modelcheck).
func TestForensicsClaimedOfferLivelock(t *testing.T) {
	m := New(Config{})
	m.Instrument(obs.New())
	claimed := named(machine("claimed", "INTEL", 64), "claimed")
	claimed.SetString("State", "Claimed")
	idle := named(machine("idle", "INTEL", 64), "idle")
	idle.SetString("State", "Unclaimed")
	offers := []*classad.Ad{claimed, idle}
	req := named(job("alice", "INTEL", 32), "alice/job1")

	for cycle := 1; cycle <= 3; cycle++ {
		id := fmt.Sprintf("c-%d", cycle)
		got := m.NegotiateCycle(id, []*classad.Ad{req}, offers)
		if len(got) != 1 || adName(got[0].Offer) != "idle" {
			t.Fatalf("cycle %d: matches = %+v, want the idle machine (tie-break resolved)", cycle, got)
		}
		r, ok := m.Forensics().Lookup("alice/job1")
		if !ok {
			t.Fatalf("cycle %d: no report", cycle)
		}
		if !r.Matched || r.Claimed || r.Cycle != id {
			t.Fatalf("cycle %d: report = %+v, want matched against an unclaimed offer", cycle, r)
		}
		if len(r.Ledger) != 0 {
			t.Fatalf("cycle %d: ledger = %+v, want no matched-claimed entry", cycle, r.Ledger)
		}
	}

	// The claimed machine is still reachable when it strictly outranks
	// the idle one in the request's eyes — preemption stays possible.
	prefer := named(job("alice", "INTEL", 32), "alice/job2")
	if err := prefer.SetExprString("Rank", `ifThenElse(other.Name == "claimed", 1, 0)`); err != nil {
		t.Fatal(err)
	}
	got := m.NegotiateCycle("c-4", []*classad.Ad{prefer}, offers)
	if len(got) != 1 || adName(got[0].Offer) != "claimed" {
		t.Fatalf("preferring request: matches = %+v, want the claimed machine", got)
	}
	if r, _ := m.Forensics().Lookup("alice/job2"); !r.Claimed {
		t.Fatalf("preferring request: report = %+v, want Claimed flagged", r)
	}
}
