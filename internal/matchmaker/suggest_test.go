package matchmaker

import (
	"strings"
	"testing"

	"repro/internal/classad"
)

func TestSuggestNumericRange(t *testing.T) {
	req := classad.MustParse(`[
		Owner = "u";
		Constraint = other.Memory >= 512 && other.Arch == "INTEL";
	]`)
	a := Analyze(req, smallPool(), nil) // memories 64, 128, 256
	if !a.Unsatisfiable {
		t.Fatal("512MB demand should be unsatisfiable")
	}
	if a.Clauses[0].Suggestion != "pool's Memory ranges 64..256" {
		t.Errorf("suggestion = %q", a.Clauses[0].Suggestion)
	}
	if !strings.Contains(a.String(), "hint: pool's Memory ranges 64..256") {
		t.Errorf("report:\n%s", a)
	}
}

func TestSuggestStringValues(t *testing.T) {
	req := classad.MustParse(`[
		Owner = "u";
		Constraint = other.Arch == "VAX";
	]`)
	a := Analyze(req, smallPool(), nil)
	if !a.Unsatisfiable {
		t.Fatal("VAX should be unsatisfiable")
	}
	want := `pool offers Arch in {"INTEL", "SPARC"}`
	if a.Clauses[0].Suggestion != want {
		t.Errorf("suggestion = %q, want %q", a.Clauses[0].Suggestion, want)
	}
}

func TestSuggestMissingAttribute(t *testing.T) {
	req := classad.MustParse(`[
		Owner = "u";
		Constraint = other.GPUs >= 1;
	]`)
	a := Analyze(req, smallPool(), nil)
	if a.Clauses[0].Suggestion != "no offer defines GPUs at all" {
		t.Errorf("suggestion = %q", a.Clauses[0].Suggestion)
	}
}

func TestSuggestUsesResidual(t *testing.T) {
	// The bound comes from the job's own attribute: partial
	// evaluation must fold self.Memory before shape-matching.
	req := classad.MustParse(`[
		Owner = "u";
		Memory = 2048;
		Constraint = other.Memory >= self.Memory;
	]`)
	a := Analyze(req, smallPool(), nil)
	if a.Clauses[0].Suggestion != "pool's Memory ranges 64..256" {
		t.Errorf("suggestion = %q", a.Clauses[0].Suggestion)
	}
}

func TestSuggestReversedOperands(t *testing.T) {
	req := classad.MustParse(`[
		Owner = "u";
		Constraint = 512 <= other.Memory;
	]`)
	a := Analyze(req, smallPool(), nil)
	if a.Clauses[0].Suggestion != "pool's Memory ranges 64..256" {
		t.Errorf("suggestion = %q", a.Clauses[0].Suggestion)
	}
}

func TestNoSuggestionForComplexClauses(t *testing.T) {
	// A clause that is not a simple bound gets no hint (and no
	// crash).
	req := classad.MustParse(`[
		Owner = "u";
		Constraint = other.Memory + other.Disk >= 999999999;
	]`)
	a := Analyze(req, smallPool(), nil)
	if !a.Unsatisfiable {
		t.Fatal("should be unsatisfiable")
	}
	if a.Clauses[0].Suggestion != "" {
		t.Errorf("unexpected suggestion %q", a.Clauses[0].Suggestion)
	}
	// Satisfiable clauses never get hints.
	ok := classad.MustParse(`[ Owner = "u"; Constraint = other.Memory >= 64 ]`)
	a = Analyze(ok, smallPool(), nil)
	if a.Clauses[0].Suggestion != "" {
		t.Errorf("hint on satisfiable clause: %q", a.Clauses[0].Suggestion)
	}
}
