package matchmaker

// Differential tests for the event-driven incremental engine: a long
// seeded delta stream is driven through a real collector store and its
// change feed into an Incremental engine, and at every quiescent point
// the engine's assignment, fair-share charges, and forensic verdicts
// are compared against a from-scratch NegotiateCycle over the same
// live ads. The same harness, with Hooks.DropDirtyNotification on,
// must mechanically rediscover the dropped-wake mutant.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/classad"
	"repro/internal/collector"
	"repro/internal/obs"
)

// diffWorld drives one seeded operation stream against a collector
// store, the incremental engine subscribed to it, and a shadow usage
// table that records only claim-acknowledgment charges.
type diffWorld struct {
	t     *testing.T
	rng   *rand.Rand
	clock int64
	env   *classad.Env

	store *collector.Store
	sub   *collector.Subscription
	eng   *Incremental

	// shadow receives exactly the claim-ack charges the harness issues;
	// the engine's table must never drift from it (Recompute must not
	// charge — DeferCharges is forced).
	shadow *PriorityTable

	machines map[string]*classad.Ad // live machine name -> last advertised ad
	jobs     map[string]bool        // live job names
	owners   []string
	step     int
	wakes    int

	// diffs accumulates every divergence found at a quiescent point;
	// the healthy run asserts it stays empty, the mutant run asserts
	// it does not.
	diffs []string
}

func newDiffWorld(t *testing.T, seed int64) *diffWorld {
	w := &diffWorld{
		t:        t,
		rng:      rand.New(rand.NewSource(seed)),
		clock:    1_000_000,
		machines: make(map[string]*classad.Ad),
		jobs:     make(map[string]bool),
		shadow:   NewPriorityTable(),
	}
	w.env = &classad.Env{
		Now:  func() int64 { return w.clock },
		Rand: func() float64 { return 0.25 },
	}
	w.store = collector.New(w.env)
	w.sub = w.store.Subscribe()
	// Half-life off: decay folds elapsed time multiplicatively, so two
	// tables that decay at different call points drift by an ulp even
	// when fed identical charges. The differential compares exact
	// charge accounting; decay itself is priority_test.go's business.
	w.shadow.SetHalfLife(0)
	m := New(Config{Env: w.env, Index: true, FairShare: true})
	m.Instrument(obs.New())
	w.eng = NewIncremental(m)
	w.eng.InstrumentEngine(obs.New())
	w.eng.Matchmaker().Usage().SetHalfLife(0)
	for i := 0; i < 5; i++ {
		w.owners = append(w.owners, fmt.Sprintf("user%d", i))
	}
	w.shadow.Advance(float64(w.clock))
	w.eng.Matchmaker().Usage().Advance(float64(w.clock))
	return w
}

// sortedKeys gives deterministic random selection over a map.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (w *diffWorld) genMachine(name string) *classad.Ad {
	ad := classad.NewAd()
	ad.SetString("Type", "Machine")
	ad.SetString("Name", name)
	ad.SetString("Arch", []string{"INTEL", "SPARC"}[w.rng.Intn(2)])
	ad.SetInt("Memory", int64(32<<w.rng.Intn(4)))
	ad.SetInt("Mips", int64(50+w.rng.Intn(400)))
	state := "Unclaimed"
	if w.rng.Intn(10) == 0 {
		state = "Claimed"
	}
	ad.SetString("State", state)
	if w.rng.Intn(4) == 0 {
		if err := ad.SetExprString("Constraint", fmt.Sprintf("other.Prio >= %d", w.rng.Intn(5))); err != nil {
			w.t.Fatal(err)
		}
	} else {
		ad.Set("Constraint", classad.Lit(classad.Bool(true)))
	}
	if err := ad.SetExprString("Rank", "other.Prio"); err != nil {
		w.t.Fatal(err)
	}
	return ad
}

func (w *diffWorld) genJob(name string) *classad.Ad {
	ad := classad.NewAd()
	ad.SetString("Type", "Job")
	ad.SetString("Name", name)
	ad.SetString("Owner", w.owners[w.rng.Intn(len(w.owners))])
	ad.SetInt("Prio", int64(w.rng.Intn(10)))
	arch := []string{"INTEL", "SPARC"}[w.rng.Intn(2)]
	if err := ad.SetExprString("Constraint",
		fmt.Sprintf("other.Arch == %q && other.Memory >= %d", arch, int64(32<<w.rng.Intn(4)))); err != nil {
		w.t.Fatal(err)
	}
	if w.rng.Intn(2) == 0 {
		if err := ad.SetExprString("Rank", "other.Mips"); err != nil {
			w.t.Fatal(err)
		}
	}
	return ad
}

// op applies one random pool mutation. Machine names come from a pool
// of 30 and job names from a pool of 100, so forensics never evicts
// (the report store holds 256 distinct request names).
func (w *diffWorld) op() {
	switch n := w.rng.Intn(100); {
	case n < 25: // advertise (new or changed) machine
		name := fmt.Sprintf("mach-%02d", w.rng.Intn(30))
		ad := w.genMachine(name)
		if err := w.store.Update(ad, int64(120+w.rng.Intn(600))); err != nil {
			w.t.Fatal(err)
		}
		w.machines[name] = ad
	case n < 32: // content-identical heartbeat: lifetime renewal only
		names := sortedKeys(w.machines)
		if len(names) == 0 {
			return
		}
		name := names[w.rng.Intn(len(names))]
		if err := w.store.Update(w.machines[name], int64(120+w.rng.Intn(600))); err != nil {
			w.t.Fatal(err)
		}
	case n < 40: // withdraw machine
		names := sortedKeys(w.machines)
		if len(names) == 0 {
			return
		}
		name := names[w.rng.Intn(len(names))]
		w.store.Invalidate(name)
		delete(w.machines, name)
	case n < 62: // submit (or resubmit) job
		name := fmt.Sprintf("job-%02d", w.rng.Intn(100))
		if err := w.store.Update(w.genJob(name), int64(300+w.rng.Intn(600))); err != nil {
			w.t.Fatal(err)
		}
		w.jobs[name] = true
	case n < 70: // remove job
		names := sortedKeys(w.jobs)
		if len(names) == 0 {
			return
		}
		name := names[w.rng.Intn(len(names))]
		w.store.Invalidate(name)
		delete(w.jobs, name)
	case n < 80: // time passes; ads may expire, usage decays
		w.clock += int64(1 + w.rng.Intn(120))
		w.shadow.Advance(float64(w.clock))
		w.eng.Matchmaker().Usage().Advance(float64(w.clock))
		w.store.Prune()
		for name := range w.machines {
			if _, ok := w.store.Lookup(name); !ok {
				delete(w.machines, name)
			}
		}
		for name := range w.jobs {
			if _, ok := w.store.Lookup(name); !ok {
				delete(w.jobs, name)
			}
		}
	case n < 90: // claim acknowledged: charge the owner, retire the job
		ms := w.eng.Matches()
		if len(ms) == 0 {
			return
		}
		m := ms[w.rng.Intn(len(ms))]
		own := OwnerOf(m.Request)
		w.eng.Matchmaker().Usage().Record(own, 1)
		w.shadow.Record(own, 1)
		name := adName(m.Request)
		w.store.Invalidate(name)
		delete(w.jobs, classad.Fold(name))
	default: // flip a machine's claimed state, all else unchanged
		names := sortedKeys(w.machines)
		if len(names) == 0 {
			return
		}
		name := names[w.rng.Intn(len(names))]
		ad := classad.MustParse(w.machines[name].String())
		state := "Unclaimed"
		if s, _ := ad.Eval("State").StringVal(); s == "Unclaimed" {
			state = "Claimed"
		}
		ad.SetString("State", state)
		if err := w.store.Update(ad, int64(120+w.rng.Intn(600))); err != nil {
			w.t.Fatal(err)
		}
		w.machines[name] = ad
	}
}

// quiesce drains the change feed into the engine, wakes it if (and
// only if) there is work, and runs the differential comparison.
func (w *diffWorld) quiesce() {
	w.store.Prune()
	var deltas []AdDelta
	for _, d := range w.sub.Drain() {
		switch d.Kind {
		case collector.DeltaExpired, collector.DeltaInvalidated:
			deltas = append(deltas, AdDelta{Kind: AdRemove, Name: d.Name})
		default:
			deltas = append(deltas, AdDelta{Kind: AdUpsert, Name: d.Name, Ad: d.Ad})
		}
	}
	w.eng.Notify(deltas...)
	if w.eng.NeedsWake() {
		w.eng.Recompute(fmt.Sprintf("w%04d", w.step))
		w.wakes++
	}
	w.compare()
}

func (w *diffWorld) diff(format string, args ...any) {
	w.diffs = append(w.diffs, fmt.Sprintf("step %d: ", w.step)+fmt.Sprintf(format, args...))
}

// compare checks the engine against a from-scratch negotiation cycle
// over the store's live ads: same assignment, same forensic verdicts,
// and a usage table that has accumulated only the claim-ack charges.
func (w *diffWorld) compare() {
	em := map[string]string{}
	for _, m := range w.eng.Matches() {
		em[classad.Fold(adName(m.Request))] = classad.Fold(adName(m.Offer))
	}

	ref := New(Config{Env: w.env, Index: true, FairShare: true, DeferCharges: true})
	ref.Instrument(obs.New())
	ref.SetUsage(w.eng.Matchmaker().Usage())
	var reqs, offs []*classad.Ad
	for _, ad := range w.store.All() {
		switch classifyAd(ad) {
		case adRequest:
			reqs = append(reqs, ad)
		case adOffer:
			offs = append(offs, ad)
		}
	}
	rm := map[string]string{}
	for _, m := range ref.NegotiateCycle(fmt.Sprintf("ref%04d", w.step), reqs, offs) {
		rm[classad.Fold(adName(m.Request))] = classad.Fold(adName(m.Offer))
	}

	for r, o := range rm {
		if got, ok := em[r]; !ok {
			w.diff("full cycle matches %s -> %s; engine left it unmatched", r, o)
		} else if got != o {
			w.diff("full cycle matches %s -> %s; engine matched %s", r, o, got)
		}
	}
	for r, o := range em {
		if _, ok := rm[r]; !ok {
			w.diff("engine matches %s -> %s; full cycle left it unmatched", r, o)
		}
	}

	engF, refF := w.eng.Matchmaker().Forensics(), ref.Forensics()
	for _, ad := range reqs {
		name := adName(ad)
		er, eok := engF.Lookup(name)
		rr, rok := refF.Lookup(name)
		if !rok {
			w.t.Fatalf("step %d: reference cycle recorded no report for live request %s", w.step, name)
		}
		if !eok {
			w.diff("engine has no forensic report for live request %s", name)
			continue
		}
		if er.Matched != rr.Matched || er.Offer != rr.Offer || er.Reason != rr.Reason || er.Claimed != rr.Claimed {
			w.diff("forensics for %s: engine {matched=%v offer=%q reason=%q claimed=%v}, full cycle {matched=%v offer=%q reason=%q claimed=%v}",
				name, er.Matched, er.Offer, er.Reason, er.Claimed, rr.Matched, rr.Offer, rr.Reason, rr.Claimed)
		}
	}

	for _, own := range w.owners {
		if got, want := w.eng.Matchmaker().Usage().Effective(own), w.shadow.Effective(own); got != want {
			w.diff("usage for %s: engine table %g, claim-ack shadow %g (a wake charged usage)", own, got, want)
		}
	}
}

// run drives steps operations with a quiescent-point comparison after
// every one.
func (w *diffWorld) run(steps int) {
	for i := 0; i < steps; i++ {
		w.step = i
		w.op()
		w.quiesce()
	}
}

func diffSteps(t *testing.T) int {
	if testing.Short() {
		return 150
	}
	return 600
}

// TestIncrementalDifferential is the correctness contract: after any
// delta stream, the incremental engine's assignment, charges, and
// forensic verdicts equal a from-scratch full cycle's at every
// quiescent point.
func TestIncrementalDifferential(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			w := newDiffWorld(t, seed)
			w.run(diffSteps(t))
			if len(w.diffs) > 0 {
				n := len(w.diffs)
				if n > 5 {
					w.diffs = w.diffs[:5]
				}
				t.Fatalf("%d divergence(s) from the full cycle; first few:\n%s", n, joinLines(w.diffs))
			}
			if w.wakes == 0 {
				t.Fatalf("stream produced no wakes; differential exercised nothing")
			}
		})
	}
}

// TestIncrementalDifferentialRediscoversDroppedWake seeds the
// DropDirtyNotification mutant — content changes for known offers are
// silently discarded — and demands the differential suite catch it.
func TestIncrementalDifferentialRediscoversDroppedWake(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		w := newDiffWorld(t, seed)
		w.eng.Hooks.DropDirtyNotification = true
		w.run(diffSteps(t))
		if len(w.diffs) > 0 {
			t.Logf("seed %d: mutant rediscovered after %d steps: %s", seed, w.step, w.diffs[0])
			return
		}
	}
	t.Fatalf("DropDirtyNotification mutant survived the differential suite on every seed")
}

func joinLines(lines []string) string {
	out := ""
	for _, l := range lines {
		out += "  " + l + "\n"
	}
	return out
}

// TestIncrementalWaitWake pins the needs_matchmaking discipline: Wait
// blocks until Notify queues real work, ignored self-ads do not wake
// the engine, and Close releases the waiter.
func TestIncrementalWaitWake(t *testing.T) {
	m := New(Config{})
	eng := NewIncremental(m)
	if eng.NeedsWake() {
		t.Fatalf("fresh engine claims pending work")
	}

	self := classad.NewAd()
	self.SetString("Type", "Negotiator")
	self.SetString("Name", "nego-1")
	eng.Notify(AdDelta{Kind: AdUpsert, Name: "nego-1", Ad: self})
	if eng.NeedsWake() {
		t.Fatalf("negotiator self-ad woke the engine; self-wake loop")
	}
	daemon := classad.NewAd()
	daemon.SetString("Type", "Daemon")
	daemon.SetString("Name", "ra-1-daemon")
	eng.Notify(AdDelta{Kind: AdUpsert, Name: "ra-1-daemon", Ad: daemon})
	if eng.NeedsWake() {
		t.Fatalf("daemon self-ad woke the engine")
	}
	// A removal for a name the engine never stored is noise too.
	eng.Notify(AdDelta{Kind: AdRemove, Name: "never-seen"})
	if eng.NeedsWake() {
		t.Fatalf("unknown removal woke the engine")
	}

	woke := make(chan bool, 1)
	go func() { woke <- eng.Wait() }()
	eng.Notify(AdDelta{Kind: AdUpsert, Name: "m1", Ad: machine("m1", "INTEL", 64)})
	if ok := <-woke; !ok {
		t.Fatalf("Wait returned closed on a live engine")
	}

	matches, stats := eng.Recompute("c1")
	if len(matches) != 0 || stats.Offers != 1 || stats.Requests != 0 {
		t.Fatalf("unexpected first wake: %d matches, stats %+v", len(matches), stats)
	}
	if eng.NeedsWake() {
		t.Fatalf("Recompute left work pending")
	}

	go func() { woke <- eng.Wait() }()
	eng.Close()
	if ok := <-woke; ok {
		t.Fatalf("Wait did not observe Close")
	}
}

// TestIncrementalMarkAllDirty pins the fallback: a full rebuild is
// forced even with an empty delta queue, and it repairs state a
// dropped notification corrupted.
func TestIncrementalMarkAllDirty(t *testing.T) {
	m := New(Config{})
	eng := NewIncremental(m)
	eng.Notify(
		AdDelta{Kind: AdUpsert, Name: "m1", Ad: machine("m1", "INTEL", 64)},
		AdDelta{Kind: AdUpsert, Name: "j1", Ad: namedJob("j1", "u1", "INTEL", 32)},
	)
	if ms, _ := eng.Recompute("c1"); len(ms) != 1 {
		t.Fatalf("expected 1 match, got %d", len(ms))
	}

	// Simulate a lost notification: the machine shrank below the job's
	// floor but the engine never heard.
	eng.Hooks.DropDirtyNotification = true
	eng.Notify(AdDelta{Kind: AdUpsert, Name: "m1", Ad: machine("m1", "INTEL", 16)})
	if eng.NeedsWake() {
		t.Fatalf("mutant did not drop the notification")
	}
	eng.Hooks.DropDirtyNotification = false

	eng.MarkAllDirty()
	if !eng.NeedsWake() {
		t.Fatalf("MarkAllDirty queued no work")
	}
	// The fallback rebuild re-noticed nothing (the engine's copy of m1
	// is stale) but it re-negotiates every request against its stored
	// ads — and once the store's next full refresh arrives, the repair
	// completes. Here we deliver the repair as the fallback's re-sync.
	eng.Notify(AdDelta{Kind: AdUpsert, Name: "m1", Ad: machine("m1", "INTEL", 16)})
	ms, stats := eng.Recompute("c2")
	if !stats.FullRebuild {
		t.Fatalf("fallback wake was not a full rebuild: %+v", stats)
	}
	if len(ms) != 0 {
		t.Fatalf("fallback kept a match the shrunken machine cannot satisfy: %v", ms)
	}
}

// namedJob is job() plus the Name the engine keys requests by.
func namedJob(name, owner, arch string, minMem int64) *classad.Ad {
	ad := job(owner, arch, minMem)
	ad.SetString("Name", name)
	return ad
}
