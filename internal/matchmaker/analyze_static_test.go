package matchmaker

import (
	"strings"
	"testing"

	"repro/internal/classad"
	"repro/internal/classad/analysis"
)

// TestAnalyzeStaticUnsatisfiable: the analyzer's CAD201 verdict is
// reused — the request is reported unsatisfiable even when the pool is
// empty, because no pool could ever satisfy it.
func TestAnalyzeStaticUnsatisfiable(t *testing.T) {
	req := classad.MustParse(`[ Name = "doomed"; Type = "Job";
		Constraint = other.Memory > 64 && other.Memory < 32 ]`)
	a := Analyze(req, nil, nil)
	if !a.Unsatisfiable {
		t.Fatal("statically unsatisfiable request not marked Unsatisfiable")
	}
	if len(analysis.Unsatisfiable(a.Static)) == 0 {
		t.Fatalf("no CAD201 in Static: %v", a.Static)
	}
	var attached bool
	for _, c := range a.Clauses {
		if c.StaticVerdict != "" {
			attached = true
		}
	}
	if !attached {
		t.Errorf("verdict not attached to any clause: %+v", a.Clauses)
	}
	out := a.String()
	if !strings.Contains(out, "static:") {
		t.Errorf("String() does not render the static verdict:\n%s", out)
	}
	if !strings.Contains(out, "unsatisfiable") {
		t.Errorf("String() verdict missing:\n%s", out)
	}
}

// TestAnalyzeStaticExtras: findings not tied to a clause (here a
// constant Rank) still surface in the report.
func TestAnalyzeStaticExtras(t *testing.T) {
	req := classad.MustParse(`[ Name = "flat"; Type = "Job"; Rank = 0;
		Constraint = other.Memory >= 32 ]`)
	offer := classad.MustParse(`[ Name = "m1"; Type = "Machine"; Memory = 64;
		Constraint = true ]`)
	a := Analyze(req, []*classad.Ad{offer}, nil)
	if a.Unsatisfiable {
		t.Fatal("satisfiable request marked Unsatisfiable")
	}
	found := false
	for _, d := range a.Static {
		if d.Code == analysis.CodeConstantRank {
			found = true
		}
	}
	if !found {
		t.Fatalf("constant Rank not in Static: %v", a.Static)
	}
	if out := a.String(); !strings.Contains(out, "static analysis of the request ad:") {
		t.Errorf("String() omits static extras:\n%s", out)
	}
}
