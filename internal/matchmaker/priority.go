package matchmaker

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"

	"repro/internal/store"
)

// PriorityTable implements the usage accounting behind the paper's
// "fair matching policy" (§4): the matchmaker favours customers who
// have consumed fewer resources, with past usage decaying
// exponentially so that a burst of consumption is eventually forgiven.
// This is the up-down scheme of the deployed Condor negotiator.
type PriorityTable struct {
	mu sync.Mutex
	// usage maps customer -> decayed resource-time consumed.
	usage map[string]float64
	// lastDecay maps customer -> the virtual time of the last decay
	// application.
	lastDecay map[string]float64
	// now is the table's notion of current time; advanced explicitly
	// so that simulations control it.
	now float64
	// halfLife is the decay half-life in the same units as now
	// (seconds by convention). Zero disables decay.
	halfLife float64
	// journal, when set (ledger.go), receives every mutation while the
	// table lock is held, preserving the exact order replay must
	// reproduce. It must not call back into the table.
	journal func(usageRecord)
}

// DefaultHalfLife is the usage half-life used by deployed pools: one
// day of virtual time.
const DefaultHalfLife = 86400

// NewPriorityTable returns an empty table with the default half-life.
func NewPriorityTable() *PriorityTable {
	return &PriorityTable{
		usage:     make(map[string]float64),
		lastDecay: make(map[string]float64),
		halfLife:  DefaultHalfLife,
	}
}

// SetHalfLife changes the decay half-life; zero disables decay.
func (t *PriorityTable) SetHalfLife(h float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.halfLife = h
	if t.journal != nil {
		// Journaled so replay decays with the policy that was actually
		// in force, not the default.
		t.journal(usageRecord{Op: usageOpHalfLife, Amount: h, Now: t.now})
	}
}

// Advance moves the table's clock forward to now (no-op if now is in
// the past). Decay is applied lazily per customer.
func (t *PriorityTable) Advance(now float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if now > t.now {
		t.now = now
	}
}

// decayLocked folds elapsed decay into the stored usage of customer.
func (t *PriorityTable) decayLocked(customer string) {
	if t.halfLife <= 0 {
		t.lastDecay[customer] = t.now
		return
	}
	last, ok := t.lastDecay[customer]
	if !ok {
		t.lastDecay[customer] = t.now
		return
	}
	dt := t.now - last
	if dt <= 0 {
		return
	}
	t.usage[customer] *= math.Pow(0.5, dt/t.halfLife)
	t.lastDecay[customer] = t.now
}

// Record charges amount of usage (resource-seconds, or simply matches
// granted) to customer at the current time.
func (t *PriorityTable) Record(customer string, amount float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.decayLocked(customer)
	t.usage[customer] += amount
	if t.journal != nil {
		t.journal(usageRecord{Op: usageOpRecord, Customer: customer, Amount: amount, Now: t.now})
	}
}

// Effective returns the decayed usage of customer; lower is better
// priority. Unknown customers have zero usage and therefore the best
// possible priority.
func (t *PriorityTable) Effective(customer string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.decayLocked(customer)
	return t.usage[customer]
}

// Customers returns all customers with recorded usage, sorted by
// ascending effective usage (best priority first).
func (t *PriorityTable) Customers() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.usage))
	for c := range t.usage {
		t.decayLocked(c)
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if t.usage[out[i]] != t.usage[out[j]] {
			return t.usage[out[i]] < t.usage[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// Reset forgets all usage, as a pool administrator might after a
// policy change.
func (t *PriorityTable) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.usage = make(map[string]float64)
	t.lastDecay = make(map[string]float64)
	if t.journal != nil {
		t.journal(usageRecord{Op: usageOpReset, Now: t.now})
	}
}

// setJournal installs the mutation hook (ledger.go); nil detaches it.
func (t *PriorityTable) setJournal(fn func(usageRecord)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.journal = fn
}

// adopt replaces the receiver's contents with src's, which must be
// private to the caller (ledger Install: callers keep their pointer to
// the long-lived table while its state is swapped wholesale).
func (t *PriorityTable) adopt(src *PriorityTable) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.usage = src.usage
	t.lastDecay = src.lastDecay
	t.now = src.now
	t.halfLife = src.halfLife
}

// tableState is the persisted form of a PriorityTable. Matches are
// introductions and deliberately not durable (the stateless-matchmaker
// property); usage history, by contrast, is advisory accounting worth
// carrying across pool-manager restarts so that fairness has memory.
type tableState struct {
	Usage    map[string]float64 `json:"usage"`
	Now      float64            `json:"now"`
	HalfLife float64            `json:"half_life"`
}

// MarshalJSON serializes the table with decay folded in, so the saved
// usage figures are current as of Now.
func (t *PriorityTable) MarshalJSON() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	state := tableState{
		Usage:    make(map[string]float64, len(t.usage)),
		Now:      t.now,
		HalfLife: t.halfLife,
	}
	for c := range t.usage {
		t.decayLocked(c)
		state.Usage[c] = t.usage[c]
	}
	return json.Marshal(state)
}

// UnmarshalJSON restores a saved table, replacing the receiver's
// contents.
func (t *PriorityTable) UnmarshalJSON(data []byte) error {
	var state tableState
	if err := json.Unmarshal(data, &state); err != nil {
		return fmt.Errorf("matchmaker: bad priority table: %w", err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.usage = make(map[string]float64, len(state.Usage))
	t.lastDecay = make(map[string]float64, len(state.Usage))
	for c, u := range state.Usage {
		t.usage[c] = u
		t.lastDecay[c] = state.Now
	}
	t.now = state.Now
	if state.HalfLife != 0 || len(state.Usage) > 0 {
		t.halfLife = state.HalfLife
	}
	return nil
}

// Save writes the table to path atomically (write-fsync-rename, via
// the store package's helper, so the table survives a power cut as
// well as a process crash).
func (t *PriorityTable) Save(path string) error {
	data, err := t.MarshalJSON()
	if err != nil {
		return err
	}
	return store.AtomicWriteFile(nil, path, data)
}

// Load replaces the table's contents from path. A missing file leaves
// the table empty and is not an error: a brand-new pool simply has no
// history yet.
func (t *PriorityTable) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	return t.UnmarshalJSON(data)
}
