package matchmaker

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/classad"
)

// TestBetterComparator pins the selection rule both Negotiate's scan
// and BestOffer defer to — one source of truth for tie-breaking.
func TestBetterComparator(t *testing.T) {
	cases := []struct {
		name string
		a, b candidate
		want bool
	}{
		{"higher request rank wins", candidate{5, 2, 0, false}, candidate{1, 1, 9, false}, true},
		{"lower request rank loses", candidate{1, 1, 9, false}, candidate{5, 2, 0, false}, false},
		{"request tie, higher offer rank wins", candidate{5, 1, 3, false}, candidate{1, 1, 2, false}, true},
		{"request tie, lower offer rank loses", candidate{1, 1, 2, false}, candidate{5, 1, 3, false}, false},
		{"full tie, earlier offer wins", candidate{1, 1, 1, false}, candidate{5, 1, 1, false}, true},
		{"full tie, later offer loses", candidate{5, 1, 1, false}, candidate{1, 1, 1, false}, false},
		{"identical candidate is not better", candidate{3, 1, 1, false}, candidate{3, 1, 1, false}, false},
		// ROADMAP item 1: at equal request rank an unclaimed offer beats
		// a claimed one, even a later or higher-offer-ranked one …
		{"request tie, unclaimed beats claimed", candidate{5, 1, 0, false}, candidate{1, 1, 9, true}, true},
		{"request tie, claimed loses to unclaimed", candidate{1, 1, 9, true}, candidate{5, 1, 0, false}, false},
		// … but a strictly higher request rank still selects the claimed
		// offer — that is the preemption case the claim protocol admits.
		{"higher request rank beats unclaimed", candidate{5, 2, 0, true}, candidate{1, 1, 9, false}, true},
		{"claimed full tie, earlier offer wins", candidate{1, 1, 1, true}, candidate{5, 1, 1, true}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := better(tc.a, tc.b); got != tc.want {
				t.Errorf("better(%+v, %+v) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
		})
	}
}

// TestBestOfferTieBreaks pins BestOffer's externally observable
// tie-break behaviour against ads: a later offer wins only on a
// strictly better rank pair; full ties keep the earliest offer.
func TestBestOfferTieBreaks(t *testing.T) {
	req := mustAd(t, `[ Constraint = other.Memory >= 1; Rank = other.Mem ]`)
	offer := func(mem, reqRank, offRank int) *classad.Ad {
		return mustAd(t, fmt.Sprintf(
			`[ Memory = %d; Mem = %d; Rank = %d ]`, mem, reqRank, offRank))
	}
	cases := []struct {
		name   string
		offers []*classad.Ad
		want   int
	}{
		{"higher request rank wins over earlier offer",
			[]*classad.Ad{offer(1, 1, 0), offer(1, 2, 0)}, 1},
		{"request-rank tie broken by offer rank",
			[]*classad.Ad{offer(1, 1, 1), offer(1, 1, 2), offer(1, 1, 0)}, 1},
		{"full tie keeps the earliest offer",
			[]*classad.Ad{offer(1, 1, 1), offer(1, 1, 1), offer(1, 1, 1)}, 0},
		{"later strictly-better offer rank wins",
			[]*classad.Ad{offer(1, 1, 1), offer(1, 1, 1), offer(1, 1, 5)}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, _ := BestOffer(req, tc.offers, classad.FixedEnv(0, 1))
			if got != tc.want {
				t.Errorf("BestOffer = %d, want %d", got, tc.want)
			}
			// Negotiate with this single request must agree: the two
			// entry points share one comparator.
			matches := New(Config{Env: classad.FixedEnv(0, 1)}).
				Negotiate([]*classad.Ad{req}, tc.offers)
			if len(matches) != 1 || matches[0].Offer != tc.offers[tc.want] {
				t.Errorf("Negotiate disagrees with BestOffer")
			}
		})
	}
}

// TestParallelScanMatchesSequential: the sharded scan returns exactly
// the sequential scan's pick across worker counts, including ones
// that do not divide the candidate count.
func TestParallelScanMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	offers := randomPool(r, 300) // above minParallelScan
	requests := randomRequests(r, 30)
	env := classad.FixedEnv(0, 11)
	available := make([]bool, len(offers))
	for i := range available {
		available[i] = true
	}
	for _, req := range requests {
		wantBest, wantReq, wantOff, _, wantScanned := scanRange(
			req, offers, nil, available, Config{Env: env}, 0, len(offers))
		for _, workers := range []int{2, 3, 7, 16} {
			cfg := Config{Env: env, Parallel: workers}
			best, reqRank, offRank, scanned, used := scanOffers(req, offers, nil, available, cfg)
			if used < 2 {
				t.Fatalf("workers=%d: parallel scan did not shard", workers)
			}
			if best != wantBest || reqRank != wantReq || offRank != wantOff {
				t.Errorf("workers=%d: pick (%d,%g,%g) != sequential (%d,%g,%g)",
					workers, best, reqRank, offRank, wantBest, wantReq, wantOff)
			}
			if scanned != wantScanned {
				t.Errorf("workers=%d: scanned %d != sequential %d", workers, scanned, wantScanned)
			}
		}
	}
}

// TestParallelFirstFitLowestIndex: first-fit sharding still returns
// the globally lowest compatible offer index.
func TestParallelFirstFitLowestIndex(t *testing.T) {
	env := classad.FixedEnv(0, 1)
	offers := make([]*classad.Ad, 200)
	for i := range offers {
		offers[i] = machine(fmt.Sprintf("m%d", i), "INTEL", 64)
	}
	req := job("u", "INTEL", 32)
	available := make([]bool, len(offers))
	for i := range available {
		available[i] = true
	}
	// Knock out a prefix so the answer is not trivially zero.
	for i := 0; i < 37; i++ {
		available[i] = false
	}
	best, _, _, _, used := scanOffers(req, offers, nil, available,
		Config{Env: env, FirstFit: true, Parallel: 8})
	if used < 2 {
		t.Fatal("scan did not shard")
	}
	if best != 37 {
		t.Errorf("first-fit pick = %d, want 37", best)
	}
}

// TestScanWorkersResolution pins the Parallel knob semantics.
func TestScanWorkersResolution(t *testing.T) {
	cases := []struct {
		parallel, candidates, want int
	}{
		{0, 1000, 1},             // default: sequential
		{1, 1000, 1},             // explicit sequential
		{4, 1000, 4},             // forced worker count
		{4, 10, 1},               // too few candidates to shard
		{8, minParallelScan, 8},  // at the threshold
		{200, 100, 100},          // capped at candidate count
	}
	for _, tc := range cases {
		if got := scanWorkers(tc.parallel, tc.candidates); got != tc.want {
			t.Errorf("scanWorkers(%d, %d) = %d, want %d",
				tc.parallel, tc.candidates, got, tc.want)
		}
	}
	if got := scanWorkers(ParallelAuto, 1000); got < 1 {
		t.Errorf("scanWorkers(auto) = %d, want >= 1", got)
	}
}
