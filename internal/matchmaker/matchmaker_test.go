package matchmaker

import (
	"fmt"
	"testing"

	"repro/internal/classad"
)

// machine builds a provider ad with the given name and capability
// attributes.
func machine(name, arch string, memory int64) *classad.Ad {
	ad := classad.NewAd()
	ad.SetString("Type", "Machine")
	ad.SetString("Name", name)
	ad.SetString("Arch", arch)
	ad.SetInt("Memory", memory)
	ad.Set("Constraint", classad.Lit(classad.Bool(true)))
	return ad
}

// job builds a request ad for owner with an arch requirement and a
// memory floor.
func job(owner, arch string, minMem int64) *classad.Ad {
	ad := classad.NewAd()
	ad.SetString("Type", "Job")
	ad.SetString("Owner", owner)
	if err := ad.SetExprString("Constraint",
		fmt.Sprintf(`other.Arch == %q && other.Memory >= %d`, arch, minMem)); err != nil {
		panic(err)
	}
	return ad
}

func TestNegotiateBasicPairing(t *testing.T) {
	m := New(Config{})
	offers := []*classad.Ad{
		machine("a", "INTEL", 64),
		machine("b", "SPARC", 128),
	}
	requests := []*classad.Ad{
		job("u1", "INTEL", 32),
		job("u2", "SPARC", 64),
		job("u3", "ALPHA", 1), // no such machine
	}
	matches := m.Negotiate(requests, offers)
	if len(matches) != 2 {
		t.Fatalf("got %d matches, want 2", len(matches))
	}
	for _, match := range matches {
		res := classad.Match(match.Request, match.Offer)
		if !res.Matched {
			t.Errorf("negotiator produced an incompatible pair: %s / %s",
				match.Request, match.Offer)
		}
	}
}

func TestNegotiateEachOfferUsedOnce(t *testing.T) {
	m := New(Config{})
	offers := []*classad.Ad{machine("only", "INTEL", 64)}
	requests := []*classad.Ad{
		job("u1", "INTEL", 1),
		job("u2", "INTEL", 1),
	}
	matches := m.Negotiate(requests, offers)
	if len(matches) != 1 {
		t.Fatalf("one offer must serve one request per cycle; got %d matches", len(matches))
	}
}

func TestNegotiateRankSelection(t *testing.T) {
	// The request ranks big-memory machines higher; the matchmaker
	// must pick the highest-rank compatible offer (paper §3.2).
	small := machine("small", "INTEL", 32)
	big := machine("big", "INTEL", 256)
	mid := machine("mid", "INTEL", 128)
	req := job("u", "INTEL", 1)
	if err := req.SetExprString("Rank", "other.Memory"); err != nil {
		t.Fatal(err)
	}
	m := New(Config{})
	matches := m.Negotiate([]*classad.Ad{req}, []*classad.Ad{small, big, mid})
	if len(matches) != 1 {
		t.Fatalf("got %d matches", len(matches))
	}
	if name, _ := matches[0].Offer.Eval("Name").StringVal(); name != "big" {
		t.Errorf("picked %q, want the highest-ranked offer \"big\"", name)
	}
	if matches[0].RequestRank != 256 {
		t.Errorf("RequestRank = %v, want 256", matches[0].RequestRank)
	}
}

func TestNegotiateProviderRankBreaksTies(t *testing.T) {
	// Two offers the request ranks equally; the provider that ranks
	// the request higher wins the introduction (paper §3.2:
	// "breaking ties according to the provider's Rank value").
	eager := machine("eager", "INTEL", 64)
	if err := eager.SetExprString("Rank", "10"); err != nil {
		t.Fatal(err)
	}
	indifferent := machine("indifferent", "INTEL", 64)
	req := job("u", "INTEL", 1)
	m := New(Config{})
	matches := m.Negotiate([]*classad.Ad{req}, []*classad.Ad{indifferent, eager})
	if len(matches) != 1 {
		t.Fatalf("got %d matches", len(matches))
	}
	if name, _ := matches[0].Offer.Eval("Name").StringVal(); name != "eager" {
		t.Errorf("picked %q, want provider-rank tie-break winner \"eager\"", name)
	}
}

func TestNegotiateBilateral(t *testing.T) {
	// Providers constrain customers too — the paper's central
	// differentiator from conventional schedulers (§3).
	fussy := machine("fussy", "INTEL", 64)
	if err := fussy.SetExprString("Constraint", `other.Owner == "vip"`); err != nil {
		t.Fatal(err)
	}
	m := New(Config{})
	pleb := job("pleb", "INTEL", 1)
	vip := job("vip", "INTEL", 1)
	if got := m.Negotiate([]*classad.Ad{pleb}, []*classad.Ad{fussy}); len(got) != 0 {
		t.Errorf("provider constraint ignored: %d matches", len(got))
	}
	if got := m.Negotiate([]*classad.Ad{vip}, []*classad.Ad{fussy}); len(got) != 1 {
		t.Errorf("vip should match, got %d matches", len(got))
	}
}

func TestNegotiateFigureAds(t *testing.T) {
	m := New(Config{})
	matches := m.Negotiate(
		[]*classad.Ad{classad.Figure2()},
		[]*classad.Ad{classad.Figure1()},
	)
	if len(matches) != 1 {
		t.Fatalf("the paper's own figures must match; got %d", len(matches))
	}
	if matches[0].OfferRank != 10 {
		t.Errorf("machine ranks raman's job %v, want 10", matches[0].OfferRank)
	}
}

func TestNegotiateFirstFitAblation(t *testing.T) {
	// First-fit takes the first compatible offer in pool order even
	// when a higher-ranked one exists.
	small := machine("small", "INTEL", 32)
	big := machine("big", "INTEL", 256)
	req := job("u", "INTEL", 1)
	if err := req.SetExprString("Rank", "other.Memory"); err != nil {
		t.Fatal(err)
	}
	m := New(Config{FirstFit: true})
	matches := m.Negotiate([]*classad.Ad{req}, []*classad.Ad{small, big})
	if len(matches) != 1 {
		t.Fatalf("got %d matches", len(matches))
	}
	if name, _ := matches[0].Offer.Eval("Name").StringVal(); name != "small" {
		t.Errorf("first-fit picked %q, want \"small\"", name)
	}
}

func TestNegotiateEmptyInputs(t *testing.T) {
	m := New(Config{})
	if got := m.Negotiate(nil, nil); len(got) != 0 {
		t.Errorf("empty negotiate produced %d matches", len(got))
	}
	if got := m.Negotiate([]*classad.Ad{job("u", "INTEL", 1)}, nil); len(got) != 0 {
		t.Errorf("no offers but %d matches", len(got))
	}
	if got := m.Negotiate(nil, []*classad.Ad{machine("m", "INTEL", 64)}); len(got) != 0 {
		t.Errorf("no requests but %d matches", len(got))
	}
}

func TestNegotiateStateless(t *testing.T) {
	// Consecutive cycles with the same inputs give the same result;
	// nothing about a previous cycle's matches is remembered
	// (fair-share accounting aside, which is off here).
	m := New(Config{})
	offers := []*classad.Ad{machine("a", "INTEL", 64), machine("b", "INTEL", 64)}
	requests := []*classad.Ad{job("u1", "INTEL", 1), job("u2", "INTEL", 1)}
	first := m.Negotiate(requests, offers)
	second := m.Negotiate(requests, offers)
	if len(first) != len(second) {
		t.Fatalf("cycle results differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i].Offer != second[i].Offer || first[i].Request != second[i].Request {
			t.Errorf("match %d differs between identical cycles", i)
		}
	}
	// A brand-new matchmaker (simulating restart) agrees too — the
	// stateless-recovery property of E6 at the algorithm level.
	fresh := New(Config{}).Negotiate(requests, offers)
	if len(fresh) != len(first) {
		t.Errorf("restarted matchmaker found %d matches, want %d", len(fresh), len(first))
	}
}

func TestBestOffer(t *testing.T) {
	offers := []*classad.Ad{
		machine("a", "SPARC", 64),
		machine("b", "INTEL", 128),
		machine("c", "INTEL", 256),
	}
	req := job("u", "INTEL", 1)
	if err := req.SetExprString("Rank", "other.Memory"); err != nil {
		t.Fatal(err)
	}
	idx, match := BestOffer(req, offers, nil)
	if idx != 2 {
		t.Errorf("BestOffer = %d, want 2", idx)
	}
	if match.RequestRank != 256 {
		t.Errorf("rank = %v, want 256", match.RequestRank)
	}
	if idx, _ := BestOffer(job("u", "ALPHA", 1), offers, nil); idx != -1 {
		t.Errorf("impossible request matched offer %d", idx)
	}
}

func TestNegotiateDeterministicOrder(t *testing.T) {
	// Without fair share, requests are served in submission order, so
	// the first request gets the contested offer.
	m := New(Config{})
	offers := []*classad.Ad{machine("only", "INTEL", 64)}
	r1, r2 := job("first", "INTEL", 1), job("second", "INTEL", 1)
	matches := m.Negotiate([]*classad.Ad{r1, r2}, offers)
	if len(matches) != 1 || matches[0].Request != r1 {
		t.Errorf("submission order not respected")
	}
}
