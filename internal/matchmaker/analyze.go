package matchmaker

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/classad"
	"repro/internal/classad/analysis"
)

// Constraint diagnostics (paper §5, future work): "The complexity of
// constraints imposed by resources and customers may hinder the
// diagnostic capability of administrators and customers who may wonder
// why certain requests are unable to find resources with particular
// characteristics. To alleviate this problem, we are researching
// methods for identifying constraints which can never be satisfied by
// the pool."
//
// Analyze tests each top-level conjunct of a request's constraint
// against every offer in the pool and reports, per clause, how many
// offers satisfy it — so a clause satisfied by zero offers is
// immediately visible as the culprit. It also reports the offers that
// the request would accept but that reject the request, separating
// "the pool can't serve you" from "the pool won't serve you".

// ClauseReport describes one conjunct of the request's constraint.
type ClauseReport struct {
	// Expr is the conjunct in source form.
	Expr string
	// Residual is the conjunct after partial evaluation against the
	// request's own attributes — the requirement as a provider
	// actually experiences it (e.g. "other.Memory >= self.Memory"
	// becomes "other.Memory >= 31"). Empty when identical to Expr.
	Residual string
	// Satisfied counts offers for which the conjunct is true.
	Satisfied int
	// Undefined counts offers for which it is undefined (usually a
	// missing attribute — a schema mismatch worth flagging).
	Undefined int
	// Errored counts offers for which evaluation was an error.
	Errored int
	// Suggestion, when non-empty, tells the user what the pool
	// actually offers for an unsatisfied numeric bound — e.g.
	// "pool's Memory ranges 32..256" against a clause demanding
	// other.Memory >= 512. The paper's §5 diagnostics goal is not
	// just flagging the impossible clause but "discovering hidden
	// characteristics of a pool".
	Suggestion string
	// StaticVerdict is the static analyzer's proof that this clause
	// can never be true — independent of the pool's current contents
	// (e.g. an interval conflict like other.Memory > 64 &&
	// other.Memory < 32). Empty when the clause is only dynamically
	// unsatisfied.
	StaticVerdict string
	// StaticNever counts offers against which the bilateral analyzer
	// PROVES the clause can never be true — not merely false this
	// cycle, but false under every clock and random seed (package
	// analysis, ProvablyNeverTrue). When StaticNever equals the pool
	// size, no re-advertisement of current members can ever satisfy
	// the clause; the pool's population itself must change.
	StaticNever int
}

// Analysis is the report produced by Analyze.
type Analysis struct {
	// Owner and Name identify the analyzed request.
	Owner, Name string
	// TotalOffers is the pool size examined.
	TotalOffers int
	// Clauses reports each top-level conjunct separately, in source
	// order.
	Clauses []ClauseReport
	// RequestOK counts offers satisfying the request's whole
	// constraint.
	RequestOK int
	// OfferOK counts offers whose own constraint accepts the
	// request.
	OfferOK int
	// Compatible counts offers passing both directions — the number
	// of genuine candidates.
	Compatible int
	// Unsatisfiable is true when some single clause is satisfied by
	// no offer — or when the static analyzer proves a clause can
	// never be true regardless of the pool: no state change elsewhere
	// in the pool can produce a match until the request changes.
	Unsatisfiable bool
	// Static holds the static analyzer's findings for the request ad
	// itself (package classad/analysis): the "can never match"
	// verdicts reused here instead of being recomputed ad hoc, plus
	// any type or reference problems worth surfacing alongside the
	// dynamic report.
	Static []analysis.Diagnostic
	// Index holds the index-friendliness findings (CAD401/CAD402):
	// whether the two-stage engine can prune for this request or must
	// scan the full offer set every cycle.
	Index []analysis.Diagnostic
}

// Analyze explains the match prospects of a request against a pool of
// offers.
func Analyze(req *classad.Ad, offers []*classad.Ad, env *classad.Env) *Analysis {
	a := &Analysis{TotalOffers: len(offers)}
	if s, ok := req.Eval(classad.AttrOwner).StringVal(); ok {
		a.Owner = s
	}
	if s, ok := req.Eval(classad.AttrName).StringVal(); ok {
		a.Name = s
	}

	var conjuncts []classad.Expr
	if ce, ok := classad.ConstraintOf(req); ok {
		conjuncts = classad.SplitConjuncts(ce)
	}
	a.Clauses = make([]ClauseReport, len(conjuncts))
	for i, c := range conjuncts {
		a.Clauses[i].Expr = c.String()
		if res := classad.PartialEval(c, req, env).String(); res != a.Clauses[i].Expr {
			a.Clauses[i].Residual = res
		}
	}

	for _, off := range offers {
		reqOK := classad.EvalConstraint(req, off, env)
		offOK := classad.EvalConstraint(off, req, env)
		if reqOK {
			a.RequestOK++
		}
		if offOK {
			a.OfferOK++
		}
		if reqOK && offOK {
			a.Compatible++
		}
		for i, c := range conjuncts {
			v := classad.EvalExprAgainst(c, req, off, env)
			switch {
			case v.IsTrue():
				a.Clauses[i].Satisfied++
			case v.IsUndefined():
				a.Clauses[i].Undefined++
			case v.IsError():
				a.Clauses[i].Errored++
			}
			if !v.IsTrue() && analysis.ProvablyNeverTrue(c, req, off, env) {
				a.Clauses[i].StaticNever++
			}
		}
	}
	for i, c := range a.Clauses {
		if c.Satisfied == 0 && a.TotalOffers > 0 {
			a.Unsatisfiable = true
			a.Clauses[i].Suggestion = suggestBound(conjuncts[i], req, offers, env)
		}
	}

	// Static pass: the analyzer's CAD201 verdicts prove a clause can
	// never be true no matter what the pool advertises; attach each to
	// the clause it names and mark the request unsatisfiable.
	a.Static = analysis.AnalyzeAd(req, &analysis.Options{Env: env})
	a.Index = LintIndex(req, env)
	for _, d := range a.Index {
		if d.Severity >= analysis.Error {
			a.Unsatisfiable = true
		}
	}
	for _, d := range analysis.Unsatisfiable(a.Static) {
		a.Unsatisfiable = true
		for i := range a.Clauses {
			shown := a.Clauses[i].Residual
			if shown == "" {
				shown = a.Clauses[i].Expr
			}
			if strings.Contains(d.Message, fmt.Sprintf("%q", shown)) ||
				strings.Contains(d.Message, fmt.Sprintf("%q", a.Clauses[i].Expr)) {
				a.Clauses[i].StaticVerdict = d.Message
			}
		}
	}
	return a
}

// suggestBound inspects an unsatisfied clause: if (after partial
// evaluation against the request) it has the shape
//
//	other.X <cmp> <literal>      or      <literal> <cmp> other.X
//
// it reports the actual range of X across the pool, and the set of
// values when X is a string attribute with few distinct values.
func suggestBound(clause classad.Expr, req *classad.Ad, offers []*classad.Ad, env *classad.Env) string {
	residual := classad.PartialEval(clause, req, env)
	attr, ok := comparedOtherAttr(residual)
	if !ok {
		return ""
	}
	var lo, hi float64
	var haveNum bool
	strValues := map[string]bool{}
	defined := 0
	for _, off := range offers {
		v := off.EvalEnv(attr, env)
		if n, isNum := v.NumberVal(); isNum {
			if !haveNum || n < lo {
				lo = n
			}
			if !haveNum || n > hi {
				hi = n
			}
			haveNum = true
			defined++
		} else if s, isStr := v.StringVal(); isStr {
			strValues[s] = true
			defined++
		}
	}
	switch {
	case defined == 0:
		return fmt.Sprintf("no offer defines %s at all", attr)
	case haveNum:
		return fmt.Sprintf("pool's %s ranges %g..%g", attr, lo, hi)
	case len(strValues) > 0 && len(strValues) <= 8:
		vals := make([]string, 0, len(strValues))
		for s := range strValues {
			vals = append(vals, fmt.Sprintf("%q", s))
		}
		sort.Strings(vals)
		return fmt.Sprintf("pool offers %s in {%s}", attr, strings.Join(vals, ", "))
	default:
		return ""
	}
}

// comparedOtherAttr recognizes a comparison with an other-scoped
// attribute reference on one side and a literal on the other, and
// returns that attribute's name. It walks the parsed AST through the
// classad.Inspect API (the former implementation re-parsed the
// unparsed source text).
func comparedOtherAttr(e classad.Expr) (string, bool) {
	info := classad.Inspect(e)
	if info.Kind != classad.KindBinary {
		return "", false
	}
	switch info.Op {
	case classad.OpLt, classad.OpLe, classad.OpGt, classad.OpGe,
		classad.OpEq, classad.OpNe:
	default:
		return "", false
	}
	l := classad.Inspect(info.Args[0])
	r := classad.Inspect(info.Args[1])
	if l.Kind == classad.KindAttrRef && l.Scope == classad.ScopeOther && r.Kind == classad.KindLiteral {
		return l.Name, true
	}
	if r.Kind == classad.KindAttrRef && r.Scope == classad.ScopeOther && l.Kind == classad.KindLiteral {
		return r.Name, true
	}
	return "", false
}

// String renders the analysis in the style of a queue-analysis tool:
// one line per clause with its pool coverage, then the bilateral
// summary.
func (a *Analysis) String() string {
	var b strings.Builder
	who := a.Owner
	if who == "" {
		who = "(anonymous)"
	}
	fmt.Fprintf(&b, "Analysis for request of %s against %d offer(s):\n", who, a.TotalOffers)
	if len(a.Clauses) == 0 {
		b.WriteString("  request has no constraint: every offer is acceptable to it\n")
	}
	for i, c := range a.Clauses {
		marker := " "
		if c.Satisfied == 0 || c.StaticVerdict != "" {
			marker = "!"
		}
		shown := c.Expr
		if c.Residual != "" {
			shown = c.Residual
		}
		fmt.Fprintf(&b, " %s clause %d: %-50s matched %d/%d", marker, i+1,
			truncate(shown, 50), c.Satisfied, a.TotalOffers)
		if c.Undefined > 0 {
			fmt.Fprintf(&b, " (undefined on %d)", c.Undefined)
		}
		if c.Errored > 0 {
			fmt.Fprintf(&b, " (error on %d)", c.Errored)
		}
		b.WriteByte('\n')
		if c.StaticVerdict != "" {
			fmt.Fprintf(&b, "             static: %s\n", c.StaticVerdict)
		}
		if c.StaticNever > 0 {
			fmt.Fprintf(&b, "             static: provably never true against %d/%d offer(s) — those failures hold under every clock and random seed\n",
				c.StaticNever, a.TotalOffers)
		}
		if c.Suggestion != "" {
			fmt.Fprintf(&b, "             hint: %s\n", c.Suggestion)
		}
	}
	if extra := a.staticExtras(); len(extra) > 0 {
		b.WriteString("  static analysis of the request ad:\n")
		for _, d := range extra {
			fmt.Fprintf(&b, "    %s\n", d)
		}
	}
	for _, d := range a.Index {
		fmt.Fprintf(&b, "  index: %s\n", d)
	}
	fmt.Fprintf(&b, "  request accepts %d offer(s); %d offer(s) accept the request; %d compatible\n",
		a.RequestOK, a.OfferOK, a.Compatible)
	switch {
	case a.Unsatisfiable:
		b.WriteString("  VERDICT: unsatisfiable — the flagged clause(s) match nothing in this pool\n")
	case a.Compatible == 0 && a.RequestOK > 0:
		b.WriteString("  VERDICT: rejected — offers exist that suit the request, but their owner policies refuse it\n")
	case a.Compatible == 0:
		b.WriteString("  VERDICT: no match in the current pool state\n")
	default:
		fmt.Fprintf(&b, "  VERDICT: matchable (%d candidate(s))\n", a.Compatible)
	}
	return b.String()
}

// staticExtras returns the static findings not already attached to a
// clause line above.
func (a *Analysis) staticExtras() []analysis.Diagnostic {
	attached := map[string]bool{}
	for _, c := range a.Clauses {
		if c.StaticVerdict != "" {
			attached[c.StaticVerdict] = true
		}
	}
	var out []analysis.Diagnostic
	for _, d := range a.Static {
		if !attached[d.Message] {
			out = append(out, d)
		}
	}
	return out
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
