package matchmaker

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/classad"
)

// mustAd parses src or fails the test.
func mustAd(t testing.TB, src string) *classad.Ad {
	t.Helper()
	ad, err := classad.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return ad
}

func TestIndexableTestsExtraction(t *testing.T) {
	env := classad.FixedEnv(0, 1)
	cases := []struct {
		name       string
		req        string
		wantCount  int
		wantUnsat  bool
		wantAttrs  []string
	}{
		{"equality and bound", `[ Constraint = other.Arch == "INTEL" && other.Memory >= 32 ]`,
			2, false, []string{"arch", "memory"}},
		{"self fold", `[ Memory = 31; Constraint = other.Memory >= self.Memory ]`,
			1, false, []string{"memory"}},
		{"unqualified unbound is the offer's", `[ Constraint = Arch == "SPARC" ]`,
			1, false, []string{"arch"}},
		{"unqualified bound to the request is not", `[ Arch = "SPARC"; Kflops = 10; Constraint = Arch == "SPARC" && other.Mips >= Kflops ]`,
			1, false, []string{"mips"}},
		{"literal on the left flips", `[ Constraint = 64 <= other.Memory ]`,
			1, false, []string{"memory"}},
		{"disjunction is not indexable", `[ Constraint = other.Memory >= 64 || other.Mips >= 10 ]`,
			0, false, nil},
		{"inequality operator is not indexable", `[ Constraint = other.Owner != "u1" ]`,
			0, false, nil},
		{"requirements spelling", `[ Requirements = other.Memory > 16 ]`,
			1, false, []string{"memory"}},
		{"undefined comparison is unsatisfiable", `[ Constraint = other.Memory >= undefined ]`,
			0, true, nil},
		{"no constraint", `[ Owner = "u" ]`, 0, false, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tests, unsat := IndexableTests(mustAd(t, tc.req), env)
			if unsat != tc.wantUnsat {
				t.Fatalf("unsat = %v, want %v", unsat, tc.wantUnsat)
			}
			if len(tests) != tc.wantCount {
				t.Fatalf("got %d tests %+v, want %d", len(tests), tests, tc.wantCount)
			}
			for i, attr := range tc.wantAttrs {
				if tests[i].attr != attr {
					t.Errorf("test %d attr = %q, want %q", i, tests[i].attr, attr)
				}
			}
		})
	}
}

// TestIndexCandidatesSoundAndExact: over a deliberately tricky offer
// set, the index's candidate list contains every offer the full
// bilateral match accepts (soundness), and every pruned offer really
// fails the request's constraint.
func TestIndexCandidatesSoundAndExact(t *testing.T) {
	env := classad.FixedEnv(0, 1)
	offers := []*classad.Ad{
		mustAd(t, `[ Name = "m0"; Arch = "INTEL"; Memory = 64 ]`),
		mustAd(t, `[ Name = "m1"; Arch = "intel"; Memory = 16 ]`),   // case-folded equality
		mustAd(t, `[ Name = "m2"; Arch = "SPARC"; Memory = 128 ]`),
		mustAd(t, `[ Name = "m3"; Memory = 64 ]`),                   // missing Arch
		mustAd(t, `[ Name = "m4"; Arch = "INTEL" ]`),                // missing Memory
		mustAd(t, `[ Name = "m5"; Arch = "INTEL"; Memory = 2*40 ]`), // expression value
		mustAd(t, `[ Name = "m6"; Arch = 7; Memory = 64 ]`),         // wrong-typed Arch
		mustAd(t, `[ Name = "m7"; Arch = "INTEL"; Memory = 64.0 ]`), // real vs int
		mustAd(t, `[ Name = "m8"; Arch = "INTEL"; Memory = undefined ]`),
	}
	ix := NewOfferIndex(offers)
	requests := []string{
		`[ Constraint = other.Arch == "INTEL" && other.Memory >= 32 ]`,
		`[ Constraint = other.Memory == 64 ]`,
		`[ Constraint = other.Memory < 32 ]`,
		`[ Constraint = other.Memory <= 64 && other.Memory >= 64 ]`,
		`[ Constraint = other.Arch == "ALPHA" ]`,
		`[ Constraint = other.NoSuchAttr >= 5 ]`,
	}
	for _, src := range requests {
		req := mustAd(t, src)
		cand, indexed := ix.Candidates(req, env)
		if !indexed {
			t.Fatalf("%s: expected an indexed constraint", src)
		}
		inCand := make(map[int]bool, len(cand))
		for _, oi := range cand {
			inCand[oi] = true
		}
		for oi, off := range offers {
			// The index prunes on the request's constraint only;
			// soundness is about one-way pruning, so check that side.
			ok := classad.EvalConstraint(req, off, env)
			if ok && !inCand[oi] {
				t.Errorf("%s: offer %d satisfies the constraint but was pruned", src, oi)
			}
		}
	}
}

// TestIndexCandidatesPruneEverything: constraints no offer satisfies
// produce an empty (non-nil) candidate list.
func TestIndexCandidatesPruneEverything(t *testing.T) {
	env := classad.FixedEnv(0, 1)
	ix := NewOfferIndex([]*classad.Ad{
		mustAd(t, `[ Arch = "INTEL"; Memory = 64 ]`),
	})
	for _, src := range []string{
		`[ Constraint = other.Arch == "VAX" ]`,
		`[ Constraint = other.Memory > 64 ]`,
		`[ Constraint = other.Mips >= 1 ]`, // attribute absent pool-wide
		`[ Constraint = other.Memory >= undefined ]`,
	} {
		cand, indexed := ix.Candidates(mustAd(t, src), env)
		if !indexed {
			t.Fatalf("%s: expected indexed", src)
		}
		if len(cand) != 0 {
			t.Errorf("%s: got candidates %v, want none", src, cand)
		}
	}
}

// TestIndexAddRemove: incremental maintenance keeps candidate lists
// consistent with a rebuilt index.
func TestIndexAddRemove(t *testing.T) {
	env := classad.FixedEnv(0, 1)
	req := mustAd(t, `[ Constraint = other.Memory >= 32 ]`)
	ix := NewOfferIndex(nil)
	var slots []int
	for i := 0; i < 10; i++ {
		slots = append(slots, ix.Add(mustAd(t, fmt.Sprintf(`[ Name = "m%d"; Memory = %d ]`, i, 16*(i+1)))))
	}
	cand, _ := ix.Candidates(req, env)
	if len(cand) != 9 { // memory 16 fails, 32..160 pass
		t.Fatalf("got %d candidates, want 9", len(cand))
	}
	ix.Remove(slots[5])
	ix.Remove(slots[5]) // double remove is a no-op
	cand, _ = ix.Candidates(req, env)
	if len(cand) != 8 {
		t.Fatalf("after remove: got %d candidates, want 8", len(cand))
	}
	for _, oi := range cand {
		if oi == slots[5] {
			t.Fatalf("removed slot %d still a candidate", slots[5])
		}
	}
	if ix.Len() != 9 {
		t.Fatalf("Len = %d, want 9", ix.Len())
	}
}

// TestNegotiateIndexedMatchesPlain is the deterministic spot check the
// randomized differential test generalizes: one mixed pool, identical
// results with and without the index.
func TestNegotiateIndexedMatchesPlain(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	offers := randomPool(r, 40)
	requests := randomRequests(r, 25)
	env := classad.FixedEnv(0, 7)
	plain := New(Config{Env: env}).Negotiate(requests, offers)
	indexed := New(Config{Env: env, Index: true}).Negotiate(requests, offers)
	if len(plain) != len(indexed) {
		t.Fatalf("match counts differ: %d vs %d", len(plain), len(indexed))
	}
	for i := range plain {
		if plain[i] != indexed[i] {
			t.Errorf("match %d differs: %+v vs %+v", i, plain[i], indexed[i])
		}
	}
}
