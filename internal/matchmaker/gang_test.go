package matchmaker

import (
	"fmt"
	"testing"

	"repro/internal/classad"
)

// tapeDrive builds a provider ad for a tape drive resource, showing
// the heterogeneity the paper emphasizes ("workstations, tape drives,
// network links, application instances, and software licenses").
func tapeDrive(name string, mbps int64) *classad.Ad {
	ad := classad.NewAd()
	ad.SetString("Type", "TapeDrive")
	ad.SetString("Name", name)
	ad.SetInt("TransferRate", mbps)
	ad.Set("Constraint", classad.Lit(classad.Bool(true)))
	return ad
}

// gangRequest is a co-allocation request needing one INTEL workstation
// and one tape drive simultaneously.
func gangRequest(owner string) *classad.Ad {
	return classad.MustParse(fmt.Sprintf(`[
		Type  = "Job";
		Owner = %q;
		Gang  = {
			[ Constraint = other.Type == "Machine" && other.Arch == "INTEL";
			  Rank = other.Memory ],
			[ Constraint = other.Type == "TapeDrive" && other.TransferRate >= 5 ]
		};
	]`, owner))
}

func TestIsGang(t *testing.T) {
	if !IsGang(gangRequest("u")) {
		t.Error("gang request not recognized")
	}
	if IsGang(job("u", "INTEL", 1)) {
		t.Error("plain job recognized as gang")
	}
}

func TestGangSubRequests(t *testing.T) {
	subs, err := GangSubRequests(gangRequest("raman"))
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("got %d sub-requests, want 2", len(subs))
	}
	for i, sub := range subs {
		if who, _ := sub.Eval("Owner").StringVal(); who != "raman" {
			t.Errorf("sub-request %d owner = %q, want inherited \"raman\"", i, who)
		}
	}
	// A sub-request with its own Owner keeps it.
	req := classad.MustParse(`[
		Owner = "parent";
		Gang = { [ Owner = "delegate"; Constraint = true ] };
	]`)
	subs, err = GangSubRequests(req)
	if err != nil {
		t.Fatal(err)
	}
	if who, _ := subs[0].Eval("Owner").StringVal(); who != "delegate" {
		t.Errorf("sub-request owner = %q, want \"delegate\"", who)
	}
}

func TestGangSubRequestErrors(t *testing.T) {
	for _, src := range []string{
		`[ Gang = 5 ]`,
		`[ Gang = {} ]`,
		`[ Gang = {1, 2} ]`,
	} {
		if _, err := GangSubRequests(classad.MustParse(src)); err == nil {
			t.Errorf("%s: expected error", src)
		}
	}
}

// TestGangMatchSuccess is experiment E14's happy path: both slots
// filled by distinct offers of the right kinds.
func TestGangMatchSuccess(t *testing.T) {
	offers := []*classad.Ad{
		tapeDrive("t1", 10),
		machine("w1", "INTEL", 64),
		machine("w2", "SPARC", 128),
	}
	gm, ok := MatchGang(gangRequest("u"), offers, nil)
	if !ok {
		t.Fatal("gang should match")
	}
	if len(gm.Offers) != 2 {
		t.Fatalf("assignment covers %d slots", len(gm.Offers))
	}
	ws := offers[gm.Offers[0]]
	td := offers[gm.Offers[1]]
	if typ, _ := ws.Eval("Type").StringVal(); typ != "Machine" {
		t.Errorf("slot 0 filled by %s", typ)
	}
	if typ, _ := td.Eval("Type").StringVal(); typ != "TapeDrive" {
		t.Errorf("slot 1 filled by %s", typ)
	}
	if gm.Offers[0] == gm.Offers[1] {
		t.Error("gang assigned the same offer twice")
	}
}

// TestGangAllOrNothing: if any slot cannot be filled, no assignment is
// returned at all.
func TestGangAllOrNothing(t *testing.T) {
	offers := []*classad.Ad{
		machine("w1", "INTEL", 64), // workstation available...
		tapeDrive("slow", 1),       // ...but tape drive too slow
	}
	if _, ok := MatchGang(gangRequest("u"), offers, nil); ok {
		t.Error("gang matched despite unsatisfiable tape slot")
	}
}

// TestGangDistinctness: two identical slots need two distinct offers;
// one matching offer is not enough.
func TestGangDistinctness(t *testing.T) {
	req := classad.MustParse(`[
		Owner = "u";
		Gang = {
			[ Constraint = other.Type == "Machine" ],
			[ Constraint = other.Type == "Machine" ]
		};
	]`)
	one := []*classad.Ad{machine("only", "INTEL", 64)}
	if _, ok := MatchGang(req, one, nil); ok {
		t.Error("two slots matched to one offer")
	}
	two := append(one, machine("second", "INTEL", 64))
	gm, ok := MatchGang(req, two, nil)
	if !ok {
		t.Fatal("two slots with two machines should match")
	}
	if gm.Offers[0] == gm.Offers[1] {
		t.Error("slots share an offer")
	}
}

// TestGangBacktracking: a greedy rank-first assignment would grab the
// versatile offer for slot A and strand slot B; backtracking must find
// the crossed assignment.
func TestGangBacktracking(t *testing.T) {
	// versatile satisfies both slots; special satisfies only slot A.
	versatile := classad.MustParse(`[ Type = "R"; A = true; B = true; Name = "versatile" ]`)
	special := classad.MustParse(`[ Type = "R"; A = true; Name = "special" ]`)
	req := classad.MustParse(`[
		Owner = "u";
		Gang = {
			[ Constraint = other.A == true; Rank = other.Name == "versatile" ? 10 : 0 ],
			[ Constraint = other.B == true ]
		};
	]`)
	gm, ok := MatchGang(req, []*classad.Ad{versatile, special}, nil)
	if !ok {
		t.Fatal("backtracking should find the crossed assignment")
	}
	a := gm.Offers[0]
	b := gm.Offers[1]
	if nameOf(t, gm, a) != "special" || nameOf(t, gm, b) != "versatile" {
		t.Errorf("assignment = slot0:%d slot1:%d, want special/versatile", a, b)
	}
	_ = gm
}

func nameOf(t *testing.T, gm GangMatch, idx int) string {
	t.Helper()
	offers := []*classad.Ad{
		classad.MustParse(`[ Type = "R"; A = true; B = true; Name = "versatile" ]`),
		classad.MustParse(`[ Type = "R"; A = true; Name = "special" ]`),
	}
	s, _ := offers[idx].Eval("Name").StringVal()
	return s
}

// TestGangRespectsProviderConstraints: a provider's own policy can
// veto one slot of a gang.
func TestGangRespectsProviderConstraints(t *testing.T) {
	fussy := machine("fussy", "INTEL", 64)
	if err := fussy.SetExprString("Constraint", `other.Owner == "vip"`); err != nil {
		t.Fatal(err)
	}
	offers := []*classad.Ad{fussy, tapeDrive("t", 10)}
	if _, ok := MatchGang(gangRequest("pleb"), offers, nil); ok {
		t.Error("gang matched against a provider that rejects the owner")
	}
	if _, ok := MatchGang(gangRequest("vip"), offers, nil); !ok {
		t.Error("vip gang should match")
	}
}

// TestGangRankPreference: among feasible assignments, higher-ranked
// offers are preferred when no conflict forces otherwise.
func TestGangRankPreference(t *testing.T) {
	offers := []*classad.Ad{
		machine("small", "INTEL", 32),
		machine("big", "INTEL", 256),
		tapeDrive("t", 10),
	}
	gm, ok := MatchGang(gangRequest("u"), offers, nil)
	if !ok {
		t.Fatal("gang should match")
	}
	ws := offers[gm.Offers[0]]
	if name, _ := ws.Eval("Name").StringVal(); name != "big" {
		t.Errorf("workstation slot = %q, want rank-preferred \"big\"", name)
	}
}
