package matchmaker

import (
	"math"
	"testing"

	"repro/internal/classad"
)

func TestPriorityTableBasics(t *testing.T) {
	pt := NewPriorityTable()
	if u := pt.Effective("nobody"); u != 0 {
		t.Errorf("unknown customer usage = %v, want 0", u)
	}
	pt.Record("alice", 10)
	pt.Record("bob", 3)
	if ua, ub := pt.Effective("alice"), pt.Effective("bob"); ua <= ub {
		t.Errorf("alice (%v) should have more usage than bob (%v)", ua, ub)
	}
	customers := pt.Customers()
	if len(customers) != 2 || customers[0] != "bob" || customers[1] != "alice" {
		t.Errorf("customers order = %v, want [bob alice]", customers)
	}
	pt.Reset()
	if u := pt.Effective("alice"); u != 0 {
		t.Errorf("after reset usage = %v, want 0", u)
	}
}

func TestPriorityDecayHalfLife(t *testing.T) {
	pt := NewPriorityTable()
	pt.SetHalfLife(100)
	pt.Advance(0)
	pt.Record("u", 8)
	pt.Advance(100) // one half-life
	if u := pt.Effective("u"); math.Abs(u-4) > 1e-9 {
		t.Errorf("after one half-life usage = %v, want 4", u)
	}
	pt.Advance(300) // two more half-lives
	if u := pt.Effective("u"); math.Abs(u-1) > 1e-9 {
		t.Errorf("after three half-lives usage = %v, want 1", u)
	}
	// Time never goes backward.
	pt.Advance(100)
	if u := pt.Effective("u"); math.Abs(u-1) > 1e-9 {
		t.Errorf("backward Advance changed usage to %v", u)
	}
}

func TestPriorityDecayDisabled(t *testing.T) {
	pt := NewPriorityTable()
	pt.SetHalfLife(0)
	pt.Record("u", 5)
	pt.Advance(1e12)
	if u := pt.Effective("u"); u != 5 {
		t.Errorf("usage decayed with decay disabled: %v", u)
	}
}

// TestFairShare is experiment E9: with fair share on, a light user's
// requests are served before a heavy user's when they contend for the
// same resource.
func TestFairShare(t *testing.T) {
	m := New(Config{FairShare: true})
	// The heavy user has history.
	m.Usage().Record("heavy", 100)

	offers := []*classad.Ad{machine("only", "INTEL", 64)}
	requests := []*classad.Ad{
		job("heavy", "INTEL", 1), // submitted first
		job("light", "INTEL", 1),
	}
	matches := m.Negotiate(requests, offers)
	if len(matches) != 1 {
		t.Fatalf("got %d matches", len(matches))
	}
	if who, _ := matches[0].Request.Eval("Owner").StringVal(); who != "light" {
		t.Errorf("fair share served %q first, want \"light\"", who)
	}
}

// TestFairShareConverges: two users with equal demand on a
// one-machine pool alternate cycles instead of one starving.
func TestFairShareConverges(t *testing.T) {
	m := New(Config{FairShare: true})
	m.Usage().SetHalfLife(0) // pure accumulation for determinism
	offers := []*classad.Ad{machine("only", "INTEL", 64)}
	served := map[string]int{}
	for cycle := 0; cycle < 10; cycle++ {
		requests := []*classad.Ad{
			job("a", "INTEL", 1),
			job("b", "INTEL", 1),
		}
		for _, match := range m.Negotiate(requests, offers) {
			who, _ := match.Request.Eval("Owner").StringVal()
			served[who]++
		}
	}
	if served["a"] != 5 || served["b"] != 5 {
		t.Errorf("unfair split over 10 cycles: %v, want 5/5", served)
	}
}

// TestFairShareOffStarves documents the ablation: without fair share,
// submission order wins every cycle and the second user starves.
func TestFairShareOffStarves(t *testing.T) {
	m := New(Config{FairShare: false})
	offers := []*classad.Ad{machine("only", "INTEL", 64)}
	served := map[string]int{}
	for cycle := 0; cycle < 10; cycle++ {
		requests := []*classad.Ad{
			job("greedy", "INTEL", 1),
			job("meek", "INTEL", 1),
		}
		for _, match := range m.Negotiate(requests, offers) {
			who, _ := match.Request.Eval("Owner").StringVal()
			served[who]++
		}
	}
	if served["greedy"] != 10 || served["meek"] != 0 {
		t.Errorf("expected starvation without fair share, got %v", served)
	}
}

// TestFairShareThreeUsersUnequalDemand: heavy demand is throttled to
// its share; light users get everything they ask for.
func TestFairShareThreeUsersUnequalDemand(t *testing.T) {
	m := New(Config{FairShare: true})
	m.Usage().SetHalfLife(0)
	offers := []*classad.Ad{
		machine("m1", "INTEL", 64),
		machine("m2", "INTEL", 64),
	}
	served := map[string]int{}
	for cycle := 0; cycle < 12; cycle++ {
		// "hog" submits 4 requests every cycle; "calm" and "rare"
		// submit 1 each.
		var requests []*classad.Ad
		for i := 0; i < 4; i++ {
			requests = append(requests, job("hog", "INTEL", 1))
		}
		requests = append(requests, job("calm", "INTEL", 1))
		if cycle%2 == 0 {
			requests = append(requests, job("rare", "INTEL", 1))
		}
		for _, match := range m.Negotiate(requests, offers) {
			who, _ := match.Request.Eval("Owner").StringVal()
			served[who]++
		}
	}
	// 24 slots over 12 cycles. calm asks for 12, rare for 6; with
	// fairness both should be served most of their demand, with hog
	// absorbing the remainder rather than everything.
	if served["calm"] < 9 {
		t.Errorf("calm served %d of 12, want >= 9 (%v)", served["calm"], served)
	}
	if served["rare"] < 5 {
		t.Errorf("rare served %d of 6, want >= 5 (%v)", served["rare"], served)
	}
	if served["hog"] <= served["calm"]-4 || served["hog"] == 0 {
		t.Errorf("hog should still get leftover capacity: %v", served)
	}
}
