package matchmaker

// Stage two of the negotiation engine: scanning the candidate offers
// for one request. The scan is the same selection whether it runs
// sequentially or sharded across workers, because selection is defined
// entirely by the better comparator below — a strict total order on
// candidates — and the parallel reduction folds shard results in shard
// order. The parallel path is therefore bit-identical to the
// sequential one (property-tested in quick_test.go), provided
// constraints and ranks are pure; an Env whose Rand is consulted by a
// constraint yields a nondeterministic stream order under any
// concurrent evaluation.
//
// Shared state during one scan is read-only: the request and offer ads
// (never mutated after construction), the availability vector (only
// mutated between requests), and the Env (both constructors guard
// their random stream with a mutex, giving each worker a race-free
// view). -race runs of the differential and stress suites enforce
// this.

import (
	"runtime"
	"sync"

	"repro/internal/classad"
)

// ParallelAuto selects one scan worker per available CPU
// (GOMAXPROCS); see Config.Parallel.
const ParallelAuto = -1

// minParallelScan is the candidate count below which sharding costs
// more than it saves and the scan stays sequential.
const minParallelScan = 64

// candidate identifies one compatible offer, the two ranks the
// selection rule orders by, and whether the offer advertises itself as
// already claimed (the ROADMAP item 1 tie-break input).
type candidate struct {
	index            int
	reqRank, offRank float64
	claimed          bool
}

// better reports whether a should be selected over b. This is THE
// selection rule of the negotiation cycle — linearScan, BestOffer,
// aggregation and the parallel reduction all defer to it: higher
// request rank wins, ties go first to unclaimed offers, then to the
// higher offer rank, remaining ties to the earliest offer (paper
// §3.2: "the Rank attributes are then used to choose among compatible
// matches").
//
// The unclaimed-over-claimed preference resolves the claimed-offer
// livelock (ROADMAP item 1, pinned by TestForensicsClaimedOfferLivelock
// and modelcheck's MC201): a claimed machine that ties an idle twin on
// rank used to win the earliest-index tie-break every cycle, and the
// resulting match bounced off claim-time rank revalidation every
// cycle. A strictly higher request rank still selects the claimed
// machine — that is exactly the preemption case the claim protocol
// admits.
func better(a, b candidate) bool {
	if a.reqRank != b.reqRank {
		return a.reqRank > b.reqRank
	}
	if a.claimed != b.claimed {
		return !a.claimed
	}
	if a.offRank != b.offRank {
		return a.offRank > b.offRank
	}
	return a.index < b.index
}

// scanWorkers resolves the Parallel config knob against the candidate
// count: 0 and 1 mean sequential, ParallelAuto means GOMAXPROCS, n>1
// means exactly n (tests use this to force concurrency on small
// machines). Scans below minParallelScan stay sequential regardless.
func scanWorkers(parallel, candidates int) int {
	w := parallel
	if w == ParallelAuto {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 2 || candidates < minParallelScan {
		return 1
	}
	if w > candidates {
		w = candidates
	}
	return w
}

// scanOffers selects the offer for one request among cand (indices
// into offers; nil means every offer), honouring availability. It
// reports the winner per better, the ranks, and how many offers it
// evaluated. FirstFit takes the earliest available compatible offer
// instead of maximizing rank.
func scanOffers(req *classad.Ad, offers []*classad.Ad, cand []int, available []bool, cfg Config) (best int, reqRank, offRank float64, scanned, workers int) {
	n := len(offers)
	if cand != nil {
		n = len(cand)
	}
	workers = scanWorkers(cfg.Parallel, n)
	if workers <= 1 {
		best, reqRank, offRank, _, scanned = scanRange(req, offers, cand, available, cfg, 0, n)
		return best, reqRank, offRank, scanned, 1
	}

	type shard struct {
		best             int
		reqRank, offRank float64
		claimed          bool
		scanned          int
	}
	results := make([]shard, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			s := &results[w]
			s.best, s.reqRank, s.offRank, s.claimed, s.scanned = scanRange(req, offers, cand, available, cfg, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()

	// Deterministic reduction: fold shard winners in shard order.
	// Shards cover ascending candidate ranges and each shard keeps its
	// earliest winner on full ties, so the fold reproduces the
	// sequential scan's keep-first behaviour exactly. In first-fit
	// mode the first shard with a hit holds the lowest compatible
	// index.
	best = -1
	var bestClaimed bool
	for _, s := range results {
		scanned += s.scanned
		if s.best < 0 {
			continue
		}
		if cfg.FirstFit {
			if best < 0 {
				best, reqRank, offRank = s.best, s.reqRank, s.offRank
			}
			continue
		}
		if best < 0 || better(candidate{s.best, s.reqRank, s.offRank, s.claimed}, candidate{best, reqRank, offRank, bestClaimed}) {
			best, reqRank, offRank, bestClaimed = s.best, s.reqRank, s.offRank, s.claimed
		}
	}
	return best, reqRank, offRank, scanned, workers
}

// scanRange is the sequential kernel: it evaluates candidates lo..hi
// (indices into cand, or into offers directly when cand is nil) and
// returns the local winner (claimed reports the winner's claimed
// status, for the shard fold). In first-fit mode it stops at the first
// hit.
func scanRange(req *classad.Ad, offers []*classad.Ad, cand []int, available []bool, cfg Config, lo, hi int) (best int, reqRank, offRank float64, claimed bool, scanned int) {
	best = -1
	for i := lo; i < hi; i++ {
		oi := i
		if cand != nil {
			oi = cand[i]
		}
		if !available[oi] {
			continue
		}
		scanned++
		res := classad.MatchEnv(req, offers[oi], cfg.Env)
		if !res.Matched {
			continue
		}
		// Under LegacyClaimedTieBreak (modelcheck regression harness
		// only) claimed state is invisible to better(), restoring the
		// livelock-prone pre-fix order.
		cl := !cfg.LegacyClaimedTieBreak && offerClaimed(offers[oi])
		if cfg.FirstFit {
			return oi, res.LeftRank, res.RightRank, cl, scanned
		}
		if best < 0 || better(candidate{oi, res.LeftRank, res.RightRank, cl}, candidate{best, reqRank, offRank, claimed}) {
			best, reqRank, offRank, claimed = oi, res.LeftRank, res.RightRank, cl
		}
	}
	return best, reqRank, offRank, claimed, scanned
}
